// Clean-Clean ER (record linkage) over CSV files — the path a downstream
// user takes with their own data.
//
//   1. export a synthetic product-matching dataset to CSV (stand-in for
//      "your two catalogues plus a labelled sample"),
//   2. load the CSVs back through datasets/io.h,
//   3. run the pipeline with both classifiers and compare.
//
// Build & run:  ./build/examples/product_linkage [output_dir]

#include <cstdio>
#include <string>

#include "core/pipeline.h"
#include "datasets/clean_clean_generator.h"
#include "datasets/io.h"
#include "datasets/specs.h"

int main(int argc, char** argv) {
  using namespace gsmb;
  const std::string dir = argc > 1 ? argv[1] : "/tmp";

  // ---- 1. Export: a WalmartAmazon-shaped catalogue pair. ----
  CleanCleanSpec spec = CleanCleanSpecByName("WalmartAmazon", /*scale=*/0.06);
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
  const std::string e1_path = dir + "/catalogue_a.csv";
  const std::string e2_path = dir + "/catalogue_b.csv";
  const std::string gt_path = dir + "/matches.csv";
  SaveCollectionCsv(data.e1, e1_path);
  SaveCollectionCsv(data.e2, e2_path);
  SaveGroundTruthCsv(data.ground_truth, data.e1, data.e2, gt_path);
  std::printf("Wrote %s (%zu products), %s (%zu products), %s (%zu "
              "matches)\n\n",
              e1_path.c_str(), data.e1.size(), e2_path.c_str(),
              data.e2.size(), gt_path.c_str(), data.ground_truth.size());

  // ---- 2. Load — exactly what you would do with your own files. ----
  EntityCollection catalogue_a = LoadCollectionCsv(e1_path, "catalogue-a");
  EntityCollection catalogue_b = LoadCollectionCsv(e2_path, "catalogue-b");
  GroundTruth matches =
      LoadGroundTruthCsv(gt_path, catalogue_a, catalogue_b, /*dirty=*/false);

  PreparedDataset prep = PrepareCleanClean("products", catalogue_a,
                                           catalogue_b, std::move(matches));
  std::printf("Blocking: %zu candidate pairs, recall %.3f, precision "
              "%.5f\n\n",
              prep.pairs.size(), prep.blocking_quality.recall,
              prep.blocking_quality.precision);

  // ---- 3. Both probabilistic classifiers, both best pruners. ----
  for (ClassifierKind classifier :
       {ClassifierKind::kLogisticRegression, ClassifierKind::kLinearSvc}) {
    for (PruningKind pruning : {PruningKind::kBlast, PruningKind::kRcnp}) {
      MetaBlockingConfig config;
      config.classifier = classifier;
      config.pruning = pruning;
      config.features = pruning == PruningKind::kBlast
                            ? FeatureSet::BlastOptimal()
                            : FeatureSet::RcnpOptimal();
      config.train_per_class = 25;
      MetaBlockingResult r = RunMetaBlocking(prep, config);
      std::printf(
          "%-18s + %-5s  recall %.3f  precision %.3f  F1 %.3f  (%zu pairs, "
          "%.1f ms)\n",
          ClassifierKindName(classifier), PruningKindName(pruning),
          r.metrics.recall, r.metrics.precision, r.metrics.f1,
          r.metrics.retained, r.total_seconds * 1e3);
    }
  }

  std::printf("\nThe paper's finding reproduces here: logistic regression "
              "and the SVM give\nnear-identical results — the pruning "
              "algorithm is what matters.\n");
  return 0;
}
