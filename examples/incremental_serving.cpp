// Incremental serving: a long-lived MetaBlockingSession fed by a stream of
// arriving records — opened through the gsmb::Engine facade.
//
//   1. bootstrap — describe the serving job as a JobSpec (CSV dataset,
//      serving mode, shard count, purge cap) and Engine::OpenSession() it:
//      the engine trains the resident model with the batch pipeline,
//      ingests the initial collection and refreshes every shard,
//   2. stream    — records arrive in batches; each AddProfiles() marks only
//      the shards owning a touched token dirty, each Refresh() re-blocks
//      and re-prunes those shards — the retained pairs are bit-identical to
//      rebuilding the whole session from scratch,
//   3. query     — score a probe profile against the resident index without
//      recomputing anything global,
//   4. snapshot  — save the session, restore it, keep serving.
//
// Build & run:  ./build/examples/incremental_serving

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "datasets/dirty_generator.h"
#include "datasets/io.h"
#include "datasets/specs.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "serve/session.h"
#include "util/stopwatch.h"

int main() {
  using namespace gsmb;

  // ---- 0. A stream source: generated Dirty-ER data, half of it saved as
  // the bootstrap CSVs a production deployment would start from. ----
  DirtySpec source_spec;
  source_spec.name = "serving-demo";
  source_spec.num_entities = 2010;
  source_spec.seed = 17;
  GeneratedDirty data = DirtyGenerator().Generate(source_spec);
  const std::vector<EntityProfile>& profiles = data.entities.profiles();
  std::printf("Stream source: %zu profiles, %zu known duplicate pairs\n",
              profiles.size(), data.ground_truth.size());

  const size_t initial = profiles.size() / 2;
  EntityCollection bootstrap("bootstrap");
  for (size_t i = 0; i < initial; ++i) bootstrap.Add(profiles[i]);
  // Labelled matches known at bootstrap time: both endpoints resident.
  GroundTruth bootstrap_gt(/*dirty=*/true);
  for (const MatchPair& match : data.ground_truth.pairs()) {
    if (match.left < initial && match.right < initial) {
      bootstrap_gt.AddMatch(match.left, match.right);
    }
  }
  const std::string dir = "serving_demo_data";
  std::filesystem::create_directories(dir);
  SaveCollectionCsv(bootstrap, dir + "/bootstrap.csv");
  SaveGroundTruthCsv(bootstrap_gt, bootstrap, bootstrap, dir + "/gt.csv");

  // ---- 1. Bootstrap through the facade: one spec, one call. ----
  JobSpec job;
  job.dataset.source = DatasetSource::kCsv;
  job.dataset.e1 = dir + "/bootstrap.csv";
  job.dataset.ground_truth = dir + "/gt.csv";
  job.blocking.filter_ratio = 1.0;  // serving is shard-pure: no filtering
  job.training.labels_per_class = 50;
  job.execution.mode = ExecutionMode::kServing;
  job.execution.shards = 32;
  job.execution.options.num_threads = 4;
  job.execution.serving_max_block_size = 64;  // absolute purge cap

  Engine engine;
  Stopwatch watch;
  Result<MetaBlockingSession> opened = engine.OpenSession(job);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  MetaBlockingSession session = std::move(*opened);
  std::printf("Bootstrapped %zu profiles into %zu shards in %.1f ms\n",
              initial, session.options().num_shards, watch.ElapsedMillis());

  // ---- 2. Stream the rest in batches; refresh touches dirty shards only. -
  const size_t num_shards = session.options().num_shards;
  const size_t streamed = profiles.size() - 10;
  const size_t batch_size = 250;
  for (size_t begin = initial; begin < streamed; begin += batch_size) {
    const size_t end = std::min(streamed, begin + batch_size);
    watch.Restart();
    session.AddProfiles({profiles.begin() + begin, profiles.begin() + end});
    const size_t dirty = session.DirtyShardCount();
    const size_t refreshed = session.Refresh();
    std::printf(
        "  batch of %3zu: %2zu/%zu shards dirty, refreshed in %6.1f ms "
        "(retained %zu)\n",
        end - begin, dirty, num_shards, watch.ElapsedMillis(),
        session.RetainedPairs().size());
    if (refreshed != dirty) std::printf("  (unexpected refresh count)\n");
  }

  // Late arrivals, one record at a time: a single profile touches only the
  // shards owning its tokens, so a refresh is a small fraction of the work.
  for (size_t i = streamed; i < profiles.size(); ++i) {
    watch.Restart();
    session.AddProfile(profiles[i]);
    const size_t dirty = session.DirtyShardCount();
    session.Refresh();
    std::printf("  late arrival %-10s %2zu/%zu shards dirty, %5.1f ms\n",
                profiles[i].external_id().c_str(), dirty, num_shards,
                watch.ElapsedMillis());
  }

  // The incremental guarantee, checked live: a cold session over the same
  // profiles retains exactly the same pairs.
  MetaBlockingSession cold(session.options(), session.model());
  cold.AddProfiles(profiles);
  cold.Refresh();
  const bool matches_cold = session.RetainedPairs() == cold.RetainedPairs();
  std::printf("Incremental == cold rebuild: %s (%zu pairs)\n",
              matches_cold ? "yes" : "NO", session.RetainedPairs().size());

  // ---- 3. Query: find the duplicates of one resident record (passing
  // its id as `exclude` keeps it out of its own results). ----
  const EntityProfile& probe = profiles[42];
  watch.Restart();
  std::vector<QueryMatch> matches =
      session.QueryCandidates(probe, 5, EntityId{42});
  std::printf("Query '%s' took %.2f ms:\n", probe.external_id().c_str(),
              watch.ElapsedMillis());
  for (const QueryMatch& m : matches) {
    std::printf("  %-14s p=%.4f\n",
                session.profiles()[m.id].external_id().c_str(),
                m.probability);
  }

  // ---- 4. Snapshot round trip. ----
  const char* path = "serving_session.snap";
  session.Save(path);
  MetaBlockingSession restored = MetaBlockingSession::Load(path);
  const bool snapshot_ok =
      restored.RetainedPairs() == session.RetainedPairs();
  std::printf("Snapshot round trip: %s\n",
              snapshot_ok ? "restored session serves identically"
                          : "MISMATCH");
  std::remove(path);
  std::filesystem::remove_all(dir);

  if (!matches_cold || !snapshot_ok) return 1;
  std::printf("SERVING DEMO OK\n");
  return 0;
}
