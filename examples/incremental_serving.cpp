// Incremental serving: a long-lived MetaBlockingSession fed by a stream of
// arriving records.
//
//   1. bootstrap — train a ServingModel on labelled data with the batch
//      pipeline, build a sharded session, ingest the initial collection,
//   2. stream    — records arrive in batches; each AddProfiles() marks only
//      the shards owning a touched token dirty, each Refresh() re-blocks
//      and re-prunes those shards — the retained pairs are bit-identical to
//      rebuilding the whole session from scratch,
//   3. query     — score a probe profile against the resident index without
//      recomputing anything global,
//   4. snapshot  — save the session, restore it, keep serving.
//
// Build & run:  ./build/examples/incremental_serving

#include <algorithm>
#include <cstdio>
#include <vector>

#include "datasets/dirty_generator.h"
#include "datasets/specs.h"
#include "serve/session.h"
#include "serve/serving_model.h"
#include "util/stopwatch.h"

int main() {
  using namespace gsmb;

  // ---- 1. Bootstrap: labelled data -> resident model -> warm session. ----
  DirtySpec spec;
  spec.name = "serving-demo";
  spec.num_entities = 2010;
  spec.seed = 17;
  GeneratedDirty data = DirtyGenerator().Generate(spec);
  const std::vector<EntityProfile>& profiles = data.entities.profiles();
  std::printf("Stream source: %zu profiles, %zu known duplicate pairs\n",
              profiles.size(), data.ground_truth.size());

  ServingModelTraining training;
  training.train_per_class = 50;
  ServingModel model = TrainServingModel(
      data.entities, data.ground_truth, FeatureSet::BlastOptimal(), training);

  SessionOptions options;
  options.num_shards = 32;
  options.num_threads = 4;
  options.max_block_size = 64;  // absolute purging cap, serving-style
  MetaBlockingSession session(options, model);

  const size_t initial = profiles.size() / 2;
  Stopwatch watch;
  session.AddProfiles({profiles.begin(), profiles.begin() + initial});
  session.Refresh();
  std::printf("Bootstrapped %zu profiles into %zu shards in %.1f ms\n",
              initial, options.num_shards, watch.ElapsedMillis());

  // ---- 2. Stream the rest in batches; refresh touches dirty shards only. -
  const size_t streamed = profiles.size() - 10;
  const size_t batch_size = 250;
  for (size_t begin = initial; begin < streamed; begin += batch_size) {
    const size_t end = std::min(streamed, begin + batch_size);
    watch.Restart();
    session.AddProfiles({profiles.begin() + begin, profiles.begin() + end});
    const size_t dirty = session.DirtyShardCount();
    const size_t refreshed = session.Refresh();
    std::printf(
        "  batch of %3zu: %2zu/%zu shards dirty, refreshed in %6.1f ms "
        "(retained %zu)\n",
        end - begin, dirty, options.num_shards, watch.ElapsedMillis(),
        session.RetainedPairs().size());
    if (refreshed != dirty) std::printf("  (unexpected refresh count)\n");
  }

  // Late arrivals, one record at a time: a single profile touches only the
  // shards owning its tokens, so a refresh is a small fraction of the work.
  for (size_t i = streamed; i < profiles.size(); ++i) {
    watch.Restart();
    session.AddProfile(profiles[i]);
    const size_t dirty = session.DirtyShardCount();
    session.Refresh();
    std::printf("  late arrival %-10s %2zu/%zu shards dirty, %5.1f ms\n",
                profiles[i].external_id().c_str(), dirty, options.num_shards,
                watch.ElapsedMillis());
  }

  // The incremental guarantee, checked live: a cold session over the same
  // profiles retains exactly the same pairs.
  MetaBlockingSession cold(options, model);
  cold.AddProfiles(profiles);
  cold.Refresh();
  const bool matches_cold = session.RetainedPairs() == cold.RetainedPairs();
  std::printf("Incremental == cold rebuild: %s (%zu pairs)\n",
              matches_cold ? "yes" : "NO",
              session.RetainedPairs().size());

  // ---- 3. Query: find the duplicates of one resident record (passing
  // its id as `exclude` keeps it out of its own results). ----
  const EntityProfile& probe = profiles[42];
  watch.Restart();
  std::vector<QueryMatch> matches =
      session.QueryCandidates(probe, 5, EntityId{42});
  std::printf("Query '%s' took %.2f ms:\n", probe.external_id().c_str(),
              watch.ElapsedMillis());
  for (const QueryMatch& m : matches) {
    std::printf("  %-14s p=%.4f\n",
                session.profiles()[m.id].external_id().c_str(),
                m.probability);
  }

  // ---- 4. Snapshot round trip. ----
  const char* path = "serving_session.snap";
  session.Save(path);
  MetaBlockingSession restored = MetaBlockingSession::Load(path);
  const bool snapshot_ok =
      restored.RetainedPairs() == session.RetainedPairs();
  std::printf("Snapshot round trip: %s\n",
              snapshot_ok ? "restored session serves identically"
                          : "MISMATCH");
  std::remove(path);

  if (!matches_cold || !snapshot_ok) return 1;
  std::printf("SERVING DEMO OK\n");
  return 0;
}
