// Feature-selection tour: the Section 5.3 brute-force sweep, scaled down to
// one dataset, plus the run-time trade-off that decides the winner.
//
// Shows how to (a) enumerate all 255 feature subsets, (b) evaluate them
// cheaply by slicing one precomputed 9-column matrix, and (c) measure the
// honest per-set extraction cost (LCP is the expensive one).
//
// Build & run:  ./build/examples/feature_selection_tour

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "datasets/clean_clean_generator.h"
#include "datasets/specs.h"
#include "eval/metrics.h"
#include "util/stopwatch.h"

int main() {
  using namespace gsmb;

  CleanCleanSpec spec = CleanCleanSpecByName("DblpAcm", /*scale=*/0.25);
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
  PreparedDataset prep = PrepareCleanClean(
      spec.name, data.e1, data.e2, std::move(data.ground_truth));
  std::printf("Dataset %s: %zu candidate pairs\n\n", prep.name.c_str(),
              prep.pairs.size());

  // ---- (a)+(b): sweep all 255 subsets via column slicing. ----
  FeatureExtractor extractor(*prep.index, prep.pairs);
  Matrix full = extractor.ComputeAll();

  struct Entry {
    FeatureSet set;
    double f1;
  };
  std::vector<Entry> entries;
  for (const FeatureSet& set : FeatureSet::EnumerateAll()) {
    Matrix features = full.SelectColumns(set.FullMatrixColumns());
    MetricsAccumulator acc;
    for (uint64_t seed = 0; seed < 3; ++seed) {
      MetaBlockingConfig config;
      config.pruning = PruningKind::kBlast;
      config.features = set;
      config.train_per_class = 25;
      config.seed = seed;
      acc.Add(RunMetaBlockingWithFeatures(prep, config, features));
    }
    entries.push_back({set, acc.Summary().f1});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.f1 > b.f1; });

  std::printf("Top-5 feature sets for BLAST on %s:\n", prep.name.c_str());
  for (size_t i = 0; i < 5; ++i) {
    std::printf("  %d. F1 = %.4f  %s\n", static_cast<int>(i + 1),
                entries[i].f1, entries[i].set.ToString().c_str());
  }

  // ---- (c): the run-time side — why the paper picks an LCP-free set. ----
  auto time_extraction = [&](const FeatureSet& set) {
    Stopwatch watch;
    Matrix m = extractor.Compute(set);
    (void)m;
    return watch.ElapsedMillis();
  };
  double with_lcp = time_extraction(FeatureSet::Paper2014());
  double without_lcp = time_extraction(FeatureSet::BlastOptimal());
  std::printf(
      "\nFeature extraction cost on %zu pairs:\n"
      "  %-28s %.2f ms   (carries LCP)\n"
      "  %-28s %.2f ms   (LCP-free: %.1fx faster)\n",
      prep.pairs.size(), FeatureSet::Paper2014().ToString().c_str(), with_lcp,
      FeatureSet::BlastOptimal().ToString().c_str(), without_lcp,
      with_lcp / without_lcp);

  std::printf("\nThe effectiveness spread across the top sets is tiny — "
              "pick by run-time,\nexactly as the paper does in Section "
              "5.3.\n");
  return 0;
}
