// Unsupervised Meta-blocking baseline — the classic, zero-label approach
// the paper generalises — compared head-to-head against supervised BLAST
// on the same block collection.
//
// Also demonstrates the library on the paper's own running example: the
// seven smartphone profiles of Figure 1, pruned with CBS weights.
//
// Build & run:  ./build/examples/unsupervised_baseline

#include <cstdio>

#include "blocking/token_blocking.h"
#include "core/pipeline.h"
#include "core/unsupervised.h"
#include "datasets/clean_clean_generator.h"
#include "datasets/specs.h"

namespace {

using namespace gsmb;

void PaperRunningExample() {
  EntityCollection phones("figure-1");
  auto add = [&](const char* id, const char* text) {
    EntityProfile p(id);
    p.AddAttribute("text", text);
    phones.Add(std::move(p));
  };
  add("e1", "Apple iPhone X Smartphone");
  add("e2", "Samsung S20 smartphone");
  add("e3", "iPhone 10 smartphone Apple");
  add("e4", "Samsung 20 smartphone");
  add("e5", "Huawei Mate 20 smartphone");
  add("e6", "Samsung Fold foldable mate phone");
  add("e7", "Samsung foldable mate phone 20 fold");

  GroundTruth gt(/*dirty=*/true);
  gt.AddMatch(0, 2);  // e1 = e3
  gt.AddMatch(1, 3);  // e2 = e4
  gt.AddMatch(5, 6);  // e6 = e7

  BlockCollection blocks = TokenBlocking().Build(phones);
  PreparedDataset prep = PrepareFromBlocks("figure-1", std::move(blocks),
                                           std::move(gt));
  std::printf("Figure 1 example: %zu blocks, %zu candidate pairs\n",
              prep.blocks.size(), prep.pairs.size());

  PruningContext ctx = PruningContext::FromIndex(*prep.index, prep.stats);
  auto retained = UnsupervisedMetaBlocking(
      *prep.index, prep.pairs, EdgeWeightScheme::kCbs, PruningKind::kWnp,
      ctx);
  std::printf("Unsupervised WNP (CBS weights) keeps %zu pairs:\n",
              retained.size());
  for (uint32_t idx : retained) {
    const CandidatePair& p = prep.pairs[idx];
    std::printf("  (%s, %s)%s\n", phones[p.left].external_id().c_str(),
                phones[p.right].external_id().c_str(),
                prep.is_positive[idx] ? "  <- match" : "");
  }
}

}  // namespace

int main() {
  using namespace gsmb;
  PaperRunningExample();

  // ---- Supervised vs unsupervised on a realistic dataset. ----
  CleanCleanSpec spec = CleanCleanSpecByName("ImdbTmdb", /*scale=*/0.125);
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
  PreparedDataset prep = PrepareCleanClean(
      spec.name, data.e1, data.e2, std::move(data.ground_truth));
  std::printf("\n%s: %zu candidate pairs, blocking recall %.3f\n",
              prep.name.c_str(), prep.pairs.size(),
              prep.blocking_quality.recall);

  PruningContext ctx = PruningContext::FromIndex(*prep.index, prep.stats);
  std::printf("\n%-28s %-8s %-9s %-6s\n", "Configuration", "recall",
              "precision", "F1");
  for (EdgeWeightScheme scheme :
       {EdgeWeightScheme::kCbs, EdgeWeightScheme::kJs,
        EdgeWeightScheme::kRaccb, EdgeWeightScheme::kWjs}) {
    auto retained = UnsupervisedMetaBlocking(*prep.index, prep.pairs, scheme,
                                             PruningKind::kWnp, ctx);
    EffectivenessMetrics m = EvaluateRetained(retained, prep.is_positive,
                                              prep.ground_truth.size());
    std::printf("unsupervised WNP + %-6s    %.4f   %.4f    %.4f\n",
                EdgeWeightSchemeName(scheme), m.recall, m.precision, m.f1);
  }

  MetaBlockingConfig config;
  config.pruning = PruningKind::kWnp;
  config.features = FeatureSet::BlastOptimal();
  config.train_per_class = 25;
  MetaBlockingResult sup = RunMetaBlocking(prep, config);
  std::printf("supervised   WNP (50 labels)  %.4f   %.4f    %.4f\n",
              sup.metrics.recall, sup.metrics.precision, sup.metrics.f1);

  std::printf("\nCombining schemes through a classifier beats any single "
              "scheme — the\npaper's core motivation for (Generalized) "
              "Supervised Meta-blocking.\n");
  return 0;
}
