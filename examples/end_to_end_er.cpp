// End-to-end Entity Resolution: blocking -> generalized supervised
// meta-blocking -> matching -> entity clusters.
//
// The paper stops at the candidate set ("this block collection is then
// processed by a Matching algorithm, whose goal is to raise F1 close to
// 1", Section 5.2); this example closes the loop with the reference
// threshold matcher and shows the F1 climbing at each stage.
//
// Build & run:  ./build/examples/end_to_end_er

#include <cstdio>

#include "core/pipeline.h"
#include "datasets/dirty_generator.h"
#include "datasets/specs.h"
#include "matching/matcher.h"

int main() {
  using namespace gsmb;

  // A dirty collection: one source, duplicate clusters of 1-4 records.
  DirtySpec spec;
  spec.name = "end-to-end";
  spec.num_entities = 3000;
  spec.seed = 11;
  GeneratedDirty data = DirtyGenerator().Generate(spec);
  std::printf("Collection: %zu profiles, %zu duplicate pairs\n",
              data.entities.size(), data.ground_truth.size());

  GroundTruth gt = data.ground_truth;  // keep a copy for matching eval
  PreparedDataset prep =
      PrepareDirty(spec.name, data.entities, std::move(gt));
  std::printf(
      "\nStage 1 — blocking:       %8zu pairs   Re %.3f  Pr %.5f  F1 %.5f\n",
      prep.pairs.size(), prep.blocking_quality.recall,
      prep.blocking_quality.precision, prep.blocking_quality.f1);

  MetaBlockingConfig config;
  config.features = FeatureSet::BlastOptimal();
  config.pruning = PruningKind::kBlast;
  config.train_per_class = 25;
  config.keep_retained = true;
  MetaBlockingResult mb = RunMetaBlocking(prep, config);
  std::printf(
      "Stage 2 — meta-blocking:  %8zu pairs   Re %.3f  Pr %.5f  F1 %.5f\n",
      mb.metrics.retained, mb.metrics.recall, mb.metrics.precision,
      mb.metrics.f1);

  ThresholdMatcher matcher(/*threshold=*/0.4);
  auto decisions =
      matcher.Match(data.entities, prep.pairs, mb.retained_indices);
  MatchingQuality mq = EvaluateMatching(decisions, data.ground_truth);
  std::printf(
      "Stage 3 — matching:       %8zu pairs   Re %.3f  Pr %.5f  F1 %.5f\n",
      mq.decided_matches, mq.recall, mq.precision, mq.f1);

  auto clusters = ClusterMatches(data.entities.size(), decisions);
  size_t largest = 0;
  for (const auto& c : clusters) largest = std::max(largest, c.size());
  std::printf(
      "\nClustering: %zu duplicate clusters (largest has %zu records).\n",
      clusters.size(), largest);
  if (!clusters.empty()) {
    std::printf("First cluster:");
    for (EntityId e : clusters.front()) {
      std::printf(" %s", data.entities[e].external_id().c_str());
    }
    std::printf("\n");
  }

  std::printf("\nEach stage multiplies precision while recall degrades "
              "gently — the division\nof labour the paper's Definition 2 "
              "formalises.\n");
  return 0;
}
