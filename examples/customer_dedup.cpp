// Dirty ER on a legacy customer database — the scenario that motivates the
// paper (Section 1.2): ~millions of electricity-supply records carrying a
// customer name, an address and usually-empty optional fields, riddled with
// duplicate registrations.
//
// This example hand-rolls a miniature such database (no generator library
// involved) to show how the public API deals with raw, messy profiles:
// schema-agnostic Token Blocking needs no schema alignment, and Generalized
// Supervised Meta-blocking needs only 50 labelled pairs.
//
// Build & run:  ./build/examples/customer_dedup

#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "er/entity_collection.h"
#include "util/random.h"

namespace {

using namespace gsmb;

const char* kFirstNames[] = {"mario", "giulia", "luca",  "anna",
                             "paolo", "sofia",  "marco", "elena"};
const char* kLastNames[] = {"rossi", "russo",  "ferrari", "esposito",
                            "bianchi", "romano", "colombo", "ricci"};
const char* kStreets[] = {"via roma",      "corso italia",  "via garibaldi",
                          "viale europa",  "via mazzini",   "via verdi",
                          "corso venezia", "via dante"};
const char* kCities[] = {"modena", "bologna", "parma", "ferrara"};

// One registration of a customer; `sloppy` simulates the second data-entry:
// abbreviations, swapped fields, missing tax id.
EntityProfile MakeRecord(const std::string& id, size_t person, size_t street,
                         size_t number, size_t city, bool has_tax_id,
                         bool sloppy, Rng* rng) {
  EntityProfile p(id);
  std::string name = std::string(kFirstNames[person % 8]) + " " +
                     kLastNames[(person / 8) % 8];
  std::string address = std::string(kStreets[street]) + " " +
                        std::to_string(number) + " " + kCities[city];
  if (sloppy) {
    // Sloppy copies abbreviate the street type and may drop the city.
    std::string abbreviated = address;
    if (abbreviated.rfind("via ", 0) == 0) abbreviated = abbreviated.substr(4);
    if (rng->NextBool(0.4)) abbreviated = abbreviated.substr(
        0, abbreviated.rfind(' '));
    p.AddAttribute("customer", name);
    p.AddAttribute("supply_address", abbreviated);
  } else {
    p.AddAttribute("name", name);
    p.AddAttribute("address", address);
  }
  if (has_tax_id && !sloppy) {
    p.AddAttribute("tax_id", "tx" + std::to_string(person * 7919 + number));
  }
  return p;
}

// Builds "c<n>" via operator+= (the append path). String operator+ on
// rvalues can inline through basic_string::insert, which trips a GCC 12
// -Wrestrict false positive at -O3 (GCC PR105651).
std::string RecordId(size_t n) {
  std::string id = "c";
  id += std::to_string(n);
  return id;
}

}  // namespace

int main() {
  using namespace gsmb;
  Rng rng(2024);

  // ---- Build the dirty collection: ~1200 registrations, ~25% duplicated.
  EntityCollection customers("customers");
  GroundTruth gt(/*dirty=*/true);
  size_t id_counter = 0;
  for (size_t person = 0; person < 900; ++person) {
    size_t street = rng.NextUint64(8);
    size_t number = 1 + rng.NextUint64(120);
    size_t city = rng.NextUint64(4);
    bool has_tax_id = rng.NextBool(0.3);

    EntityId first = customers.Add(
        MakeRecord(RecordId(id_counter++), person, street, number, city,
                   has_tax_id, /*sloppy=*/false, &rng));
    if (rng.NextBool(0.25)) {
      // A second, sloppier registration of the same supply.
      EntityId dup = customers.Add(
          MakeRecord(RecordId(id_counter++), person, street, number, city,
                     has_tax_id, /*sloppy=*/true, &rng));
      gt.AddMatch(first, dup);
    }
  }
  std::printf("Customer DB: %zu registrations, %zu known duplicate pairs\n",
              customers.size(), gt.size());

  // ---- Blocking + meta-blocking. ----
  PreparedDataset prep = PrepareDirty("customers", customers, std::move(gt));
  std::printf("Token Blocking: %zu blocks -> %zu candidate pairs "
              "(recall %.3f, precision %.4f)\n",
              prep.blocks.size(), prep.pairs.size(),
              prep.blocking_quality.recall, prep.blocking_quality.precision);

  for (PruningKind kind : {PruningKind::kBlast, PruningKind::kRcnp}) {
    MetaBlockingConfig config;
    config.pruning = kind;
    config.features = kind == PruningKind::kBlast
                          ? FeatureSet::BlastOptimal()
                          : FeatureSet::RcnpOptimal();
    config.train_per_class = 25;
    MetaBlockingResult result = RunMetaBlocking(prep, config);
    std::printf(
        "%-5s kept %5zu pairs: recall %.3f, precision %.3f, F1 %.3f "
        "(%.1f ms)\n",
        PruningKindName(kind), result.metrics.retained,
        result.metrics.recall, result.metrics.precision, result.metrics.f1,
        result.total_seconds * 1e3);
  }

  std::printf(
      "\nReading: BLAST favours recall (catch every duplicate supply), "
      "RCNP favours\nprecision (fewer pairs for the clerks to review). Both "
      "needed only 50 labels.\n");
  return 0;
}
