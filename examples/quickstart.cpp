// Quickstart: the full Generalized Supervised Meta-blocking pipeline
// through the public facade, in ~20 lines of library calls.
//
//   1. describe the job as a declarative gsmb::JobSpec — dataset, blocking,
//      features, classifier, pruning, training, execution mode,
//   2. hand it to gsmb::Engine. The engine validates the spec, picks the
//      backend (here `auto`: batch, unless the arena-bytes model exceeds
//      the memory budget) and runs block -> weight -> classify -> prune,
//   3. read the JobResult. The same spec serializes to JSON
//      (spec.ToJson(), `gsmb_cli explain`) and replays byte-identically
//      through `gsmb_cli run --config job.json` — and through the
//      streaming backend, which retains the same pairs by construction.
//
// Build & run:  ./build/examples/quickstart
//
// `quickstart --export-csv DIR` instead writes the quickstart dataset as
// DIR/e1.csv, DIR/e2.csv and DIR/gt.csv — the fixture the CI smoke tests
// feed to `gsmb_cli` (including `run --config`).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "datasets/clean_clean_generator.h"
#include "datasets/io.h"
#include "datasets/specs.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"

int main(int argc, char** argv) {
  using namespace gsmb;

  if (argc > 1 && (argc != 3 || std::strcmp(argv[1], "--export-csv") != 0)) {
    std::fprintf(stderr, "usage: quickstart [--export-csv DIR]\n");
    return 2;
  }
  if (argc == 3) {
    // Materialise the generated dataset as CSVs for the CLI smoke tests.
    CleanCleanSpec spec = CleanCleanSpecByName("AbtBuy", /*scale=*/0.25);
    GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
    const std::string dir = argv[2];
    std::filesystem::create_directories(dir);
    SaveCollectionCsv(data.e1, dir + "/e1.csv");
    SaveCollectionCsv(data.e2, dir + "/e2.csv");
    SaveGroundTruthCsv(data.ground_truth, data.e1, data.e2, dir + "/gt.csv");
    std::printf("Exported quickstart dataset (%zu + %zu profiles, %zu "
                "matches) to %s\n",
                data.e1.size(), data.e2.size(), data.ground_truth.size(),
                dir.c_str());
    return 0;
  }

  // ---- 1. The job, declaratively. ----
  JobSpec job;
  job.dataset.source = DatasetSource::kGeneratedCleanClean;
  job.dataset.name = "AbtBuy";  // synthetic stand-in for the paper's pair
  job.dataset.scale = 0.25;
  job.features = FeatureSet::BlastOptimal();  // {CF-IBF, RACCB, RS, NRS}
  job.classifier = ClassifierKind::kLogisticRegression;
  job.pruning.kind = PruningKind::kBlast;  // weight-based, recall-friendly
  job.training.labels_per_class = 25;      // 50 labelled pairs in total
  job.execution.mode = ExecutionMode::kAuto;
  job.execution.memory_budget_mb = 512;  // auto: stream if this won't fit

  std::printf("The job as a portable spec (gsmb_cli run --config ...):\n%s\n",
              job.ToJson().c_str());

  // ---- 2. One call, any backend. ----
  Engine engine;
  Result<JobResult> outcome = engine.Run(job);
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  const JobResult& result = *outcome;

  // ---- 3. Read the results. ----
  std::printf(
      "\nBlocking (%s backend): %zu blocks, %llu candidate pairs, "
      "recall %.3f, precision %.5f\n",
      result.backend.c_str(), result.num_blocks,
      static_cast<unsigned long long>(result.num_candidates),
      result.blocking_quality.recall, result.blocking_quality.precision);
  std::printf(
      "\nBLAST retained %zu of %llu pairs:\n"
      "  recall    %.3f  (blocking had %.3f)\n"
      "  precision %.3f  (blocking had %.5f — %.0fx better)\n"
      "  F1        %.3f\n"
      "  run-time  %.1f ms (features %.1f | train %.1f | classify %.1f | "
      "prune %.1f)\n",
      result.metrics.retained,
      static_cast<unsigned long long>(result.num_candidates),
      result.metrics.recall, result.blocking_quality.recall,
      result.metrics.precision, result.blocking_quality.precision,
      result.metrics.precision / result.blocking_quality.precision,
      result.metrics.f1, result.total_seconds * 1e3,
      result.feature_seconds * 1e3, result.train_seconds * 1e3,
      result.classify_seconds * 1e3, result.prune_seconds * 1e3);

  std::printf(
      "\nNext steps: `gsmb_cli explain` writes this spec as job.json; "
      "switch\nexecution.mode to streaming or serving and the retained "
      "pairs stay identical.\nSee examples/incremental_serving.cpp for the "
      "live-session side of the facade.\n");
  return 0;
}
