// Quickstart: the full Generalized Supervised Meta-blocking pipeline in
// ~60 lines.
//
//   1. get two entity collections + ground truth (here: synthetic data
//      shaped like the AbtBuy product-matching benchmark),
//   2. Prepare*() runs Token Blocking -> Block Purging -> Block Filtering
//      and materialises the candidate pairs,
//   3. RunMetaBlocking() extracts weighting-scheme features, trains a
//      probabilistic classifier on 50 labelled pairs, weights every
//      candidate and prunes with supervised BLAST.
//
// Build & run:  ./build/examples/quickstart
//
// `quickstart --export-csv DIR` instead writes the quickstart dataset as
// DIR/e1.csv, DIR/e2.csv and DIR/gt.csv — the fixture the CI smoke tests
// feed to `gsmb_cli` (including `--streaming`).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/pipeline.h"
#include "datasets/clean_clean_generator.h"
#include "datasets/io.h"
#include "datasets/specs.h"

int main(int argc, char** argv) {
  using namespace gsmb;

  // ---- 1. Data: two clean collections with known matches. ----
  CleanCleanSpec spec = CleanCleanSpecByName("AbtBuy", /*scale=*/0.25);
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);

  if (argc > 1 && (argc != 3 || std::strcmp(argv[1], "--export-csv") != 0)) {
    std::fprintf(stderr, "usage: quickstart [--export-csv DIR]\n");
    return 2;
  }
  if (argc == 3) {
    const std::string dir = argv[2];
    std::filesystem::create_directories(dir);
    SaveCollectionCsv(data.e1, dir + "/e1.csv");
    SaveCollectionCsv(data.e2, dir + "/e2.csv");
    SaveGroundTruthCsv(data.ground_truth, data.e1, data.e2,
                       dir + "/gt.csv");
    std::printf("Exported quickstart dataset (%zu + %zu profiles, %zu "
                "matches) to %s\n",
                data.e1.size(), data.e2.size(), data.ground_truth.size(),
                dir.c_str());
    return 0;
  }

  std::printf("Input: |E1| = %zu, |E2| = %zu, known matches |D| = %zu\n",
              data.e1.size(), data.e2.size(), data.ground_truth.size());

  // A peek at one profile — schema-agnostic blocking never needs a schema.
  const EntityProfile& sample = data.e1[0];
  std::printf("Sample profile '%s':\n", sample.external_id().c_str());
  for (const Attribute& a : sample.attributes()) {
    std::printf("  %-12s %s\n", a.name.c_str(), a.value.c_str());
  }

  // ---- 2. Blocking. ----
  PreparedDataset prep = PrepareCleanClean(
      spec.name, data.e1, data.e2, std::move(data.ground_truth));
  std::printf(
      "\nBlocking: %zu blocks, %zu candidate pairs, recall %.3f, "
      "precision %.5f\n",
      prep.blocks.size(), prep.pairs.size(), prep.blocking_quality.recall,
      prep.blocking_quality.precision);

  // ---- 3. Generalized Supervised Meta-blocking. ----
  MetaBlockingConfig config;
  config.features = FeatureSet::BlastOptimal();  // {CF-IBF, RACCB, RS, NRS}
  config.classifier = ClassifierKind::kLogisticRegression;
  config.pruning = PruningKind::kBlast;  // weight-based, recall-friendly
  config.train_per_class = 25;           // 50 labelled pairs in total

  MetaBlockingResult result = RunMetaBlocking(prep, config);
  std::printf(
      "\nBLAST retained %zu of %zu pairs:\n"
      "  recall    %.3f  (blocking had %.3f)\n"
      "  precision %.3f  (blocking had %.5f — %.0fx better)\n"
      "  F1        %.3f\n"
      "  run-time  %.1f ms (features %.1f | train %.1f | classify %.1f | "
      "prune %.1f)\n",
      result.metrics.retained, prep.pairs.size(), result.metrics.recall,
      prep.blocking_quality.recall, result.metrics.precision,
      prep.blocking_quality.precision,
      result.metrics.precision / prep.blocking_quality.precision,
      result.metrics.f1, result.total_seconds * 1e3,
      result.feature_seconds * 1e3, result.train_seconds * 1e3,
      result.classify_seconds * 1e3, result.prune_seconds * 1e3);

  std::printf(
      "\nNext steps: feed the retained pairs to your matching function; see\n"
      "examples/customer_dedup.cpp (Dirty ER) and "
      "examples/product_linkage.cpp (CSV data).\n");
  return 0;
}
