#include "blocking/entity_index.h"

#include <algorithm>
#include <ranges>

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsmb {
namespace {

// Hand-computed aggregates for the paper's Figure 1 example (see
// test_support.h). Block comparisons: 1,1,6,3,10,1,1,1 -> ||B|| = 24;
// sizes 2,2,4,3,5,2,2,2 -> sum 22.
class PaperIndexTest : public ::testing::Test {
 protected:
  PaperIndexTest() : bc_(testing::PaperExampleBlocks()), index_(bc_) {}
  BlockCollection bc_;
  EntityIndex index_;
};

TEST_F(PaperIndexTest, GlobalCounts) {
  EXPECT_FALSE(index_.clean_clean());
  EXPECT_EQ(index_.num_entities(), 7u);
  EXPECT_EQ(index_.num_blocks(), 8u);
  EXPECT_DOUBLE_EQ(index_.TotalComparisons(), 24.0);
  EXPECT_EQ(index_.TotalEntityOccurrences(), 22u);
}

TEST_F(PaperIndexTest, BlocksOfEntitiesAreSorted) {
  for (size_t e = 0; e < index_.num_entities(); ++e) {
    auto blocks = index_.BlocksOf(e);
    for (size_t i = 1; i < blocks.size(); ++i) {
      EXPECT_LT(blocks[i - 1], blocks[i]);
    }
  }
}

TEST_F(PaperIndexTest, EntityBlockLists) {
  // e0 (paper e1): apple, iphone, smartphone -> blocks 0, 1, 4.
  auto b0 = index_.BlocksOf(0);
  ASSERT_EQ(b0.size(), 3u);
  EXPECT_EQ(b0[0], 0u);
  EXPECT_EQ(b0[1], 1u);
  EXPECT_EQ(b0[2], 4u);
  // e6 (paper e7): samsung, 20, mate, phone, fold -> blocks 2,3,5,6,7.
  EXPECT_EQ(index_.NumBlocksOf(6), 5u);
  // e4 (paper e5): 20, smartphone.
  EXPECT_EQ(index_.NumBlocksOf(4), 2u);
}

TEST_F(PaperIndexTest, BlockSizeAndComparisons) {
  EXPECT_EQ(index_.BlockSize(2), 4u);     // samsung
  EXPECT_DOUBLE_EQ(index_.BlockComparisons(2), 6.0);
  EXPECT_EQ(index_.BlockSize(4), 5u);     // smartphone
  EXPECT_DOUBLE_EQ(index_.BlockComparisons(4), 10.0);
  EXPECT_EQ(index_.BlockSize(0), 2u);
  EXPECT_DOUBLE_EQ(index_.BlockComparisons(0), 1.0);
}

TEST_F(PaperIndexTest, EntityAggregates) {
  // e0: blocks {1, 1, 10}.
  EXPECT_DOUBLE_EQ(index_.EntityComparisons(0), 12.0);
  EXPECT_NEAR(index_.SumInvBlockComparisons(0), 2.1, 1e-12);
  EXPECT_NEAR(index_.SumInvBlockSizes(0), 1.2, 1e-12);
  // e5: blocks {6, 1, 1, 1}.
  EXPECT_DOUBLE_EQ(index_.EntityComparisons(5), 9.0);
  EXPECT_NEAR(index_.SumInvBlockComparisons(5), 1.0 / 6 + 3.0, 1e-12);
  EXPECT_NEAR(index_.SumInvBlockSizes(5), 0.25 + 1.5, 1e-12);
  // e6: blocks {6, 3, 1, 1, 1}.
  EXPECT_DOUBLE_EQ(index_.EntityComparisons(6), 12.0);
  EXPECT_NEAR(index_.SumInvBlockComparisons(6), 1.0 / 6 + 1.0 / 3 + 3.0,
              1e-12);
  EXPECT_NEAR(index_.SumInvBlockSizes(6), 0.25 + 1.0 / 3 + 1.5, 1e-12);
}

TEST_F(PaperIndexTest, CommonBlocks) {
  EXPECT_EQ(index_.CommonBlocks(0, 2), 3u);  // apple, iphone, smartphone
  EXPECT_EQ(index_.CommonBlocks(1, 3), 2u);  // samsung, smartphone
  EXPECT_EQ(index_.CommonBlocks(5, 6), 4u);  // samsung, mate, phone, fold
  EXPECT_EQ(index_.CommonBlocks(0, 1), 1u);  // smartphone
  EXPECT_EQ(index_.CommonBlocks(0, 5), 0u);  // nothing shared
}

TEST_F(PaperIndexTest, BlockMembersAsGlobals) {
  auto members = index_.BlockLeftGlobals(2);  // samsung
  ASSERT_EQ(members.size(), 4u);
  EXPECT_EQ(members[0], 1u);
  EXPECT_EQ(members[3], 6u);
  EXPECT_TRUE(index_.BlockRightGlobals(2).empty());
}

TEST(EntityIndexCleanClean, GlobalIdMapping) {
  testing::TinyCleanClean t = testing::MakeTinyCleanClean();
  BlockCollection bc(/*clean_clean=*/true, t.e1.size(), t.e2.size());
  Block b;
  b.key = "alpha";
  b.left = {0, 2};
  b.right = {0};
  bc.Add(b);
  EntityIndex index(bc);
  EXPECT_TRUE(index.clean_clean());
  EXPECT_EQ(index.num_left(), 3u);
  EXPECT_EQ(index.num_entities(), 6u);
  EXPECT_EQ(index.GlobalId(false, 2), 2u);
  EXPECT_EQ(index.GlobalId(true, 0), 3u);
  // Right member stored as global id |E1| + 0 = 3.
  auto right = index.BlockRightGlobals(0);
  ASSERT_EQ(right.size(), 1u);
  EXPECT_EQ(right[0], 3u);
  // The E2 entity's block list lives at its global id.
  EXPECT_EQ(index.NumBlocksOf(3), 1u);
  EXPECT_EQ(index.NumBlocksOf(4), 0u);
}

TEST(EntityIndexCleanClean, PerSideComparisons) {
  BlockCollection bc(/*clean_clean=*/true, 3, 3);
  Block b;
  b.key = "k";
  b.left = {0, 1};
  b.right = {0, 1, 2};
  bc.Add(b);
  EntityIndex index(bc);
  EXPECT_EQ(index.BlockSize(0), 5u);
  EXPECT_DOUBLE_EQ(index.BlockComparisons(0), 6.0);  // 2 * 3
  EXPECT_DOUBLE_EQ(index.TotalComparisons(), 6.0);
}

// Parallel construction must produce a field-for-field identical index for
// any thread count (the serving layer's Refresh() and the batch pipeline
// both rely on this).
TEST(EntityIndexParallel, ConstructionIdenticalAcrossThreadCounts) {
  const BlockCollection& bc = testing::MediumDataset().blocks;
  const EntityIndex serial(bc, 1);
  for (size_t threads : {2, 4, 8}) {
    const EntityIndex parallel(bc, threads);
    ASSERT_EQ(parallel.num_entities(), serial.num_entities());
    ASSERT_EQ(parallel.num_blocks(), serial.num_blocks());
    EXPECT_EQ(parallel.TotalComparisons(), serial.TotalComparisons());
    EXPECT_EQ(parallel.TotalEntityOccurrences(),
              serial.TotalEntityOccurrences());
    for (size_t e = 0; e < serial.num_entities(); ++e) {
      ASSERT_TRUE(std::ranges::equal(parallel.BlocksOf(e),
                                     serial.BlocksOf(e)))
          << "entity " << e << ", " << threads << " threads";
      EXPECT_EQ(parallel.EntityComparisons(e), serial.EntityComparisons(e));
      EXPECT_EQ(parallel.SumInvBlockComparisons(e),
                serial.SumInvBlockComparisons(e));
      EXPECT_EQ(parallel.SumInvBlockSizes(e), serial.SumInvBlockSizes(e));
    }
    for (uint32_t b = 0; b < serial.num_blocks(); ++b) {
      ASSERT_TRUE(std::ranges::equal(parallel.BlockLeftGlobals(b),
                                     serial.BlockLeftGlobals(b)));
      ASSERT_TRUE(std::ranges::equal(parallel.BlockRightGlobals(b),
                                     serial.BlockRightGlobals(b)));
      EXPECT_EQ(parallel.BlockSize(b), serial.BlockSize(b));
      EXPECT_EQ(parallel.BlockComparisons(b), serial.BlockComparisons(b));
    }
  }
}

}  // namespace
}  // namespace gsmb
