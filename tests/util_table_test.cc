#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace gsmb {
namespace {

TEST(Table, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, PadsMissingCells) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NO_THROW(t.ToString());
}

TEST(Table, Markdown) {
  TablePrinter t({"h1", "h2"});
  t.AddRow({"a", "b"});
  std::string md = t.ToMarkdown();
  EXPECT_NE(md.find("| h1 | h2 |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
}

TEST(Table, FixedFormat) {
  EXPECT_EQ(TablePrinter::Fixed(0.12345, 3), "0.123");
  EXPECT_EQ(TablePrinter::Fixed(2.0, 1), "2.0");
}

TEST(Table, ScientificFormat) {
  EXPECT_EQ(TablePrinter::Scientific(0.000122, 2), "1.22e-04");
}

TEST(Table, CountFormat) {
  EXPECT_EQ(TablePrinter::Count(0), "0");
  EXPECT_EQ(TablePrinter::Count(999), "999");
  EXPECT_EQ(TablePrinter::Count(1000), "1,000");
  EXPECT_EQ(TablePrinter::Count(1234567), "1,234,567");
}

}  // namespace
}  // namespace gsmb
