#include "core/unsupervised.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsmb {
namespace {

class UnsupervisedTest : public ::testing::Test {
 protected:
  UnsupervisedTest()
      : bc_(testing::PaperExampleBlocks()),
        index_(bc_),
        pairs_(GenerateCandidatePairs(index_)) {
    context_.num_nodes = index_.num_entities();
    context_.right_offset = 0;
    context_.cep_k = 11;  // Σ|b| / 2
    context_.cnp_k = 22.0 / 7.0;
  }

  BlockCollection bc_;
  EntityIndex index_;
  std::vector<CandidatePair> pairs_;
  PruningContext context_;
};

TEST_F(UnsupervisedTest, CbsWeightsAreCommonBlockCounts) {
  auto weights = ComputeEdgeWeights(index_, pairs_, EdgeWeightScheme::kCbs);
  ASSERT_EQ(weights.size(), pairs_.size());
  for (size_t i = 0; i < pairs_.size(); ++i) {
    EXPECT_DOUBLE_EQ(weights[i],
                     static_cast<double>(index_.CommonBlocks(
                         pairs_[i].left, pairs_[i].right)));
  }
}

TEST_F(UnsupervisedTest, SchemeWeightsMatchFeatureColumns) {
  FeatureExtractor extractor(index_, pairs_);
  Matrix js = extractor.Compute(FeatureSet({Feature::kJs}));
  auto weights = ComputeEdgeWeights(index_, pairs_, EdgeWeightScheme::kJs);
  for (size_t i = 0; i < pairs_.size(); ++i) {
    EXPECT_DOUBLE_EQ(weights[i], js.At(i, 0));
  }
}

TEST_F(UnsupervisedTest, WepPrunesSuperfluousEdges) {
  auto retained = UnsupervisedMetaBlocking(
      index_, pairs_, EdgeWeightScheme::kCbs, PruningKind::kWep, context_);
  EXPECT_GT(retained.size(), 0u);
  EXPECT_LT(retained.size(), pairs_.size());
  // CBS mean over the 16 edges = 24/... sum of common blocks. The three
  // duplicate pairs all have CBS >= 2, above the mean of ~1.3, so they
  // all survive WEP (the paper's Figure 2 narrative).
  GroundTruth gt = testing::PaperExampleGroundTruth();
  size_t matches_kept = 0;
  for (uint32_t idx : retained) {
    if (gt.IsMatch(pairs_[idx].left, pairs_[idx].right)) ++matches_kept;
  }
  EXPECT_EQ(matches_kept, 3u);
}

TEST_F(UnsupervisedTest, AllSchemesRunWithAllAlgorithms) {
  for (EdgeWeightScheme scheme :
       {EdgeWeightScheme::kCbs, EdgeWeightScheme::kCfIbf,
        EdgeWeightScheme::kJs, EdgeWeightScheme::kRaccb,
        EdgeWeightScheme::kEjs, EdgeWeightScheme::kWjs, EdgeWeightScheme::kRs,
        EdgeWeightScheme::kNrs}) {
    for (PruningKind kind : {PruningKind::kWep, PruningKind::kWnp,
                             PruningKind::kRwnp, PruningKind::kBlast,
                             PruningKind::kCep, PruningKind::kCnp,
                             PruningKind::kRcnp}) {
      auto retained =
          UnsupervisedMetaBlocking(index_, pairs_, scheme, kind, context_);
      EXPECT_LE(retained.size(), pairs_.size())
          << EdgeWeightSchemeName(scheme) << "/" << PruningKindName(kind);
    }
  }
}

TEST_F(UnsupervisedTest, BClIsRejected) {
  EXPECT_THROW(
      UnsupervisedMetaBlocking(index_, pairs_, EdgeWeightScheme::kCbs,
                               PruningKind::kBCl, context_),
      std::invalid_argument);
}

TEST_F(UnsupervisedTest, SchemeNames) {
  EXPECT_STREQ(EdgeWeightSchemeName(EdgeWeightScheme::kCbs), "CBS");
  EXPECT_STREQ(EdgeWeightSchemeName(EdgeWeightScheme::kRaccb), "RACCB");
  EXPECT_STREQ(EdgeWeightSchemeName(EdgeWeightScheme::kNrs), "NRS");
}

}  // namespace
}  // namespace gsmb
