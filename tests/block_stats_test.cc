#include "blocking/block_stats.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsmb {
namespace {

TEST(BlockStats, PaperExampleStats) {
  BlockCollection bc = testing::PaperExampleBlocks();
  BlockCollectionStats stats = ComputeBlockStats(bc);
  EXPECT_EQ(stats.num_blocks, 8u);
  EXPECT_DOUBLE_EQ(stats.total_comparisons, 24.0);
  EXPECT_EQ(stats.total_occurrences, 22u);
  EXPECT_EQ(stats.max_block_size, 5u);
  EXPECT_DOUBLE_EQ(stats.avg_block_size, 22.0 / 8.0);
  // CEP budget: K = 22 / 2 = 11. CNP: k = max(1, 22/7).
  EXPECT_DOUBLE_EQ(stats.cep_k, 11.0);
  EXPECT_NEAR(stats.cnp_k, 22.0 / 7.0, 1e-12);
}

TEST(BlockStats, EmptyCollection) {
  BlockCollection bc(/*clean_clean=*/false, 0, 0);
  BlockCollectionStats stats = ComputeBlockStats(bc);
  EXPECT_EQ(stats.num_blocks, 0u);
  EXPECT_DOUBLE_EQ(stats.cnp_k, 1.0);
}

TEST(BlockStats, CnpKHasFloorOfOne) {
  BlockCollection bc(/*clean_clean=*/false, 100, 0);
  Block b;
  b.key = "k";
  b.left = {0, 1};
  bc.Add(b);
  EXPECT_DOUBLE_EQ(ComputeBlockStats(bc).cnp_k, 1.0);
}

TEST(BlockingQuality, PaperExample) {
  BlockCollection bc = testing::PaperExampleBlocks();
  EntityIndex index(bc);
  auto pairs = GenerateCandidatePairs(index);
  GroundTruth gt = testing::PaperExampleGroundTruth();
  BlockingQuality q = EvaluateBlockingQuality(pairs, gt);
  EXPECT_EQ(q.num_candidates, 16u);
  EXPECT_EQ(q.duplicates_covered, 3u);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.precision, 3.0 / 16.0);
  EXPECT_NEAR(q.f1, 2.0 * 1.0 * (3.0 / 16) / (1.0 + 3.0 / 16), 1e-12);
}

TEST(BlockingQuality, MissedDuplicateLowersRecall) {
  BlockCollection bc = testing::PaperExampleBlocks();
  EntityIndex index(bc);
  auto pairs = GenerateCandidatePairs(index);
  GroundTruth gt = testing::PaperExampleGroundTruth();
  gt.AddMatch(0, 4);  // e1-e5 share no block in the fixture? They do: b4.
  // (0,4) IS a candidate (both in smartphone), so recall stays 1.
  EXPECT_DOUBLE_EQ(EvaluateBlockingQuality(pairs, gt).recall, 1.0);
  gt.AddMatch(0, 5);  // e1-e6 share nothing -> missed
  BlockingQuality q = EvaluateBlockingQuality(pairs, gt);
  EXPECT_DOUBLE_EQ(q.recall, 4.0 / 5.0);
}

TEST(BlockingQuality, EmptyInputs) {
  GroundTruth gt;
  BlockingQuality q = EvaluateBlockingQuality({}, gt);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.f1, 0.0);
}

TEST(CommonBlockHistogram, PaperExample) {
  BlockCollection bc = testing::PaperExampleBlocks();
  EntityIndex index(bc);
  GroundTruth gt = testing::PaperExampleGroundTruth();
  std::vector<size_t> hist = CommonBlockHistogram(index, gt);
  // Duplicates share 3, 2 and 4 blocks respectively.
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 0u);
  EXPECT_EQ(hist[2], 1u);  // (e2, e4)
  EXPECT_EQ(hist[3], 1u);  // (e1, e3)
  EXPECT_EQ(hist[4], 1u);  // (e6, e7)
}

TEST(CommonBlockHistogram, CountsMissedDuplicatesAtZero) {
  BlockCollection bc = testing::PaperExampleBlocks();
  EntityIndex index(bc);
  GroundTruth gt(/*dirty=*/true);
  gt.AddMatch(0, 5);  // no shared block
  std::vector<size_t> hist = CommonBlockHistogram(index, gt);
  ASSERT_GE(hist.size(), 1u);
  EXPECT_EQ(hist[0], 1u);
}

}  // namespace
}  // namespace gsmb
