#include "util/matrix.h"

#include <gtest/gtest.h>

namespace gsmb {
namespace {

TEST(Matrix, BasicAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.Row(1)[2], 5.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(Matrix, EmptyStates) {
  Matrix def;
  EXPECT_TRUE(def.empty());
  Matrix zero_rows(0, 3);
  EXPECT_TRUE(zero_rows.empty());
  Matrix filled(1, 1);
  EXPECT_FALSE(filled.empty());
}

TEST(Matrix, SelectColumns) {
  Matrix m(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m.At(r, c) = static_cast<double>(10 * r + c);
  }
  Matrix s = m.SelectColumns({2, 0});
  ASSERT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(s.At(1, 1), 10.0);
}

TEST(Matrix, SelectRows) {
  Matrix m(3, 2);
  for (size_t r = 0; r < 3; ++r) {
    m.At(r, 0) = static_cast<double>(r);
    m.At(r, 1) = static_cast<double>(r * r);
  }
  Matrix s = m.SelectRows({2, 0, 2});
  ASSERT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(s.At(2, 1), 4.0);
}

TEST(Solve, TwoByTwo) {
  // 2x + y = 5 ; x - y = 1  ->  x = 2, y = 1
  std::vector<double> a = {2, 1, 1, -1};
  std::vector<double> b = {5, 1};
  ASSERT_TRUE(SolveLinearSystem(&a, &b, 2));
  EXPECT_NEAR(b[0], 2.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
}

TEST(Solve, ThreeByThreeNeedsPivoting) {
  // First pivot is zero; partial pivoting must handle it.
  std::vector<double> a = {0, 1, 1,
                           1, 0, 1,
                           1, 1, 0};
  std::vector<double> b = {3, 4, 5};
  ASSERT_TRUE(SolveLinearSystem(&a, &b, 3));
  // Solution: x = 3, y = 2, z = 1.
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
  EXPECT_NEAR(b[2], 1.0, 1e-12);
}

TEST(Solve, SingularReturnsFalse) {
  std::vector<double> a = {1, 2, 2, 4};  // rank 1
  std::vector<double> b = {1, 2};
  EXPECT_FALSE(SolveLinearSystem(&a, &b, 2));
}

TEST(Solve, Identity) {
  std::vector<double> a = {1, 0, 0, 1};
  std::vector<double> b = {7, -3};
  ASSERT_TRUE(SolveLinearSystem(&a, &b, 2));
  EXPECT_DOUBLE_EQ(b[0], 7.0);
  EXPECT_DOUBLE_EQ(b[1], -3.0);
}

TEST(Solve, OneByOne) {
  std::vector<double> a = {4};
  std::vector<double> b = {8};
  ASSERT_TRUE(SolveLinearSystem(&a, &b, 1));
  EXPECT_DOUBLE_EQ(b[0], 2.0);
}

}  // namespace
}  // namespace gsmb
