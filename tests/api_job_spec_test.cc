// JobSpec serialization: lossless round-trips for every field (defaulted
// and explicit), rejection diagnostics for malformed/unknown-version specs,
// and Validate()'s range/completeness checks.

#include "gsmb/job_spec.h"

#include <gtest/gtest.h>

#include <string>

namespace gsmb {
namespace {

JobSpec EveryFieldExplicit() {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kCsv;
  spec.dataset.e1 = "left.csv";
  spec.dataset.e2 = "right.csv";
  spec.dataset.ground_truth = "gt.csv";
  spec.blocking.scheme = kSchemeSuffix;
  spec.blocking.min_token_length = 2;
  spec.blocking.qgram = 4;
  spec.blocking.suffix_min_length = 5;
  spec.blocking.suffix_max_block_size = 48;
  spec.blocking.window = 6;
  spec.blocking.min_window = 3;
  spec.blocking.key_similarity = 0.75;
  spec.blocking.attribute_similarity = 0.4;
  spec.blocking.lsh_bands = 16;
  spec.blocking.lsh_rows = 2;
  spec.blocking.minhash_seed = 99;
  spec.blocking.purge_size_fraction = 0.25;
  spec.blocking.filter_ratio = 0.9;
  spec.features = FeatureSet::RcnpOptimal();
  spec.classifier = ClassifierKind::kLinearSvc;
  spec.pruning.kind = PruningKind::kRcnp;
  spec.pruning.blast_ratio = 0.4;
  spec.training.labels_per_class = 123;
  spec.training.seed = 18446744073709551615ull;  // 2^64 - 1: must survive
  spec.execution.mode = ExecutionMode::kStreaming;
  spec.execution.options.num_threads = 8;
  spec.execution.shards = 32;
  spec.execution.memory_budget_mb = 256;
  spec.execution.serving_max_block_size = 150;
  spec.output.retained_csv = "out.csv";
  spec.output.keep_retained = true;
  return spec;
}

TEST(JobSpecJson, DefaultSpecRoundTrips) {
  JobSpec spec;  // all defaults
  Result<JobSpec> again = JobSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(spec == *again);
}

TEST(JobSpecJson, ExplicitSpecRoundTripsEveryField) {
  const JobSpec spec = EveryFieldExplicit();
  Result<JobSpec> again = JobSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(spec == *again);
}

TEST(JobSpecJson, GeneratedDatasetRoundTrips) {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = 0.05;
  spec.execution.mode = ExecutionMode::kServing;
  Result<JobSpec> again = JobSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(spec == *again);
}

TEST(JobSpecJson, CustomFeatureListRoundTrips) {
  JobSpec spec;
  spec.features = FeatureSet{Feature::kJs, Feature::kLcp, Feature::kWjs};
  Result<JobSpec> again = JobSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(spec.features.mask(), again->features.mask());
}

TEST(JobSpecJson, EveryPruningKindRoundTrips) {
  for (PruningKind kind : AllPruningKinds()) {
    JobSpec spec;
    spec.pruning.kind = kind;
    Result<JobSpec> again = JobSpec::FromJson(spec.ToJson());
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again->pruning.kind, kind);
  }
}

TEST(JobSpecJson, PartialSpecKeepsDefaults) {
  Result<JobSpec> spec = JobSpec::FromJson(
      R"({"version": 1, "pruning": {"kind": "cnp"}})");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->pruning.kind, PruningKind::kCnp);
  // Untouched sections keep their defaults.
  JobSpec defaults;
  EXPECT_EQ(spec->training.labels_per_class,
            defaults.training.labels_per_class);
  EXPECT_TRUE(spec->features == defaults.features);
}

// ---------------------------------------------------------------------------
// Version evolution (v1 -> v2)
// ---------------------------------------------------------------------------

TEST(JobSpecVersions, V1SpecIsReadAndUpgradedInMemory) {
  Result<JobSpec> spec = JobSpec::FromJson(
      R"({"version": 1, "pruning": {"kind": "cnp", "blast_ratio": 0.4}})");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->version, kJobSpecVersion);
  EXPECT_EQ(spec->pruning.kind, PruningKind::kCnp);
  // The v2-only field keeps its default — v1 semantics are unchanged.
  EXPECT_EQ(spec->pruning.validity_threshold, 0.5);
  // Re-serialization is canonical current-version JSON.
  EXPECT_NE(spec->ToJson().find("\"version\": 3"), std::string::npos);
  EXPECT_NE(spec->ToJson().find("\"validity_threshold\": 0.5"),
            std::string::npos);
}

TEST(JobSpecVersions, V1AndV2EquivalentsParseEqual) {
  Result<JobSpec> v1 = JobSpec::FromJson(
      R"({"version": 1, "training": {"labels_per_class": 42}})");
  Result<JobSpec> v2 = JobSpec::FromJson(
      R"({"version": 2, "training": {"labels_per_class": 42}})");
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(*v1 == *v2);
}

TEST(JobSpecVersions, V1RejectsVersion2Keys) {
  Result<JobSpec> spec = JobSpec::FromJson(
      R"({"version": 1, "pruning": {"validity_threshold": 0.4}})");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("version-2 key"), std::string::npos)
      << spec.status().message();
}

TEST(JobSpecVersions, V2RejectsVersion3SchemesAndKeys) {
  // Legacy versions may only name the legacy schemes; the new registry
  // schemes are a version-3 surface.
  Result<JobSpec> spec = JobSpec::FromJson(
      R"({"version": 2, "blocking": {"scheme": "minhash-lsh"}})");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("version-3 scheme"),
            std::string::npos)
      << spec.status().message();

  // ... and the per-scheme parameter keys are version-3 keys.
  for (const char* key : {"window", "min_window", "key_similarity",
                          "attribute_similarity", "lsh_bands", "lsh_rows",
                          "minhash_seed"}) {
    const std::string text = std::string(R"({"version": 2, "blocking": {")") +
                             key + R"(": 4}})";
    Result<JobSpec> rejected = JobSpec::FromJson(text);
    ASSERT_FALSE(rejected.ok()) << key;
    EXPECT_NE(rejected.status().message().find("version-3 key"),
              std::string::npos)
        << key << ": " << rejected.status().message();
  }

  // Legacy schemes stay readable in every version.
  Result<JobSpec> legacy = JobSpec::FromJson(
      R"({"version": 1, "blocking": {"scheme": "suffix"}})");
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy->blocking.scheme, kSchemeSuffix);
}

TEST(JobSpecVersions, NewSchemeFieldsRoundTripInV3) {
  JobSpec spec;
  spec.blocking.scheme = kSchemeMinHashLsh;
  spec.blocking.lsh_bands = 12;
  spec.blocking.lsh_rows = 3;
  spec.blocking.minhash_seed = 41;
  Result<JobSpec> again = JobSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(spec == *again);
  EXPECT_EQ(again->blocking.lsh_bands, 12u);
  EXPECT_EQ(again->blocking.minhash_seed, 41u);
}

TEST(JobSpecVersions, ValidityThresholdRoundTripsInV2) {
  JobSpec spec;
  spec.pruning.validity_threshold = 0.25;
  Result<JobSpec> again = JobSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->pruning.validity_threshold, 0.25);
  EXPECT_TRUE(spec == *again);

  // <= 0 (disabled floor) is a legal, serializable setting.
  spec.pruning.validity_threshold = 0.0;
  again = JobSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->pruning.validity_threshold, 0.0);
}

TEST(JobSpecVersions, ValidateRejectsImpossibleThreshold) {
  JobSpec spec;
  spec.dataset.e1 = "a.csv";
  spec.dataset.ground_truth = "gt.csv";
  spec.pruning.validity_threshold = 1.0;  // would discard every pair
  Status status = spec.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("validity_threshold"), std::string::npos);

  spec.pruning.validity_threshold = -0.5;  // disabled floor: fine
  EXPECT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();
}

// ---------------------------------------------------------------------------
// Rejection diagnostics
// ---------------------------------------------------------------------------

void ExpectRejected(const std::string& text, const std::string& fragment) {
  Result<JobSpec> spec = JobSpec::FromJson(text);
  ASSERT_FALSE(spec.ok()) << "accepted: " << text;
  EXPECT_NE(spec.status().message().find(fragment), std::string::npos)
      << "message '" << spec.status().message() << "' lacks '" << fragment
      << "'";
}

TEST(JobSpecJson, RejectsMalformedJson) {
  ExpectRejected("{", "JSON parse error");
  ExpectRejected("[1]", "must be a JSON object");
}

TEST(JobSpecJson, RejectsMissingAndUnknownVersion) {
  ExpectRejected(R"({})", "version is required");
  ExpectRejected(R"({"version": 99})", "unsupported spec version 99");
  ExpectRejected(R"({"version": "one"})", "non-negative integer");
}

TEST(JobSpecJson, RejectsUnknownKeysWithPath) {
  ExpectRejected(R"({"version": 1, "prunning": {}})",
                 "unknown key 'prunning' in spec");
  ExpectRejected(R"({"version": 1, "training": {"labels": 5}})",
                 "unknown key 'labels' in spec.training");
}

TEST(JobSpecJson, RejectsTypeMismatchesWithPath) {
  ExpectRejected(R"({"version": 1, "training": {"seed": -4}})",
                 "spec.training.seed");
  ExpectRejected(R"({"version": 1, "blocking": {"filter_ratio": "high"}})",
                 "spec.blocking.filter_ratio: expected a number");
  ExpectRejected(R"({"version": 1, "dataset": {"e1": 7}})",
                 "spec.dataset.e1: expected a string");
}

TEST(JobSpecJson, RejectsUnknownEnumNames) {
  ExpectRejected(R"({"version": 1, "pruning": {"kind": "blart"}})",
                 "unknown pruning kind 'blart'");
  ExpectRejected(R"({"version": 1, "classifier": "forest"})",
                 "unknown classifier 'forest'");
  ExpectRejected(R"({"version": 1, "features": "blst"})", "unknown feature");
  ExpectRejected(R"({"version": 1, "execution": {"mode": "spark"}})",
                 "unknown execution mode 'spark'");
  ExpectRejected(R"({"version": 1, "dataset": {"source": "parquet"}})",
                 "unknown dataset source 'parquet'");
  ExpectRejected(R"({"version": 1, "blocking": {"scheme": "lsh"}})",
                 "unknown blocking scheme 'lsh'");
}

// ---------------------------------------------------------------------------
// Validate()
// ---------------------------------------------------------------------------

TEST(JobSpecValidate, DefaultCsvSpecNeedsPaths) {
  JobSpec spec;  // csv source, no paths
  Status status = spec.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("dataset.e1"), std::string::npos);
}

TEST(JobSpecValidate, CompleteSpecsPass) {
  JobSpec csv;
  csv.dataset.e1 = "a.csv";
  csv.dataset.ground_truth = "gt.csv";
  EXPECT_TRUE(csv.Validate().ok()) << csv.Validate().ToString();

  JobSpec generated;
  generated.dataset.source = DatasetSource::kGeneratedCleanClean;
  generated.dataset.name = "AbtBuy";
  generated.dataset.scale = 0.25;
  EXPECT_TRUE(generated.Validate().ok()) << generated.Validate().ToString();
}

TEST(JobSpecValidate, RejectsOutOfRangeValues) {
  JobSpec base;
  base.dataset.e1 = "a.csv";
  base.dataset.ground_truth = "gt.csv";

  JobSpec spec = base;
  spec.blocking.filter_ratio = 1.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = base;
  spec.blocking.purge_size_fraction = 0.0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = base;
  spec.execution.shards = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = base;
  spec.training.labels_per_class = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = base;
  spec.pruning.blast_ratio = 0.0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = base;
  spec.dataset.name = "AbtBuy";  // name on a csv source
  EXPECT_FALSE(spec.Validate().ok());

  spec = base;
  spec.blocking.scheme = kSchemeSuffix;
  spec.blocking.suffix_max_block_size = 1;
  EXPECT_FALSE(spec.Validate().ok());

  // Per-scheme params are validated by the scheme's own registry entry.
  spec = base;
  spec.blocking.scheme = kSchemeSortedNeighborhood;
  spec.blocking.window = 1;
  EXPECT_FALSE(spec.Validate().ok());

  spec = base;
  spec.blocking.scheme = kSchemeDynamicSortedNeighborhood;
  spec.blocking.key_similarity = 0.0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = base;
  spec.blocking.scheme = kSchemeAttributeClustering;
  spec.blocking.attribute_similarity = 1.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = base;
  spec.blocking.scheme = kSchemeMinHashLsh;
  spec.blocking.lsh_bands = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = base;
  spec.blocking.scheme = "not-a-scheme";
  EXPECT_FALSE(spec.Validate().ok());
  EXPECT_NE(spec.Validate().message().find("registered"), std::string::npos);
}

TEST(JobSpecValidate, GeneratedSpecRejectsCsvPaths) {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.e1 = "stray.csv";
  EXPECT_FALSE(spec.Validate().ok());
}

// ---------------------------------------------------------------------------
// Name helpers
// ---------------------------------------------------------------------------

TEST(JobSpecNames, ShortNamesRoundTrip) {
  for (PruningKind kind : AllPruningKinds()) {
    Result<PruningKind> parsed = ParsePruningName(PruningShortName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  for (ClassifierKind kind :
       {ClassifierKind::kLogisticRegression, ClassifierKind::kLinearSvc,
        ClassifierKind::kGaussianNaiveBayes}) {
    Result<ClassifierKind> parsed =
        ParseClassifierName(ClassifierShortName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  for (ExecutionMode mode :
       {ExecutionMode::kBatch, ExecutionMode::kStreaming,
        ExecutionMode::kServing, ExecutionMode::kAuto}) {
    Result<ExecutionMode> parsed = ParseExecutionMode(ExecutionModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
}

TEST(JobSpecNames, FeatureSetNamesAreCaseInsensitive) {
  Result<FeatureSet> upper = ParseFeatureSetName("BLAST");
  ASSERT_TRUE(upper.ok());
  EXPECT_TRUE(*upper == FeatureSet::BlastOptimal());

  Result<FeatureSet> list = ParseFeatureSetName("CF-IBF, raccb , JS");
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(*list ==
              (FeatureSet{Feature::kCfIbf, Feature::kRaccb, Feature::kJs}));
}

TEST(JobSpecNames, ToJsonIsStableAcrossCalls) {
  const JobSpec spec = EveryFieldExplicit();
  EXPECT_EQ(spec.ToJson(), spec.ToJson());
}

}  // namespace
}  // namespace gsmb
