#include "blocking/candidate_pairs.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsmb {
namespace {

TEST(CandidatePairs, PaperExampleDistinctSet) {
  BlockCollection bc = testing::PaperExampleBlocks();
  EntityIndex index(bc);
  auto pairs = GenerateCandidatePairs(index);
  // 16 distinct comparisons (hand-enumerated from the 8 blocks).
  EXPECT_EQ(pairs.size(), 16u);
  std::set<std::pair<EntityId, EntityId>> got;
  for (const CandidatePair& p : pairs) got.insert({p.left, p.right});
  const std::set<std::pair<EntityId, EntityId>> expected = {
      {0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {1, 5},
      {1, 6}, {2, 3}, {2, 4}, {3, 4}, {3, 5}, {3, 6}, {4, 6}, {5, 6}};
  EXPECT_EQ(got, expected);
}

TEST(CandidatePairs, GroupedAndSortedOrder) {
  BlockCollection bc = testing::PaperExampleBlocks();
  EntityIndex index(bc);
  auto pairs = GenerateCandidatePairs(index);
  for (size_t i = 1; i < pairs.size(); ++i) {
    const bool left_ascending = pairs[i - 1].left <= pairs[i].left;
    EXPECT_TRUE(left_ascending);
    if (pairs[i - 1].left == pairs[i].left) {
      EXPECT_LT(pairs[i - 1].right, pairs[i].right);
    }
  }
}

TEST(CandidatePairs, DirtyPairsHaveLeftLessThanRight) {
  BlockCollection bc = testing::PaperExampleBlocks();
  EntityIndex index(bc);
  for (const CandidatePair& p : GenerateCandidatePairs(index)) {
    EXPECT_LT(p.left, p.right);
  }
}

TEST(CandidatePairs, CleanCleanCrossPairsOnly) {
  BlockCollection bc(/*clean_clean=*/true, 3, 3);
  Block b;
  b.key = "k";
  b.left = {0, 1};
  b.right = {1, 2};
  bc.Add(b);
  EntityIndex index(bc);
  auto pairs = GenerateCandidatePairs(index);
  ASSERT_EQ(pairs.size(), 4u);
  // (left local, right local): all cross combinations.
  EXPECT_EQ(pairs[0], (CandidatePair{0, 1}));
  EXPECT_EQ(pairs[1], (CandidatePair{0, 2}));
  EXPECT_EQ(pairs[2], (CandidatePair{1, 1}));
  EXPECT_EQ(pairs[3], (CandidatePair{1, 2}));
}

TEST(CandidatePairs, RedundantComparisonsDeduplicated) {
  // Two blocks implying the same pair produce it once.
  BlockCollection bc(/*clean_clean=*/true, 1, 1);
  for (int i = 0; i < 2; ++i) {
    Block b;
    b.key = std::string{"k"} + std::to_string(i);  // GCC PR105651 (-Wrestrict)
    b.left = {0};
    b.right = {0};
    bc.Add(b);
  }
  EntityIndex index(bc);
  auto pairs = GenerateCandidatePairs(index);
  EXPECT_EQ(pairs.size(), 1u);
  // ... although the block collection counts 2 (redundant) comparisons.
  EXPECT_DOUBLE_EQ(bc.TotalComparisons(), 2.0);
}

TEST(CandidatePairs, EmptyCollection) {
  BlockCollection bc(/*clean_clean=*/false, 5, 0);
  EntityIndex index(bc);
  EXPECT_TRUE(GenerateCandidatePairs(index).empty());
}

TEST(CandidatePairs, CountPositives) {
  BlockCollection bc = testing::PaperExampleBlocks();
  EntityIndex index(bc);
  auto pairs = GenerateCandidatePairs(index);
  GroundTruth gt = testing::PaperExampleGroundTruth();
  // All three duplicates co-occur in at least one block.
  EXPECT_EQ(CountPositivePairs(pairs, gt), 3u);
}

}  // namespace
}  // namespace gsmb
