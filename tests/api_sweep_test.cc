// SweepSpec serialization/expansion and Engine::RunSweep equivalence.
//
// The load-bearing assertion (the staged-API acceptance bar): a 2-axis
// sweep — all 8 pruning kinds x 2 feature sets — over one dataset performs
// exactly ONE blocking preparation (the sweep's cache counters prove it),
// and every variant's retained pairs are bit-identical to an independent
// Engine::Run of the corresponding single JobSpec, on the batch AND the
// streaming backend.

#include "gsmb/sweep.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "gsmb/engine.h"
#include "gsmb/job_spec.h"

namespace gsmb {
namespace {

JobSpec BaseSpec() {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = 0.03;
  spec.blocking.filter_ratio = 1.0;
  spec.training.labels_per_class = 15;
  spec.training.seed = 3;
  spec.execution.shards = 1;
  spec.output.keep_retained = true;
  return spec;
}

// ---------------------------------------------------------------------------
// Serialization / validation / expansion
// ---------------------------------------------------------------------------

TEST(SweepSpecJson, RoundTripsEveryAxis) {
  SweepSpec sweep;
  sweep.base = BaseSpec();
  sweep.axes.pruning = {PruningKind::kBlast, PruningKind::kCnp};
  sweep.axes.features = {FeatureSet::BlastOptimal(), FeatureSet::Paper2014()};
  sweep.axes.classifiers = {ClassifierKind::kLogisticRegression,
                            ClassifierKind::kLinearSvc};
  sweep.axes.labels_per_class = {15, 250};
  sweep.axes.seeds = {0, 1, 18446744073709551615ull};  // 2^64-1 must survive
  sweep.retained_dir = "out";

  Result<SweepSpec> again = SweepSpec::FromJson(sweep.ToJson());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(sweep == *again);
  EXPECT_EQ(again->GridSize(), 2u * 2 * 2 * 2 * 3);
}

TEST(SweepSpecJson, EmptyAxesMeanTheBaseValue) {
  SweepSpec sweep;
  sweep.base = BaseSpec();
  EXPECT_EQ(sweep.GridSize(), 1u);
  const std::vector<JobSpec> variants = sweep.Expand();
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_TRUE(variants[0] == sweep.base);

  Result<SweepSpec> again = SweepSpec::FromJson(sweep.ToJson());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(sweep == *again);
}

void ExpectSweepRejected(const std::string& text,
                         const std::string& fragment) {
  Result<SweepSpec> sweep = SweepSpec::FromJson(text);
  ASSERT_FALSE(sweep.ok()) << "accepted: " << text;
  EXPECT_NE(sweep.status().message().find(fragment), std::string::npos)
      << "message '" << sweep.status().message() << "' lacks '" << fragment
      << "'";
}

TEST(SweepSpecJson, RejectsMalformedDocuments) {
  ExpectSweepRejected(R"({})", "version is required");
  ExpectSweepRejected(R"({"version": 9})", "unsupported sweep version 9");
  ExpectSweepRejected(R"({"version": 1, "grid": {}})", "unknown key 'grid'");
  ExpectSweepRejected(
      R"({"version": 1, "axes": {"prunings": []}})",
      "unknown key 'prunings' in sweep.axes");
  ExpectSweepRejected(
      R"({"version": 1, "axes": {"pruning": ["blart"]}})",
      "unknown pruning kind 'blart'");
  ExpectSweepRejected(
      R"({"version": 1, "axes": {"seeds": [-1]}})",
      "sweep.axes.seeds");
  // Base diagnostics carry the nested path.
  ExpectSweepRejected(
      R"({"version": 1, "base": {"version": 2, "prunning": {}}})",
      "unknown key 'prunning' in sweep.base");
  // The base spec is versioned like any spec document.
  ExpectSweepRejected(R"({"version": 1, "base": {}})",
                      "sweep.base.version is required");
}

TEST(SweepSpecValidate, RejectsCollidingOutputsAndDuplicates) {
  SweepSpec sweep;
  sweep.base = BaseSpec();

  SweepSpec csv = sweep;
  csv.base.output.retained_csv = "one.csv";
  EXPECT_FALSE(csv.Validate().ok());

  SweepSpec duplicates = sweep;
  duplicates.axes.seeds = {1, 1};
  Status status = duplicates.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
}

TEST(SweepExpand, NestingOrderIsPruningMajorSeedsMinor) {
  SweepSpec sweep;
  sweep.base = BaseSpec();
  sweep.axes.pruning = {PruningKind::kWep, PruningKind::kCep};
  sweep.axes.seeds = {5, 7, 9};

  const std::vector<JobSpec> variants = sweep.Expand();
  ASSERT_EQ(variants.size(), 6u);
  EXPECT_EQ(variants[0].pruning.kind, PruningKind::kWep);
  EXPECT_EQ(variants[0].training.seed, 5u);
  EXPECT_EQ(variants[2].pruning.kind, PruningKind::kWep);
  EXPECT_EQ(variants[2].training.seed, 9u);
  EXPECT_EQ(variants[3].pruning.kind, PruningKind::kCep);
  EXPECT_EQ(variants[3].training.seed, 5u);
  // Unswept fields inherit the base everywhere.
  for (const JobSpec& variant : variants) {
    EXPECT_EQ(variant.training.labels_per_class, 15u);
    EXPECT_TRUE(variant.features == sweep.base.features);
  }
}

TEST(SweepVariantLabels, AreFilesystemSafeAndDistinct) {
  JobSpec variant = BaseSpec();
  EXPECT_EQ(SweepVariantLabel(variant), "token_blast_blast_logreg_l15_s3");
  variant.features = FeatureSet{Feature::kCfIbf, Feature::kJs};
  const std::string label = SweepVariantLabel(variant);
  EXPECT_EQ(label.find(','), std::string::npos) << label;
  EXPECT_EQ(label, "token_blast_cf-ibf+js_logreg_l15_s3");
  variant.blocking.scheme = kSchemeMinHashLsh;
  EXPECT_EQ(SweepVariantLabel(variant),
            "minhash-lsh_blast_cf-ibf+js_logreg_l15_s3");
}

// ---------------------------------------------------------------------------
// RunSweep
// ---------------------------------------------------------------------------

/// The acceptance grid: 8 pruning kinds x 2 feature sets on one backend.
void RunTwoAxisGrid(ExecutionMode mode) {
  SweepSpec sweep;
  sweep.base = BaseSpec();
  sweep.base.execution.mode = mode;
  sweep.axes.pruning = AllPruningKinds();
  sweep.axes.features = {FeatureSet::BlastOptimal(), FeatureSet::Paper2014()};

  Engine engine;
  Result<SweepResult> result = engine.RunSweep(sweep);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->variants.size(), 16u);

  // Exactly ONE blocking preparation for the whole grid.
  EXPECT_EQ(result->cache_misses, 1u);
  EXPECT_EQ(result->cache_hits, 0u);
  const PrepareCacheStats stats = engine.prepare_cache_stats();
  EXPECT_EQ(stats.misses, 1u) << "a variant re-prepared blocking";

  // Every variant bit-identical to an independent, cache-free Run.
  EngineOptions uncached;
  uncached.prepare_cache_max_entries = 0;
  Engine independent(uncached);
  for (const SweepVariant& variant : result->variants) {
    ASSERT_TRUE(variant.status.ok())
        << variant.label << ": " << variant.status.ToString();
    ASSERT_GT(variant.result.metrics.retained, 0u) << variant.label;
    Result<JobResult> direct = independent.Run(variant.spec);
    ASSERT_TRUE(direct.ok())
        << variant.label << ": " << direct.status().ToString();
    EXPECT_EQ(variant.result.retained, direct->retained) << variant.label;
    EXPECT_EQ(variant.result.model_coefficients, direct->model_coefficients)
        << variant.label;
  }
}

TEST(SweepEquivalence, TwoAxisGridBatch) {
  RunTwoAxisGrid(ExecutionMode::kBatch);
}

TEST(SweepEquivalence, TwoAxisGridStreaming) {
  RunTwoAxisGrid(ExecutionMode::kStreaming);
}

TEST(SweepEquivalence, ParallelVariantExecutionIsDeterministic) {
  SweepSpec sweep;
  sweep.base = BaseSpec();
  sweep.axes.seeds = {0, 1, 2, 3};

  Engine serial_engine;
  SweepSpec serial = sweep;
  serial.base.execution.options.num_threads = 1;
  Result<SweepResult> one = serial_engine.RunSweep(serial);
  ASSERT_TRUE(one.ok());

  Engine threaded_engine;
  SweepSpec threaded = sweep;
  threaded.base.execution.options.num_threads = 4;
  Result<SweepResult> many = threaded_engine.RunSweep(threaded);
  ASSERT_TRUE(many.ok());

  ASSERT_EQ(one->variants.size(), many->variants.size());
  for (size_t i = 0; i < one->variants.size(); ++i) {
    ASSERT_TRUE(one->variants[i].status.ok());
    ASSERT_TRUE(many->variants[i].status.ok());
    EXPECT_EQ(one->variants[i].label, many->variants[i].label);
    EXPECT_EQ(one->variants[i].result.retained,
              many->variants[i].result.retained);
  }
}

TEST(SweepFailures, AFailedVariantNeverAbortsItsSiblings) {
  SweepSpec sweep;
  sweep.base = BaseSpec();
  sweep.base.execution.mode = ExecutionMode::kServing;
  // Naive Bayes has no raw-space linear form: the serving backend rejects
  // that variant; logreg runs.
  sweep.axes.classifiers = {ClassifierKind::kLogisticRegression,
                            ClassifierKind::kGaussianNaiveBayes};

  Engine engine;
  Result<SweepResult> result = engine.RunSweep(sweep);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->variants.size(), 2u);
  EXPECT_FALSE(result->all_ok());

  EXPECT_TRUE(result->variants[0].status.ok())
      << result->variants[0].status.ToString();
  EXPECT_GT(result->variants[0].result.metrics.retained, 0u);

  EXPECT_FALSE(result->variants[1].status.ok());
  EXPECT_EQ(result->variants[1].status.code(),
            StatusCode::kFailedPrecondition);
}

TEST(SweepOutputs, RetainedDirHoldsOneCsvPerVariant) {
  SweepSpec sweep;
  sweep.base = BaseSpec();
  sweep.axes.seeds = {0, 1};
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gsmb_sweep_retained_test")
          .string();
  std::filesystem::remove_all(dir);
  sweep.retained_dir = dir;

  Engine engine;
  Result<SweepResult> result = engine.RunSweep(sweep);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const SweepVariant& variant : result->variants) {
    ASSERT_TRUE(variant.status.ok());
    const std::string path = dir + "/" + variant.label + ".csv";
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_EQ(variant.result.retained_csv_rows,
              variant.result.metrics.retained);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gsmb
