#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "blocking/qgram_blocking.h"
#include "blocking/suffix_blocking.h"
#include "blocking/token_blocking.h"
#include "test_support.h"

namespace gsmb {
namespace {

using testing::MakeTinyCleanClean;
using testing::TinyCleanClean;

const Block* FindBlock(const BlockCollection& bc, const std::string& key) {
  for (const Block& b : bc.blocks()) {
    if (b.key == key) return &b;
  }
  return nullptr;
}

TEST(TokenBlocking, CleanCleanKeepsSharedKeysOnly) {
  TinyCleanClean t = MakeTinyCleanClean();
  BlockCollection bc = TokenBlocking().Build(t.e1, t.e2);
  EXPECT_TRUE(bc.clean_clean());
  EXPECT_EQ(bc.num_left_entities(), 3u);
  EXPECT_EQ(bc.num_right_entities(), 3u);
  // Shared tokens: alpha (a0, a2 | b0), beta (a0 | b0), gamma (a1 | b1).
  EXPECT_NE(FindBlock(bc, "alpha"), nullptr);
  EXPECT_NE(FindBlock(bc, "beta"), nullptr);
  EXPECT_NE(FindBlock(bc, "gamma"), nullptr);
  // Single-source tokens are dropped.
  EXPECT_EQ(FindBlock(bc, "delta"), nullptr);
  EXPECT_EQ(FindBlock(bc, "unique1"), nullptr);
  EXPECT_EQ(FindBlock(bc, "zeta"), nullptr);
  EXPECT_EQ(bc.size(), 3u);
}

TEST(TokenBlocking, BlockMembersAreCorrect) {
  TinyCleanClean t = MakeTinyCleanClean();
  BlockCollection bc = TokenBlocking().Build(t.e1, t.e2);
  const Block* alpha = FindBlock(bc, "alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->left, (std::vector<EntityId>{0, 2}));
  EXPECT_EQ(alpha->right, (std::vector<EntityId>{0}));
  EXPECT_EQ(alpha->Size(), 3u);
  EXPECT_DOUBLE_EQ(alpha->Comparisons(true), 2.0);
}

TEST(TokenBlocking, BlocksInLexicographicKeyOrder) {
  TinyCleanClean t = MakeTinyCleanClean();
  BlockCollection bc = TokenBlocking().Build(t.e1, t.e2);
  std::vector<std::string> keys;
  for (const Block& b : bc.blocks()) keys.push_back(b.key);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(TokenBlocking, DirtyRequiresTwoMembers) {
  EntityCollection c;
  EntityProfile p1("1");
  p1.AddAttribute("t", "shared only1");
  EntityProfile p2("2");
  p2.AddAttribute("t", "shared only2");
  c.Add(std::move(p1));
  c.Add(std::move(p2));
  BlockCollection bc = TokenBlocking().Build(c);
  EXPECT_FALSE(bc.clean_clean());
  ASSERT_EQ(bc.size(), 1u);
  EXPECT_EQ(bc[0].key, "shared");
  EXPECT_EQ(bc[0].left, (std::vector<EntityId>{0, 1}));
  EXPECT_DOUBLE_EQ(bc[0].Comparisons(false), 1.0);
}

TEST(TokenBlocking, MinTokenLengthFilters) {
  EntityCollection c1;
  EntityProfile p("1");
  p.AddAttribute("t", "ab abcd");
  c1.Add(std::move(p));
  EntityCollection c2;
  EntityProfile q("2");
  q.AddAttribute("t", "ab abcd");
  c2.Add(std::move(q));
  BlockCollection bc = TokenBlocking(/*min_token_length=*/3).Build(c1, c2);
  EXPECT_EQ(bc.size(), 1u);
  EXPECT_EQ(bc[0].key, "abcd");
}

TEST(TokenBlocking, PaperExampleReproduced) {
  // The Figure 1 profiles, as a Dirty collection.
  EntityCollection c;
  auto add = [&](const char* id, const char* text) {
    EntityProfile p(id);
    p.AddAttribute("text", text);
    c.Add(std::move(p));
  };
  add("e1", "Apple iPhone X Smartphone");
  add("e2", "Samsung S20 smartphone");
  add("e3", "iPhone 10 smartphone Apple");
  add("e4", "Samsung 20 smartphone");
  add("e5", "Huawei Mate 20 smartphone");
  add("e6", "Samsung Fold foldable phone");
  add("e7", "Samsung foldable Your perfect mate phone, today 20 % discount");

  BlockCollection bc = TokenBlocking().Build(c);
  const Block* samsung = FindBlock(bc, "samsung");
  ASSERT_NE(samsung, nullptr);
  EXPECT_EQ(samsung->left, (std::vector<EntityId>{1, 3, 5, 6}));
  const Block* smartphone = FindBlock(bc, "smartphone");
  ASSERT_NE(smartphone, nullptr);
  EXPECT_EQ(smartphone->left, (std::vector<EntityId>{0, 1, 2, 3, 4}));
  const Block* apple = FindBlock(bc, "apple");
  ASSERT_NE(apple, nullptr);
  EXPECT_EQ(apple->left, (std::vector<EntityId>{0, 2}));
}

TEST(QGramBlocking, ProducesGramBlocks) {
  TinyCleanClean t = MakeTinyCleanClean();
  BlockCollection bc = QGramBlocking(3).Build(t.e1, t.e2);
  // "alpha" trigrams: alp, lph, pha — present in both sources via a0/b0.
  EXPECT_NE(FindBlock(bc, "alp"), nullptr);
  EXPECT_NE(FindBlock(bc, "pha"), nullptr);
}

TEST(QGramBlocking, MoreRobustThanTokensToTypos) {
  EntityCollection c1;
  EntityProfile p("1");
  p.AddAttribute("t", "smartphone");
  c1.Add(std::move(p));
  EntityCollection c2;
  EntityProfile q("2");
  q.AddAttribute("t", "smartphome");  // typo
  c2.Add(std::move(q));
  // Token blocking yields no block; 3-gram blocking still links them.
  EXPECT_EQ(TokenBlocking().Build(c1, c2).size(), 0u);
  EXPECT_GT(QGramBlocking(3).Build(c1, c2).size(), 0u);
}

TEST(SuffixBlocking, EmitsSuffixKeys) {
  EntityCollection c1;
  EntityProfile p("1");
  p.AddAttribute("t", "phone");
  c1.Add(std::move(p));
  EntityCollection c2;
  EntityProfile q("2");
  q.AddAttribute("t", "iphone");
  c2.Add(std::move(q));
  BlockCollection bc = SuffixBlocking(/*min_length=*/4).Build(c1, c2);
  // Shared suffixes of length >= 4: "hone", "phone".
  EXPECT_NE(FindBlock(bc, "hone"), nullptr);
  EXPECT_NE(FindBlock(bc, "phone"), nullptr);
}

TEST(SuffixBlocking, CapsBlockSize) {
  // 10 entities per source sharing the same token: block size 20 > cap 8.
  EntityCollection c1;
  EntityCollection c2;
  for (int i = 0; i < 10; ++i) {
    // std::string{} + avoids the operator+(const char*, string&&) overload,
    // which trips a GCC 12 -Wrestrict false positive at -O3 (GCC PR105651).
    EntityProfile p(std::string{"a"} + std::to_string(i));
    p.AddAttribute("t", "common");
    c1.Add(std::move(p));
    EntityProfile q(std::string{"b"} + std::to_string(i));
    q.AddAttribute("t", "common");
    c2.Add(std::move(q));
  }
  BlockCollection bc =
      SuffixBlocking(/*min_length=*/4, /*max_block_size=*/8).Build(c1, c2);
  EXPECT_EQ(bc.size(), 0u);
}

TEST(BlockCollection, DropEmptyBlocks) {
  BlockCollection bc(/*clean_clean=*/true, 2, 2);
  Block with_pairs;
  with_pairs.key = "good";
  with_pairs.left = {0};
  with_pairs.right = {0};
  bc.Add(with_pairs);
  Block one_sided;
  one_sided.key = "bad";
  one_sided.left = {0, 1};
  bc.Add(one_sided);
  EXPECT_EQ(bc.DropEmptyBlocks(), 1u);
  ASSERT_EQ(bc.size(), 1u);
  EXPECT_EQ(bc[0].key, "good");
}

TEST(BlockCollection, Totals) {
  BlockCollection bc = testing::PaperExampleBlocks();
  // Sizes: 2+2+4+3+5+2+2+2 = 22; comparisons: 1+1+6+3+10+1+1+1 = 24.
  EXPECT_EQ(bc.TotalEntityOccurrences(), 22u);
  EXPECT_DOUBLE_EQ(bc.TotalComparisons(), 24.0);
}


// ---------------------------------------------------------------------------
// Parallel key extraction: chunk-and-merge must be bit-identical to the
// serial scan for every key-based blocking method and any thread count.
// ---------------------------------------------------------------------------

namespace {

void ExpectSameCollections(const BlockCollection& a,
                           const BlockCollection& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.clean_clean(), b.clean_clean());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].left, b[i].left);
    EXPECT_EQ(a[i].right, b[i].right);
  }
}

EntityCollection NoisyProfiles(const char* prefix, size_t count,
                               uint64_t salt) {
  EntityCollection collection;
  for (size_t i = 0; i < count; ++i) {
    EntityProfile p(prefix + std::to_string(i));
    p.AddAttribute("name", std::string{"entity shard"} +
                               std::to_string((i * salt) % 97) + " token" +
                               std::to_string(i % 13));
    p.AddAttribute("desc", std::string{"common word"} +
                               std::to_string((i + salt) % 29));
    collection.Add(std::move(p));
  }
  return collection;
}

}  // namespace

TEST(ParallelKeyExtraction, TokenBlockingDeterministicAcrossThreadCounts) {
  const EntityCollection e1 = NoisyProfiles("a", 700, 3);
  const EntityCollection e2 = NoisyProfiles("b", 650, 7);
  const BlockCollection serial = TokenBlocking().Build(e1, e2, 1);
  for (size_t threads : {2u, 5u, 8u}) {
    ExpectSameCollections(serial, TokenBlocking().Build(e1, e2, threads));
  }
  const BlockCollection dirty_serial = TokenBlocking().Build(e1, 1);
  ExpectSameCollections(dirty_serial, TokenBlocking().Build(e1, 8));
}

TEST(ParallelKeyExtraction, QGramBlockingDeterministicAcrossThreadCounts) {
  const EntityCollection e1 = NoisyProfiles("a", 400, 5);
  const EntityCollection e2 = NoisyProfiles("b", 380, 11);
  ExpectSameCollections(QGramBlocking().Build(e1, e2, 1),
                        QGramBlocking().Build(e1, e2, 8));
  ExpectSameCollections(QGramBlocking().Build(e1, 1),
                        QGramBlocking().Build(e1, 6));
}

TEST(ParallelKeyExtraction, SuffixBlockingDeterministicAcrossThreadCounts) {
  const EntityCollection e1 = NoisyProfiles("a", 400, 13);
  const EntityCollection e2 = NoisyProfiles("b", 420, 17);
  ExpectSameCollections(SuffixBlocking().Build(e1, e2, 1),
                        SuffixBlocking().Build(e1, e2, 8));
  ExpectSameCollections(SuffixBlocking().Build(e1, 1),
                        SuffixBlocking().Build(e1, 3));
}


}  // namespace
}  // namespace gsmb
