// Blocking-scheme subsystem tests (ROADMAP item 3).
//
// The load-bearing assertions:
//   * every new scheme's Build() is bit-identical across {1, 8} threads on
//     Clean-Clean AND Dirty inputs,
//   * under every new scheme the retained digest is bit-identical across
//     the batch and streaming backends for all 8 pruning kinds (the batch
//     reference runs single-threaded, the streaming run with 8 threads, so
//     one comparison covers both axes end to end),
//   * a scheme-axis sweep performs exactly one preparation per
//     (dataset, scheme) cache key, and each variant matches a cache-free
//     independent run.

#include "schemes/scheme_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datasets/clean_clean_generator.h"
#include "datasets/dirty_generator.h"
#include "datasets/specs.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "gsmb/sweep.h"

namespace gsmb {
namespace {

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

const JobInputs& CleanInputs() {
  static const JobInputs inputs = [] {
    CleanCleanSpec spec;
    spec.name = "schemes-cc";
    spec.e1_size = 250;
    spec.e2_size = 250;
    spec.num_duplicates = 100;
    GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
    JobInputs in;
    in.e1 = std::move(data.e1);
    in.e2 = std::move(data.e2);
    in.dirty = false;
    in.ground_truth = std::move(data.ground_truth);
    return in;
  }();
  return inputs;
}

const JobInputs& DirtyInputs() {
  static const JobInputs inputs = [] {
    DirtySpec spec;
    spec.name = "schemes-dirty";
    spec.num_entities = 300;
    GeneratedDirty data = DirtyGenerator().Generate(spec);
    JobInputs in;
    in.e1 = std::move(data.entities);
    in.dirty = true;
    in.ground_truth = std::move(data.ground_truth);
    return in;
  }();
  return inputs;
}

const std::vector<std::string>& NewSchemes() {
  static const std::vector<std::string> schemes = {
      kSchemeSortedNeighborhood, kSchemeDynamicSortedNeighborhood,
      kSchemeAttributeClustering, kSchemeMinHashLsh};
  return schemes;
}

void ExpectSameBlocks(const BlockCollection& a, const BlockCollection& b,
                      const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  EXPECT_EQ(a.clean_clean(), b.clean_clean()) << context;
  EXPECT_EQ(a.num_left_entities(), b.num_left_entities()) << context;
  EXPECT_EQ(a.num_right_entities(), b.num_right_entities()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << context << " block " << i;
    EXPECT_EQ(a[i].left, b[i].left) << context << " block " << a[i].key;
    EXPECT_EQ(a[i].right, b[i].right) << context << " block " << a[i].key;
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(SchemeRegistry, AllBuiltinsAreRegistered) {
  const std::vector<std::string> expected = {
      kSchemeToken,
      kSchemeQGram,
      kSchemeSuffix,
      kSchemeSortedNeighborhood,
      kSchemeDynamicSortedNeighborhood,
      kSchemeAttributeClustering,
      kSchemeMinHashLsh};
  const std::vector<std::string> names = schemes::BlockerNames();
  for (const std::string& name : expected) {
    const schemes::Blocker* blocker = schemes::FindBlocker(name);
    ASSERT_NE(blocker, nullptr) << name;
    EXPECT_EQ(blocker->name(), name);
    EXPECT_NE(std::string(blocker->description()), "");
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(schemes::FindBlocker("not-a-scheme"), nullptr);
  EXPECT_NE(schemes::BlockerNamesJoined().find(kSchemeMinHashLsh),
            std::string::npos);
}

class RenamedTokenBlocker : public schemes::Blocker {
 public:
  explicit RenamedTokenBlocker(const char* name) : name_(name) {}
  const char* name() const override { return name_; }
  const char* description() const override { return "test-only alias"; }
  Status ValidateParams(const BlockingSpec&) const override {
    return Status::Ok();
  }
  BlockCollection Build(const JobInputs& inputs, const BlockingSpec& blocking,
                        size_t num_threads) const override {
    return schemes::FindBlocker(kSchemeToken)->Build(inputs, blocking,
                                                     num_threads);
  }

 private:
  const char* name_;
};

TEST(SchemeRegistry, RejectsDuplicateRegistrations) {
  // A name can be claimed once per process; re-claiming it — even by a
  // different implementation — is an error, never a silent shadow.
  Status taken =
      schemes::RegisterBlocker(std::make_unique<RenamedTokenBlocker>("token"));
  ASSERT_FALSE(taken.ok());
  EXPECT_NE(taken.message().find("already registered"), std::string::npos);

  ASSERT_TRUE(schemes::RegisterBlocker(
                  std::make_unique<RenamedTokenBlocker>("schemes-test-alias"))
                  .ok());
  EXPECT_NE(schemes::FindBlocker("schemes-test-alias"), nullptr);
  EXPECT_FALSE(schemes::RegisterBlocker(
                   std::make_unique<RenamedTokenBlocker>("schemes-test-alias"))
                   .ok());
}

TEST(SchemeRegistry, ValidateParamsRejectsOutOfRange) {
  BlockingSpec blocking;  // defaults are valid for every scheme
  for (const std::string& name : schemes::BlockerNames()) {
    EXPECT_TRUE(schemes::FindBlocker(name)->ValidateParams(blocking).ok())
        << name;
  }

  BlockingSpec window = blocking;
  window.window = 1;
  Status status = schemes::FindBlocker(kSchemeSortedNeighborhood)
                      ->ValidateParams(window);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("blocking.window"), std::string::npos);

  BlockingSpec inverted = blocking;
  inverted.min_window = 6;
  inverted.window = 4;
  EXPECT_FALSE(schemes::FindBlocker(kSchemeDynamicSortedNeighborhood)
                   ->ValidateParams(inverted)
                   .ok());

  BlockingSpec similarity = blocking;
  similarity.key_similarity = 1.5;
  EXPECT_FALSE(schemes::FindBlocker(kSchemeDynamicSortedNeighborhood)
                   ->ValidateParams(similarity)
                   .ok());

  BlockingSpec attribute = blocking;
  attribute.attribute_similarity = 0.0;
  EXPECT_FALSE(schemes::FindBlocker(kSchemeAttributeClustering)
                   ->ValidateParams(attribute)
                   .ok());

  BlockingSpec bands = blocking;
  bands.lsh_bands = 0;
  EXPECT_FALSE(
      schemes::FindBlocker(kSchemeMinHashLsh)->ValidateParams(bands).ok());

  // Another scheme's params are none of this scheme's business.
  EXPECT_TRUE(
      schemes::FindBlocker(kSchemeMinHashLsh)->ValidateParams(window).ok());
}

// ---------------------------------------------------------------------------
// Thread determinism at the Build() level
// ---------------------------------------------------------------------------

TEST(SchemeDeterminism, BitIdenticalAcrossThreadCounts) {
  BlockingSpec blocking;
  for (const std::string& name : NewSchemes()) {
    const schemes::Blocker* blocker = schemes::FindBlocker(name);
    ASSERT_NE(blocker, nullptr) << name;
    for (const JobInputs* inputs : {&CleanInputs(), &DirtyInputs()}) {
      const std::string context =
          name + (inputs->dirty ? " dirty" : " clean-clean");
      BlockCollection one = blocker->Build(*inputs, blocking, 1);
      BlockCollection eight = blocker->Build(*inputs, blocking, 8);
      ASSERT_GT(one.size(), 0u) << context;
      ExpectSameBlocks(one, eight, context);
    }
  }
}

TEST(SchemeDeterminism, MinHashSeedChangesBuckets) {
  BlockingSpec a;
  BlockingSpec b;
  b.minhash_seed = a.minhash_seed + 1;
  const schemes::Blocker* lsh = schemes::FindBlocker(kSchemeMinHashLsh);
  BlockCollection ba = lsh->Build(CleanInputs(), a, 1);
  BlockCollection bb = lsh->Build(CleanInputs(), b, 1);
  // A different hash family must not reproduce the same bucket keys.
  std::vector<std::string> keys_a, keys_b;
  for (const Block& block : ba.blocks()) keys_a.push_back(block.key);
  for (const Block& block : bb.blocks()) keys_b.push_back(block.key);
  EXPECT_NE(keys_a, keys_b);
}

// ---------------------------------------------------------------------------
// End-to-end: backends x pruning kinds per scheme
// ---------------------------------------------------------------------------

JobSpec SchemeBaseSpec(const std::string& scheme) {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = 0.03;
  spec.blocking.scheme = scheme;
  spec.blocking.filter_ratio = 1.0;
  spec.training.labels_per_class = 15;
  spec.training.seed = 3;
  spec.output.keep_retained = true;
  return spec;
}

TEST(SchemeBackends, RetainedDigestIdenticalAcrossBackendsAndThreads) {
  // One engine per backend so the 8 pruning variants of a scheme share a
  // single preparation; the comparison (batch, 1 thread) vs (streaming,
  // 8 threads) pins down both the backend and the thread-count axis.
  Engine batch_engine;
  Engine streaming_engine;
  for (const std::string& scheme : NewSchemes()) {
    for (PruningKind kind : AllPruningKinds()) {
      JobSpec reference = SchemeBaseSpec(scheme);
      reference.pruning.kind = kind;
      reference.execution.mode = ExecutionMode::kBatch;
      reference.execution.options.num_threads = 1;

      JobSpec streaming = reference;
      streaming.execution.mode = ExecutionMode::kStreaming;
      streaming.execution.options.num_threads = 8;

      const std::string context = scheme + "/" + PruningShortName(kind);
      Result<JobResult> a = batch_engine.Run(reference);
      ASSERT_TRUE(a.ok()) << context << ": " << a.status().ToString();
      Result<JobResult> b = streaming_engine.Run(streaming);
      ASSERT_TRUE(b.ok()) << context << ": " << b.status().ToString();

      ASSERT_GT(a->metrics.retained, 0u) << context;
      EXPECT_EQ(a->retained_digest, b->retained_digest) << context;
      EXPECT_EQ(a->prepared_digest, b->prepared_digest) << context;
      EXPECT_EQ(a->retained, b->retained) << context;
    }
  }
}

TEST(SchemeBackends, SchemesProduceDistinctPreparations) {
  // Scheme identity is part of the preparation: distinct schemes must have
  // distinct cache keys AND distinct prepared digests on the same dataset.
  Engine engine;
  std::set<std::string> keys;
  std::set<uint64_t> digests;
  std::vector<std::string> all = NewSchemes();
  all.push_back(kSchemeToken);
  for (const std::string& scheme : all) {
    JobSpec spec = SchemeBaseSpec(scheme);
    keys.insert(PrepareCacheKey(spec));
    Result<PreparedHandle> prepared = engine.Prepare(spec);
    ASSERT_TRUE(prepared.ok()) << scheme << ": "
                               << prepared.status().ToString();
    digests.insert((*prepared)->prepared_digest);
  }
  EXPECT_EQ(keys.size(), all.size());
  EXPECT_EQ(digests.size(), all.size());
}

// ---------------------------------------------------------------------------
// The scheme sweep axis
// ---------------------------------------------------------------------------

void RunSchemeAxisSweep(ExecutionMode mode) {
  SweepSpec sweep;
  sweep.base = SchemeBaseSpec(kSchemeToken);
  sweep.base.execution.mode = mode;
  sweep.axes.schemes = {kSchemeToken, kSchemeSortedNeighborhood,
                        kSchemeAttributeClustering, kSchemeMinHashLsh};
  sweep.axes.pruning = {PruningKind::kBlast, PruningKind::kCnp};

  Engine engine;
  Result<SweepResult> result = engine.RunSweep(sweep);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->variants.size(), 8u);

  // Exactly ONE preparation per (dataset, scheme) cache key.
  EXPECT_EQ(result->cache_misses, sweep.axes.schemes.size());
  EXPECT_EQ(result->cache_hits, 0u);
  EXPECT_EQ(engine.prepare_cache_stats().misses, sweep.axes.schemes.size())
      << "a variant re-prepared blocking";

  // Scheme outermost in expansion order; the label records the scheme.
  for (size_t i = 0; i < result->variants.size(); ++i) {
    const SweepVariant& variant = result->variants[i];
    const std::string& scheme = sweep.axes.schemes[i / 2];
    EXPECT_EQ(variant.spec.blocking.scheme, scheme);
    EXPECT_EQ(variant.label.rfind(scheme + "_", 0), 0u) << variant.label;
  }

  // Every variant bit-identical to an independent, cache-free Run.
  EngineOptions uncached;
  uncached.prepare_cache_max_entries = 0;
  Engine independent(uncached);
  for (const SweepVariant& variant : result->variants) {
    ASSERT_TRUE(variant.status.ok())
        << variant.label << ": " << variant.status.ToString();
    ASSERT_GT(variant.result.metrics.retained, 0u) << variant.label;
    Result<JobResult> direct = independent.Run(variant.spec);
    ASSERT_TRUE(direct.ok())
        << variant.label << ": " << direct.status().ToString();
    EXPECT_EQ(variant.result.retained_digest, direct->retained_digest)
        << variant.label;
    EXPECT_EQ(variant.result.retained, direct->retained) << variant.label;
  }
}

TEST(SchemeSweep, OnePreparationPerSchemeBatch) {
  RunSchemeAxisSweep(ExecutionMode::kBatch);
}

TEST(SchemeSweep, OnePreparationPerSchemeStreaming) {
  RunSchemeAxisSweep(ExecutionMode::kStreaming);
}

}  // namespace
}  // namespace gsmb
