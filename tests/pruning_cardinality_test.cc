#include "core/cardinality_pruning.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsmb {
namespace {

PruningContext Ctx(size_t nodes, double cep_k, double cnp_k) {
  PruningContext ctx;
  ctx.num_nodes = nodes;
  ctx.right_offset = 0;
  ctx.validity_threshold = 0.5;
  ctx.cep_k = cep_k;
  ctx.cnp_k = cnp_k;
  return ctx;
}

TEST(Cep, KeepsTopK) {
  std::vector<CandidatePair> pairs = {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}};
  std::vector<double> probs = {0.9, 0.8, 0.7, 0.6, 0.55};
  auto retained = CepPruning().Prune(pairs, probs, Ctx(4, 3, 1));
  EXPECT_EQ(retained, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(Cep, IgnoresInvalidEvenIfBudgetAllows) {
  std::vector<CandidatePair> pairs = {{0, 1}, {0, 2}, {1, 2}};
  std::vector<double> probs = {0.9, 0.3, 0.2};
  auto retained = CepPruning().Prune(pairs, probs, Ctx(3, 3, 1));
  EXPECT_EQ(retained, (std::vector<uint32_t>{0}));
}

TEST(Cep, BudgetLargerThanValidKeepsAllValid) {
  std::vector<CandidatePair> pairs = {{0, 1}, {0, 2}};
  std::vector<double> probs = {0.7, 0.6};
  auto retained = CepPruning().Prune(pairs, probs, Ctx(3, 100, 1));
  EXPECT_EQ(retained.size(), 2u);
}

TEST(Cep, ZeroBudgetKeepsNothing) {
  std::vector<CandidatePair> pairs = {{0, 1}};
  std::vector<double> probs = {0.9};
  EXPECT_TRUE(CepPruning().Prune(pairs, probs, Ctx(2, 0, 1)).empty());
}

TEST(Cep, TieBreaksPreferEarlierPairs) {
  std::vector<CandidatePair> pairs = {{0, 1}, {0, 2}, {1, 2}};
  std::vector<double> probs = {0.7, 0.7, 0.7};
  auto retained = CepPruning().Prune(pairs, probs, Ctx(3, 2, 1));
  EXPECT_EQ(retained, (std::vector<uint32_t>{0, 1}));
}

TEST(Cep, FractionalBudgetFloors) {
  std::vector<CandidatePair> pairs = {{0, 1}, {0, 2}};
  std::vector<double> probs = {0.9, 0.8};
  auto retained = CepPruning().Prune(pairs, probs, Ctx(3, 1.9, 1));
  EXPECT_EQ(retained.size(), 1u);
}

TEST(Cnp, PerNodeQueuesUnionSemantics) {
  // k = 1: each node keeps its single best pair; union retains a pair that
  // is best for either endpoint.
  std::vector<CandidatePair> pairs = {{0, 1}, {0, 2}, {1, 2}};
  std::vector<double> probs = {0.9, 0.6, 0.7};
  auto retained = CnpPruning().Prune(pairs, probs, Ctx(3, 10, 1));
  // Node 0 best: (0,1). Node 1 best: (0,1). Node 2 best: (1,2).
  // (0,2) is best for nobody -> dropped.
  EXPECT_EQ(retained, (std::vector<uint32_t>{0, 2}));
}

TEST(Rcnp, IntersectionSemantics) {
  std::vector<CandidatePair> pairs = {{0, 1}, {0, 2}, {1, 2}};
  std::vector<double> probs = {0.9, 0.6, 0.7};
  auto retained = RcnpPruning().Prune(pairs, probs, Ctx(3, 10, 1));
  // (0,1) is in both endpoint queues; (1,2) only in node 2's queue.
  EXPECT_EQ(retained, (std::vector<uint32_t>{0}));
}

TEST(Rcnp, SubsetOfCnp) {
  testing::PruningFixture f = testing::RandomPruningGraph(50, 0.25, 31);
  auto cnp = CnpPruning().Prune(f.pairs, f.probs, f.context);
  auto rcnp = RcnpPruning().Prune(f.pairs, f.probs, f.context);
  EXPECT_LE(rcnp.size(), cnp.size());
  size_t j = 0;
  for (uint32_t idx : rcnp) {
    while (j < cnp.size() && cnp[j] < idx) ++j;
    ASSERT_LT(j, cnp.size());
    EXPECT_EQ(cnp[j], idx);
  }
}

TEST(Cnp, RespectsPerNodeBudget) {
  testing::PruningFixture f = testing::RandomPruningGraph(30, 0.5, 17);
  f.context.cnp_k = 2.0;
  auto retained = CnpPruning().Prune(f.pairs, f.probs, f.context);
  // No node may appear in more than ... well, union semantics allow more
  // via the partner's queue; but each pair retained must be top-2 for at
  // least one endpoint. Verify by recomputing top-2 sets.
  std::vector<std::vector<double>> node_probs(30);
  for (size_t i = 0; i < f.pairs.size(); ++i) {
    if (f.probs[i] < 0.5) continue;
    node_probs[f.pairs[i].left].push_back(f.probs[i]);
    node_probs[f.pairs[i].right].push_back(f.probs[i]);
  }
  auto kth_best = [&](size_t node) {
    auto& v = node_probs[node];
    if (v.size() <= 2) return v.empty() ? 1e9 : -1e9;
    std::vector<double> sorted = v;
    std::sort(sorted.rbegin(), sorted.rend());
    return sorted[1];  // 2nd best
  };
  for (uint32_t idx : retained) {
    const CandidatePair& p = f.pairs[idx];
    const double prob = f.probs[idx];
    // Retained => prob within top-2 of at least one endpoint (allowing
    // ties at the boundary).
    EXPECT_TRUE(prob >= kth_best(p.left) - 1e-12 ||
                prob >= kth_best(p.right) - 1e-12);
  }
}

TEST(Cnp, InvalidPairsNeverRetained) {
  std::vector<CandidatePair> pairs = {{0, 1}, {1, 2}};
  std::vector<double> probs = {0.49, 0.51};
  for (PruningKind kind : {PruningKind::kCep, PruningKind::kCnp,
                           PruningKind::kRcnp}) {
    auto retained =
        MakePruningAlgorithm(kind)->Prune(pairs, probs, Ctx(3, 10, 2));
    EXPECT_EQ(retained, (std::vector<uint32_t>{1})) << PruningKindName(kind);
  }
}

TEST(Cnp, CleanCleanRightOffsetAddressesDistinctNodes) {
  // Clean-Clean: left 0 and right 0 are different nodes.
  PruningContext ctx = Ctx(4, 10, 1);
  ctx.right_offset = 2;  // |E1| = 2
  std::vector<CandidatePair> pairs = {{0, 0}, {1, 0}, {0, 1}};
  std::vector<double> probs = {0.9, 0.8, 0.7};
  auto retained = CnpPruning().Prune(pairs, probs, ctx);
  // Queues: L0 best (0,0)=0.9; L1 best (1,0)=0.8; R0 best 0.9; R1 best 0.7.
  EXPECT_EQ(retained, (std::vector<uint32_t>{0, 1, 2}));
}

}  // namespace
}  // namespace gsmb
