// "Paper shape" tests: qualitative relationships the paper establishes
// between the algorithms, asserted (with generous margins) on averaged runs
// over a synthetic dataset. These guard the reproduction's headline claims.

#include <algorithm>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "test_support.h"
#include "util/stopwatch.h"

namespace gsmb {
namespace {

AggregateMetrics RunAlgo(const PreparedDataset& prep, PruningKind kind,
                         FeatureSet features, size_t per_class = 25) {
  MetaBlockingConfig config;
  config.pruning = kind;
  config.features = features;
  config.train_per_class = per_class;
  return RunRepeatedExperiment(prep, config, 3).aggregate;
}

class PaperShapeTest : public ::testing::Test {
 protected:
  const PreparedDataset& prep_ = testing::MediumDataset();
};

TEST_F(PaperShapeTest, DeeperPruningTradesRecallForPrecision) {
  FeatureSet f = FeatureSet::Paper2014();
  AggregateMetrics bcl = RunAlgo(prep_, PruningKind::kBCl, f);
  AggregateMetrics wnp = RunAlgo(prep_, PruningKind::kWnp, f);
  AggregateMetrics rwnp = RunAlgo(prep_, PruningKind::kRwnp, f);
  // WNP / RWNP retain subsets of BCl: recall can only drop...
  EXPECT_LE(wnp.recall, bcl.recall + 1e-9);
  EXPECT_LE(rwnp.recall, wnp.recall + 1e-9);
  // ...while precision improves (Figure 5 shape).
  EXPECT_GE(wnp.precision, bcl.precision - 1e-9);
  EXPECT_GE(rwnp.precision, wnp.precision - 1e-9);
}

TEST_F(PaperShapeTest, RcnpIsMorePreciseThanCnp) {
  FeatureSet f = FeatureSet::Paper2014();
  AggregateMetrics cnp = RunAlgo(prep_, PruningKind::kCnp, f);
  AggregateMetrics rcnp = RunAlgo(prep_, PruningKind::kRcnp, f);
  EXPECT_LE(rcnp.recall, cnp.recall + 1e-9);
  EXPECT_GE(rcnp.precision, cnp.precision - 1e-9);  // Figure 6 shape
}

TEST_F(PaperShapeTest, BlastKeepsHighRecall) {
  AggregateMetrics blast =
      RunAlgo(prep_, PruningKind::kBlast, FeatureSet::BlastOptimal());
  // BLAST is the recall-friendly weight-based algorithm (Figure 5/8).
  EXPECT_GT(blast.recall, 0.8);
  EXPECT_GT(blast.precision, prep_.blocking_quality.precision * 5);
}

TEST_F(PaperShapeTest, WepPrunesDeeperThanBlast) {
  FeatureSet f = FeatureSet::BlastOptimal();
  AggregateMetrics wep = RunAlgo(prep_, PruningKind::kWep, f);
  AggregateMetrics blast = RunAlgo(prep_, PruningKind::kBlast, f);
  // WEP's global-average threshold discards more pairs than BLAST's
  // max-based local threshold at r = 0.35.
  EXPECT_LE(wep.retained, blast.retained * 1.05);
  EXPECT_LE(wep.recall, blast.recall + 0.02);
}

TEST_F(PaperShapeTest, BestAlgorithmsAreStrongOnCleanData) {
  // On the low-noise DblpAcm regime the paper's Tables 5a/7a put both
  // selected algorithms near-tied at high effectiveness (BLAST
  // 0.951/0.651, RCNP 0.976/0.646) — RCNP's recall may even exceed
  // BLAST's. Assert that regime rather than a strict ordering.
  AggregateMetrics blast =
      RunAlgo(prep_, PruningKind::kBlast, FeatureSet::BlastOptimal());
  AggregateMetrics rcnp = RunAlgo(prep_, PruningKind::kRcnp,
                                  FeatureSet::RcnpOptimal());
  EXPECT_GT(blast.recall, 0.9);
  EXPECT_GT(rcnp.recall, 0.9);
  EXPECT_GT(blast.f1, 0.5);
  EXPECT_GT(rcnp.f1, 0.5);
  EXPECT_GE(rcnp.precision, blast.precision * 0.7);
}

TEST_F(PaperShapeTest, LargerTrainingSetsDoNotHelpPrecision) {
  // Figure 11/14: growing the training set raises recall slightly but
  // costs precision. Allow slack — the trend, not the exact numbers.
  FeatureSet f = FeatureSet::BlastOptimal();
  AggregateMetrics small = RunAlgo(prep_, PruningKind::kBlast, f, 25);
  AggregateMetrics large = RunAlgo(prep_, PruningKind::kBlast, f, 250);
  EXPECT_GE(large.recall, small.recall - 0.05);
  EXPECT_LE(large.precision, small.precision * 1.35 + 0.05);
}

TEST_F(PaperShapeTest, LcpFeatureDominatesFeatureExtractionCost) {
  // Figure 7/9/10 rationale: LCP is the expensive feature (an extra
  // distinct-candidate sweep over every entity's blocks). Compare the
  // minimum-of-5 extraction time of the LCP-bearing 2014 set against the
  // LCP-free BLAST set; min-of-N makes the measurement robust to
  // scheduling noise.
  FeatureExtractor extractor(*prep_.index, prep_.pairs);
  auto min_time = [&](const FeatureSet& set) {
    double best = 1e9;
    for (int rep = 0; rep < 5; ++rep) {
      Stopwatch watch;
      Matrix m = extractor.Compute(set);
      best = std::min(best, watch.ElapsedSeconds());
      EXPECT_EQ(m.rows(), prep_.pairs.size());
    }
    return best;
  };
  min_time(FeatureSet::BlastOptimal());  // warm-up
  const double lcp_cost = min_time(FeatureSet::Paper2014());
  const double free_cost = min_time(FeatureSet::BlastOptimal());
  EXPECT_GT(lcp_cost, free_cost);
}

}  // namespace
}  // namespace gsmb
