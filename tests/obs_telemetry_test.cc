// Telemetry subsystem: deterministic merge of per-thread metrics, span
// nesting, the no-sink fast path, and Chrome-trace / metrics JSON export
// round-tripping through the in-repo JSON parser.
//
// The contract under test mirrors the pipeline's headline guarantee:
// counter values must be bit-identical no matter how many threads fed the
// sink, and an uninstalled sink must leave zero trace of the
// instrumentation sites it silently skipped.

#include "gsmb/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/json.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"

namespace gsmb {
namespace {

/// Installs `sink` for the scope of one test; never leaks the install
/// into the next test even on assertion failure.
class SinkInstallation {
 public:
  explicit SinkInstallation(obs::TelemetrySink* sink) {
    obs::InstallSink(sink);
  }
  ~SinkInstallation() { obs::InstallSink(nullptr); }
};

/// Feeds the sink a fixed workload split across `num_threads` threads:
/// the same multiset of counter deltas and histogram values regardless of
/// the split, so any two runs must merge to identical snapshots.
obs::MetricsSnapshot RecordWorkload(size_t num_threads) {
  constexpr size_t kItems = 4000;
  obs::TelemetrySink sink;
  SinkInstallation install(&sink);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([t, num_threads] {
      for (size_t i = t; i < kItems; i += num_threads) {
        obs::CounterAdd("work.items");
        obs::CounterAdd("work.bytes", i % 17);
        // Integer-valued doubles: their sum is exact, so even the
        // histogram's FP `sum` must merge bit-identically.
        obs::HistogramRecord("work.cost_us",
                             static_cast<double>(i % 100 + 1));
        obs::GaugeMax("work.high_water", static_cast<double>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return sink.SnapshotMetrics();
}

TEST(Histogram, RecordMergePercentile) {
  obs::HistogramData h;
  h.bounds = obs::DefaultHistogramBounds();
  h.counts.assign(h.bounds.size() + 1, 0);
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.sum, 5050.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  const double p50 = h.Percentile(0.50);
  const double p95 = h.Percentile(0.95);
  EXPECT_GE(p50, h.min);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, h.max);

  obs::HistogramData other = h;
  other.MergeFrom(h);
  EXPECT_EQ(other.count, 200u);
  EXPECT_DOUBLE_EQ(other.sum, 10100.0);
  EXPECT_DOUBLE_EQ(other.max, 100.0);
}

TEST(Telemetry, MergeIsBitIdenticalAcrossThreadCounts) {
  const obs::MetricsSnapshot one = RecordWorkload(1);
  const obs::MetricsSnapshot eight = RecordWorkload(8);

  ASSERT_EQ(one.counters.size(), eight.counters.size());
  EXPECT_EQ(one.counters.at("work.items"), eight.counters.at("work.items"));
  EXPECT_EQ(one.counters.at("work.bytes"), eight.counters.at("work.bytes"));
  EXPECT_EQ(one.gauges.at("work.high_water"),
            eight.gauges.at("work.high_water"));

  const obs::HistogramData& h1 = one.histograms.at("work.cost_us");
  const obs::HistogramData& h8 = eight.histograms.at("work.cost_us");
  EXPECT_EQ(h1.count, h8.count);
  EXPECT_EQ(h1.sum, h8.sum);  // exact: integer-valued samples
  EXPECT_EQ(h1.min, h8.min);
  EXPECT_EQ(h1.max, h8.max);
  EXPECT_EQ(h1.counts, h8.counts);

  // The exported JSON — the user-visible artifact — is byte-identical.
  EXPECT_EQ(obs::MetricsJson(one), obs::MetricsJson(eight));
}

TEST(Telemetry, SpanNestingDepthsAndDurations) {
  obs::TelemetrySink sink;
  SinkInstallation install(&sink);
  {
    GSMB_SPAN("outer");
    {
      GSMB_SPAN("inner", "inner.latency_us");
      volatile uint64_t spin = 0;
      for (int i = 0; i < 1000; ++i) spin = spin + i;
    }
  }
  const std::vector<obs::SpanEvent> spans = sink.Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: outer begins first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_LE(spans[0].ts_us, spans[1].ts_us);
  EXPECT_GE(spans[0].dur_us, spans[1].dur_us);

  // The span's second argument fed the latency histogram from the same
  // clock read.
  const obs::MetricsSnapshot snapshot = sink.SnapshotMetrics();
  ASSERT_EQ(snapshot.histograms.count("inner.latency_us"), 1u);
  EXPECT_EQ(snapshot.histograms.at("inner.latency_us").count, 1u);
}

TEST(Telemetry, NoSinkFastPathRecordsNothing) {
  ASSERT_EQ(obs::CurrentSink(), nullptr);
  // Every instrumentation site must be a silent no-op with no sink.
  obs::CounterAdd("ghost.counter");
  obs::GaugeSet("ghost.gauge", 1.0);
  obs::GaugeMax("ghost.gauge", 2.0);
  obs::HistogramRecord("ghost.hist", 3.0);
  { GSMB_SPAN("ghost.span", "ghost.latency_us"); }

  obs::PhaseTimings timings;
  { obs::ScopedPhase phase(&timings, obs::Phase::kTrain); }
  // ScopedPhase always times (JobResult needs its seconds either way)...
  EXPECT_GE(timings.Get(obs::Phase::kTrain), 0.0);

  // ...but a sink installed afterwards must have seen none of the above.
  obs::TelemetrySink sink;
  SinkInstallation install(&sink);
  EXPECT_TRUE(sink.SnapshotMetrics().empty());
  EXPECT_TRUE(sink.Spans().empty());
}

TEST(Telemetry, TraceJsonRoundTripsThroughRepoParser) {
  obs::TelemetrySink sink;
  SinkInstallation install(&sink);
  {
    GSMB_SPAN("prepare");
    { GSMB_SPAN("blocking"); }
    { GSMB_SPAN("prune"); }
  }
  const Result<json::Value> parsed = json::Parse(sink.TraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  const json::Value* events = parsed->AsObject().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::set<std::string> names;
  for (const json::Value& event : events->AsArray()) {
    ASSERT_TRUE(event.is_object());
    const json::Object& obj = event.AsObject();
    ASSERT_NE(obj.Find("name"), nullptr);
    ASSERT_NE(obj.Find("ts"), nullptr);
    ASSERT_NE(obj.Find("dur"), nullptr);
    EXPECT_EQ(obj.Find("ph")->AsString(), "X");
    names.insert(obj.Find("name")->AsString());
  }
  EXPECT_EQ(names, (std::set<std::string>{"prepare", "blocking", "prune"}));
}

TEST(Telemetry, MetricsJsonRoundTripsThroughRepoParser) {
  obs::TelemetrySink sink;
  SinkInstallation install(&sink);
  obs::CounterAdd("pairs.generated", 12345);
  obs::HistogramRecord("serve.query.latency_us", 42.0);

  const Result<json::Value> parsed = json::Parse(sink.MetricsJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Object& root = parsed->AsObject();
  const json::Value* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* generated = counters->AsObject().Find("pairs.generated");
  ASSERT_NE(generated, nullptr);
  EXPECT_EQ(generated->AsU64(), 12345u);
  const json::Value* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* latency =
      histograms->AsObject().Find("serve.query.latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->AsObject().Find("count")->AsU64(), 1u);
  ASSERT_NE(latency->AsObject().Find("p99"), nullptr);
}

TEST(Telemetry, AllThreeBackendsReportTheSamePhaseSet) {
  // Satellite of ApplyPhaseTimings: one writer of JobResult timing fields
  // means one phase vocabulary — a gauge key present in one backend's
  // snapshot but missing from another's would mean a backend bypassed it.
  Engine engine;
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = 0.03;
  spec.blocking.filter_ratio = 1.0;  // serving cannot filter
  spec.blocking.purge_size_fraction = 0.5;
  spec.pruning.kind = PruningKind::kBlast;
  spec.training.labels_per_class = 15;
  spec.training.seed = 3;
  spec.execution.shards = 1;

  std::vector<std::set<std::string>> phase_keys;
  for (ExecutionMode mode : {ExecutionMode::kBatch, ExecutionMode::kStreaming,
                             ExecutionMode::kServing}) {
    spec.execution.mode = mode;
    Result<JobResult> result = engine.Run(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::set<std::string> keys;
    for (const auto& [name, value] : result->telemetry.gauges) {
      if (name.rfind("phase.", 0) == 0) keys.insert(name);
    }
    phase_keys.push_back(std::move(keys));
  }
  const std::set<std::string> expected{
      "phase.prepare.seconds",  "phase.blocking.seconds",
      "phase.pairs.seconds",    "phase.features.seconds",
      "phase.train.seconds",    "phase.classify.seconds",
      "phase.prune.seconds"};
  EXPECT_EQ(phase_keys[0], expected);
  EXPECT_EQ(phase_keys[1], expected);
  EXPECT_EQ(phase_keys[2], expected);
}

}  // namespace
}  // namespace gsmb
