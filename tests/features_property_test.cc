// Property tests on the weighting schemes: invariants that must hold on any
// redundancy-positive block collection, checked over randomly generated
// datasets (parameterized on the generator seed).

#include <gtest/gtest.h>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "blocking/candidate_pairs.h"
#include "blocking/token_blocking.h"
#include "core/features.h"
#include "datasets/clean_clean_generator.h"
#include "datasets/dirty_generator.h"
#include "datasets/specs.h"

namespace gsmb {
namespace {

class SchemeBoundsSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchemeBoundsSweep, CleanCleanBounds) {
  CleanCleanSpec spec;
  spec.name = "prop";
  spec.e1_size = 150;
  spec.e2_size = 180;
  spec.num_duplicates = 90;
  spec.seed = GetParam();
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);

  BlockCollection blocks = TokenBlocking().Build(data.e1, data.e2);
  blocks = BlockPurging().Apply(blocks);
  blocks = BlockFiltering().Apply(blocks);
  EntityIndex index(blocks);
  auto pairs = GenerateCandidatePairs(index);
  ASSERT_FALSE(pairs.empty());

  FeatureExtractor extractor(index, pairs);
  Matrix all = extractor.ComputeAll();
  for (size_t r = 0; r < all.rows(); ++r) {
    const double cfibf = all.At(r, 0);
    const double raccb = all.At(r, 1);
    const double js = all.At(r, 2);
    const double lcp_l = all.At(r, 3);
    const double lcp_r = all.At(r, 4);
    const double ejs = all.At(r, 5);
    const double wjs = all.At(r, 6);
    const double rs = all.At(r, 7);
    const double nrs = all.At(r, 8);

    EXPECT_GE(cfibf, 0.0);
    EXPECT_GT(raccb, 0.0);  // at least one common block
    EXPECT_GT(js, 0.0);
    EXPECT_LE(js, 1.0);
    EXPECT_GE(lcp_l, 1.0);  // candidates co-occur with at least each other
    EXPECT_GE(lcp_r, 1.0);
    EXPECT_GE(ejs, 0.0);    // ||e_i|| <= ||B|| so both logs are >= 0
    EXPECT_GT(wjs, 0.0);
    EXPECT_LE(wjs, 1.0 + 1e-12);
    EXPECT_GT(rs, 0.0);
    EXPECT_GT(nrs, 0.0);
    EXPECT_LE(nrs, 1.0 + 1e-12);
  }
}

TEST_P(SchemeBoundsSweep, DirtyBounds) {
  DirtySpec spec;
  spec.name = "prop-dirty";
  spec.num_entities = 300;
  spec.seed = GetParam();
  GeneratedDirty data = DirtyGenerator().Generate(spec);

  BlockCollection blocks = TokenBlocking().Build(data.entities);
  blocks = BlockPurging().Apply(blocks);
  blocks = BlockFiltering().Apply(blocks);
  EntityIndex index(blocks);
  auto pairs = GenerateCandidatePairs(index);
  ASSERT_FALSE(pairs.empty());

  FeatureExtractor extractor(index, pairs);
  Matrix all = extractor.ComputeAll();
  for (size_t r = 0; r < all.rows(); ++r) {
    EXPECT_GT(all.At(r, 2), 0.0);               // JS
    EXPECT_LE(all.At(r, 2), 1.0);
    EXPECT_LE(all.At(r, 6), 1.0 + 1e-12);       // WJS
    EXPECT_LE(all.At(r, 8), 1.0 + 1e-12);       // NRS
    EXPECT_GE(all.At(r, 5), 0.0);               // EJS
  }
}

TEST_P(SchemeBoundsSweep, IdenticalBlockSetsMaximiseJaccardSchemes) {
  // Construct two entities with identical block lists: JS = WJS = NRS = 1.
  BlockCollection bc(/*clean_clean=*/false, 4, 0);
  Block b1;
  b1.key = "k1";
  b1.left = {0, 1};
  bc.Add(b1);
  Block b2;
  b2.key = "k2";
  b2.left = {0, 1, 2, 3};
  bc.Add(b2);
  EntityIndex index(bc);
  auto pairs = GenerateCandidatePairs(index);
  FeatureExtractor extractor(index, pairs);
  Matrix all = extractor.ComputeAll();
  // Pair (0,1) shares both blocks and each is in exactly those blocks.
  ASSERT_EQ(pairs[0], (CandidatePair{0, 1}));
  EXPECT_DOUBLE_EQ(all.At(0, 2), 1.0);  // JS
  EXPECT_DOUBLE_EQ(all.At(0, 6), 1.0);  // WJS
  EXPECT_DOUBLE_EQ(all.At(0, 8), 1.0);  // NRS
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeBoundsSweep,
                         ::testing::Values(1, 7, 13, 29, 71));

}  // namespace
}  // namespace gsmb
