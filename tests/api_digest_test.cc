// Provenance digests: PairSetDigest algebra (order independence, merge,
// single-pair sensitivity), the hex serialization, and the acceptance
// invariant — the retained-set digest is bit-identical across every
// backend, thread count and shard count that retains the same pairs.

#include "gsmb/digest.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "gsmb/engine.h"
#include "gsmb/job_spec.h"

namespace gsmb {
namespace {

TEST(PairSetDigest, OrderIndependent) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"a1", "b9"}, {"a2", "b8"}, {"a3", "b7"}, {"a4", "b6"}, {"a5", "b5"},
  };
  obs::PairSetDigest forward;
  for (const auto& [l, r] : pairs) forward.AddPair(l, r);
  obs::PairSetDigest reverse;
  for (auto it = pairs.rbegin(); it != pairs.rend(); ++it) {
    reverse.AddPair(it->first, it->second);
  }
  EXPECT_EQ(forward, reverse);
  EXPECT_EQ(forward.Value(), reverse.Value());
  EXPECT_EQ(forward.Hex(), reverse.Hex());
}

TEST(PairSetDigest, MergeEqualsSingleAccumulator) {
  obs::PairSetDigest whole;
  obs::PairSetDigest shard_a, shard_b;
  for (int i = 0; i < 10; ++i) {
    const std::string left = "l" + std::to_string(i);
    const std::string right = "r" + std::to_string(i);
    whole.AddPair(left, right);
    (i % 2 == 0 ? shard_a : shard_b).AddPair(left, right);
  }
  obs::PairSetDigest merged = shard_a;
  merged.MergeFrom(shard_b);
  EXPECT_EQ(merged, whole);
}

TEST(PairSetDigest, SingleFlippedPairChangesTheDigest) {
  obs::PairSetDigest base, flipped, dropped, duplicated;
  for (int i = 0; i < 100; ++i) {
    const std::string left = "l" + std::to_string(i);
    const std::string right = "r" + std::to_string(i);
    base.AddPair(left, right);
    if (i == 57) {
      flipped.AddPair(right, left);  // swap sides of one pair
    } else {
      flipped.AddPair(left, right);
      dropped.AddPair(left, right);
    }
    duplicated.AddPair(left, right);
  }
  duplicated.AddPair("l57", "r57");
  EXPECT_NE(base.Value(), flipped.Value());
  EXPECT_NE(base.Value(), dropped.Value());
  EXPECT_NE(base.Value(), duplicated.Value());
}

TEST(PairSetDigest, PairBoundaryMatters) {
  // ("ab", "c") and ("a", "bc") concatenate identically; the separator
  // byte must keep them distinct.
  obs::PairSetDigest ab_c, a_bc;
  ab_c.AddPair("ab", "c");
  a_bc.AddPair("a", "bc");
  EXPECT_NE(ab_c.Value(), a_bc.Value());
}

TEST(DigestHex, SixteenLowercaseZeroPaddedDigits) {
  EXPECT_EQ(obs::DigestHex(0), "0000000000000000");
  EXPECT_EQ(obs::DigestHex(0xffffffffffffffffull), "ffffffffffffffff");
  EXPECT_EQ(obs::DigestHex(0x00ab00cd00ef0012ull), "00ab00cd00ef0012");
  const std::string hex = obs::DigestHex(obs::Mix64(1));
  ASSERT_EQ(hex.size(), 16u);
  for (const char c : hex) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) &&
                !std::isupper(static_cast<unsigned char>(c)))
        << "bad hex digit '" << c << "'";
  }
}

// ---------------------------------------------------------------------------
// End-to-end invariance: the digest a run reports must depend only on
// WHAT was retained, never on which backend, how many threads, or how
// many shards computed it.
// ---------------------------------------------------------------------------

JobSpec ServingCompatibleSpec() {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = 0.03;
  spec.blocking.filter_ratio = 1.0;  // serving cannot filter
  spec.training.labels_per_class = 15;
  spec.training.seed = 3;
  spec.execution.shards = 1;
  return spec;
}

JobResult MustRun(const JobSpec& spec) {
  Engine engine;
  Result<JobResult> result = engine.Run(spec);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : JobResult{};
}

TEST(DigestInvariance, AcrossBackendsThreadsAndShards) {
  const JobResult reference = MustRun(ServingCompatibleSpec());
  ASSERT_NE(reference.retained_digest, 0u);
  ASSERT_GT(reference.retained_count, 0u);

  struct Variant {
    const char* label;
    ExecutionMode mode;
    size_t threads;
    size_t shards;
  };
  const Variant variants[] = {
      {"batch x8", ExecutionMode::kBatch, 8, 1},
      {"streaming t1 s1", ExecutionMode::kStreaming, 1, 1},
      {"streaming t8 s1", ExecutionMode::kStreaming, 8, 1},
      {"streaming t8 s6", ExecutionMode::kStreaming, 8, 6},
      {"serving t1 s1", ExecutionMode::kServing, 1, 1},
      {"serving t8 s1", ExecutionMode::kServing, 8, 1},
  };
  for (const Variant& variant : variants) {
    JobSpec spec = ServingCompatibleSpec();
    spec.execution.mode = variant.mode;
    spec.execution.options.num_threads = variant.threads;
    spec.execution.shards = variant.shards;
    const JobResult run = MustRun(spec);
    EXPECT_EQ(run.retained_digest, reference.retained_digest)
        << variant.label << ": retained digest diverged";
    EXPECT_EQ(run.retained_count, reference.retained_count)
        << variant.label << ": retained count diverged";
    EXPECT_EQ(run.dataset_fingerprint, reference.dataset_fingerprint)
        << variant.label << ": dataset fingerprint diverged";
    // Every backend — serving included, since its cold build trains from
    // the prepared handle — reports the same preparation digest.
    EXPECT_EQ(run.prepared_digest, reference.prepared_digest)
        << variant.label << ": prepared digest diverged";
  }
}

TEST(DigestInvariance, DifferentSpecMeansDifferentDigest) {
  const JobResult base = MustRun(ServingCompatibleSpec());
  JobSpec stricter = ServingCompatibleSpec();
  stricter.pruning.validity_threshold = 0.95;
  const JobResult other = MustRun(stricter);
  // Same dataset, stricter probability floor: the inputs fingerprint
  // matches while the retained set (and so its digest) moves.
  EXPECT_EQ(base.dataset_fingerprint, other.dataset_fingerprint);
  EXPECT_NE(base.retained_digest, other.retained_digest);
  EXPECT_NE(base.retained_count, other.retained_count);
}

}  // namespace
}  // namespace gsmb
