#include "util/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace gsmb {
namespace {

TEST(Csv, ParseSimple) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2", "3"}));
}

TEST(Csv, ParseWithoutTrailingNewline) {
  auto rows = ParseCsv("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"1", "2"}));
}

TEST(Csv, QuotedComma) {
  auto rows = ParseCsv("\"a,b\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a,b", "c"}));
}

TEST(Csv, EscapedQuote) {
  auto rows = ParseCsv("\"he said \"\"hi\"\"\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "he said \"hi\"");
}

TEST(Csv, NewlineInsideQuotedField) {
  auto rows = ParseCsv("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(Csv, CrLfLineEndings) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(Csv, EmptyFields) {
  auto rows = ParseCsv(",,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"", "", ""}));
}

TEST(Csv, EscapeField) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(EscapeCsvField("n\nn"), "\"n\nn\"");
}

TEST(Csv, RoundTrip) {
  std::vector<CsvRow> rows = {
      {"id", "name", "note"},
      {"1", "Apple, Inc.", "said \"hello\""},
      {"2", "multi\nline", ""},
  };
  auto parsed = ParseCsv(WriteCsv(rows));
  EXPECT_EQ(parsed, rows);
}

TEST(Csv, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/gsmb_csv_test.csv";
  std::vector<CsvRow> rows = {{"a", "b"}, {"1", "2,3"}};
  WriteCsvFile(path, rows);
  EXPECT_EQ(ReadCsvFile(path), rows);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(ReadCsvFile("/nonexistent/gsmb/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace gsmb
