// The distributed execution tier (gsmb/remote.h): a 16-variant sweep over
// 4 worker processes is bit-identical to the in-process RunSweep —
// retained sets AND digests — while paying exactly one preparation total
// (the coordinator's one cache miss; zero worker prepare misses). Worker
// death mid-sweep is healed by bounded retry without touching sibling
// variants; with the retry budget at zero, exactly the lost work fails.
//
// The worker binary is the real gsmb_cli (GSMB_CLI_PATH, injected by the
// build), so these tests cover the actual fork/exec + wire-protocol path,
// not a mock.

#include "gsmb/remote.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "gsmb/snapshot.h"
#include "gsmb/sweep.h"

namespace gsmb {
namespace {

std::string WorkerCommand() { return GSMB_CLI_PATH; }

JobSpec BaseSpec() {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = 0.05;
  spec.training.labels_per_class = 25;
  spec.execution.options.num_threads = 1;
  spec.output.keep_retained = true;
  return spec;
}

/// 4 pruning kinds x 2 label budgets x 2 seeds = 16 variants with real
/// cost skew (BLAST vs cardinality pruning differ well over 2x).
SweepSpec SixteenVariantSweep() {
  SweepSpec sweep;
  sweep.base = BaseSpec();
  sweep.axes.pruning = {PruningKind::kWnp, PruningKind::kBlast,
                        PruningKind::kCnp, PruningKind::kRcnp};
  sweep.axes.labels_per_class = {15, 25};
  sweep.axes.seeds = {0, 1};
  return sweep;
}

uint64_t Counter(const SweepResult& result, const std::string& name) {
  auto it = result.telemetry.counters.find(name);
  return it == result.telemetry.counters.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// Bit-identity against the in-process sweep
// ---------------------------------------------------------------------------

TEST(RemoteSweep, SixteenVariantsOverFourWorkersMatchInProcessBitForBit) {
  const SweepSpec sweep = SixteenVariantSweep();

  Engine engine;
  Result<SweepResult> local = engine.RunSweep(sweep);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  ASSERT_TRUE(local->all_ok());
  ASSERT_EQ(local->variants.size(), 16u);

  RemoteOptions options;
  options.num_workers = 4;
  options.worker_command = WorkerCommand();
  Result<SweepResult> remote = RunSweepRemote(sweep, options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_TRUE(remote->all_ok());
  ASSERT_EQ(remote->variants.size(), 16u);

  for (size_t i = 0; i < 16; ++i) {
    const SweepVariant& a = local->variants[i];
    const SweepVariant& b = remote->variants[i];
    EXPECT_EQ(a.label, b.label) << i;
    // Bit-identical retained sets, and the digests that prove it without
    // trusting the pair transfer.
    EXPECT_EQ(a.result.retained, b.result.retained) << a.label;
    EXPECT_EQ(a.result.retained_digest, b.result.retained_digest) << a.label;
    EXPECT_EQ(a.result.retained_count, b.result.retained_count) << a.label;
    EXPECT_EQ(a.result.dataset_fingerprint, b.result.dataset_fingerprint);
    EXPECT_EQ(a.result.prepared_digest, b.result.prepared_digest) << a.label;
    EXPECT_EQ(a.result.metrics.retained, b.result.metrics.retained);
    EXPECT_EQ(a.result.metrics.recall, b.result.metrics.recall) << a.label;
    EXPECT_EQ(a.result.metrics.precision, b.result.metrics.precision);
    EXPECT_EQ(a.result.metrics.f1, b.result.metrics.f1) << a.label;
    EXPECT_EQ(a.result.training_size, b.result.training_size) << a.label;
    EXPECT_EQ(a.result.model_coefficients, b.result.model_coefficients)
        << a.label;
  }

  // Exactly ONE preparation total: the coordinator's own (one cache miss,
  // same as the in-process sweep) — and no worker ever prepared, proven by
  // the per-result prepare-miss deltas the workers ship back.
  EXPECT_EQ(local->cache_misses, 1u);
  EXPECT_EQ(remote->cache_misses, 1u);
  EXPECT_EQ(Counter(*remote, "dist.worker.prepare.miss"), 0u);
  EXPECT_EQ(Counter(*remote, "dist.workers"), 4u);
  EXPECT_EQ(Counter(*remote, "dist.worker.deaths"), 0u);
  EXPECT_EQ(Counter(*remote, "dist.snapshot.loads"), 4u);
}

TEST(RemoteSweep, ReusesACallerSuppliedSnapshotWithoutPreparing) {
  const SweepSpec sweep = SixteenVariantSweep();
  const std::string path = ::testing::TempDir() + "/remote_shared.snapshot";
  {
    Engine engine;
    Result<PreparedHandle> prepared = engine.Prepare(sweep.base);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    ASSERT_TRUE(SavePreparedSnapshot(**prepared, path).ok());
  }

  RemoteOptions options;
  options.num_workers = 2;
  options.worker_command = WorkerCommand();
  options.snapshot_path = path;
  Result<SweepResult> remote = RunSweepRemote(sweep, options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_TRUE(remote->all_ok());
  // Nobody prepared: not the coordinator (snapshot supplied), not the
  // workers (loads, not builds).
  EXPECT_EQ(remote->cache_misses, 0u);
  EXPECT_EQ(Counter(*remote, "dist.worker.prepare.miss"), 0u);
  EXPECT_EQ(Counter(*remote, "dist.snapshot.loads"), 2u);
}

TEST(RemoteSweep, RejectsASnapshotPreparedForADifferentDataset) {
  SweepSpec sweep = SixteenVariantSweep();
  const std::string path = ::testing::TempDir() + "/remote_mismatch.snapshot";
  {
    Engine engine;
    JobSpec other = sweep.base;
    other.dataset.scale = 0.03;  // a different dataset+blocking
    Result<PreparedHandle> prepared = engine.Prepare(other);
    ASSERT_TRUE(prepared.ok());
    ASSERT_TRUE(SavePreparedSnapshot(**prepared, path).ok());
  }

  RemoteOptions options;
  options.num_workers = 2;
  options.worker_command = WorkerCommand();
  options.snapshot_path = path;
  Result<SweepResult> remote = RunSweepRemote(sweep, options);
  ASSERT_FALSE(remote.ok());
  EXPECT_EQ(remote.status().code(), StatusCode::kInvalidArgument);
  // The contradiction names both sides.
  EXPECT_NE(remote.status().message().find("different dataset"),
            std::string::npos)
      << remote.status().message();
  EXPECT_NE(remote.status().message().find("dataset_fingerprint"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Failure semantics
// ---------------------------------------------------------------------------

TEST(RemoteSweep, SurvivesAWorkerDeathThroughRetry) {
  const SweepSpec sweep = SixteenVariantSweep();

  RemoteOptions options;
  options.num_workers = 4;
  options.worker_command = WorkerCommand();
  options.fault.kill_worker = 0;  // SIGKILL worker 0 after its 1st result
  options.fault.after_results = 1;
  Result<SweepResult> remote = RunSweepRemote(sweep, options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  // The death cost one worker, not the sweep: the lost in-flight variant
  // was re-dispatched to a survivor, so every variant completed.
  EXPECT_TRUE(remote->all_ok());
  EXPECT_EQ(Counter(*remote, "dist.worker.deaths"), 1u);
  EXPECT_EQ(Counter(*remote, "dist.retries"), 1u);

  // And its results are still the true ones.
  Engine engine;
  Result<SweepResult> local = engine.RunSweep(sweep);
  ASSERT_TRUE(local.ok());
  for (size_t i = 0; i < local->variants.size(); ++i) {
    EXPECT_EQ(remote->variants[i].result.retained_digest,
              local->variants[i].result.retained_digest)
        << local->variants[i].label;
  }
}

TEST(RemoteSweep, ZeroRetriesConfineTheErrorToTheLostVariant) {
  const SweepSpec sweep = SixteenVariantSweep();

  RemoteOptions options;
  options.num_workers = 4;
  options.worker_command = WorkerCommand();
  options.max_retries = 0;
  options.fault.kill_worker = 0;
  options.fault.after_results = 1;
  Result<SweepResult> remote = RunSweepRemote(sweep, options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  // Exactly one variant — the one in flight on the killed worker — fails,
  // with a Status that says why; every sibling completes normally.
  size_t failures = 0;
  for (const SweepVariant& variant : remote->variants) {
    if (variant.status.ok()) continue;
    ++failures;
    EXPECT_EQ(variant.status.code(), StatusCode::kInternal);
    EXPECT_NE(variant.status.message().find("worker process died"),
              std::string::npos)
        << variant.status.message();
  }
  EXPECT_EQ(failures, 1u);
  EXPECT_EQ(Counter(*remote, "dist.worker.deaths"), 1u);
  EXPECT_EQ(Counter(*remote, "dist.retries"), 0u);
}

TEST(RemoteSweep, ReportsACleanErrorWhenTheWorkerCommandCannotStart) {
  const SweepSpec sweep = SixteenVariantSweep();

  RemoteOptions options;
  options.num_workers = 2;
  options.worker_command = "/nonexistent/not_a_worker_binary";
  Result<SweepResult> remote = RunSweepRemote(sweep, options);
  ASSERT_FALSE(remote.ok());
  EXPECT_NE(remote.status().message().find("no worker became ready"),
            std::string::npos)
      << remote.status().message();
  EXPECT_NE(remote.status().message().find(options.worker_command),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The `remote` executor backend
// ---------------------------------------------------------------------------

TEST(RemoteBackend, RegistersAndRunsASingleJobVerifiably) {
  const JobSpec spec = BaseSpec();

  Engine engine;
  Result<JobResult> want = engine.Run(spec);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  RemoteOptions options;
  options.worker_command = WorkerCommand();
  ASSERT_TRUE(engine.Register(MakeRemoteBackend(options)).ok());
  Result<JobResult> got = engine.RunOn("remote", spec);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  EXPECT_EQ(got->retained, want->retained);
  EXPECT_EQ(got->retained_digest, want->retained_digest);
  EXPECT_EQ(got->dataset_fingerprint, want->dataset_fingerprint);
  EXPECT_EQ(got->prepared_digest, want->prepared_digest);
  EXPECT_EQ(got->metrics.f1, want->metrics.f1);
}

TEST(RemoteBackend, RefusesServingMode) {
  JobSpec spec = BaseSpec();
  spec.execution.mode = ExecutionMode::kServing;

  RemoteOptions options;
  options.worker_command = WorkerCommand();
  std::unique_ptr<Executor> backend = MakeRemoteBackend(options);
  Status supports = backend->Supports(spec);
  ASSERT_FALSE(supports.ok());
  EXPECT_NE(supports.message().find("serving"), std::string::npos);
}

}  // namespace
}  // namespace gsmb
