#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace gsmb {
namespace {

TEST(Tokenize, SplitsOnNonAlnum) {
  EXPECT_EQ(TokenizeAlnum("Apple iPhone X"),
            (std::vector<std::string>{"apple", "iphone", "x"}));
  EXPECT_EQ(TokenizeAlnum("a,b;c  d"),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(Tokenize, LowercasesAscii) {
  EXPECT_EQ(TokenizeAlnum("SAMSUNG S20"),
            (std::vector<std::string>{"samsung", "s20"}));
}

TEST(Tokenize, KeepsDigits) {
  EXPECT_EQ(TokenizeAlnum("mate-20 5g"),
            (std::vector<std::string>{"mate", "20", "5g"}));
}

TEST(Tokenize, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeAlnum("").empty());
  EXPECT_TRUE(TokenizeAlnum("--- ,, !!").empty());
}

TEST(Tokenize, SingleToken) {
  EXPECT_EQ(TokenizeAlnum("smartphone"),
            (std::vector<std::string>{"smartphone"}));
}

TEST(Tokenize, LeadingTrailingSeparators) {
  EXPECT_EQ(TokenizeAlnum("  x  "), (std::vector<std::string>{"x"}));
}

TEST(QGrams, BasicTrigrams) {
  EXPECT_EQ(QGrams("apple", 3),
            (std::vector<std::string>{"app", "ppl", "ple"}));
}

TEST(QGrams, ShortStringYieldsWhole) {
  EXPECT_EQ(QGrams("ab", 3), (std::vector<std::string>{"ab"}));
  EXPECT_EQ(QGrams("abc", 3), (std::vector<std::string>{"abc"}));
}

TEST(QGrams, LowercasesInput) {
  EXPECT_EQ(QGrams("AbCd", 2),
            (std::vector<std::string>{"ab", "bc", "cd"}));
}

TEST(QGrams, EmptyAndZeroQ) {
  EXPECT_TRUE(QGrams("", 3).empty());
  EXPECT_TRUE(QGrams("abc", 0).empty());
}

TEST(Suffixes, BasicSuffixes) {
  EXPECT_EQ(Suffixes("apple", 3),
            (std::vector<std::string>{"apple", "pple", "ple"}));
}

TEST(Suffixes, ShortStringYieldsWhole) {
  EXPECT_EQ(Suffixes("ab", 4), (std::vector<std::string>{"ab"}));
}

TEST(Suffixes, Empty) { EXPECT_TRUE(Suffixes("", 2).empty()); }

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Trim, TrimsBothEnds) {
  EXPECT_EQ(TrimAscii("  hi  "), "hi");
  EXPECT_EQ(TrimAscii("hi"), "hi");
  EXPECT_EQ(TrimAscii("   "), "");
  EXPECT_EQ(TrimAscii("\t a b \n"), "a b");
}

TEST(Lower, LowerAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD 42!"), "mixed 42!");
}

}  // namespace
}  // namespace gsmb
