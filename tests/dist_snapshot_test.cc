// Prepared snapshots (gsmb/snapshot.h): a saved preparation loads back
// bit-identical to a cold Engine::Prepare — pointer-distinct handle, same
// digests, same retained pairs for every pruning kind on the batch AND
// streaming backend — at any load thread count. Truncated, corrupted and
// version-bumped files are rejected with diagnostics, never UB, and the
// load proves what it rebuilt by recomputing both digests.

#include "gsmb/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "gsmb/engine.h"
#include "gsmb/job_spec.h"

namespace gsmb {
namespace {

JobSpec BaseSpec() {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = 0.04;
  spec.training.labels_per_class = 15;
  spec.training.seed = 7;
  spec.execution.shards = 2;
  spec.execution.options.num_threads = 1;
  spec.output.keep_retained = true;
  return spec;
}

std::string PathFor(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// Round trip
// ---------------------------------------------------------------------------

TEST(PreparedSnapshot, RoundTripsDigestIdenticalAtAnyThreadCount) {
  const JobSpec spec = BaseSpec();
  Engine engine;
  Result<PreparedHandle> prepared = engine.Prepare(spec);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  const std::string path = PathFor("roundtrip.snapshot");
  Status saved = SavePreparedSnapshot(**prepared, path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  for (size_t threads : {size_t{1}, size_t{8}}) {
    Result<PreparedHandle> loaded = LoadPreparedSnapshot(path, threads);
    ASSERT_TRUE(loaded.ok()) << "threads=" << threads << ": "
                             << loaded.status().ToString();
    // A loaded handle is a genuinely independent object...
    EXPECT_NE(loaded->get(), prepared->get());
    // ...that reproduces the exact preparation, proven by digests.
    EXPECT_EQ((*loaded)->cache_key, (*prepared)->cache_key);
    EXPECT_EQ((*loaded)->dataset_fingerprint, (*prepared)->dataset_fingerprint)
        << "threads=" << threads;
    EXPECT_EQ((*loaded)->prepared_digest, (*prepared)->prepared_digest)
        << "threads=" << threads;
    EXPECT_EQ((*loaded)->inputs.e1.size(), (*prepared)->inputs.e1.size());
    EXPECT_EQ((*loaded)->inputs.ground_truth.size(),
              (*prepared)->inputs.ground_truth.size());
    EXPECT_EQ((*loaded)->stream.blocks.size(), (*prepared)->stream.blocks.size());
  }
}

TEST(PreparedSnapshot, InfoPeeksTheHeaderWithoutLoading) {
  const JobSpec spec = BaseSpec();
  Engine engine;
  Result<PreparedHandle> prepared = engine.Prepare(spec);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  const std::string path = PathFor("info.snapshot");
  ASSERT_TRUE(SavePreparedSnapshot(**prepared, path).ok());

  Result<PreparedSnapshotInfo> info = ReadPreparedSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->cache_key, (*prepared)->cache_key);
  EXPECT_EQ(info->dataset_fingerprint, (*prepared)->dataset_fingerprint);
  EXPECT_EQ(info->prepared_digest, (*prepared)->prepared_digest);
  EXPECT_EQ(info->file_bytes, std::filesystem::file_size(path));
}

// The acceptance bar: an engine seeded from a snapshot retains exactly the
// pairs a cold engine retains, for all 8 pruning kinds, on the batch and
// streaming backend — and never prepares (cache misses stay 0).
TEST(PreparedSnapshot, AdoptedHandleMatchesColdPrepareForAllPruningKinds) {
  const JobSpec base = BaseSpec();
  const std::string path = PathFor("adopt.snapshot");
  {
    Engine writer;
    Result<PreparedHandle> prepared = writer.Prepare(base);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    ASSERT_TRUE(SavePreparedSnapshot(**prepared, path).ok());
  }

  Engine cold;
  Engine adopted;
  Result<PreparedHandle> loaded = LoadPreparedSnapshot(path, /*num_threads=*/1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(adopted.AdoptPrepared(*loaded).ok());

  const PruningKind kinds[] = {
      PruningKind::kBCl, PruningKind::kWep,  PruningKind::kWnp,
      PruningKind::kRwnp, PruningKind::kBlast, PruningKind::kCep,
      PruningKind::kCnp, PruningKind::kRcnp,
  };
  for (PruningKind kind : kinds) {
    for (ExecutionMode mode : {ExecutionMode::kBatch, ExecutionMode::kStreaming}) {
      JobSpec spec = base;
      spec.pruning.kind = kind;
      spec.execution.mode = mode;
      Result<JobResult> want = cold.Run(spec);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      Result<JobResult> got = adopted.Run(spec);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->retained, want->retained)
          << PruningKindName(kind) << "/" << ExecutionModeName(mode);
      EXPECT_EQ(got->retained_digest, want->retained_digest);
      EXPECT_EQ(got->dataset_fingerprint, want->dataset_fingerprint);
      EXPECT_EQ(got->prepared_digest, want->prepared_digest);
    }
  }
  // Every run above was served by the adopted preparation.
  EXPECT_EQ(adopted.prepare_cache_stats().misses, 0u);
  EXPECT_EQ(adopted.prepare_cache_stats().hits, 16u);
}

TEST(PreparedSnapshot, AdoptRejectsNullAndDisabledCache) {
  Engine engine;
  EXPECT_FALSE(engine.AdoptPrepared(nullptr).ok());

  EngineOptions no_cache;
  no_cache.prepare_cache_max_entries = 0;
  Engine uncached(no_cache);
  Result<PreparedHandle> prepared = engine.Prepare(BaseSpec());
  ASSERT_TRUE(prepared.ok());
  Status adopted = uncached.AdoptPrepared(*prepared);
  ASSERT_FALSE(adopted.ok());
  EXPECT_NE(adopted.message().find("cache is disabled"), std::string::npos)
      << adopted.message();
}

// ---------------------------------------------------------------------------
// Rejection: truncation / corruption / version bump
// ---------------------------------------------------------------------------

class PreparedSnapshotRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine engine;
    Result<PreparedHandle> prepared = engine.Prepare(BaseSpec());
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    path_ = PathFor("rejection.snapshot");
    ASSERT_TRUE(SavePreparedSnapshot(**prepared, path_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(PreparedSnapshotRejection, TruncatedFilesFailWithADiagnostic) {
  const std::string path = PathFor("truncated.snapshot");
  // Every truncation point must fail cleanly: inside the magic, inside the
  // header, mid-profiles, and one byte short of complete.
  for (size_t keep : {size_t{0}, size_t{4}, size_t{20}, bytes_.size() / 2,
                      bytes_.size() - 1}) {
    WriteFileBytes(path, bytes_.substr(0, keep));
    Result<PreparedHandle> loaded = LoadPreparedSnapshot(path, 1);
    ASSERT_FALSE(loaded.ok()) << "accepted a " << keep << "-byte prefix of a "
                              << bytes_.size() << "-byte snapshot";
    EXPECT_NE(loaded.status().message().find(path), std::string::npos)
        << "diagnostic does not name the file: "
        << loaded.status().message();
  }
}

TEST_F(PreparedSnapshotRejection, CorruptedBytesFailEitherParseOrDigest) {
  const std::string path = PathFor("corrupted.snapshot");
  // Flip one byte at several offsets: whatever still parses must be caught
  // by the recomputed-digest check, never silently executed.
  for (size_t offset : {bytes_.size() / 4, bytes_.size() / 2,
                        (3 * bytes_.size()) / 4}) {
    std::string corrupted = bytes_;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x5a);
    WriteFileBytes(path, corrupted);
    Result<PreparedHandle> loaded = LoadPreparedSnapshot(path, 1);
    ASSERT_FALSE(loaded.ok())
        << "accepted a snapshot with byte " << offset << " flipped";
  }
}

TEST_F(PreparedSnapshotRejection, DigestMismatchNamesBothDigests) {
  // Surgically alter the stored prepared_digest (bytes right after the
  // magic + cache-key string): the file parses fine, so the rebuilt-digest
  // comparison is the only thing standing — the diagnostic must name the
  // stored and rebuilt value.
  const size_t key_size = 8 + 8;  // magic + cache_key length field
  uint64_t cache_key_size = 0;
  std::memcpy(&cache_key_size, bytes_.data() + 8, sizeof cache_key_size);
  const size_t digest_offset = key_size + cache_key_size + 8;  // skip fp
  ASSERT_LT(digest_offset + 8, bytes_.size());
  std::string altered = bytes_;
  altered[digest_offset] = static_cast<char>(altered[digest_offset] ^ 0xff);
  const std::string path = PathFor("digest.snapshot");
  WriteFileBytes(path, altered);

  Result<PreparedHandle> loaded = LoadPreparedSnapshot(path, 1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("digest mismatch"),
            std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("stored"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("rebuilt"), std::string::npos);
}

TEST_F(PreparedSnapshotRejection, FutureFormatVersionIsRejectedByName) {
  std::string bumped = bytes_;
  bumped[6] = '9';
  bumped[7] = '9';  // "GSMBPS01" -> "GSMBPS99"
  const std::string path = PathFor("version.snapshot");
  WriteFileBytes(path, bumped);

  for (bool load : {false, true}) {
    Status status = load ? LoadPreparedSnapshot(path, 1).status()
                         : ReadPreparedSnapshotInfo(path).status();
    ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("unsupported format version"),
              std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("GSMBPS99"), std::string::npos);
  }
}

TEST_F(PreparedSnapshotRejection, NonSnapshotFilesAreRejectedAsSuch) {
  const std::string path = PathFor("not_a.snapshot");
  WriteFileBytes(path, "{\"version\": 2, \"this is\": \"a job spec\"}");
  Result<PreparedHandle> loaded = LoadPreparedSnapshot(path, 1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("not a prepared snapshot"),
            std::string::npos)
      << loaded.status().message();

  Result<PreparedHandle> missing =
      LoadPreparedSnapshot(PathFor("does_not_exist.snapshot"), 1);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace gsmb
