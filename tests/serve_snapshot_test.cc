// Snapshot round-trip tests: a restored session must serve (retained set,
// queries) and evolve (further AddProfiles/Refresh) exactly like the
// original.

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/dirty_generator.h"
#include "serve/session.h"
#include "serve/serving_model.h"

namespace gsmb {
namespace {

DirtySpec TestSpec(size_t num_entities, uint64_t seed) {
  DirtySpec spec;
  spec.name = "snapshot-test";
  spec.num_entities = num_entities;
  spec.seed = seed;
  return spec;
}

const GeneratedDirty& TestData() {
  static const GeneratedDirty data =
      DirtyGenerator().Generate(TestSpec(400, 31));
  return data;
}

const ServingModel& TestModel() {
  static const ServingModel model = [] {
    const GeneratedDirty labelled =
        DirtyGenerator().Generate(TestSpec(300, 5));
    ServingModelTraining training;
    training.train_per_class = 30;
    return TrainServingModel(labelled.entities, labelled.ground_truth,
                             FeatureSet::RcnpOptimal(), training);
  }();
  return model;
}

SessionOptions TestOptions() {
  SessionOptions options;
  options.num_shards = 8;
  options.execution.num_threads = 2;
  return options;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectSameQueries(const MetaBlockingSession& a,
                       const MetaBlockingSession& b) {
  for (EntityId id : {EntityId{3}, EntityId{77}, EntityId{200}}) {
    const auto qa = a.QueryCandidates(TestData().entities[id], 8);
    const auto qb = b.QueryCandidates(TestData().entities[id], 8);
    ASSERT_EQ(qa.size(), qb.size()) << "probe " << id;
    for (size_t i = 0; i < qa.size(); ++i) {
      EXPECT_EQ(qa[i].id, qb[i].id) << "probe " << id;
      EXPECT_EQ(qa[i].probability, qb[i].probability) << "probe " << id;
    }
  }
}

TEST(ServeSnapshot, RoundTripPreservesServingState) {
  MetaBlockingSession session(TestOptions(), TestModel());
  session.AddProfiles(TestData().entities.profiles());
  session.Refresh();

  const std::string path = TempPath("session_roundtrip.snap");
  session.Save(path);
  MetaBlockingSession restored = MetaBlockingSession::Load(path);
  std::remove(path.c_str());

  EXPECT_EQ(restored.profiles().size(), session.profiles().size());
  EXPECT_EQ(restored.DirtyShardCount(), 0u);
  EXPECT_EQ(restored.RetainedPairs(), session.RetainedPairs());
  EXPECT_EQ(restored.options().pruning, session.options().pruning);
  EXPECT_EQ(restored.model().weights, session.model().weights);
  ExpectSameQueries(session, restored);
}

TEST(ServeSnapshot, MidStreamSnapshotKeepsDirtyMarksAndEquivalence) {
  const auto& profiles = TestData().entities.profiles();
  const size_t n = profiles.size();

  // Snapshot with ingested-but-unrefreshed profiles: dirty marks must
  // survive, and finishing the stream after a restore must land on the
  // same retained set as a cold one-shot build.
  MetaBlockingSession session(TestOptions(), TestModel());
  session.AddProfiles({profiles.begin(), profiles.begin() + n / 2});
  session.Refresh();
  session.AddProfiles({profiles.begin() + n / 2,
                       profiles.begin() + 2 * n / 3});
  const size_t dirty_at_save = session.DirtyShardCount();
  ASSERT_GT(dirty_at_save, 0u);

  const std::string path = TempPath("session_midstream.snap");
  session.Save(path);
  MetaBlockingSession restored = MetaBlockingSession::Load(path);
  std::remove(path.c_str());
  EXPECT_EQ(restored.DirtyShardCount(), dirty_at_save);

  restored.AddProfiles({profiles.begin() + 2 * n / 3, profiles.end()});
  restored.Refresh();

  MetaBlockingSession cold(TestOptions(), TestModel());
  cold.AddProfiles(profiles);
  cold.Refresh();
  EXPECT_EQ(restored.RetainedPairs(), cold.RetainedPairs());
}

TEST(ServeSnapshot, MissingFileThrows) {
  EXPECT_THROW(MetaBlockingSession::Load(TempPath("does_not_exist.snap")),
               std::runtime_error);
}

TEST(ServeSnapshot, RejectsForeignAndTruncatedFiles) {
  const std::string foreign = TempPath("foreign.snap");
  {
    std::ofstream out(foreign, std::ios::binary);
    out << "this is not a session snapshot at all";
  }
  EXPECT_THROW(MetaBlockingSession::Load(foreign), std::runtime_error);
  std::remove(foreign.c_str());

  MetaBlockingSession session(TestOptions(), TestModel());
  session.AddProfiles(
      {TestData().entities.profiles().begin(),
       TestData().entities.profiles().begin() + 50});
  session.Refresh();
  const std::string path = TempPath("truncated.snap");
  session.Save(path);
  // Chop the file roughly in half: Load must fail cleanly, not crash.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(MetaBlockingSession::Load(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gsmb
