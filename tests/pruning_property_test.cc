// Property tests over random pruning graphs: invariants the paper's
// algorithm taxonomy implies, checked for every algorithm and many seeds.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/pruning.h"
#include "test_support.h"

namespace gsmb {
namespace {

class PruningSweep : public ::testing::TestWithParam<uint64_t> {
 protected:
  testing::PruningFixture fixture_ =
      testing::RandomPruningGraph(60, 0.25, GetParam());
};

TEST_P(PruningSweep, RetainedIndicesSortedUniqueAndInRange) {
  for (PruningKind kind : AllPruningKinds()) {
    auto retained = MakePruningAlgorithm(kind)->Prune(
        fixture_.pairs, fixture_.probs, fixture_.context);
    EXPECT_TRUE(std::is_sorted(retained.begin(), retained.end()))
        << PruningKindName(kind);
    std::set<uint32_t> unique(retained.begin(), retained.end());
    EXPECT_EQ(unique.size(), retained.size()) << PruningKindName(kind);
    for (uint32_t idx : retained) {
      EXPECT_LT(idx, fixture_.pairs.size()) << PruningKindName(kind);
    }
  }
}

TEST_P(PruningSweep, AllRetainedAreValid) {
  for (PruningKind kind : AllPruningKinds()) {
    auto retained = MakePruningAlgorithm(kind)->Prune(
        fixture_.pairs, fixture_.probs, fixture_.context);
    for (uint32_t idx : retained) {
      EXPECT_GE(fixture_.probs[idx], fixture_.context.validity_threshold)
          << PruningKindName(kind);
    }
  }
}

TEST_P(PruningSweep, EveryAlgorithmIsSubsetOfBCl) {
  auto bcl = MakePruningAlgorithm(PruningKind::kBCl)
                 ->Prune(fixture_.pairs, fixture_.probs, fixture_.context);
  std::set<uint32_t> bcl_set(bcl.begin(), bcl.end());
  for (PruningKind kind : AllPruningKinds()) {
    auto retained = MakePruningAlgorithm(kind)->Prune(
        fixture_.pairs, fixture_.probs, fixture_.context);
    for (uint32_t idx : retained) {
      EXPECT_TRUE(bcl_set.count(idx)) << PruningKindName(kind);
    }
  }
}

TEST_P(PruningSweep, ReciprocalVariantsAreSubsets) {
  auto wnp = MakePruningAlgorithm(PruningKind::kWnp)
                 ->Prune(fixture_.pairs, fixture_.probs, fixture_.context);
  auto rwnp = MakePruningAlgorithm(PruningKind::kRwnp)
                  ->Prune(fixture_.pairs, fixture_.probs, fixture_.context);
  auto cnp = MakePruningAlgorithm(PruningKind::kCnp)
                 ->Prune(fixture_.pairs, fixture_.probs, fixture_.context);
  auto rcnp = MakePruningAlgorithm(PruningKind::kRcnp)
                  ->Prune(fixture_.pairs, fixture_.probs, fixture_.context);
  EXPECT_TRUE(std::includes(wnp.begin(), wnp.end(), rwnp.begin(), rwnp.end()));
  EXPECT_TRUE(std::includes(cnp.begin(), cnp.end(), rcnp.begin(), rcnp.end()));
}

TEST_P(PruningSweep, CepRespectsBudget) {
  auto cep = MakePruningAlgorithm(PruningKind::kCep)
                 ->Prune(fixture_.pairs, fixture_.probs, fixture_.context);
  EXPECT_LE(cep.size(),
            static_cast<size_t>(std::floor(fixture_.context.cep_k)));
}

TEST_P(PruningSweep, CepKeepsTheHeaviestValidPairs) {
  auto cep = MakePruningAlgorithm(PruningKind::kCep)
                 ->Prune(fixture_.pairs, fixture_.probs, fixture_.context);
  if (cep.empty()) return;
  double min_kept = 1.0;
  for (uint32_t idx : cep) min_kept = std::min(min_kept, fixture_.probs[idx]);
  std::set<uint32_t> kept(cep.begin(), cep.end());
  // No discarded valid pair may be strictly heavier than the lightest kept.
  for (size_t i = 0; i < fixture_.pairs.size(); ++i) {
    if (kept.count(static_cast<uint32_t>(i))) continue;
    if (fixture_.probs[i] >= fixture_.context.validity_threshold) {
      EXPECT_LE(fixture_.probs[i], min_kept + 1e-12);
    }
  }
}

TEST_P(PruningSweep, WepKeepsOnlyAboveAverage) {
  auto wep = MakePruningAlgorithm(PruningKind::kWep)
                 ->Prune(fixture_.pairs, fixture_.probs, fixture_.context);
  double sum = 0.0;
  size_t count = 0;
  for (double p : fixture_.probs) {
    if (p >= fixture_.context.validity_threshold) {
      sum += p;
      ++count;
    }
  }
  if (count == 0) {
    EXPECT_TRUE(wep.empty());
    return;
  }
  const double mean = sum / static_cast<double>(count);
  for (uint32_t idx : wep) EXPECT_GE(fixture_.probs[idx], mean - 1e-12);
}

TEST_P(PruningSweep, UnsupervisedThresholdDisablesValidity) {
  PruningContext ctx = fixture_.context;
  ctx.validity_threshold = 0.0;
  auto bcl = MakePruningAlgorithm(PruningKind::kBCl)
                 ->Prune(fixture_.pairs, fixture_.probs, ctx);
  EXPECT_EQ(bcl.size(), fixture_.pairs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningSweep,
                         ::testing::Values(3, 9, 27, 81, 243, 729));

}  // namespace
}  // namespace gsmb
