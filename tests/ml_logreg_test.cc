#include "ml/logistic_regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace gsmb {
namespace {

// 1-D separable data around a threshold.
void MakeSeparable(size_t n, Matrix* x, std::vector<int>* y) {
  *x = Matrix(n, 1);
  y->resize(n);
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) {
    bool positive = i % 2 == 0;
    x->At(i, 0) = positive ? 2.0 + rng.NextDouble() : -2.0 - rng.NextDouble();
    (*y)[i] = positive ? 1 : 0;
  }
}

TEST(LogReg, SigmoidBasics) {
  EXPECT_DOUBLE_EQ(LogisticRegression::Sigmoid(0.0), 0.5);
  EXPECT_NEAR(LogisticRegression::Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(LogisticRegression::Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(LogisticRegression::Sigmoid(2.0) +
                  LogisticRegression::Sigmoid(-2.0),
              1.0, 1e-12);
}

TEST(LogReg, SigmoidNoOverflow) {
  EXPECT_DOUBLE_EQ(LogisticRegression::Sigmoid(1e6), 1.0);
  EXPECT_DOUBLE_EQ(LogisticRegression::Sigmoid(-1e6), 0.0);
}

TEST(LogReg, SeparatesLinearlySeparableData) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable(40, &x, &y);
  LogisticRegression model;
  model.Fit(x, y);
  for (size_t i = 0; i < x.rows(); ++i) {
    double p = model.PredictProbability(x.Row(i));
    EXPECT_EQ(p >= 0.5 ? 1 : 0, y[i]) << "row " << i;
  }
}

TEST(LogReg, ProbabilitiesInUnitInterval) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable(40, &x, &y);
  LogisticRegression model;
  model.Fit(x, y);
  double extreme1[1] = {1e6};
  double extreme2[1] = {-1e6};
  EXPECT_LE(model.PredictProbability(extreme1), 1.0);
  EXPECT_GE(model.PredictProbability(extreme2), 0.0);
}

TEST(LogReg, MonotoneInInformativeFeature) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable(40, &x, &y);
  LogisticRegression model;
  model.Fit(x, y);
  double prev = -1.0;
  for (double v = -5.0; v <= 5.0; v += 0.5) {
    double row[1] = {v};
    double p = model.PredictProbability(row);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(LogReg, DeterministicAcrossFits) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable(30, &x, &y);
  LogisticRegression a;
  LogisticRegression b;
  a.Fit(x, y);
  b.Fit(x, y);
  double probe[1] = {0.7};
  EXPECT_DOUBLE_EQ(a.PredictProbability(probe), b.PredictProbability(probe));
}

TEST(LogReg, CoefficientsMatchPredictions) {
  Matrix x(6, 2);
  std::vector<int> y = {0, 0, 0, 1, 1, 1};
  Rng rng(3);
  for (size_t i = 0; i < 6; ++i) {
    x.At(i, 0) = (y[i] ? 1.5 : -1.5) + 0.1 * rng.NextDouble();
    x.At(i, 1) = rng.NextDouble();
  }
  LogisticRegression model;
  model.Fit(x, y);
  std::vector<double> coef = model.CoefficientsWithIntercept();
  ASSERT_EQ(coef.size(), 3u);
  // Reconstruct the probability from raw-space coefficients.
  double probe[2] = {0.4, 0.3};
  double z = coef[2] + coef[0] * probe[0] + coef[1] * probe[1];
  EXPECT_NEAR(LogisticRegression::Sigmoid(z),
              model.PredictProbability(probe), 1e-9);
}

TEST(LogReg, SingleClassTrainingDoesNotCrash) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x.At(i, 0) = static_cast<double>(i);
  std::vector<int> y = {1, 1, 1, 1};
  LogisticRegression model;
  model.Fit(x, y);
  double probe[1] = {2.0};
  double p = model.PredictProbability(probe);
  EXPECT_GT(p, 0.5);  // everything looks positive
}

TEST(LogReg, ThrowsOnEmptyOrMismatched) {
  LogisticRegression model;
  Matrix empty;
  std::vector<int> none;
  EXPECT_THROW(model.Fit(empty, none), std::invalid_argument);
  Matrix x(2, 1);
  std::vector<int> bad = {1};
  EXPECT_THROW(model.Fit(x, bad), std::invalid_argument);
}

TEST(LogReg, ConvergesQuickly) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable(50, &x, &y);
  LogisticRegression model;
  model.Fit(x, y);
  EXPECT_GT(model.last_iterations(), 0u);
  EXPECT_LE(model.last_iterations(), 100u);
}

TEST(LogReg, HandlesConstantFeature) {
  Matrix x(10, 2);
  std::vector<int> y(10);
  for (size_t i = 0; i < 10; ++i) {
    x.At(i, 0) = i < 5 ? -1.0 : 1.0;
    x.At(i, 1) = 3.0;  // constant column
    y[i] = i < 5 ? 0 : 1;
  }
  LogisticRegression model;
  EXPECT_NO_THROW(model.Fit(x, y));
  double probe[2] = {1.0, 3.0};
  EXPECT_GT(model.PredictProbability(probe), 0.5);
}

TEST(LogReg, NoisyLabelsStayCalibrated) {
  // With 20% label noise, probabilities should not saturate at 0/1 for
  // borderline points.
  Matrix x(200, 1);
  std::vector<int> y(200);
  Rng rng(11);
  for (size_t i = 0; i < 200; ++i) {
    double v = rng.NextDouble(-1.0, 1.0);
    x.At(i, 0) = v;
    bool label = v > 0.0;
    if (rng.NextBool(0.2)) label = !label;
    y[i] = label ? 1 : 0;
  }
  LogisticRegression model;
  model.Fit(x, y);
  double border[1] = {0.0};
  double p = model.PredictProbability(border);
  EXPECT_GT(p, 0.2);
  EXPECT_LT(p, 0.8);
}

}  // namespace
}  // namespace gsmb
