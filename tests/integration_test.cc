// Integration tests: full pipelines over generated datasets, cross-module
// consistency, and the CSV round-trip into the pipeline.

#include <gtest/gtest.h>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "blocking/qgram_blocking.h"
#include "core/unsupervised.h"
#include "datasets/clean_clean_generator.h"
#include "datasets/dirty_generator.h"
#include "datasets/io.h"
#include "datasets/specs.h"
#include "eval/experiment.h"
#include "test_support.h"

namespace gsmb {
namespace {

TEST(Integration, CleanCleanSpecsEndToEnd) {
  // A noisy spec and a clean spec, both scaled down hard for test speed.
  for (const char* name : {"AbtBuy", "DblpAcm"}) {
    CleanCleanSpec spec = CleanCleanSpecByName(name, 0.1);
    GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
    PreparedDataset prep = PrepareCleanClean(
        spec.name, data.e1, data.e2, std::move(data.ground_truth));
    ASSERT_GT(prep.pairs.size(), 0u) << name;

    MetaBlockingConfig config;
    config.features = FeatureSet::BlastOptimal();
    config.pruning = PruningKind::kBlast;
    config.train_per_class = 25;
    ExperimentResult result = RunRepeatedExperiment(prep, config, 2);
    EXPECT_GT(result.aggregate.recall, 0.3) << name;
    EXPECT_GT(result.aggregate.precision, prep.blocking_quality.precision)
        << name;
  }
}

TEST(Integration, DirtyEndToEnd) {
  const PreparedDataset& prep = testing::SmallDirtyDataset();
  MetaBlockingConfig config;
  config.features = FeatureSet::RcnpOptimal();
  config.pruning = PruningKind::kRcnp;
  config.train_per_class = 25;
  MetaBlockingResult result = RunMetaBlocking(prep, config);
  EXPECT_GT(result.metrics.recall, 0.3);
  EXPECT_GT(result.metrics.precision, prep.blocking_quality.precision);
}

TEST(Integration, CsvRoundTripFeedsPipeline) {
  CleanCleanSpec spec = CleanCleanSpecByName("DblpAcm", 0.05);
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);

  std::string dir = ::testing::TempDir();
  SaveCollectionCsv(data.e1, dir + "/it_e1.csv");
  SaveCollectionCsv(data.e2, dir + "/it_e2.csv");
  SaveGroundTruthCsv(data.ground_truth, data.e1, data.e2, dir + "/it_gt.csv");

  EntityCollection e1 = LoadCollectionCsv(dir + "/it_e1.csv");
  EntityCollection e2 = LoadCollectionCsv(dir + "/it_e2.csv");
  GroundTruth gt = LoadGroundTruthCsv(dir + "/it_gt.csv", e1, e2, false);

  PreparedDataset from_disk = PrepareCleanClean("disk", e1, e2, gt);
  PreparedDataset from_memory = PrepareCleanClean(
      "mem", data.e1, data.e2, std::move(data.ground_truth));
  EXPECT_EQ(from_disk.pairs.size(), from_memory.pairs.size());
  EXPECT_DOUBLE_EQ(from_disk.blocking_quality.recall,
                   from_memory.blocking_quality.recall);
}

TEST(Integration, SupervisedBeatsUnsupervisedOnPrecisionAtSimilarRecall) {
  const PreparedDataset& prep = testing::MediumDataset();

  // Unsupervised WNP with the classic JS weights.
  PruningContext ctx = PruningContext::FromIndex(*prep.index, prep.stats);
  auto unsup = UnsupervisedMetaBlocking(*prep.index, prep.pairs,
                                        EdgeWeightScheme::kJs,
                                        PruningKind::kWnp, ctx);
  EffectivenessMetrics unsup_metrics =
      EvaluateRetained(unsup, prep.is_positive, prep.ground_truth.size());

  MetaBlockingConfig config;
  config.pruning = PruningKind::kWnp;
  config.train_per_class = 25;
  ExperimentResult sup = RunRepeatedExperiment(prep, config, 3);

  // The paper's core motivation: supervised weighting dominates a single
  // unsupervised scheme.
  EXPECT_GT(sup.aggregate.f1, unsup_metrics.f1);
}

TEST(Integration, TrainingSizeFiftySufficesOnCleanData) {
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  config.features = FeatureSet::BlastOptimal();
  config.pruning = PruningKind::kBlast;
  config.train_per_class = 25;  // 50 labelled instances total
  ExperimentResult result = RunRepeatedExperiment(prep, config, 3);
  EXPECT_GT(result.aggregate.recall, 0.8);
  EXPECT_GT(result.aggregate.f1, 0.2);
}

TEST(Integration, QGramBlocksFeedPipelineToo) {
  CleanCleanSpec spec = CleanCleanSpecByName("AbtBuy", 0.06);
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
  BlockCollection raw = QGramBlocking(4).Build(data.e1, data.e2);
  BlockCollection processed =
      BlockFiltering().Apply(BlockPurging().Apply(raw));
  PreparedDataset prep = PrepareFromBlocks("qgrams", std::move(processed),
                                           std::move(data.ground_truth));
  EXPECT_GT(prep.pairs.size(), 0u);
  MetaBlockingConfig config;
  config.train_per_class = 15;
  MetaBlockingResult result = RunMetaBlocking(prep, config);
  EXPECT_GT(result.metrics.retained, 0u);
}

}  // namespace
}  // namespace gsmb
