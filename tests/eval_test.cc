#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/histogram.h"
#include "eval/metrics.h"
#include "test_support.h"

namespace gsmb {
namespace {

MetaBlockingResult FakeResult(double recall, double precision, double rt) {
  MetaBlockingResult r;
  r.metrics.recall = recall;
  r.metrics.precision = precision;
  r.metrics.f1 = (recall + precision) > 0
                     ? 2 * recall * precision / (recall + precision)
                     : 0.0;
  r.metrics.retained = 100;
  r.total_seconds = rt;
  return r;
}

// Division edges: every count combination must produce finite metrics —
// zero retained pairs means PQ (precision) and F1 are 0 by definition,
// never 0/0 = NaN. Run reports serialise these values, and NaN is not
// valid JSON.
TEST(Metrics, ZeroRetainedIsZeroNotNaN) {
  EffectivenessMetrics m = MetricsFromCounts(0, 0, 100);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
  EXPECT_TRUE(std::isfinite(m.precision) && std::isfinite(m.f1));
}

TEST(Metrics, ZeroGroundTruthIsZeroNotNaN) {
  EffectivenessMetrics m = MetricsFromCounts(0, 50, 0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
  EXPECT_TRUE(std::isfinite(m.recall));
}

TEST(Metrics, AllCountsZeroIsZeroNotNaN) {
  EffectivenessMetrics m = MetricsFromCounts(0, 0, 0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(Metrics, PerfectCounts) {
  EffectivenessMetrics m = MetricsFromCounts(10, 10, 10);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(Metrics, EmptyAccumulatorSummaryIsFinite) {
  MetricsAccumulator acc;
  AggregateMetrics agg = acc.Summary();
  EXPECT_EQ(agg.runs, 0u);
  EXPECT_DOUBLE_EQ(agg.recall, 0.0);
  EXPECT_DOUBLE_EQ(agg.precision, 0.0);
  EXPECT_DOUBLE_EQ(agg.f1, 0.0);
  EXPECT_DOUBLE_EQ(agg.recall_std, 0.0);
  EXPECT_TRUE(std::isfinite(agg.rt_seconds));
}

TEST(Metrics, AccumulatorMeans) {
  MetricsAccumulator acc;
  acc.Add(FakeResult(0.8, 0.2, 1.0));
  acc.Add(FakeResult(0.6, 0.4, 3.0));
  AggregateMetrics agg = acc.Summary();
  EXPECT_EQ(agg.runs, 2u);
  EXPECT_DOUBLE_EQ(agg.recall, 0.7);
  EXPECT_DOUBLE_EQ(agg.precision, 0.3);
  EXPECT_DOUBLE_EQ(agg.rt_seconds, 2.0);
  EXPECT_DOUBLE_EQ(agg.retained, 100.0);
  EXPECT_NEAR(agg.recall_std, 0.1, 1e-12);
}

TEST(Metrics, SingleRunHasZeroStd) {
  MetricsAccumulator acc;
  acc.Add(FakeResult(0.5, 0.5, 1.0));
  EXPECT_DOUBLE_EQ(acc.Summary().recall_std, 0.0);
}

TEST(Metrics, MacroAverage) {
  AggregateMetrics a;
  a.recall = 0.9;
  a.precision = 0.1;
  a.runs = 3;
  AggregateMetrics b;
  b.recall = 0.7;
  b.precision = 0.3;
  b.runs = 3;
  AggregateMetrics avg = MacroAverage({a, b});
  EXPECT_DOUBLE_EQ(avg.recall, 0.8);
  EXPECT_DOUBLE_EQ(avg.precision, 0.2);
  EXPECT_EQ(avg.runs, 6u);
}

TEST(Metrics, MacroAverageEmpty) {
  AggregateMetrics avg = MacroAverage({});
  EXPECT_DOUBLE_EQ(avg.recall, 0.0);
}

TEST(Experiment, RepeatedRunsAggregated) {
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  config.train_per_class = 25;
  ExperimentResult result = RunRepeatedExperiment(prep, config, 3);
  EXPECT_EQ(result.aggregate.runs, 3u);
  EXPECT_EQ(result.runs.size(), 3u);
  EXPECT_GT(result.feature_seconds, 0.0);
  EXPECT_GT(result.aggregate.f1, 0.0);
  // Feature cost is charged to each run's RT.
  for (const MetaBlockingResult& run : result.runs) {
    EXPECT_GE(run.total_seconds, result.feature_seconds);
  }
}

TEST(Experiment, AcrossDatasets) {
  // Use the same dataset twice: the API contract (order, size) is what is
  // under test here.
  std::vector<AggregateMetrics> per_dataset;
  {
    const PreparedDataset& prep = testing::MediumDataset();
    std::vector<PreparedDataset> datasets;
    // PreparedDataset is move-only; rebuild two small ones.
    (void)prep;
    MetaBlockingConfig config;
    config.train_per_class = 10;
    per_dataset = RunAcrossDatasets({}, config, 2);
    EXPECT_TRUE(per_dataset.empty());
  }
}

TEST(Histogram, BinsAndNormalises) {
  std::vector<double> values = {0.05, 0.55, 0.65, 0.95};
  std::vector<uint8_t> labels = {0, 1, 1, 1};
  ClassHistogram h = ComputeClassHistogram(values, labels, 10, 0.0, 1.0);
  EXPECT_EQ(h.positive_total, 3u);
  EXPECT_EQ(h.negative_total, 1u);
  EXPECT_NEAR(h.negative[0], 1.0, 1e-12);
  EXPECT_NEAR(h.positive[5] + h.positive[6] + h.positive[9], 1.0, 1e-12);
}

TEST(Histogram, ClampsOutOfRange) {
  std::vector<double> values = {-0.5, 1.5};
  std::vector<uint8_t> labels = {0, 1};
  ClassHistogram h = ComputeClassHistogram(values, labels, 4, 0.0, 1.0);
  EXPECT_NEAR(h.negative[0], 1.0, 1e-12);
  EXPECT_NEAR(h.positive[3], 1.0, 1e-12);
}

TEST(Histogram, RenderProducesRows) {
  std::vector<double> values = {0.2, 0.7, 0.8};
  std::vector<uint8_t> labels = {0, 1, 1};
  ClassHistogram h = ComputeClassHistogram(values, labels, 5, 0.0, 1.0);
  std::string art = RenderClassHistogram(h);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 5);
  EXPECT_NE(art.find("dup"), std::string::npos);
}

TEST(Histogram, RenderCountHistogram) {
  std::vector<size_t> counts = {10, 5, 1};
  std::string art = RenderCountHistogram(counts, 16);
  EXPECT_NE(art.find("62.50%"), std::string::npos);
  EXPECT_NE(art.find("#"), std::string::npos);
}

TEST(Histogram, RenderCountHistogramTruncatesTail) {
  std::vector<size_t> counts(40, 1);
  std::string art = RenderCountHistogram(counts, 40, 20, 10);
  EXPECT_NE(art.find(">"), std::string::npos);
}

}  // namespace
}  // namespace gsmb
