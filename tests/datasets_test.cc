#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

#include "datasets/clean_clean_generator.h"
#include "datasets/dirty_generator.h"
#include "datasets/io.h"
#include "datasets/specs.h"
#include "datasets/vocabulary.h"
#include "util/csv.h"
#include "util/random.h"

namespace gsmb {
namespace {

TEST(Vocabulary, CommonTokensUniqueAndNonEmpty) {
  Vocabulary v(500, 1.0, 1);
  std::set<std::string> seen;
  for (size_t i = 0; i < v.common_pool_size(); ++i) {
    const std::string& t = v.CommonToken(i);
    EXPECT_FALSE(t.empty());
    seen.insert(t);
  }
  EXPECT_EQ(seen.size(), 500u);
}

TEST(Vocabulary, DistinctTokensNeverCollide) {
  Vocabulary v(10, 1.0, 2);
  std::set<std::string> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(v.DistinctToken(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Vocabulary, ZipfHeadDominates) {
  Vocabulary v(200, 1.0, 3);
  Rng rng(4);
  std::vector<int> counts(200, 0);
  for (int i = 0; i < 10000; ++i) ++counts[v.SampleCommonRank(&rng)];
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[0], counts[199]);
}

TEST(Vocabulary, MidRankSamplerStaysInRange) {
  Vocabulary v(1000, 1.0, 5);
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    size_t r = v.SampleMidRank(&rng, 0.02, 0.10);
    EXPECT_GE(r, 20u);
    EXPECT_LT(r, 100u);
  }
}

TEST(CleanCleanGenerator, SizesMatchSpec) {
  CleanCleanSpec spec;
  spec.name = "t";
  spec.e1_size = 120;
  spec.e2_size = 150;
  spec.num_duplicates = 80;
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
  EXPECT_EQ(data.e1.size(), 120u);
  EXPECT_EQ(data.e2.size(), 150u);
  EXPECT_EQ(data.ground_truth.size(), 80u);
  EXPECT_FALSE(data.ground_truth.dirty());
}

TEST(CleanCleanGenerator, CollectionsAreClean) {
  // Clean = duplicate-free: external ids unique within each source.
  CleanCleanSpec spec;
  spec.name = "t";
  spec.e1_size = 100;
  spec.e2_size = 100;
  spec.num_duplicates = 50;
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
  for (const EntityCollection* c : {&data.e1, &data.e2}) {
    std::set<std::string> ids;
    for (const EntityProfile& p : c->profiles()) {
      EXPECT_TRUE(ids.insert(p.external_id()).second);
      EXPECT_FALSE(p.DistinctValueTokens().empty());
    }
  }
}

TEST(CleanCleanGenerator, DeterministicForSeed) {
  CleanCleanSpec spec;
  spec.name = "t";
  spec.e1_size = 80;
  spec.e2_size = 80;
  spec.num_duplicates = 40;
  spec.seed = 77;
  GeneratedCleanClean a = CleanCleanGenerator().Generate(spec);
  GeneratedCleanClean b = CleanCleanGenerator().Generate(spec);
  ASSERT_EQ(a.e1.size(), b.e1.size());
  for (EntityId i = 0; i < a.e1.size(); ++i) {
    EXPECT_EQ(a.e1[i], b.e1[i]);
  }
}

TEST(CleanCleanGenerator, DifferentSeedsDiffer) {
  CleanCleanSpec spec;
  spec.name = "t";
  spec.e1_size = 80;
  spec.e2_size = 80;
  spec.num_duplicates = 40;
  spec.seed = 1;
  GeneratedCleanClean a = CleanCleanGenerator().Generate(spec);
  spec.seed = 2;
  GeneratedCleanClean b = CleanCleanGenerator().Generate(spec);
  bool any_difference = false;
  for (EntityId i = 0; i < a.e1.size() && !any_difference; ++i) {
    any_difference = !(a.e1[i] == b.e1[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(CleanCleanGenerator, RejectsImpossibleSpecs) {
  CleanCleanSpec spec;
  spec.e1_size = 10;
  spec.e2_size = 10;
  spec.num_duplicates = 11;
  EXPECT_THROW(CleanCleanGenerator().Generate(spec), std::invalid_argument);
}

TEST(DirtyGenerator, SizeAndClusterGroundTruth) {
  DirtySpec spec;
  spec.name = "d";
  spec.num_entities = 500;
  GeneratedDirty data = DirtyGenerator().Generate(spec);
  EXPECT_EQ(data.entities.size(), 500u);
  EXPECT_TRUE(data.ground_truth.dirty());
  // Cluster mixture means duplicate pairs are a sizeable multiple of n.
  EXPECT_GT(data.ground_truth.size(), 100u);
  // All pairs reference valid ids.
  for (const MatchPair& m : data.ground_truth.pairs()) {
    EXPECT_LT(m.left, 500u);
    EXPECT_LT(m.right, 500u);
    EXPECT_LT(m.left, m.right);
  }
}

TEST(DirtyGenerator, Deterministic) {
  DirtySpec spec;
  spec.name = "d";
  spec.num_entities = 200;
  spec.seed = 5;
  GeneratedDirty a = DirtyGenerator().Generate(spec);
  GeneratedDirty b = DirtyGenerator().Generate(spec);
  EXPECT_EQ(a.ground_truth.size(), b.ground_truth.size());
  for (EntityId i = 0; i < a.entities.size(); ++i) {
    EXPECT_EQ(a.entities[i], b.entities[i]);
  }
}

TEST(Specs, PaperListHasNineDatasets) {
  auto specs = PaperCleanCleanSpecs();
  ASSERT_EQ(specs.size(), 9u);
  EXPECT_EQ(specs[0].name, "AbtBuy");
  EXPECT_EQ(specs[8].name, "WalmartAmazon");
}

TEST(Specs, ScalingAppliesMinimums) {
  CleanCleanSpec spec = CleanCleanSpecByName("AbtBuy", 0.001);
  EXPECT_GE(spec.e1_size, 60u);
  EXPECT_GE(spec.num_duplicates, 40u);
  EXPECT_LE(spec.num_duplicates, spec.e1_size);
}

TEST(Specs, ByNameThrowsOnUnknown) {
  EXPECT_THROW(CleanCleanSpecByName("NoSuchDataset"), std::invalid_argument);
}

TEST(Specs, DirtyListScales) {
  auto specs = PaperDirtySpecs(0.1);
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "D10K");
  EXPECT_EQ(specs[0].num_entities, 1000u);
  EXPECT_EQ(specs[4].num_entities, 30000u);
}

TEST(Specs, ScaleFromEnvParsesAndFallsBack) {
  ::setenv("GSMB_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(0.125), 0.5);
  ::setenv("GSMB_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(0.125), 0.125);
  ::unsetenv("GSMB_SCALE");
  EXPECT_DOUBLE_EQ(ScaleFromEnv(0.125), 0.125);
}

TEST(Specs, SeedsFromEnv) {
  ::setenv("GSMB_SEEDS", "7", 1);
  EXPECT_EQ(SeedsFromEnv(3), 7u);
  ::unsetenv("GSMB_SEEDS");
  EXPECT_EQ(SeedsFromEnv(3), 3u);
}

TEST(DatasetIo, CollectionRoundTrip) {
  CleanCleanSpec spec;
  spec.name = "io";
  spec.e1_size = 60;
  spec.e2_size = 60;
  spec.num_duplicates = 40;
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);

  std::string dir = ::testing::TempDir();
  SaveCollectionCsv(data.e1, dir + "/e1.csv");
  EntityCollection loaded = LoadCollectionCsv(dir + "/e1.csv", "loaded");
  ASSERT_EQ(loaded.size(), data.e1.size());
  for (EntityId i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].external_id(), data.e1[i].external_id());
    EXPECT_EQ(loaded[i].attributes(), data.e1[i].attributes());
  }
}

TEST(DatasetIo, GroundTruthRoundTrip) {
  CleanCleanSpec spec;
  spec.name = "io";
  spec.e1_size = 60;
  spec.e2_size = 60;
  spec.num_duplicates = 40;
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);

  std::string dir = ::testing::TempDir();
  SaveGroundTruthCsv(data.ground_truth, data.e1, data.e2, dir + "/gt.csv");
  GroundTruth loaded =
      LoadGroundTruthCsv(dir + "/gt.csv", data.e1, data.e2, false);
  EXPECT_EQ(loaded.size(), data.ground_truth.size());
  for (const MatchPair& m : data.ground_truth.pairs()) {
    EXPECT_TRUE(loaded.IsMatch(m.left, m.right));
  }
}

TEST(DatasetIo, UnknownIdInGroundTruthThrows) {
  EntityCollection c1;
  c1.Add(EntityProfile("a"));
  EntityCollection c2;
  c2.Add(EntityProfile("b"));
  std::string path = ::testing::TempDir() + "/bad_gt.csv";
  WriteCsvFile(path, {{"left_id", "right_id"}, {"a", "nope"}});
  EXPECT_THROW(LoadGroundTruthCsv(path, c1, c2, false), std::runtime_error);
}

}  // namespace
}  // namespace gsmb
