#include "ml/sampler.h"

#include <set>

#include <gtest/gtest.h>

namespace gsmb {
namespace {

std::vector<uint8_t> MakeLabels(size_t n, size_t positives) {
  std::vector<uint8_t> labels(n, 0);
  for (size_t i = 0; i < positives; ++i) labels[i * (n / positives)] = 1;
  return labels;
}

TEST(Sampler, BalancedSizes) {
  std::vector<uint8_t> labels = MakeLabels(1000, 100);
  Rng rng(1);
  TrainingSet ts = SampleBalanced(labels, 25, &rng);
  EXPECT_EQ(ts.size(), 50u);
  size_t positives = 0;
  for (int l : ts.labels) positives += static_cast<size_t>(l);
  EXPECT_EQ(positives, 25u);
}

TEST(Sampler, LabelsMatchSource) {
  std::vector<uint8_t> labels = MakeLabels(500, 50);
  Rng rng(2);
  TrainingSet ts = SampleBalanced(labels, 10, &rng);
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(static_cast<int>(labels[ts.row_indices[i]]), ts.labels[i]);
  }
}

TEST(Sampler, IndicesDistinct) {
  std::vector<uint8_t> labels = MakeLabels(200, 40);
  Rng rng(3);
  TrainingSet ts = SampleBalanced(labels, 20, &rng);
  std::set<size_t> distinct(ts.row_indices.begin(), ts.row_indices.end());
  EXPECT_EQ(distinct.size(), ts.size());
}

TEST(Sampler, TakesAllWhenClassTooSmall) {
  std::vector<uint8_t> labels(100, 0);
  labels[3] = labels[7] = labels[11] = 1;  // only 3 positives
  Rng rng(4);
  TrainingSet ts = SampleBalanced(labels, 25, &rng);
  size_t positives = 0;
  for (int l : ts.labels) positives += static_cast<size_t>(l);
  EXPECT_EQ(positives, 3u);
  EXPECT_EQ(ts.size(), 3u + 25u);
}

TEST(Sampler, DeterministicGivenSeed) {
  std::vector<uint8_t> labels = MakeLabels(400, 80);
  Rng a(42);
  Rng b(42);
  TrainingSet ta = SampleBalanced(labels, 15, &a);
  TrainingSet tb = SampleBalanced(labels, 15, &b);
  EXPECT_EQ(ta.row_indices, tb.row_indices);
  EXPECT_EQ(ta.labels, tb.labels);
}

TEST(Sampler, DifferentSeedsDiffer) {
  std::vector<uint8_t> labels = MakeLabels(400, 80);
  Rng a(1);
  Rng b(2);
  EXPECT_NE(SampleBalanced(labels, 15, &a).row_indices,
            SampleBalanced(labels, 15, &b).row_indices);
}

TEST(Sampler, EmptyInput) {
  std::vector<uint8_t> labels;
  Rng rng(5);
  TrainingSet ts = SampleBalanced(labels, 25, &rng);
  EXPECT_EQ(ts.size(), 0u);
}

TEST(Sampler, FivePercentRule) {
  EXPECT_EQ(FivePercentRuleSize(1000), 50u);
  EXPECT_EQ(FivePercentRuleSize(2224), 112u);  // DblpAcm: ceil(111.2)
  EXPECT_EQ(FivePercentRuleSize(10), 1u);
  EXPECT_EQ(FivePercentRuleSize(0), 1u);  // floor of one
}

}  // namespace
}  // namespace gsmb
