#include "ml/scaler.h"

#include <gtest/gtest.h>

namespace gsmb {
namespace {

Matrix Make(const std::vector<std::vector<double>>& rows) {
  Matrix m(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

TEST(Scaler, ComputesMeanAndStd) {
  StandardScaler s;
  s.Fit(Make({{1, 10}, {3, 30}}));
  ASSERT_TRUE(s.fitted());
  EXPECT_DOUBLE_EQ(s.mean()[0], 2.0);
  EXPECT_DOUBLE_EQ(s.mean()[1], 20.0);
  EXPECT_DOUBLE_EQ(s.std()[0], 1.0);   // population std of {1,3}
  EXPECT_DOUBLE_EQ(s.std()[1], 10.0);
}

TEST(Scaler, TransformCentersAndScales) {
  StandardScaler s;
  s.Fit(Make({{1, 10}, {3, 30}}));
  Matrix t = s.Transform(Make({{1, 10}, {3, 30}, {2, 20}}));
  EXPECT_DOUBLE_EQ(t.At(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(t.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 0.0);
}

TEST(Scaler, ZeroVarianceColumnPassesThroughCentred) {
  StandardScaler s;
  s.Fit(Make({{5, 1}, {5, 2}}));
  EXPECT_DOUBLE_EQ(s.std()[0], 1.0);  // guarded
  Matrix t = s.Transform(Make({{5, 1}}));
  EXPECT_DOUBLE_EQ(t.At(0, 0), 0.0);
}

TEST(Scaler, TransformRowMatchesMatrixTransform) {
  StandardScaler s;
  s.Fit(Make({{1, 2, 3}, {4, 8, 6}, {7, 5, 9}}));
  Matrix m = Make({{2, 3, 4}});
  Matrix t = s.Transform(m);
  double row[3] = {2, 3, 4};
  s.TransformRow(row);
  for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(row[c], t.At(0, c));
}

TEST(Scaler, SingleRowFit) {
  StandardScaler s;
  s.Fit(Make({{3, 4}}));
  Matrix t = s.Transform(Make({{3, 4}}));
  EXPECT_DOUBLE_EQ(t.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 0.0);
}

}  // namespace
}  // namespace gsmb
