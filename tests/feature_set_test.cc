#include "core/feature_set.h"

#include <set>

#include <gtest/gtest.h>

namespace gsmb {
namespace {

TEST(FeatureSet, NamedSets) {
  EXPECT_EQ(FeatureSet::Paper2014().ToString(), "{CF-IBF, RACCB, JS, LCP}");
  EXPECT_EQ(FeatureSet::BlastOptimal().ToString(), "{CF-IBF, RACCB, RS, NRS}");
  EXPECT_EQ(FeatureSet::RcnpOptimal().ToString(),
            "{CF-IBF, RACCB, JS, LCP, WJS}");
  EXPECT_EQ(FeatureSet::All().CountFeatures(), 8u);
}

TEST(FeatureSet, DimensionsCountLcpTwice) {
  EXPECT_EQ(FeatureSet::Paper2014().Dimensions(), 5u);   // 4 schemes, LCP x2
  EXPECT_EQ(FeatureSet::BlastOptimal().Dimensions(), 4u);
  EXPECT_EQ(FeatureSet::RcnpOptimal().Dimensions(), 6u);
  EXPECT_EQ(FeatureSet::All().Dimensions(), 9u);
}

TEST(FeatureSet, AddRemoveContains) {
  FeatureSet s;
  EXPECT_TRUE(s.empty());
  s.Add(Feature::kJs);
  EXPECT_TRUE(s.Contains(Feature::kJs));
  EXPECT_FALSE(s.Contains(Feature::kRs));
  s.Remove(Feature::kJs);
  EXPECT_TRUE(s.empty());
}

TEST(FeatureSet, EnumerateAllHas255UniqueSets) {
  const auto& all = FeatureSet::EnumerateAll();
  EXPECT_EQ(all.size(), 255u);
  std::set<uint8_t> masks;
  for (const FeatureSet& s : all) {
    EXPECT_FALSE(s.empty());
    masks.insert(s.mask());
  }
  EXPECT_EQ(masks.size(), 255u);
}

TEST(FeatureSet, EnumerationOrderedBySizeThenMask) {
  const auto& all = FeatureSet::EnumerateAll();
  for (size_t i = 1; i < all.size(); ++i) {
    const size_t prev = all[i - 1].CountFeatures();
    const size_t cur = all[i].CountFeatures();
    EXPECT_LE(prev, cur);
    if (prev == cur) {
      EXPECT_LT(all[i - 1].mask(), all[i].mask());
    }
  }
  // Singletons first, full set last.
  EXPECT_EQ(all.front().CountFeatures(), 1u);
  EXPECT_EQ(all.back().CountFeatures(), 8u);
}

TEST(FeatureSet, IdRoundTrip) {
  const auto& all = FeatureSet::EnumerateAll();
  EXPECT_EQ(all[0].Id(), 1);
  EXPECT_EQ(all[254].Id(), 255);
  EXPECT_EQ(all[76].Id(), 77);
  EXPECT_EQ(FeatureSet().Id(), 0);  // empty set has no id
}

TEST(FeatureSet, FullMatrixColumns) {
  EXPECT_EQ(FeatureSet({Feature::kCfIbf}).FullMatrixColumns(),
            (std::vector<size_t>{0}));
  EXPECT_EQ(FeatureSet({Feature::kLcp}).FullMatrixColumns(),
            (std::vector<size_t>{3, 4}));
  EXPECT_EQ(FeatureSet::Paper2014().FullMatrixColumns(),
            (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(FeatureSet::All().FullMatrixColumns(),
            (std::vector<size_t>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(FeatureSet, MembersInCanonicalOrder) {
  FeatureSet s({Feature::kNrs, Feature::kCfIbf, Feature::kLcp});
  auto members = s.Members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], Feature::kCfIbf);
  EXPECT_EQ(members[1], Feature::kLcp);
  EXPECT_EQ(members[2], Feature::kNrs);
}

TEST(FeatureSet, MaskRoundTrip) {
  FeatureSet s = FeatureSet::RcnpOptimal();
  EXPECT_EQ(FeatureSet::FromMask(s.mask()), s);
}

TEST(FeatureSet, FeatureNames) {
  EXPECT_STREQ(FeatureName(Feature::kCfIbf), "CF-IBF");
  EXPECT_STREQ(FeatureName(Feature::kEjs), "EJS");
  EXPECT_STREQ(FeatureName(Feature::kWjs), "WJS");
  EXPECT_STREQ(FeatureName(Feature::kNrs), "NRS");
}

}  // namespace
}  // namespace gsmb
