// Serving-layer equivalence suite: any interleaving of AddProfiles() and
// Refresh() must leave the session with exactly the retained pairs of a
// cold session built from scratch on the same profiles — bit-identical,
// across thread counts and pruning algorithms. Plus dirty-shard locality
// and query behaviour.

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/block_stats.h"
#include "blocking/candidate_pairs.h"
#include "blocking/entity_index.h"
#include "blocking/token_blocking.h"
#include "core/features.h"
#include "datasets/dirty_generator.h"
#include "serve/session.h"
#include "serve/serving_model.h"

namespace gsmb {
namespace {

DirtySpec TestSpec(size_t num_entities, uint64_t seed) {
  DirtySpec spec;
  spec.name = "serve-test";
  spec.num_entities = num_entities;
  spec.seed = seed;
  return spec;
}

const GeneratedDirty& TestData() {
  static const GeneratedDirty data =
      DirtyGenerator().Generate(TestSpec(500, 11));
  return data;
}

// One model shared by every test: trained once with the batch pipeline on
// an independent generated dataset (different seed than the serving data).
const ServingModel& TestModel() {
  static const ServingModel model = [] {
    const GeneratedDirty labelled =
        DirtyGenerator().Generate(TestSpec(400, 23));
    ServingModelTraining training;
    training.train_per_class = 40;
    return TrainServingModel(labelled.entities, labelled.ground_truth,
                             FeatureSet::BlastOptimal(), training);
  }();
  return model;
}

SessionOptions TestOptions(size_t num_shards = 8, size_t num_threads = 1) {
  SessionOptions options;
  options.num_shards = num_shards;
  options.execution.num_threads = num_threads;
  return options;
}

MetaBlockingSession ColdSession(const SessionOptions& options,
                                const std::vector<EntityProfile>& profiles) {
  MetaBlockingSession session(options, TestModel());
  session.AddProfiles(profiles);
  session.Refresh();
  return session;
}

std::vector<EntityProfile> Slice(const std::vector<EntityProfile>& all,
                                 size_t begin, size_t end) {
  return {all.begin() + begin, all.begin() + end};
}

TEST(ServeSession, RejectsInvalidConstruction) {
  SessionOptions no_shards = TestOptions(0);
  EXPECT_THROW(MetaBlockingSession(no_shards, TestModel()),
               std::invalid_argument);
  ServingModel broken = TestModel();
  broken.weights.pop_back();
  EXPECT_THROW(MetaBlockingSession(TestOptions(), broken),
               std::invalid_argument);
}

TEST(ServeSession, EmptySessionIsWellBehaved) {
  MetaBlockingSession session(TestOptions(), TestModel());
  EXPECT_EQ(session.Refresh(), 0u);
  EXPECT_TRUE(session.RetainedPairs().empty());
  EXPECT_TRUE(session.QueryCandidates(TestData().entities[0]).empty());
  EXPECT_EQ(session.Stats().num_profiles, 0u);
}

TEST(ServeSession, SingleBatchMatchesColdRebuildAcrossThreads) {
  const auto& profiles = TestData().entities.profiles();
  const std::vector<CandidatePair> reference =
      ColdSession(TestOptions(8, 1), profiles).RetainedPairs();
  ASSERT_FALSE(reference.empty());
  for (size_t threads : {2, 8}) {
    EXPECT_EQ(ColdSession(TestOptions(8, threads), profiles).RetainedPairs(),
              reference)
        << threads << " threads";
  }
}

// The tentpole guarantee: refresh-as-you-go over arbitrary batch splits
// retains exactly what a one-shot build on the union retains.
TEST(ServeSession, InterleavedIngestMatchesColdRebuild) {
  const auto& profiles = TestData().entities.profiles();
  const size_t n = profiles.size();
  const std::vector<CandidatePair> reference =
      ColdSession(TestOptions(8, 1), profiles).RetainedPairs();
  ASSERT_FALSE(reference.empty());

  // Refresh after every batch.
  for (size_t threads : {1, 2, 8}) {
    MetaBlockingSession session(TestOptions(8, threads), TestModel());
    session.AddProfiles(Slice(profiles, 0, n / 3));
    session.Refresh();
    session.AddProfiles(Slice(profiles, n / 3, 2 * n / 3));
    session.Refresh();
    session.AddProfiles(Slice(profiles, 2 * n / 3, n));
    session.Refresh();
    EXPECT_EQ(session.RetainedPairs(), reference) << threads << " threads";
  }

  // Ragged batches, some refreshes skipped, one profile at a time at the
  // end; a final refresh settles everything.
  MetaBlockingSession session(TestOptions(8, 2), TestModel());
  session.AddProfiles(Slice(profiles, 0, 7));
  session.Refresh();
  session.AddProfiles(Slice(profiles, 7, n / 2));
  session.AddProfiles(Slice(profiles, n / 2, n - 5));
  session.Refresh();
  for (size_t i = n - 5; i < n; ++i) session.AddProfile(profiles[i]);
  session.Refresh();
  EXPECT_EQ(session.RetainedPairs(), reference);

  // Redundant refreshes are no-ops.
  EXPECT_EQ(session.Refresh(), 0u);
  EXPECT_EQ(session.RetainedPairs(), reference);
}

TEST(ServeSession, EquivalenceHoldsForEveryPruningAlgorithm) {
  const auto& profiles = TestData().entities.profiles();
  const size_t n = profiles.size();
  for (PruningKind kind : AllPruningKinds()) {
    SessionOptions options = TestOptions(8, 2);
    options.pruning = kind;
    MetaBlockingSession cold(options, TestModel());
    cold.AddProfiles(profiles);
    cold.Refresh();

    MetaBlockingSession incremental(options, TestModel());
    incremental.AddProfiles(Slice(profiles, 0, n / 2));
    incremental.Refresh();
    incremental.AddProfiles(Slice(profiles, n / 2, n));
    incremental.Refresh();
    EXPECT_EQ(incremental.RetainedPairs(), cold.RetainedPairs())
        << PruningKindName(kind);
  }
}

TEST(ServeSession, MaxBlockSizePurgingIsStable) {
  const auto& profiles = TestData().entities.profiles();
  const size_t n = profiles.size();
  SessionOptions options = TestOptions(8, 2);
  options.max_block_size = 24;
  MetaBlockingSession cold(options, TestModel());
  cold.AddProfiles(profiles);
  cold.Refresh();

  MetaBlockingSession incremental(options, TestModel());
  incremental.AddProfiles(Slice(profiles, 0, n / 4));
  incremental.Refresh();
  incremental.AddProfiles(Slice(profiles, n / 4, n));
  incremental.Refresh();
  EXPECT_EQ(incremental.RetainedPairs(), cold.RetainedPairs());
}

// With one shard and no size cap, the per-shard pipeline IS the library's
// batch pipeline over Token Blocking: validate the shard machinery against
// the primitives it is built from.
TEST(ServeSession, OneShardMatchesBatchPrimitives) {
  const EntityCollection& entities = TestData().entities;
  const ServingModel& model = TestModel();

  MetaBlockingSession session(TestOptions(1, 1), model);
  session.AddProfiles(entities.profiles());
  session.Refresh();

  const BlockCollection blocks = TokenBlocking().Build(entities);
  const EntityIndex index(blocks);
  const std::vector<CandidatePair> pairs = GenerateCandidatePairs(index, 1);
  const FeatureExtractor extractor(index, pairs);
  const Matrix features = extractor.Compute(model.features, 1);
  std::vector<double> probabilities(pairs.size());
  for (size_t r = 0; r < pairs.size(); ++r) {
    probabilities[r] = model.Predict(features.Row(r));
  }
  PruningContext context =
      PruningContext::FromIndex(index, ComputeBlockStats(blocks));
  const std::vector<uint32_t> retained_rows =
      MakePruningAlgorithm(PruningKind::kBlast)
          ->Prune(pairs, probabilities, context);
  std::vector<CandidatePair> expected;
  expected.reserve(retained_rows.size());
  for (uint32_t row : retained_rows) expected.push_back(pairs[row]);

  EXPECT_EQ(session.RetainedPairs(), expected);
}

TEST(ServeSession, IngestDirtiesOnlyTouchedShards) {
  const auto& profiles = TestData().entities.profiles();
  MetaBlockingSession session(TestOptions(64, 2), TestModel());
  session.AddProfiles(profiles);
  session.Refresh();
  EXPECT_EQ(session.DirtyShardCount(), 0u);

  // A probe with two tokens can touch at most two shards.
  EntityProfile narrow("narrow-1");
  narrow.AddAttribute("title", "zzserveuniq alphaserve");
  session.AddProfile(narrow);
  const size_t dirty = session.DirtyShardCount();
  EXPECT_GE(dirty, 1u);
  EXPECT_LE(dirty, 2u);
  EXPECT_EQ(session.Refresh(), dirty);
  EXPECT_EQ(session.DirtyShardCount(), 0u);
}

TEST(ServeSession, RetainedPairsFindDuplicates) {
  const GeneratedDirty& data = TestData();
  SessionOptions options = TestOptions(8, 2);
  options.max_block_size = 24;  // serving-style purging of stop-word blocks
  MetaBlockingSession session(options, TestModel());
  session.AddProfiles(data.entities.profiles());
  session.Refresh();
  const std::vector<CandidatePair> retained = session.RetainedPairs();
  ASSERT_FALSE(retained.empty());
  size_t true_positives = 0;
  for (const CandidatePair& p : retained) {
    if (data.ground_truth.IsMatch(p.left, p.right)) ++true_positives;
  }
  // The session must actually be useful: near-complete recall, and
  // precision well above the candidate baseline (|D| / #candidates).
  const double recall = static_cast<double>(true_positives) /
                        static_cast<double>(data.ground_truth.size());
  const double precision = static_cast<double>(true_positives) /
                           static_cast<double>(retained.size());
  const double baseline = static_cast<double>(data.ground_truth.size()) /
                          static_cast<double>(session.Stats().num_candidates);
  EXPECT_GT(recall, 0.9);
  EXPECT_GT(precision, 0.15);
  EXPECT_GT(precision, 3.0 * baseline);
}

TEST(ServeSession, QueryFindsResidentTwin) {
  const GeneratedDirty& data = TestData();
  MetaBlockingSession session(TestOptions(8, 2), TestModel());
  session.AddProfiles(data.entities.profiles());
  session.Refresh();

  // An *external* probe that copies a resident profile must surface that
  // resident (they share every token). Check a handful of spread-out ids.
  for (EntityId id : {EntityId{0}, EntityId{123}, EntityId{321}}) {
    const std::vector<QueryMatch> matches =
        session.QueryCandidates(data.entities[id], 10);
    const bool found =
        std::any_of(matches.begin(), matches.end(),
                    [&](const QueryMatch& m) { return m.id == id; });
    EXPECT_TRUE(found) << "query for resident id " << id;
  }
}

TEST(ServeSession, ResidentQueryExcludesSelfAndFindsDuplicates) {
  const GeneratedDirty& data = TestData();
  MetaBlockingSession session(TestOptions(8, 2), TestModel());
  session.AddProfiles(data.entities.profiles());
  session.Refresh();

  // Querying *as* a resident (exclude = own id) must never return the
  // probe itself, and should surface its known duplicates.
  size_t partners_found = 0;
  size_t checked = 0;
  for (const MatchPair& match : data.ground_truth.pairs()) {
    if (checked == 10) break;
    ++checked;
    const std::vector<QueryMatch> matches = session.QueryCandidates(
        data.entities[match.left], 10, match.left);
    for (const QueryMatch& m : matches) {
      ASSERT_NE(m.id, match.left) << "self-match leaked into results";
      if (m.id == match.right) ++partners_found;
    }
  }
  EXPECT_GE(partners_found, 7u) << "of " << checked << " known duplicates";
}

TEST(ServeSession, QueryIsDeterministicAndBounded) {
  const GeneratedDirty& data = TestData();
  MetaBlockingSession session(TestOptions(8, 2), TestModel());
  session.AddProfiles(data.entities.profiles());
  session.Refresh();

  const EntityProfile& probe = data.entities[42];
  const std::vector<QueryMatch> first = session.QueryCandidates(probe, 5);
  const std::vector<QueryMatch> second = session.QueryCandidates(probe, 5);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_LE(first.size(), 5u);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].probability, second[i].probability);
    EXPECT_GE(first[i].probability, session.options().validity_threshold);
    if (i > 0) {
      EXPECT_GE(first[i - 1].probability, first[i].probability);
    }
  }
}

TEST(ServeSession, QueryWithUnknownTokensIsEmpty) {
  const GeneratedDirty& data = TestData();
  MetaBlockingSession session(TestOptions(8, 1), TestModel());
  session.AddProfiles(data.entities.profiles());
  session.Refresh();
  EntityProfile alien("alien-1");
  alien.AddAttribute("x", "qqqqqq wwwwww eeeeee");
  EXPECT_TRUE(session.QueryCandidates(alien).empty());
}

TEST(ServeSession, StatsReflectSessionState) {
  const auto& profiles = TestData().entities.profiles();
  MetaBlockingSession session(TestOptions(8, 2), TestModel());
  session.AddProfiles(profiles);
  SessionStats before = session.Stats();
  EXPECT_EQ(before.num_profiles, profiles.size());
  EXPECT_GT(before.dirty_shards, 0u);
  EXPECT_EQ(before.num_retained, 0u);

  session.Refresh();
  SessionStats after = session.Stats();
  EXPECT_EQ(after.dirty_shards, 0u);
  EXPECT_GT(after.num_blocks, 0u);
  EXPECT_GT(after.num_candidates, 0u);
  EXPECT_EQ(after.num_retained, session.RetainedPairs().size());
}

}  // namespace
}  // namespace gsmb
