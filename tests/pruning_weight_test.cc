#include "core/weight_pruning.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsmb {
namespace {

PruningContext Ctx(size_t nodes) {
  PruningContext ctx;
  ctx.num_nodes = nodes;
  ctx.right_offset = 0;
  ctx.validity_threshold = 0.5;
  return ctx;
}

// The paper's Figure 4 example: six weighted edges, of which three survive
// Supervised WNP. Node ids follow the paper (e1..e7 -> 0..6).
struct Fig4 {
  std::vector<CandidatePair> pairs = {
      {0, 2},  // e1-e3  p=0.55  (match)
      {1, 3},  // e2-e4  p=0.90  (match)
      {2, 4},  // e3-e5  p=0.26
      {3, 4},  // e4-e5  p=0.55
      {4, 6},  // e5-e7  p=0.41
      {5, 6},  // e6-e7  p=0.70  (match)
      {1, 5},  // e2-e6  p=0.30
      {0, 1},  // e1-e2  p=0.36
  };
  std::vector<double> probs = {0.55, 0.90, 0.26, 0.55, 0.41, 0.70, 0.30,
                               0.36};
};

TEST(BCl, KeepsAllValidPairs) {
  Fig4 g;
  auto retained = BClPruning().Prune(g.pairs, g.probs, Ctx(7));
  // Valid = probability >= 0.5: indices 0, 1, 3, 5.
  EXPECT_EQ(retained, (std::vector<uint32_t>{0, 1, 3, 5}));
}

TEST(BCl, EmptyWhenNothingValid) {
  std::vector<CandidatePair> pairs = {{0, 1}};
  std::vector<double> probs = {0.49};
  EXPECT_TRUE(BClPruning().Prune(pairs, probs, Ctx(2)).empty());
}

TEST(Wep, GlobalAverageThreshold) {
  Fig4 g;
  // Valid probabilities: 0.55, 0.90, 0.55, 0.70; mean = 0.675.
  auto retained = WepPruning().Prune(g.pairs, g.probs, Ctx(7));
  EXPECT_EQ(retained, (std::vector<uint32_t>{1, 5}));
}

TEST(Wep, AllEqualProbabilitiesKeepEverythingValid) {
  std::vector<CandidatePair> pairs = {{0, 1}, {1, 2}, {0, 2}};
  std::vector<double> probs = {0.7, 0.7, 0.7};
  auto retained = WepPruning().Prune(pairs, probs, Ctx(3));
  EXPECT_EQ(retained.size(), 3u);
}

TEST(Wep, EmptyInput) {
  EXPECT_TRUE(WepPruning().Prune({}, {}, Ctx(3)).empty());
}

TEST(Wnp, KeepsPairAboveEitherEndpointAverage) {
  // Node 0 has valid pairs {0.6, 0.9} -> avg 0.75; node 1: {0.6} -> 0.6;
  // node 2: {0.9, 0.5} -> 0.7; node 3: {0.5} -> 0.5.
  std::vector<CandidatePair> pairs = {{0, 1}, {0, 2}, {2, 3}};
  std::vector<double> probs = {0.6, 0.9, 0.5};
  auto retained = WnpPruning().Prune(pairs, probs, Ctx(4));
  // (0,1): 0.6 < 0.75 but = avg of node 1 -> kept.
  // (0,2): 0.9 >= both -> kept.
  // (2,3): 0.5 < 0.7 but = avg of node 3 -> kept.
  EXPECT_EQ(retained, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(Rwnp, RequiresBothEndpointAverages) {
  std::vector<CandidatePair> pairs = {{0, 1}, {0, 2}, {2, 3}};
  std::vector<double> probs = {0.6, 0.9, 0.5};
  auto retained = RwnpPruning().Prune(pairs, probs, Ctx(4));
  // Only (0,2) clears both node averages.
  EXPECT_EQ(retained, (std::vector<uint32_t>{1}));
}

TEST(Rwnp, SubsetOfWnp) {
  testing::PruningFixture f = testing::RandomPruningGraph(40, 0.3, 11);
  auto wnp = WnpPruning().Prune(f.pairs, f.probs, f.context);
  auto rwnp = RwnpPruning().Prune(f.pairs, f.probs, f.context);
  EXPECT_LE(rwnp.size(), wnp.size());
  size_t j = 0;
  for (uint32_t idx : rwnp) {
    while (j < wnp.size() && wnp[j] < idx) ++j;
    ASSERT_LT(j, wnp.size());
    EXPECT_EQ(wnp[j], idx);
  }
}

TEST(Blast, Figure4Shape) {
  // The paper's motivating case: (e1,e3) and (e4,e5) have the same weight
  // 0.55, yet BLAST keeps the former and drops the latter because e4's
  // neighbourhood contains the strong 0.90 edge.
  Fig4 g;
  PruningContext ctx = Ctx(7);
  ctx.blast_ratio = 0.5;
  auto retained = BlastPruning().Prune(g.pairs, g.probs, ctx);
  // max: n0=0.55 n1=0.90 n2=0.55 n3=0.90 n4=0.55 n5=0.70 n6=0.70.
  // (0,2)=0.55 vs 0.5*(0.55+0.55)=0.55 -> kept.
  // (1,3)=0.90 vs 0.5*(0.90+0.90)=0.90 -> kept.
  // (3,4)=0.55 vs 0.5*(0.90+0.55)=0.725 -> dropped.
  // (5,6)=0.70 vs 0.5*(0.70+0.70)=0.70 -> kept.
  EXPECT_EQ(retained, (std::vector<uint32_t>{0, 1, 5}));
}

TEST(Blast, LowRatioKeepsAllValid) {
  Fig4 g;
  PruningContext ctx = Ctx(7);
  ctx.blast_ratio = 0.05;
  auto retained = BlastPruning().Prune(g.pairs, g.probs, ctx);
  auto bcl = BClPruning().Prune(g.pairs, g.probs, ctx);
  EXPECT_EQ(retained, bcl);
}

TEST(Blast, DefaultRatioIsGentlerThanHalf) {
  testing::PruningFixture f = testing::RandomPruningGraph(60, 0.2, 5);
  PruningContext r35 = f.context;
  r35.blast_ratio = 0.35;
  PruningContext r50 = f.context;
  r50.blast_ratio = 0.50;
  auto gentle = BlastPruning().Prune(f.pairs, f.probs, r35);
  auto harsh = BlastPruning().Prune(f.pairs, f.probs, r50);
  EXPECT_GE(gentle.size(), harsh.size());
}

TEST(WeightBased, InvalidPairsNeverRetained) {
  std::vector<CandidatePair> pairs = {{0, 1}, {1, 2}};
  std::vector<double> probs = {0.49, 0.999};
  for (PruningKind kind :
       {PruningKind::kBCl, PruningKind::kWep, PruningKind::kWnp,
        PruningKind::kRwnp, PruningKind::kBlast}) {
    auto retained =
        MakePruningAlgorithm(kind)->Prune(pairs, probs, Ctx(3));
    for (uint32_t idx : retained) EXPECT_NE(idx, 0u) << PruningKindName(kind);
  }
}

TEST(WeightBased, FactoryNamesAndCategories) {
  EXPECT_TRUE(IsWeightBased(PruningKind::kBlast));
  EXPECT_TRUE(IsWeightBased(PruningKind::kBCl));
  EXPECT_FALSE(IsWeightBased(PruningKind::kRcnp));
  EXPECT_EQ(MakePruningAlgorithm(PruningKind::kWep)->Name(), "WEP");
  EXPECT_EQ(MakePruningAlgorithm(PruningKind::kBlast)->kind(),
            PruningKind::kBlast);
}

}  // namespace
}  // namespace gsmb
