// Engine::Prepare and the engine-level prepare cache: hit-vs-miss handle
// identity, LRU eviction under entry and byte budgets, cross-thread
// build sharing, failure non-caching, and auto-mode resolution being
// identical on cold and cached paths.

#include "gsmb/engine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "gsmb/job_spec.h"
#include "gsmb/prepared.h"

namespace gsmb {
namespace {

/// A small generated Dirty ER spec (the prepare path is identical for CSV
/// sources; generated datasets keep the tests hermetic).
JobSpec SmallSpec(double scale = 0.03) {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = scale;
  spec.blocking.filter_ratio = 1.0;
  spec.training.labels_per_class = 15;
  spec.training.seed = 3;
  spec.execution.shards = 1;
  spec.output.keep_retained = true;
  return spec;
}

TEST(PrepareCacheKeyFn, CoversExactlyDatasetAndBlocking) {
  JobSpec spec = SmallSpec();
  const std::string key = PrepareCacheKey(spec);

  // Execution/pipeline knobs never enter the key...
  JobSpec same = spec;
  same.execution.options.num_threads = 7;
  same.execution.mode = ExecutionMode::kStreaming;
  same.pruning.kind = PruningKind::kCnp;
  same.features = FeatureSet::Paper2014();
  same.training.seed = 99;
  EXPECT_EQ(PrepareCacheKey(same), key);

  // ...while any dataset or blocking change does.
  JobSpec other_blocking = spec;
  other_blocking.blocking.min_token_length = 2;
  EXPECT_NE(PrepareCacheKey(other_blocking), key);
  JobSpec other_dataset = spec;
  other_dataset.dataset.scale = 0.04;
  EXPECT_NE(PrepareCacheKey(other_dataset), key);
}

TEST(PrepareCache, HitReturnsPointerIdenticalHandle) {
  Engine engine;
  JobSpec spec = SmallSpec();

  Result<PreparedHandle> first = engine.Prepare(spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT((*first)->num_candidates(), 0u);

  Result<PreparedHandle> second = engine.Prepare(spec);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get()) << "cache hit must share the handle";

  // A spec differing only in execution knobs maps to the same preparation.
  JobSpec threaded = spec;
  threaded.execution.options.num_threads = 4;
  threaded.execution.mode = ExecutionMode::kStreaming;
  Result<PreparedHandle> third = engine.Prepare(threaded);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(first->get(), third->get());

  const PrepareCacheStats stats = engine.prepare_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(PrepareCache, RunIsPrepareThenExecute) {
  Engine engine;
  JobSpec spec = SmallSpec();

  Result<JobResult> first = engine.Run(spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<JobResult> second = engine.Run(spec);
  ASSERT_TRUE(second.ok());

  // Identical answers, one preparation.
  EXPECT_EQ(first->retained, second->retained);
  const PrepareCacheStats stats = engine.prepare_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(PrepareCache, EvictionFollowsLruOrder) {
  EngineOptions options;
  options.prepare_cache_max_entries = 2;
  Engine engine(options);

  const JobSpec a = SmallSpec(0.02);
  const JobSpec b = SmallSpec(0.025);
  const JobSpec c = SmallSpec(0.03);

  ASSERT_TRUE(engine.Prepare(a).ok());
  ASSERT_TRUE(engine.Prepare(b).ok());
  ASSERT_TRUE(engine.Prepare(a).ok());  // touch a: b is now LRU
  ASSERT_TRUE(engine.Prepare(c).ok());  // evicts b, not a

  PrepareCacheStats stats = engine.prepare_cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  ASSERT_TRUE(engine.Prepare(a).ok());  // still cached
  EXPECT_EQ(engine.prepare_cache_stats().misses, 3u);  // a, b, c built

  ASSERT_TRUE(engine.Prepare(b).ok());  // evicted above: rebuilt
  stats = engine.prepare_cache_stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);  // b's re-insert evicted the LRU (c)
}

TEST(PrepareCache, ByteBudgetBoundsResidency) {
  // A 1 MiB budget below a single preparation's footprint degrades to
  // pass-through: the entry is dropped right after insert, never wrongly
  // served, and the next Prepare rebuilds.
  EngineOptions options;
  options.prepare_cache_budget_mb = 1;
  Engine engine(options);

  const JobSpec spec = SmallSpec(0.3);  // ~2 MB resident
  Result<PreparedHandle> first = engine.Prepare(spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_GT((*first)->ApproxBytes(), 1u << 20)
      << "fixture must exceed the byte budget for this test to bite";

  PrepareCacheStats stats = engine.prepare_cache_stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_GE(stats.evictions, 1u);

  Result<PreparedHandle> second = engine.Prepare(spec);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->get(), second->get());
  EXPECT_EQ(engine.prepare_cache_stats().misses, 2u);
}

TEST(PrepareCache, DisabledCacheStillPrepares) {
  EngineOptions options;
  options.prepare_cache_max_entries = 0;
  Engine engine(options);

  const JobSpec spec = SmallSpec();
  Result<PreparedHandle> first = engine.Prepare(spec);
  Result<PreparedHandle> second = engine.Prepare(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->get(), second->get());
  const PrepareCacheStats stats = engine.prepare_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(PrepareCache, CrossThreadRaceSharesOneBuild) {
  // Run under the `tsan` preset as well as plain builds: the racing
  // threads exercise the cache's shared_future slot hand-off, and TSan
  // checks the happens-before edges the assertions below rely on.
  Engine engine;
  const JobSpec spec = SmallSpec();

  constexpr size_t kThreads = 8;
  std::vector<const PreparedInputs*> handles(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Result<PreparedHandle> prepared = engine.Prepare(spec);
      if (prepared.ok()) handles[t] = prepared->get();
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_NE(handles[t], nullptr) << "thread " << t << " failed to prepare";
    EXPECT_EQ(handles[t], handles[0]) << "thread " << t << " got its own build";
  }
  const PrepareCacheStats stats = engine.prepare_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kThreads - 1);
}

TEST(PrepareCache, FailedPreparationIsNeverCached) {
  Engine engine;
  JobSpec spec;
  spec.dataset.e1 = "no_such_file.csv";
  spec.dataset.ground_truth = "also_missing.csv";

  Result<PreparedHandle> first = engine.Prepare(spec);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.prepare_cache_stats().entries, 0u);

  // The retry must rebuild (and re-fail), not serve the cached failure.
  Result<PreparedHandle> second = engine.Prepare(spec);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(engine.prepare_cache_stats().misses, 2u);
}

TEST(EngineExecute, RejectsAMismatchedHandle) {
  Engine engine;
  Result<PreparedHandle> prepared = engine.Prepare(SmallSpec());
  ASSERT_TRUE(prepared.ok());

  JobSpec other = SmallSpec();
  other.blocking.min_token_length = 2;  // different preparation
  Result<JobResult> result = engine.Execute(other, **prepared);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("do not match"),
            std::string::npos);
}

TEST(EngineExecute, MatchesPlainRunBitForBit) {
  Engine engine;
  JobSpec spec = SmallSpec();
  Result<PreparedHandle> prepared = engine.Prepare(spec);
  ASSERT_TRUE(prepared.ok());

  for (ExecutionMode mode :
       {ExecutionMode::kBatch, ExecutionMode::kStreaming}) {
    spec.execution.mode = mode;
    Result<JobResult> staged = engine.Execute(spec, **prepared);
    ASSERT_TRUE(staged.ok()) << staged.status().ToString();

    Engine independent;
    Result<JobResult> direct = independent.Run(spec);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(staged->retained, direct->retained)
        << ExecutionModeName(mode);
    EXPECT_EQ(staged->model_coefficients, direct->model_coefficients);
  }
}

TEST(EngineAutoStaged, ResolutionIdenticalColdAndCached) {
  // Streaming resolution (tiny budget): the cold run decides from the
  // fresh preparation, the cached run from the shared handle — same
  // backend, same retained pairs.
  Engine engine;
  JobSpec spec = SmallSpec();
  spec.execution.mode = ExecutionMode::kAuto;
  spec.execution.memory_budget_mb = 1;

  Result<JobResult> cold = engine.Run(spec);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  Result<JobResult> cached = engine.Run(spec);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cold->backend, "streaming");
  EXPECT_EQ(cached->backend, "streaming");
  EXPECT_EQ(cold->retained, cached->retained);
  EXPECT_EQ(engine.prepare_cache_stats().misses, 1u);

  // Batch resolution (no budget): same contract.
  Engine batch_engine;
  JobSpec batch_spec = SmallSpec();
  batch_spec.execution.mode = ExecutionMode::kAuto;
  Result<JobResult> batch_cold = batch_engine.Run(batch_spec);
  Result<JobResult> batch_cached = batch_engine.Run(batch_spec);
  ASSERT_TRUE(batch_cold.ok());
  ASSERT_TRUE(batch_cached.ok());
  EXPECT_EQ(batch_cold->backend, "batch");
  EXPECT_EQ(batch_cached->backend, "batch");
  EXPECT_EQ(batch_cold->retained, batch_cached->retained);
}

TEST(PreparedInputsLazyBatch, StreamingNeverMaterialises) {
  Engine engine;
  JobSpec spec = SmallSpec();
  spec.execution.mode = ExecutionMode::kStreaming;
  Result<PreparedHandle> prepared = engine.Prepare(spec);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(engine.Execute(spec, **prepared).ok());
  EXPECT_FALSE((*prepared)->batch_materialized())
      << "a streaming-only handle must stay free of O(|C|) arrays";

  spec.execution.mode = ExecutionMode::kBatch;
  ASSERT_TRUE(engine.Execute(spec, **prepared).ok());
  EXPECT_TRUE((*prepared)->batch_materialized());
}

}  // namespace
}  // namespace gsmb
