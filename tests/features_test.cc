#include "core/features.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsmb {
namespace {

// All closed-form expectations below are hand-computed from the paper's
// Figure 1 example (see test_support.h for the block layout):
//   |B| = 8, ||B|| = 24.
//   e5 (id 5): blocks {samsung(||6||), mate(1), phone(1), fold(1)}.
//   e6 (id 6): blocks {samsung(6), 20(3), mate(1), phone(1), fold(1)}.
//   pair (5,6): 4 common blocks.
class PaperFeaturesTest : public ::testing::Test {
 protected:
  PaperFeaturesTest()
      : bc_(testing::PaperExampleBlocks()),
        index_(bc_),
        pairs_(GenerateCandidatePairs(index_)),
        extractor_(index_, pairs_) {}

  size_t RowOf(EntityId left, EntityId right) const {
    for (size_t i = 0; i < pairs_.size(); ++i) {
      if (pairs_[i].left == left && pairs_[i].right == right) return i;
    }
    ADD_FAILURE() << "pair not found";
    return 0;
  }

  BlockCollection bc_;
  EntityIndex index_;
  std::vector<CandidatePair> pairs_;
  FeatureExtractor extractor_;
};

TEST_F(PaperFeaturesTest, MatrixShape) {
  Matrix all = extractor_.ComputeAll();
  EXPECT_EQ(all.rows(), 16u);
  EXPECT_EQ(all.cols(), 9u);
  Matrix js = extractor_.Compute(FeatureSet({Feature::kJs}));
  EXPECT_EQ(js.cols(), 1u);
}

TEST_F(PaperFeaturesTest, JaccardScheme) {
  Matrix js = extractor_.Compute(FeatureSet({Feature::kJs}));
  // (5,6): 4 / (4 + 5 - 4) = 0.8.
  EXPECT_NEAR(js.At(RowOf(5, 6), 0), 0.8, 1e-12);
  // (0,2): 3 / (3 + 3 - 3) = 1.0 — identical block sets.
  EXPECT_NEAR(js.At(RowOf(0, 2), 0), 1.0, 1e-12);
  // (0,1): 1 / (3 + 2 - 1) = 0.25.
  EXPECT_NEAR(js.At(RowOf(0, 1), 0), 0.25, 1e-12);
}

TEST_F(PaperFeaturesTest, CfIbf) {
  Matrix m = extractor_.Compute(FeatureSet({Feature::kCfIbf}));
  // (5,6): 4 * log(8/4) * log(8/5).
  EXPECT_NEAR(m.At(RowOf(5, 6), 0),
              4.0 * std::log(2.0) * std::log(8.0 / 5.0), 1e-12);
  // (1,3): 2 common, |B1| = 2, |B3| = 3.
  EXPECT_NEAR(m.At(RowOf(1, 3), 0),
              2.0 * std::log(4.0) * std::log(8.0 / 3.0), 1e-12);
}

TEST_F(PaperFeaturesTest, Raccb) {
  Matrix m = extractor_.Compute(FeatureSet({Feature::kRaccb}));
  // (5,6): common blocks samsung(6), mate(1), phone(1), fold(1).
  EXPECT_NEAR(m.At(RowOf(5, 6), 0), 1.0 / 6 + 3.0, 1e-12);
  // (0,2): apple(1), iphone(1), smartphone(10).
  EXPECT_NEAR(m.At(RowOf(0, 2), 0), 2.1, 1e-12);
}

TEST_F(PaperFeaturesTest, ReciprocalSizes) {
  Matrix m = extractor_.Compute(FeatureSet({Feature::kRs}));
  // (5,6): sizes 4, 2, 2, 2 -> 1/4 + 3/2.
  EXPECT_NEAR(m.At(RowOf(5, 6), 0), 0.25 + 1.5, 1e-12);
  // (3,4): common blocks 20(size 3), smartphone(size 5).
  EXPECT_NEAR(m.At(RowOf(3, 4), 0), 1.0 / 3 + 0.2, 1e-12);
}

TEST_F(PaperFeaturesTest, WeightedJaccard) {
  Matrix m = extractor_.Compute(FeatureSet({Feature::kWjs}));
  // (5,6): common = 1/6+3; denominators: e5 = 1/6+3, e6 = 1/6+1/3+3.
  const double common = 1.0 / 6 + 3.0;
  const double e5 = 1.0 / 6 + 3.0;
  const double e6 = 1.0 / 6 + 1.0 / 3 + 3.0;
  EXPECT_NEAR(m.At(RowOf(5, 6), 0), common / (e5 + e6 - common), 1e-12);
}

TEST_F(PaperFeaturesTest, NormalizedReciprocalSizes) {
  Matrix m = extractor_.Compute(FeatureSet({Feature::kNrs}));
  const double common = 0.25 + 1.5;
  const double e5 = 0.25 + 1.5;
  const double e6 = 0.25 + 1.0 / 3 + 1.5;
  EXPECT_NEAR(m.At(RowOf(5, 6), 0), common / (e5 + e6 - common), 1e-12);
}

TEST_F(PaperFeaturesTest, EnhancedJaccard) {
  Matrix m = extractor_.Compute(FeatureSet({Feature::kEjs}));
  // (5,6): JS = 0.8, ||e5|| = 9, ||e6|| = 12, ||B|| = 24.
  EXPECT_NEAR(m.At(RowOf(5, 6), 0),
              0.8 * std::log(24.0 / 9.0) * std::log(2.0), 1e-12);
}

TEST_F(PaperFeaturesTest, LcpPerEntity) {
  std::vector<double> lcp = extractor_.ComputeLcpPerEntity();
  ASSERT_EQ(lcp.size(), 7u);
  // e0 co-occurs with {2 (apple, iphone), 1, 3, 4 (smartphone)} -> 4.
  EXPECT_DOUBLE_EQ(lcp[0], 4.0);
  // e5 co-occurs with {1, 3, 6} -> 3.
  EXPECT_DOUBLE_EQ(lcp[5], 3.0);
  // e6 co-occurs with {1, 3, 5 (samsung), 4 (20)} -> 4.
  EXPECT_DOUBLE_EQ(lcp[6], 4.0);
}

TEST_F(PaperFeaturesTest, LcpColumnsInPairMatrix) {
  Matrix m = extractor_.Compute(FeatureSet({Feature::kLcp}));
  ASSERT_EQ(m.cols(), 2u);
  size_t row = RowOf(5, 6);
  EXPECT_DOUBLE_EQ(m.At(row, 0), 3.0);  // LCP(e5)
  EXPECT_DOUBLE_EQ(m.At(row, 1), 4.0);  // LCP(e6)
}

TEST_F(PaperFeaturesTest, SubsetColumnsMatchFullMatrix) {
  Matrix all = extractor_.ComputeAll();
  FeatureSet subset({Feature::kRaccb, Feature::kWjs, Feature::kNrs});
  Matrix sub = extractor_.Compute(subset);
  Matrix selected = all.SelectColumns(subset.FullMatrixColumns());
  ASSERT_EQ(sub.rows(), selected.rows());
  ASSERT_EQ(sub.cols(), selected.cols());
  for (size_t r = 0; r < sub.rows(); ++r) {
    for (size_t c = 0; c < sub.cols(); ++c) {
      EXPECT_DOUBLE_EQ(sub.At(r, c), selected.At(r, c)) << r << "," << c;
    }
  }
}

// Brute-force reference implementation for Clean-Clean feature extraction:
// every quantity recomputed from scratch per pair.
TEST(FeaturesCleanClean, MatchesBruteForce) {
  const PreparedDataset& prep = gsmb::testing::MediumDataset();
  const EntityIndex& index = *prep.index;
  FeatureExtractor extractor(index, prep.pairs);
  Matrix all = extractor.ComputeAll();

  const size_t offset = index.num_left();
  const size_t sample_step = std::max<size_t>(1, prep.pairs.size() / 200);
  for (size_t r = 0; r < prep.pairs.size(); r += sample_step) {
    const CandidatePair& p = prep.pairs[r];
    const size_t gi = p.left;
    const size_t gj = offset + p.right;
    const double common = static_cast<double>(index.CommonBlocks(gi, gj));
    ASSERT_GT(common, 0.0);

    // Recompute the common-block sums by intersecting the block lists.
    double inv_cmp = 0.0;
    double inv_size = 0.0;
    auto bi = index.BlocksOf(gi);
    auto bj = index.BlocksOf(gj);
    size_t a = 0;
    size_t b = 0;
    while (a < bi.size() && b < bj.size()) {
      if (bi[a] < bj[b]) {
        ++a;
      } else if (bj[b] < bi[a]) {
        ++b;
      } else {
        inv_cmp += 1.0 / index.BlockComparisons(bi[a]);
        inv_size += 1.0 / static_cast<double>(index.BlockSize(bi[a]));
        ++a;
        ++b;
      }
    }

    const double nbi = static_cast<double>(index.NumBlocksOf(gi));
    const double nbj = static_cast<double>(index.NumBlocksOf(gj));
    const double nb = static_cast<double>(index.num_blocks());
    EXPECT_NEAR(all.At(r, 0),
                common * std::log(nb / nbi) * std::log(nb / nbj), 1e-9);
    EXPECT_NEAR(all.At(r, 1), inv_cmp, 1e-9);
    EXPECT_NEAR(all.At(r, 2), common / (nbi + nbj - common), 1e-9);
    const double js = common / (nbi + nbj - common);
    EXPECT_NEAR(all.At(r, 5),
                js * std::log(index.TotalComparisons() /
                              index.EntityComparisons(gi)) *
                    std::log(index.TotalComparisons() /
                             index.EntityComparisons(gj)),
                1e-9);
    EXPECT_NEAR(all.At(r, 6),
                inv_cmp / (index.SumInvBlockComparisons(gi) +
                           index.SumInvBlockComparisons(gj) - inv_cmp),
                1e-9);
    EXPECT_NEAR(all.At(r, 7), inv_size, 1e-9);
    EXPECT_NEAR(all.At(r, 8),
                inv_size / (index.SumInvBlockSizes(gi) +
                            index.SumInvBlockSizes(gj) - inv_size),
                1e-9);
  }
}

}  // namespace
}  // namespace gsmb
