#include <atomic>
#include <numeric>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/features.h"
#include "test_support.h"
#include "util/thread_pool.h"

namespace gsmb {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  size_t calls = 0;
  ParallelFor(10, 1, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(100, 4,
                  [](size_t begin, size_t) {
                    if (begin == 0) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1u); }

TEST(ParallelFeatures, BitIdenticalToSerial) {
  const PreparedDataset& prep = testing::MediumDataset();
  FeatureExtractor extractor(*prep.index, prep.pairs);
  Matrix serial = extractor.ComputeAll(1);
  for (size_t threads : {2, 4, 8}) {
    Matrix parallel = extractor.ComputeAll(threads);
    ASSERT_EQ(parallel.rows(), serial.rows());
    ASSERT_EQ(parallel.cols(), serial.cols());
    EXPECT_EQ(parallel.data(), serial.data()) << threads << " threads";
  }
}

TEST(ParallelFeatures, LcpBitIdenticalToSerial) {
  const PreparedDataset& prep = testing::SmallDirtyDataset();
  FeatureExtractor extractor(*prep.index, prep.pairs);
  EXPECT_EQ(extractor.ComputeLcpPerEntity(1),
            extractor.ComputeLcpPerEntity(4));
}

TEST(ParallelFeatures, SubsetSelectionAlsoIdentical) {
  const PreparedDataset& prep = testing::MediumDataset();
  FeatureExtractor extractor(*prep.index, prep.pairs);
  FeatureSet set = FeatureSet::RcnpOptimal();
  EXPECT_EQ(extractor.Compute(set, 1).data(),
            extractor.Compute(set, 4).data());
}

}  // namespace
}  // namespace gsmb
