#include <atomic>
#include <numeric>
#include <stdexcept>

#include <gtest/gtest.h>

#include "blocking/candidate_pairs.h"
#include "core/features.h"
#include "core/pipeline.h"
#include "core/pruning.h"
#include "ml/logistic_regression.h"
#include "test_support.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace gsmb {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  size_t calls = 0;
  ParallelFor(10, 1, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(100, 4,
                  [](size_t begin, size_t) {
                    if (begin == 0) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

// Header contract regressions: n == 0, num_threads == 0, num_threads > n,
// and exception propagation from every execution mode.

TEST(ParallelFor, ZeroThreadsRunsInline) {
  size_t calls = 0;
  ParallelFor(10, 0, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelFor, ZeroItemsZeroThreadsIsNoop) {
  bool called = false;
  ParallelFor(0, 0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesExceptionFromInlinePath) {
  EXPECT_THROW(
      ParallelFor(10, 1,
                  [](size_t, size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

TEST(ParallelFor, PropagatesExceptionWithMoreThreadsThanItems) {
  EXPECT_THROW(
      ParallelFor(2, 16,
                  [](size_t begin, size_t) {
                    if (begin == 1) throw std::out_of_range("boom");
                  }),
      std::out_of_range);
}

TEST(ParallelFor, AllWorkersThrowingPropagatesExactlyOne) {
  std::atomic<int> thrown{0};
  try {
    ParallelFor(100, 4, [&](size_t, size_t) {
      thrown.fetch_add(1);
      throw std::runtime_error("boom");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  // The contract is "exactly one propagates", not how many workers ran.
  EXPECT_GE(thrown.load(), 1);
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1u); }

// ---- Persistent pool behaviour (ParallelFor dispatches to it). ----

TEST(ThreadPool, ReusedAcrossManySmallCalls) {
  // 200 parallel regions; with per-call thread spawning this was 800
  // threads, with the pool the worker count stays bounded.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    ParallelFor(100, 4, [&](size_t begin, size_t end) {
      sum.fetch_add(static_cast<int>(end - begin));
    });
    ASSERT_EQ(sum.load(), 100);
  }
  EXPECT_LE(ThreadPool::Global().ActiveWorkers(),
            ThreadPool::Global().max_workers());
}

TEST(ThreadPool, RunExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.Run(64, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.Run(16,
                        [](size_t i) {
                          if (i % 2 == 0) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> ok{0};
  pool.Run(8, [&](size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  std::atomic<int> total{0};
  ParallelFor(4, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ParallelFor(64, 4, [&](size_t inner_begin, size_t inner_end) {
        total.fetch_add(static_cast<int>(inner_end - inner_begin));
      });
    }
  });
  EXPECT_EQ(total.load(), 4 * 64);
}

TEST(ThreadPool, ConcurrentRunsFromDistinctThreads) {
  // Two plain threads submitting to the global pool at once: batches drain
  // independently (each submitter participates in its own).
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread ta([&] {
    for (int i = 0; i < 50; ++i) {
      ParallelFor(32, 4,
                  [&](size_t begin, size_t end) {
                    a.fetch_add(static_cast<int>(end - begin));
                  });
    }
  });
  std::thread tb([&] {
    for (int i = 0; i < 50; ++i) {
      ParallelFor(32, 4,
                  [&](size_t begin, size_t end) {
                    b.fetch_add(static_cast<int>(end - begin));
                  });
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), 50 * 32);
  EXPECT_EQ(b.load(), 50 * 32);
}

TEST(DeterministicChunks, PartitionsRangeInOrder) {
  const std::vector<ChunkRange> chunks = DeterministicChunks(1000, 64);
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().begin, 0u);
  EXPECT_EQ(chunks.back().end, 1000u);
  for (size_t c = 1; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].begin, chunks[c - 1].end);
  }
  for (const ChunkRange& chunk : chunks) {
    EXPECT_LE(chunk.end - chunk.begin, 64u);
    EXPECT_LT(chunk.begin, chunk.end);
  }
}

TEST(DeterministicChunks, EmptyRangeHasNoChunks) {
  EXPECT_TRUE(DeterministicChunks(0, 64).empty());
}

TEST(DeterministicChunks, ZeroGrainTreatedAsOne) {
  EXPECT_EQ(DeterministicChunks(3, 0).size(), 3u);
}

TEST(DeterministicChunks, SmallInputIsOneChunk) {
  const std::vector<ChunkRange> chunks = DeterministicChunks(100, 8192);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (ChunkRange{0, 100}));
}

TEST(ParallelCandidatePairs, CleanCleanBitIdenticalToSerial) {
  const PreparedDataset& prep = testing::MediumDataset();
  const std::vector<CandidatePair> serial =
      GenerateCandidatePairs(*prep.index, 1);
  for (size_t threads : {2, 4, 8}) {
    EXPECT_EQ(GenerateCandidatePairs(*prep.index, threads), serial)
        << threads << " threads";
  }
}

TEST(ParallelCandidatePairs, DirtyBitIdenticalToSerial) {
  const PreparedDataset& prep = testing::SmallDirtyDataset();
  const std::vector<CandidatePair> serial =
      GenerateCandidatePairs(*prep.index, 1);
  for (size_t threads : {2, 4, 8}) {
    EXPECT_EQ(GenerateCandidatePairs(*prep.index, threads), serial)
        << threads << " threads";
  }
}

TEST(ParallelClassify, PredictBatchBitIdenticalToSerial) {
  Rng rng(7);
  Matrix x(20000, 3);
  std::vector<int> labels(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    labels[r] = static_cast<int>(r % 2);
    for (size_t c = 0; c < x.cols(); ++c) {
      x.At(r, c) = rng.NextGaussian() + (labels[r] != 0 ? 1.0 : -1.0);
    }
  }
  std::vector<size_t> train_rows(200);
  std::iota(train_rows.begin(), train_rows.end(), 0);
  std::vector<int> train_labels(labels.begin(), labels.begin() + 200);
  LogisticRegression model;
  model.Fit(x.SelectRows(train_rows), train_labels);

  const std::vector<double> serial = model.PredictBatch(x, 1);
  for (size_t threads : {2, 4, 8}) {
    EXPECT_EQ(model.PredictBatch(x, threads), serial) << threads
                                                      << " threads";
  }
}

// The tentpole guarantee: every pruning algorithm retains a bit-identical
// pair set for any thread count. The fixture is large enough (~12k pairs)
// to span several fixed-grain chunks, so the chunked merges really run.
TEST(ParallelPruning, AllAlgorithmsBitIdenticalAcrossThreadCounts) {
  testing::PruningFixture f = testing::RandomPruningGraph(300, 0.5, 41);
  ASSERT_GT(f.pairs.size(), 2 * kDefaultChunkGrain)
      << "fixture too small to exercise multi-chunk merges";
  for (PruningKind kind : AllPruningKinds()) {
    const std::unique_ptr<PruningAlgorithm> algorithm =
        MakePruningAlgorithm(kind);
    PruningContext context = f.context;
    context.execution.num_threads = 1;
    const std::vector<uint32_t> serial =
        algorithm->Prune(f.pairs, f.probs, context);
    EXPECT_FALSE(serial.empty()) << algorithm->Name();
    for (size_t threads : {2, 8}) {
      context.execution.num_threads = threads;
      EXPECT_EQ(algorithm->Prune(f.pairs, f.probs, context), serial)
          << algorithm->Name() << " with " << threads << " threads";
    }
  }
}

// End to end: the whole pipeline (features -> train -> classify -> prune)
// produces identical probabilities, retained pairs and metrics when run
// multi-threaded.
TEST(ParallelPipeline, RunMetaBlockingBitIdenticalToSerial) {
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  config.train_per_class = 50;
  config.keep_probabilities = true;
  config.keep_retained = true;

  config.execution.num_threads = 1;
  const MetaBlockingResult serial = RunMetaBlocking(prep, config);
  config.execution.num_threads = 4;
  const MetaBlockingResult parallel = RunMetaBlocking(prep, config);

  EXPECT_EQ(parallel.probabilities, serial.probabilities);
  EXPECT_EQ(parallel.retained_indices, serial.retained_indices);
  EXPECT_EQ(parallel.metrics.retained, serial.metrics.retained);
  EXPECT_EQ(parallel.metrics.true_positives, serial.metrics.true_positives);
  EXPECT_EQ(parallel.model_coefficients, serial.model_coefficients);
}

TEST(ParallelFeatures, BitIdenticalToSerial) {
  const PreparedDataset& prep = testing::MediumDataset();
  FeatureExtractor extractor(*prep.index, prep.pairs);
  Matrix serial = extractor.ComputeAll(1);
  for (size_t threads : {2, 4, 8}) {
    Matrix parallel = extractor.ComputeAll(threads);
    ASSERT_EQ(parallel.rows(), serial.rows());
    ASSERT_EQ(parallel.cols(), serial.cols());
    EXPECT_EQ(parallel.data(), serial.data()) << threads << " threads";
  }
}

TEST(ParallelFeatures, LcpBitIdenticalToSerial) {
  const PreparedDataset& prep = testing::SmallDirtyDataset();
  FeatureExtractor extractor(*prep.index, prep.pairs);
  EXPECT_EQ(extractor.ComputeLcpPerEntity(1),
            extractor.ComputeLcpPerEntity(4));
}

TEST(ParallelFeatures, SubsetSelectionAlsoIdentical) {
  const PreparedDataset& prep = testing::MediumDataset();
  FeatureExtractor extractor(*prep.index, prep.pairs);
  FeatureSet set = FeatureSet::RcnpOptimal();
  EXPECT_EQ(extractor.Compute(set, 1).data(),
            extractor.Compute(set, 4).data());
}

}  // namespace
}  // namespace gsmb
