#include "core/progressive.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsmb {
namespace {

TEST(ProgressiveSchedule, SortsByDescendingProbability) {
  std::vector<double> probs = {0.2, 0.9, 0.5, 0.7};
  auto order = ProgressiveSchedule(probs);
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 3, 2, 0}));
}

TEST(ProgressiveSchedule, TiesBreakByIndex) {
  std::vector<double> probs = {0.5, 0.9, 0.5, 0.5};
  auto order = ProgressiveSchedule(probs);
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 0, 2, 3}));
}

TEST(ProgressiveSchedule, MinProbabilityFilters) {
  std::vector<double> probs = {0.2, 0.9, 0.5};
  auto order = ProgressiveSchedule(probs, 0.5);
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 2}));
}

TEST(ProgressiveSchedule, Empty) {
  EXPECT_TRUE(ProgressiveSchedule({}).empty());
}

TEST(ProgressiveCurve, MonotoneAndEndsAtScheduleRecall) {
  std::vector<double> probs = {0.9, 0.1, 0.8, 0.2, 0.7};
  std::vector<uint8_t> positive = {1, 0, 1, 1, 0};
  auto schedule = ProgressiveSchedule(probs);
  auto curve = ProgressiveRecallCurve(schedule, positive, 3, 5);
  ASSERT_FALSE(curve.empty());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
    EXPECT_GT(curve[i].emitted, curve[i - 1].emitted);
  }
  EXPECT_EQ(curve.back().emitted, schedule.size());
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
}

TEST(ProgressiveCurve, CountsBlockingMissesAgainstRecall) {
  std::vector<double> probs = {0.9};
  std::vector<uint8_t> positive = {1};
  auto schedule = ProgressiveSchedule(probs);
  // 4 duplicates exist; only 1 is a candidate.
  auto curve = ProgressiveRecallCurve(schedule, positive, 4, 1);
  EXPECT_DOUBLE_EQ(curve.back().recall, 0.25);
}

TEST(ProgressiveAuc, PerfectScheduleScoresHighest) {
  std::vector<uint8_t> positive = {1, 1, 0, 0};
  std::vector<uint32_t> perfect = {0, 1, 2, 3};   // duplicates first
  std::vector<uint32_t> worst = {2, 3, 0, 1};     // duplicates last
  double auc_perfect = ProgressiveAuc(perfect, positive, 2);
  double auc_worst = ProgressiveAuc(worst, positive, 2);
  EXPECT_GT(auc_perfect, auc_worst);
  // Perfect: recall after each emission = .5, 1, 1, 1 -> mean .875.
  EXPECT_DOUBLE_EQ(auc_perfect, 0.875);
  // Worst: 0, 0, .5, 1 -> mean .375.
  EXPECT_DOUBLE_EQ(auc_worst, 0.375);
}

TEST(ProgressiveAuc, EmptyInputs) {
  EXPECT_DOUBLE_EQ(ProgressiveAuc({}, {}, 3), 0.0);
}

TEST(ProgressiveEndToEnd, ClassifierScheduleBeatsRandomOrder) {
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  config.features = FeatureSet::BlastOptimal();
  config.train_per_class = 25;
  config.keep_probabilities = true;
  MetaBlockingResult result = RunMetaBlocking(prep, config);

  auto schedule = ProgressiveSchedule(result.probabilities);
  double auc = ProgressiveAuc(schedule, prep.is_positive,
                              prep.ground_truth.size());

  // Identity order approximates a random schedule.
  std::vector<uint32_t> identity(prep.pairs.size());
  for (uint32_t i = 0; i < identity.size(); ++i) identity[i] = i;
  double auc_identity = ProgressiveAuc(identity, prep.is_positive,
                                       prep.ground_truth.size());
  EXPECT_GT(auc, auc_identity + 0.2);
  EXPECT_GT(auc, 0.7);
}

}  // namespace
}  // namespace gsmb
