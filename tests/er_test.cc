#include <gtest/gtest.h>

#include "er/entity_collection.h"
#include "er/entity_profile.h"
#include "er/ground_truth.h"

namespace gsmb {
namespace {

TEST(EntityProfile, AttributesRoundTrip) {
  EntityProfile p("e1");
  p.AddAttribute("name", "Apple iPhone X");
  p.AddAttribute("category", "Smartphone");
  EXPECT_EQ(p.external_id(), "e1");
  ASSERT_EQ(p.attributes().size(), 2u);
  EXPECT_EQ(p.GetAttribute("name"), "Apple iPhone X");
  EXPECT_EQ(p.GetAttribute("category"), "Smartphone");
  EXPECT_TRUE(p.HasAttribute("name"));
  EXPECT_FALSE(p.HasAttribute("price"));
}

TEST(EntityProfile, MissingAttributeReturnsEmpty) {
  EntityProfile p;
  EXPECT_EQ(p.GetAttribute("whatever"), "");
}

TEST(EntityProfile, FirstAttributeWins) {
  EntityProfile p;
  p.AddAttribute("k", "first");
  p.AddAttribute("k", "second");
  EXPECT_EQ(p.GetAttribute("k"), "first");
}

TEST(EntityProfile, DistinctValueTokensDedupesAndLowercases) {
  EntityProfile p;
  p.AddAttribute("name", "Apple iPhone");
  p.AddAttribute("brand", "APPLE");
  auto tokens = p.DistinctValueTokens();
  EXPECT_EQ(tokens, (std::vector<std::string>{"apple", "iphone"}));
}

TEST(EntityProfile, TokensExcludeAttributeNames) {
  EntityProfile p;
  p.AddAttribute("uniquename", "value");
  auto tokens = p.DistinctValueTokens();
  EXPECT_EQ(tokens, (std::vector<std::string>{"value"}));
}

TEST(EntityProfile, ValueLength) {
  EntityProfile p;
  p.AddAttribute("a", "abc");
  p.AddAttribute("b", "de");
  EXPECT_EQ(p.ValueLength(), 5u);
}

TEST(EntityCollection, AddAndIndex) {
  EntityCollection c("test");
  EntityId id0 = c.Add(EntityProfile("x"));
  EntityId id1 = c.Add(EntityProfile("y"));
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].external_id(), "x");
  EXPECT_EQ(c.name(), "test");
}

TEST(EntityCollection, FindByExternalId) {
  EntityCollection c;
  c.Add(EntityProfile("a"));
  c.Add(EntityProfile("b"));
  ASSERT_NE(c.FindByExternalId("b"), nullptr);
  EXPECT_EQ(c.FindByExternalId("b")->external_id(), "b");
  EXPECT_EQ(c.FindByExternalId("zzz"), nullptr);
}

TEST(EntityCollection, MeanTokensPerProfile) {
  EntityCollection c;
  EntityProfile p1;
  p1.AddAttribute("t", "a b c");
  EntityProfile p2;
  p2.AddAttribute("t", "a");
  c.Add(std::move(p1));
  c.Add(std::move(p2));
  EXPECT_DOUBLE_EQ(c.MeanTokensPerProfile(), 2.0);
}

TEST(GroundTruth, CleanCleanPairsAreOrdered) {
  GroundTruth gt(/*dirty=*/false);
  gt.AddMatch(3, 1);
  EXPECT_TRUE(gt.IsMatch(3, 1));
  // Clean-Clean: (left, right) refer to different collections; the
  // reversed lookup is a different (non-existent) pair.
  EXPECT_FALSE(gt.IsMatch(1, 3));
}

TEST(GroundTruth, DirtyPairsAreUnordered) {
  GroundTruth gt(/*dirty=*/true);
  gt.AddMatch(5, 2);
  EXPECT_TRUE(gt.IsMatch(2, 5));
  EXPECT_TRUE(gt.IsMatch(5, 2));
  EXPECT_EQ(gt.size(), 1u);
}

TEST(GroundTruth, DuplicateInsertionsIgnored) {
  GroundTruth gt(/*dirty=*/true);
  gt.AddMatch(1, 2);
  gt.AddMatch(2, 1);
  gt.AddMatch(1, 2);
  EXPECT_EQ(gt.size(), 1u);
}

TEST(GroundTruth, DirtySelfPairRejected) {
  GroundTruth gt(/*dirty=*/true);
  gt.AddMatch(4, 4);
  EXPECT_EQ(gt.size(), 0u);
}

TEST(GroundTruth, CleanCleanSamePositionAllowed) {
  // In Clean-Clean ER, (i, i) is a legitimate cross-source pair.
  GroundTruth gt(/*dirty=*/false);
  gt.AddMatch(4, 4);
  EXPECT_EQ(gt.size(), 1u);
  EXPECT_TRUE(gt.IsMatch(4, 4));
}

TEST(GroundTruth, PairsVectorMatchesInsertions) {
  GroundTruth gt(/*dirty=*/true);
  gt.AddMatch(9, 4);
  gt.AddMatch(0, 1);
  ASSERT_EQ(gt.pairs().size(), 2u);
  EXPECT_EQ(gt.pairs()[0], (MatchPair{4, 9}));  // normalised to left < right
  EXPECT_EQ(gt.pairs()[1], (MatchPair{0, 1}));
}

}  // namespace
}  // namespace gsmb
