#include "test_support.h"

#include "datasets/clean_clean_generator.h"
#include "datasets/dirty_generator.h"
#include "datasets/specs.h"
#include "util/random.h"

namespace gsmb::testing {

BlockCollection PaperExampleBlocks() {
  // Dirty ER over 7 entities (paper ids e1..e7 -> 0..6).
  BlockCollection bc(/*clean_clean=*/false, /*num_left=*/7, /*num_right=*/0);
  auto add = [&](const char* key, std::vector<EntityId> members) {
    Block b;
    b.key = key;
    b.left = std::move(members);
    bc.Add(std::move(b));
  };
  add("apple", {0, 2});
  add("iphone", {0, 2});
  add("samsung", {1, 3, 5, 6});
  add("20", {3, 4, 6});
  add("smartphone", {0, 1, 2, 3, 4});
  add("mate", {5, 6});
  add("phone", {5, 6});
  add("fold", {5, 6});
  return bc;
}

GroundTruth PaperExampleGroundTruth() {
  GroundTruth gt(/*dirty=*/true);
  gt.AddMatch(0, 2);
  gt.AddMatch(1, 3);
  gt.AddMatch(5, 6);
  return gt;
}

TinyCleanClean MakeTinyCleanClean() {
  TinyCleanClean t;
  auto add = [](EntityCollection& c, const char* id, const char* value) {
    EntityProfile p(id);
    p.AddAttribute("text", value);
    return c.Add(std::move(p));
  };
  EntityId a0 = add(t.e1, "a0", "alpha beta");
  EntityId a1 = add(t.e1, "a1", "gamma delta");
  add(t.e1, "a2", "alpha unique1");
  EntityId b0 = add(t.e2, "b0", "alpha beta");
  EntityId b1 = add(t.e2, "b1", "gamma epsilon");
  add(t.e2, "b2", "zeta eta");
  t.gt.AddMatch(a0, b0);
  t.gt.AddMatch(a1, b1);
  return t;
}

const PreparedDataset& MediumDataset() {
  static const PreparedDataset* dataset = [] {
    CleanCleanSpec spec = CleanCleanSpecByName("DblpAcm", /*scale=*/0.25);
    GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
    auto* prep = new PreparedDataset(PrepareCleanClean(
        spec.name, data.e1, data.e2, std::move(data.ground_truth)));
    return prep;
  }();
  return *dataset;
}

const PreparedDataset& SmallDirtyDataset() {
  static const PreparedDataset* dataset = [] {
    DirtySpec spec;
    spec.name = "DirtyTest";
    spec.num_entities = 1200;
    spec.seed = 99;
    GeneratedDirty data = DirtyGenerator().Generate(spec);
    auto* prep = new PreparedDataset(PrepareDirty(
        spec.name, data.entities, std::move(data.ground_truth)));
    return prep;
  }();
  return *dataset;
}

PruningFixture RandomPruningGraph(size_t num_nodes, double density,
                                  uint64_t seed) {
  PruningFixture f;
  Rng rng(seed);
  for (size_t i = 0; i < num_nodes; ++i) {
    for (size_t j = i + 1; j < num_nodes; ++j) {
      if (!rng.NextBool(density)) continue;
      f.pairs.push_back(
          {static_cast<EntityId>(i), static_cast<EntityId>(j)});
      f.probs.push_back(rng.NextDouble());
    }
  }
  f.context.num_nodes = num_nodes;
  f.context.right_offset = 0;
  f.context.validity_threshold = 0.5;
  f.context.cep_k = static_cast<double>(f.pairs.size()) / 3.0;
  f.context.cnp_k = 2.0;
  return f;
}

}  // namespace gsmb::testing
