// Run reports and the diff gate: a report must be self-describing valid
// JSON; two runs of the same spec must diff clean on the semantic fields
// across backends and thread counts; a single changed digest must be
// classified as semantic drift; malformed/mismatched documents must be
// rejected with a diagnostic.

#include "gsmb/report.h"

#include <gtest/gtest.h>

#include <string>

#include "api/json.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "gsmb/sweep.h"

namespace gsmb {
namespace {

JobSpec ServingCompatibleSpec() {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = 0.03;
  spec.blocking.filter_ratio = 1.0;  // serving cannot filter
  spec.training.labels_per_class = 15;
  spec.training.seed = 3;
  spec.execution.shards = 1;
  return spec;
}

std::string MustReport(const JobSpec& spec) {
  Engine engine;
  Result<JobResult> result = engine.Run(spec);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return obs::RunReportJson(spec, *result);
}

obs::ReportDiff MustDiff(const std::string& a, const std::string& b) {
  Result<obs::ReportDiff> diff = obs::DiffReports(a, b);
  EXPECT_TRUE(diff.ok()) << diff.status().message();
  return diff.ok() ? *diff : obs::ReportDiff{};
}

TEST(RunReport, IsValidSelfDescribingJson) {
  const std::string report = MustReport(ServingCompatibleSpec());
  Result<json::Value> parsed = json::Parse(report);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const json::Object& doc = parsed->AsObject();
  EXPECT_EQ(doc.Find("schema")->AsString(), obs::kRunReportSchema);
  EXPECT_EQ(doc.Find("schema_version")->AsU64(), obs::kReportSchemaVersion);
  for (const char* section :
       {"spec", "provenance", "metrics", "execution", "telemetry",
        "environment"}) {
    EXPECT_NE(doc.Find(section), nullptr) << "missing section " << section;
  }
  const json::Object& provenance = doc.Find("provenance")->AsObject();
  EXPECT_EQ(provenance.Find("retained_digest")->AsString().size(), 16u);
  EXPECT_EQ(provenance.Find("dataset_fingerprint")->AsString().size(), 16u);
  EXPECT_GT(provenance.Find("retained_count")->AsU64(), 0u);
}

TEST(ReportDiff, IdenticalReportIsNoDrift) {
  const std::string report = MustReport(ServingCompatibleSpec());
  const obs::ReportDiff diff = MustDiff(report, report);
  EXPECT_EQ(diff.kind, obs::DriftKind::kNone);
  EXPECT_TRUE(diff.semantic.empty());
  EXPECT_TRUE(diff.perf.empty());
}

TEST(ReportDiff, ThreadCountIsNeverSemanticDrift) {
  JobSpec one = ServingCompatibleSpec();
  one.execution.options.num_threads = 1;
  JobSpec eight = ServingCompatibleSpec();
  eight.execution.options.num_threads = 8;
  const obs::ReportDiff diff =
      MustDiff(MustReport(one), MustReport(eight));
  EXPECT_NE(diff.kind, obs::DriftKind::kSemantic);
  EXPECT_TRUE(diff.semantic.empty())
      << "first semantic line: " << diff.semantic.front();
}

TEST(ReportDiff, BackendIsNeverSemanticDrift) {
  JobSpec batch = ServingCompatibleSpec();
  batch.execution.mode = ExecutionMode::kBatch;
  JobSpec streaming = ServingCompatibleSpec();
  streaming.execution.mode = ExecutionMode::kStreaming;
  streaming.execution.shards = 6;
  JobSpec serving = ServingCompatibleSpec();
  serving.execution.mode = ExecutionMode::kServing;

  const std::string batch_report = MustReport(batch);
  const std::string streaming_report = MustReport(streaming);
  const std::string serving_report = MustReport(serving);

  for (const auto& [a, b] :
       {std::pair{&batch_report, &streaming_report},
        std::pair{&batch_report, &serving_report},
        std::pair{&streaming_report, &serving_report}}) {
    const obs::ReportDiff diff = MustDiff(*a, *b);
    EXPECT_NE(diff.kind, obs::DriftKind::kSemantic);
    EXPECT_TRUE(diff.semantic.empty())
        << "first semantic line: " << diff.semantic.front();
    // Backend name at minimum differs, so the runs are distinguishable.
    EXPECT_EQ(diff.kind, obs::DriftKind::kPerfOnly);
  }
}

TEST(ReportDiff, ChangedDigestIsSemanticDrift) {
  const std::string report = MustReport(ServingCompatibleSpec());
  // Inject a single-pair difference the way it would manifest: the
  // retained digest (and nothing else) changes.
  Result<json::Value> parsed = json::Parse(report);
  ASSERT_TRUE(parsed.ok());
  json::Object& provenance =
      parsed->AsObject().Find("provenance")->AsObject();
  std::string digest = provenance.Find("retained_digest")->AsString();
  digest[0] = digest[0] == '0' ? '1' : '0';
  (*provenance.Find("retained_digest")) = json::Value(digest);
  const std::string tampered = json::Dump(*parsed);

  const obs::ReportDiff diff = MustDiff(report, tampered);
  EXPECT_EQ(diff.kind, obs::DriftKind::kSemantic);
  ASSERT_EQ(diff.semantic.size(), 1u);
  EXPECT_NE(diff.semantic[0].find("retained_digest"), std::string::npos);
}

TEST(ReportDiff, ChangedSpecIsSemanticDrift) {
  JobSpec base = ServingCompatibleSpec();
  JobSpec different = ServingCompatibleSpec();
  different.training.seed = base.training.seed + 1;
  const obs::ReportDiff diff =
      MustDiff(MustReport(base), MustReport(different));
  EXPECT_EQ(diff.kind, obs::DriftKind::kSemantic);
}

TEST(ReportDiff, RejectsMalformedAndMismatchedDocuments) {
  const std::string report = MustReport(ServingCompatibleSpec());
  EXPECT_FALSE(obs::DiffReports("not json", report).ok());
  EXPECT_FALSE(obs::DiffReports("{\"schema\": \"bogus\"}", report).ok());

  SweepSpec sweep;
  sweep.base = ServingCompatibleSpec();
  sweep.axes.seeds = {3};
  Engine engine;
  Result<SweepResult> swept = engine.RunSweep(sweep);
  ASSERT_TRUE(swept.ok()) << swept.status().message();
  const std::string sweep_report = obs::SweepReportJson(sweep, *swept);
  EXPECT_FALSE(obs::DiffReports(report, sweep_report).ok());
}

TEST(SweepReport, DiffsVariantByVariantOnLabel) {
  SweepSpec sweep;
  sweep.base = ServingCompatibleSpec();
  sweep.axes.seeds = {3, 4};
  Engine engine;
  Result<SweepResult> first = engine.RunSweep(sweep);
  ASSERT_TRUE(first.ok()) << first.status().message();
  Result<SweepResult> second = engine.RunSweep(sweep);
  ASSERT_TRUE(second.ok()) << second.status().message();

  const std::string report_a = obs::SweepReportJson(sweep, *first);
  const std::string report_b = obs::SweepReportJson(sweep, *second);
  const obs::ReportDiff same = MustDiff(report_a, report_b);
  EXPECT_NE(same.kind, obs::DriftKind::kSemantic);
  EXPECT_TRUE(same.semantic.empty());

  // A variant missing on one side is semantic drift.
  SweepSpec narrower = sweep;
  narrower.axes.seeds = {3};
  Result<SweepResult> partial = engine.RunSweep(narrower);
  ASSERT_TRUE(partial.ok());
  const std::string report_partial =
      obs::SweepReportJson(narrower, *partial);
  const obs::ReportDiff missing = MustDiff(report_a, report_partial);
  EXPECT_EQ(missing.kind, obs::DriftKind::kSemantic);
}

}  // namespace
}  // namespace gsmb
