#include "ml/linear_svc.h"

#include <gtest/gtest.h>

#include "ml/platt.h"
#include "util/random.h"

namespace gsmb {
namespace {

void MakeSeparable2D(size_t n, Matrix* x, std::vector<int>* y) {
  *x = Matrix(n, 2);
  y->resize(n);
  Rng rng(17);
  for (size_t i = 0; i < n; ++i) {
    bool positive = i % 2 == 0;
    x->At(i, 0) = (positive ? 1.0 : -1.0) + 0.2 * rng.NextGaussian();
    x->At(i, 1) = rng.NextGaussian();
    (*y)[i] = positive ? 1 : 0;
  }
}

TEST(LinearSvc, SeparatesData) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable2D(60, &x, &y);
  LinearSvc model;
  model.Fit(x, y);
  size_t correct = 0;
  for (size_t i = 0; i < x.rows(); ++i) {
    double p = model.PredictProbability(x.Row(i));
    if ((p >= 0.5 ? 1 : 0) == y[i]) ++correct;
  }
  EXPECT_GE(correct, 58u);
}

TEST(LinearSvc, ProbabilityMonotoneInDecisionValue) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable2D(60, &x, &y);
  LinearSvc model;
  model.Fit(x, y);
  double prev_p = -1.0;
  double prev_f = -1e9;
  for (double v = -3.0; v <= 3.0; v += 0.25) {
    double row[2] = {v, 0.0};
    double f = model.DecisionValue(row);
    double p = model.PredictProbability(row);
    EXPECT_GT(f, prev_f);
    EXPECT_GE(p, prev_p);
    prev_f = f;
    prev_p = p;
  }
}

TEST(LinearSvc, ProbabilitiesBounded) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable2D(40, &x, &y);
  LinearSvc model;
  model.Fit(x, y);
  double hi[2] = {100.0, 0.0};
  double lo[2] = {-100.0, 0.0};
  EXPECT_LE(model.PredictProbability(hi), 1.0);
  EXPECT_GE(model.PredictProbability(hi), 0.5);
  EXPECT_GE(model.PredictProbability(lo), 0.0);
  EXPECT_LE(model.PredictProbability(lo), 0.5);
}

TEST(LinearSvc, Deterministic) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable2D(40, &x, &y);
  LinearSvc a;
  LinearSvc b;
  a.Fit(x, y);
  b.Fit(x, y);
  double probe[2] = {0.3, -0.2};
  EXPECT_DOUBLE_EQ(a.PredictProbability(probe), b.PredictProbability(probe));
}

TEST(LinearSvc, CoefficientsMatchDecisionValues) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable2D(40, &x, &y);
  LinearSvc model;
  model.Fit(x, y);
  std::vector<double> coef = model.CoefficientsWithIntercept();
  ASSERT_EQ(coef.size(), 3u);
  double probe[2] = {0.7, 0.1};
  double f = coef[2] + coef[0] * probe[0] + coef[1] * probe[1];
  EXPECT_NEAR(f, model.DecisionValue(probe), 1e-9);
}

TEST(Platt, FitsSigmoidOnCleanScores) {
  // Decision values already separate the classes; Platt should map
  // positives above 0.5 and negatives below.
  std::vector<double> f;
  std::vector<int> y;
  for (int i = 0; i < 20; ++i) {
    f.push_back(1.0 + 0.1 * i);
    y.push_back(1);
    f.push_back(-1.0 - 0.1 * i);
    y.push_back(0);
  }
  PlattScaler platt;
  platt.Fit(f, y);
  ASSERT_TRUE(platt.fitted());
  EXPECT_GT(platt.Transform(2.0), 0.5);
  EXPECT_LT(platt.Transform(-2.0), 0.5);
  EXPECT_LT(platt.a(), 0.0);  // higher decision value -> higher probability
}

TEST(Platt, MonotoneTransform) {
  std::vector<double> f = {-2, -1, -0.5, 0.5, 1, 2};
  std::vector<int> y = {0, 0, 0, 1, 1, 1};
  PlattScaler platt;
  platt.Fit(f, y);
  double prev = -1.0;
  for (double v = -3.0; v <= 3.0; v += 0.1) {
    double p = platt.Transform(v);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Platt, SmoothedTargetsAvoidSaturation) {
  std::vector<double> f = {-1, 1};
  std::vector<int> y = {0, 1};
  PlattScaler platt;
  platt.Fit(f, y);
  // With two points the smoothed targets keep probabilities off 0/1.
  EXPECT_GT(platt.Transform(-1.0), 0.0);
  EXPECT_LT(platt.Transform(1.0), 1.0);
}

TEST(Platt, ThrowsOnMismatch) {
  PlattScaler platt;
  std::vector<double> f = {1.0};
  std::vector<int> y = {1, 0};
  EXPECT_THROW(platt.Fit(f, y), std::invalid_argument);
  EXPECT_THROW(platt.Fit({}, {}), std::invalid_argument);
}

TEST(LinearSvc, ImbalancedClassesStillRankCorrectly) {
  // 5 positives, 45 negatives: ordering must survive the imbalance.
  Matrix x(50, 1);
  std::vector<int> y(50);
  Rng rng(23);
  for (size_t i = 0; i < 50; ++i) {
    bool positive = i < 5;
    x.At(i, 0) = (positive ? 2.0 : -2.0) + 0.3 * rng.NextGaussian();
    y[i] = positive ? 1 : 0;
  }
  LinearSvc model;
  model.Fit(x, y);
  double pos_probe[1] = {2.0};
  double neg_probe[1] = {-2.0};
  EXPECT_GT(model.PredictProbability(pos_probe),
            model.PredictProbability(neg_probe));
}

}  // namespace
}  // namespace gsmb
