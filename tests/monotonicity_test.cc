// Parameter-monotonicity properties: sweeping a preprocessing or algorithm
// knob must move aggregate quantities in the predictable direction.

#include <gtest/gtest.h>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "blocking/token_blocking.h"
#include "core/pipeline.h"
#include "datasets/clean_clean_generator.h"
#include "datasets/specs.h"
#include "test_support.h"

namespace gsmb {
namespace {

class FilterRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(FilterRatioSweep, SmallerRatioNeverAddsComparisons) {
  CleanCleanSpec spec = CleanCleanSpecByName("ImdbTmdb", 0.05);
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
  BlockCollection raw =
      BlockPurging().Apply(TokenBlocking().Build(data.e1, data.e2));

  const double ratio = GetParam();
  BlockCollection filtered = BlockFiltering(ratio).Apply(raw);
  BlockCollection smaller = BlockFiltering(ratio * 0.5).Apply(raw);
  EXPECT_LE(smaller.TotalComparisons(), filtered.TotalComparisons());
  EXPECT_LE(filtered.TotalComparisons(), raw.TotalComparisons());
}

INSTANTIATE_TEST_SUITE_P(Ratios, FilterRatioSweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0));

class PurgeFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(PurgeFractionSweep, SmallerFractionPurgesMore) {
  BlockCollection bc = testing::PaperExampleBlocks();
  const double fraction = GetParam();
  BlockCollection loose = BlockPurging(fraction).Apply(bc);
  BlockCollection strict = BlockPurging(fraction * 0.5).Apply(bc);
  EXPECT_LE(strict.size(), loose.size());
  EXPECT_LE(loose.size(), bc.size());
}

INSTANTIATE_TEST_SUITE_P(Fractions, PurgeFractionSweep,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

class BlastRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(BlastRatioSweep, HigherRatioRetainsFewer) {
  testing::PruningFixture f = testing::RandomPruningGraph(50, 0.3, 17);
  auto algorithm = MakePruningAlgorithm(PruningKind::kBlast);
  PruningContext low = f.context;
  low.blast_ratio = GetParam();
  PruningContext high = f.context;
  high.blast_ratio = GetParam() + 0.15;
  EXPECT_GE(algorithm->Prune(f.pairs, f.probs, low).size(),
            algorithm->Prune(f.pairs, f.probs, high).size());
}

INSTANTIATE_TEST_SUITE_P(Ratios, BlastRatioSweep,
                         ::testing::Values(0.05, 0.2, 0.35, 0.5, 0.65));

class CnpBudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(CnpBudgetSweep, LargerBudgetRetainsMore) {
  testing::PruningFixture f = testing::RandomPruningGraph(50, 0.3, 23);
  auto cnp = MakePruningAlgorithm(PruningKind::kCnp);
  PruningContext small = f.context;
  small.cnp_k = GetParam();
  PruningContext large = f.context;
  large.cnp_k = GetParam() * 2;
  EXPECT_LE(cnp->Prune(f.pairs, f.probs, small).size(),
            cnp->Prune(f.pairs, f.probs, large).size());
}

INSTANTIATE_TEST_SUITE_P(Budgets, CnpBudgetSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

class CepBudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(CepBudgetSweep, RetainedCountTracksBudgetExactly) {
  testing::PruningFixture f = testing::RandomPruningGraph(40, 0.4, 29);
  size_t valid = 0;
  for (double p : f.probs) valid += (p >= 0.5) ? 1 : 0;
  auto cep = MakePruningAlgorithm(PruningKind::kCep);
  PruningContext ctx = f.context;
  ctx.cep_k = GetParam();
  auto retained = cep->Prune(f.pairs, f.probs, ctx);
  EXPECT_EQ(retained.size(),
            std::min(valid, static_cast<size_t>(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(Budgets, CepBudgetSweep,
                         ::testing::Values(1.0, 5.0, 20.0, 1000.0));

TEST(TrainingSizeMonotonicity, MoreLabelsNeverShrinkTrainingSet) {
  const PreparedDataset& prep = testing::MediumDataset();
  size_t last = 0;
  for (size_t per_class : {5, 10, 25, 50}) {
    MetaBlockingConfig config;
    config.train_per_class = per_class;
    MetaBlockingResult r = RunMetaBlocking(prep, config);
    EXPECT_GE(r.training_size, last);
    last = r.training_size;
  }
}

}  // namespace
}  // namespace gsmb
