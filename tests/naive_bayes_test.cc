#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "test_support.h"
#include "util/random.h"

namespace gsmb {
namespace {

void MakeSeparable(size_t n, Matrix* x, std::vector<int>* y) {
  *x = Matrix(n, 2);
  y->resize(n);
  Rng rng(31);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    x->At(i, 0) = (positive ? 2.0 : -2.0) + 0.4 * rng.NextGaussian();
    x->At(i, 1) = rng.NextGaussian();
    (*y)[i] = positive ? 1 : 0;
  }
}

TEST(NaiveBayes, SeparatesGaussianClasses) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable(80, &x, &y);
  GaussianNaiveBayes model;
  model.Fit(x, y);
  size_t correct = 0;
  for (size_t i = 0; i < x.rows(); ++i) {
    if ((model.PredictProbability(x.Row(i)) >= 0.5 ? 1 : 0) == y[i]) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 78u);
}

TEST(NaiveBayes, ProbabilitiesInUnitInterval) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable(40, &x, &y);
  GaussianNaiveBayes model;
  model.Fit(x, y);
  for (double v : {-100.0, -1.0, 0.0, 1.0, 100.0}) {
    double row[2] = {v, 0.0};
    double p = model.PredictProbability(row);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(NaiveBayes, MonotoneAlongInformativeFeature) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable(200, &x, &y);
  GaussianNaiveBayes model;
  model.Fit(x, y);
  double lo[2] = {-2.0, 0.0};
  double mid[2] = {0.0, 0.0};
  double hi[2] = {2.0, 0.0};
  EXPECT_LT(model.PredictProbability(lo), model.PredictProbability(mid));
  EXPECT_LT(model.PredictProbability(mid), model.PredictProbability(hi));
}

TEST(NaiveBayes, SingleClassPredictsThatClass) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x.At(i, 0) = static_cast<double>(i);
  GaussianNaiveBayes model;
  model.Fit(x, {1, 1, 1, 1});
  double row[1] = {2.0};
  EXPECT_DOUBLE_EQ(model.PredictProbability(row), 1.0);
  GaussianNaiveBayes negative;
  negative.Fit(x, {0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(negative.PredictProbability(row), 0.0);
}

TEST(NaiveBayes, ImbalancedPriorsShiftProbability) {
  // Same likelihoods, different priors: the majority class should win at
  // the midpoint.
  Matrix x(10, 1);
  std::vector<int> y(10);
  for (size_t i = 0; i < 10; ++i) {
    const bool positive = i < 8;
    x.At(i, 0) = positive ? 1.0 + 0.01 * static_cast<double>(i)
                          : -1.0 - 0.01 * static_cast<double>(i);
    y[i] = positive ? 1 : 0;
  }
  GaussianNaiveBayes model;
  model.Fit(x, y);
  double mid[1] = {0.0};
  EXPECT_GT(model.PredictProbability(mid), 0.5);
}

TEST(NaiveBayes, ThrowsOnBadInput) {
  GaussianNaiveBayes model;
  Matrix empty;
  EXPECT_THROW(model.Fit(empty, {}), std::invalid_argument);
}

TEST(NaiveBayes, NoLinearCoefficients) {
  Matrix x;
  std::vector<int> y;
  MakeSeparable(20, &x, &y);
  GaussianNaiveBayes model;
  model.Fit(x, y);
  EXPECT_TRUE(model.CoefficientsWithIntercept().empty());
}

TEST(NaiveBayes, WorksInsidePipeline) {
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  config.classifier = ClassifierKind::kGaussianNaiveBayes;
  config.pruning = PruningKind::kBlast;
  config.features = FeatureSet::BlastOptimal();
  config.train_per_class = 25;
  MetaBlockingResult result = RunMetaBlocking(prep, config);
  EXPECT_GT(result.metrics.recall, 0.5);
  EXPECT_GT(result.metrics.precision, prep.blocking_quality.precision);
}

TEST(NaiveBayes, FactoryIntegration) {
  auto model = MakeClassifier(ClassifierKind::kGaussianNaiveBayes);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->Name(), "GaussianNaiveBayes");
  EXPECT_STREQ(ClassifierKindName(ClassifierKind::kGaussianNaiveBayes),
               "GaussianNaiveBayes");
}

}  // namespace
}  // namespace gsmb
