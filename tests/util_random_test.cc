#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace gsmb {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(1000), b.NextUint64(1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64(1'000'000) != b.NextUint64(1'000'000)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(Rng, NextUint64Bounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(Rng, NextUint64BoundOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.NextUint64(1), 0u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  // Endpoints are reachable.
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleRange) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    double v = rng.NextDouble(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // overwhelmingly likely
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  std::vector<size_t> s = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (size_t x : s) EXPECT_LT(x, 50u);
}

TEST(Rng, SampleWithoutReplacementClampsToN) {
  Rng rng(31);
  std::vector<size_t> s = rng.SampleWithoutReplacement(5, 100);
  EXPECT_EQ(s.size(), 5u);
  std::set<size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(41);
  Rng fork = a.Fork();
  // The fork should not replay the parent's sequence.
  Rng b(41);
  b.Fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (fork.NextUint64(1'000'000) == b.NextUint64(1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Zipf, RanksWithinBounds) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Next(&rng), 100u);
  }
}

TEST(Zipf, HeadIsMostFrequent) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(47);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
  // Rank 0 of a Zipf(1.0) over 50 ranks has probability 1/H_50 ~ 0.222.
  EXPECT_NEAR(counts[0] / 20000.0, 0.222, 0.03);
}

TEST(Zipf, SingleRank) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(53);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Next(&rng), 0u);
}


TEST(SampleWithoutReplacementSparse, MatchesDenseDrawForDraw) {
  for (uint64_t seed : {1u, 9u, 42u}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{10}, size_t{1000}}) {
      for (size_t k : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
        Rng dense(seed);
        Rng sparse(seed);
        EXPECT_EQ(dense.SampleWithoutReplacement(n, k),
                  sparse.SampleWithoutReplacementSparse(n, k))
            << "seed=" << seed << " n=" << n << " k=" << k;
        // Both must leave the engine in the same state (same draw count).
        EXPECT_EQ(dense.NextUint64(1u << 30), sparse.NextUint64(1u << 30));
      }
    }
  }
}

TEST(SampleWithoutReplacementSparse, LargePopulationStaysDistinct) {
  Rng rng(123);
  const std::vector<size_t> sample =
      rng.SampleWithoutReplacementSparse(size_t{1} << 40, 500);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), sample.size());
  for (size_t v : sample) EXPECT_LT(v, size_t{1} << 40);
}

class RngBoundsSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundsSweep, UniformCoversRange) {
  Rng rng(GetParam());
  std::set<uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.NextUint64(8));
  EXPECT_EQ(seen.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundsSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace gsmb
