// Structured event log: the no-sink fast path, level filtering, the
// deterministic (tid, seq) merge order, JSONL export shape, and the
// acceptance guarantee that enabling logging never changes what a run
// computes.

#include "gsmb/log.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/json.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"

namespace gsmb {
namespace {

/// Installs `sink` for the scope of one test; never leaks the install
/// into the next test even on assertion failure.
class LogInstallation {
 public:
  explicit LogInstallation(obs::LogSink* sink) { obs::InstallLogSink(sink); }
  ~LogInstallation() { obs::InstallLogSink(nullptr); }
};

TEST(EventLog, NoSinkMeansNoWorkAndNoCrash) {
  ASSERT_EQ(obs::CurrentLogSink(), nullptr);
  // The field list must not even be constructed: if it were, the
  // side-effecting expression below would bump the counter.
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("value");
  };
  GSMB_LOG_INFO("test.event", {"key", expensive()});
  EXPECT_EQ(evaluations, 0);
}

TEST(EventLog, RecordsCarryLevelEventAndFields) {
  obs::LogSink sink;
  LogInstallation install(&sink);
  GSMB_LOG_INFO("alpha", {"count", uint64_t{7}}, {"name", "blast"});
  GSMB_LOG_WARN("beta");
  const std::vector<obs::LogRecord> records = sink.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].event, "alpha");
  EXPECT_EQ(records[0].level, obs::LogLevel::kInfo);
  ASSERT_EQ(records[0].fields.size(), 2u);
  EXPECT_EQ(records[0].fields[0].key, "count");
  EXPECT_EQ(records[0].fields[0].u64, 7u);
  EXPECT_EQ(records[0].fields[1].str, "blast");
  EXPECT_EQ(records[1].event, "beta");
  EXPECT_EQ(records[1].level, obs::LogLevel::kWarn);
}

TEST(EventLog, MinLevelFiltersBelow) {
  obs::LogSink sink(obs::LogLevel::kWarn);
  LogInstallation install(&sink);
  GSMB_LOG_DEBUG("dropped.debug");
  GSMB_LOG_INFO("dropped.info");
  GSMB_LOG_WARN("kept.warn");
  GSMB_LOG_ERROR("kept.error");
  const std::vector<obs::LogRecord> records = sink.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].event, "kept.warn");
  EXPECT_EQ(records[1].event, "kept.error");
}

TEST(EventLog, MergeOrderIsTidThenSeqNeverTimestamp) {
  obs::LogSink sink;
  LogInstallation install(&sink);
  // Several threads log interleaved; the merged order must be fully
  // determined by (registration order, per-thread sequence), i.e. stable
  // across reruns regardless of scheduling.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        GSMB_LOG_INFO("thread.event", {"thread", t}, {"i", i});
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<obs::LogRecord> records = sink.Records();
  ASSERT_EQ(records.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  for (size_t i = 1; i < records.size(); ++i) {
    const bool ordered =
        records[i - 1].tid < records[i].tid ||
        (records[i - 1].tid == records[i].tid &&
         records[i - 1].seq < records[i].seq);
    ASSERT_TRUE(ordered) << "record " << i << " out of (tid, seq) order";
  }
  // Within one thread, seq is dense from 0.
  uint64_t expected_seq = 0;
  uint32_t current_tid = records[0].tid;
  for (const obs::LogRecord& record : records) {
    if (record.tid != current_tid) {
      current_tid = record.tid;
      expected_seq = 0;
    }
    EXPECT_EQ(record.seq, expected_seq);
    ++expected_seq;
  }
}

TEST(EventLog, JsonLinesParseAndRoundTripFieldKinds) {
  obs::LogSink sink;
  LogInstallation install(&sink);
  GSMB_LOG_INFO("kinds", {"s", "text"}, {"u", uint64_t{42}},
                {"i", int64_t{-3}}, {"f", 2.5}, {"b", true});
  const std::string lines = sink.JsonLines();
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), '\n');
  Result<json::Value> parsed =
      json::Parse(lines.substr(0, lines.find('\n')));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const json::Object& record = parsed->AsObject();
  EXPECT_EQ(record.Find("event")->AsString(), "kinds");
  EXPECT_EQ(record.Find("level")->AsString(), "info");
  ASSERT_NE(record.Find("fields"), nullptr);
  const json::Object& fields = record.Find("fields")->AsObject();
  EXPECT_EQ(fields.Find("s")->AsString(), "text");
  EXPECT_EQ(fields.Find("u")->AsU64(), 42u);
  EXPECT_DOUBLE_EQ(fields.Find("i")->AsDouble(), -3.0);
  EXPECT_DOUBLE_EQ(fields.Find("f")->AsDouble(), 2.5);
  EXPECT_TRUE(fields.Find("b")->AsBool());
}

TEST(EventLog, EngineRunEmitsPipelineEvents) {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = 0.02;
  spec.training.labels_per_class = 10;

  obs::LogSink sink;
  LogInstallation install(&sink);
  Engine engine;
  Result<JobResult> result = engine.Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().message();

  bool saw_prepare = false, saw_run = false;
  for (const obs::LogRecord& record : sink.Records()) {
    if (record.event == "prepare.done") saw_prepare = true;
    if (record.event == "run.done") saw_run = true;
  }
  EXPECT_TRUE(saw_prepare);
  EXPECT_TRUE(saw_run);
}

TEST(EventLog, LoggingNeverChangesTheRetainedSet) {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = 0.02;
  spec.training.labels_per_class = 10;

  Engine quiet_engine;
  Result<JobResult> quiet = quiet_engine.Run(spec);
  ASSERT_TRUE(quiet.ok());

  obs::LogSink sink;
  JobResult logged;
  {
    LogInstallation install(&sink);
    Engine logged_engine;
    Result<JobResult> run = logged_engine.Run(spec);
    ASSERT_TRUE(run.ok());
    logged = *run;
  }
  EXPECT_FALSE(sink.Records().empty());
  EXPECT_EQ(quiet->retained_digest, logged.retained_digest);
  EXPECT_EQ(quiet->retained_count, logged.retained_count);
  EXPECT_EQ(quiet->metrics.retained, logged.metrics.retained);
}

}  // namespace
}  // namespace gsmb
