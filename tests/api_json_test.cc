// The JSON layer under the JobSpec: parse/dump round-trips, ordering
// guarantees, exact integer preservation, and diagnostic positions.

#include "api/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace gsmb::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("-2.5")->AsDouble(), -2.5);
  EXPECT_DOUBLE_EQ(Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParse, IntegersKeepExactU64Form) {
  const uint64_t big = std::numeric_limits<uint64_t>::max();
  Result<Value> parsed = Parse("18446744073709551615");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->is_u64());
  EXPECT_EQ(parsed->AsU64(), big);
  // And the exact form survives a dump/parse cycle.
  Result<Value> again = Parse(Dump(*parsed));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->AsU64(), big);
}

TEST(JsonParse, NegativeAndFractionalAreNotU64) {
  EXPECT_FALSE(Parse("-3")->is_u64());
  EXPECT_FALSE(Parse("3.5")->is_u64());
  EXPECT_FALSE(Parse("3e2")->is_u64());
}

TEST(JsonParse, NestedStructures) {
  Result<Value> parsed =
      Parse(R"({"a": [1, {"b": "x"}, null], "c": {"d": true}})");
  ASSERT_TRUE(parsed.ok());
  const Object& root = parsed->AsObject();
  const Array& a = root.Find("a")->AsArray();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[1].AsObject().Find("b")->AsString(), "x");
  EXPECT_TRUE(a[2].is_null());
  EXPECT_TRUE(root.Find("c")->AsObject().Find("d")->AsBool());
}

TEST(JsonParse, StringEscapes) {
  Result<Value> parsed = Parse(R"("line\nquote\"back\\slash\/uA")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "line\nquote\"back\\slash/uA");
}

TEST(JsonParse, UnicodeSurrogatePair) {
  Result<Value> parsed = Parse(R"("😀")");  // U+1F600
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "\xF0\x9F\x98\x80");
  EXPECT_FALSE(Parse(R"("\uD83D")").ok());  // unpaired high surrogate
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  Result<Value> parsed = Parse("{\n  \"a\": 1,\n  \"b\": }\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos)
      << parsed.status().message();
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("nul").ok());
  EXPECT_FALSE(Parse("1 2").ok());          // trailing content
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("{\"a\":1,\"a\":2}").ok());  // duplicate key
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonDump, ObjectsKeepInsertionOrder) {
  Object object;
  object["zebra"] = Value(1);
  object["alpha"] = Value(2);
  object["mid"] = Value(3);
  EXPECT_EQ(Dump(Value(std::move(object)), 0),
            R"({"zebra":1,"alpha":2,"mid":3})");
}

TEST(JsonDump, RoundTripsDoubles) {
  const double value = 0.35;
  Result<Value> again = Parse(Dump(Value(value)));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->AsDouble(), value);  // bit-exact through shortest form
}

TEST(JsonDump, EscapesControlCharacters) {
  const std::string input = std::string("a\tb") + static_cast<char>(1);
  EXPECT_EQ(Dump(Value(input), 0), "\"a\\tb\\u0001\"");
}

TEST(JsonDump, IndentedFormIsStable) {
  Object inner;
  inner["k"] = Value("v");
  Object root;
  root["num"] = Value(7);
  root["obj"] = Value(std::move(inner));
  root["arr"] = Value(Array{Value(1), Value(2)});
  const std::string expected =
      "{\n"
      "  \"num\": 7,\n"
      "  \"obj\": {\n"
      "    \"k\": \"v\"\n"
      "  },\n"
      "  \"arr\": [\n"
      "    1,\n"
      "    2\n"
      "  ]\n"
      "}";
  EXPECT_EQ(Dump(Value(std::move(root)), 2), expected);
}

}  // namespace
}  // namespace gsmb::json
