// Shared fixtures for the GSMB test suite.

#ifndef GSMB_TESTS_TEST_SUPPORT_H_
#define GSMB_TESTS_TEST_SUPPORT_H_

#include <vector>

#include "blocking/block_collection.h"
#include "blocking/candidate_pairs.h"
#include "core/pipeline.h"
#include "er/entity_collection.h"
#include "er/ground_truth.h"

namespace gsmb::testing {

/// The running example of the paper's Figure 1: seven smartphone profiles
/// (Dirty ER) and the eight Token Blocking blocks
///   b1(apple):      e1 e3
///   b2(iphone):     e1 e3
///   b3(samsung):    e2 e4 e6 e7
///   b4(20):         e4 e5 e7
///   b5(smartphone): e1 e2 e3 e4 e5
///   b6(mate):       e6 e7
///   b7(phone):      e6 e7
///   b8(fold):       e6 e7
/// Entity ids are 0-based (paper's e1 == id 0). Ground truth: (e1,e3),
/// (e2,e4), (e6,e7).
BlockCollection PaperExampleBlocks();

/// Ground truth matching PaperExampleBlocks() (Dirty semantics, 0-based).
GroundTruth PaperExampleGroundTruth();

/// A small Clean-Clean pair of collections with fully known tokens:
///   E1: a0{"alpha beta"}, a1{"gamma delta"}, a2{"alpha unique1"}
///   E2: b0{"alpha beta"}, b1{"gamma epsilon"}, b2{"zeta eta"}
/// Matches: (a0, b0), (a1, b1).
struct TinyCleanClean {
  EntityCollection e1;
  EntityCollection e2;
  GroundTruth gt;
};
TinyCleanClean MakeTinyCleanClean();

/// A prepared medium synthetic Clean-Clean dataset for pipeline tests
/// (cached across tests — preparation is deterministic).
const PreparedDataset& MediumDataset();

/// A prepared small Dirty dataset.
const PreparedDataset& SmallDirtyDataset();

/// Builds candidate pairs (left < right grouped) and a context for a
/// synthetic pruning graph over `num_nodes` dirty-ER nodes.
struct PruningFixture {
  std::vector<CandidatePair> pairs;
  std::vector<double> probs;
  PruningContext context;
};

/// Deterministic random pruning graph: every node pair is a candidate with
/// probability `density`; probabilities uniform in [0,1].
PruningFixture RandomPruningGraph(size_t num_nodes, double density,
                                  uint64_t seed);

}  // namespace gsmb::testing

#endif  // GSMB_TESTS_TEST_SUPPORT_H_
