#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsmb {
namespace {

TEST(Prepare, CleanCleanProducesConsistentState) {
  const PreparedDataset& prep = testing::MediumDataset();
  EXPECT_TRUE(prep.clean_clean);
  EXPECT_GT(prep.blocks.size(), 0u);
  EXPECT_GT(prep.pairs.size(), 0u);
  EXPECT_EQ(prep.is_positive.size(), prep.pairs.size());
  // is_positive agrees with the ground truth.
  for (size_t i = 0; i < prep.pairs.size(); i += 97) {
    EXPECT_EQ(prep.is_positive[i] != 0,
              prep.ground_truth.IsMatch(prep.pairs[i].left,
                                        prep.pairs[i].right));
  }
  // Blocking quality measures are consistent.
  EXPECT_GT(prep.blocking_quality.recall, 0.5);
  EXPECT_LT(prep.blocking_quality.precision, 0.5);
  EXPECT_EQ(prep.blocking_quality.num_candidates, prep.pairs.size());
}

TEST(Prepare, DirtyProducesConsistentState) {
  const PreparedDataset& prep = testing::SmallDirtyDataset();
  EXPECT_FALSE(prep.clean_clean);
  EXPECT_GT(prep.pairs.size(), 0u);
  EXPECT_GT(prep.blocking_quality.recall, 0.5);
}

TEST(Prepare, MismatchedGroundTruthSemanticsThrow) {
  testing::TinyCleanClean t = testing::MakeTinyCleanClean();
  GroundTruth dirty_gt(/*dirty=*/true);
  EXPECT_THROW(PrepareCleanClean("x", t.e1, t.e2, dirty_gt),
               std::invalid_argument);
  GroundTruth clean_gt(/*dirty=*/false);
  EXPECT_THROW(PrepareDirty("x", t.e1, clean_gt), std::invalid_argument);
}

TEST(Prepare, FromBlocksSkipsPreprocessing) {
  BlockCollection bc = testing::PaperExampleBlocks();
  PreparedDataset prep = PrepareFromBlocks(
      "paper", bc, testing::PaperExampleGroundTruth());
  EXPECT_EQ(prep.pairs.size(), 16u);
  EXPECT_DOUBLE_EQ(prep.blocking_quality.recall, 1.0);
  EXPECT_DOUBLE_EQ(prep.stats.cep_k, 11.0);
}

TEST(EvaluateRetained, Arithmetic) {
  std::vector<uint8_t> is_positive = {1, 0, 1, 0, 0};
  EffectivenessMetrics m = EvaluateRetained({0, 1, 2}, is_positive, 4);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.retained, 3u);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_NEAR(m.f1, 2 * 0.5 * (2.0 / 3) / (0.5 + 2.0 / 3), 1e-12);
}

TEST(EvaluateRetained, EmptyRetention) {
  std::vector<uint8_t> is_positive = {1, 0};
  EffectivenessMetrics m = EvaluateRetained({}, is_positive, 2);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(RunMetaBlocking, EndToEndProducesSaneMetrics) {
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  config.pruning = PruningKind::kBlast;
  config.features = FeatureSet::BlastOptimal();
  config.train_per_class = 25;
  config.seed = 0;
  MetaBlockingResult result = RunMetaBlocking(prep, config);
  EXPECT_GE(result.metrics.recall, 0.0);
  EXPECT_LE(result.metrics.recall, 1.0);
  EXPECT_GE(result.metrics.precision, 0.0);
  EXPECT_LE(result.metrics.precision, 1.0);
  EXPECT_GT(result.metrics.retained, 0u);
  EXPECT_LT(result.metrics.retained, prep.pairs.size());
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_EQ(result.training_size, 50u);
  // Coefficients: 4 features + intercept.
  EXPECT_EQ(result.model_coefficients.size(), 5u);
  // Meta-blocking must sharply improve precision over raw blocking.
  EXPECT_GT(result.metrics.precision, 2.0 * prep.blocking_quality.precision);
}

TEST(RunMetaBlocking, KeepFlagsPopulateOutputs) {
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  config.keep_probabilities = true;
  config.keep_retained = true;
  config.train_per_class = 25;
  MetaBlockingResult result = RunMetaBlocking(prep, config);
  EXPECT_EQ(result.probabilities.size(), prep.pairs.size());
  EXPECT_EQ(result.retained_indices.size(), result.metrics.retained);
  for (double p : result.probabilities) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RunMetaBlocking, DeterministicGivenSeed) {
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  config.train_per_class = 25;
  config.seed = 7;
  MetaBlockingResult a = RunMetaBlocking(prep, config);
  MetaBlockingResult b = RunMetaBlocking(prep, config);
  EXPECT_EQ(a.metrics.retained, b.metrics.retained);
  EXPECT_DOUBLE_EQ(a.metrics.recall, b.metrics.recall);
  EXPECT_DOUBLE_EQ(a.metrics.precision, b.metrics.precision);
}

TEST(RunMetaBlocking, DifferentSeedsVarySample) {
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  config.train_per_class = 10;
  config.seed = 1;
  MetaBlockingResult a = RunMetaBlocking(prep, config);
  config.seed = 2;
  MetaBlockingResult b = RunMetaBlocking(prep, config);
  // Different training samples almost surely change the retained count.
  EXPECT_NE(a.model_coefficients, b.model_coefficients);
}

TEST(RunMetaBlocking, WithPrecomputedFeaturesValidatesShape) {
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  Matrix wrong_rows(3, config.features.Dimensions());
  EXPECT_THROW(RunMetaBlockingWithFeatures(prep, config, wrong_rows),
               std::invalid_argument);
  Matrix wrong_cols(prep.pairs.size(), 1);
  EXPECT_THROW(RunMetaBlockingWithFeatures(prep, config, wrong_cols),
               std::invalid_argument);
}

TEST(RunMetaBlocking, SvcClassifierWorks) {
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  config.classifier = ClassifierKind::kLinearSvc;
  config.train_per_class = 25;
  MetaBlockingResult result = RunMetaBlocking(prep, config);
  EXPECT_GT(result.metrics.f1, 0.0);
}

TEST(RunMetaBlocking, AllPruningKindsProduceResults) {
  const PreparedDataset& prep = testing::MediumDataset();
  for (PruningKind kind : AllPruningKinds()) {
    MetaBlockingConfig config;
    config.pruning = kind;
    config.train_per_class = 25;
    MetaBlockingResult result = RunMetaBlocking(prep, config);
    EXPECT_GT(result.metrics.retained, 0u) << PruningKindName(kind);
  }
}

}  // namespace
}  // namespace gsmb
