// Streaming-vs-batch equivalence: the StreamingExecutor must retain pairs
// BIT-IDENTICAL to RunMetaBlocking for all 8 pruning kinds, at every
// tested shard count x thread count, on both Clean-Clean and Dirty
// fixtures. This is the load-bearing guarantee of stream/ — everything
// else (memory bounds, sweeps, sinks) is checked afterwards.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/candidate_pairs.h"
#include "core/pipeline.h"
#include "datasets/dirty_generator.h"
#include "datasets/specs.h"
#include "stream/streaming_dataset.h"
#include "stream/streaming_executor.h"
#include "test_support.h"

namespace gsmb {
namespace {

using testing::MediumDataset;
using testing::SmallDirtyDataset;

StreamingDataset StreamingTwin(const PreparedDataset& prep) {
  return PrepareStreamingFromBlocks(prep.name, prep.blocks,
                                    prep.ground_truth, /*num_threads=*/2);
}

MetaBlockingConfig BaseConfig(PruningKind kind) {
  MetaBlockingConfig config;
  config.features = FeatureSet::BlastOptimal();
  config.pruning = kind;
  config.train_per_class = 25;
  config.seed = 7;
  config.keep_retained = true;
  return config;
}

void ExpectIdentical(const MetaBlockingResult& batch,
                     const StreamingResult& stream, PruningKind kind,
                     size_t shards, size_t threads) {
  SCOPED_TRACE(std::string(PruningKindName(kind)) + " shards=" +
               std::to_string(shards) + " threads=" +
               std::to_string(threads));
  EXPECT_EQ(batch.retained_indices, stream.retained_indices);
  EXPECT_EQ(batch.metrics.retained, stream.metrics.retained);
  EXPECT_EQ(batch.metrics.true_positives, stream.metrics.true_positives);
  EXPECT_EQ(batch.metrics.recall, stream.metrics.recall);
  EXPECT_EQ(batch.metrics.precision, stream.metrics.precision);
  EXPECT_EQ(batch.metrics.f1, stream.metrics.f1);
  EXPECT_EQ(batch.training_size, stream.training_size);
  EXPECT_EQ(batch.model_coefficients, stream.model_coefficients);
}

void RunEquivalenceSweep(const PreparedDataset& prep) {
  const StreamingDataset twin = StreamingTwin(prep);
  ASSERT_EQ(prep.pairs.size(), twin.num_candidates());
  for (PruningKind kind : AllPruningKinds()) {
    const MetaBlockingConfig config = BaseConfig(kind);
    const MetaBlockingResult batch = RunMetaBlocking(prep, config);
    for (size_t shards : {size_t{1}, size_t{4}, size_t{128}}) {
      for (size_t threads : {size_t{1}, size_t{8}}) {
        StreamingOptions options;
        options.num_shards = shards;
        MetaBlockingConfig stream_config = config;
        stream_config.execution.num_threads = threads;
        const StreamingResult stream =
            StreamingExecutor(twin, options).Run(stream_config);
        ExpectIdentical(batch, stream, kind, shards, threads);
      }
    }
  }
}

TEST(StreamExecutorTest, PreparationMatchesBatchGeometry) {
  const PreparedDataset& prep = MediumDataset();
  const StreamingDataset twin = StreamingTwin(prep);

  ASSERT_EQ(twin.num_candidates(), prep.pairs.size());
  ASSERT_EQ(twin.pivot_offsets.size(),
            NumCandidatePivots(*prep.index) + 1);
  // The offsets must reproduce the grouped-by-pivot order of the batch
  // candidate list.
  for (size_t i = 0; i < prep.pairs.size(); ++i) {
    const size_t pivot = prep.pairs[i].left;
    EXPECT_GE(i, twin.pivot_offsets[pivot]);
    EXPECT_LT(i, twin.pivot_offsets[pivot + 1]);
  }
  // positive_indices are exactly the ascending candidate indices the batch
  // path labels positive.
  std::vector<uint64_t> expected;
  for (size_t i = 0; i < prep.is_positive.size(); ++i) {
    if (prep.is_positive[i]) expected.push_back(i);
  }
  EXPECT_EQ(expected, twin.positive_indices);
  EXPECT_EQ(prep.blocking_quality.num_candidates,
            twin.blocking_quality.num_candidates);
  EXPECT_EQ(prep.blocking_quality.duplicates_covered,
            twin.blocking_quality.duplicates_covered);
  EXPECT_EQ(prep.blocking_quality.recall, twin.blocking_quality.recall);
  EXPECT_EQ(prep.blocking_quality.precision,
            twin.blocking_quality.precision);
  EXPECT_EQ(prep.blocking_quality.f1, twin.blocking_quality.f1);
}

TEST(StreamExecutorTest, AllKindsMatchBatchCleanClean) {
  RunEquivalenceSweep(MediumDataset());
}

TEST(StreamExecutorTest, AllKindsMatchBatchDirty) {
  RunEquivalenceSweep(SmallDirtyDataset());
}

// LCP forces the precomputed-per-entity path (and the 2014 feature set is
// the one whose rows depend on a feature the shard cannot see locally).
TEST(StreamExecutorTest, LcpFeaturesMatchBatch) {
  const PreparedDataset& prep = MediumDataset();
  const StreamingDataset twin = StreamingTwin(prep);
  MetaBlockingConfig config = BaseConfig(PruningKind::kRcnp);
  config.features = FeatureSet::Paper2014();
  const MetaBlockingResult batch = RunMetaBlocking(prep, config);
  StreamingOptions options;
  options.num_shards = 5;
  MetaBlockingConfig stream_config = config;
  stream_config.execution.num_threads = 4;
  const StreamingResult stream =
      StreamingExecutor(twin, options).Run(stream_config);
  ExpectIdentical(batch, stream, config.pruning, 5, 4);
}

// A dataset large enough for dozens of chunks, so shard boundaries cut
// through pivot groups many times (the truncated-group path).
TEST(StreamExecutorTest, ManyShardDirtyDatasetMatchesBatch) {
  DirtySpec spec;
  spec.name = "StreamD6K";
  spec.num_entities = 6000;
  spec.seed = 5;
  GeneratedDirty data = DirtyGenerator().Generate(spec);
  GroundTruth gt_copy = data.ground_truth;
  const PreparedDataset prep =
      PrepareDirty(spec.name, data.entities, std::move(gt_copy),
                   BlockingOptions{.execution = {.num_threads = 4}});
  const StreamingDataset twin = StreamingTwin(prep);

  for (PruningKind kind : {PruningKind::kBlast, PruningKind::kWep,
                           PruningKind::kCnp}) {
    MetaBlockingConfig config = BaseConfig(kind);
    config.execution.num_threads = 4;
    const MetaBlockingResult batch = RunMetaBlocking(prep, config);
    for (size_t shards : {size_t{3}, size_t{32}}) {
      StreamingOptions options;
      options.num_shards = shards;
      const StreamingResult stream =
          StreamingExecutor(twin, options).Run(config);
      EXPECT_GT(stream.num_shards_used, 1u);
      ExpectIdentical(batch, stream, kind, shards, 4);
    }
  }
}

TEST(StreamExecutorTest, MemoryBudgetDerivesShardCountAndBoundsArena) {
  const PreparedDataset& prep = MediumDataset();
  const StreamingDataset twin = StreamingTwin(prep);
  MetaBlockingConfig config = BaseConfig(PruningKind::kBlast);
  const MetaBlockingResult batch = RunMetaBlocking(prep, config);

  StreamingOptions options;
  options.num_shards = 1;
  options.memory_budget_mb = 1;  // ~1 MiB arena => multiple shards
  const StreamingExecutor executor(twin, options);
  const StreamingResult stream = executor.Run(config);

  EXPECT_GT(stream.num_shards_used, 1u);
  // One candidate costs ~sizeof(pair) + feature row + probability; the
  // high-water arena must respect the derived per-shard budget (chunk
  // granularity makes it exact only up to one chunk).
  const size_t bytes_per_pair =
      sizeof(CandidatePair) + 8 * config.features.Dimensions() + 16;
  EXPECT_LE(stream.max_shard_candidates * bytes_per_pair,
            (options.memory_budget_mb << 20) + bytes_per_pair * 8192);
  ExpectIdentical(batch, stream, config.pruning, stream.num_shards_used, 1);
}

TEST(StreamExecutorTest, SinkReceivesRetainedAscendingWithPairs) {
  const PreparedDataset& prep = MediumDataset();
  const StreamingDataset twin = StreamingTwin(prep);
  // One weight-based and one cardinality kind: the two emission paths.
  for (PruningKind kind : {PruningKind::kWnp, PruningKind::kCep}) {
    MetaBlockingConfig config = BaseConfig(kind);
    StreamingOptions options;
    options.num_shards = 4;
    std::vector<uint32_t> seen;
    StreamingResult stream = StreamingExecutor(twin, options).Run(
        config, [&](uint32_t index, const CandidatePair& pair,
                    double probability) {
          if (!seen.empty()) {
            EXPECT_LT(seen.back(), index);
          }
          seen.push_back(index);
          EXPECT_EQ(prep.pairs[index], pair);
          EXPECT_GE(probability, 0.5);  // default validity threshold
        });
    EXPECT_EQ(seen.size(), stream.metrics.retained);
    EXPECT_EQ(seen, stream.retained_indices);
  }
}

TEST(StreamExecutorTest, SweepCountsPerAlgorithmFamily) {
  const StreamingDataset twin = StreamingTwin(MediumDataset());
  StreamingOptions options;
  options.num_shards = 4;
  auto sweeps = [&](PruningKind kind) {
    return StreamingExecutor(twin, options)
        .Run(BaseConfig(kind))
        .sweeps;
  };
  EXPECT_EQ(sweeps(PruningKind::kBCl), 1u);    // stateless: single pass
  EXPECT_EQ(sweeps(PruningKind::kBlast), 2u);  // aggregate + threshold pass
  EXPECT_EQ(sweeps(PruningKind::kCnp), 1u);    // emits from aggregates
}

TEST(StreamExecutorTest, RejectsUnusableOptions) {
  const StreamingDataset twin = StreamingTwin(MediumDataset());
  StreamingOptions options;
  options.num_shards = 0;
  options.memory_budget_mb = 0;
  EXPECT_THROW(StreamingExecutor(twin, options), std::invalid_argument);
}

}  // namespace
}  // namespace gsmb
