// Concurrency stress suite, written to run under ThreadSanitizer (the
// `tsan` preset). Every test here drives a component from several real
// std::threads at once so TSan can observe the interleavings the rest of
// the suite only exercises single-threaded: ThreadPool shutdown and nested
// dispatch, racing Engine::Prepare calls sharing one build, concurrent
// RunSweep over a shared prepared handle, and a MetaBlockingSession being
// queried while it ingests and refreshes.
//
// The tests are also run in plain builds (they assert functional
// postconditions, not just "no race"), but their iteration counts are kept
// small enough that the ~10x TSan slowdown stays in CI budget.
//
// gsmb-lint: allow(raw-thread) — file-wide rationale: stress tests must
// create bare std::threads to race components against each other; each
// use-site below also carries its own marker.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <thread>  // gsmb-lint: allow(raw-thread)
#include <vector>

#include <gtest/gtest.h>

#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "gsmb/prepared.h"
#include "gsmb/sweep.h"
#include "gsmb/telemetry.h"
#include "datasets/dirty_generator.h"
#include "serve/serving_model.h"
#include "serve/session.h"
#include "util/thread_pool.h"

namespace gsmb {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolStress, ManySmallBatchesReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  // Hundreds of tiny batches: exercises the queue hand-off and the
  // batch-done signalling far more often than any production workload.
  constexpr size_t kBatches = 300;
  constexpr size_t kTasks = 8;
  for (size_t b = 0; b < kBatches; ++b) {
    pool.Run(kTasks, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), kBatches * kTasks);
  EXPECT_LE(pool.ActiveWorkers(), pool.max_workers());
}

TEST(ThreadPoolStress, NestedDispatchDoesNotDeadlock) {
  // Every outer task submits an inner batch to the SAME pool while all
  // workers are already busy; the caller-drains-own-batch design must keep
  // this deadlock-free and count every inner task exactly once.
  ThreadPool pool(2);
  std::atomic<size_t> inner_runs{0};
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 16;
  for (size_t round = 0; round < 20; ++round) {
    pool.Run(kOuter, [&](size_t) {
      pool.Run(kInner, [&](size_t) { inner_runs.fetch_add(1); });
    });
  }
  EXPECT_EQ(inner_runs.load(), 20 * kOuter * kInner);
}

TEST(ThreadPoolStress, ConcurrentRunFromManyThreads) {
  // The global-pool usage pattern: unrelated threads share one pool and
  // submit batches concurrently. Each submitter's Run() must return only
  // after its OWN batch fully drained.
  ThreadPool pool(3);
  constexpr size_t kSubmitters = 6;
  constexpr size_t kRounds = 40;
  constexpr size_t kTasks = 8;
  std::vector<size_t> per_submitter(kSubmitters, 0);
  {
    std::vector<std::thread> submitters;  // gsmb-lint: allow(raw-thread)
    submitters.reserve(kSubmitters);
    for (size_t s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        std::atomic<size_t> mine{0};
        for (size_t r = 0; r < kRounds; ++r) {
          pool.Run(kTasks, [&](size_t) { mine.fetch_add(1); });
        }
        per_submitter[s] = mine.load();
      });
    }
    for (std::thread& t : submitters) t.join();
  }
  for (size_t s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(per_submitter[s], kRounds * kTasks) << "submitter " << s;
  }
}

TEST(ThreadPoolStress, RepeatedConstructionAndTeardown) {
  // Construct, use, and destroy pools in a tight loop: the destructor must
  // join workers that may still be parked on the condition variable or
  // mid-task, with no use-after-free of pool state.
  for (size_t round = 0; round < 60; ++round) {
    ThreadPool pool(2);
    std::atomic<size_t> ran{0};
    pool.Run(5, [&](size_t) { ran.fetch_add(1); });
    ASSERT_EQ(ran.load(), 5u);
    // Destructor runs here, racing worker park/unpark.
  }
}

TEST(ThreadPoolStress, TaskExceptionSurfacesOnceBatchDrains) {
  ThreadPool pool(2);
  for (size_t round = 0; round < 30; ++round) {
    std::atomic<size_t> ran{0};
    EXPECT_THROW(
        pool.Run(8,
                 [&](size_t i) {
                   ran.fetch_add(1);
                   if (i == 3) throw std::runtime_error("boom");
                 }),
        std::runtime_error);
    // The batch drains fully before rethrow, so the pool stays usable.
    pool.Run(4, [&](size_t) { ran.fetch_add(1); });
  }
}

// ---------------------------------------------------------------------------
// Engine prepare cache

JobSpec StressSpec(double scale = 0.02) {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = scale;
  spec.blocking.filter_ratio = 1.0;
  spec.training.labels_per_class = 15;
  spec.training.seed = 3;
  spec.execution.shards = 1;
  spec.output.keep_retained = true;
  return spec;
}

TEST(EngineStress, ConcurrentPrepareAndRunShareOnePreparation) {
  // Half the threads Prepare, half Run the same spec, all racing the cold
  // build. Exactly one preparation may happen; every Run must retain the
  // same pairs.
  Engine engine;
  const JobSpec spec = StressSpec();

  constexpr size_t kThreads = 8;
  std::vector<const PreparedInputs*> handles(kThreads, nullptr);
  std::vector<std::vector<RetainedPair>> retained(kThreads);
  std::atomic<size_t> failures{0};
  {
    std::vector<std::thread> threads;  // gsmb-lint: allow(raw-thread)
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        if (t % 2 == 0) {
          Result<PreparedHandle> prepared = engine.Prepare(spec);
          if (prepared.ok()) {
            handles[t] = prepared->get();
          } else {
            failures.fetch_add(1);
          }
        } else {
          Result<JobResult> run = engine.Run(spec);
          if (run.ok()) {
            retained[t] = run->retained;
          } else {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  ASSERT_EQ(failures.load(), 0u);

  const PreparedInputs* shared = nullptr;
  for (size_t t = 0; t < kThreads; t += 2) {
    ASSERT_NE(handles[t], nullptr);
    if (shared == nullptr) shared = handles[t];
    EXPECT_EQ(handles[t], shared) << "thread " << t << " got its own build";
  }
  for (size_t t = 1; t < kThreads; t += 2) {
    EXPECT_EQ(retained[t], retained[1]) << "thread " << t;
    EXPECT_FALSE(retained[t].empty());
  }
  EXPECT_EQ(engine.prepare_cache_stats().misses, 1u);
}

TEST(EngineStress, ConcurrentPrepareOfDistinctSpecsStaysIsolated) {
  // Different specs racing into the cache must not bleed into each other's
  // slots: each key builds once, and handles differ across keys.
  Engine engine;
  constexpr size_t kSpecs = 3;
  constexpr size_t kThreadsPerSpec = 3;
  const double scales[kSpecs] = {0.02, 0.025, 0.03};

  std::vector<const PreparedInputs*> handles(kSpecs * kThreadsPerSpec,
                                             nullptr);
  {
    std::vector<std::thread> threads;  // gsmb-lint: allow(raw-thread)
    for (size_t s = 0; s < kSpecs; ++s) {
      for (size_t t = 0; t < kThreadsPerSpec; ++t) {
        threads.emplace_back([&, s, t] {
          Result<PreparedHandle> prepared =
              engine.Prepare(StressSpec(scales[s]));
          if (prepared.ok()) handles[s * kThreadsPerSpec + t] = prepared->get();
        });
      }
    }
    for (std::thread& thread : threads) thread.join();
  }

  for (size_t s = 0; s < kSpecs; ++s) {
    const PreparedInputs* first = handles[s * kThreadsPerSpec];
    ASSERT_NE(first, nullptr) << "spec " << s;
    for (size_t t = 1; t < kThreadsPerSpec; ++t) {
      EXPECT_EQ(handles[s * kThreadsPerSpec + t], first)
          << "spec " << s << " thread " << t;
    }
    for (size_t other = s + 1; other < kSpecs; ++other) {
      EXPECT_NE(first, handles[other * kThreadsPerSpec])
          << "specs " << s << " and " << other << " share a handle";
    }
  }
  EXPECT_EQ(engine.prepare_cache_stats().misses, kSpecs);
}

// ---------------------------------------------------------------------------
// RunSweep

TEST(SweepStress, ConcurrentSweepsOverOneSharedHandle) {
  // Two threads run the same sweep on one engine: the variants of both
  // sweeps execute in parallel against ONE shared PreparedInputs (including
  // its lazily materialised batch arrays), and both must report identical
  // per-variant retained sets.
  Engine engine;
  SweepSpec sweep;
  sweep.base = StressSpec();
  sweep.axes.pruning = {PruningKind::kBlast, PruningKind::kCnp,
                        PruningKind::kWnp};
  sweep.axes.seeds = {1, 2};

  constexpr size_t kSweepers = 2;
  std::vector<Result<SweepResult>> results;
  results.reserve(kSweepers);
  for (size_t s = 0; s < kSweepers; ++s) {
    results.emplace_back(Status::Internal("not run"));
  }
  {
    std::vector<std::thread> threads;  // gsmb-lint: allow(raw-thread)
    threads.reserve(kSweepers);
    for (size_t s = 0; s < kSweepers; ++s) {
      threads.emplace_back([&, s] { results[s] = engine.RunSweep(sweep); });
    }
    for (std::thread& thread : threads) thread.join();
  }

  for (size_t s = 0; s < kSweepers; ++s) {
    ASSERT_TRUE(results[s].ok()) << results[s].status().ToString();
    ASSERT_TRUE(results[s]->all_ok());
    ASSERT_EQ(results[s]->variants.size(), sweep.GridSize());
  }
  for (size_t v = 0; v < results[0]->variants.size(); ++v) {
    EXPECT_EQ(results[0]->variants[v].result.retained,
              results[1]->variants[v].result.retained)
        << results[0]->variants[v].label;
  }
  // Both sweeps map to one cache key: one build, total.
  EXPECT_EQ(engine.prepare_cache_stats().misses, 1u);
}

// ---------------------------------------------------------------------------
// Serving session

DirtySpec SessionData(size_t num_entities, uint64_t seed) {
  DirtySpec spec;
  spec.name = "tsan-stress";
  spec.num_entities = num_entities;
  spec.seed = seed;
  return spec;
}

const ServingModel& SessionModel() {
  static const ServingModel model = [] {
    const GeneratedDirty labelled =
        DirtyGenerator().Generate(SessionData(300, 23));
    ServingModelTraining training;
    training.train_per_class = 30;
    return TrainServingModel(labelled.entities, labelled.ground_truth,
                             FeatureSet::BlastOptimal(), training);
  }();
  return model;
}

TEST(SessionStress, IngestRefreshAndQueryRaceToAConsistentEnd) {
  // One writer thread interleaves AddProfiles and Refresh while reader
  // threads hammer QueryCandidates / RetainedPairs / Stats / DirtyShardCount.
  // The locks make every call atomic, so readers may observe any prefix of
  // the ingest but never a torn state; at the end the session must hold
  // exactly the cold-rebuild retained set.
  const GeneratedDirty data = DirtyGenerator().Generate(SessionData(400, 11));
  const std::vector<EntityProfile>& profiles = data.entities.profiles();
  SessionOptions options;
  options.num_shards = 8;
  options.execution.num_threads = 2;

  MetaBlockingSession session(options, SessionModel());
  std::atomic<bool> writer_done{false};
  std::atomic<size_t> reader_errors{0};

  constexpr size_t kBatches = 8;
  const size_t batch_size = profiles.size() / kBatches;

  std::thread writer([&] {  // gsmb-lint: allow(raw-thread)
    for (size_t b = 0; b < kBatches; ++b) {
      const size_t begin = b * batch_size;
      const size_t end =
          (b + 1 == kBatches) ? profiles.size() : begin + batch_size;
      session.AddProfiles(
          {profiles.begin() + begin, profiles.begin() + end});
      session.Refresh();
    }
    writer_done.store(true);
  });

  constexpr size_t kReaders = 2;
  std::vector<std::thread> readers;  // gsmb-lint: allow(raw-thread)
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      const EntityProfile& probe = profiles[r];
      // Sleep between iterations and bound the loop: libstdc++'s
      // shared_mutex has no writer preference, so readers spinning on
      // shared locks can starve the writer indefinitely on few-core
      // machines (observed under TSan's ~10x slowdown on one core).
      for (size_t iter = 0; iter < 500 && !writer_done.load(); ++iter) {
        // Each reader call sees some consistent post-Refresh state.
        const std::vector<QueryMatch> matches =
            session.QueryCandidates(probe, 5);
        for (const QueryMatch& m : matches) {
          if (m.probability < 0.0 || m.probability > 1.0) {
            reader_errors.fetch_add(1);
          }
        }
        const SessionStats stats = session.Stats();
        if (stats.num_retained != 0 && stats.num_profiles == 0) {
          reader_errors.fetch_add(1);  // pairs without profiles: torn state
        }
        if (session.DirtyShardCount() > stats.num_shards) {
          reader_errors.fetch_add(1);
        }
        (void)session.RetainedPairs();
        // gsmb-lint: allow(raw-clock) — interleaving jitter, not a timer.
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_errors.load(), 0u);

  // Functional postcondition: identical to a cold rebuild.
  MetaBlockingSession cold(options, SessionModel());
  cold.AddProfiles(profiles);
  cold.Refresh();
  EXPECT_EQ(session.RetainedPairs(), cold.RetainedPairs());
}

TEST(SessionStress, ConcurrentWritersSerialise) {
  // Two threads AddProfiles disjoint halves and both call Refresh; the
  // exclusive lock serialises them in SOME order, and since the retained
  // set is a pure function of the full profile set (ids assigned in ingest
  // order only affect pair naming, so both halves must be identical data
  // for a bitwise check — instead we assert against a cold session built
  // in whatever order the race produced).
  const GeneratedDirty data = DirtyGenerator().Generate(SessionData(300, 7));
  const std::vector<EntityProfile>& profiles = data.entities.profiles();
  SessionOptions options;
  options.num_shards = 4;

  MetaBlockingSession session(options, SessionModel());
  const size_t half = profiles.size() / 2;
  std::vector<std::vector<EntityId>> assigned(2);
  {
    std::vector<std::thread> writers;  // gsmb-lint: allow(raw-thread)
    for (size_t w = 0; w < 2; ++w) {
      writers.emplace_back([&, w] {
        const size_t begin = w == 0 ? 0 : half;
        const size_t end = w == 0 ? half : profiles.size();
        assigned[w] = session.AddProfiles(
            {profiles.begin() + begin, profiles.begin() + end});
        session.Refresh();
      });
    }
    for (std::thread& t : writers) t.join();
  }

  // Batches stayed atomic: each writer's ids are contiguous.
  for (size_t w = 0; w < 2; ++w) {
    ASSERT_FALSE(assigned[w].empty());
    for (size_t i = 1; i < assigned[w].size(); ++i) {
      ASSERT_EQ(assigned[w][i], assigned[w][i - 1] + 1)
          << "writer " << w << " batch interleaved";
    }
  }
  EXPECT_EQ(session.profiles().size(), profiles.size());
  EXPECT_EQ(session.DirtyShardCount(), 0u);

  // Rebuild cold in the serialisation order the race actually produced.
  MetaBlockingSession cold(options, SessionModel());
  const bool w0_first = assigned[0][0] == 0;
  const size_t first = w0_first ? 0 : 1;
  for (size_t w : {first, 1 - first}) {
    const size_t begin = w == 0 ? 0 : half;
    const size_t end = w == 0 ? half : profiles.size();
    cold.AddProfiles({profiles.begin() + begin, profiles.begin() + end});
  }
  cold.Refresh();
  EXPECT_EQ(session.RetainedPairs(), cold.RetainedPairs());
}

// ---------------------------------------------------------------------------
// Telemetry

TEST(TelemetryStress, SpansMetricsAndExportsRace) {
  // Writers hammer every recording surface (spans with nesting, counters,
  // gauges, histograms) while readers concurrently export snapshots and
  // trace JSON. TSan must see no race between the per-thread slots and
  // the merging exports, and the final counts must add up exactly.
  obs::TelemetrySink sink;
  obs::InstallSink(&sink);
  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 2;
  constexpr size_t kRounds = 200;
  std::atomic<bool> stop{false};
  {
    std::vector<std::thread> threads;  // gsmb-lint: allow(raw-thread)
    for (size_t w = 0; w < kWriters; ++w) {
      threads.emplace_back([w] {
        for (size_t i = 0; i < kRounds; ++i) {
          GSMB_SPAN("stress.outer", "stress.outer_us");
          obs::CounterAdd("stress.rounds");
          obs::CounterAdd("stress.bytes", w + 1);
          obs::GaugeMax("stress.high_water", static_cast<double>(i));
          {
            GSMB_SPAN("stress.inner");
            obs::HistogramRecord("stress.cost_us",
                                 static_cast<double>(i % 50 + 1));
          }
        }
      });
    }
    for (size_t r = 0; r < kReaders; ++r) {
      threads.emplace_back([&sink, &stop] {
        while (!stop.load()) {
          const obs::MetricsSnapshot snapshot = sink.SnapshotMetrics();
          // Monotone reads: a snapshot mid-run is any prefix of the work.
          EXPECT_LE(snapshot.counters.count("stress.rounds")
                        ? snapshot.counters.at("stress.rounds")
                        : 0,
                    kWriters * kRounds);
          (void)sink.TraceJson();
        }
      });
    }
    // Writers are the first kWriters threads; join them, then stop readers.
    for (size_t i = 0; i < kWriters; ++i) threads[i].join();
    stop.store(true);
    for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  }
  obs::InstallSink(nullptr);

  const obs::MetricsSnapshot final_snapshot = sink.SnapshotMetrics();
  EXPECT_EQ(final_snapshot.counters.at("stress.rounds"), kWriters * kRounds);
  // sum over writers of kRounds * (w + 1)
  EXPECT_EQ(final_snapshot.counters.at("stress.bytes"),
            kRounds * kWriters * (kWriters + 1) / 2);
  EXPECT_EQ(final_snapshot.histograms.at("stress.cost_us").count,
            kWriters * kRounds);
  EXPECT_EQ(sink.Spans().size(), 2 * kWriters * kRounds);
}

}  // namespace
}  // namespace gsmb
