#include "matching/matcher.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datasets/clean_clean_generator.h"
#include "datasets/specs.h"
#include "matching/similarity.h"
#include "test_support.h"

namespace gsmb {
namespace {

std::vector<std::string> Tokens(std::initializer_list<const char*> list) {
  std::vector<std::string> out;
  for (const char* t : list) out.push_back(t);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Similarity, JaccardBasics) {
  auto a = Tokens({"apple", "iphone", "x"});
  auto b = Tokens({"apple", "iphone", "10"});
  EXPECT_DOUBLE_EQ(TokenSimilarity(a, b, SimilarityKind::kJaccard),
                   2.0 / 4.0);
  EXPECT_DOUBLE_EQ(TokenSimilarity(a, a, SimilarityKind::kJaccard), 1.0);
}

TEST(Similarity, DiceAndOverlap) {
  auto a = Tokens({"x", "y"});
  auto b = Tokens({"y", "z", "w"});
  EXPECT_DOUBLE_EQ(TokenSimilarity(a, b, SimilarityKind::kDice),
                   2.0 * 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(TokenSimilarity(a, b, SimilarityKind::kOverlap), 0.5);
}

TEST(Similarity, DisjointAndEmpty) {
  auto a = Tokens({"x"});
  auto b = Tokens({"y"});
  EXPECT_DOUBLE_EQ(TokenSimilarity(a, b, SimilarityKind::kJaccard), 0.0);
  EXPECT_DOUBLE_EQ(TokenSimilarity({}, b, SimilarityKind::kJaccard), 0.0);
}

TEST(Similarity, ProfileOverloadTokenises) {
  EntityProfile a("1");
  a.AddAttribute("name", "Apple iPhone");
  EntityProfile b("2");
  b.AddAttribute("title", "apple IPHONE");
  EXPECT_DOUBLE_EQ(ProfileSimilarity(a, b), 1.0);
}

TEST(Similarity, Names) {
  EXPECT_STREQ(SimilarityKindName(SimilarityKind::kJaccard), "Jaccard");
  EXPECT_STREQ(SimilarityKindName(SimilarityKind::kDice), "Dice");
}

TEST(Matcher, ThresholdSplitsDecisions) {
  EntityCollection e;
  auto add = [&](const char* id, const char* text) {
    EntityProfile p(id);
    p.AddAttribute("t", text);
    return e.Add(std::move(p));
  };
  add("0", "alpha beta gamma");
  add("1", "alpha beta gamma");   // identical to 0
  add("2", "alpha zeta eta");     // 1/5 similar to 0
  std::vector<CandidatePair> pairs = {{0, 1}, {0, 2}};
  std::vector<uint32_t> retained = {0, 1};
  auto decisions = ThresholdMatcher(0.5).Match(e, pairs, retained);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].pair, (CandidatePair{0, 1}));
  EXPECT_DOUBLE_EQ(decisions[0].similarity, 1.0);
}

TEST(Matcher, OnlyConsidersRetainedPairs) {
  EntityCollection e;
  for (int i = 0; i < 3; ++i) {
    EntityProfile p(std::to_string(i));
    p.AddAttribute("t", "same tokens here");
    e.Add(std::move(p));
  }
  std::vector<CandidatePair> pairs = {{0, 1}, {0, 2}, {1, 2}};
  auto decisions = ThresholdMatcher(0.5).Match(e, pairs, {2});
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].pair, (CandidatePair{1, 2}));
}

TEST(Matcher, EvaluateMatchingMath) {
  GroundTruth gt(/*dirty=*/true);
  gt.AddMatch(0, 1);
  gt.AddMatch(2, 3);
  std::vector<MatchDecision> decisions = {{{0, 1}, 0.9}, {{1, 2}, 0.8}};
  MatchingQuality q = EvaluateMatching(decisions, gt);
  EXPECT_EQ(q.correct_matches, 1u);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.f1, 0.5);
}

TEST(Matcher, ClusterMatchesConnectedComponents) {
  std::vector<MatchDecision> decisions = {
      {{0, 1}, 1.0}, {{1, 2}, 1.0}, {{4, 5}, 1.0}};
  auto clusters = ClusterMatches(7, decisions);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<EntityId>{0, 1, 2}));
  EXPECT_EQ(clusters[1], (std::vector<EntityId>{4, 5}));
}

TEST(Matcher, ClusterNoMatchesNoClusters) {
  EXPECT_TRUE(ClusterMatches(5, {}).empty());
}

TEST(Matcher, EndToEndRaisesF1OverMetaBlocking) {
  // Paper Section 5.2: meta-blocking's block collection is handed to a
  // Matching algorithm whose job is to push F1 towards 1.
  const PreparedDataset& prep = testing::MediumDataset();
  MetaBlockingConfig config;
  config.features = FeatureSet::BlastOptimal();
  config.pruning = PruningKind::kBlast;
  config.train_per_class = 25;
  config.keep_retained = true;
  MetaBlockingResult r = RunMetaBlocking(prep, config);

  // Dataset names are opaque here; rebuild the collections from the spec.
  CleanCleanSpec spec = CleanCleanSpecByName("DblpAcm", /*scale=*/0.25);
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
  auto decisions = ThresholdMatcher(0.35).Match(
      data.e1, data.e2, prep.pairs, r.retained_indices);
  MatchingQuality q = EvaluateMatching(decisions, prep.ground_truth);
  // On this clean dataset meta-blocking is already near-perfect; matching
  // must at least preserve that quality while never lowering precision.
  EXPECT_GE(q.precision, r.metrics.precision - 1e-9);
  EXPECT_GT(q.f1, 0.9);
  EXPECT_LE(q.decided_matches, r.metrics.retained);
}

}  // namespace
}  // namespace gsmb
