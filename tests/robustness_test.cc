// Robustness / failure-injection tests: degenerate inputs, extreme
// parameters, and states a production deployment will eventually hit.

#include <gtest/gtest.h>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "core/pipeline.h"
#include "core/weight_pruning.h"
#include "test_support.h"

namespace gsmb {
namespace {

TEST(Robustness, DatasetWithoutPositiveCandidatesStillRuns) {
  // Ground truth whose pairs never co-occur in blocks: the sampler can only
  // produce negatives; training degenerates to one class but must not
  // crash, and recall is simply 0.
  BlockCollection bc = testing::PaperExampleBlocks();
  GroundTruth gt(/*dirty=*/true);
  gt.AddMatch(0, 5);  // e1-e6: no shared block
  PreparedDataset prep = PrepareFromBlocks("nopos", std::move(bc),
                                           std::move(gt));
  MetaBlockingConfig config;
  config.train_per_class = 5;
  MetaBlockingResult result = RunMetaBlocking(prep, config);
  EXPECT_DOUBLE_EQ(result.metrics.recall, 0.0);
}

TEST(Robustness, EmptyBlockCollectionThrowsAtTraining) {
  BlockCollection empty(/*clean_clean=*/false, 10, 0);
  PreparedDataset prep =
      PrepareFromBlocks("empty", std::move(empty), GroundTruth(true));
  EXPECT_TRUE(prep.pairs.empty());
  MetaBlockingConfig config;
  EXPECT_THROW(RunMetaBlocking(prep, config), std::runtime_error);
}

TEST(Robustness, SingleCandidatePair) {
  BlockCollection bc(/*clean_clean=*/false, 2, 0);
  Block b;
  b.key = "k";
  b.left = {0, 1};
  bc.Add(b);
  GroundTruth gt(true);
  gt.AddMatch(0, 1);
  PreparedDataset prep = PrepareFromBlocks("one", std::move(bc),
                                           std::move(gt));
  MetaBlockingConfig config;
  config.train_per_class = 5;
  // One positive, zero negatives: training set has a single class but two
  // identical... actually one row. Too small -> throws.
  EXPECT_THROW(RunMetaBlocking(prep, config), std::runtime_error);
}

TEST(Robustness, BlastRatioExtremes) {
  testing::PruningFixture f = testing::RandomPruningGraph(30, 0.4, 3);
  BlastPruning blast;
  PruningContext zero = f.context;
  zero.blast_ratio = 0.0;
  PruningContext one = f.context;
  one.blast_ratio = 1.0;
  auto all_valid = BClPruning().Prune(f.pairs, f.probs, f.context);
  // r = 0: every valid pair clears the threshold.
  EXPECT_EQ(blast.Prune(f.pairs, f.probs, zero), all_valid);
  // r = 1: only pairs matching the max of both endpoints survive; strictly
  // fewer (or equal in degenerate graphs).
  EXPECT_LE(blast.Prune(f.pairs, f.probs, one).size(), all_valid.size());
}

TEST(Robustness, ValidityThresholdAboveAllProbabilities) {
  testing::PruningFixture f = testing::RandomPruningGraph(20, 0.4, 5);
  f.context.validity_threshold = 2.0;  // nothing is valid
  for (PruningKind kind : AllPruningKinds()) {
    EXPECT_TRUE(
        MakePruningAlgorithm(kind)->Prune(f.pairs, f.probs, f.context).empty())
        << PruningKindName(kind);
  }
}

TEST(Robustness, PurgingEverythingLeavesEmptyCollection) {
  BlockCollection bc = testing::PaperExampleBlocks();
  // Fraction so small every block exceeds it.
  BlockCollection out = BlockPurging(1e-9).Apply(bc);
  EXPECT_TRUE(out.empty());
}

TEST(Robustness, FilteringHandlesEntityAbsentFromAllBlocks) {
  // Entity 3 exists in the universe but appears in no block.
  BlockCollection bc(/*clean_clean=*/false, 4, 0);
  Block b;
  b.key = "k";
  b.left = {0, 1, 2};
  bc.Add(b);
  EXPECT_NO_THROW(BlockFiltering(0.5).Apply(bc));
}

TEST(Robustness, EntityIndexOnEmptyCollection) {
  BlockCollection bc(/*clean_clean=*/true, 0, 0);
  EntityIndex index(bc);
  EXPECT_EQ(index.num_entities(), 0u);
  EXPECT_EQ(index.num_blocks(), 0u);
  EXPECT_TRUE(GenerateCandidatePairs(index).empty());
}

TEST(Robustness, HugeCnpBudgetKeepsAllValid) {
  testing::PruningFixture f = testing::RandomPruningGraph(25, 0.4, 7);
  f.context.cnp_k = 1e9;
  auto cnp = MakePruningAlgorithm(PruningKind::kCnp)
                 ->Prune(f.pairs, f.probs, f.context);
  auto bcl = MakePruningAlgorithm(PruningKind::kBCl)
                 ->Prune(f.pairs, f.probs, f.context);
  EXPECT_EQ(cnp, bcl);
}

TEST(Robustness, ProbabilityVectorSizeMismatchIsCallerBug) {
  // Documented contract: probabilities.size() == pairs.size(). This test
  // pins the precondition by exercising the valid path only.
  std::vector<CandidatePair> pairs = {{0, 1}};
  std::vector<double> probs = {0.9};
  PruningContext ctx;
  ctx.num_nodes = 2;
  EXPECT_EQ(
      MakePruningAlgorithm(PruningKind::kBCl)->Prune(pairs, probs, ctx).size(),
      1u);
}

}  // namespace
}  // namespace gsmb
