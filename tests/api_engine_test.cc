// Engine facade: cross-backend equivalence at the API boundary.
//
// The load-bearing assertion of the whole facade: one JobSpec, run through
// the batch, streaming and serving backends, retains the SAME pairs — for
// every one of the paper's 8 pruning algorithms. Batch and streaming are
// bit-identical by construction for ANY spec; a serving cold build joins
// them when the spec is shard-pure-compatible (Dirty ER, token blocking,
// no Block Filtering, linear classifier) and runs single-shard.
//
// Also covered: `auto` mode resolution by the arena-bytes model, backend
// registration, Supports() diagnostics, and OpenSession incremental reuse.

#include "gsmb/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gsmb/job_spec.h"

namespace gsmb {
namespace {

const Engine& SharedEngine() {
  static const Engine* engine = new Engine();
  return *engine;
}

/// A Dirty ER spec every backend supports: generated D10K stand-in at a
/// small scale, no Block Filtering, derived purge cap, single shard.
JobSpec ServingCompatibleSpec(PruningKind pruning) {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = 0.03;
  spec.blocking.filter_ratio = 1.0;     // serving cannot filter
  spec.blocking.purge_size_fraction = 0.5;
  spec.pruning.kind = pruning;
  spec.training.labels_per_class = 15;
  spec.training.seed = 3;
  spec.execution.shards = 1;
  spec.output.keep_retained = true;
  return spec;
}

JobResult MustRun(const JobSpec& spec) {
  Result<JobResult> result = SharedEngine().Run(spec);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

TEST(EngineEquivalence, AllPruningKindsAcrossAllThreeBackends) {
  for (PruningKind pruning : AllPruningKinds()) {
    JobSpec spec = ServingCompatibleSpec(pruning);

    spec.execution.mode = ExecutionMode::kBatch;
    const JobResult batch = MustRun(spec);
    ASSERT_GT(batch.metrics.retained, 0u)
        << PruningKindName(pruning) << ": empty retained set";

    spec.execution.mode = ExecutionMode::kStreaming;
    const JobResult streaming = MustRun(spec);

    spec.execution.mode = ExecutionMode::kServing;
    const JobResult serving = MustRun(spec);

    EXPECT_EQ(batch.retained, streaming.retained)
        << PruningKindName(pruning) << ": batch vs streaming diverge";
    EXPECT_EQ(batch.retained, serving.retained)
        << PruningKindName(pruning) << ": batch vs serving diverge";
    EXPECT_EQ(batch.metrics.retained, serving.metrics.retained);
    EXPECT_EQ(batch.metrics.true_positives, serving.metrics.true_positives);
  }
}

TEST(EngineEquivalence, MinTokenLengthThreadsThroughEveryBackend) {
  // Regression: the serving backend's model training must tokenize with
  // the spec's min_token_length, not the default — a divergence here only
  // shows up for non-default values.
  JobSpec spec = ServingCompatibleSpec(PruningKind::kBlast);
  spec.blocking.min_token_length = 3;

  spec.execution.mode = ExecutionMode::kBatch;
  const JobResult batch = MustRun(spec);
  ASSERT_GT(batch.metrics.retained, 0u);

  spec.execution.mode = ExecutionMode::kStreaming;
  const JobResult streaming = MustRun(spec);
  spec.execution.mode = ExecutionMode::kServing;
  const JobResult serving = MustRun(spec);

  EXPECT_EQ(batch.retained, streaming.retained);
  EXPECT_EQ(batch.retained, serving.retained);
}

TEST(EngineEquivalence, StreamingShardCountNeverChangesTheAnswer) {
  JobSpec spec = ServingCompatibleSpec(PruningKind::kBlast);
  spec.execution.mode = ExecutionMode::kBatch;
  const JobResult batch = MustRun(spec);

  spec.execution.mode = ExecutionMode::kStreaming;
  for (size_t shards : {1u, 7u, 64u}) {
    spec.execution.shards = shards;
    const JobResult streaming = MustRun(spec);
    EXPECT_EQ(batch.retained, streaming.retained) << shards << " shards";
  }
}

TEST(EngineEquivalence, ThreadCountNeverChangesTheAnswer) {
  JobSpec spec = ServingCompatibleSpec(PruningKind::kRcnp);
  spec.execution.mode = ExecutionMode::kBatch;
  const JobResult serial = MustRun(spec);
  spec.execution.options.num_threads = 4;
  const JobResult threaded = MustRun(spec);
  EXPECT_EQ(serial.retained, threaded.retained);
}

TEST(EngineEquivalence, CleanCleanBatchVsStreaming) {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedCleanClean;
  spec.dataset.name = "AbtBuy";
  spec.dataset.scale = 0.1;
  spec.training.labels_per_class = 20;
  spec.output.keep_retained = true;
  spec.execution.mode = ExecutionMode::kBatch;
  const JobResult batch = MustRun(spec);
  ASSERT_GT(batch.metrics.retained, 0u);

  spec.execution.mode = ExecutionMode::kStreaming;
  spec.execution.shards = 5;
  const JobResult streaming = MustRun(spec);
  EXPECT_EQ(batch.retained, streaming.retained);
  EXPECT_EQ(batch.model_coefficients, streaming.model_coefficients);
}

// ---------------------------------------------------------------------------
// auto mode
// ---------------------------------------------------------------------------

TEST(EngineAuto, NoBudgetResolvesToBatch) {
  JobSpec spec = ServingCompatibleSpec(PruningKind::kBlast);
  spec.execution.mode = ExecutionMode::kAuto;
  const JobResult result = MustRun(spec);
  EXPECT_EQ(result.backend, "batch");
}

TEST(EngineAuto, TinyBudgetResolvesToStreamingWithSameAnswer) {
  JobSpec spec = ServingCompatibleSpec(PruningKind::kBlast);
  spec.execution.mode = ExecutionMode::kBatch;
  const JobResult batch = MustRun(spec);

  spec.execution.mode = ExecutionMode::kAuto;
  spec.execution.memory_budget_mb = 1;  // candidates exceed 1 MiB of arena
  const JobResult result = MustRun(spec);
  EXPECT_EQ(result.backend, "streaming");
  EXPECT_GT(result.shards_used, 1u);
  EXPECT_EQ(result.retained, batch.retained);
}

TEST(EngineAuto, LargeBudgetStaysBatch) {
  JobSpec spec = ServingCompatibleSpec(PruningKind::kBlast);
  spec.execution.mode = ExecutionMode::kAuto;
  spec.execution.memory_budget_mb = 4096;
  const JobResult result = MustRun(spec);
  EXPECT_EQ(result.backend, "batch");
}

// ---------------------------------------------------------------------------
// Registry, diagnostics, error model
// ---------------------------------------------------------------------------

TEST(EngineRegistry, StandardBackendsAreRegistered) {
  const std::vector<std::string> names = SharedEngine().BackendNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "batch");
  EXPECT_EQ(names[1], "streaming");
  EXPECT_EQ(names[2], "serving");
  EXPECT_NE(SharedEngine().FindBackend("serving"), nullptr);
  EXPECT_EQ(SharedEngine().FindBackend("spark"), nullptr);
}

class NamedStub : public Executor {
 public:
  explicit NamedStub(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  Status Supports(const JobSpec&) const override { return Status::Ok(); }
  Result<JobResult> Execute(const JobSpec&) const override {
    JobResult result;
    result.backend = name_;
    return result;
  }

 private:
  std::string name_;
};

TEST(EngineRegistry, RegistrationAndDuplicateRejection) {
  Engine engine;
  EXPECT_TRUE(engine.Register(std::make_unique<NamedStub>("remote")).ok());
  EXPECT_NE(engine.FindBackend("remote"), nullptr);
  // A new workload is a registration, never a name collision.
  Status duplicate = engine.Register(std::make_unique<NamedStub>("batch"));
  EXPECT_FALSE(duplicate.ok());

  JobSpec spec = ServingCompatibleSpec(PruningKind::kBlast);
  Result<JobResult> result = engine.RunOn("remote", spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->backend, "remote");

  Result<JobResult> missing = engine.RunOn("absent", spec);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(EngineDiagnostics, InvalidSpecNeverReachesABackend) {
  JobSpec spec;  // csv source without paths
  Result<JobResult> result = SharedEngine().Run(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineDiagnostics, MissingCsvPathIsNotFoundNotACrash) {
  JobSpec spec;
  spec.dataset.e1 = "no_such_file.csv";
  spec.dataset.ground_truth = "also_missing.csv";
  Result<JobResult> result = SharedEngine().Run(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("dataset path does not exist"),
            std::string::npos)
      << result.status().message();
}

TEST(EngineDiagnostics, ServingSupportsNamesTheOffendingSetting) {
  JobSpec spec = ServingCompatibleSpec(PruningKind::kBlast);
  spec.execution.mode = ExecutionMode::kServing;

  JobSpec filtering = spec;
  filtering.blocking.filter_ratio = 0.8;
  Result<JobResult> result = SharedEngine().Run(filtering);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("filter_ratio"),
            std::string::npos);

  JobSpec clean_clean = spec;
  clean_clean.dataset.source = DatasetSource::kGeneratedCleanClean;
  clean_clean.dataset.name = "AbtBuy";
  result = SharedEngine().Run(clean_clean);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);

  JobSpec bayes = spec;
  bayes.classifier = ClassifierKind::kGaussianNaiveBayes;
  result = SharedEngine().Run(bayes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("linear"), std::string::npos);
}

// ---------------------------------------------------------------------------
// OpenSession: the facade's door to the long-lived incremental layer
// ---------------------------------------------------------------------------

TEST(EngineOpenSession, LiveSessionMatchesOneShotRun) {
  JobSpec spec = ServingCompatibleSpec(PruningKind::kBlast);
  spec.execution.mode = ExecutionMode::kServing;
  spec.execution.shards = 4;  // incremental shape, not the 1-shard parity
  const JobResult one_shot = MustRun(spec);

  Result<MetaBlockingSession> session = SharedEngine().OpenSession(spec);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->RetainedPairs().size(), one_shot.metrics.retained);
  EXPECT_EQ(session->Stats().num_shards, 4u);
  EXPECT_EQ(session->DirtyShardCount(), 0u);  // Refresh()ed on open
}

TEST(EngineOpenSession, RejectsUnsupportedSpecs) {
  JobSpec spec = ServingCompatibleSpec(PruningKind::kBlast);
  spec.blocking.filter_ratio = 0.8;
  Result<MetaBlockingSession> session = SharedEngine().OpenSession(spec);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace gsmb
