#include <string>

#include <gtest/gtest.h>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "test_support.h"

namespace gsmb {
namespace {

BlockCollection WithBigBlock() {
  // Dirty ER, 8 entities. One stop-word block holds 6 of 8 profiles
  // (> half), two informative blocks hold 2 each.
  BlockCollection bc(/*clean_clean=*/false, 8, 0);
  Block stopword;
  stopword.key = "the";
  stopword.left = {0, 1, 2, 3, 4, 5};
  bc.Add(stopword);
  Block good1;
  good1.key = "rare1";
  good1.left = {0, 1};
  bc.Add(good1);
  Block good2;
  good2.key = "rare2";
  good2.left = {6, 7};
  bc.Add(good2);
  return bc;
}

TEST(BlockPurging, RemovesOversizedBlocks) {
  BlockPurging purging(0.5);
  BlockCollection out = purging.Apply(WithBigBlock());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, "rare1");
  EXPECT_EQ(out[1].key, "rare2");
  EXPECT_EQ(purging.last_purged_count(), 1u);
}

TEST(BlockPurging, KeepsBlocksAtTheLimit) {
  // 8 entities, limit = 4: a block of exactly 4 stays.
  BlockCollection bc(/*clean_clean=*/false, 8, 0);
  Block b;
  b.key = "limit";
  b.left = {0, 1, 2, 3};
  bc.Add(b);
  BlockCollection out = BlockPurging(0.5).Apply(bc);
  EXPECT_EQ(out.size(), 1u);
}

TEST(BlockPurging, DropsZeroComparisonBlocks) {
  BlockCollection bc(/*clean_clean=*/true, 4, 4);
  Block one_sided;
  one_sided.key = "left-only";
  one_sided.left = {0, 1};
  bc.Add(one_sided);
  BlockCollection out = BlockPurging(0.5).Apply(bc);
  EXPECT_EQ(out.size(), 0u);
}

TEST(BlockPurging, PreservesMetadata) {
  BlockCollection out = BlockPurging(0.5).Apply(WithBigBlock());
  EXPECT_FALSE(out.clean_clean());
  EXPECT_EQ(out.num_left_entities(), 8u);
}

TEST(BlockPurging, ComparisonBudgetVariantRemovesHugeBlocks) {
  // The adaptive variant should also purge the dominant stop-word block.
  BlockCollection input = WithBigBlock();
  BlockCollection out = PurgeByComparisonBudget(input);
  EXPECT_LT(out.TotalComparisons(), input.TotalComparisons());
  for (const Block& b : out.blocks()) EXPECT_NE(b.key, "the");
}

TEST(BlockPurging, ComparisonBudgetKeepsUniformBlocks) {
  BlockCollection bc(/*clean_clean=*/false, 10, 0);
  for (int i = 0; i < 4; ++i) {
    Block b;
    b.key = std::string{"k"} + std::to_string(i);  // GCC PR105651 (-Wrestrict)
    b.left = {static_cast<EntityId>(2 * i), static_cast<EntityId>(2 * i + 1)};
    bc.Add(b);
  }
  EXPECT_EQ(PurgeByComparisonBudget(bc).size(), 4u);
}

TEST(BlockFiltering, RemovesEntityFromLargestBlocks) {
  // Entity 0 is in 5 blocks of growing size; ratio 0.8 keeps it in the 4
  // smallest (ceil(0.8 * 5) = 4).
  BlockCollection bc(/*clean_clean=*/false, 12, 0);
  for (size_t s = 0; s < 5; ++s) {
    Block b;
    // std::string{} + avoids the operator+(const char*, string&&) overload,
    // which trips a GCC 12 -Wrestrict false positive at -O3 (GCC PR105651).
    b.key = std::string{"b"} + std::to_string(s);
    b.left.push_back(0);
    for (size_t m = 0; m < s + 1; ++m) {
      b.left.push_back(static_cast<EntityId>(1 + s + m));
    }
    bc.Add(b);
  }
  BlockCollection out = BlockFiltering(0.8).Apply(bc);
  size_t entity0_blocks = 0;
  for (const Block& b : out.blocks()) {
    for (EntityId e : b.left) {
      if (e == 0) ++entity0_blocks;
    }
  }
  EXPECT_EQ(entity0_blocks, 4u);
}

TEST(BlockFiltering, RatioOneKeepsEverything) {
  BlockCollection input = testing::PaperExampleBlocks();
  BlockCollection out = BlockFiltering(1.0).Apply(input);
  EXPECT_EQ(out.size(), input.size());
  EXPECT_DOUBLE_EQ(out.TotalComparisons(), input.TotalComparisons());
}

TEST(BlockFiltering, EveryEntityKeepsAtLeastOneBlock) {
  BlockCollection bc(/*clean_clean=*/false, 4, 0);
  Block only;
  only.key = "solo";
  only.left = {0, 1, 2, 3};
  bc.Add(only);
  // Even a tiny ratio keeps each entity in >= 1 block.
  BlockCollection out = BlockFiltering(0.01).Apply(bc);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Size(), 4u);
}

TEST(BlockFiltering, DropsBlocksLeftWithoutComparisons) {
  // Clean-Clean: after filtering, a block keeping only one side vanishes.
  BlockCollection bc(/*clean_clean=*/true, 2, 2);
  Block small;
  small.key = "small";
  small.left = {0};
  small.right = {0};
  bc.Add(small);
  Block big;
  big.key = "big";
  big.left = {0, 1};
  big.right = {0, 1};
  bc.Add(big);
  // Ratio 0.5: each entity keeps ceil(0.5 * its block count) blocks.
  // Entities 0/0' are in both blocks -> keep only "small" (smaller).
  // Entities 1/1' are only in "big" -> stay there.
  BlockCollection out = BlockFiltering(0.5).Apply(bc);
  ASSERT_EQ(out.size(), 2u);
  const Block& filtered_big = out[1];
  EXPECT_EQ(filtered_big.key, "big");
  EXPECT_EQ(filtered_big.left, (std::vector<EntityId>{1}));
  EXPECT_EQ(filtered_big.right, (std::vector<EntityId>{1}));
}

TEST(BlockFiltering, PaperExampleShrinksComparisons) {
  BlockCollection input = testing::PaperExampleBlocks();
  BlockCollection out = BlockFiltering(0.8).Apply(input);
  EXPECT_LT(out.TotalComparisons(), input.TotalComparisons());
  EXPECT_GT(out.TotalComparisons(), 0.0);
}

}  // namespace
}  // namespace gsmb
