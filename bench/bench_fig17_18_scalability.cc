// Regenerates Figures 17 and 18: the scalability study over the synthetic
// Dirty ER datasets D10K..D300K with logistic regression.
//   Fig. 17 — effectiveness of BCl/BLAST (weight-based) and CNP/RCNP
//             (cardinality-based); baselines use the 2014 recipe, ours use
//             the new formulas with 50 labels.
//   Fig. 18 — speedup = (|C2|/|C1|) * (RT1/RT2) relative to D10K; values
//             near 1 mean linear scaling.

#include <cstdio>

#include "bench_common.h"
#include "datasets/specs.h"
#include "ml/sampler.h"

namespace {

using namespace gsmb;
using namespace gsmb::bench;

struct AlgoSpec {
  const char* label;
  PruningKind kind;
  bool new_recipe;  // Formula features + 50 labels vs 2014 recipe
  FeatureSet features;
};

MetaBlockingConfig ConfigFor(const AlgoSpec& algo,
                             const PreparedDataset& dataset) {
  MetaBlockingConfig config;
  config.classifier = ClassifierKind::kLogisticRegression;
  config.pruning = algo.kind;
  config.features = algo.features;
  config.train_per_class =
      algo.new_recipe ? 25 : FivePercentRuleSize(dataset.ground_truth.size());
  return config;
}

}  // namespace

int main() {
  PrintBanner("Scalability over Dirty ER datasets", "Figures 17 and 18");

  const AlgoSpec algos[] = {
      {"BCl", PruningKind::kBCl, false, FeatureSet::Paper2014()},
      {"BLAST", PruningKind::kBlast, true, FeatureSet::BlastOptimal()},
      {"CNP", PruningKind::kCnp, false, FeatureSet::Paper2014()},
      {"RCNP", PruningKind::kRcnp, true, FeatureSet::RcnpOptimal()},
  };

  // Per algorithm: (|C|, RT) per dataset for the speedup plot.
  std::vector<std::vector<std::pair<double, double>>> scaling(4);

  TablePrinter fig17({"Dataset", "|C|", "Algorithm", "Recall", "Precision",
                      "F1", "RT (ms)"});
  for (const DirtySpec& spec : PaperDirtySpecs(Scale())) {
    PreparedDataset dataset = PrepareDirtySpec(spec);
    for (size_t a = 0; a < 4; ++a) {
      ExperimentResult r = RunRepeatedExperiment(
          dataset, ConfigFor(algos[a], dataset), Seeds());
      scaling[a].push_back({static_cast<double>(dataset.pairs.size()),
                            r.aggregate.rt_seconds});
      std::vector<std::string> row = {
          spec.name, TablePrinter::Count(dataset.pairs.size()),
          algos[a].label};
      for (auto& cell : MetricCells(r.aggregate)) row.push_back(cell);
      row.push_back(TablePrinter::Fixed(r.aggregate.rt_seconds * 1e3, 1));
      fig17.AddRow(row);
    }
  }
  std::printf("Figure 17 — effectiveness and run-time:\n%s\n",
              fig17.ToString().c_str());

  TablePrinter fig18({"Dataset", "BCl", "BLAST", "CNP", "RCNP"});
  const auto& names = PaperDirtySpecs(Scale());
  for (size_t d = 1; d < names.size(); ++d) {
    std::vector<std::string> row = {names[d].name};
    for (size_t a = 0; a < 4; ++a) {
      const auto& [c1, rt1] = scaling[a][0];
      const auto& [c2, rt2] = scaling[a][d];
      const double speedup = (c2 / c1) * (rt1 / rt2);
      row.push_back(TablePrinter::Fixed(speedup, 3));
    }
    fig18.AddRow(row);
  }
  std::printf("Figure 18 — speedup relative to D10K (1.0 = linear "
              "scaling):\n%s\n",
              fig18.ToString().c_str());
  std::printf(
      "Expected shape: BLAST keeps recall >0.9 while beating BCl's "
      "precision/F1 by\nan order of magnitude; RCNP similarly dominates "
      "CNP; the new recipes retain\nfewer pairs and therefore scale closer "
      "to linear (higher speedup).\n");
  return 0;
}
