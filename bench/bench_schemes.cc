// Blocking-scheme benchmark: the SAME dataset and downstream pipeline run
// once per registered blocking scheme, timing the preparation (load +
// block + count) and the end-to-end job, and recording each scheme's
// candidate count and blocking quality (the PC/PQ trade-off every scheme
// navigates differently — Table 2's axes applied to the scheme registry).
//
// One benchmark-shaped JSON row per scheme lands in the artifact so
// bench_diff.py tracks per-scheme prepare cost, run cost and the retained
// digest across commits: timings may drift, retained sets must not.
//
//   GSMB_SCALE    dataset size multiplier (default 0.25)
//   GSMB_THREADS  worker threads (default: all hardware threads)
//   --json PATH   benchmark-shaped JSON artifact for bench_diff.py
//
// Exits non-zero when any scheme fails to prepare or run, so CI can run it
// as a smoke.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gsmb/digest.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "schemes/scheme_registry.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

using namespace gsmb;

double EnvScale() {
  const char* value = std::getenv("GSMB_SCALE");
  if (value == nullptr) return 0.25;
  const double parsed = std::atof(value);
  return parsed > 0.0 ? parsed : 0.25;
}

size_t EnvThreads() {
  const char* value = std::getenv("GSMB_THREADS");
  if (value == nullptr) return HardwareThreads();
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : HardwareThreads();
}

struct BenchRow {
  std::string name;
  double real_time_ms = 0.0;
  std::string retained_digest;
};

bool EmitBenchJson(const std::string& path, double scale, size_t threads,
                   const std::vector<BenchRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"bench_schemes\",\n"
      << "    \"scale\": " << scale << ",\n"
      << "    \"threads\": " << threads << "\n"
      << "  },\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    out << "    {\n"
        << "      \"name\": \"" << rows[i].name << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"real_time\": " << rows[i].real_time_ms << ",\n"
        << "      \"time_unit\": \"ms\"";
    if (!rows[i].retained_digest.empty()) {
      out << ",\n      \"retained_digest\": \"" << rows[i].retained_digest
          << "\"";
    }
    out << "\n    }" << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  out << "  ]\n}\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_schemes [--json out.json]\n");
      return 2;
    }
  }

  const double scale = EnvScale();
  const size_t threads = EnvThreads();
  std::printf("== Blocking-scheme benchmark (scale %.3g, %zu threads) ==\n\n",
              scale, threads);

  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = scale;
  spec.blocking.filter_ratio = 1.0;
  spec.pruning.kind = PruningKind::kBlast;
  spec.training.labels_per_class = 50;
  spec.training.seed = 1;
  spec.execution.options.num_threads = threads;

  TablePrinter table({"scheme", "blocks", "candidates", "PC", "PQ",
                      "prepare ms", "run ms", "retained"});
  std::vector<BenchRow> bench_rows;

  bool ok = true;
  for (const std::string& scheme : schemes::BlockerNames()) {
    spec.blocking.scheme = scheme;
    // A fresh engine per scheme: the prepare row times a genuinely cold
    // preparation, never a cache hit.
    Engine engine;
    Stopwatch watch;
    Result<PreparedHandle> prepared = engine.Prepare(spec);
    const double prepare_ms = watch.ElapsedMillis();
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: prepare failed: %s\n", scheme.c_str(),
                   prepared.status().ToString().c_str());
      ok = false;
      continue;
    }
    const StreamingDataset& stream = (*prepared)->stream;

    watch.Restart();
    Result<JobResult> result = engine.Run(spec);
    const double run_ms = watch.ElapsedMillis();
    if (!result.ok()) {
      std::fprintf(stderr, "%s: run failed: %s\n", scheme.c_str(),
                   result.status().ToString().c_str());
      ok = false;
      continue;
    }

    table.AddRow({scheme, std::to_string(stream.blocks.size()),
                  std::to_string(static_cast<size_t>(
                      (*prepared)->num_candidates())),
                  TablePrinter::Fixed(stream.blocking_quality.recall, 4),
                  TablePrinter::Fixed(stream.blocking_quality.precision, 4),
                  TablePrinter::Fixed(prepare_ms, 1),
                  TablePrinter::Fixed(run_ms, 1),
                  std::to_string(result->metrics.retained)});
    bench_rows.push_back({"schemes/" + scheme + "/prepare", prepare_ms});
    bench_rows.push_back({"schemes/" + scheme + "/run", run_ms,
                          obs::DigestHex(result->retained_digest)});
  }
  std::printf("%s", table.ToString().c_str());

  if (!json_path.empty()) {
    if (!EmitBenchJson(json_path, scale, threads, bench_rows)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!ok) return 1;
  std::printf("SCHEME BENCH OK: every registered scheme prepared and ran\n");
  return 0;
}
