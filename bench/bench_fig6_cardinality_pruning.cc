// Regenerates Figure 6: average effectiveness of the cardinality-based
// pruning algorithms (CEP, CNP, RCNP) across the nine datasets.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Cardinality-based pruning algorithm selection", "Figure 6");

  std::vector<PreparedDataset> datasets = PrepareAllCleanClean();

  TablePrinter table({"Algorithm", "Recall", "Precision", "F1"});
  for (PruningKind kind :
       {PruningKind::kCep, PruningKind::kCnp, PruningKind::kRcnp}) {
    MetaBlockingConfig config;
    config.pruning = kind;
    config.features = FeatureSet::Paper2014();
    config.train_per_class = 250;
    AggregateMetrics avg =
        MacroAverage(RunAcrossDatasets(datasets, config, Seeds()));
    std::vector<std::string> row = {PruningKindName(kind)};
    for (auto& cell : MetricCells(avg)) row.push_back(cell);
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected shape: RCNP is the clear winner — slightly lower "
              "recall than CEP/CNP,\nsubstantially higher precision and "
              "F1.\n");
  return 0;
}
