// Regenerates Figures 15 and 16: the distribution of the number of common
// blocks across the duplicate pairs of every dataset. Datasets where >10%
// of duplicates share at most one block are exactly those where supervised
// meta-blocking recall drops below 0.9 (Section 5.4.2).

#include <cstdio>

#include "bench_common.h"
#include "eval/histogram.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Common blocks per duplicate pair", "Figures 15 and 16");

  for (const CleanCleanSpec& spec : PaperCleanCleanSpecs(Scale())) {
    PreparedDataset prep = PrepareSpec(spec);
    std::vector<size_t> hist =
        CommonBlockHistogram(*prep.index, prep.ground_truth);
    const size_t total = prep.ground_truth.size();
    size_t at_most_one = 0;
    if (!hist.empty()) at_most_one += hist[0];
    if (hist.size() > 1) at_most_one += hist[1];
    std::printf(
        "%s — |D| = %s; duplicates with <=1 common block: %.1f%% (%s "
        "regime)\n%s\n",
        prep.name.c_str(), TablePrinter::Count(total).c_str(),
        100.0 * static_cast<double>(at_most_one) /
            static_cast<double>(total),
        at_most_one * 10 > total ? "Figure 16 / low-recall"
                                 : "Figure 15 / high-recall",
        RenderCountHistogram(hist, total, 40, 15).c_str());
  }
  std::printf("Expected shape: DblpAcm/ScholarDblp/Movies/WalmartAmazon put "
              "<5%% of duplicates\nat x<=1 (recall>0.9 datasets); AbtBuy/"
              "AmazonGP/Imdb*/Tmdb* put >10%% there.\n");
  return 0;
}
