// EXTENSION (paper Section 7, future work): Progressive ER driven by the
// probabilities of Generalized Supervised Meta-blocking. Emits candidates
// in decreasing match probability and reports the recall-vs-budget curve
// and its AUC, against a random-order baseline and the classic CBS-weight
// ordering.

#include <cstdio>

#include "bench_common.h"
#include "core/progressive.h"
#include "core/unsupervised.h"
#include "util/random.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Progressive ER schedules (extension)",
              "Section 7 future work — not a paper table");

  for (const char* name : {"DblpAcm", "ImdbTmdb", "Movies"}) {
    PreparedDataset prep = PrepareByName(name);

    // GSMB probabilities (BLAST feature set, 50 labels).
    MetaBlockingConfig config;
    config.features = FeatureSet::BlastOptimal();
    config.train_per_class = 25;
    config.keep_probabilities = true;
    MetaBlockingResult result = RunMetaBlocking(prep, config);
    auto gsmb_schedule = ProgressiveSchedule(result.probabilities);

    // Unsupervised CBS-weight ordering.
    auto cbs =
        ComputeEdgeWeights(*prep.index, prep.pairs, EdgeWeightScheme::kCbs);
    auto cbs_schedule = ProgressiveSchedule(cbs);

    // Shuffled baseline (deterministic seed).
    std::vector<uint32_t> random_schedule(prep.pairs.size());
    for (uint32_t i = 0; i < random_schedule.size(); ++i) {
      random_schedule[i] = i;
    }
    Rng rng(7);
    rng.Shuffle(&random_schedule);

    const size_t d = prep.ground_truth.size();
    std::printf("%s (|C| = %s, |D| = %s):\n", name,
                TablePrinter::Count(prep.pairs.size()).c_str(),
                TablePrinter::Count(d).c_str());
    std::printf("  AUC  gsmb %.4f | cbs %.4f | random %.4f\n",
                ProgressiveAuc(gsmb_schedule, prep.is_positive, d),
                ProgressiveAuc(cbs_schedule, prep.is_positive, d),
                ProgressiveAuc(random_schedule, prep.is_positive, d));

    auto curve = ProgressiveRecallCurve(gsmb_schedule, prep.is_positive, d,
                                        /*curve_points=*/10);
    std::printf("  gsmb recall@budget:");
    for (const ProgressivePoint& p : curve) {
      std::printf(" %.0f%%:%.3f",
                  100.0 * static_cast<double>(p.emitted) /
                      static_cast<double>(prep.pairs.size()),
                  p.recall);
    }
    std::printf("\n\n");
  }
  std::printf("Expected shape: the GSMB schedule front-loads duplicates "
              "(high AUC, steep\nearly recall); CBS is decent; random is "
              "the diagonal.\n");
  return 0;
}
