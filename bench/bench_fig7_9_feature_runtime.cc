// Regenerates Figures 7 and 9: run-time of the top-10 feature sets for
// BLAST and RCNP over the two datasets with the most candidate pairs
// (Movies, WalmartAmazon). Feature extraction is re-done per set — that is
// the cost the figures compare (LCP-bearing sets pay the distinct-candidate
// sweep; LCP-free sets avoid it).

#include <cstdio>

#include "bench_common.h"
#include "util/stopwatch.h"

namespace {

using namespace gsmb;
using namespace gsmb::bench;

// The paper's top-10 lists (Tables 3 and 4), expressed as explicit sets.
std::vector<FeatureSet> BlastTop10() {
  using F = Feature;
  return {
      {F::kCfIbf, F::kRaccb, F::kJs, F::kRs},
      {F::kCfIbf, F::kRaccb, F::kJs, F::kNrs},
      {F::kCfIbf, F::kRaccb, F::kJs, F::kWjs},
      {F::kCfIbf, F::kRaccb, F::kRs, F::kNrs},  // Formula 1
      {F::kCfIbf, F::kRaccb, F::kRs, F::kWjs},
      {F::kCfIbf, F::kRaccb, F::kNrs, F::kWjs},
      {F::kCfIbf, F::kJs, F::kRs, F::kWjs},
      {F::kCfIbf, F::kJs, F::kNrs, F::kWjs},
      {F::kCfIbf, F::kRs, F::kNrs, F::kWjs},
      {F::kCfIbf, F::kRaccb, F::kJs, F::kRs, F::kNrs, F::kWjs},
  };
}

std::vector<FeatureSet> RcnpTop10() {
  using F = Feature;
  return {
      {F::kCfIbf, F::kRaccb, F::kJs, F::kLcp, F::kRs},
      {F::kCfIbf, F::kRaccb, F::kJs, F::kLcp, F::kWjs},  // Formula 2
      {F::kCfIbf, F::kRaccb, F::kLcp, F::kRs, F::kNrs},
      {F::kCfIbf, F::kJs, F::kLcp, F::kRs, F::kNrs},
      {F::kCfIbf, F::kRaccb, F::kJs, F::kLcp, F::kRs, F::kNrs},
      {F::kCfIbf, F::kRaccb, F::kJs, F::kLcp, F::kRs, F::kWjs},
      {F::kCfIbf, F::kRaccb, F::kJs, F::kLcp, F::kNrs, F::kWjs},
      {F::kCfIbf, F::kRaccb, F::kLcp, F::kRs, F::kNrs, F::kWjs},
      {F::kCfIbf, F::kJs, F::kLcp, F::kRs, F::kNrs, F::kWjs},
      {F::kCfIbf, F::kRaccb, F::kJs, F::kLcp, F::kRs, F::kNrs, F::kWjs},
  };
}

void TimeSets(const PreparedDataset& dataset, PruningKind kind,
              const std::vector<FeatureSet>& sets, TablePrinter* table) {
  for (const FeatureSet& set : sets) {
    double total = 0.0;
    for (size_t rep = 0; rep < Seeds(); ++rep) {
      MetaBlockingConfig config;
      config.pruning = kind;
      config.features = set;
      config.train_per_class = 250;
      config.seed = rep;
      MetaBlockingResult result = RunMetaBlocking(dataset, config);
      total += result.total_seconds;
    }
    table->AddRow({std::to_string(set.Id()), set.ToString(),
                   TablePrinter::Fixed(total / Seeds() * 1e3, 1)});
  }
}

void RunFigure(const char* figure, PruningKind kind,
               const std::vector<FeatureSet>& sets,
               const std::vector<PreparedDataset>& datasets) {
  for (const PreparedDataset& dataset : datasets) {
    TablePrinter table({"ID", "Feature set", "mean RT (ms)"});
    TimeSets(dataset, kind, sets, &table);
    std::printf("%s — %s on %s (|C| = %s):\n%s\n", figure,
                PruningKindName(kind), dataset.name.c_str(),
                TablePrinter::Count(dataset.pairs.size()).c_str(),
                table.ToString().c_str());
  }
}

}  // namespace

int main() {
  PrintBanner("Run-time of the top-10 feature sets", "Figures 7 and 9");

  std::vector<PreparedDataset> datasets;
  datasets.push_back(PrepareByName("Movies"));
  datasets.push_back(PrepareByName("WalmartAmazon"));

  RunFigure("Figure 7", PruningKind::kBlast, BlastTop10(), datasets);
  RunFigure("Figure 9", PruningKind::kRcnp, RcnpTop10(), datasets);

  std::printf(
      "Expected shape: all BLAST sets are LCP-free and fast; every RCNP set "
      "carries\nLCP and pays a consistent premium (the paper reports 2-3x "
      "on its Spark\nsubstrate; our single-node LCP sweep is cheaper). "
      "Within each group the\ndifferences are small.\n");
  return 0;
}
