// Regenerates Table 3: the ten feature sets achieving the highest mean F1
// with BLAST across all nine datasets — the brute-force sweep over all 255
// combinations of the eight weighting schemes (Section 5.3).
//
// Note on IDs: the paper's combination IDs come from an unspecified
// enumeration; ours order subsets by (size, bitmask) — see DESIGN.md — and
// the explicit member names are always printed.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Feature selection for BLAST (255 combinations)", "Table 3");

  std::vector<PreparedDataset> datasets = PrepareAllCleanClean();
  std::vector<FeatureSweepEntry> sweep =
      RunFeatureSweep(datasets, PruningKind::kBlast,
                      /*train_per_class=*/250, Seeds());

  TablePrinter table({"ID", "Feature set", "Recall", "Precision", "F1"});
  for (size_t i = 0; i < 10 && i < sweep.size(); ++i) {
    std::vector<std::string> row = {std::to_string(sweep[i].features.Id()),
                                    sweep[i].features.ToString()};
    for (auto& cell : MetricCells(sweep[i].average)) row.push_back(cell);
    table.AddRow(row);
  }
  std::printf("Top-10 of 255 feature sets by mean F1 (BLAST):\n%s\n",
              table.ToString().c_str());

  // Where do the named sets of the paper land?
  auto report = [&](const char* label, const FeatureSet& set) {
    for (size_t i = 0; i < sweep.size(); ++i) {
      if (sweep[i].features == set) {
        std::printf("%-28s rank %3zu/255, F1 = %.4f  %s\n", label, i + 1,
                    sweep[i].average.f1, set.ToString().c_str());
        return;
      }
    }
  };
  report("Formula 1 (BLAST optimal):", FeatureSet::BlastOptimal());
  report("2014 feature set:", FeatureSet::Paper2014());
  std::printf(
      "\nExpected shape: the top sets are statistically tied; LCP-free "
      "sets\n(like Formula 1) are among them, which is what makes BLAST "
      "fast.\n");
  return 0;
}
