// google-benchmark microbenchmarks for the library's hot kernels: blocking,
// index construction, candidate generation, feature extraction (with and
// without LCP), classifier training/inference and every pruning algorithm.

#include <benchmark/benchmark.h>

#include <string>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "blocking/token_blocking.h"
#include "core/pipeline.h"
#include "datasets/clean_clean_generator.h"
#include "datasets/specs.h"
#include "ml/logistic_regression.h"
#include "util/mem_stats.h"
#include "util/random.h"

namespace {

using namespace gsmb;

const GeneratedCleanClean& Data() {
  static const GeneratedCleanClean* data = [] {
    CleanCleanSpec spec = CleanCleanSpecByName("DblpAcm", 0.25);
    return new GeneratedCleanClean(CleanCleanGenerator().Generate(spec));
  }();
  return *data;
}

const PreparedDataset& Prepared() {
  static const PreparedDataset* prep = [] {
    const GeneratedCleanClean& d = Data();
    GroundTruth gt = d.ground_truth;
    return new PreparedDataset(
        PrepareCleanClean("bench", d.e1, d.e2, std::move(gt)));
  }();
  return *prep;
}

void BM_TokenBlocking(benchmark::State& state) {
  const GeneratedCleanClean& d = Data();
  for (auto _ : state) {
    BlockCollection bc = TokenBlocking().Build(d.e1, d.e2);
    benchmark::DoNotOptimize(bc.size());
  }
}
BENCHMARK(BM_TokenBlocking);

void BM_PurgeAndFilter(benchmark::State& state) {
  const GeneratedCleanClean& d = Data();
  BlockCollection raw = TokenBlocking().Build(d.e1, d.e2);
  for (auto _ : state) {
    BlockCollection out = BlockFiltering().Apply(BlockPurging().Apply(raw));
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_PurgeAndFilter);

void BM_EntityIndexBuild(benchmark::State& state) {
  const PreparedDataset& prep = Prepared();
  for (auto _ : state) {
    EntityIndex index(prep.blocks);
    benchmark::DoNotOptimize(index.num_blocks());
  }
}
BENCHMARK(BM_EntityIndexBuild);

void BM_CandidateGeneration(benchmark::State& state) {
  const PreparedDataset& prep = Prepared();
  for (auto _ : state) {
    auto pairs = GenerateCandidatePairs(*prep.index);
    benchmark::DoNotOptimize(pairs.size());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * prep.pairs.size()));
}
BENCHMARK(BM_CandidateGeneration);

void BM_FeaturesWithoutLcp(benchmark::State& state) {
  const PreparedDataset& prep = Prepared();
  FeatureExtractor extractor(*prep.index, prep.pairs);
  for (auto _ : state) {
    Matrix m = extractor.Compute(FeatureSet::BlastOptimal());
    benchmark::DoNotOptimize(m.rows());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * prep.pairs.size()));
}
BENCHMARK(BM_FeaturesWithoutLcp);

void BM_FeaturesWithLcp(benchmark::State& state) {
  const PreparedDataset& prep = Prepared();
  FeatureExtractor extractor(*prep.index, prep.pairs);
  for (auto _ : state) {
    Matrix m = extractor.Compute(FeatureSet::Paper2014());
    benchmark::DoNotOptimize(m.rows());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * prep.pairs.size()));
}
BENCHMARK(BM_FeaturesWithLcp);

void BM_LogisticRegressionFit(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Matrix x(n, 4);
  std::vector<int> y(n);
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (size_t c = 0; c < 4; ++c) {
      x.At(i, c) = rng.NextGaussian() + (y[i] != 0 ? 1.0 : -1.0);
    }
  }
  for (auto _ : state) {
    LogisticRegression model;
    model.Fit(x, y);
    benchmark::DoNotOptimize(model.last_iterations());
  }
}
BENCHMARK(BM_LogisticRegressionFit)->Arg(50)->Arg(500);

void BM_ClassifierInference(benchmark::State& state) {
  const PreparedDataset& prep = Prepared();
  FeatureExtractor extractor(*prep.index, prep.pairs);
  Matrix features = extractor.Compute(FeatureSet::BlastOptimal());
  Rng rng(2);
  std::vector<size_t> rows;
  std::vector<int> labels;
  for (size_t i = 0; i < prep.pairs.size() && labels.size() < 50; ++i) {
    if (prep.is_positive[i] || rng.NextBool(0.001)) {
      rows.push_back(i);
      labels.push_back(prep.is_positive[i]);
    }
  }
  LogisticRegression model;
  model.Fit(features.SelectRows(rows), labels);
  for (auto _ : state) {
    std::vector<double> probs = model.PredictBatch(features);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * prep.pairs.size()));
}
BENCHMARK(BM_ClassifierInference);

// Threaded variants of the hot paths: compare Arg(1) against Arg(4)/Arg(8)
// rows to see the parallel speedup. Results are bit-identical to serial by
// construction, so only the wall clock moves.

void BM_CandidateGenerationParallel(benchmark::State& state) {
  const auto threads = static_cast<size_t>(state.range(0));
  const PreparedDataset& prep = Prepared();
  for (auto _ : state) {
    auto pairs = GenerateCandidatePairs(*prep.index, threads);
    benchmark::DoNotOptimize(pairs.size());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * prep.pairs.size()));
}
BENCHMARK(BM_CandidateGenerationParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_FeaturesParallel(benchmark::State& state) {
  const auto threads = static_cast<size_t>(state.range(0));
  const PreparedDataset& prep = Prepared();
  FeatureExtractor extractor(*prep.index, prep.pairs);
  for (auto _ : state) {
    Matrix m = extractor.Compute(FeatureSet::BlastOptimal(), threads);
    benchmark::DoNotOptimize(m.rows());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * prep.pairs.size()));
}
BENCHMARK(BM_FeaturesParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ClassifierInferenceParallel(benchmark::State& state) {
  const auto threads = static_cast<size_t>(state.range(0));
  const PreparedDataset& prep = Prepared();
  FeatureExtractor extractor(*prep.index, prep.pairs);
  Matrix features = extractor.Compute(FeatureSet::BlastOptimal());
  Rng rng(2);
  std::vector<size_t> rows;
  std::vector<int> labels;
  for (size_t i = 0; i < prep.pairs.size() && labels.size() < 50; ++i) {
    if (prep.is_positive[i] || rng.NextBool(0.001)) {
      rows.push_back(i);
      labels.push_back(prep.is_positive[i]);
    }
  }
  LogisticRegression model;
  model.Fit(features.SelectRows(rows), labels);
  for (auto _ : state) {
    std::vector<double> probs = model.PredictBatch(features, threads);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * prep.pairs.size()));
}
BENCHMARK(BM_ClassifierInferenceParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PruningParallel(benchmark::State& state) {
  const PruningKind kind = static_cast<PruningKind>(state.range(0));
  const auto threads = static_cast<size_t>(state.range(1));
  const PreparedDataset& prep = Prepared();
  std::vector<double> probs(prep.pairs.size());
  Rng rng(3);
  for (double& p : probs) p = rng.NextDouble();
  PruningContext ctx = PruningContext::FromIndex(*prep.index, prep.stats);
  ctx.execution.num_threads = threads;
  auto algorithm = MakePruningAlgorithm(kind);
  for (auto _ : state) {
    auto retained = algorithm->Prune(prep.pairs, probs, ctx);
    benchmark::DoNotOptimize(retained.size());
  }
  state.SetLabel(std::string(PruningKindName(kind)) + "/t" +
                 std::to_string(threads));
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * prep.pairs.size()));
}
BENCHMARK(BM_PruningParallel)
    ->Args({static_cast<int>(PruningKind::kWnp), 1})
    ->Args({static_cast<int>(PruningKind::kWnp), 4})
    ->Args({static_cast<int>(PruningKind::kBlast), 1})
    ->Args({static_cast<int>(PruningKind::kBlast), 4})
    ->Args({static_cast<int>(PruningKind::kRcnp), 1})
    ->Args({static_cast<int>(PruningKind::kRcnp), 4});

void BM_Pruning(benchmark::State& state) {
  const PruningKind kind = static_cast<PruningKind>(state.range(0));
  const PreparedDataset& prep = Prepared();
  // Synthetic probabilities: deterministic pseudo-random in [0,1].
  std::vector<double> probs(prep.pairs.size());
  Rng rng(3);
  for (double& p : probs) p = rng.NextDouble();
  PruningContext ctx = PruningContext::FromIndex(*prep.index, prep.stats);
  auto algorithm = MakePruningAlgorithm(kind);
  for (auto _ : state) {
    auto retained = algorithm->Prune(prep.pairs, probs, ctx);
    benchmark::DoNotOptimize(retained.size());
  }
  state.SetLabel(PruningKindName(kind));
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * prep.pairs.size()));
}
BENCHMARK(BM_Pruning)
    ->Arg(static_cast<int>(PruningKind::kBCl))
    ->Arg(static_cast<int>(PruningKind::kWep))
    ->Arg(static_cast<int>(PruningKind::kWnp))
    ->Arg(static_cast<int>(PruningKind::kRwnp))
    ->Arg(static_cast<int>(PruningKind::kBlast))
    ->Arg(static_cast<int>(PruningKind::kCep))
    ->Arg(static_cast<int>(PruningKind::kCnp))
    ->Arg(static_cast<int>(PruningKind::kRcnp));

// Registered last so it runs after every other benchmark: VmHWM is a
// process-wide monotone high-water mark, so per-benchmark readings would
// be order-dependent and mask later regressions. One reading over the
// whole suite gives bench_diff.py a single stable peak_rss_mb to track
// (run with no --benchmark_filter when comparing it across runs).
void BM_ProcessPeakRss(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(PeakRssKb());
  }
  state.counters["peak_rss_mb"] =
      benchmark::Counter(static_cast<double>(PeakRssKb()) / 1024.0);
}
BENCHMARK(BM_ProcessPeakRss)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
