// Regenerates Figure 10: run-time of the best algorithms (BCl, BLAST, CNP,
// RCNP) on the two largest datasets. BCl/CNP/RCNP all carry the expensive
// LCP feature; BLAST's Formula 1 avoids it and should cut RT by >50%.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Run-time of the best algorithms", "Figure 10");

  struct Row {
    const char* label;
    PruningKind kind;
    FeatureSet features;
  };
  const Row rows[] = {
      {"BCl", PruningKind::kBCl, FeatureSet::Paper2014()},
      {"BLAST", PruningKind::kBlast, FeatureSet::BlastOptimal()},
      {"CNP", PruningKind::kCnp, FeatureSet::Paper2014()},
      {"RCNP", PruningKind::kRcnp, FeatureSet::RcnpOptimal()},
  };

  for (const char* name : {"Movies", "WalmartAmazon"}) {
    PreparedDataset dataset = PrepareByName(name);
    TablePrinter table({"Algorithm", "mean RT (ms)", "features", "classify",
                        "prune"});
    for (const Row& row : rows) {
      double total = 0.0, feat = 0.0, classify = 0.0, prune = 0.0;
      for (size_t rep = 0; rep < Seeds(); ++rep) {
        MetaBlockingConfig config;
        config.pruning = row.kind;
        config.features = row.features;
        config.train_per_class = 250;
        config.seed = rep;
        MetaBlockingResult r = RunMetaBlocking(dataset, config);
        total += r.total_seconds;
        feat += r.feature_seconds;
        classify += r.classify_seconds;
        prune += r.prune_seconds;
      }
      const double n = static_cast<double>(Seeds());
      table.AddRow({row.label, TablePrinter::Fixed(total / n * 1e3, 1),
                    TablePrinter::Fixed(feat / n * 1e3, 1),
                    TablePrinter::Fixed(classify / n * 1e3, 1),
                    TablePrinter::Fixed(prune / n * 1e3, 1)});
    }
    std::printf("%s (|C| = %s):\n%s\n", name,
                TablePrinter::Count(dataset.pairs.size()).c_str(),
                table.ToString().c_str());
  }
  std::printf(
      "Expected shape: the LCP-bearing algorithms (BCl, CNP, RCNP) pay a "
      "consistent\nfeature-extraction premium over LCP-free BLAST. (The "
      "paper reports >2x on its\nSpark substrate; our single-node LCP sweep "
      "is cheaper, so the gap is smaller.)\n");
  return 0;
}
