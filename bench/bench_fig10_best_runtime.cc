// Regenerates Figure 10: run-time of the best algorithms (BCl, BLAST, CNP,
// RCNP) on the two largest datasets. BCl/CNP/RCNP all carry the expensive
// LCP feature; BLAST's Formula 1 avoids it and should cut RT by >50%.
//
// Runs on the staged sweep API: each (algorithm, feature set) row is a
// seeds-axis sweep, and all four rows of one dataset execute against ONE
// cached blocking preparation (engine prepare cache: 1 miss + 3 hits per
// dataset).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Run-time of the best algorithms", "Figure 10");

  struct Row {
    const char* label;
    PruningKind kind;
    FeatureSet features;
  };
  const Row rows[] = {
      {"BCl", PruningKind::kBCl, FeatureSet::Paper2014()},
      {"BLAST", PruningKind::kBlast, FeatureSet::BlastOptimal()},
      {"CNP", PruningKind::kCnp, FeatureSet::Paper2014()},
      {"RCNP", PruningKind::kRcnp, FeatureSet::RcnpOptimal()},
  };

  for (const char* name : {"Movies", "WalmartAmazon"}) {
    TablePrinter table({"Algorithm", "mean RT (ms)", "features", "classify",
                        "prune"});
    uint64_t num_candidates = 0;
    for (const Row& row : rows) {
      JobSpec base = CleanCleanBaseSpec(name);
      base.pruning.kind = row.kind;
      base.features = row.features;
      base.training.labels_per_class = 250;
      const SeedSweepSummary summary = RunSeedSweep(base, Seeds());
      num_candidates = summary.num_candidates;
      table.AddRow({row.label,
                    TablePrinter::Fixed(summary.metrics.rt_seconds * 1e3, 1),
                    TablePrinter::Fixed(summary.feature_seconds * 1e3, 1),
                    TablePrinter::Fixed(summary.classify_seconds * 1e3, 1),
                    TablePrinter::Fixed(summary.prune_seconds * 1e3, 1)});
    }
    std::printf("%s (|C| = %s):\n%s\n", name,
                TablePrinter::Count(num_candidates).c_str(),
                table.ToString().c_str());
  }

  const PrepareCacheStats cache = SharedEngine().prepare_cache_stats();
  std::printf("prepare cache: %zu misses (one per dataset), %zu hits\n\n",
              cache.misses, cache.hits);
  std::printf(
      "Expected shape: the LCP-bearing algorithms (BCl, CNP, RCNP) pay a "
      "consistent\nfeature-extraction premium over LCP-free BLAST. (The "
      "paper reports >2x on its\nSpark substrate; our single-node LCP sweep "
      "is cheaper, so the gap is smaller.)\n");
  return 0;
}
