// Regenerates Figure 8: the best algorithms of Supervised Meta-blocking
// (BCl, CNP — 2014 feature set) versus Generalized Supervised Meta-blocking
// (BLAST with Formula 1, RCNP with Formula 2), all trained on 500 labelled
// pairs, averaged over the nine datasets.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Best supervised vs generalized-supervised algorithms",
              "Figure 8");

  std::vector<PreparedDataset> datasets = PrepareAllCleanClean();

  struct Row {
    const char* label;
    PruningKind kind;
    FeatureSet features;
  };
  const Row rows[] = {
      {"BCl   (SM 2014)", PruningKind::kBCl, FeatureSet::Paper2014()},
      {"BLAST (this paper)", PruningKind::kBlast, FeatureSet::BlastOptimal()},
      {"CNP   (SM 2014)", PruningKind::kCnp, FeatureSet::Paper2014()},
      {"RCNP  (this paper)", PruningKind::kRcnp, FeatureSet::RcnpOptimal()},
  };

  TablePrinter table({"Algorithm", "Recall", "Precision", "F1"});
  for (const Row& row : rows) {
    MetaBlockingConfig config;
    config.pruning = row.kind;
    config.features = row.features;
    config.train_per_class = 250;
    AggregateMetrics avg =
        MacroAverage(RunAcrossDatasets(datasets, config, Seeds()));
    std::vector<std::string> cells = {row.label};
    for (auto& cell : MetricCells(avg)) cells.push_back(cell);
    table.AddRow(cells);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected shape: BLAST >= BCl on recall AND precision; RCNP "
              "trades a little\nrecall against CNP for clearly higher "
              "precision/F1.\n");
  return 0;
}
