// Regenerates Table 7: the full per-dataset comparison of the main
// cardinality-based algorithms — RCNP (Formula 2, 50 labels) vs CNP1 (same
// budget) vs CNP2 (original 2014 recipe).

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace gsmb;
using namespace gsmb::bench;

void RunVariant(const char* title,
                const std::vector<PreparedDataset>& datasets,
                const std::vector<MetaBlockingConfig>& configs) {
  TablePrinter table({"Dataset", "Recall", "Precision", "F1", "RT (ms)"});
  std::vector<AggregateMetrics> per_dataset;
  for (size_t d = 0; d < datasets.size(); ++d) {
    ExperimentResult r =
        RunRepeatedExperiment(datasets[d], configs[d], Seeds());
    per_dataset.push_back(r.aggregate);
    std::vector<std::string> row = {datasets[d].name};
    for (auto& cell : MetricCells(r.aggregate)) row.push_back(cell);
    row.push_back(TablePrinter::Fixed(r.aggregate.rt_seconds * 1e3, 1));
    table.AddRow(row);
  }
  AggregateMetrics avg = MacroAverage(per_dataset);
  std::vector<std::string> row = {"== average =="};
  for (auto& cell : MetricCells(avg)) row.push_back(cell);
  row.push_back(TablePrinter::Fixed(avg.rt_seconds * 1e3, 1));
  table.AddRow(row);
  std::printf("%s:\n%s\n", title, table.ToString().c_str());
}

}  // namespace

int main() {
  PrintBanner("Cardinality-based algorithms, per dataset", "Table 7");
  std::vector<PreparedDataset> datasets = PrepareAllCleanClean();

  std::vector<MetaBlockingConfig> rcnp;
  std::vector<MetaBlockingConfig> cnp1;
  std::vector<MetaBlockingConfig> cnp2;
  for (const PreparedDataset& d : datasets) {
    rcnp.push_back(
        BaselineConfig1(PruningKind::kRcnp, FeatureSet::RcnpOptimal()));
    cnp1.push_back(
        BaselineConfig1(PruningKind::kCnp, FeatureSet::RcnpOptimal()));
    cnp2.push_back(BaselineConfig2(PruningKind::kCnp, d));
  }

  RunVariant("(a) RCNP — 50 labels, {CF-IBF, RACCB, JS, LCP, WJS}", datasets,
             rcnp);
  RunVariant("(b) CNP1 — 50 labels, {CF-IBF, RACCB, JS, LCP, WJS}", datasets,
             cnp1);
  RunVariant("(c) CNP2 — 5%-rule labels, {CF-IBF, RACCB, JS, LCP}", datasets,
             cnp2);

  std::printf("Expected shape: RCNP dominates both baselines on precision "
              "and F1 and is\n~6x faster than CNP2 (tiny training set).\n");
  return 0;
}
