// Regenerates Figures 11 and 14: how the training-set size (20, 50..500
// labelled pairs, balanced) affects BLAST and RCNP, averaged over all
// datasets. The paper's counter-intuitive finding: recall inches up with
// more labels while precision and F1 fall — 50 labels suffice.

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace gsmb;
using namespace gsmb::bench;

void RunFigure(const char* figure, PruningKind kind, FeatureSet features,
               const std::vector<PreparedDataset>& datasets) {
  TablePrinter table({"Train size", "Recall", "Precision", "F1"});
  const size_t sizes[] = {20, 50, 100, 150, 200, 250, 300, 350, 400, 450,
                          500};
  for (size_t size : sizes) {
    MetaBlockingConfig config;
    config.pruning = kind;
    config.features = features;
    config.train_per_class = size / 2;
    AggregateMetrics avg =
        MacroAverage(RunAcrossDatasets(datasets, config, Seeds()));
    std::vector<std::string> row = {std::to_string(size)};
    for (auto& cell : MetricCells(avg)) row.push_back(cell);
    table.AddRow(row);
  }
  std::printf("%s — %s with %s:\n%s\n", figure, PruningKindName(kind),
              features.ToString().c_str(), table.ToString().c_str());
}

}  // namespace

int main() {
  PrintBanner("Effect of the training-set size", "Figures 11 and 14");
  std::vector<PreparedDataset> datasets = PrepareAllCleanClean();
  RunFigure("Figure 11", PruningKind::kBlast, FeatureSet::BlastOptimal(),
            datasets);
  RunFigure("Figure 14", PruningKind::kRcnp, FeatureSet::RcnpOptimal(),
            datasets);
  std::printf("Expected shape: recall rises slightly with more labels; "
              "precision and F1 peak\nat small sizes — 50 labelled pairs "
              "suffice, no active learning needed.\n");
  return 0;
}
