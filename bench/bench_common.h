// Shared machinery for the per-table/figure benchmark harnesses.
//
// Every bench binary regenerates one table or figure of the paper on the
// synthetic stand-in datasets. All binaries honour:
//   GSMB_SCALE  — dataset size multiplier (default 0.125),
//   GSMB_SEEDS  — repetitions per configuration (default 3; paper uses 10).

#ifndef GSMB_BENCH_BENCH_COMMON_H_
#define GSMB_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "datasets/specs.h"
#include "eval/experiment.h"
#include "gsmb/engine.h"
#include "gsmb/sweep.h"
#include "util/table_printer.h"

namespace gsmb::bench {

/// Scale / repetition knobs (env-driven).
double Scale();
size_t Seeds();

/// Prints the bench banner: which paper artefact this regenerates and at
/// what scale/repetitions it runs.
void PrintBanner(const std::string& title, const std::string& paper_ref);

/// Generates and prepares one Clean-Clean spec (Token Blocking -> Purging ->
/// Filtering -> candidates), timing excluded from experiment RT.
PreparedDataset PrepareSpec(const CleanCleanSpec& spec);

/// Prepares all nine paper datasets at the current scale.
std::vector<PreparedDataset> PrepareAllCleanClean();

/// Prepares one paper dataset by name at the current scale.
PreparedDataset PrepareByName(const std::string& name);

/// Prepares one Dirty scalability dataset.
PreparedDataset PrepareDirtySpec(const DirtySpec& spec);

// -- Sweep-API harness plumbing ---------------------------------------------
// The per-figure harnesses run their grids through gsmb::Engine::RunSweep
// against ONE process-wide engine, so every configuration of one dataset
// shares a single cached blocking preparation (the engine-level
// PreparedInputs cache) instead of re-preparing per experiment cell.

/// The process-wide engine the harnesses share (its prepare cache is what
/// makes repeated sweeps over one dataset prepare once).
const Engine& SharedEngine();

/// Base JobSpec of one generated Clean-Clean paper dataset at Scale():
/// batch mode, paper preprocessing defaults.
JobSpec CleanCleanBaseSpec(const std::string& name);

/// Seed-averaged summary of one configuration, produced by a seeds-axis
/// sweep — the sweep-API replacement for RunRepeatedExperiment. (Unlike
/// the legacy path, features are extracted per seed, so mean timings
/// include feature extraction in every repetition; same RT definition.)
struct SeedSweepSummary {
  AggregateMetrics metrics;
  double feature_seconds = 0.0;   // mean over seeds
  double classify_seconds = 0.0;  // mean over seeds
  double prune_seconds = 0.0;     // mean over seeds
  uint64_t num_candidates = 0;
};

/// Runs `base` with seeds 0..num_seeds-1 via SharedEngine().RunSweep and
/// averages. Exits with a diagnostic if any seed fails — a bench must
/// never silently average over missing runs.
SeedSweepSummary RunSeedSweep(const JobSpec& base, size_t num_seeds);

/// Per-kind seed-averaged metrics from one (pruning x seeds) sweep over a
/// single dataset — one shared preparation for the whole grid. Returned in
/// `kinds` order.
std::vector<AggregateMetrics> RunPruningKindSweep(
    const JobSpec& base, const std::vector<PruningKind>& kinds,
    size_t num_seeds);

/// The paper's two baseline configurations:
///   "1" — same budget as ours: 50 labelled pairs, new feature formulas;
///   "2" — the original Supervised Meta-blocking recipe: 5%-rule training
///         size and the 2014 feature set {CF-IBF, RACCB, JS, LCP}.
MetaBlockingConfig BaselineConfig1(PruningKind kind, FeatureSet features);
MetaBlockingConfig BaselineConfig2(PruningKind kind,
                                   const PreparedDataset& dataset);

/// Formats an AggregateMetrics triple as three table cells.
std::vector<std::string> MetricCells(const AggregateMetrics& m);

/// One feature-set cell of the Section 5.3 sweep.
struct FeatureSweepEntry {
  FeatureSet features;
  AggregateMetrics average;  // macro-average over datasets
};

/// Runs all 255 feature combinations for one pruning algorithm over the
/// given datasets (the brute-force search of Section 5.3). The full
/// 9-column feature matrix is computed once per dataset and column-sliced
/// per combination. Returns entries sorted by descending mean F1.
std::vector<FeatureSweepEntry> RunFeatureSweep(
    const std::vector<PreparedDataset>& datasets, PruningKind kind,
    size_t train_per_class, size_t seeds);

}  // namespace gsmb::bench

#endif  // GSMB_BENCH_BENCH_COMMON_H_
