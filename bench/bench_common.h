// Shared machinery for the per-table/figure benchmark harnesses.
//
// Every bench binary regenerates one table or figure of the paper on the
// synthetic stand-in datasets. All binaries honour:
//   GSMB_SCALE  — dataset size multiplier (default 0.125),
//   GSMB_SEEDS  — repetitions per configuration (default 3; paper uses 10).

#ifndef GSMB_BENCH_BENCH_COMMON_H_
#define GSMB_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "datasets/specs.h"
#include "eval/experiment.h"
#include "util/table_printer.h"

namespace gsmb::bench {

/// Scale / repetition knobs (env-driven).
double Scale();
size_t Seeds();

/// Prints the bench banner: which paper artefact this regenerates and at
/// what scale/repetitions it runs.
void PrintBanner(const std::string& title, const std::string& paper_ref);

/// Generates and prepares one Clean-Clean spec (Token Blocking -> Purging ->
/// Filtering -> candidates), timing excluded from experiment RT.
PreparedDataset PrepareSpec(const CleanCleanSpec& spec);

/// Prepares all nine paper datasets at the current scale.
std::vector<PreparedDataset> PrepareAllCleanClean();

/// Prepares one paper dataset by name at the current scale.
PreparedDataset PrepareByName(const std::string& name);

/// Prepares one Dirty scalability dataset.
PreparedDataset PrepareDirtySpec(const DirtySpec& spec);

/// The paper's two baseline configurations:
///   "1" — same budget as ours: 50 labelled pairs, new feature formulas;
///   "2" — the original Supervised Meta-blocking recipe: 5%-rule training
///         size and the 2014 feature set {CF-IBF, RACCB, JS, LCP}.
MetaBlockingConfig BaselineConfig1(PruningKind kind, FeatureSet features);
MetaBlockingConfig BaselineConfig2(PruningKind kind,
                                   const PreparedDataset& dataset);

/// Formats an AggregateMetrics triple as three table cells.
std::vector<std::string> MetricCells(const AggregateMetrics& m);

/// One feature-set cell of the Section 5.3 sweep.
struct FeatureSweepEntry {
  FeatureSet features;
  AggregateMetrics average;  // macro-average over datasets
};

/// Runs all 255 feature combinations for one pruning algorithm over the
/// given datasets (the brute-force search of Section 5.3). The full
/// 9-column feature matrix is computed once per dataset and column-sliced
/// per combination. Returns entries sorted by descending mean F1.
std::vector<FeatureSweepEntry> RunFeatureSweep(
    const std::vector<PreparedDataset>& datasets, PruningKind kind,
    size_t train_per_class, size_t seeds);

}  // namespace gsmb::bench

#endif  // GSMB_BENCH_BENCH_COMMON_H_
