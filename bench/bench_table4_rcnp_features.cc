// Regenerates Table 4: the ten feature sets achieving the highest mean F1
// with RCNP across all nine datasets (Section 5.3).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Feature selection for RCNP (255 combinations)", "Table 4");

  std::vector<PreparedDataset> datasets = PrepareAllCleanClean();
  std::vector<FeatureSweepEntry> sweep =
      RunFeatureSweep(datasets, PruningKind::kRcnp,
                      /*train_per_class=*/250, Seeds());

  TablePrinter table({"ID", "Feature set", "Recall", "Precision", "F1"});
  for (size_t i = 0; i < 10 && i < sweep.size(); ++i) {
    std::vector<std::string> row = {std::to_string(sweep[i].features.Id()),
                                    sweep[i].features.ToString()};
    for (auto& cell : MetricCells(sweep[i].average)) row.push_back(cell);
    table.AddRow(row);
  }
  std::printf("Top-10 of 255 feature sets by mean F1 (RCNP):\n%s\n",
              table.ToString().c_str());

  auto report = [&](const char* label, const FeatureSet& set) {
    for (size_t i = 0; i < sweep.size(); ++i) {
      if (sweep[i].features == set) {
        std::printf("%-28s rank %3zu/255, F1 = %.4f  %s\n", label, i + 1,
                    sweep[i].average.f1, set.ToString().c_str());
        return;
      }
    }
  };
  report("Formula 2 (RCNP optimal):", FeatureSet::RcnpOptimal());
  report("2014 feature set:", FeatureSet::Paper2014());
  std::printf("\nExpected shape: RCNP prefers richer sets than BLAST "
              "(typically 5-7 features\nincluding LCP), and the top sets "
              "are again near-ties.\n");
  return 0;
}
