// Regenerates Figures 12 and 13 on the AbtBuy stand-in with logistic
// regression:
//   Fig. 12 — density of the classifier's matching probabilities, split by
//             class, as the training set grows (20, 100, 500 labels), plus
//             the average and maximum per-node pruning thresholds;
//   Fig. 13 — recall and precision of BCl vs BLAST across training sizes.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "eval/histogram.h"

namespace {

using namespace gsmb;
using namespace gsmb::bench;

// Average and maximum of the WNP-style per-node average thresholds — the
// two horizontal lines of Figure 12.
std::pair<double, double> NodeThresholds(const PreparedDataset& dataset,
                                         const std::vector<double>& probs) {
  PruningContext ctx = PruningContext::FromIndex(*dataset.index, dataset.stats);
  std::vector<double> sum(ctx.num_nodes, 0.0);
  std::vector<uint32_t> count(ctx.num_nodes, 0);
  for (size_t i = 0; i < dataset.pairs.size(); ++i) {
    if (probs[i] < 0.5) continue;
    size_t a = dataset.pairs[i].left;
    size_t b = ctx.right_offset + dataset.pairs[i].right;
    sum[a] += probs[i];
    ++count[a];
    sum[b] += probs[i];
    ++count[b];
  }
  double total = 0.0;
  double max_threshold = 0.0;
  size_t nodes = 0;
  for (size_t n = 0; n < sum.size(); ++n) {
    if (count[n] == 0) continue;
    double avg = sum[n] / count[n];
    total += avg;
    max_threshold = std::max(max_threshold, avg);
    ++nodes;
  }
  return {nodes > 0 ? total / static_cast<double>(nodes) : 0.0,
          max_threshold};
}

}  // namespace

int main() {
  PrintBanner("Matching-probability distributions vs training size",
              "Figures 12 and 13");

  PreparedDataset dataset = PrepareByName("AbtBuy");

  // ---- Figure 12: class-wise probability densities. ----
  for (size_t train_size : {20, 100, 500}) {
    MetaBlockingConfig config;
    config.classifier = ClassifierKind::kLogisticRegression;
    config.pruning = PruningKind::kBlast;
    config.features = FeatureSet::BlastOptimal();
    config.train_per_class = train_size / 2;
    config.keep_probabilities = true;
    MetaBlockingResult result = RunMetaBlocking(dataset, config);

    ClassHistogram hist = ComputeClassHistogram(
        result.probabilities, dataset.is_positive, 10, 0.0, 1.0);
    auto [avg_thr, max_thr] = NodeThresholds(dataset, result.probabilities);
    std::printf(
        "Figure 12 — AbtBuy, %zu labelled pairs (dup=matching, "
        "non=non-matching):\n%savg node threshold = %.3f, max node "
        "threshold = %.3f\n\n",
        train_size, RenderClassHistogram(hist).c_str(), avg_thr, max_thr);
  }

  // ---- Figure 13: BCl vs BLAST across training sizes. ----
  TablePrinter table({"Train size", "BCl Re", "BCl Pr", "BLAST Re",
                      "BLAST Pr"});
  const size_t sizes[] = {20, 50, 100, 150, 200, 250, 300, 350, 400, 450,
                          500};
  for (size_t size : sizes) {
    AggregateMetrics per_algo[2];
    PruningKind kinds[2] = {PruningKind::kBCl, PruningKind::kBlast};
    for (int k = 0; k < 2; ++k) {
      MetaBlockingConfig config;
      config.classifier = ClassifierKind::kLogisticRegression;
      config.pruning = kinds[k];
      config.features = FeatureSet::BlastOptimal();
      config.train_per_class = size / 2;
      per_algo[k] = RunRepeatedExperiment(dataset, config, Seeds()).aggregate;
    }
    table.AddRow({std::to_string(size),
                  TablePrinter::Fixed(per_algo[0].recall, 4),
                  TablePrinter::Fixed(per_algo[0].precision, 4),
                  TablePrinter::Fixed(per_algo[1].recall, 4),
                  TablePrinter::Fixed(per_algo[1].precision, 4)});
  }
  std::printf("Figure 13 — BCl vs BLAST on AbtBuy:\n%s\n",
              table.ToString().c_str());
  std::printf("Expected shape: with more labels both algorithms gain recall "
              "and lose\nprecision; the duplicate-class density shifts "
              "toward high probabilities.\n");
  return 0;
}
