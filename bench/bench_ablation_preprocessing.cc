// ABLATION (design-choice study, not a paper table): what Block Purging
// and Block Filtering each contribute. The paper applies both before
// meta-blocking (Section 5.1); this bench quantifies why: candidates
// drop by orders of magnitude at negligible recall cost, and downstream
// BLAST quality improves.

#include <cstdio>

#include "bench_common.h"
#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "blocking/token_blocking.h"
#include "datasets/clean_clean_generator.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Preprocessing ablation: Purging / Filtering",
              "design-choice ablation — complements Table 2");

  for (const char* name : {"AbtBuy", "ImdbTmdb", "WalmartAmazon"}) {
    CleanCleanSpec spec = CleanCleanSpecByName(name, Scale());
    GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
    BlockCollection raw = TokenBlocking().Build(data.e1, data.e2);

    struct Variant {
      const char* label;
      BlockCollection blocks;
    };
    std::vector<Variant> variants;
    variants.push_back({"raw blocks", raw});
    variants.push_back({"+ purging", BlockPurging().Apply(raw)});
    variants.push_back({"+ filtering", BlockFiltering().Apply(raw)});
    variants.push_back(
        {"+ purging + filtering",
         BlockFiltering().Apply(BlockPurging().Apply(raw))});

    TablePrinter table({"Pipeline", "|C|", "Blocking Re", "BLAST Re",
                        "BLAST Pr", "BLAST F1"});
    for (Variant& v : variants) {
      GroundTruth gt = data.ground_truth;
      PreparedDataset prep =
          PrepareFromBlocks(name, std::move(v.blocks), std::move(gt));
      MetaBlockingConfig config;
      config.features = FeatureSet::BlastOptimal();
      config.pruning = PruningKind::kBlast;
      config.train_per_class = 25;
      AggregateMetrics m =
          RunRepeatedExperiment(prep, config, Seeds()).aggregate;
      table.AddRow({v.label, TablePrinter::Count(prep.pairs.size()),
                    TablePrinter::Fixed(prep.blocking_quality.recall, 3),
                    TablePrinter::Fixed(m.recall, 3),
                    TablePrinter::Fixed(m.precision, 3),
                    TablePrinter::Fixed(m.f1, 3)});
    }
    std::printf("%s:\n%s\n", name, table.ToString().c_str());
  }
  std::printf("Expected shape: purging kills the stop-word blocks, "
              "filtering shrinks |C|\nseveral-fold more; blocking recall "
              "barely moves and BLAST's F1 improves.\n");
  return 0;
}
