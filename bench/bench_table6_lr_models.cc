// Regenerates Table 6: the logistic-regression models BLAST learns over the
// D100K Dirty dataset in three repetitions — raw-space coefficients per
// feature, the intercept, the retained candidate pairs and the detected
// duplicates. The paper uses this table to explain the seed-to-seed
// variance of the scalability study.

#include <cstdio>

#include "bench_common.h"
#include "datasets/specs.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("BLAST's logistic-regression models over D100K", "Table 6");

  DirtySpec spec = PaperDirtySpecs(Scale())[2];  // D100K
  PreparedDataset dataset = PrepareDirtySpec(spec);
  std::printf("%s at scale %.4g: %s entities, %s candidates, |D| = %s\n\n",
              spec.name.c_str(), Scale(),
              TablePrinter::Count(spec.num_entities).c_str(),
              TablePrinter::Count(dataset.pairs.size()).c_str(),
              TablePrinter::Count(dataset.ground_truth.size()).c_str());

  const FeatureSet features = FeatureSet::BlastOptimal();
  TablePrinter table({"", "Iteration 1", "Iteration 2", "Iteration 3"});
  std::vector<std::vector<std::string>> columns;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    MetaBlockingConfig config;
    config.classifier = ClassifierKind::kLogisticRegression;
    config.pruning = PruningKind::kBlast;
    config.features = features;
    config.train_per_class = 25;
    config.seed = seed;
    config.keep_retained = true;
    MetaBlockingResult r = RunMetaBlocking(dataset, config);

    std::vector<std::string> col;
    for (double c : r.model_coefficients) {
      col.push_back(TablePrinter::Fixed(c, 4));
    }
    col.push_back(TablePrinter::Count(r.metrics.retained));
    col.push_back(TablePrinter::Count(r.metrics.true_positives));
    columns.push_back(std::move(col));
  }

  std::vector<std::string> labels;
  for (Feature f : features.Members()) labels.push_back(FeatureName(f));
  labels.push_back("Intercept");
  labels.push_back("Candidate pairs");
  labels.push_back("Detected duplicates");
  for (size_t row = 0; row < labels.size(); ++row) {
    table.AddRow({labels[row], columns[0][row], columns[1][row],
                  columns[2][row]});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected shape: coefficients vary across iterations (each "
              "draws a different\n50-label sample) while recall stays "
              "stable — the paper's Table 6 narrative.\n");
  return 0;
}
