// Streaming-executor benchmark: peak memory and wall clock of the
// bounded-memory path (stream/) against the in-memory batch path
// (core/pipeline.h) on a generated Dirty dataset.
//
// VmHWM is a process-wide high-water mark, so the two paths CANNOT be
// measured in one process — whichever runs first would poison the other's
// reading. The parent therefore re-executes itself once per mode
// (`--mode batch|stream`), each child reports its own peak RSS, and the
// parent merges the readings into a google-benchmark-shaped JSON (default
// bench_stream_executor.json) that tools/bench_diff.py diffs in CI, and
// verifies the two paths retained the same number of pairs.
//
//   GSMB_STREAM_ENTITIES  Dirty dataset size (default 20000)
//   GSMB_STREAM_SHARDS    streaming shard count (default 64)
//
// Headline number: peak-RSS reduction of stream vs batch (target >= 4x).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "datasets/dirty_generator.h"
#include "datasets/specs.h"
#include "gsmb/digest.h"
#include "gsmb/telemetry.h"
#include "stream/streaming_dataset.h"
#include "stream/streaming_executor.h"
#include "util/mem_stats.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace gsmb;

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

GeneratedDirty MakeDataset() {
  DirtySpec spec;
  spec.name = "StreamBench";
  spec.num_entities = EnvSize("GSMB_STREAM_ENTITIES", 20000);
  spec.seed = 17;
  return DirtyGenerator().Generate(spec);
}

MetaBlockingConfig BenchConfig() {
  MetaBlockingConfig config;
  config.features = FeatureSet::BlastOptimal();
  config.pruning = PruningKind::kBlast;
  config.train_per_class = 50;
  config.execution.num_threads = HardwareThreads();
  return config;
}

using Props = std::map<std::string, std::string>;

void WriteProps(const std::string& path, const Props& props) {
  std::ofstream out(path);
  for (const auto& [key, value] : props) out << key << "=" << value << "\n";
}

Props ReadProps(const std::string& path) {
  Props props;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const size_t eq = line.find('=');
    if (eq != std::string::npos) {
      props[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }
  return props;
}

double PropDouble(const Props& props, const std::string& key) {
  auto it = props.find(key);
  return it == props.end() ? 0.0 : std::atof(it->second.c_str());
}

// ---- child: one measured pipeline in a fresh process ----------------------

int RunChild(const std::string& mode, const std::string& props_path) {
  const GeneratedDirty data = MakeDataset();
  const MetaBlockingConfig config = BenchConfig();
  BlockingOptions blocking;
  blocking.execution.num_threads = config.execution.num_threads;

  Props props;
  props["mode"] = mode;
  props["entities"] = std::to_string(data.entities.size());

  Stopwatch total;
  if (mode == "batch") {
    Stopwatch watch;
    GroundTruth gt = data.ground_truth;
    const PreparedDataset prep =
        PrepareDirty("bench", data.entities, std::move(gt), blocking);
    props["prep_ms"] = std::to_string(watch.ElapsedMillis());
    MetaBlockingConfig digest_config = config;
    digest_config.keep_retained = true;
    watch.Restart();
    const MetaBlockingResult result = RunMetaBlocking(prep, digest_config);
    props["run_ms"] = std::to_string(watch.ElapsedMillis());
    obs::PairSetDigest digest;
    for (uint32_t index : result.retained_indices) {
      const CandidatePair& pair = prep.pairs[index];
      digest.AddPair(data.entities[pair.left].external_id(),
                     data.entities[pair.right].external_id());
    }
    props["pairs"] = std::to_string(prep.pairs.size());
    props["retained"] = std::to_string(result.metrics.retained);
    props["retained_digest"] = digest.Hex();
  } else {
    Stopwatch watch;
    GroundTruth gt = data.ground_truth;
    const StreamingDataset prep =
        PrepareStreamingDirty("bench", data.entities, std::move(gt),
                              blocking);
    props["prep_ms"] = std::to_string(watch.ElapsedMillis());
    StreamingOptions options;
    options.num_shards = EnvSize("GSMB_STREAM_SHARDS", 64);
    // Per-shard fold times come from the telemetry registry's
    // stream.shard.fold_us histogram, recorded by the executor itself.
    obs::TelemetrySink sink;
    obs::InstallSink(&sink);
    obs::PairSetDigest digest;
    const StreamingExecutor::RetainedSink retained_sink =
        [&](uint32_t, const CandidatePair& pair, double) {
          digest.AddPair(data.entities[pair.left].external_id(),
                         data.entities[pair.right].external_id());
        };
    watch.Restart();
    const StreamingResult result =
        StreamingExecutor(prep, options).Run(config, retained_sink);
    props["run_ms"] = std::to_string(watch.ElapsedMillis());
    props["retained_digest"] = digest.Hex();
    obs::InstallSink(nullptr);
    const obs::MetricsSnapshot snapshot = sink.SnapshotMetrics();
    const auto fold = snapshot.histograms.find("stream.shard.fold_us");
    if (fold != snapshot.histograms.end() && fold->second.count > 0) {
      props["fold_p50_us"] = std::to_string(fold->second.Percentile(0.50));
      props["fold_p95_us"] = std::to_string(fold->second.Percentile(0.95));
      props["fold_p99_us"] = std::to_string(fold->second.Percentile(0.99));
    }
    props["pairs"] = std::to_string(prep.num_candidates());
    props["retained"] = std::to_string(result.metrics.retained);
    props["shards"] = std::to_string(result.num_shards_used);
    props["arena_pairs"] = std::to_string(result.max_shard_candidates);
    props["sweeps"] = std::to_string(result.sweeps);
  }
  props["total_ms"] = std::to_string(total.ElapsedMillis());
  props["peak_rss_mb"] =
      std::to_string(static_cast<double>(PeakRssKb()) / 1024.0);
  WriteProps(props_path, props);
  return 0;
}

// ---- parent: spawn both modes, merge, verify ------------------------------

int RunChildProcess(const char* self, const std::string& mode,
                    const std::string& props_path) {
  std::ostringstream cmd;
  cmd << '"' << self << "\" --mode " << mode << " --props \"" << props_path
      << '"';
  // Each mode must run in a fresh process so peak-RSS numbers don't bleed
  // into each other; this bench is its own coordinator by design.
  // gsmb-lint: allow(raw-process)
  return std::system(cmd.str().c_str());
}

void EmitBenchJson(const std::string& path, const Props& stream,
                   const Props& batch, double rss_ratio) {
  std::ofstream out(path);
  auto row = [&](const Props& props, const char* name, bool last) {
    out << "    {\n"
        << "      \"name\": \"" << name << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"real_time\": " << PropDouble(props, "run_ms") << ",\n"
        << "      \"time_unit\": \"ms\",\n"
        << "      \"prep_ms\": " << PropDouble(props, "prep_ms") << ",\n"
        << "      \"pairs\": " << PropDouble(props, "pairs") << ",\n"
        << "      \"retained\": " << PropDouble(props, "retained") << ",\n"
        << "      \"peak_rss_mb\": " << PropDouble(props, "peak_rss_mb");
    // Registry-derived percentile keys, present on the stream row only;
    // bench_diff.py tolerates keys one side lacks.
    for (const char* key : {"fold_p50_us", "fold_p95_us", "fold_p99_us"}) {
      if (props.count(key) != 0) {
        out << ",\n      \"" << key << "\": " << PropDouble(props, key);
      }
    }
    if (props.count("retained_digest") != 0) {
      out << ",\n      \"retained_digest\": \""
          << props.at("retained_digest") << "\"";
    }
    out << "\n    }" << (last ? "\n" : ",\n");
  };
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"bench_stream_executor\",\n"
      << "    \"entities\": " << PropDouble(stream, "entities") << ",\n"
      << "    \"stream_shards\": " << PropDouble(stream, "shards") << ",\n"
      << "    \"stream_arena_pairs\": " << PropDouble(stream, "arena_pairs")
      << ",\n"
      << "    \"stream_rss_reduction_vs_batch\": " << rss_ratio << "\n"
      << "  },\n  \"benchmarks\": [\n";
  row(batch, "stream_executor/batch", false);
  row(stream, "stream_executor/stream", true);
  out << "  ]\n}\n";
}

int RunParent(const char* self, const std::string& json_path) {
  const std::string dir =
      std::filesystem::temp_directory_path().string();
  const std::string stream_props = dir + "/gsmb_stream_bench_stream.props";
  const std::string batch_props = dir + "/gsmb_stream_bench_batch.props";

  std::printf("== Streaming-executor benchmark (%zu entities, %zu shards, "
              "%zu threads) ==\n",
              EnvSize("GSMB_STREAM_ENTITIES", 20000),
              EnvSize("GSMB_STREAM_SHARDS", 64), HardwareThreads());

  if (RunChildProcess(self, "stream", stream_props) != 0 ||
      RunChildProcess(self, "batch", batch_props) != 0) {
    std::fprintf(stderr, "error: child benchmark process failed\n");
    return 1;
  }
  const Props stream = ReadProps(stream_props);
  const Props batch = ReadProps(batch_props);

  const double stream_rss = PropDouble(stream, "peak_rss_mb");
  const double batch_rss = PropDouble(batch, "peak_rss_mb");
  const double ratio = stream_rss > 0.0 ? batch_rss / stream_rss : 0.0;

  std::printf("\n%-8s %12s %12s %12s %12s\n", "mode", "pairs", "retained",
              "run ms", "peak MB");
  for (const Props* props : {&batch, &stream}) {
    std::printf("%-8s %12.0f %12.0f %12.1f %12.1f\n",
                props->at("mode").c_str(), PropDouble(*props, "pairs"),
                PropDouble(*props, "retained"), PropDouble(*props, "run_ms"),
                PropDouble(*props, "peak_rss_mb"));
  }
  std::printf("\nstreaming: %.0f shards, arena %.0f pairs, %.0f sweep(s)\n",
              PropDouble(stream, "shards"),
              PropDouble(stream, "arena_pairs"),
              PropDouble(stream, "sweeps"));
  if (stream.count("fold_p50_us") != 0) {
    std::printf("shard fold: p50 %.0f us | p95 %.0f us | p99 %.0f us "
                "(registry)\n",
                PropDouble(stream, "fold_p50_us"),
                PropDouble(stream, "fold_p95_us"),
                PropDouble(stream, "fold_p99_us"));
  }
  std::printf("peak-RSS reduction (batch / stream): %.2fx\n", ratio);

  EmitBenchJson(json_path, stream, batch, ratio);
  std::printf("wrote %s\n", json_path.c_str());

  const auto prop = [](const Props& props, const char* key) {
    auto it = props.find(key);
    return it == props.end() ? std::string() : it->second;
  };
  if (PropDouble(stream, "retained") != PropDouble(batch, "retained") ||
      PropDouble(stream, "pairs") != PropDouble(batch, "pairs") ||
      prop(stream, "retained_digest") != prop(batch, "retained_digest") ||
      prop(stream, "retained_digest").empty()) {
    std::fprintf(stderr,
                 "FAIL: streaming and batch disagree on candidate/retained "
                 "counts or retained-set digests\n");
    return 1;
  }
  std::printf("STREAM BENCH OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode, props_path;
  std::string json_path = "bench_stream_executor.json";
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--mode") == 0) {
      mode = value("--mode");
    } else if (std::strcmp(argv[i], "--props") == 0) {
      props_path = value("--props");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = value("--json");
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (!mode.empty()) {
    if (props_path.empty()) {
      std::fprintf(stderr, "error: --mode needs --props\n");
      return 2;
    }
    return RunChild(mode, props_path);
  }
  return RunParent(argv[0], json_path);
}
