// Regenerates Table 1 (dataset characteristics) and Table 2 (blocking
// quality) for the nine synthetic stand-in datasets: Token Blocking ->
// Block Purging -> Block Filtering(0.8), evaluated against ground truth.

#include <cstdio>

#include "bench_common.h"

namespace {

// Paper Table 2 reference values (recall; precision) for orientation.
struct PaperRow {
  const char* name;
  double recall;
  double precision;
};
constexpr PaperRow kPaperTable2[] = {
    {"AbtBuy", 0.948, 2.78e-2},    {"DblpAcm", 0.999, 4.81e-2},
    {"ScholarDblp", 0.998, 2.80e-3}, {"AmazonGP", 0.840, 1.29e-2},
    {"ImdbTmdb", 0.988, 1.78e-2},  {"ImdbTvdb", 0.985, 8.90e-3},
    {"TmdbTvdb", 0.989, 5.50e-3},  {"Movies", 0.976, 8.59e-4},
    {"WalmartAmazon", 1.000, 4.22e-5},
};

double PaperRecall(const std::string& name) {
  for (const PaperRow& row : kPaperTable2) {
    if (name == row.name) return row.recall;
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Blocking characteristics & quality", "Tables 1 and 2");

  TablePrinter t1({"Dataset", "|E1|", "|E2|", "|D|", "|C|", "|B|", "||B||"});
  TablePrinter t2({"Dataset", "Recall", "Precision", "F1", "paper Re"});

  for (const CleanCleanSpec& spec : PaperCleanCleanSpecs(Scale())) {
    PreparedDataset prep = PrepareSpec(spec);
    t1.AddRow({prep.name, TablePrinter::Count(spec.e1_size),
               TablePrinter::Count(spec.e2_size),
               TablePrinter::Count(prep.ground_truth.size()),
               TablePrinter::Count(prep.pairs.size()),
               TablePrinter::Count(prep.stats.num_blocks),
               TablePrinter::Count(
                   static_cast<size_t>(prep.stats.total_comparisons))});
    const BlockingQuality& q = prep.blocking_quality;
    t2.AddRow({prep.name, TablePrinter::Fixed(q.recall, 3),
               TablePrinter::Scientific(q.precision, 2),
               TablePrinter::Scientific(q.f1, 2),
               TablePrinter::Fixed(PaperRecall(prep.name), 3)});
  }

  std::printf("Table 1 — dataset characteristics (at scale %.4g):\n%s\n",
              Scale(), t1.ToString().c_str());
  std::printf("Table 2 — block collection quality:\n%s\n",
              t2.ToString().c_str());
  std::printf("Expected shape: near-perfect recall everywhere except "
              "AmazonGP (~0.84); precision uniformly tiny.\n");
  return 0;
}
