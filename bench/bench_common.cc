#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "datasets/clean_clean_generator.h"
#include "datasets/dirty_generator.h"
#include "ml/sampler.h"

namespace gsmb::bench {

double Scale() {
  static const double scale = ScaleFromEnv(0.125);
  return scale;
}

size_t Seeds() {
  static const size_t seeds = SeedsFromEnv(3);
  return seeds;
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("Regenerates: %s (Generalized Supervised Meta-blocking, "
              "PVLDB 14(1), 2022)\n",
              paper_ref.c_str());
  std::printf(
      "Synthetic stand-in datasets at scale %.4g, %zu repetition(s) "
      "(GSMB_SCALE / GSMB_SEEDS to change).\n\n",
      Scale(), Seeds());
}

PreparedDataset PrepareSpec(const CleanCleanSpec& spec) {
  GeneratedCleanClean data = CleanCleanGenerator().Generate(spec);
  return PrepareCleanClean(spec.name, data.e1, data.e2,
                           std::move(data.ground_truth));
}

std::vector<PreparedDataset> PrepareAllCleanClean() {
  std::vector<PreparedDataset> out;
  for (const CleanCleanSpec& spec : PaperCleanCleanSpecs(Scale())) {
    out.push_back(PrepareSpec(spec));
  }
  return out;
}

PreparedDataset PrepareByName(const std::string& name) {
  return PrepareSpec(CleanCleanSpecByName(name, Scale()));
}

PreparedDataset PrepareDirtySpec(const DirtySpec& spec) {
  GeneratedDirty data = DirtyGenerator().Generate(spec);
  return PrepareDirty(spec.name, data.entities,
                      std::move(data.ground_truth));
}

const Engine& SharedEngine() {
  // Never destroyed: harnesses call this from main() straight through
  // exit, and the cache's handles must outlive every caller.
  static const Engine* engine = new Engine();
  return *engine;
}

JobSpec CleanCleanBaseSpec(const std::string& name) {
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedCleanClean;
  spec.dataset.name = name;
  spec.dataset.scale = Scale();
  return spec;
}

namespace {

std::vector<uint64_t> SeedAxis(size_t num_seeds) {
  std::vector<uint64_t> seeds(num_seeds);
  for (size_t i = 0; i < num_seeds; ++i) seeds[i] = i;
  return seeds;
}

[[noreturn]] void DieOnVariant(const SweepVariant& variant) {
  std::fprintf(stderr, "sweep variant %s failed: %s\n",
               variant.label.c_str(), variant.status.ToString().c_str());
  std::exit(1);
}

[[noreturn]] void DieOnSweep(const Status& status) {
  std::fprintf(stderr, "sweep failed: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

SeedSweepSummary RunSeedSweep(const JobSpec& base, size_t num_seeds) {
  SweepSpec sweep;
  sweep.base = base;
  sweep.axes.seeds = SeedAxis(num_seeds);
  Result<SweepResult> result = SharedEngine().RunSweep(sweep);
  if (!result.ok()) DieOnSweep(result.status());

  SeedSweepSummary summary;
  MetricsAccumulator acc;
  for (const SweepVariant& variant : result->variants) {
    if (!variant.status.ok()) DieOnVariant(variant);
    acc.Add(variant.result.metrics, variant.result.total_seconds);
    summary.feature_seconds += variant.result.feature_seconds;
    summary.classify_seconds += variant.result.classify_seconds;
    summary.prune_seconds += variant.result.prune_seconds;
    summary.num_candidates = variant.result.num_candidates;
  }
  const auto n = static_cast<double>(num_seeds);
  summary.metrics = acc.Summary();
  summary.feature_seconds /= n;
  summary.classify_seconds /= n;
  summary.prune_seconds /= n;
  return summary;
}

std::vector<AggregateMetrics> RunPruningKindSweep(
    const JobSpec& base, const std::vector<PruningKind>& kinds,
    size_t num_seeds) {
  SweepSpec sweep;
  sweep.base = base;
  sweep.axes.pruning = kinds;
  sweep.axes.seeds = SeedAxis(num_seeds);
  Result<SweepResult> result = SharedEngine().RunSweep(sweep);
  if (!result.ok()) DieOnSweep(result.status());

  // Expansion order is pruning-major, seeds innermost: variant i belongs
  // to kind i / num_seeds.
  std::vector<MetricsAccumulator> per_kind(kinds.size());
  for (size_t i = 0; i < result->variants.size(); ++i) {
    const SweepVariant& variant = result->variants[i];
    if (!variant.status.ok()) DieOnVariant(variant);
    per_kind[i / num_seeds].Add(variant.result.metrics,
                                variant.result.total_seconds);
  }
  std::vector<AggregateMetrics> out;
  out.reserve(kinds.size());
  for (const MetricsAccumulator& acc : per_kind) out.push_back(acc.Summary());
  return out;
}

MetaBlockingConfig BaselineConfig1(PruningKind kind, FeatureSet features) {
  MetaBlockingConfig config;
  config.pruning = kind;
  config.features = features;
  config.train_per_class = 25;  // 50 labelled instances
  return config;
}

MetaBlockingConfig BaselineConfig2(PruningKind kind,
                                   const PreparedDataset& dataset) {
  MetaBlockingConfig config;
  config.pruning = kind;
  config.features = FeatureSet::Paper2014();
  config.train_per_class = FivePercentRuleSize(dataset.ground_truth.size());
  return config;
}

std::vector<std::string> MetricCells(const AggregateMetrics& m) {
  return {TablePrinter::Fixed(m.recall, 4), TablePrinter::Fixed(m.precision, 4),
          TablePrinter::Fixed(m.f1, 4)};
}

std::vector<FeatureSweepEntry> RunFeatureSweep(
    const std::vector<PreparedDataset>& datasets, PruningKind kind,
    size_t train_per_class, size_t seeds) {
  const std::vector<FeatureSet>& all_sets = FeatureSet::EnumerateAll();

  // Per feature set, accumulate per-dataset aggregates.
  std::vector<std::vector<AggregateMetrics>> per_set(all_sets.size());

  for (const PreparedDataset& dataset : datasets) {
    FeatureExtractor extractor(*dataset.index, dataset.pairs);
    Matrix full = extractor.ComputeAll();
    for (size_t s = 0; s < all_sets.size(); ++s) {
      const FeatureSet& set = all_sets[s];
      Matrix features = full.SelectColumns(set.FullMatrixColumns());
      MetaBlockingConfig config;
      config.pruning = kind;
      config.features = set;
      config.train_per_class = train_per_class;
      MetricsAccumulator acc;
      for (size_t seed = 0; seed < seeds; ++seed) {
        config.seed = seed;
        acc.Add(RunMetaBlockingWithFeatures(dataset, config, features));
      }
      per_set[s].push_back(acc.Summary());
    }
  }

  std::vector<FeatureSweepEntry> out;
  out.reserve(all_sets.size());
  for (size_t s = 0; s < all_sets.size(); ++s) {
    out.push_back({all_sets[s], MacroAverage(per_set[s])});
  }
  std::sort(out.begin(), out.end(),
            [](const FeatureSweepEntry& a, const FeatureSweepEntry& b) {
              if (a.average.f1 != b.average.f1) return a.average.f1 > b.average.f1;
              return a.features.Id() < b.features.Id();
            });
  return out;
}

}  // namespace gsmb::bench
