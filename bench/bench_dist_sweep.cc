// Distributed-sweep benchmark: the SAME 16-variant sweep run three ways —
// in-process RunSweep, and RunSweepRemote over 2 and 4 worker processes —
// timing each and hard-failing on any retained-digest divergence between
// them. This is the bench-side answer to "what does the process boundary
// cost?": the remote tier adds one snapshot save, N snapshot loads and
// the wire round-trips on top of the shared work queue, and this harness
// shows where that overhead crosses over against per-variant compute.
//
//   GSMB_SCALE    dataset size multiplier (default 0.25)
//   GSMB_THREADS  in-process worker threads (default: all hardware threads)
//   --worker PATH worker binary (default: the gsmb_cli this build produced)
//   --json PATH   benchmark-shaped JSON artifact (bench_diff.py diffs it
//                 in CI next to the micro / streaming artifacts)
//
// Exits non-zero on any cross-tier digest mismatch, so CI can run it as a
// smoke.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gsmb/digest.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "gsmb/remote.h"
#include "gsmb/sweep.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

using namespace gsmb;

double EnvScale() {
  const char* value = std::getenv("GSMB_SCALE");
  if (value == nullptr) return 0.25;
  const double parsed = std::atof(value);
  return parsed > 0.0 ? parsed : 0.25;
}

size_t EnvThreads() {
  const char* value = std::getenv("GSMB_THREADS");
  if (value == nullptr) return HardwareThreads();
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : HardwareThreads();
}

struct BenchRow {
  std::string name;
  double real_time_ms = 0.0;
};

bool EmitBenchJson(const std::string& path, double scale, size_t threads,
                   const std::vector<BenchRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"bench_dist_sweep\",\n"
      << "    \"scale\": " << scale << ",\n"
      << "    \"threads\": " << threads << "\n"
      << "  },\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    out << "    {\n"
        << "      \"name\": \"" << rows[i].name << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"real_time\": " << rows[i].real_time_ms << ",\n"
        << "      \"time_unit\": \"ms\"\n"
        << "    }" << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  out << "  ]\n}\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return false;
  }
  return true;
}

SweepSpec BenchSweep(double scale, size_t threads) {
  SweepSpec sweep;
  sweep.base.dataset.source = DatasetSource::kGeneratedDirty;
  sweep.base.dataset.name = "D10K";
  sweep.base.dataset.scale = scale;
  sweep.base.training.labels_per_class = 25;
  sweep.base.execution.options.num_threads = threads;
  sweep.axes.pruning = {PruningKind::kWnp, PruningKind::kBlast,
                        PruningKind::kCnp, PruningKind::kRcnp};
  sweep.axes.labels_per_class = {15, 25};
  sweep.axes.seeds = {0, 1};
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string worker = GSMB_CLI_PATH;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--worker") == 0 && i + 1 < argc) {
      worker = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_dist_sweep [--worker gsmb_cli] "
                   "[--json out.json]\n");
      return 2;
    }
  }

  const double scale = EnvScale();
  const size_t threads = EnvThreads();
  const SweepSpec sweep = BenchSweep(scale, threads);
  std::printf(
      "== Distributed sweep benchmark (scale %.3g, %zu threads, "
      "16 variants) ==\n\n",
      scale, threads);

  TablePrinter table({"tier", "workers", "ok", "sweep ms", "ms/variant"});
  std::vector<BenchRow> bench_rows;

  Engine engine;
  Stopwatch watch;
  Result<SweepResult> local = engine.RunSweep(sweep);
  const double local_ms = watch.ElapsedMillis();
  if (!local.ok() || !local->all_ok()) {
    std::fprintf(stderr, "in-process sweep failed: %s\n",
                 local.ok() ? "variant error" : local.status().ToString().c_str());
    return 1;
  }
  table.AddRow({"in-process", std::to_string(threads), "yes",
                TablePrinter::Fixed(local_ms, 1),
                TablePrinter::Fixed(local_ms / 16.0, 1)});
  bench_rows.push_back({"sweep/in-process", local_ms});

  bool consistent = true;
  for (size_t workers : {size_t{2}, size_t{4}}) {
    RemoteOptions options;
    options.num_workers = workers;
    options.worker_command = worker;
    watch.Restart();
    Result<SweepResult> remote = RunSweepRemote(sweep, options);
    const double remote_ms = watch.ElapsedMillis();
    if (!remote.ok() || !remote->all_ok()) {
      std::fprintf(stderr, "remote sweep (%zu workers) failed: %s\n", workers,
                   remote.ok() ? "variant error"
                               : remote.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < local->variants.size(); ++i) {
      if (remote->variants[i].result.retained_digest !=
          local->variants[i].result.retained_digest) {
        std::fprintf(
            stderr, "MISMATCH: %s remote digest %s != in-process %s\n",
            local->variants[i].label.c_str(),
            obs::DigestHex(remote->variants[i].result.retained_digest).c_str(),
            obs::DigestHex(local->variants[i].result.retained_digest).c_str());
        consistent = false;
      }
    }
    table.AddRow({"remote", std::to_string(workers), "yes",
                  TablePrinter::Fixed(remote_ms, 1),
                  TablePrinter::Fixed(remote_ms / 16.0, 1)});
    bench_rows.push_back(
        {"sweep/workers" + std::to_string(workers), remote_ms});
  }

  std::printf("%s", table.ToString().c_str());
  if (!consistent) {
    std::fprintf(stderr, "\ndigest mismatch between tiers\n");
    return 1;
  }
  std::printf("\nall tiers digest-identical across 16 variants\n");

  if (!json_path.empty()) {
    if (!EmitBenchJson(json_path, scale, threads, bench_rows)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
