// Regenerates Figure 5: average recall / precision / F1 of all weight-based
// pruning algorithms (BCl baseline, WEP, WNP, RWNP, BLAST r=0.35) across
// the nine datasets; features {CF-IBF, RACCB, JS, LCP}, 500 labelled pairs.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Weight-based pruning algorithm selection", "Figure 5");

  std::vector<PreparedDataset> datasets = PrepareAllCleanClean();

  const PruningKind kinds[] = {PruningKind::kBCl, PruningKind::kWep,
                               PruningKind::kWnp, PruningKind::kRwnp,
                               PruningKind::kBlast};

  TablePrinter table({"Algorithm", "Recall", "Precision", "F1"});
  for (PruningKind kind : kinds) {
    MetaBlockingConfig config;
    config.pruning = kind;
    config.features = FeatureSet::Paper2014();
    config.train_per_class = 250;  // 500 labelled instances
    AggregateMetrics avg =
        MacroAverage(RunAcrossDatasets(datasets, config, Seeds()));
    std::vector<std::string> row = {PruningKindName(kind)};
    for (auto& cell : MetricCells(avg)) row.push_back(cell);
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: WEP/RWNP trade recall for the highest precision/F1;\n"
      "WNP stays close to BCl's recall; BLAST beats WEP on all three "
      "measures\nand keeps the highest recall among the new algorithms.\n");
  return 0;
}
