// Regenerates Figure 5: average recall / precision / F1 of all weight-based
// pruning algorithms (BCl baseline, WEP, WNP, RWNP, BLAST r=0.35) across
// the nine datasets; features {CF-IBF, RACCB, JS, LCP}, 500 labelled pairs.
//
// Runs on the staged sweep API: per dataset, ONE (pruning x seeds) sweep
// shares a single cached blocking preparation through the engine's
// PreparedInputs cache — the paper grid without per-cell re-blocking.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace gsmb;
  using namespace gsmb::bench;
  PrintBanner("Weight-based pruning algorithm selection", "Figure 5");

  const std::vector<PruningKind> kinds = {
      PruningKind::kBCl, PruningKind::kWep, PruningKind::kWnp,
      PruningKind::kRwnp, PruningKind::kBlast};

  // Per kind, the per-dataset seed-averaged aggregates (kind-major so the
  // macro-average below mirrors the paper's "average over 9 datasets").
  std::vector<std::vector<AggregateMetrics>> per_kind(kinds.size());
  for (const CleanCleanSpec& dataset : PaperCleanCleanSpecs(Scale())) {
    JobSpec base = CleanCleanBaseSpec(dataset.name);
    base.features = FeatureSet::Paper2014();
    base.training.labels_per_class = 250;  // 500 labelled instances
    const std::vector<AggregateMetrics> by_kind =
        RunPruningKindSweep(base, kinds, Seeds());
    for (size_t k = 0; k < kinds.size(); ++k) {
      per_kind[k].push_back(by_kind[k]);
    }
  }

  TablePrinter table({"Algorithm", "Recall", "Precision", "F1"});
  for (size_t k = 0; k < kinds.size(); ++k) {
    AggregateMetrics avg = MacroAverage(per_kind[k]);
    std::vector<std::string> row = {PruningKindName(kinds[k])};
    for (auto& cell : MetricCells(avg)) row.push_back(cell);
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  const PrepareCacheStats cache = SharedEngine().prepare_cache_stats();
  std::printf(
      "prepared %zu blockings for %zu sweep variants (prepare-cache hits "
      "%zu)\n\n",
      cache.misses, per_kind.size() * per_kind.front().size() * Seeds(),
      cache.hits);
  std::printf(
      "Expected shape: WEP/RWNP trade recall for the highest precision/F1;\n"
      "WNP stays close to BCl's recall; BLAST beats WEP on all three "
      "measures\nand keeps the highest recall among the new algorithms.\n");
  return 0;
}
