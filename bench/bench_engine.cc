// Engine-facade benchmark: ONE JobSpec driven through every registered
// backend, timing each and asserting the cross-backend equivalence the
// facade promises (batch == streaming retained counts for any spec;
// serving joins them on a shard-pure spec with one shard).
//
// This is the bench-side answer to "what does the facade cost?": the
// engine adds validation + dispatch + spec plumbing on top of the raw
// pipelines, and this harness shows that overhead is noise against the
// pipeline itself while giving one place to compare backend wall-clocks.
// Since the staged API it also times Engine::Prepare cold vs cached — the
// saving every repeated Run()/sweep over one dataset banks — and asserts
// the cached handle is pointer-identical to the cold one.
//
//   GSMB_SCALE    dataset size multiplier (default 0.25)
//   GSMB_THREADS  worker threads (default: all hardware threads)
//   --json PATH   benchmark-shaped JSON artifact (bench_diff.py diffs it
//                 in CI next to the micro / streaming artifacts)
//
// Exits non-zero on any cross-backend retained-count mismatch, so CI can
// run it as a smoke.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "gsmb/digest.h"
#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

using namespace gsmb;

double EnvScale() {
  const char* value = std::getenv("GSMB_SCALE");
  if (value == nullptr) return 0.25;
  const double parsed = std::atof(value);
  return parsed > 0.0 ? parsed : 0.25;
}

size_t EnvThreads() {
  const char* value = std::getenv("GSMB_THREADS");
  if (value == nullptr) return HardwareThreads();
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : HardwareThreads();
}

struct BenchRow {
  std::string name;
  double real_time_ms = 0.0;
  /// Retained-set provenance digest (gsmb/digest.h), empty on rows that
  /// time non-run work (prepare cold/cached). bench_diff.py hard-fails on
  /// any digest change: timings drift, retained sets must not.
  std::string retained_digest;
};

bool EmitBenchJson(const std::string& path, double scale, size_t threads,
                   const std::vector<BenchRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"bench_engine\",\n"
      << "    \"scale\": " << scale << ",\n"
      << "    \"threads\": " << threads << "\n"
      << "  },\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    out << "    {\n"
        << "      \"name\": \"" << rows[i].name << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"real_time\": " << rows[i].real_time_ms << ",\n"
        << "      \"time_unit\": \"ms\"";
    if (!rows[i].retained_digest.empty()) {
      out << ",\n      \"retained_digest\": \"" << rows[i].retained_digest
          << "\"";
    }
    out << "\n    }" << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  out << "  ]\n}\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_engine [--json out.json]\n");
      return 2;
    }
  }

  const double scale = EnvScale();
  const size_t threads = EnvThreads();
  std::printf("== Engine facade benchmark (scale %.3g, %zu threads) ==\n\n",
              scale, threads);

  // A serving-compatible spec, so all three backends run the same job:
  // Dirty ER, token blocking, no filtering, linear classifier, one shard.
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = scale;
  spec.blocking.filter_ratio = 1.0;
  spec.training.labels_per_class = 50;
  spec.training.seed = 1;
  spec.execution.options.num_threads = threads;
  spec.execution.shards = 1;

  Engine engine;
  TablePrinter table({"backend", "pruning", "retained", "recall",
                      "precision", "engine ms", "pipeline ms"});
  std::vector<BenchRow> bench_rows;

  bool consistent = true;
  for (PruningKind pruning : {PruningKind::kBlast, PruningKind::kRcnp}) {
    spec.pruning.kind = pruning;
    size_t reference_retained = 0;
    uint64_t reference_digest = 0;
    bool have_reference = false;
    for (const std::string& backend : engine.BackendNames()) {
      Stopwatch watch;
      Result<JobResult> result = engine.RunOn(backend, spec);
      const double engine_ms = watch.ElapsedMillis();
      if (!result.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", backend.c_str(),
                     PruningKindName(pruning),
                     result.status().ToString().c_str());
        return 1;
      }
      table.AddRow({backend, PruningKindName(pruning),
                    std::to_string(result->metrics.retained),
                    TablePrinter::Fixed(result->metrics.recall, 4),
                    TablePrinter::Fixed(result->metrics.precision, 4),
                    TablePrinter::Fixed(engine_ms, 1),
                    TablePrinter::Fixed(result->total_seconds * 1e3, 1)});
      bench_rows.push_back({"engine/" + backend + "/" +
                                PruningKindName(pruning),
                            engine_ms,
                            obs::DigestHex(result->retained_digest)});
      if (!have_reference) {
        reference_retained = result->metrics.retained;
        reference_digest = result->retained_digest;
        have_reference = true;
      } else if (result->metrics.retained != reference_retained ||
                 result->retained_digest != reference_digest) {
        std::fprintf(stderr,
                     "MISMATCH: %s retained %zu pairs (digest %s), "
                     "expected %zu (digest %s)\n",
                     backend.c_str(), result->metrics.retained,
                     obs::DigestHex(result->retained_digest).c_str(),
                     reference_retained,
                     obs::DigestHex(reference_digest).c_str());
        consistent = false;
      }
    }
  }
  std::printf("%s", table.ToString().c_str());

  // ---- Cold vs cached preparation: what the staged API saves. ----------
  // A fresh engine pays the full load + block + count once; the second
  // Prepare of the same dataset+blocking is a cache hit returning the SAME
  // handle. Both rows land in the JSON artifact so bench_diff.py tracks
  // the cold cost and the (near-zero) cached cost across commits.
  {
    Engine cold_engine;
    Stopwatch watch;
    Result<PreparedHandle> cold = cold_engine.Prepare(spec);
    const double cold_ms = watch.ElapsedMillis();
    if (!cold.ok()) {
      std::fprintf(stderr, "prepare (cold) failed: %s\n",
                   cold.status().ToString().c_str());
      return 1;
    }
    watch.Restart();
    Result<PreparedHandle> cached = cold_engine.Prepare(spec);
    const double cached_ms = watch.ElapsedMillis();
    if (!cached.ok() || cached->get() != cold->get()) {
      std::fprintf(stderr,
                   "prepare (cached) did not return the shared handle\n");
      return 1;
    }
    const PrepareCacheStats stats = cold_engine.prepare_cache_stats();
    if (stats.misses != 1 || stats.hits != 1) {
      std::fprintf(stderr,
                   "prepare cache counted %zu misses / %zu hits, "
                   "expected 1 / 1\n",
                   stats.misses, stats.hits);
      return 1;
    }
    std::printf(
        "\nEngine::Prepare: cold %.1f ms, cached %.3f ms (%zu candidates, "
        "~%.1f MB resident)\n",
        cold_ms, cached_ms,
        static_cast<size_t>((*cold)->num_candidates()),
        static_cast<double>(stats.bytes) / (1024.0 * 1024.0));
    bench_rows.push_back({"engine/prepare_cold", cold_ms});
    bench_rows.push_back({"engine/prepare_cached", cached_ms});
  }

  // The facade's own overhead: a spec JSON round trip plus validation per
  // Run() is the only cost the engine adds before dispatch.
  Stopwatch watch;
  constexpr int kReps = 1000;
  for (int i = 0; i < kReps; ++i) {
    Result<JobSpec> parsed = JobSpec::FromJson(spec.ToJson());
    if (!parsed.ok() || !parsed->Validate().ok()) return 1;
  }
  std::printf("spec JSON round trip + validation: %.1f us/job\n",
              watch.ElapsedMillis() * 1e3 / kReps);

  if (!json_path.empty()) {
    if (!EmitBenchJson(json_path, scale, threads, bench_rows)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!consistent) return 1;
  std::printf(
      "ENGINE BENCH OK: all backends retained identical sets (digests)\n");
  return 0;
}
