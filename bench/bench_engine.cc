// Engine-facade benchmark: ONE JobSpec driven through every registered
// backend, timing each and asserting the cross-backend equivalence the
// facade promises (batch == streaming retained counts for any spec;
// serving joins them on a shard-pure spec with one shard).
//
// This is the bench-side answer to "what does the facade cost?": the
// engine adds validation + dispatch + spec plumbing on top of the raw
// pipelines, and this harness shows that overhead is noise against the
// pipeline itself while giving one place to compare backend wall-clocks.
//
//   GSMB_SCALE    dataset size multiplier (default 0.25)
//   GSMB_THREADS  worker threads (default: all hardware threads)
//
// Exits non-zero on any cross-backend retained-count mismatch, so CI can
// run it as a smoke.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gsmb/engine.h"
#include "gsmb/job_spec.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

using namespace gsmb;

double EnvScale() {
  const char* value = std::getenv("GSMB_SCALE");
  if (value == nullptr) return 0.25;
  const double parsed = std::atof(value);
  return parsed > 0.0 ? parsed : 0.25;
}

size_t EnvThreads() {
  const char* value = std::getenv("GSMB_THREADS");
  if (value == nullptr) return HardwareThreads();
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : HardwareThreads();
}

}  // namespace

int main() {
  const double scale = EnvScale();
  const size_t threads = EnvThreads();
  std::printf("== Engine facade benchmark (scale %.3g, %zu threads) ==\n\n",
              scale, threads);

  // A serving-compatible spec, so all three backends run the same job:
  // Dirty ER, token blocking, no filtering, linear classifier, one shard.
  JobSpec spec;
  spec.dataset.source = DatasetSource::kGeneratedDirty;
  spec.dataset.name = "D10K";
  spec.dataset.scale = scale;
  spec.blocking.filter_ratio = 1.0;
  spec.training.labels_per_class = 50;
  spec.training.seed = 1;
  spec.execution.options.num_threads = threads;
  spec.execution.shards = 1;

  Engine engine;
  TablePrinter table({"backend", "pruning", "retained", "recall",
                      "precision", "engine ms", "pipeline ms"});

  bool consistent = true;
  for (PruningKind pruning : {PruningKind::kBlast, PruningKind::kRcnp}) {
    spec.pruning.kind = pruning;
    size_t reference_retained = 0;
    bool have_reference = false;
    for (const std::string& backend : engine.BackendNames()) {
      Stopwatch watch;
      Result<JobResult> result = engine.RunOn(backend, spec);
      const double engine_ms = watch.ElapsedMillis();
      if (!result.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", backend.c_str(),
                     PruningKindName(pruning),
                     result.status().ToString().c_str());
        return 1;
      }
      table.AddRow({backend, PruningKindName(pruning),
                    std::to_string(result->metrics.retained),
                    TablePrinter::Fixed(result->metrics.recall, 4),
                    TablePrinter::Fixed(result->metrics.precision, 4),
                    TablePrinter::Fixed(engine_ms, 1),
                    TablePrinter::Fixed(result->total_seconds * 1e3, 1)});
      if (!have_reference) {
        reference_retained = result->metrics.retained;
        have_reference = true;
      } else if (result->metrics.retained != reference_retained) {
        std::fprintf(stderr,
                     "MISMATCH: %s retained %zu pairs, expected %zu\n",
                     backend.c_str(), result->metrics.retained,
                     reference_retained);
        consistent = false;
      }
    }
  }
  std::printf("%s", table.ToString().c_str());

  // The facade's own overhead: a spec JSON round trip plus validation per
  // Run() is the only cost the engine adds before dispatch.
  Stopwatch watch;
  constexpr int kReps = 1000;
  for (int i = 0; i < kReps; ++i) {
    Result<JobSpec> parsed = JobSpec::FromJson(spec.ToJson());
    if (!parsed.ok() || !parsed->Validate().ok()) return 1;
  }
  std::printf("\nspec JSON round trip + validation: %.1f us/job\n",
              watch.ElapsedMillis() * 1e3 / kReps);

  if (!consistent) return 1;
  std::printf("ENGINE BENCH OK: all backends retained identical counts\n");
  return 0;
}
