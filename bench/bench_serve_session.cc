// Serving-layer micro-benchmark: ingest throughput, incremental Refresh()
// vs cold rebuild, and single-probe query latency for MetaBlockingSession
// on the generated Dirty scalability series (D10K and friends).
//
// The headline number is the incremental speed-up: after a small batch of
// late arrivals dirties a fraction of the shards, Refresh() must beat a
// full from-scratch session rebuild by a wide margin (>= 5x at the default
// scale) while retaining bit-identical pairs.
//
//   GSMB_SCALE   dataset size multiplier (default 0.25 here)
//   GSMB_SHARDS  shard count (default 64)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datasets/dirty_generator.h"
#include "datasets/specs.h"
#include "gsmb/telemetry.h"
#include "serve/session.h"
#include "serve/serving_model.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace {

using namespace gsmb;

size_t ShardsFromEnv() {
  const char* value = std::getenv("GSMB_SHARDS");
  if (value == nullptr) return 128;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : 128;
}

double EnvScale() {
  const char* value = std::getenv("GSMB_SCALE");
  if (value == nullptr) return 0.25;
  const double parsed = std::atof(value);
  return parsed > 0.0 ? parsed : 0.25;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "bench_serve_session.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json out.json]\n", argv[0]);
      return 2;
    }
  }
  // Latency percentiles come from the telemetry registry, not ad-hoc
  // timers: the sink's serve.*.latency_us histograms see every
  // ingest/refresh/query this benchmark issues.
  obs::TelemetrySink sink;
  obs::InstallSink(&sink);

  const double scale = EnvScale();
  const size_t num_shards = ShardsFromEnv();
  const size_t threads = HardwareThreads();
  std::printf(
      "== Serving-session micro-benchmark (scale %.3g, %zu shards, %zu "
      "threads) ==\n\n",
      scale, num_shards, threads);

  DirtySpec spec = PaperDirtySpecs(scale).front();  // D10K at `scale`
  const GeneratedDirty data = DirtyGenerator().Generate(spec);
  const std::vector<EntityProfile>& profiles = data.entities.profiles();
  std::printf("dataset %s: %zu profiles, %zu duplicate pairs\n",
              spec.name.c_str(), profiles.size(), data.ground_truth.size());

  ServingModelTraining training;
  training.train_per_class = 50;
  training.execution.num_threads = threads;
  const ServingModel model = TrainServingModel(
      data.entities, data.ground_truth, FeatureSet::BlastOptimal(), training);

  SessionOptions options;
  options.num_shards = num_shards;
  options.execution.num_threads = threads;
  options.max_block_size = 100;

  // ---- Ingest throughput (tokenise + route, no re-blocking). ----
  // Hold back a handful of "late arrivals" (~0.1%): the incremental case
  // is a trickle of new records against a big resident collection.
  const size_t late_count = std::max<size_t>(1, profiles.size() / 1000);
  const size_t resident_count = profiles.size() - late_count;
  MetaBlockingSession session(options, model);
  Stopwatch watch;
  session.AddProfiles({profiles.begin(), profiles.begin() + resident_count});
  const double ingest_seconds = watch.ElapsedSeconds();
  std::printf("ingest      %zu profiles in %.1f ms  (%.0f profiles/s)\n",
              resident_count, ingest_seconds * 1e3,
              static_cast<double>(resident_count) / ingest_seconds);

  // ---- Cold build: refresh with every shard dirty. Best of 3 runs (the
  // session is plain data, so forking a copy replays the same work). ----
  watch.Restart();
  session.Refresh();
  double cold_seconds = watch.ElapsedSeconds();
  for (int rep = 0; rep < 2; ++rep) {
    MetaBlockingSession fresh(options, model);
    fresh.AddProfiles({profiles.begin(), profiles.begin() + resident_count});
    watch.Restart();
    fresh.Refresh();
    cold_seconds = std::min(cold_seconds, watch.ElapsedSeconds());
  }
  std::printf("cold build  %zu shards in %.1f ms (best of 3)\n", num_shards,
              cold_seconds * 1e3);

  // ---- Incremental: the late trickle arrives as one small batch;
  // Refresh() touches only the dirtied shards. Best of 3. ----
  watch.Restart();
  session.AddProfiles({profiles.begin() + resident_count, profiles.end()});
  const size_t dirty = session.DirtyShardCount();
  const double add_seconds = watch.ElapsedSeconds();
  watch.Restart();
  session.Refresh();
  double refresh_seconds = watch.ElapsedSeconds();
  for (int rep = 0; rep < 2; ++rep) {
    MetaBlockingSession fresh(options, model);
    fresh.AddProfiles({profiles.begin(), profiles.begin() + resident_count});
    fresh.Refresh();
    fresh.AddProfiles({profiles.begin() + resident_count, profiles.end()});
    watch.Restart();
    fresh.Refresh();
    refresh_seconds = std::min(refresh_seconds, watch.ElapsedSeconds());
  }
  const double speedup = cold_seconds / refresh_seconds;
  std::printf(
      "incremental %zu late profiles -> %zu/%zu shards dirty; add %.2f ms, "
      "refresh %.1f ms\n",
      profiles.size() - resident_count, dirty, num_shards, add_seconds * 1e3,
      refresh_seconds * 1e3);
  std::printf("speed-up    refresh vs cold rebuild: %.1fx\n", speedup);

  // Correctness of the headline: incremental state == cold rebuild.
  MetaBlockingSession cold(options, model);
  cold.AddProfiles(profiles);
  cold.Refresh();
  const bool identical = session.RetainedPairs() == cold.RetainedPairs();
  std::printf("equivalence incremental == cold rebuild: %s\n",
              identical ? "yes" : "NO");

  // ---- Query latency: probe every 37th resident profile. ----
  size_t queries = 0;
  size_t results = 0;
  watch.Restart();
  for (size_t i = 0; i < profiles.size(); i += 37) {
    results += session.QueryCandidates(profiles[i], 10).size();
    ++queries;
  }
  const double query_seconds = watch.ElapsedSeconds();
  std::printf(
      "query       %zu probes in %.1f ms  (%.3f ms/query, %.1f results "
      "avg)\n",
      queries, query_seconds * 1e3, query_seconds * 1e3 / queries,
      static_cast<double>(results) / static_cast<double>(queries));

  // ---- Registry-derived latency percentiles + bench JSON. ----
  obs::InstallSink(nullptr);
  const obs::MetricsSnapshot snapshot = sink.SnapshotMetrics();
  double q50 = 0.0, q95 = 0.0, q99 = 0.0;
  const auto query_hist = snapshot.histograms.find("serve.query.latency_us");
  if (query_hist != snapshot.histograms.end() &&
      query_hist->second.count > 0) {
    q50 = query_hist->second.Percentile(0.50);
    q95 = query_hist->second.Percentile(0.95);
    q99 = query_hist->second.Percentile(0.99);
    std::printf(
        "latency     p50 %.0f us | p95 %.0f us | p99 %.0f us (registry, "
        "%llu probes)\n",
        q50, q95, q99,
        static_cast<unsigned long long>(query_hist->second.count));
  }

  {
    std::ofstream out(json_path);
    out << "{\n  \"context\": {\n"
        << "    \"executable\": \"bench_serve_session\",\n"
        << "    \"scale\": " << scale << ",\n"
        << "    \"num_shards\": " << num_shards << ",\n"
        << "    \"refresh_speedup_vs_cold\": " << speedup << "\n"
        << "  },\n  \"benchmarks\": [\n";
    auto row = [&](const char* name, double real_ms, bool last,
                   const std::string& extra = std::string()) {
      out << "    {\n      \"name\": \"" << name << "\",\n"
          << "      \"run_type\": \"iteration\",\n"
          << "      \"real_time\": " << real_ms << ",\n"
          << "      \"time_unit\": \"ms\"" << extra << "\n    }"
          << (last ? "\n" : ",\n");
    };
    std::ostringstream query_extra;
    query_extra << ",\n      \"query_p50_us\": " << q50
                << ",\n      \"query_p95_us\": " << q95
                << ",\n      \"query_p99_us\": " << q99;
    row("serve_session/ingest", ingest_seconds * 1e3, false);
    row("serve_session/cold_build", cold_seconds * 1e3, false);
    row("serve_session/refresh", refresh_seconds * 1e3, false);
    row("serve_session/query", query_seconds * 1e3 / queries, true,
        query_extra.str());
    out << "  ]\n}\n";
  }
  std::printf("wrote %s\n", json_path.c_str());

  const bool speedup_ok = speedup >= 5.0;
  std::printf("\n%s\n", identical && speedup_ok
                            ? "SERVE BENCH OK"
                            : (identical ? "SERVE BENCH: speed-up below 5x"
                                         : "SERVE BENCH: EQUIVALENCE FAILED"));
  return identical ? 0 : 1;
}
