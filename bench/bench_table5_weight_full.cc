// Regenerates Table 5: the full per-dataset comparison of the main
// weight-based algorithms —
//   (a) BLAST with Formula 1 and 50 labelled pairs,
//   (b) BCl1: the binary-classifier baseline with the *same* budget,
//   (c) BCl2: the original Supervised Meta-blocking recipe (5%-rule
//       training size, 2014 feature set).

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace gsmb;
using namespace gsmb::bench;

void RunVariant(const char* title,
                const std::vector<PreparedDataset>& datasets,
                const std::vector<MetaBlockingConfig>& configs) {
  TablePrinter table({"Dataset", "Recall", "Precision", "F1", "RT (ms)"});
  std::vector<AggregateMetrics> per_dataset;
  for (size_t d = 0; d < datasets.size(); ++d) {
    ExperimentResult r =
        RunRepeatedExperiment(datasets[d], configs[d], Seeds());
    per_dataset.push_back(r.aggregate);
    std::vector<std::string> row = {datasets[d].name};
    for (auto& cell : MetricCells(r.aggregate)) row.push_back(cell);
    row.push_back(TablePrinter::Fixed(r.aggregate.rt_seconds * 1e3, 1));
    table.AddRow(row);
  }
  AggregateMetrics avg = MacroAverage(per_dataset);
  std::vector<std::string> row = {"== average =="};
  for (auto& cell : MetricCells(avg)) row.push_back(cell);
  row.push_back(TablePrinter::Fixed(avg.rt_seconds * 1e3, 1));
  table.AddRow(row);
  std::printf("%s:\n%s\n", title, table.ToString().c_str());
}

}  // namespace

int main() {
  PrintBanner("Weight-based algorithms, per dataset", "Table 5");
  std::vector<PreparedDataset> datasets = PrepareAllCleanClean();

  std::vector<MetaBlockingConfig> blast;
  std::vector<MetaBlockingConfig> bcl1;
  std::vector<MetaBlockingConfig> bcl2;
  for (const PreparedDataset& d : datasets) {
    blast.push_back(
        BaselineConfig1(PruningKind::kBlast, FeatureSet::BlastOptimal()));
    bcl1.push_back(
        BaselineConfig1(PruningKind::kBCl, FeatureSet::BlastOptimal()));
    bcl2.push_back(BaselineConfig2(PruningKind::kBCl, d));
  }

  RunVariant("(a) BLAST — 50 labels, {CF-IBF, RACCB, RS, NRS}", datasets,
             blast);
  RunVariant("(b) BCl1 — 50 labels, {CF-IBF, RACCB, RS, NRS}", datasets,
             bcl1);
  RunVariant("(c) BCl2 — 5%-rule labels, {CF-IBF, RACCB, JS, LCP}", datasets,
             bcl2);

  std::printf(
      "Expected shape: BLAST beats BCl2 on all effectiveness measures and "
      "runs\nmuch faster (no LCP, tiny training set); against BCl1 it "
      "gains recall at\na small precision cost.\n");
  return 0;
}
