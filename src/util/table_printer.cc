#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace gsmb {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

namespace {

std::vector<size_t> ColumnWidths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

void AppendPadded(std::string* out, const std::string& cell, size_t width) {
  out->append(cell);
  out->append(width - std::min(width, cell.size()), ' ');
}

}  // namespace

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths = ColumnWidths(header_, rows_);
  std::string out;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out.append("  ");
    AppendPadded(&out, header_[c], widths[c]);
  }
  out.push_back('\n');
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.append("  ");
      AppendPadded(&out, row[c], widths[c]);
    }
    out.push_back('\n');
  }
  return out;
}

std::string TablePrinter::ToMarkdown() const {
  std::string out = "|";
  for (const auto& h : header_) {
    out.append(" ");
    out.append(h);
    out.append(" |");
  }
  out.append("\n|");
  for (size_t c = 0; c < header_.size(); ++c) out.append("---|");
  out.push_back('\n');
  for (const auto& row : rows_) {
    out.append("|");
    for (const auto& cell : row) {
      out.append(" ");
      out.append(cell);
      out.append(" |");
    }
    out.push_back('\n');
  }
  return out;
}

std::string TablePrinter::Fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Scientific(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string TablePrinter::Count(size_t v) {
  // Render with thousands separators for readability: 1234567 -> 1,234,567.
  std::string digits = std::to_string(v);
  std::string out;
  for (size_t i = 0; i < digits.size(); ++i) {
    size_t remaining = digits.size() - i;
    if (i > 0 && remaining % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace gsmb
