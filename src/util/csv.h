// Minimal RFC-4180-style CSV reader/writer.
//
// Used to persist synthetic datasets and to let downstream users load their
// own entity collections (see datasets/io.h). Supports quoted fields with
// embedded commas, quotes and newlines.

#ifndef GSMB_UTIL_CSV_H_
#define GSMB_UTIL_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace gsmb {

using CsvRow = std::vector<std::string>;

/// Parses a full CSV document. Handles \r\n and \n line endings and quoted
/// fields spanning multiple lines. Empty trailing line is ignored.
std::vector<CsvRow> ParseCsv(std::string_view text);

/// Reads and parses a CSV file. Throws std::runtime_error when the file
/// cannot be opened.
std::vector<CsvRow> ReadCsvFile(const std::string& path);

/// Escapes a single field (quotes it when it contains , " or newline).
std::string EscapeCsvField(std::string_view field);

/// Serialises rows to CSV text with \n line endings.
std::string WriteCsv(const std::vector<CsvRow>& rows);

/// Writes rows to a file. Throws std::runtime_error on I/O failure.
void WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows);

}  // namespace gsmb

#endif  // GSMB_UTIL_CSV_H_
