#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace gsmb {

size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

// One submitted Run() call. `next` hands out task indices lock-free; the
// bookkeeping that needs the pool mutex (completion count, first error) is
// updated once per finished task.
struct ThreadPool::Batch {
  Batch(size_t n, const std::function<void(size_t)>& t)
      : num_tasks(n), task(t) {}

  const size_t num_tasks;
  const std::function<void(size_t)>& task;
  std::atomic<size_t> next{0};
  size_t done = 0;                 // guarded by pool mutex
  std::exception_ptr first_error;  // guarded by pool mutex

  bool Exhausted() const {
    return next.load(std::memory_order_relaxed) >= num_tasks;
  }
};

ThreadPool::ThreadPool(size_t max_workers)
    : max_workers_(max_workers == 0 ? HardwareThreads() : max_workers) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::ActiveWorkers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::EnsureWorkersLocked(size_t wanted) {
  wanted = std::min(wanted, max_workers_);
  while (workers_.size() < wanted) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::DrainBatch(const std::shared_ptr<Batch>& batch) {
  for (;;) {
    const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->num_tasks) return;
    std::exception_ptr error;
    try {
      batch->task(i);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !batch->first_error) batch->first_error = error;
      if (++batch->done == batch->num_tasks) batch_done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    // Drop fully claimed batches (their remaining tasks are executing on
    // other threads; completion is tracked by `done`, not by the queue).
    while (!queue_.empty() && queue_.front()->Exhausted()) queue_.pop_front();
    std::shared_ptr<Batch> batch;
    for (const std::shared_ptr<Batch>& b : queue_) {
      if (!b->Exhausted()) {
        batch = b;
        break;
      }
    }
    if (!batch) continue;
    lock.unlock();
    DrainBatch(batch);
    lock.lock();
  }
}

void ThreadPool::Run(size_t num_tasks,
                     const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;
  if (num_tasks == 1) {
    task(0);
    return;
  }

  auto batch = std::make_shared<Batch>(num_tasks, task);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The caller drains too, so num_tasks - 1 workers suffice.
    EnsureWorkersLocked(num_tasks - 1);
    queue_.push_back(batch);
  }
  work_available_.notify_all();

  // Participate: claims tasks until none remain unclaimed. This also makes
  // nested Run() calls from inside a task safe — the nested caller drains
  // its own batch even when every worker is occupied.
  DrainBatch(batch);

  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [&] { return batch->done == batch->num_tasks; });
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    fn(0, n);
    return;
  }

  // Same chunk geometry as the original thread-spawning implementation, so
  // fn sees identical (begin, end) ranges for any given (n, num_threads).
  const size_t chunk = (n + num_threads - 1) / num_threads;
  std::vector<ChunkRange> ranges;
  ranges.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t begin = t * chunk;
    if (begin >= n) break;
    ranges.push_back({begin, std::min(n, begin + chunk)});
  }

  ThreadPool::Global().Run(ranges.size(), [&](size_t i) {
    fn(ranges[i].begin, ranges[i].end);
  });
}

std::vector<ChunkRange> DeterministicChunks(size_t n, size_t grain) {
  if (grain == 0) grain = 1;
  std::vector<ChunkRange> chunks;
  chunks.reserve(n / grain + 1);
  for (size_t begin = 0; begin < n; begin += grain) {
    chunks.push_back({begin, std::min(n, begin + grain)});
  }
  return chunks;
}

}  // namespace gsmb
