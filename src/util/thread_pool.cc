#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace gsmb {

size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    fn(0, n);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto guarded = [&](size_t begin, size_t end) {
    try {
      fn(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  const size_t chunk = (n + num_threads - 1) / num_threads;
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t begin = t * chunk;
    if (begin >= n) break;
    const size_t end = std::min(n, begin + chunk);
    workers.emplace_back(guarded, begin, end);
  }
  for (std::thread& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ChunkRange> DeterministicChunks(size_t n, size_t grain) {
  if (grain == 0) grain = 1;
  std::vector<ChunkRange> chunks;
  chunks.reserve(n / grain + 1);
  for (size_t begin = 0; begin < n; begin += grain) {
    chunks.push_back({begin, std::min(n, begin + grain)});
  }
  return chunks;
}

}  // namespace gsmb
