#include "util/mem_stats.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gsmb {

MemStats ReadMemStats() {
  MemStats stats;
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return stats;
  char line[256];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    // Lines look like "VmHWM:     12345 kB".
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      stats.vm_hwm_kb = static_cast<size_t>(std::strtoull(line + 6, nullptr, 10));
    } else if (std::strncmp(line, "VmRSS:", 6) == 0) {
      stats.vm_rss_kb = static_cast<size_t>(std::strtoull(line + 6, nullptr, 10));
    }
  }
  std::fclose(file);
  return stats;
}

size_t PeakRssKb() { return ReadMemStats().vm_hwm_kb; }

}  // namespace gsmb
