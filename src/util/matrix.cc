#include "util/matrix.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace gsmb {

Matrix Matrix::SelectColumns(const std::vector<size_t>& columns) const {
  Matrix out(rows_, columns.size());
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = Row(r);
    double* dst = out.Row(r);
    for (size_t c = 0; c < columns.size(); ++c) {
      assert(columns[c] < cols_);
      dst[c] = src[columns[c]];
    }
  }
  return out;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (size_t r = 0; r < row_indices.size(); ++r) {
    assert(row_indices[r] < rows_);
    const double* src = Row(row_indices[r]);
    double* dst = out.Row(r);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

bool SolveLinearSystem(std::vector<double>* a, std::vector<double>* b,
                       size_t n) {
  assert(a->size() == n * n && b->size() == n);
  std::vector<double>& A = *a;
  std::vector<double>& B = *b;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the row with the largest |entry| in this column.
    size_t pivot = col;
    double best = std::fabs(A[col * n + col]);
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(A[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(A[col * n + c], A[pivot * n + c]);
      std::swap(B[col], B[pivot]);
    }
    double inv = 1.0 / A[col * n + col];
    for (size_t r = col + 1; r < n; ++r) {
      double factor = A[r * n + col] * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) A[r * n + c] -= factor * A[col * n + c];
      B[r] -= factor * B[col];
    }
  }
  // Back substitution.
  for (size_t ri = n; ri-- > 0;) {
    double acc = B[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= A[ri * n + c] * B[c];
    B[ri] = acc / A[ri * n + ri];
  }
  return true;
}

}  // namespace gsmb
