// Dense row-major matrix of doubles.
//
// The feature pipeline materialises one row per candidate pair, so the
// layout is optimised for row iteration (classifier inference) and column
// selection (feature-subset experiments reuse a full 9-column matrix).

#ifndef GSMB_UTIL_MATRIX_H_
#define GSMB_UTIL_MATRIX_H_

#include <cstddef>
#include <vector>

namespace gsmb {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Returns a new matrix with only the given columns (in the given order).
  Matrix SelectColumns(const std::vector<size_t>& columns) const;

  /// Returns a new matrix with only the given rows (in the given order).
  Matrix SelectRows(const std::vector<size_t>& row_indices) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves the dense linear system A * x = b via Gaussian elimination with
/// partial pivoting. A is n x n row-major, modified in place; b is modified
/// in place and holds the solution on return. Returns false when A is
/// numerically singular.
bool SolveLinearSystem(std::vector<double>* a, std::vector<double>* b,
                       size_t n);

}  // namespace gsmb

#endif  // GSMB_UTIL_MATRIX_H_
