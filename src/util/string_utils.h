// String tokenisation helpers used by the schema-agnostic blocking methods.

#ifndef GSMB_UTIL_STRING_UTILS_H_
#define GSMB_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace gsmb {

/// Lower-cases ASCII characters in place-copy.
std::string ToLowerAscii(std::string_view s);

/// Splits `s` into maximal runs of alphanumeric characters, lower-cased.
/// This is the signature function of schema-agnostic Token Blocking: every
/// token of every attribute value becomes a blocking key.
std::vector<std::string> TokenizeAlnum(std::string_view s);

/// Returns all character q-grams of `s` (after lower-casing); strings
/// shorter than q yield the whole string as a single gram.
std::vector<std::string> QGrams(std::string_view s, size_t q);

/// Returns all suffixes of `s` with length >= min_len (after lower-casing).
/// Strings shorter than min_len yield the whole string.
std::vector<std::string> Suffixes(std::string_view s, size_t min_len);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view TrimAscii(std::string_view s);

}  // namespace gsmb

#endif  // GSMB_UTIL_STRING_UTILS_H_
