// Fixed-width ASCII table rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables/figures as text;
// TablePrinter keeps their output aligned and diff-friendly.

#ifndef GSMB_UTIL_TABLE_PRINTER_H_
#define GSMB_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace gsmb {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; missing cells are rendered empty, extra cells dropped.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header separator line.
  std::string ToString() const;

  /// Renders as a GitHub-flavoured markdown table.
  std::string ToMarkdown() const;

  size_t num_rows() const { return rows_.size(); }

  /// Helpers for numeric cells.
  static std::string Fixed(double v, int precision);
  static std::string Scientific(double v, int precision);
  static std::string Count(size_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gsmb

#endif  // GSMB_UTIL_TABLE_PRINTER_H_
