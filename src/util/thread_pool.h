// Minimal data-parallel helper.
//
// The paper's experiments run on a 72-core machine through Spark; the
// single-node analogue here is ParallelFor, which splits a contiguous index
// range into per-thread chunks. Used by the feature extractor (each chunk
// covers whole pivot-entity groups, so outputs are written disjointly and
// results are bit-identical to the serial path).

#ifndef GSMB_UTIL_THREAD_POOL_H_
#define GSMB_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace gsmb {

/// Number of hardware threads (>= 1).
size_t HardwareThreads();

/// Runs fn(chunk_begin, chunk_end) over [0, n) split into roughly equal
/// contiguous chunks, one per thread. `num_threads` <= 1 (or n small) runs
/// inline. fn must be safe to call concurrently on disjoint ranges;
/// exceptions thrown by fn propagate to the caller (first one wins).
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn);

/// One contiguous piece of [0, n).
struct ChunkRange {
  size_t begin;
  size_t end;

  bool operator==(const ChunkRange& other) const = default;
};

/// Default items-per-chunk for DeterministicChunks: large enough that the
/// small inputs typical of tests and examples stay in a single chunk (so
/// chunked arithmetic degenerates to the plain serial order), small enough
/// to load-balance production-sized inputs across many workers.
inline constexpr size_t kDefaultChunkGrain = 8192;

/// Splits [0, n) into fixed-size chunks of `grain` items (the last chunk
/// may be shorter). Boundaries depend only on n and grain — never on the
/// worker count — so per-chunk partial results merged in chunk order are
/// bit-identical for ANY number of threads, including one. This is the
/// building block behind every "parallel output equals serial output"
/// guarantee in the pruning and candidate-generation hot paths: workers
/// write into chunk-owned slots, and the caller folds the slots in
/// ascending chunk order.
std::vector<ChunkRange> DeterministicChunks(size_t n,
                                            size_t grain = kDefaultChunkGrain);

}  // namespace gsmb

#endif  // GSMB_UTIL_THREAD_POOL_H_
