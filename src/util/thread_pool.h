// Minimal data-parallel helpers: a persistent thread pool and ParallelFor.
//
// The paper's experiments run on a 72-core machine through Spark; the
// single-node analogue here is ParallelFor, which splits a contiguous index
// range into per-thread chunks. Used by the feature extractor (each chunk
// covers whole pivot-entity groups, so outputs are written disjointly and
// results are bit-identical to the serial path).
//
// ParallelFor used to spawn fresh std::threads on every call, which is
// visible overhead on small inputs and call-heavy workloads (the
// 255-combination feature sweep, the serving layer's per-shard refreshes).
// It now dispatches to a process-wide reusable ThreadPool; the chunk
// geometry handed to fn is unchanged, so callers observe identical results.

#ifndef GSMB_UTIL_THREAD_POOL_H_
#define GSMB_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gsmb {

/// Number of hardware threads (>= 1).
size_t HardwareThreads();

/// A persistent pool of worker threads executing batches of independent
/// tasks. Workers are spawned lazily (up to `max_workers`) on first use and
/// reused across batches, so repeated small parallel regions pay no
/// thread-creation cost.
///
/// Run() blocks until every task of its batch finished; the calling thread
/// participates in draining its own batch, which makes nested Run() calls
/// (a task submitting a sub-batch) deadlock-free even when every worker is
/// busy.
class ThreadPool {
 public:
  /// `max_workers` == 0 means HardwareThreads().
  explicit ThreadPool(size_t max_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Executes task(0) .. task(num_tasks - 1), in any order, with up to
  /// max_workers() + 1 threads (workers plus the caller). Returns when all
  /// tasks completed. Tasks must be independent; the first exception thrown
  /// by any task is rethrown here after the batch drains.
  void Run(size_t num_tasks, const std::function<void(size_t)>& task);

  size_t max_workers() const { return max_workers_; }

  /// Worker threads currently alive (for tests/diagnostics).
  size_t ActiveWorkers() const;

  /// The process-wide pool ParallelFor dispatches to.
  static ThreadPool& Global();

 private:
  struct Batch;

  void WorkerLoop();
  void EnsureWorkersLocked(size_t wanted);
  /// Claims and runs tasks of `batch` until none remain unclaimed.
  void DrainBatch(const std::shared_ptr<Batch>& batch);

  const size_t max_workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::deque<std::shared_ptr<Batch>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Runs fn(chunk_begin, chunk_end) over [0, n) split into roughly equal
/// contiguous chunks, one per thread. `num_threads` <= 1 (or n small) runs
/// inline. fn must be safe to call concurrently on disjoint ranges;
/// exceptions thrown by fn propagate to the caller (first one wins).
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn);

/// One contiguous piece of [0, n).
struct ChunkRange {
  size_t begin;
  size_t end;

  bool operator==(const ChunkRange& other) const = default;
};

/// Default items-per-chunk for DeterministicChunks: large enough that the
/// small inputs typical of tests and examples stay in a single chunk (so
/// chunked arithmetic degenerates to the plain serial order), small enough
/// to load-balance production-sized inputs across many workers.
inline constexpr size_t kDefaultChunkGrain = 8192;

/// Splits [0, n) into fixed-size chunks of `grain` items (the last chunk
/// may be shorter). Boundaries depend only on n and grain — never on the
/// worker count — so per-chunk partial results merged in chunk order are
/// bit-identical for ANY number of threads, including one. This is the
/// building block behind every "parallel output equals serial output"
/// guarantee in the pruning and candidate-generation hot paths: workers
/// write into chunk-owned slots, and the caller folds the slots in
/// ascending chunk order.
std::vector<ChunkRange> DeterministicChunks(size_t n,
                                            size_t grain = kDefaultChunkGrain);

/// Concatenates per-chunk partial outputs in chunk order: prefix offsets,
/// then a parallel scatter into the pre-sized result. Each part is released
/// as soon as it is copied, so peak memory stays near 1x the total instead
/// of holding both copies through a serial merge. The merged vector is
/// identical for any thread count.
template <typename T>
std::vector<T> MergeChunkParts(std::vector<std::vector<T>>* parts,
                               size_t num_threads) {
  std::vector<size_t> offsets(parts->size() + 1, 0);
  for (size_t c = 0; c < parts->size(); ++c) {
    offsets[c + 1] = offsets[c] + (*parts)[c].size();
  }
  std::vector<T> merged(offsets.back());
  ParallelFor(parts->size(), num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  std::copy((*parts)[c].begin(), (*parts)[c].end(),
                            merged.begin() + offsets[c]);
                  std::vector<T>().swap((*parts)[c]);
                }
              });
  return merged;
}

}  // namespace gsmb

#endif  // GSMB_UTIL_THREAD_POOL_H_
