// Minimal data-parallel helper.
//
// The paper's experiments run on a 72-core machine through Spark; the
// single-node analogue here is ParallelFor, which splits a contiguous index
// range into per-thread chunks. Used by the feature extractor (each chunk
// covers whole pivot-entity groups, so outputs are written disjointly and
// results are bit-identical to the serial path).

#ifndef GSMB_UTIL_THREAD_POOL_H_
#define GSMB_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>

namespace gsmb {

/// Number of hardware threads (>= 1).
size_t HardwareThreads();

/// Runs fn(chunk_begin, chunk_end) over [0, n) split into roughly equal
/// contiguous chunks, one per thread. `num_threads` <= 1 (or n small) runs
/// inline. fn must be safe to call concurrently on disjoint ranges;
/// exceptions thrown by fn propagate to the caller (first one wins).
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace gsmb

#endif  // GSMB_UTIL_THREAD_POOL_H_
