#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace gsmb {

uint64_t Rng::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = engine_();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(engine_());  // full 64-bit range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random bits -> double in [0, 1).
  return (engine_() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  // Box-Muller; draw until u1 > 0 to keep log() finite.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  k = std::min(k, n);
  // Partial Fisher-Yates: O(n) memory, O(k) swaps.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextUint64(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<size_t> Rng::SampleWithoutReplacementSparse(size_t n, size_t k) {
  k = std::min(k, n);
  // Virtual partial Fisher-Yates: `displaced[j]` holds what the dense
  // version's idx[j] would hold after earlier swaps; untouched slots hold
  // their own position. Draw i reads slot j = i + NextUint64(n - i), emits
  // its value, and stores slot i's value there — exactly the dense swap,
  // so the engine consumption and the output are identical.
  std::unordered_map<size_t, size_t> displaced;
  auto value_at = [&](size_t slot) {
    auto it = displaced.find(slot);
    return it == displaced.end() ? slot : it->second;
  };
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + static_cast<size_t>(NextUint64(n - i));
    const size_t value_i = value_at(i);
    out.push_back(value_at(j));
    displaced[j] = value_i;  // slot i is never read again
  }
  return out;
}

Rng Rng::Fork() {
  // Two draws mixed through SplitMix64 give an independent-looking stream.
  uint64_t a = engine_();
  uint64_t z = a + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Next(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace gsmb
