#include "util/string_utils.h"

#include <cctype>

namespace gsmb {

std::string ToLowerAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> TokenizeAlnum(std::string_view s) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

std::vector<std::string> QGrams(std::string_view s, size_t q) {
  std::string lower = ToLowerAscii(s);
  std::vector<std::string> grams;
  if (lower.empty() || q == 0) return grams;
  if (lower.size() <= q) {
    grams.push_back(lower);
    return grams;
  }
  grams.reserve(lower.size() - q + 1);
  for (size_t i = 0; i + q <= lower.size(); ++i) {
    grams.push_back(lower.substr(i, q));
  }
  return grams;
}

std::vector<std::string> Suffixes(std::string_view s, size_t min_len) {
  std::string lower = ToLowerAscii(s);
  std::vector<std::string> out;
  if (lower.empty()) return out;
  if (lower.size() <= min_len) {
    out.push_back(lower);
    return out;
  }
  out.reserve(lower.size() - min_len + 1);
  for (size_t i = 0; i + min_len <= lower.size(); ++i) {
    out.push_back(lower.substr(i));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimAscii(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace gsmb
