#include "util/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gsmb {

std::vector<CsvRow> ParseCsv(std::string_view text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field.push_back(c);  // stray quote inside unquoted field
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // swallow; \n ends the row
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  // Final row without trailing newline.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::vector<CsvRow> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

std::string EscapeCsvField(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string WriteCsv(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const CsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append(EscapeCsvField(row[i]));
    }
    out.push_back('\n');
  }
  return out;
}

void WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write CSV file: " + path);
  out << WriteCsv(rows);
  if (!out) throw std::runtime_error("failed writing CSV file: " + path);
}

}  // namespace gsmb
