// Deterministic random number utilities.
//
// Every stochastic component in the library (dataset generators, training
// sample selection, classifier initialisation) draws from an explicitly
// seeded Rng so that experiments are reproducible run-to-run, matching the
// paper's protocol of fixing the random state per repetition.

#ifndef GSMB_UTIL_RANDOM_H_
#define GSMB_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace gsmb {

/// A thin deterministic wrapper around std::mt19937_64.
///
/// The wrapper pins the engine and the distribution implementations used so
/// that sequences are stable across platforms for the distributions we rely
/// on (uniform ints/doubles are implemented manually; libstdc++/libc++ would
/// otherwise be free to differ).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli draw with success probability p.
  bool NextBool(double p);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in selection order.
  /// If k >= n, returns a permutation of all n indices.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Bit-identical to SampleWithoutReplacement — same engine draws, same
  /// output sequence — but O(k) memory instead of O(n): the partial
  /// Fisher-Yates array is virtualised through a hash map of displaced
  /// slots. Used where n is a full candidate count (stream/) and the dense
  /// identity array would dwarf the memory budget.
  std::vector<size_t> SampleWithoutReplacementSparse(size_t n, size_t k);

  /// Derives an independent child generator; useful to give each
  /// sub-component its own stream without correlated draws.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Samples from a Zipf distribution over ranks {0, 1, ..., n-1} with
/// exponent s (rank 0 is the most frequent). Used by the synthetic dataset
/// generators to create realistic token frequency skew: a few stop-word-like
/// tokens that appear in huge blocks plus a long tail of rare tokens.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Next(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalised cumulative weights
};

}  // namespace gsmb

#endif  // GSMB_UTIL_RANDOM_H_
