// Wall-clock stopwatch for experiment timing (header-only).

#ifndef GSMB_UTIL_STOPWATCH_H_
#define GSMB_UTIL_STOPWATCH_H_

#include <chrono>

namespace gsmb {

/// Measures elapsed wall-clock time in seconds. The paper reports the mean
/// run-time (RT) over repetitions; ExperimentRunner uses this class for every
/// RT column.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gsmb

#endif  // GSMB_UTIL_STOPWATCH_H_
