// Process memory statistics from /proc/self/status (Linux).
//
// The bench harnesses report VmHWM — the peak resident set size — next to
// wall-clock time, so memory regressions (and the streaming executor's
// bounded-memory claim) are tracked by the same bench_diff.py machinery
// that tracks runtime. On platforms without procfs the readings are zero
// and callers simply report nothing.

#ifndef GSMB_UTIL_MEM_STATS_H_
#define GSMB_UTIL_MEM_STATS_H_

#include <cstddef>

namespace gsmb {

struct MemStats {
  size_t vm_rss_kb = 0;  ///< current resident set size
  size_t vm_hwm_kb = 0;  ///< peak resident set size ("high-water mark")

  bool available() const { return vm_hwm_kb > 0 || vm_rss_kb > 0; }
};

/// Reads VmRSS/VmHWM of this process; all-zero when procfs is unavailable.
MemStats ReadMemStats();

/// Shorthand for ReadMemStats().vm_hwm_kb.
size_t PeakRssKb();

}  // namespace gsmb

#endif  // GSMB_UTIL_MEM_STATS_H_
