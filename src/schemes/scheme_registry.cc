#include "schemes/scheme_registry.h"

#include <map>
#include <mutex>
#include <utility>

#include "blocking/qgram_blocking.h"
#include "blocking/suffix_blocking.h"
#include "blocking/token_blocking.h"
#include "gsmb/job_spec.h"
#include "schemes/attribute_clustering.h"
#include "schemes/minhash_lsh.h"
#include "schemes/sorted_neighborhood.h"
#include "util/string_utils.h"

namespace gsmb::schemes {

namespace {

// -- Adapters over the legacy key-blocking family ---------------------------
// token/qgram/suffix predate the registry; these adapters give them the
// same Blocker surface as the new schemes without touching src/blocking.

class TokenBlocker : public Blocker {
 public:
  const char* name() const override { return kSchemeToken; }
  const char* description() const override {
    return "one block per distinct value token (schema-agnostic, the "
           "paper's scheme; blocking.min_token_length)";
  }
  Status ValidateParams(const BlockingSpec&) const override {
    // min_token_length >= 1 is a cross-scheme global, checked by
    // JobSpec::Validate.
    return Status::Ok();
  }
  BlockCollection Build(const JobInputs& inputs, const BlockingSpec& blocking,
                        size_t num_threads) const override {
    const TokenBlocking scheme(blocking.min_token_length);
    return inputs.dirty ? scheme.Build(inputs.e1, num_threads)
                        : scheme.Build(inputs.e1, inputs.e2, num_threads);
  }
};

class QGramBlocker : public Blocker {
 public:
  const char* name() const override { return kSchemeQGram; }
  const char* description() const override {
    return "one block per overlapping character q-gram (blocking.qgram); "
           "robust to typos";
  }
  Status ValidateParams(const BlockingSpec& blocking) const override {
    if (blocking.qgram < 1) {
      return Status::InvalidArgument("blocking.qgram must be >= 1");
    }
    return Status::Ok();
  }
  BlockCollection Build(const JobInputs& inputs, const BlockingSpec& blocking,
                        size_t num_threads) const override {
    const QGramBlocking scheme(blocking.qgram);
    return inputs.dirty ? scheme.Build(inputs.e1, num_threads)
                        : scheme.Build(inputs.e1, inputs.e2, num_threads);
  }
};

class SuffixBlocker : public Blocker {
 public:
  const char* name() const override { return kSchemeSuffix; }
  const char* description() const override {
    return "one block per token suffix (blocking.suffix_min_length), "
           "capped at blocking.suffix_max_block_size per source";
  }
  Status ValidateParams(const BlockingSpec& blocking) const override {
    if (blocking.suffix_min_length < 1) {
      return Status::InvalidArgument(
          "blocking.suffix_min_length must be >= 1");
    }
    if (blocking.suffix_max_block_size < 2) {
      return Status::InvalidArgument(
          "blocking.suffix_max_block_size must be >= 2 (a block needs two "
          "members to imply a comparison)");
    }
    return Status::Ok();
  }
  BlockCollection Build(const JobInputs& inputs, const BlockingSpec& blocking,
                        size_t num_threads) const override {
    const SuffixBlocking scheme(blocking.suffix_min_length,
                                blocking.suffix_max_block_size);
    return inputs.dirty ? scheme.Build(inputs.e1, num_threads)
                        : scheme.Build(inputs.e1, inputs.e2, num_threads);
  }
};

// -- The registry ------------------------------------------------------------

using Registry = std::map<std::string, std::unique_ptr<Blocker>>;

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

Registry& MutableRegistry() {
  static Registry registry;
  return registry;
}

Status RegisterLocked(std::unique_ptr<Blocker> blocker) {
  Registry& registry = MutableRegistry();
  const std::string name = blocker->name();
  if (registry.count(name) != 0) {
    return Status::InvalidArgument("blocking scheme '" + name +
                                   "' is already registered");
  }
  registry[name] = std::move(blocker);
  return Status::Ok();
}

/// Built-ins register on first registry access, so lookups work without an
/// init call and user registrations can never be shadowed by a late
/// built-in (AlreadyExists fires either way).
void EnsureBuiltins() {
  static const bool once = [] {
    (void)RegisterLocked(std::make_unique<TokenBlocker>());
    (void)RegisterLocked(std::make_unique<QGramBlocker>());
    (void)RegisterLocked(std::make_unique<SuffixBlocker>());
    (void)RegisterLocked(std::make_unique<SortedNeighborhoodBlocker>());
    (void)RegisterLocked(
        std::make_unique<DynamicSortedNeighborhoodBlocker>());
    (void)RegisterLocked(std::make_unique<AttributeClusteringBlocker>());
    (void)RegisterLocked(std::make_unique<MinHashLshBlocker>());
    return true;
  }();
  (void)once;
}

}  // namespace

Status RegisterBlocker(std::unique_ptr<Blocker> blocker) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  EnsureBuiltins();
  return RegisterLocked(std::move(blocker));
}

const Blocker* FindBlocker(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  EnsureBuiltins();
  const Registry& registry = MutableRegistry();
  const auto it = registry.find(name);
  return it == registry.end() ? nullptr : it->second.get();
}

std::vector<std::string> BlockerNames() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  EnsureBuiltins();
  std::vector<std::string> names;
  names.reserve(MutableRegistry().size());
  for (const auto& [name, blocker] : MutableRegistry()) {
    names.push_back(name);
  }
  return names;  // std::map order: sorted.
}

std::string BlockerNamesJoined() { return Join(BlockerNames(), " | "); }

}  // namespace gsmb::schemes
