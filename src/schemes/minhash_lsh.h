// MinHash-LSH blocking: banded locality-sensitive hashing over per-entity
// minhash signatures.
//
// Each profile's distinct value tokens form a set; a family of
// lsh_bands * lsh_rows minwise hash functions condenses that set into a
// signature whose per-position collision probability equals the Jaccard
// similarity of the token sets. The signature splits into lsh_bands bands
// of lsh_rows values, and entities agreeing on an entire band land in the
// same bucket — each non-trivial bucket becomes a block. Bands/rows tune
// the usual S-curve: more rows per band demand higher similarity, more
// bands raise recall.
//
// This is the first similarity-driven (rather than key-equality) blocker
// in the repo — the in-repo stepping stone toward the embedding/ANN family
// (AutoBlock, SC-Block) that ROADMAP item 3 points at.
//
// Determinism: the hash family derives from blocking.minhash_seed through
// util/random (never from global state), token hashing is FNV-1a (no
// platform-dependent std::hash), and bucket emission reuses the sorted
// key-table machinery of blocking/key_blocking. Bit-identical for any
// thread count.

#ifndef GSMB_SCHEMES_MINHASH_LSH_H_
#define GSMB_SCHEMES_MINHASH_LSH_H_

#include "schemes/scheme_registry.h"

namespace gsmb::schemes {

class MinHashLshBlocker : public Blocker {
 public:
  const char* name() const override;
  const char* description() const override;
  Status ValidateParams(const BlockingSpec& blocking) const override;
  BlockCollection Build(const JobInputs& inputs, const BlockingSpec& blocking,
                        size_t num_threads) const override;
};

}  // namespace gsmb::schemes

#endif  // GSMB_SCHEMES_MINHASH_LSH_H_
