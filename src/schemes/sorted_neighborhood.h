// Sorted Neighborhood blocking and its dynamic-window variant.
//
// Classic Sorted Neighborhood (Hernandez & Stolfo) sorts the records by a
// blocking key and compares each record against the w-1 records around it.
// The schema-agnostic formulation used here (and by JedAI) takes EVERY
// distinct value token of a profile as a sort key: the (key, entity) rows
// are sorted lexicographically and a window of size `blocking.window`
// slides over the sorted sequence, emitting one block per window position.
// Entities with similar keys land near each other, so typos that Token
// Blocking misses (no shared token) can still be caught by adjacency.
//
// The dynamic variant (cf. adaptive sorted neighborhood, Yan et al.) grows
// each window from `blocking.min_window` up to `blocking.window` while
// adjacent sort keys stay similar — dense key regions get wide windows,
// sparse regions stay narrow. Key similarity is the normalized common
// prefix length, and the growth rule is deterministic (no sampling).
//
// Determinism: row extraction parallelises over fixed-grain entity chunks
// folded in chunk order; the row sort is a total order over
// (key, source, id); window emission parallelises over fixed-grain window
// chunks folded in window order. Bit-identical for any thread count.

#ifndef GSMB_SCHEMES_SORTED_NEIGHBORHOOD_H_
#define GSMB_SCHEMES_SORTED_NEIGHBORHOOD_H_

#include "schemes/scheme_registry.h"

namespace gsmb::schemes {

class SortedNeighborhoodBlocker : public Blocker {
 public:
  const char* name() const override;
  const char* description() const override;
  Status ValidateParams(const BlockingSpec& blocking) const override;
  BlockCollection Build(const JobInputs& inputs, const BlockingSpec& blocking,
                        size_t num_threads) const override;
};

class DynamicSortedNeighborhoodBlocker : public Blocker {
 public:
  const char* name() const override;
  const char* description() const override;
  Status ValidateParams(const BlockingSpec& blocking) const override;
  BlockCollection Build(const JobInputs& inputs, const BlockingSpec& blocking,
                        size_t num_threads) const override;
};

}  // namespace gsmb::schemes

#endif  // GSMB_SCHEMES_SORTED_NEIGHBORHOOD_H_
