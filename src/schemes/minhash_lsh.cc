#include "schemes/minhash_lsh.h"

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "blocking/key_blocking.h"
#include "gsmb/job_spec.h"
#include "util/random.h"

namespace gsmb::schemes {

namespace {

// FNV-1a, 64 bit: a fixed, platform-independent string hash (std::hash
// makes no cross-platform promise, which would break digest stability).
uint64_t Fnv1a(const void* data, size_t size, uint64_t state) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= 1099511628211ULL;
  }
  return state;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

/// One minwise hash function: an odd multiplier + offset over the token's
/// base hash (multiply-shift family; wrapping uint64 arithmetic).
struct HashParams {
  uint64_t multiplier;
  uint64_t offset;
};

std::vector<HashParams> MakeHashFamily(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<HashParams> family(count);
  for (HashParams& params : family) {
    // NextUint64's bound is exclusive, so max() draws from the full range
    // minus one value — immaterial for a hash family.
    params.multiplier =
        rng.NextUint64(std::numeric_limits<uint64_t>::max()) | 1ULL;
    params.offset = rng.NextUint64(std::numeric_limits<uint64_t>::max());
  }
  return family;
}

/// Per-profile bucket keys: minhash signature over the token set, one key
/// per band ("b<band>#<band digest in hex>"). A profile with no tokens gets
/// no keys (and therefore lands in no block).
KeyFunction BucketKeys(std::vector<HashParams> family, size_t bands,
                       size_t rows, size_t min_token_length) {
  return [family = std::move(family), bands, rows,
          min_token_length](const EntityProfile& p) {
    std::vector<std::string> keys;
    std::vector<uint64_t> base;
    for (const std::string& token : p.DistinctValueTokens()) {
      if (token.size() < min_token_length) continue;
      base.push_back(Fnv1a(token.data(), token.size(), kFnvOffset));
    }
    if (base.empty()) return keys;

    std::vector<uint64_t> signature(family.size());
    for (size_t h = 0; h < family.size(); ++h) {
      uint64_t best = std::numeric_limits<uint64_t>::max();
      for (uint64_t token_hash : base) {
        const uint64_t value =
            token_hash * family[h].multiplier + family[h].offset;
        if (value < best) best = value;
      }
      signature[h] = best;
    }

    keys.reserve(bands);
    for (size_t band = 0; band < bands; ++band) {
      const uint64_t digest =
          Fnv1a(signature.data() + band * rows, rows * sizeof(uint64_t),
                kFnvOffset);
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(digest));
      keys.push_back("b" + std::to_string(band) + "#" + hex);
    }
    return keys;
  };
}

}  // namespace

const char* MinHashLshBlocker::name() const { return kSchemeMinHashLsh; }

const char* MinHashLshBlocker::description() const {
  return "banded LSH over per-entity minhash signatures "
         "(blocking.lsh_bands x blocking.lsh_rows, seeded by "
         "blocking.minhash_seed)";
}

Status MinHashLshBlocker::ValidateParams(const BlockingSpec& blocking) const {
  if (blocking.lsh_bands < 1) {
    return Status::InvalidArgument("blocking.lsh_bands must be >= 1");
  }
  if (blocking.lsh_rows < 1) {
    return Status::InvalidArgument("blocking.lsh_rows must be >= 1");
  }
  return Status::Ok();
}

BlockCollection MinHashLshBlocker::Build(const JobInputs& inputs,
                                         const BlockingSpec& blocking,
                                         size_t num_threads) const {
  const KeyFunction keys = BucketKeys(
      MakeHashFamily(blocking.minhash_seed,
                     blocking.lsh_bands * blocking.lsh_rows),
      blocking.lsh_bands, blocking.lsh_rows, blocking.min_token_length);
  if (inputs.dirty) {
    return BuildKeyBlocksDirty(inputs.e1, keys, num_threads);
  }
  return BuildKeyBlocksCleanClean(inputs.e1, inputs.e2, keys, num_threads);
}

}  // namespace gsmb::schemes
