#include "schemes/sorted_neighborhood.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "gsmb/job_spec.h"
#include "util/thread_pool.h"

namespace gsmb::schemes {

namespace {

// Matches key_blocking.cc: key extraction (tokenising every value)
// dominates, so entities chunk finely enough to load-balance.
constexpr size_t kExtractChunkGrain = 256;

// Window emission is cheap per window (a handful of id copies), so windows
// chunk coarsely.
constexpr size_t kWindowChunkGrain = 4096;

// One entry of the sorted key sequence. The comparison is a total order —
// ties between equal keys break on (source, id) — so the sort result is
// independent of the (stable or not) sort algorithm and of how the rows
// were produced.
struct SortRow {
  std::string key;
  uint8_t source;  // 0 = e1, 1 = e2 (always 0 for Dirty ER)
  EntityId id;

  bool operator<(const SortRow& other) const {
    if (key != other.key) return key < other.key;
    if (source != other.source) return source < other.source;
    return id < other.id;
  }
};

void AppendRows(const EntityCollection& collection, uint8_t source,
                size_t min_token_length, size_t num_threads,
                std::vector<SortRow>* rows) {
  const std::vector<ChunkRange> chunks =
      DeterministicChunks(collection.size(), kExtractChunkGrain);
  std::vector<std::vector<SortRow>> parts(chunks.size());
  ParallelFor(chunks.size(), num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  std::vector<SortRow>& out = parts[c];
                  for (size_t e = chunks[c].begin; e < chunks[c].end; ++e) {
                    const auto id = static_cast<EntityId>(e);
                    for (std::string& token :
                         collection[id].DistinctValueTokens()) {
                      if (token.size() < min_token_length) continue;
                      out.push_back(SortRow{std::move(token), source, id});
                    }
                  }
                }
              });
  std::vector<SortRow> merged = MergeChunkParts(&parts, num_threads);
  rows->insert(rows->end(), std::make_move_iterator(merged.begin()),
               std::make_move_iterator(merged.end()));
}

/// Normalized common-prefix similarity in [0, 1]: 1 for identical keys,
/// 0 for keys that differ in the first character.
double KeySimilarity(const std::string& a, const std::string& b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  const size_t limit = std::min(a.size(), b.size());
  size_t common = 0;
  while (common < limit && a[common] == b[common]) ++common;
  return static_cast<double>(common) / static_cast<double>(longest);
}

/// Turns the window rows[begin, end) into a block: member ids dedupe per
/// source (an entity may appear under several keys inside one window), and
/// windows that imply no comparison are dropped.
bool WindowBlock(const std::vector<SortRow>& rows, size_t begin, size_t end,
                 bool clean_clean, Block* block) {
  block->key = rows[begin].key + "@" + std::to_string(begin);
  block->left.clear();
  block->right.clear();
  for (size_t r = begin; r < end; ++r) {
    (rows[r].source == 0 ? block->left : block->right).push_back(rows[r].id);
  }
  for (std::vector<EntityId>* side : {&block->left, &block->right}) {
    std::sort(side->begin(), side->end());
    side->erase(std::unique(side->begin(), side->end()), side->end());
  }
  if (clean_clean) {
    return !block->left.empty() && !block->right.empty();
  }
  return block->left.size() >= 2;
}

struct WindowParams {
  size_t max_window;
  // Dynamic variant only (min_window == max_window for the fixed scheme).
  size_t min_window;
  double key_similarity;
};

/// End of the window starting at `begin`: grows from min_window up to
/// max_window while adjacent keys stay similar enough. Depends only on the
/// rows and `begin`, so window emission parallelises embarrassingly.
size_t WindowEnd(const std::vector<SortRow>& rows, size_t begin,
                 const WindowParams& params) {
  size_t end = std::min(begin + params.min_window, rows.size());
  const size_t limit = std::min(begin + params.max_window, rows.size());
  while (end < limit &&
         KeySimilarity(rows[end - 1].key, rows[end].key) >=
             params.key_similarity) {
    ++end;
  }
  return end;
}

BlockCollection BuildWindows(const JobInputs& inputs,
                             const BlockingSpec& blocking,
                             const WindowParams& params, size_t num_threads) {
  std::vector<SortRow> rows;
  AppendRows(inputs.e1, /*source=*/0, blocking.min_token_length, num_threads,
             &rows);
  if (!inputs.dirty) {
    AppendRows(inputs.e2, /*source=*/1, blocking.min_token_length,
               num_threads, &rows);
  }
  std::sort(rows.begin(), rows.end());

  BlockCollection out(!inputs.dirty, inputs.e1.size(),
                      inputs.dirty ? 0 : inputs.e2.size());
  if (rows.empty()) return out;

  // One window per start position; the last max_window-1 starts yield
  // shrinking suffix windows, which WindowEnd clamps naturally.
  const size_t num_windows = rows.size();
  const std::vector<ChunkRange> chunks =
      DeterministicChunks(num_windows, kWindowChunkGrain);
  std::vector<std::vector<Block>> parts(chunks.size());
  ParallelFor(chunks.size(), num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  Block block;
                  for (size_t w = chunks[c].begin; w < chunks[c].end; ++w) {
                    const size_t end = WindowEnd(rows, w, params);
                    if (end - w < 2) continue;
                    if (WindowBlock(rows, w, end, !inputs.dirty, &block)) {
                      parts[c].push_back(std::move(block));
                      block = Block();
                    }
                  }
                }
              });
  std::vector<Block> blocks = MergeChunkParts(&parts, num_threads);
  out.Reserve(blocks.size());
  for (Block& block : blocks) out.Add(std::move(block));
  return out;
}

}  // namespace

const char* SortedNeighborhoodBlocker::name() const {
  return kSchemeSortedNeighborhood;
}

const char* SortedNeighborhoodBlocker::description() const {
  return "sorts value tokens and blocks each fixed-size window of the "
         "sorted sequence (blocking.window)";
}

Status SortedNeighborhoodBlocker::ValidateParams(
    const BlockingSpec& blocking) const {
  if (blocking.window < 2) {
    return Status::InvalidArgument(
        "blocking.window must be >= 2 (a window of one entity implies no "
        "comparison)");
  }
  return Status::Ok();
}

BlockCollection SortedNeighborhoodBlocker::Build(const JobInputs& inputs,
                                                 const BlockingSpec& blocking,
                                                 size_t num_threads) const {
  // A fixed window is the dynamic rule with min == max (the similarity
  // threshold never gets consulted).
  const WindowParams params{blocking.window, blocking.window, 0.0};
  return BuildWindows(inputs, blocking, params, num_threads);
}

const char* DynamicSortedNeighborhoodBlocker::name() const {
  return kSchemeDynamicSortedNeighborhood;
}

const char* DynamicSortedNeighborhoodBlocker::description() const {
  return "sorted neighborhood with an adaptive window: grows from "
         "blocking.min_window to blocking.window while adjacent keys stay "
         ">= blocking.key_similarity";
}

Status DynamicSortedNeighborhoodBlocker::ValidateParams(
    const BlockingSpec& blocking) const {
  if (blocking.min_window < 2) {
    return Status::InvalidArgument(
        "blocking.min_window must be >= 2 (a window of one entity implies "
        "no comparison)");
  }
  if (blocking.window < blocking.min_window) {
    return Status::InvalidArgument(
        "blocking.window (the maximum window) must be >= "
        "blocking.min_window");
  }
  if (!(blocking.key_similarity > 0.0) || blocking.key_similarity > 1.0) {
    return Status::InvalidArgument(
        "blocking.key_similarity must be in (0, 1]");
  }
  return Status::Ok();
}

BlockCollection DynamicSortedNeighborhoodBlocker::Build(
    const JobInputs& inputs, const BlockingSpec& blocking,
    size_t num_threads) const {
  const WindowParams params{blocking.window, blocking.min_window,
                            blocking.key_similarity};
  return BuildWindows(inputs, blocking, params, num_threads);
}

}  // namespace gsmb::schemes
