// Attribute Clustering blocking (Papadakis et al., TKDE 2013).
//
// Token Blocking is schema-agnostic by fiat: a token blocks no matter which
// attribute it came from, so "1999" in a `year` attribute collides with
// "1999" in a `price`. Attribute Clustering restores a little schema
// awareness without needing aligned schemas: attribute names are clustered
// by the similarity of their aggregate value-token sets (Jaccard), and a
// blocking key becomes (cluster id, token) — the same token only blocks
// within attributes that talk about the same kind of thing. Attributes
// that match nothing land in one shared "glue" cluster so their tokens
// still block (dropping them would sacrifice recall).
//
// Clustering links each attribute to its best-matching attribute of the
// other source (same source for Dirty ER) when the similarity reaches
// blocking.attribute_similarity; connected components of the links are the
// clusters. The attribute universe is tiny next to the entity count, so
// the clustering itself runs serially; key extraction reuses the
// chunk-and-merge machinery of blocking/key_blocking.

#ifndef GSMB_SCHEMES_ATTRIBUTE_CLUSTERING_H_
#define GSMB_SCHEMES_ATTRIBUTE_CLUSTERING_H_

#include "schemes/scheme_registry.h"

namespace gsmb::schemes {

class AttributeClusteringBlocker : public Blocker {
 public:
  const char* name() const override;
  const char* description() const override;
  Status ValidateParams(const BlockingSpec& blocking) const override;
  BlockCollection Build(const JobInputs& inputs, const BlockingSpec& blocking,
                        size_t num_threads) const override;
};

}  // namespace gsmb::schemes

#endif  // GSMB_SCHEMES_ATTRIBUTE_CLUSTERING_H_
