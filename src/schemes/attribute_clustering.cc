#include "schemes/attribute_clustering.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "blocking/key_blocking.h"
#include "gsmb/job_spec.h"
#include "util/string_utils.h"

namespace gsmb::schemes {

namespace {

/// One attribute name of one source with its aggregate value-token set
/// (sorted, distinct).
struct AttributeEntry {
  std::string name;
  std::vector<std::string> tokens;
};

/// Collects the distinct attribute names of `collection` with their
/// aggregate token sets. The attribute universe is tiny (tens of names vs
/// millions of entities), so one serial scan is fine and trivially
/// deterministic.
std::vector<AttributeEntry> CollectAttributes(
    const EntityCollection& collection, size_t min_token_length) {
  std::map<std::string, std::vector<std::string>> by_name;
  for (size_t e = 0; e < collection.size(); ++e) {
    for (const Attribute& a : collection[static_cast<EntityId>(e)]
                                  .attributes()) {
      std::vector<std::string>& tokens = by_name[a.name];
      for (std::string& token : TokenizeAlnum(a.value)) {
        if (token.size() < min_token_length) continue;
        tokens.push_back(std::move(token));
      }
    }
  }
  std::vector<AttributeEntry> entries;
  entries.reserve(by_name.size());
  for (auto& [name, tokens] : by_name) {
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    entries.push_back(AttributeEntry{name, std::move(tokens)});
  }
  return entries;  // std::map order: sorted by name.
}

/// Jaccard similarity of two sorted, distinct token vectors.
double Jaccard(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t united = a.size() + b.size() - common;
  return united == 0 ? 0.0
                     : static_cast<double>(common) /
                           static_cast<double>(united);
}

/// Plain union-find over attribute-entry indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// Links entry `i` to its best match among [begin, end) \ {i} when the best
/// similarity reaches the threshold. Ties break on the lower index (entries
/// are name-sorted, so that is the lexicographically smallest name).
void LinkBestMatch(const std::vector<AttributeEntry>& entries, size_t i,
                   size_t begin, size_t end, double threshold,
                   UnionFind* clusters) {
  double best = 0.0;
  size_t best_index = end;
  for (size_t j = begin; j < end; ++j) {
    if (j == i) continue;
    const double sim = Jaccard(entries[i].tokens, entries[j].tokens);
    if (sim > best) {
      best = sim;
      best_index = j;
    }
  }
  if (best_index != end && best >= threshold) {
    clusters->Union(i, best_index);
  }
}

/// Blocking-key prefix per attribute-entry index: clusters of >= 2
/// attributes get "c<idx>#" (indexed by smallest member, so the ids are
/// deterministic), singletons share the glue prefix "g#".
std::vector<std::string> ClusterPrefixes(
    const std::vector<AttributeEntry>& entries, UnionFind* clusters) {
  std::map<size_t, std::vector<size_t>> components;  // root -> members
  for (size_t i = 0; i < entries.size(); ++i) {
    components[clusters->Find(i)].push_back(i);
  }
  // Multi-member components ordered by smallest member index.
  std::map<size_t, std::vector<size_t>> by_smallest;
  for (auto& [root, members] : components) {
    if (members.size() >= 2) by_smallest[members.front()] = members;
  }
  std::vector<std::string> prefixes(entries.size(), "g#");
  size_t next_id = 0;
  for (auto& [smallest, members] : by_smallest) {
    const std::string prefix = "c" + std::to_string(next_id++) + "#";
    for (size_t member : members) prefixes[member] = prefix;
  }
  return prefixes;
}

/// Key function for one source: (cluster prefix of the attribute) + token,
/// distinct per profile.
KeyFunction ClusterKeys(std::map<std::string, std::string> prefix_by_name,
                        size_t min_token_length) {
  return [prefix_by_name = std::move(prefix_by_name),
          min_token_length](const EntityProfile& p) {
    std::vector<std::string> keys;
    for (const Attribute& a : p.attributes()) {
      const auto it = prefix_by_name.find(a.name);
      if (it == prefix_by_name.end()) continue;  // attribute with no tokens
      for (const std::string& token : TokenizeAlnum(a.value)) {
        if (token.size() < min_token_length) continue;
        keys.push_back(it->second + token);
      }
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  };
}

std::map<std::string, std::string> PrefixMap(
    const std::vector<AttributeEntry>& entries,
    const std::vector<std::string>& prefixes, size_t begin, size_t end) {
  std::map<std::string, std::string> by_name;
  for (size_t i = begin; i < end; ++i) {
    by_name[entries[i].name] = prefixes[i];
  }
  return by_name;
}

}  // namespace

const char* AttributeClusteringBlocker::name() const {
  return kSchemeAttributeClustering;
}

const char* AttributeClusteringBlocker::description() const {
  return "clusters attribute names by value-token Jaccard similarity "
         "(blocking.attribute_similarity) and blocks on (cluster, token) "
         "keys";
}

Status AttributeClusteringBlocker::ValidateParams(
    const BlockingSpec& blocking) const {
  if (!(blocking.attribute_similarity > 0.0) ||
      blocking.attribute_similarity > 1.0) {
    return Status::InvalidArgument(
        "blocking.attribute_similarity must be in (0, 1]");
  }
  return Status::Ok();
}

BlockCollection AttributeClusteringBlocker::Build(
    const JobInputs& inputs, const BlockingSpec& blocking,
    size_t num_threads) const {
  const size_t min_len = blocking.min_token_length;
  if (inputs.dirty) {
    std::vector<AttributeEntry> entries =
        CollectAttributes(inputs.e1, min_len);
    UnionFind clusters(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      LinkBestMatch(entries, i, 0, entries.size(),
                    blocking.attribute_similarity, &clusters);
    }
    const std::vector<std::string> prefixes =
        ClusterPrefixes(entries, &clusters);
    return BuildKeyBlocksDirty(
        inputs.e1,
        ClusterKeys(PrefixMap(entries, prefixes, 0, entries.size()), min_len),
        num_threads);
  }

  // Clean-Clean: one entry list over both sources (e1 entries first), links
  // only cross-source — each attribute pairs with its best match on the
  // other side.
  std::vector<AttributeEntry> entries = CollectAttributes(inputs.e1, min_len);
  const size_t split = entries.size();
  std::vector<AttributeEntry> entries2 = CollectAttributes(inputs.e2, min_len);
  entries.insert(entries.end(), std::make_move_iterator(entries2.begin()),
                 std::make_move_iterator(entries2.end()));

  UnionFind clusters(entries.size());
  for (size_t i = 0; i < split; ++i) {
    LinkBestMatch(entries, i, split, entries.size(),
                  blocking.attribute_similarity, &clusters);
  }
  for (size_t i = split; i < entries.size(); ++i) {
    LinkBestMatch(entries, i, 0, split, blocking.attribute_similarity,
                  &clusters);
  }
  const std::vector<std::string> prefixes =
      ClusterPrefixes(entries, &clusters);
  return BuildKeyBlocksCleanClean(
      inputs.e1, inputs.e2,
      ClusterKeys(PrefixMap(entries, prefixes, 0, split), min_len),
      ClusterKeys(PrefixMap(entries, prefixes, split, entries.size()),
                  min_len),
      num_threads);
}

}  // namespace gsmb::schemes
