// The blocking-scheme registry (ROADMAP item 3).
//
// Mirrors the Executor registry of gsmb::Engine: a Blocker is a named
// strategy that turns loaded JobInputs into a raw BlockCollection. Because
// every scheme emits the same collection type, anything downstream —
// purging/filtering, all 8 pruning kinds, the batch/streaming/serving
// backends, prepared-input caching/snapshots and the distributed sweep
// tier — composes with a new scheme untouched.
//
// Contract for every registered scheme:
//   * Build() is deterministic: bit-identical output for any num_threads
//     (parallelise with fixed-grain chunks folded in chunk order, blocks
//     emitted in a sorted order — see blocking/key_blocking.cc).
//   * Randomness (e.g. the MinHash hash family) is seeded from the spec
//     and routed through util/random.
//   * ValidateParams() rejects out-of-range per-scheme params with a
//     "where and why" diagnostic; it never silently clamps or ignores.
//
// The registry is process-global and append-only: built-in schemes
// (token, qgram, suffix, sorted-neighborhood, dynamic-sorted-neighborhood,
// attribute-clustering, minhash-lsh) self-register on first lookup, and
// Blocker pointers returned by FindBlocker stay valid for the process
// lifetime.

#ifndef GSMB_SCHEMES_SCHEME_REGISTRY_H_
#define GSMB_SCHEMES_SCHEME_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "blocking/block_collection.h"
#include "gsmb/prepared.h"
#include "gsmb/status.h"

namespace gsmb::schemes {

/// One blocking scheme: a named, parameterised BlockCollection builder.
class Blocker {
 public:
  virtual ~Blocker() = default;

  /// Registry name; also the JobSpec.blocking.scheme spelling.
  virtual const char* name() const = 0;

  /// One-line human description (`gsmb_cli explain` prints it).
  virtual const char* description() const = 0;

  /// Validates the per-scheme params in `blocking`. Params of other
  /// schemes are none of this scheme's business; globals (purging,
  /// filtering) are validated by JobSpec::Validate itself.
  virtual Status ValidateParams(const BlockingSpec& blocking) const = 0;

  /// Builds the raw (pre-purging/filtering) block collection.
  /// Deterministic: bit-identical for any num_threads.
  virtual BlockCollection Build(const JobInputs& inputs,
                                const BlockingSpec& blocking,
                                size_t num_threads) const = 0;
};

/// Registers a scheme under blocker->name(). InvalidArgument when the name
/// is taken — two schemes must never shadow each other silently.
Status RegisterBlocker(std::unique_ptr<Blocker> blocker);

/// Named lookup; nullptr when unknown. Never invalidated.
const Blocker* FindBlocker(const std::string& name);

/// Sorted names of every registered scheme.
std::vector<std::string> BlockerNames();

/// "token | qgram | ..." — BlockerNames() joined for diagnostics.
std::string BlockerNamesJoined();

}  // namespace gsmb::schemes

#endif  // GSMB_SCHEMES_SCHEME_REGISTRY_H_
