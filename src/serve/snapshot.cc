// Binary snapshot save/load for MetaBlockingSession.
//
// Layout (native-endian, doubles bit-exact so a restored session scores and
// prunes identically):
//   magic "GSMBSN02"
//   options   num_shards, num_threads, min_token_length, max_block_size,
//             pruning kind, blast_ratio, validity_threshold,
//             cnp_entity_universe
//   model     feature mask, weights, intercept
//   profiles  external id + attribute name/value pairs, in id order
//   shards    per shard: dirty flag, cached block/candidate stats, retained
//             pairs, per-entity aggregates
//
// The shard *key tables* are not serialised: they are a pure function of
// the profiles (tokenise, route by stable hash), so Load() replays the
// profiles instead — smaller snapshots and one fewer format detail that
// could drift from the ingest path.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/session.h"

namespace gsmb {

namespace {

constexpr char kMagic[8] = {'G', 'S', 'M', 'B', 'S', 'N', '0', '2'};

void PutBytes(std::ostream& out, const void* data, size_t size) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
}

void PutU8(std::ostream& out, uint8_t v) { PutBytes(out, &v, sizeof v); }
void PutU32(std::ostream& out, uint32_t v) { PutBytes(out, &v, sizeof v); }
void PutU64(std::ostream& out, uint64_t v) { PutBytes(out, &v, sizeof v); }
void PutF64(std::ostream& out, double v) { PutBytes(out, &v, sizeof v); }

void PutString(std::ostream& out, const std::string& s) {
  PutU64(out, s.size());
  PutBytes(out, s.data(), s.size());
}

// Bounds-checked reader: every length field read from disk is validated
// against the bytes actually remaining in the file *before* any container
// is sized from it, so a corrupt or truncated snapshot fails with the
// clean "truncated or corrupt" error instead of a multi-gigabyte
// allocation (or bad_alloc) from a garbage count.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::istream& in) : in_(in) {
    const std::istream::pos_type pos = in_.tellg();
    in_.seekg(0, std::ios::end);
    size_ = static_cast<uint64_t>(in_.tellg());
    in_.seekg(pos);
  }

  void Bytes(void* data, size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!in_) Corrupt();
  }

  uint8_t U8() { return Scalar<uint8_t>(); }
  uint32_t U32() { return Scalar<uint32_t>(); }
  uint64_t U64() { return Scalar<uint64_t>(); }
  double F64() { return Scalar<double>(); }

  /// Reads an element count whose elements occupy at least
  /// `min_element_size` bytes each; rejects counts the file cannot hold.
  uint64_t Count(uint64_t min_element_size) {
    const uint64_t count = U64();
    if (min_element_size == 0) min_element_size = 1;
    if (count > Remaining() / min_element_size) Corrupt();
    return count;
  }

  std::string String() {
    const uint64_t size = Count(1);
    std::string s(size, '\0');
    if (size > 0) Bytes(s.data(), size);
    return s;
  }

 private:
  template <typename T>
  T Scalar() {
    T v;
    Bytes(&v, sizeof v);
    return v;
  }

  uint64_t Remaining() const {
    const auto pos = static_cast<uint64_t>(in_.tellg());
    return pos > size_ ? 0 : size_ - pos;
  }

  [[noreturn]] static void Corrupt() {
    throw std::runtime_error("session snapshot: truncated or corrupt file");
  }

  std::istream& in_;
  uint64_t size_ = 0;
};

}  // namespace

void MetaBlockingSession::Save(const std::string& path) const {
  // A reader lock: Save is a consistent point-in-time snapshot even while
  // concurrent queries run; writers (ingest/refresh) wait.
  std::shared_lock<std::shared_mutex> lock(sync_->mutex);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("session snapshot: cannot open " + path +
                             " for writing");
  }

  PutBytes(out, kMagic, sizeof kMagic);
  PutU64(out, options_.num_shards);
  PutU64(out, options_.execution.num_threads);
  PutU64(out, options_.min_token_length);
  PutU64(out, options_.max_block_size);
  PutU8(out, static_cast<uint8_t>(options_.pruning));
  PutF64(out, options_.blast_ratio);
  PutF64(out, options_.validity_threshold);
  PutU64(out, options_.cnp_entity_universe);

  PutU8(out, model_.features.mask());
  PutU64(out, model_.weights.size());
  for (double w : model_.weights) PutF64(out, w);
  PutF64(out, model_.intercept);

  PutU64(out, profiles_.size());
  for (const EntityProfile& p : profiles_.profiles()) {
    PutString(out, p.external_id());
    PutU64(out, p.attributes().size());
    for (const Attribute& a : p.attributes()) {
      PutString(out, a.name);
      PutString(out, a.value);
    }
  }

  PutU64(out, shards_.size());
  for (const Shard& shard : shards_) {
    PutU8(out, shard.dirty ? 1 : 0);
    PutU64(out, shard.num_blocks);
    PutF64(out, shard.total_comparisons);
    PutU64(out, shard.num_candidates);
    PutU64(out, shard.retained.size());
    for (const CandidatePair& p : shard.retained) {
      PutU32(out, p.left);
      PutU32(out, p.right);
    }
    PutU64(out, shard.aggregates.size());
    // In ascending id order, NOT hash-table order: two sessions with the
    // same logical state must serialise to the same bytes, and unordered
    // iteration order depends on insertion history and hash seed.
    std::vector<EntityId> ids;
    ids.reserve(shard.aggregates.size());
    for (const auto& [id, agg] : shard.aggregates) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const EntityId id : ids) {
      const EntityAggregates& agg = shard.aggregates.at(id);
      PutU32(out, id);
      PutU32(out, agg.num_blocks);
      PutF64(out, agg.comparisons);
      PutF64(out, agg.inv_comparisons);
      PutF64(out, agg.inv_sizes);
      PutF64(out, agg.lcp);
    }
  }

  out.flush();
  if (!out) {
    throw std::runtime_error("session snapshot: write to " + path +
                             " failed");
  }
}

MetaBlockingSession MetaBlockingSession::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("session snapshot: cannot open " + path);
  }
  SnapshotReader reader(in);

  char magic[sizeof kMagic];
  reader.Bytes(magic, sizeof magic);
  if (!std::equal(magic, magic + sizeof magic, kMagic)) {
    throw std::runtime_error("session snapshot: " + path +
                             " is not a GSMB session snapshot");
  }

  SessionOptions options;
  options.num_shards = reader.U64();
  options.execution.num_threads = reader.U64();
  options.min_token_length = reader.U64();
  options.max_block_size = reader.U64();
  const uint8_t pruning = reader.U8();
  if (pruning > static_cast<uint8_t>(PruningKind::kRcnp)) {
    throw std::runtime_error("session snapshot: invalid pruning kind");
  }
  options.pruning = static_cast<PruningKind>(pruning);
  options.blast_ratio = reader.F64();
  options.validity_threshold = reader.F64();
  options.cnp_entity_universe = reader.U64();

  ServingModel model;
  model.features = FeatureSet::FromMask(reader.U8());
  model.weights.resize(reader.Count(sizeof(double)));
  for (double& w : model.weights) w = reader.F64();
  model.intercept = reader.F64();

  // The constructor validates options and model and sizes the shards.
  MetaBlockingSession session(options, std::move(model));

  // Replay the profiles through the normal ingest path to rebuild the
  // shard key tables (dirty marks are overwritten from the file below).
  const uint64_t num_profiles = reader.Count(sizeof(uint64_t));
  for (uint64_t i = 0; i < num_profiles; ++i) {
    EntityProfile profile(reader.String());
    const uint64_t num_attributes = reader.Count(2 * sizeof(uint64_t));
    for (uint64_t a = 0; a < num_attributes; ++a) {
      std::string name = reader.String();
      std::string value = reader.String();
      profile.AddAttribute(std::move(name), std::move(value));
    }
    session.AddProfile(profile);
  }

  const uint64_t num_shards = reader.U64();
  if (num_shards != session.shards_.size()) {
    throw std::runtime_error("session snapshot: shard count mismatch");
  }
  // Every id must index the profiles just replayed, or later queries and
  // retained-pair exports would index out of bounds.
  const auto checked_id = [&](uint32_t id) {
    if (id >= session.profiles_.size()) {
      throw std::runtime_error(
          "session snapshot: entity id out of range (corrupt file)");
    }
    return static_cast<EntityId>(id);
  };
  for (Shard& shard : session.shards_) {
    shard.dirty = reader.U8() != 0;
    shard.num_blocks = reader.U64();
    shard.total_comparisons = reader.F64();
    shard.num_candidates = reader.U64();
    shard.retained.assign(reader.Count(2 * sizeof(uint32_t)),
                          CandidatePair{});
    for (CandidatePair& p : shard.retained) {
      p.left = checked_id(reader.U32());
      p.right = checked_id(reader.U32());
    }
    const uint64_t num_aggregates =
        reader.Count(2 * sizeof(uint32_t) + 4 * sizeof(double));
    shard.aggregates.clear();
    shard.aggregates.reserve(num_aggregates);
    for (uint64_t a = 0; a < num_aggregates; ++a) {
      const EntityId id = checked_id(reader.U32());
      EntityAggregates agg;
      agg.num_blocks = reader.U32();
      agg.comparisons = reader.F64();
      agg.inv_comparisons = reader.F64();
      agg.inv_sizes = reader.F64();
      agg.lcp = reader.F64();
      shard.aggregates.emplace(id, agg);
    }
  }
  return session;
}

}  // namespace gsmb
