#include "serve/session.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <utility>

#include "blocking/block_collection.h"
#include "blocking/block_stats.h"
#include "blocking/entity_index.h"
#include "core/features.h"
#include "gsmb/log.h"
#include "util/thread_pool.h"

namespace gsmb {

namespace {

// Stable 64-bit FNV-1a: the token -> shard routing must not change across
// runs or platforms, or a restored snapshot would re-shard its keys.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

bool PairLess(const CandidatePair& a, const CandidatePair& b) {
  return a.left != b.left ? a.left < b.left : a.right < b.right;
}

}  // namespace

MetaBlockingSession::MetaBlockingSession(SessionOptions options,
                                         ServingModel model)
    : options_(options), model_(std::move(model)) {
  if (options_.num_shards == 0) {
    throw std::invalid_argument(
        "MetaBlockingSession: num_shards must be >= 1");
  }
  if (!model_.Valid()) {
    throw std::invalid_argument(
        "MetaBlockingSession: serving model is empty or its weight width "
        "does not match the feature set");
  }
  profiles_.set_name("session");
  shards_.resize(options_.num_shards);
}

size_t MetaBlockingSession::ShardOf(const std::string& token) const {
  return Fnv1a(token) % options_.num_shards;
}

std::vector<std::string> MetaBlockingSession::TokensOf(
    const EntityProfile& profile) const {
  // Mirrors TokenBlocking's key function so a 1-shard session blocks
  // exactly like the batch pipeline's Token Blocking.
  std::vector<std::string> tokens = profile.DistinctValueTokens();
  if (options_.min_token_length > 1) {
    std::erase_if(tokens, [this](const std::string& t) {
      return t.size() < options_.min_token_length;
    });
  }
  return tokens;
}

EntityId MetaBlockingSession::AddProfileLocked(const EntityProfile& profile) {
  const EntityId id = profiles_.Add(profile);
  for (std::string& token : TokensOf(profile)) {
    Shard& shard = shards_[ShardOf(token)];
    shard.keys[std::move(token)].push_back(id);
    shard.dirty = true;
  }
  return id;
}

EntityId MetaBlockingSession::AddProfile(const EntityProfile& profile) {
  GSMB_SPAN("serve.ingest", "serve.ingest.latency_us");
  std::unique_lock<std::shared_mutex> lock(sync_->mutex);
  return AddProfileLocked(profile);
}

std::vector<EntityId> MetaBlockingSession::AddProfiles(
    const std::vector<EntityProfile>& batch) {
  GSMB_SPAN("serve.ingest", "serve.ingest.latency_us");
  std::unique_lock<std::shared_mutex> lock(sync_->mutex);
  std::vector<EntityId> ids;
  ids.reserve(batch.size());
  for (const EntityProfile& profile : batch) {
    ids.push_back(AddProfileLocked(profile));
  }
  GSMB_LOG_DEBUG("serve.ingest", {"profiles", batch.size()},
                 {"resident", profiles_.size()});
  return ids;
}

void MetaBlockingSession::set_num_threads(size_t num_threads) {
  std::unique_lock<std::shared_mutex> lock(sync_->mutex);
  options_.execution.num_threads = num_threads;
}

void MetaBlockingSession::RefreshShard(Shard* shard,
                                       obs::PhaseTimings* phases) const {
  shard->retained.clear();
  shard->aggregates.clear();
  shard->num_blocks = 0;
  shard->total_comparisons = 0.0;
  shard->num_candidates = 0;

  // One phase guard walks the shard pipeline; optional::emplace ends the
  // previous phase before starting the next, and any early return ends the
  // current one.
  std::optional<obs::ScopedPhase> phase(std::in_place, phases,
                                        obs::Phase::kBlocking);
  // ---- Shard-local id space. ----
  // The per-shard EntityIndex and pruning scratch are sized by the entity
  // count they are given; using global ids would cost O(|E|) per shard per
  // refresh no matter how small the shard. Remapping the shard's member
  // ids to a dense local space keeps a refresh proportional to the shard's
  // own content. The map is monotone (sorted globals -> 0..k-1), so member
  // lists stay ascending and the pipeline's ordering invariants hold.
  std::vector<EntityId> globals;
  for (const auto& [key, members] : shard->keys) {
    globals.insert(globals.end(), members.begin(), members.end());
  }
  std::sort(globals.begin(), globals.end());
  globals.erase(std::unique(globals.begin(), globals.end()), globals.end());
  const auto to_local = [&](EntityId global) {
    return static_cast<EntityId>(
        std::lower_bound(globals.begin(), globals.end(), global) -
        globals.begin());
  };

  // ---- Re-block: one block per key with >= 2 members, capped. ----
  // std::map iterates keys lexicographically, so block ids are
  // deterministic — the same invariant key_blocking.cc maintains.
  BlockCollection blocks(/*clean_clean=*/false, globals.size(), 0);
  for (const auto& [key, members] : shard->keys) {
    if (members.size() < 2) continue;
    if (options_.max_block_size > 0 &&
        members.size() > options_.max_block_size) {
      continue;
    }
    Block b;
    b.key = key;
    b.left.reserve(members.size());
    for (EntityId member : members) b.left.push_back(to_local(member));
    blocks.Add(std::move(b));
  }
  shard->num_blocks = blocks.size();
  if (blocks.empty()) return;

  // ---- Per-shard pipeline, single-threaded: Refresh() parallelises
  // across shards, and shard outputs must not depend on inner threading
  // anyway (they do not — every stage is deterministic — but one level of
  // parallelism is the simple and fast choice). ----
  phase.emplace(phases, obs::Phase::kPairs);
  const EntityIndex index(blocks);
  const std::vector<CandidatePair> pairs = GenerateCandidatePairs(index, 1);
  shard->total_comparisons = index.TotalComparisons();
  shard->num_candidates = pairs.size();

  phase.emplace(phases, obs::Phase::kFeatures);
  // Aggregate cache for the query path (and the LCP tally below), keyed by
  // the *global* ids the query path sees.
  std::vector<double> lcp(index.num_entities(), 0.0);
  for (const CandidatePair& p : pairs) {
    // Candidate pairs are distinct, so each one contributes exactly one
    // new neighbour to both endpoints: LCP within the shard.
    lcp[p.left] += 1.0;
    lcp[p.right] += 1.0;
  }
  for (size_t e = 0; e < index.num_entities(); ++e) {
    const auto blocks_of = static_cast<uint32_t>(index.NumBlocksOf(e));
    if (blocks_of == 0) continue;
    EntityAggregates agg;
    agg.num_blocks = blocks_of;
    agg.comparisons = index.EntityComparisons(e);
    agg.inv_comparisons = index.SumInvBlockComparisons(e);
    agg.inv_sizes = index.SumInvBlockSizes(e);
    agg.lcp = lcp[e];
    shard->aggregates.emplace(globals[e], agg);
  }
  if (pairs.empty()) return;

  // ---- Weight + prune with the resident model. ----
  const FeatureExtractor extractor(index, pairs);
  const Matrix features = extractor.Compute(model_.features, 1);
  phase.emplace(phases, obs::Phase::kClassify);
  std::vector<double> probabilities(pairs.size());
  for (size_t r = 0; r < pairs.size(); ++r) {
    probabilities[r] = model_.Predict(features.Row(r));
  }

  phase.emplace(phases, obs::Phase::kPrune);
  const BlockCollectionStats stats = ComputeBlockStats(blocks);
  PruningContext context = PruningContext::FromIndex(index, stats);
  context.validity_threshold = options_.validity_threshold;
  context.blast_ratio = options_.blast_ratio;
  context.execution.num_threads = 1;
  // CNP budget relative to the entities actually present in the shard (the
  // batch formula divides by the global |E|, which changes on every ingest
  // anywhere and would invalidate every clean shard's cache) — unless the
  // options pin an explicit universe (Engine cold builds, batch parity).
  const size_t cnp_universe = options_.cnp_entity_universe > 0
                                  ? options_.cnp_entity_universe
                                  : shard->aggregates.size();
  context.cnp_k =
      std::max(1.0, static_cast<double>(stats.total_occurrences) /
                        static_cast<double>(cnp_universe));

  const std::vector<uint32_t> retained_rows =
      MakePruningAlgorithm(options_.pruning)
          ->Prune(pairs, probabilities, context);
  shard->retained.reserve(retained_rows.size());
  for (uint32_t row : retained_rows) {
    // Back to global ids; the monotone remap preserves left < right.
    shard->retained.push_back(
        {globals[pairs[row].left], globals[pairs[row].right]});
  }
}

size_t MetaBlockingSession::Refresh() {
  GSMB_SPAN("serve.refresh", "serve.refresh.latency_us");
  // Exclusive: the per-shard pipelines below mutate the shard caches. The
  // ParallelFor workers write on behalf of this lock holder; readers
  // observe the writes through the release/acquire pair of this mutex.
  std::unique_lock<std::shared_mutex> lock(sync_->mutex);
  std::vector<size_t> dirty;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].dirty) dirty.push_back(s);
  }
  // Each worker times into its shard's own slot; the merge below runs in
  // ascending shard order so the accumulated phase totals are
  // deterministic for any thread count.
  std::vector<obs::PhaseTimings> shard_phases(dirty.size());
  ParallelFor(dirty.size(), options_.execution.num_threads,
              [&](size_t begin, size_t end) {
                for (size_t d = begin; d < end; ++d) {
                  RefreshShard(&shards_[dirty[d]], &shard_phases[d]);
                }
              });
  for (const obs::PhaseTimings& timings : shard_phases) {
    phases_.MergeFrom(timings);
  }
  for (size_t s : dirty) shards_[s].dirty = false;
  if (!dirty.empty()) {
    sync_->retained_count.store(kRetainedCountUnknown, std::memory_order_relaxed);
  }
  GSMB_LOG_DEBUG("serve.refresh", {"dirty_shards", dirty.size()},
                 {"shards", shards_.size()});
  return dirty.size();
}

std::vector<CandidatePair> MetaBlockingSession::RetainedPairsLocked() const {
  std::vector<CandidatePair> out;
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.retained.size();
  out.reserve(total);
  for (const Shard& shard : shards_) {
    out.insert(out.end(), shard.retained.begin(), shard.retained.end());
  }
  // A pair retained by several shards (endpoints sharing tokens in each)
  // appears once: the session's answer is the union.
  std::sort(out.begin(), out.end(), PairLess);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  // Concurrent shared-lock readers may race to memoise; they computed the
  // same value from the same shard state, so either store is correct.
  sync_->retained_count.store(out.size(), std::memory_order_relaxed);
  return out;
}

std::vector<CandidatePair> MetaBlockingSession::RetainedPairs() const {
  std::shared_lock<std::shared_mutex> lock(sync_->mutex);
  return RetainedPairsLocked();
}

size_t MetaBlockingSession::DirtyShardCount() const {
  std::shared_lock<std::shared_mutex> lock(sync_->mutex);
  size_t count = 0;
  for (const Shard& shard : shards_) count += shard.dirty ? 1 : 0;
  return count;
}

obs::PhaseTimings MetaBlockingSession::AccumulatedPhases() const {
  std::shared_lock<std::shared_mutex> lock(sync_->mutex);
  return phases_;
}

SessionStats MetaBlockingSession::Stats() const {
  std::shared_lock<std::shared_mutex> lock(sync_->mutex);
  SessionStats stats;
  stats.num_profiles = profiles_.size();
  stats.num_shards = shards_.size();
  for (const Shard& shard : shards_) {
    stats.dirty_shards += shard.dirty ? 1 : 0;
    stats.num_blocks += shard.num_blocks;
    stats.num_candidates += shard.num_candidates;
  }
  const size_t memoised = sync_->retained_count.load(std::memory_order_relaxed);
  stats.num_retained = memoised != kRetainedCountUnknown
                           ? memoised
                           : RetainedPairsLocked().size();
  return stats;
}

void MetaBlockingSession::QueryShard(
    const Shard& shard, const std::vector<std::string>& tokens,
    std::optional<EntityId> exclude,
    std::unordered_map<EntityId, double>* best) const {
  // An external probe is scored "as if inserted": each of its tokens with
  // at least one resident member forms a block of the resident members
  // plus the probe. A resident probe (its id passed as `exclude`) already
  // sits in those blocks, so sizes stay resident and it is skipped as its
  // own candidate. Resident entities keep the cached aggregates of the
  // last Refresh() — the one asymmetry of the query path — which is what
  // makes a query O(probe neighbourhood) instead of O(shard).
  struct ProbeKey {
    const std::vector<EntityId>* members;
    double as_if_size;         // |b| with the probe counted once
    double as_if_comparisons;  // ||b|| with the probe counted once
    bool has_probe;            // probe already resident in this block
  };
  std::vector<ProbeKey> keys;
  double pivot_blocks = 0.0;
  double pivot_comparisons = 0.0;
  double pivot_inv_cmp = 0.0;
  double pivot_inv_size = 0.0;
  double universe_blocks = static_cast<double>(shard.num_blocks);
  double universe_comparisons = shard.total_comparisons;
  for (const std::string& token : tokens) {
    auto it = shard.keys.find(token);
    if (it == shard.keys.end() || it->second.empty()) continue;
    const std::vector<EntityId>& members = it->second;
    const bool has_probe =
        exclude.has_value() &&
        std::binary_search(members.begin(), members.end(), *exclude);
    // Entities the probe can meet through this key, and the block size
    // with the probe counted exactly once.
    const size_t others = members.size() - (has_probe ? 1 : 0);
    if (others == 0) continue;
    const size_t block_size = others + 1;
    if (options_.max_block_size > 0 &&
        block_size > options_.max_block_size) {
      continue;  // the (as-if) block is purged
    }
    const double size = static_cast<double>(block_size);
    const double comparisons = size * (size - 1.0) / 2.0;
    keys.push_back({&members, size, comparisons, has_probe});
    pivot_blocks += 1.0;
    pivot_comparisons += comparisons;
    pivot_inv_cmp += 1.0 / comparisons;
    pivot_inv_size += 1.0 / size;
    if (!has_probe) {
      // The as-if universe gains the probe's comparisons; a previously
      // singleton key materialises as a brand-new block of two. (A
      // resident probe's blocks are already in the universe totals.)
      universe_comparisons += static_cast<double>(others);
      if (others == 1) universe_blocks += 1.0;
    }
  }
  if (keys.empty()) return;

  // Per-candidate sums over the probe's keys, in deterministic key order.
  struct Acc {
    double common = 0.0;
    double inv_cmp = 0.0;   // Σ 1/||b|| over common as-if blocks
    double inv_size = 0.0;  // Σ 1/|b|  over common as-if blocks
    // Adjustments lifting the candidate's cached (resident) aggregates to
    // the as-if universe: singleton keys become blocks it now belongs to,
    // and every shared block's ||b|| grew by its resident size. Zero for
    // blocks the probe is already resident in.
    double extra_blocks = 0.0;
    double extra_comparisons = 0.0;
    double extra_inv_cmp = 0.0;
    double extra_inv_size = 0.0;
  };
  std::unordered_map<EntityId, Acc> candidates;
  for (const ProbeKey& key : keys) {
    const auto others =
        static_cast<double>(key.members->size() - (key.has_probe ? 1 : 0));
    for (EntityId j : *key.members) {
      if (exclude.has_value() && j == *exclude) continue;
      Acc& acc = candidates[j];
      acc.common += 1.0;
      acc.inv_cmp += 1.0 / key.as_if_comparisons;
      acc.inv_size += 1.0 / key.as_if_size;
      if (!key.has_probe) {
        acc.extra_comparisons += others;
        if (others == 1.0) {
          acc.extra_blocks += 1.0;
          acc.extra_inv_cmp += 1.0;   // ||{j, probe}|| = 1
          acc.extra_inv_size += 0.5;  // |{j, probe}| = 2
        }
      }
    }
  }

  const double probe_lcp = static_cast<double>(candidates.size());
  const bool need_ejs = model_.features.Contains(Feature::kEjs);
  const double pivot_log_ibf =
      pivot_blocks > 0.0 ? std::log(universe_blocks / pivot_blocks) : 0.0;
  const double pivot_log_ejs =
      need_ejs && pivot_comparisons > 0.0
          ? std::log(universe_comparisons / pivot_comparisons)
          : 0.0;

  std::vector<double> row(model_.features.Dimensions(), 0.0);
  static const EntityAggregates kNoAggregates{};
  for (const auto& [id, acc] : candidates) {
    auto cached = shard.aggregates.find(id);
    const EntityAggregates& resident =
        cached != shard.aggregates.end() ? cached->second : kNoAggregates;
    const double other_blocks =
        static_cast<double>(resident.num_blocks) + acc.extra_blocks;
    const double other_comparisons =
        resident.comparisons + acc.extra_comparisons;
    const double other_inv_cmp = resident.inv_comparisons + acc.extra_inv_cmp;
    const double other_inv_size = resident.inv_sizes + acc.extra_inv_size;
    // A resident probe is already in its neighbours' LCP counts.
    const double other_lcp = resident.lcp + (exclude.has_value() ? 0.0 : 1.0);

    size_t col = 0;
    for (Feature f : model_.features.Members()) {
      switch (f) {
        case Feature::kCfIbf:
          row[col++] = other_blocks > 0.0
                           ? acc.common * pivot_log_ibf *
                                 std::log(universe_blocks / other_blocks)
                           : 0.0;
          break;
        case Feature::kRaccb:
          row[col++] = acc.inv_cmp;
          break;
        case Feature::kJs: {
          const double denom = pivot_blocks + other_blocks - acc.common;
          row[col++] = denom > 0.0 ? acc.common / denom : 0.0;
          break;
        }
        case Feature::kLcp:
          row[col++] = probe_lcp;
          row[col++] = other_lcp;
          break;
        case Feature::kEjs: {
          const double denom = pivot_blocks + other_blocks - acc.common;
          const double js = denom > 0.0 ? acc.common / denom : 0.0;
          const double other_log =
              other_comparisons > 0.0
                  ? std::log(universe_comparisons / other_comparisons)
                  : 0.0;
          row[col++] = js * pivot_log_ejs * other_log;
          break;
        }
        case Feature::kWjs: {
          const double denom = pivot_inv_cmp + other_inv_cmp - acc.inv_cmp;
          row[col++] = denom > 0.0 ? acc.inv_cmp / denom : 0.0;
          break;
        }
        case Feature::kRs:
          row[col++] = acc.inv_size;
          break;
        case Feature::kNrs: {
          const double denom = pivot_inv_size + other_inv_size - acc.inv_size;
          row[col++] = denom > 0.0 ? acc.inv_size / denom : 0.0;
          break;
        }
      }
    }

    const double probability = model_.Predict(row.data());
    auto [slot, inserted] = best->try_emplace(id, probability);
    if (!inserted && probability > slot->second) slot->second = probability;
  }
}

std::vector<QueryMatch> MetaBlockingSession::QueryCandidates(
    const EntityProfile& probe, size_t max_results,
    std::optional<EntityId> exclude) const {
  // The latency histogram includes lock wait: that IS the serving tail.
  GSMB_SPAN("serve.query", "serve.query.latency_us");
  std::shared_lock<std::shared_mutex> lock(sync_->mutex);
  // Group the probe's tokens by owning shard; std::map keeps the shard
  // visit order deterministic.
  std::map<size_t, std::vector<std::string>> by_shard;
  for (std::string& token : TokensOf(probe)) {
    by_shard[ShardOf(token)].push_back(std::move(token));
  }

  std::unordered_map<EntityId, double> best;
  for (const auto& [shard_id, tokens] : by_shard) {
    QueryShard(shards_[shard_id], tokens, exclude, &best);
  }

  std::vector<QueryMatch> out;
  out.reserve(best.size());
  for (const auto& [id, probability] : best) {
    if (probability >= options_.validity_threshold) {
      out.push_back({id, probability});
    }
  }
  std::sort(out.begin(), out.end(), [](const QueryMatch& a,
                                       const QueryMatch& b) {
    return a.probability != b.probability ? a.probability > b.probability
                                          : a.id < b.id;
  });
  if (out.size() > max_results) out.resize(max_results);
  return out;
}

}  // namespace gsmb
