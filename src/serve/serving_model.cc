#include "serve/serving_model.h"

#include <stdexcept>

#include "core/pipeline.h"
#include "ml/logistic_regression.h"

namespace gsmb {

double ServingModel::Predict(const double* row) const {
  double z = intercept;
  for (size_t c = 0; c < weights.size(); ++c) z += weights[c] * row[c];
  return LogisticRegression::Sigmoid(z);
}

std::vector<double> ServingModel::PredictRows(const Matrix& x) const {
  if (x.cols() != weights.size()) {
    throw std::invalid_argument(
        "ServingModel::PredictRows: feature width mismatch");
  }
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = Predict(x.Row(r));
  return out;
}

namespace {

MetaBlockingConfig TrainingConfig(const FeatureSet& features,
                                  const ServingModelTraining& options) {
  MetaBlockingConfig config;
  config.features = features;
  config.classifier = options.classifier;
  config.train_per_class = options.train_per_class;
  config.seed = options.seed;
  config.execution = options.execution;
  return config;
}

ServingModel ModelFromCoefficients(const MetaBlockingResult& result,
                                   const FeatureSet& features,
                                   size_t* training_size) {
  if (training_size != nullptr) *training_size = result.training_size;
  if (result.model_coefficients.size() != features.Dimensions() + 1) {
    throw std::runtime_error(
        "TrainServingModel: classifier has no raw-space linear form (use "
        "logistic regression or linear SVC)");
  }
  ServingModel model;
  model.features = features;
  model.weights.assign(result.model_coefficients.begin(),
                       result.model_coefficients.end() - 1);
  model.intercept = result.model_coefficients.back();
  return model;
}

}  // namespace

ServingModel TrainServingModel(const EntityCollection& labelled,
                               const GroundTruth& ground_truth,
                               const FeatureSet& features,
                               const ServingModelTraining& options,
                               size_t* training_size) {
  if (ground_truth.empty()) {
    throw std::invalid_argument(
        "TrainServingModel: ground truth has no labelled matches");
  }
  BlockingOptions blocking = options.blocking;
  blocking.execution = options.execution;
  PreparedDataset prep =
      PrepareDirty("serving-bootstrap", labelled, ground_truth, blocking);
  MetaBlockingResult result =
      RunMetaBlocking(prep, TrainingConfig(features, options));
  return ModelFromCoefficients(result, features, training_size);
}

ServingModel TrainServingModelFromPrepared(const PreparedRef& prepared,
                                           const FeatureSet& features,
                                           const ServingModelTraining& options,
                                           size_t* training_size) {
  if (prepared.num_ground_truth == 0) {
    throw std::invalid_argument(
        "TrainServingModelFromPrepared: ground truth has no labelled "
        "matches");
  }
  MetaBlockingResult result =
      RunMetaBlocking(prepared, TrainingConfig(features, options));
  return ModelFromCoefficients(result, features, training_size);
}

}  // namespace gsmb
