// MetaBlockingSession: the long-lived incremental serving layer.
//
// The batch pipeline (core/pipeline.h) is one-shot: block, weight with the
// generalized feature vector, prune, exit. A deployed ER system instead
// sees a stream of new records against a resident collection. This layer
// keeps the whole meta-blocking state warm and maintains it incrementally:
//
//   AddProfiles(batch)   O(tokens) ingest. Each token routes to one of
//                        `num_shards` key shards (stable hash); only the
//                        shards owning a touched token are marked dirty.
//   Refresh()            Re-blocks and re-prunes *dirty shards only*. Each
//                        shard runs the full per-shard pipeline — blocks ->
//                        EntityIndex -> candidate pairs -> features ->
//                        resident linear classifier -> pruning — so its
//                        output is a pure function of its key table. That
//                        purity is the whole design: an incremental session
//                        retains BIT-IDENTICAL pairs to a cold session
//                        rebuilt from scratch on the same profiles, for any
//                        interleaving of AddProfiles/Refresh and any thread
//                        count.
//   QueryCandidates(p)   Scores one external probe profile against the
//                        resident shards (as if it had been inserted)
//                        without recomputing any global state, then prunes
//                        by the validity threshold.
//   Save()/Load()        Binary snapshot of the full session (options,
//                        model, profiles, per-shard caches) for restarts.
//
// Thread safety. The session is internally synchronized: AddProfiles /
// Refresh take an exclusive lock, QueryCandidates / RetainedPairs / Stats /
// Save take a shared one, so any interleaving of ingest, refresh and query
// from concurrent threads is race-free and equivalent to SOME serial order
// (each call is atomic; the bit-identical-to-cold-rebuild guarantee then
// applies to whatever serial order the locks produced). The accessors that
// return references into the session (profiles(), model(), options()) are
// the exception: they are only safe while no concurrent writer exists.
//
// Sharding semantics. Every blocking key (token) lives in exactly one
// shard, so the shards partition the block collection; the session's
// retained set is the sorted union of the per-shard retained sets. Within
// a shard the paper's pipeline applies unchanged; across shards the only
// interaction is that union. Two deliberate departures from the batch
// preprocessing keep shard outputs independent of global state (and thus
// cacheable): oversized blocks are purged by an ABSOLUTE size cap
// (`max_block_size`) rather than a fraction of the ever-growing collection,
// and Block Filtering (a per-entity, cross-shard top-k) is not applied.

#ifndef GSMB_SERVE_SESSION_H_
#define GSMB_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "blocking/candidate_pairs.h"
#include "core/pruning.h"
#include "er/entity_collection.h"
#include "gsmb/execution.h"
#include "gsmb/telemetry.h"
#include "serve/serving_model.h"

namespace gsmb {

struct SessionOptions {
  /// Number of key shards. More shards = finer dirty granularity (cheaper
  /// incremental refreshes) at slightly higher per-refresh overhead.
  size_t num_shards = 16;
  /// Shared execution knobs (worker threads for Refresh(); shards are
  /// data-parallel). Results are identical for any thread count.
  ExecutionOptions execution;
  /// Minimum token length used as a blocking key.
  size_t min_token_length = 1;
  /// Block Purging analogue for a long-lived session: blocks with more
  /// than this many entities are dropped. Absolute rather than a fraction
  /// of |E| (which changes on every ingest and would dirty every shard).
  /// 0 disables purging.
  size_t max_block_size = 0;
  /// Pruning algorithm applied per shard.
  PruningKind pruning = PruningKind::kBlast;
  double blast_ratio = 0.35;
  /// Entity universe of the CNP budget k = max(1, Σ|b| / universe). 0 uses
  /// the entities present in each shard — the incremental default, since a
  /// global profile count changes on every ingest and would invalidate
  /// every clean shard's cache. The Engine's one-shot cold builds pin it to
  /// the profile count, which makes a single-shard session prune exactly
  /// like the batch pipeline (whose budget divides by |E|).
  size_t cnp_entity_universe = 0;
  /// Pairs with probability below this are never retained or returned.
  double validity_threshold = 0.5;
};

/// One scored candidate for a probe profile.
struct QueryMatch {
  EntityId id = 0;           ///< resident profile id (see profiles())
  double probability = 0.0;  ///< best per-shard classifier score
};

struct SessionStats {
  size_t num_profiles = 0;
  size_t num_shards = 0;
  size_t dirty_shards = 0;
  size_t num_blocks = 0;      ///< across shard caches (as of last Refresh)
  size_t num_candidates = 0;  ///< sum of per-shard candidate counts
  size_t num_retained = 0;    ///< size of RetainedPairs()
};

class MetaBlockingSession {
 public:
  /// Throws std::invalid_argument when `model` is not usable (empty
  /// feature set or weight-width mismatch) or `options.num_shards` == 0.
  MetaBlockingSession(SessionOptions options, ServingModel model);

  // -- Ingest ---------------------------------------------------------------

  /// Appends the batch to the resident collection and routes its tokens
  /// into the key shards, marking touched shards dirty. Returns the
  /// assigned profile ids. O(total tokens); no re-blocking happens here.
  std::vector<EntityId> AddProfiles(const std::vector<EntityProfile>& batch);
  EntityId AddProfile(const EntityProfile& profile);

  // -- Maintenance ----------------------------------------------------------

  /// Re-runs the per-shard pipeline on every dirty shard (parallel across
  /// shards) and clears the dirty marks. Returns the number of shards
  /// refreshed. After Refresh(), RetainedPairs() equals the retained set of
  /// a cold session built from scratch on the same profiles, bit for bit.
  size_t Refresh();

  /// Union of the per-shard retained pairs, sorted by (left, right) and
  /// deduplicated. Reflects the state as of the last Refresh(); pairs
  /// implied by profiles ingested after it appear only after the next one.
  std::vector<CandidatePair> RetainedPairs() const;

  // -- Query ----------------------------------------------------------------

  /// Scores the probe against every shard owning one of its tokens, as if
  /// the probe had been inserted there, and returns resident profiles with
  /// probability >= validity_threshold, best first (ties by ascending id),
  /// at most `max_results`. Uses the per-shard aggregate caches of the
  /// last Refresh(); no global state is recomputed. A candidate reachable
  /// through several shards gets its best per-shard score.
  ///
  /// When the probe IS a resident profile, pass its id as `exclude`: the
  /// probe is then scored as the resident it already is (block sizes stay
  /// resident instead of as-if-inserted, so it is not double-counted) and
  /// it never appears in its own results.
  std::vector<QueryMatch> QueryCandidates(
      const EntityProfile& probe, size_t max_results = 10,
      std::optional<EntityId> exclude = std::nullopt) const;

  // -- Introspection --------------------------------------------------------

  size_t DirtyShardCount() const;
  SessionStats Stats() const;
  /// Cumulative per-phase pipeline time across every Refresh() so far,
  /// merged in ascending shard order (deterministic for any thread count).
  /// Phases: kBlocking (re-block), kPairs, kFeatures (aggregates +
  /// feature rows), kClassify, kPrune.
  obs::PhaseTimings AccumulatedPhases() const;
  const SessionOptions& options() const { return options_; }
  /// Worker threads for Refresh(); purely an execution knob (results are
  /// identical for any value), so a restored snapshot may override it.
  void set_num_threads(size_t num_threads);
  const ServingModel& model() const { return model_; }
  /// The resident collection; QueryMatch::id indexes it.
  const EntityCollection& profiles() const { return profiles_; }

  // -- Snapshot (serve/snapshot.cc) -----------------------------------------

  /// Serialises the full session (options, model, profiles, shard caches,
  /// dirty marks) to a binary snapshot. Throws std::runtime_error on I/O
  /// failure.
  void Save(const std::string& path) const;
  /// Restores a session from Save() output: RetainedPairs(), queries and
  /// subsequent incremental behaviour are identical to the saved session's.
  static MetaBlockingSession Load(const std::string& path);

 private:
  /// Per-entity aggregates of one shard's EntityIndex, cached for the
  /// query path (only entities present in the shard have an entry).
  struct EntityAggregates {
    uint32_t num_blocks = 0;       ///< |B_e| within the shard
    double comparisons = 0.0;      ///< ||e||
    double inv_comparisons = 0.0;  ///< Σ 1/||b||
    double inv_sizes = 0.0;        ///< Σ 1/|b|
    double lcp = 0.0;              ///< distinct shard-local candidates
  };

  struct Shard {
    /// token -> member profile ids, ascending (ids arrive in order).
    std::map<std::string, std::vector<EntityId>> keys;
    bool dirty = false;

    // Caches, valid while !dirty (pure functions of `keys`):
    std::vector<CandidatePair> retained;
    std::unordered_map<EntityId, EntityAggregates> aggregates;
    size_t num_blocks = 0;
    double total_comparisons = 0.0;
    size_t num_candidates = 0;
  };

  size_t ShardOf(const std::string& token) const;
  std::vector<std::string> TokensOf(const EntityProfile& profile) const;
  /// AddProfile body; the caller holds `mutex_` exclusively.
  EntityId AddProfileLocked(const EntityProfile& profile);
  /// RetainedPairs body; the caller holds `mutex_` (shared suffices).
  std::vector<CandidatePair> RetainedPairsLocked() const;
  /// Recomputes one shard's caches from its key table (pure; thread-safe
  /// across distinct shards). Phase times go to `phases`, owned by the
  /// calling worker — Refresh() merges them in shard order afterwards.
  void RefreshShard(Shard* shard, obs::PhaseTimings* phases) const;
  /// Scores the probe's `tokens` (all owned by `shard`) and folds the
  /// per-candidate best probability into `best`.
  void QueryShard(const Shard& shard, const std::vector<std::string>& tokens,
                  std::optional<EntityId> exclude,
                  std::unordered_map<EntityId, double>* best) const;

  /// kRetainedCountUnknown in `retained_count` means "not memoised yet".
  static constexpr size_t kRetainedCountUnknown = ~size_t{0};

  /// The synchronization state, held behind a unique_ptr so the session
  /// stays movable (std::shared_mutex is neither movable nor copyable;
  /// moves happen only in single-threaded hand-off contexts — Load()
  /// returns, Result<MetaBlockingSession> — where no lock is held).
  struct Sync {
    /// Writers (AddProfiles, Refresh, set_num_threads) take this
    /// exclusively; readers (queries, retained pairs, stats, Save) share it.
    mutable std::shared_mutex mutex;
    /// |RetainedPairs()| memoised across Stats() calls; reset by Refresh().
    /// Atomic so concurrent shared-lock readers may both memoise it.
    std::atomic<size_t> retained_count{kRetainedCountUnknown};
  };

  std::unique_ptr<Sync> sync_ = std::make_unique<Sync>();
  SessionOptions options_;
  ServingModel model_;
  EntityCollection profiles_;
  std::vector<Shard> shards_;
  /// Guarded by sync_->mutex (written by Refresh, read by
  /// AccumulatedPhases). Not part of snapshots: timing is not state.
  obs::PhaseTimings phases_;
};

}  // namespace gsmb

#endif  // GSMB_SERVE_SESSION_H_
