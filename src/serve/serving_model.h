// The resident classifier of a serving session.
//
// A long-lived MetaBlockingSession cannot hold an opaque
// ProbabilisticClassifier: it must be serialisable into a snapshot and its
// scoring must be exactly reproducible after a restore. Both of the paper's
// probabilistic models (logistic regression, Platt-scaled linear SVC) are
// linear in raw feature space, so the serving layer pins the model down to
// that common denominator: a raw-space weight vector plus intercept, mapped
// through the logistic function. For logistic regression this is the same
// function the batch pipeline evaluates (up to floating-point association);
// either way the session applies ONE fixed scorer everywhere, which is what
// makes incremental refreshes bit-identical to a cold rebuild.

#ifndef GSMB_SERVE_SERVING_MODEL_H_
#define GSMB_SERVE_SERVING_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/feature_set.h"
#include "core/pipeline.h"
#include "er/entity_collection.h"
#include "er/ground_truth.h"
#include "gsmb/execution.h"
#include "ml/classifier.h"
#include "util/matrix.h"

namespace gsmb {

/// A linear probabilistic scorer over a fixed feature set. `weights` lives
/// in *raw* (unscaled) feature space with `features.Dimensions()` entries,
/// laid out in the column order FeatureExtractor::Compute(features) emits.
struct ServingModel {
  FeatureSet features = FeatureSet::BlastOptimal();
  std::vector<double> weights;
  double intercept = 0.0;

  bool Valid() const {
    return !features.empty() && weights.size() == features.Dimensions();
  }

  /// P(match) = sigmoid(weights . row + intercept) for one raw feature row
  /// of width features.Dimensions().
  double Predict(const double* row) const;

  /// P(match) per row of `x` (x.cols() must equal features.Dimensions()).
  std::vector<double> PredictRows(const Matrix& x) const;
};

/// Knobs for bootstrapping a ServingModel from labelled data.
struct ServingModelTraining {
  ClassifierKind classifier = ClassifierKind::kLogisticRegression;
  size_t train_per_class = 250;
  uint64_t seed = 0;
  /// Preprocessing applied to the bootstrap collection before training
  /// (paper defaults). The Engine's serving backend overrides this with the
  /// JobSpec's blocking section so the trained model is bit-identical to
  /// the batch backend's.
  BlockingOptions blocking;
  /// Shared execution knobs; also applied to `blocking`.
  ExecutionOptions execution;
};

/// Trains a classifier with the batch pipeline (Token Blocking -> purging ->
/// filtering -> features -> balanced sample -> fit) on a labelled Dirty-ER
/// collection and returns its raw-space linear form. Throws when the chosen
/// classifier has no linear representation (Gaussian Naive Bayes) or when
/// the data yields too few labelled candidate pairs to train.
/// `training_size` (optional) receives the balanced sample's actual size.
ServingModel TrainServingModel(const EntityCollection& labelled,
                               const GroundTruth& ground_truth,
                               const FeatureSet& features,
                               const ServingModelTraining& options = {},
                               size_t* training_size = nullptr);

/// Trains from an existing preparation instead of re-blocking inside the
/// trainer: the caller supplies the blocked, labelled candidate view (an
/// Engine prepared handle's batch arrays, or RefOf() over an owning
/// PreparedDataset) and only the per-configuration stages run. With the
/// same blocking options the fitted model is bit-identical to
/// TrainServingModel's — same pipeline, same balanced-sample replay —
/// minus the redundant blocking pass. `options.blocking` is ignored (the
/// preparation already applied it).
ServingModel TrainServingModelFromPrepared(
    const PreparedRef& prepared, const FeatureSet& features,
    const ServingModelTraining& options = {}, size_t* training_size = nullptr);

}  // namespace gsmb

#endif  // GSMB_SERVE_SERVING_MODEL_H_
