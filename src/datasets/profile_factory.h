// Internal machinery shared by the Clean-Clean and Dirty generators:
// canonical objects, noisy profile copies, near-duplicate families and the
// hard-case (single-block / zero-block) duplicate constructions.
//
// Not part of the stable public API; use CleanCleanGenerator /
// DirtyGenerator instead.

#ifndef GSMB_DATASETS_PROFILE_FACTORY_H_
#define GSMB_DATASETS_PROFILE_FACTORY_H_

#include <string>
#include <vector>

#include "datasets/vocabulary.h"
#include "er/entity_profile.h"
#include "util/random.h"

namespace gsmb {

/// Token-level noise applied to each profile copy of an object.
struct CopyNoise {
  double drop_prob = 0.05;
  double corrupt_prob = 0.03;
  size_t extra_noise_tokens = 1;
};

/// The ground-truth description of a real-world object: the tokens all its
/// profile copies derive from.
struct CanonicalObject {
  std::vector<size_t> common_ranks;       ///< Zipf-pool token ranks
  std::vector<std::string> distinct;      ///< near-unique tokens (ids, SKUs)
  std::vector<std::string> family;        ///< family tokens, possibly empty
};

/// Stateful factory; one instance per generated dataset.
class ProfileFactory {
 public:
  ProfileFactory(const Vocabulary* vocab, size_t num_families,
                 size_t family_tokens, uint64_t seed);

  /// A fresh canonical object; joins family `family_id` (pass
  /// kNoFamily for a standalone object).
  static constexpr size_t kNoFamily = static_cast<size_t>(-1);
  CanonicalObject MakeObject(size_t n_common, size_t n_distinct,
                             size_t family_id, Rng* rng);

  size_t num_families() const { return families_.size(); }

  /// A noisy token copy of an object: drops/corrupts canonical tokens and
  /// appends unique junk tokens. Guarantees at least one token.
  std::vector<std::string> MakeCopyTokens(const CanonicalObject& object,
                                          const CopyNoise& noise, Rng* rng);

  /// Draws a mid-frequency "anchor" token: rare enough to survive Block
  /// Filtering, common enough that its block gives only a weak signal.
  std::string SampleAnchorToken(Rng* rng) const;

  /// A token list that shares exactly `anchor` with `other_copy` and
  /// nothing else — the second copy of a "single common block" duplicate
  /// (paper Section 5.4.2). `other_copy` must already contain `anchor`.
  std::vector<std::string> MakeSingleOverlapTokens(
      const std::vector<std::string>& other_copy, const std::string& anchor,
      size_t n_tokens, Rng* rng);

  /// A token list sharing nothing with `other_copy`: the duplicate is
  /// missed by blocking entirely (the x = 0 bars of Figures 15/16).
  std::vector<std::string> MakeDisjointTokens(
      const std::vector<std::string>& other_copy, size_t n_tokens, Rng* rng);

  /// Renders tokens into a profile. `schema_style` selects one of two
  /// attribute layouts so the two sources are schema-heterogeneous.
  EntityProfile TokensToProfile(const std::string& external_id,
                                const std::vector<std::string>& tokens,
                                int schema_style) const;

 private:
  std::string NextDistinct() { return vocab_->DistinctToken(distinct_counter_++); }

  const Vocabulary* vocab_;
  std::vector<std::vector<std::string>> families_;
  uint64_t distinct_counter_ = 0;
};

}  // namespace gsmb

#endif  // GSMB_DATASETS_PROFILE_FACTORY_H_
