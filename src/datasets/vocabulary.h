// Synthetic token vocabulary with realistic frequency skew.
//
// Real schema-agnostic blocks follow a Zipf-like law: a few stop-word-ish
// tokens appear in thousands of profiles (huge, useless blocks that Block
// Purging/Filtering must handle) while most tokens are rare (small,
// informative blocks). The vocabulary provides:
//   * a ranked pool of "common" tokens sampled with Zipf skew, and
//   * an unbounded stream of near-unique "distinctive" tokens (model
//     numbers, ids) that matching profiles share.

#ifndef GSMB_DATASETS_VOCABULARY_H_
#define GSMB_DATASETS_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace gsmb {

class Vocabulary {
 public:
  /// `common_pool` ranked common tokens, Zipf exponent `skew`; `seed` fixes
  /// the generated strings.
  Vocabulary(size_t common_pool, double skew, uint64_t seed);

  size_t common_pool_size() const { return common_.size(); }

  /// The common token of a given frequency rank (0 = most frequent).
  const std::string& CommonToken(size_t rank) const { return common_[rank]; }

  /// Draws a common-token rank with Zipf skew.
  size_t SampleCommonRank(Rng* rng) const { return zipf_.Next(rng); }

  /// Draws a rank uniformly from the middle of the frequency range
  /// [lo_fraction, hi_fraction) — used for the "shared by few, but not
  /// unique" tokens that single-block duplicate pairs hinge on.
  size_t SampleMidRank(Rng* rng, double lo_fraction, double hi_fraction) const;

  /// A globally unique distinctive token for `counter` (deterministic).
  std::string DistinctToken(uint64_t counter) const;

 private:
  std::vector<std::string> common_;
  ZipfSampler zipf_;
  uint64_t salt_;
};

}  // namespace gsmb

#endif  // GSMB_DATASETS_VOCABULARY_H_
