// CSV persistence for entity collections and ground truths.
//
// Formats:
//   Entity collection:  id,attribute,value   (one row per attribute;
//                       entities appear in contiguous runs of rows)
//   Ground truth:       left_id,right_id     (external ids)
//
// This is both how the synthetic datasets are exported for inspection and
// how downstream users feed their own data into the library (see
// examples/product_linkage.cc).

#ifndef GSMB_DATASETS_IO_H_
#define GSMB_DATASETS_IO_H_

#include <string>

#include "er/entity_collection.h"
#include "er/ground_truth.h"

namespace gsmb {

/// Writes a collection as id,attribute,value rows with a header.
void SaveCollectionCsv(const EntityCollection& collection,
                       const std::string& path);

/// Reads a collection; rows with the same id (consecutive or not) merge
/// into one profile. Throws std::runtime_error on malformed input.
EntityCollection LoadCollectionCsv(const std::string& path,
                                   const std::string& collection_name = "");

/// Writes ground truth as left_id,right_id rows (external ids).
void SaveGroundTruthCsv(const GroundTruth& gt, const EntityCollection& left,
                        const EntityCollection& right,
                        const std::string& path);

/// Reads ground truth given the two collections (resolves external ids to
/// dense ids; for Dirty ER pass the same collection twice and dirty=true).
GroundTruth LoadGroundTruthCsv(const std::string& path,
                               const EntityCollection& left,
                               const EntityCollection& right,
                               bool dirty = false);

}  // namespace gsmb

#endif  // GSMB_DATASETS_IO_H_
