// Synthetic Clean-Clean ER dataset generator.
//
// Stands in for the paper's 9 real-world benchmarks (see DESIGN.md,
// "Substitutions"). Two duplicate-free collections are produced with a
// known set of cross-source duplicates; noise, near-duplicate families and
// hard single-/zero-block duplicates are injected per the spec so the
// blocking statistics and the pruning-algorithm behaviour match the regime
// of the dataset the spec is calibrated to.

#ifndef GSMB_DATASETS_CLEAN_CLEAN_GENERATOR_H_
#define GSMB_DATASETS_CLEAN_CLEAN_GENERATOR_H_

#include "datasets/specs.h"
#include "er/entity_collection.h"
#include "er/ground_truth.h"

namespace gsmb {

struct GeneratedCleanClean {
  EntityCollection e1;
  EntityCollection e2;
  GroundTruth ground_truth;  // Clean-Clean semantics
};

class CleanCleanGenerator {
 public:
  /// Deterministic for a given spec (spec.seed drives all randomness).
  GeneratedCleanClean Generate(const CleanCleanSpec& spec) const;
};

}  // namespace gsmb

#endif  // GSMB_DATASETS_CLEAN_CLEAN_GENERATOR_H_
