#include "datasets/io.h"

#include <stdexcept>
#include <unordered_map>

#include "util/csv.h"

namespace gsmb {

void SaveCollectionCsv(const EntityCollection& collection,
                       const std::string& path) {
  std::vector<CsvRow> rows;
  rows.push_back({"id", "attribute", "value"});
  for (const EntityProfile& p : collection.profiles()) {
    for (const Attribute& a : p.attributes()) {
      rows.push_back({p.external_id(), a.name, a.value});
    }
    if (p.attributes().empty()) {
      rows.push_back({p.external_id(), "", ""});
    }
  }
  WriteCsvFile(path, rows);
}

EntityCollection LoadCollectionCsv(const std::string& path,
                                   const std::string& collection_name) {
  std::vector<CsvRow> rows = ReadCsvFile(path);
  if (rows.empty()) {
    throw std::runtime_error("LoadCollectionCsv: empty file " + path);
  }
  EntityCollection collection(collection_name);
  std::unordered_map<std::string, EntityId> by_external;
  // Skip the header row.
  for (size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    if (row.size() < 3) {
      throw std::runtime_error("LoadCollectionCsv: row " + std::to_string(r) +
                               " has fewer than 3 fields in " + path);
    }
    const std::string& id = row[0];
    auto it = by_external.find(id);
    EntityId eid;
    if (it == by_external.end()) {
      eid = collection.Add(EntityProfile(id));
      by_external.emplace(id, eid);
    } else {
      eid = it->second;
    }
    if (!row[1].empty() || !row[2].empty()) {
      collection[eid].AddAttribute(row[1], row[2]);
    }
  }
  return collection;
}

void SaveGroundTruthCsv(const GroundTruth& gt, const EntityCollection& left,
                        const EntityCollection& right,
                        const std::string& path) {
  std::vector<CsvRow> rows;
  rows.push_back({"left_id", "right_id"});
  for (const MatchPair& m : gt.pairs()) {
    rows.push_back(
        {left[m.left].external_id(), right[m.right].external_id()});
  }
  WriteCsvFile(path, rows);
}

GroundTruth LoadGroundTruthCsv(const std::string& path,
                               const EntityCollection& left,
                               const EntityCollection& right, bool dirty) {
  std::vector<CsvRow> rows = ReadCsvFile(path);
  if (rows.empty()) {
    throw std::runtime_error("LoadGroundTruthCsv: empty file " + path);
  }
  std::unordered_map<std::string, EntityId> left_ids;
  for (EntityId i = 0; i < left.size(); ++i) {
    left_ids.emplace(left[i].external_id(), i);
  }
  std::unordered_map<std::string, EntityId> right_ids;
  for (EntityId i = 0; i < right.size(); ++i) {
    right_ids.emplace(right[i].external_id(), i);
  }

  GroundTruth gt(dirty);
  for (size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    if (row.size() < 2) {
      throw std::runtime_error("LoadGroundTruthCsv: row " +
                               std::to_string(r) + " has fewer than 2 fields");
    }
    auto lit = left_ids.find(row[0]);
    auto rit = right_ids.find(row[1]);
    if (lit == left_ids.end() || rit == right_ids.end()) {
      throw std::runtime_error("LoadGroundTruthCsv: unknown external id in " +
                               path + " at row " + std::to_string(r));
    }
    gt.AddMatch(lit->second, rit->second);
  }
  return gt;
}

}  // namespace gsmb
