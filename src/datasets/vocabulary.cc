#include "datasets/vocabulary.h"

#include <algorithm>
#include <array>
#include <unordered_set>

namespace gsmb {

namespace {

// Pronounceable-ish token construction: consonant-vowel syllables keep the
// strings readable in examples and debug dumps.
constexpr std::array<const char*, 16> kOnsets = {
    "b", "d", "f", "g", "k", "l", "m", "n",
    "p", "r", "s", "t", "v", "z", "ch", "st"};
constexpr std::array<const char*, 8> kVowels = {"a", "e", "i",  "o",
                                                "u", "ar", "en", "or"};

std::string Syllable(Rng* rng) {
  std::string s = kOnsets[rng->NextUint64(kOnsets.size())];
  s += kVowels[rng->NextUint64(kVowels.size())];
  return s;
}

}  // namespace

Vocabulary::Vocabulary(size_t common_pool, double skew, uint64_t seed)
    : zipf_(std::max<size_t>(1, common_pool), skew), salt_(seed) {
  Rng rng(seed);
  common_.reserve(common_pool);
  std::unordered_set<std::string> seen;
  seen.reserve(common_pool * 2);
  // Generate unique words; collisions are resolved by appending a counter.
  size_t collision_counter = 0;
  while (common_.size() < common_pool) {
    std::string word = Syllable(&rng) + Syllable(&rng);
    if (rng.NextBool(0.5)) word += Syllable(&rng);
    if (!seen.insert(word).second) {
      word += std::to_string(collision_counter++);
      seen.insert(word);
    }
    common_.push_back(std::move(word));
  }
}

size_t Vocabulary::SampleMidRank(Rng* rng, double lo_fraction,
                                 double hi_fraction) const {
  const auto n = static_cast<double>(common_.size());
  auto lo = static_cast<size_t>(lo_fraction * n);
  auto hi = static_cast<size_t>(hi_fraction * n);
  lo = std::min(lo, common_.size() - 1);
  hi = std::clamp(hi, lo + 1, common_.size());
  return lo + static_cast<size_t>(rng->NextUint64(hi - lo));
}

std::string Vocabulary::DistinctToken(uint64_t counter) const {
  // Mix the counter with the vocabulary salt so different datasets never
  // share distinctive tokens; render base-36 for compactness.
  uint64_t z = counter + salt_ * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  std::string out = "x";
  // Append the unique counter first: uniqueness is guaranteed by it alone.
  out += std::to_string(counter);
  out += 'q';
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>('a' + (z % 26));
    z /= 26;
  }
  return out;
}

}  // namespace gsmb
