#include "datasets/clean_clean_generator.h"

#include <algorithm>
#include <stdexcept>

#include "datasets/profile_factory.h"
#include "datasets/vocabulary.h"

namespace gsmb {

GeneratedCleanClean CleanCleanGenerator::Generate(
    const CleanCleanSpec& spec) const {
  if (spec.num_duplicates > spec.e1_size ||
      spec.num_duplicates > spec.e2_size) {
    throw std::invalid_argument(
        "CleanCleanGenerator: more duplicates than entities in a source");
  }

  const size_t total_entities = spec.e1_size + spec.e2_size;
  const size_t vocab_size =
      spec.vocab_common > 0
          ? spec.vocab_common
          : std::max<size_t>(
                50, static_cast<size_t>(spec.vocab_density *
                                        static_cast<double>(total_entities)));
  Vocabulary vocab(vocab_size, spec.zipf_skew, spec.seed);

  const size_t num_objects =
      spec.e1_size + spec.e2_size - spec.num_duplicates;
  const size_t num_families = std::max<size_t>(
      1, static_cast<size_t>(spec.family_fraction *
                             static_cast<double>(num_objects) /
                             static_cast<double>(spec.family_size)));
  ProfileFactory factory(&vocab, num_families, spec.family_tokens, spec.seed);

  Rng rng(spec.seed);
  CopyNoise noise{spec.token_drop_prob, spec.token_corrupt_prob,
                  spec.extra_noise_tokens};

  GeneratedCleanClean out;
  out.e1.set_name(spec.name + "-E1");
  out.e2.set_name(spec.name + "-E2");
  out.e1.Reserve(spec.e1_size);
  out.e2.Reserve(spec.e2_size);

  auto family_for_new_object = [&]() -> size_t {
    if (!rng.NextBool(spec.family_fraction)) return ProfileFactory::kNoFamily;
    return static_cast<size_t>(rng.NextUint64(num_families));
  };

  // ---- Cross-source duplicates. ----
  for (size_t d = 0; d < spec.num_duplicates; ++d) {
    const std::string id = "obj" + std::to_string(d);
    const double u = rng.NextDouble();

    std::vector<std::string> tokens_a;
    std::vector<std::string> tokens_b;
    if (u < spec.zero_block_fraction) {
      // Blocking will miss this duplicate: the copies share no token.
      CanonicalObject obj = factory.MakeObject(
          spec.common_tokens, spec.distinct_tokens,
          ProfileFactory::kNoFamily, &rng);
      tokens_a = factory.MakeCopyTokens(obj, noise, &rng);
      tokens_b = factory.MakeDisjointTokens(
          tokens_a, spec.common_tokens + spec.distinct_tokens, &rng);
    } else if (u < spec.zero_block_fraction + spec.single_block_fraction) {
      // The copies share exactly one mid-frequency token: a weak signal
      // that (Generalized) Supervised Meta-blocking tends to prune.
      CanonicalObject obj = factory.MakeObject(
          spec.common_tokens, spec.distinct_tokens,
          ProfileFactory::kNoFamily, &rng);
      const std::string anchor = factory.SampleAnchorToken(&rng);
      tokens_a = factory.MakeCopyTokens(obj, noise, &rng);
      tokens_a.push_back(anchor);
      tokens_b = factory.MakeSingleOverlapTokens(
          tokens_a, anchor, spec.common_tokens + spec.distinct_tokens, &rng);
    } else {
      CanonicalObject obj =
          factory.MakeObject(spec.common_tokens, spec.distinct_tokens,
                             family_for_new_object(), &rng);
      tokens_a = factory.MakeCopyTokens(obj, noise, &rng);
      tokens_b = factory.MakeCopyTokens(obj, noise, &rng);
    }

    EntityId a = out.e1.Add(
        factory.TokensToProfile("A-" + id, tokens_a, /*schema_style=*/0));
    EntityId b = out.e2.Add(
        factory.TokensToProfile("B-" + id, tokens_b, /*schema_style=*/1));
    out.ground_truth.AddMatch(a, b);
  }

  // ---- Source-exclusive entities. ----
  size_t exclusive_id = spec.num_duplicates;
  auto add_exclusive = [&](EntityCollection& target, const char* prefix,
                           int schema_style) {
    CanonicalObject obj =
        factory.MakeObject(spec.common_tokens, spec.distinct_tokens,
                           family_for_new_object(), &rng);
    std::vector<std::string> tokens = factory.MakeCopyTokens(obj, noise, &rng);
    target.Add(factory.TokensToProfile(
        std::string(prefix) + "obj" + std::to_string(exclusive_id++), tokens,
        schema_style));
  };
  for (size_t i = spec.num_duplicates; i < spec.e1_size; ++i) {
    add_exclusive(out.e1, "A-", 0);
  }
  for (size_t i = spec.num_duplicates; i < spec.e2_size; ++i) {
    add_exclusive(out.e2, "B-", 1);
  }

  return out;
}

}  // namespace gsmb
