#include "datasets/specs.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace gsmb {

namespace {

size_t ScaleCount(size_t count, double scale, size_t minimum) {
  auto scaled = static_cast<size_t>(std::llround(
      static_cast<double>(count) * scale));
  return std::max(minimum, scaled);
}

}  // namespace

CleanCleanSpec CleanCleanSpec::Scaled(double scale) const {
  CleanCleanSpec s = *this;
  s.e1_size = ScaleCount(e1_size, scale, 60);
  s.e2_size = ScaleCount(e2_size, scale, 60);
  s.num_duplicates = ScaleCount(num_duplicates, scale, 40);
  s.num_duplicates = std::min({s.num_duplicates, s.e1_size, s.e2_size});
  if (s.vocab_common > 0) s.vocab_common = ScaleCount(s.vocab_common, scale, 50);
  return s;
}

DirtySpec DirtySpec::Scaled(double scale) const {
  DirtySpec s = *this;
  s.num_entities = ScaleCount(num_entities, scale, 100);
  if (s.vocab_common > 0) s.vocab_common = ScaleCount(s.vocab_common, scale, 50);
  return s;
}

std::vector<CleanCleanSpec> PaperCleanCleanSpecs(double scale) {
  // Sizes follow Table 1. Noise knobs are calibrated so the blocking
  // quality (Table 2) and the common-block distributions (Figs. 15/16)
  // land in the paper's regimes:
  //  * DblpAcm / ScholarDblp / Movies / WalmartAmazon: low noise ->
  //    blocking recall > 0.95, BLAST recall > 0.9;
  //  * AbtBuy / AmazonGP / Imdb* / Tmdb*: noisy -> many duplicates share a
  //    single (mid-frequency) block, dragging supervised recall below 0.9;
  //  * AmazonGP additionally misses ~16% of duplicates at blocking time
  //    (Table 2 recall 0.84).
  std::vector<CleanCleanSpec> specs;

  CleanCleanSpec abt_buy;
  abt_buy.name = "AbtBuy";
  abt_buy.e1_size = 1076;
  abt_buy.e2_size = 1076;
  abt_buy.num_duplicates = 1076;
  abt_buy.common_tokens = 7;
  abt_buy.distinct_tokens = 1;
  abt_buy.token_drop_prob = 0.3;
  abt_buy.token_corrupt_prob = 0.1;
  abt_buy.extra_noise_tokens = 2;
  abt_buy.single_block_fraction = 0.1;
  abt_buy.zero_block_fraction = 0.04;
  abt_buy.vocab_density = 1.6;
  abt_buy.seed = 101;
  specs.push_back(abt_buy);

  CleanCleanSpec dblp_acm;
  dblp_acm.name = "DblpAcm";
  dblp_acm.e1_size = 2616;
  dblp_acm.e2_size = 2294;
  dblp_acm.num_duplicates = 2224;
  dblp_acm.common_tokens = 12;
  dblp_acm.distinct_tokens = 2;
  dblp_acm.token_drop_prob = 0.15;
  dblp_acm.token_corrupt_prob = 0.05;
  dblp_acm.extra_noise_tokens = 1;
  dblp_acm.single_block_fraction = 0.01;
  dblp_acm.zero_block_fraction = 0.0;
  dblp_acm.vocab_density = 2.0;
  dblp_acm.seed = 102;
  specs.push_back(dblp_acm);

  CleanCleanSpec scholar_dblp;
  scholar_dblp.name = "ScholarDblp";
  scholar_dblp.e1_size = 2516;
  scholar_dblp.e2_size = 61353;
  scholar_dblp.num_duplicates = 2308;
  scholar_dblp.common_tokens = 11;
  scholar_dblp.distinct_tokens = 1;
  scholar_dblp.token_drop_prob = 0.18;
  scholar_dblp.token_corrupt_prob = 0.06;
  scholar_dblp.extra_noise_tokens = 1;
  scholar_dblp.single_block_fraction = 0.02;
  scholar_dblp.zero_block_fraction = 0.0;
  scholar_dblp.vocab_density = 2.2;
  scholar_dblp.seed = 103;
  specs.push_back(scholar_dblp);

  CleanCleanSpec amazon_gp;
  amazon_gp.name = "AmazonGP";
  amazon_gp.e1_size = 1354;
  amazon_gp.e2_size = 3039;
  amazon_gp.num_duplicates = 1291;
  amazon_gp.common_tokens = 7;
  amazon_gp.distinct_tokens = 1;
  amazon_gp.token_drop_prob = 0.35;
  amazon_gp.token_corrupt_prob = 0.14;
  amazon_gp.extra_noise_tokens = 3;
  amazon_gp.single_block_fraction = 0.16;
  amazon_gp.zero_block_fraction = 0.16;
  amazon_gp.vocab_density = 1.5;
  amazon_gp.seed = 104;
  specs.push_back(amazon_gp);

  CleanCleanSpec imdb_tmdb;
  imdb_tmdb.name = "ImdbTmdb";
  imdb_tmdb.e1_size = 5118;
  imdb_tmdb.e2_size = 6056;
  imdb_tmdb.num_duplicates = 1968;
  imdb_tmdb.common_tokens = 8;
  imdb_tmdb.distinct_tokens = 1;
  imdb_tmdb.token_drop_prob = 0.28;
  imdb_tmdb.token_corrupt_prob = 0.09;
  imdb_tmdb.extra_noise_tokens = 2;
  imdb_tmdb.single_block_fraction = 0.1;
  imdb_tmdb.zero_block_fraction = 0.01;
  imdb_tmdb.vocab_density = 1.8;
  imdb_tmdb.seed = 105;
  specs.push_back(imdb_tmdb);

  CleanCleanSpec imdb_tvdb;
  imdb_tvdb.name = "ImdbTvdb";
  imdb_tvdb.e1_size = 5118;
  imdb_tvdb.e2_size = 7810;
  imdb_tvdb.num_duplicates = 1072;
  imdb_tvdb.common_tokens = 7;
  imdb_tvdb.distinct_tokens = 1;
  imdb_tvdb.token_drop_prob = 0.3;
  imdb_tvdb.token_corrupt_prob = 0.1;
  imdb_tvdb.extra_noise_tokens = 2;
  imdb_tvdb.single_block_fraction = 0.14;
  imdb_tvdb.zero_block_fraction = 0.015;
  imdb_tvdb.vocab_density = 1.8;
  imdb_tvdb.seed = 106;
  specs.push_back(imdb_tvdb);

  CleanCleanSpec tmdb_tvdb;
  tmdb_tvdb.name = "TmdbTvdb";
  tmdb_tvdb.e1_size = 6056;
  tmdb_tvdb.e2_size = 7810;
  tmdb_tvdb.num_duplicates = 1095;
  tmdb_tvdb.common_tokens = 7;
  tmdb_tvdb.distinct_tokens = 1;
  tmdb_tvdb.token_drop_prob = 0.3;
  tmdb_tvdb.token_corrupt_prob = 0.1;
  tmdb_tvdb.extra_noise_tokens = 2;
  tmdb_tvdb.single_block_fraction = 0.12;
  tmdb_tvdb.zero_block_fraction = 0.011;
  tmdb_tvdb.vocab_density = 1.7;
  tmdb_tvdb.seed = 107;
  specs.push_back(tmdb_tvdb);

  CleanCleanSpec movies;
  movies.name = "Movies";
  movies.e1_size = 27615;
  movies.e2_size = 23182;
  movies.num_duplicates = 22863;
  movies.common_tokens = 9;
  movies.distinct_tokens = 1;
  movies.token_drop_prob = 0.35;
  movies.token_corrupt_prob = 0.10;
  movies.extra_noise_tokens = 1;
  movies.single_block_fraction = 0.02;
  movies.zero_block_fraction = 0.005;
  movies.vocab_density = 0.6;  // dense graph: the largest |C|
  movies.seed = 108;
  specs.push_back(movies);

  CleanCleanSpec walmart_amazon;
  walmart_amazon.name = "WalmartAmazon";
  walmart_amazon.e1_size = 2554;
  walmart_amazon.e2_size = 22074;
  walmart_amazon.num_duplicates = 1154;
  walmart_amazon.common_tokens = 9;
  walmart_amazon.distinct_tokens = 1;
  walmart_amazon.token_drop_prob = 0.34;
  walmart_amazon.token_corrupt_prob = 0.12;
  walmart_amazon.extra_noise_tokens = 1;
  walmart_amazon.single_block_fraction = 0.02;
  walmart_amazon.zero_block_fraction = 0.0;
  walmart_amazon.vocab_density = 0.5;  // dense graph: second-largest |C|
  walmart_amazon.seed = 109;
  specs.push_back(walmart_amazon);

  if (scale != 1.0) {
    for (CleanCleanSpec& s : specs) s = s.Scaled(scale);
  }
  return specs;
}

CleanCleanSpec CleanCleanSpecByName(const std::string& name, double scale) {
  for (CleanCleanSpec& s : PaperCleanCleanSpecs(scale)) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown Clean-Clean dataset spec: " + name);
}

std::vector<DirtySpec> PaperDirtySpecs(double scale) {
  std::vector<DirtySpec> specs;
  const size_t sizes[] = {10'000, 50'000, 100'000, 200'000, 300'000};
  const char* names[] = {"D10K", "D50K", "D100K", "D200K", "D300K"};
  for (size_t i = 0; i < 5; ++i) {
    DirtySpec s;
    s.name = names[i];
    s.num_entities = sizes[i];
    s.seed = 200 + i;
    specs.push_back(scale != 1.0 ? s.Scaled(scale) : s);
  }
  return specs;
}

double ScaleFromEnv(double default_scale) {
  const char* env = std::getenv("GSMB_SCALE");
  if (env == nullptr || *env == '\0') return default_scale;
  char* end = nullptr;
  double value = std::strtod(env, &end);
  if (end == env || value <= 0.0) return default_scale;
  return value;
}

size_t SeedsFromEnv(size_t fallback) {
  const char* env = std::getenv("GSMB_SEEDS");
  if (env == nullptr || *env == '\0') return fallback;
  long value = std::strtol(env, nullptr, 10);
  if (value <= 0) return fallback;
  return static_cast<size_t>(value);
}

}  // namespace gsmb
