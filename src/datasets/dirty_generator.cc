#include "datasets/dirty_generator.h"

#include <algorithm>
#include <string>

#include "datasets/profile_factory.h"
#include "datasets/vocabulary.h"

namespace gsmb {

GeneratedDirty DirtyGenerator::Generate(const DirtySpec& spec) const {
  const size_t vocab_size =
      spec.vocab_common > 0
          ? spec.vocab_common
          : std::max<size_t>(50, static_cast<size_t>(
                                     spec.vocab_density *
                                     static_cast<double>(spec.num_entities)));
  Vocabulary vocab(vocab_size, spec.zipf_skew, spec.seed);

  // Expected profiles per object under the cluster distribution.
  const double mean_cluster = spec.cluster1 + 2.0 * spec.cluster2 +
                              3.0 * spec.cluster3 + 4.0 * spec.cluster4;
  const size_t approx_objects = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(spec.num_entities) /
                             std::max(1.0, mean_cluster)));
  const size_t num_families = std::max<size_t>(
      1, static_cast<size_t>(spec.family_fraction *
                             static_cast<double>(approx_objects) /
                             static_cast<double>(spec.family_size)));
  ProfileFactory factory(&vocab, num_families, spec.family_tokens, spec.seed);

  Rng rng(spec.seed);
  CopyNoise noise{spec.token_drop_prob, spec.token_corrupt_prob,
                  spec.extra_noise_tokens};

  GeneratedDirty out;
  out.entities.set_name(spec.name);
  out.entities.Reserve(spec.num_entities);
  out.ground_truth = GroundTruth(/*dirty=*/true);

  auto sample_cluster_size = [&]() -> size_t {
    double u = rng.NextDouble();
    if (u < spec.cluster1) return 1;
    u -= spec.cluster1;
    if (u < spec.cluster2) return 2;
    u -= spec.cluster2;
    if (u < spec.cluster3) return 3;
    return 4;
  };

  size_t object_counter = 0;
  while (out.entities.size() < spec.num_entities) {
    const size_t remaining = spec.num_entities - out.entities.size();
    const size_t cluster = std::min(sample_cluster_size(), remaining);
    const std::string id = "obj" + std::to_string(object_counter++);

    const size_t family =
        rng.NextBool(spec.family_fraction)
            ? static_cast<size_t>(rng.NextUint64(num_families))
            : ProfileFactory::kNoFamily;
    CanonicalObject obj = factory.MakeObject(spec.common_tokens,
                                             spec.distinct_tokens, family,
                                             &rng);

    std::vector<EntityId> members;
    members.reserve(cluster);

    // Hard cases only make sense for two-copy clusters.
    const double u = rng.NextDouble();
    const bool zero_case = cluster == 2 && u < spec.zero_block_fraction;
    const bool single_case =
        cluster == 2 && !zero_case &&
        u < spec.zero_block_fraction + spec.single_block_fraction;

    if (zero_case || single_case) {
      std::vector<std::string> tokens_a = factory.MakeCopyTokens(obj, noise,
                                                                 &rng);
      std::vector<std::string> tokens_b;
      if (zero_case) {
        tokens_b = factory.MakeDisjointTokens(
            tokens_a, spec.common_tokens + spec.distinct_tokens, &rng);
      } else {
        const std::string anchor = factory.SampleAnchorToken(&rng);
        tokens_a.push_back(anchor);
        tokens_b = factory.MakeSingleOverlapTokens(
            tokens_a, anchor, spec.common_tokens + spec.distinct_tokens,
            &rng);
      }
      members.push_back(out.entities.Add(
          factory.TokensToProfile(id + "-0", tokens_a, 0)));
      members.push_back(out.entities.Add(
          factory.TokensToProfile(id + "-1", tokens_b, 1)));
    } else {
      for (size_t c = 0; c < cluster; ++c) {
        std::vector<std::string> tokens =
            factory.MakeCopyTokens(obj, noise, &rng);
        members.push_back(out.entities.Add(factory.TokensToProfile(
            id + "-" + std::to_string(c), tokens, static_cast<int>(c % 2))));
      }
    }

    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        out.ground_truth.AddMatch(members[a], members[b]);
      }
    }
  }
  return out;
}

}  // namespace gsmb
