#include "datasets/profile_factory.h"

#include <algorithm>
#include <unordered_set>

namespace gsmb {

ProfileFactory::ProfileFactory(const Vocabulary* vocab, size_t num_families,
                               size_t family_tokens, uint64_t seed)
    : vocab_(vocab) {
  // Family tokens come from the distinct stream: rare enough that family
  // members meet only each other in those blocks.
  Rng rng(seed ^ 0xFA311E5ULL);
  (void)rng;  // reserved for future family-shape randomisation
  families_.resize(num_families);
  for (auto& family : families_) {
    family.reserve(family_tokens);
    for (size_t t = 0; t < family_tokens; ++t) {
      family.push_back(NextDistinct());
    }
  }
}

CanonicalObject ProfileFactory::MakeObject(size_t n_common, size_t n_distinct,
                                           size_t family_id, Rng* rng) {
  CanonicalObject obj;
  obj.common_ranks.reserve(n_common);
  for (size_t i = 0; i < n_common; ++i) {
    obj.common_ranks.push_back(vocab_->SampleCommonRank(rng));
  }
  obj.distinct.reserve(n_distinct);
  for (size_t i = 0; i < n_distinct; ++i) {
    obj.distinct.push_back(NextDistinct());
  }
  if (family_id != kNoFamily && family_id < families_.size()) {
    obj.family = families_[family_id];
  }
  return obj;
}

std::vector<std::string> ProfileFactory::MakeCopyTokens(
    const CanonicalObject& object, const CopyNoise& noise, Rng* rng) {
  std::vector<std::string> tokens;
  tokens.reserve(object.common_ranks.size() + object.distinct.size() +
                 object.family.size() + noise.extra_noise_tokens);

  auto emit = [&](const std::string& token) {
    if (rng->NextBool(noise.drop_prob)) return;  // token missing in this copy
    if (rng->NextBool(noise.corrupt_prob)) {
      // Typo/substitution: the copy carries some unrelated common token.
      tokens.push_back(vocab_->CommonToken(vocab_->SampleCommonRank(rng)));
      return;
    }
    tokens.push_back(token);
  };

  for (size_t rank : object.common_ranks) emit(vocab_->CommonToken(rank));
  for (const std::string& t : object.distinct) emit(t);
  for (const std::string& t : object.family) emit(t);
  for (size_t i = 0; i < noise.extra_noise_tokens; ++i) {
    tokens.push_back(NextDistinct());  // junk unique to this copy
  }
  if (tokens.empty()) {
    // Never emit an empty profile: keep the first canonical token.
    if (!object.common_ranks.empty()) {
      tokens.push_back(vocab_->CommonToken(object.common_ranks.front()));
    } else {
      tokens.push_back(NextDistinct());
    }
  }
  return tokens;
}

std::string ProfileFactory::SampleAnchorToken(Rng* rng) const {
  return vocab_->CommonToken(vocab_->SampleMidRank(rng, 0.04, 0.12));
}

std::vector<std::string> ProfileFactory::MakeSingleOverlapTokens(
    const std::vector<std::string>& other_copy, const std::string& anchor,
    size_t n_tokens, Rng* rng) {
  std::unordered_set<std::string> forbidden(other_copy.begin(),
                                            other_copy.end());
  std::vector<std::string> tokens;
  tokens.push_back(anchor);
  while (tokens.size() < std::max<size_t>(n_tokens, 2)) {
    // Filler spans ranks around and above the anchor's, so the anchor block
    // is not systematically the copy's largest one — otherwise Block
    // Filtering would sever the pair's only link at *blocking* time, while
    // the paper loses these pairs at *meta-blocking* time (Section 5.4.2).
    const std::string& candidate =
        vocab_->CommonToken(vocab_->SampleMidRank(rng, 0.02, 1.0));
    if (forbidden.count(candidate)) continue;
    tokens.push_back(candidate);
    forbidden.insert(candidate);
  }
  return tokens;
}

std::vector<std::string> ProfileFactory::MakeDisjointTokens(
    const std::vector<std::string>& other_copy, size_t n_tokens, Rng* rng) {
  std::unordered_set<std::string> forbidden(other_copy.begin(),
                                            other_copy.end());
  std::vector<std::string> tokens;
  while (tokens.size() < std::max<size_t>(n_tokens, 1)) {
    const std::string& candidate =
        vocab_->CommonToken(vocab_->SampleMidRank(rng, 0.02, 1.0));
    if (forbidden.count(candidate)) continue;
    tokens.push_back(candidate);
    forbidden.insert(candidate);
  }
  return tokens;
}

EntityProfile ProfileFactory::TokensToProfile(
    const std::string& external_id, const std::vector<std::string>& tokens,
    int schema_style) const {
  EntityProfile profile(external_id);
  // Two attribute layouts keep the sources schema-heterogeneous; Token
  // Blocking ignores attribute names, so this only affects presentation
  // and any schema-aware consumer built on top.
  auto join = [](auto begin, auto end) {
    std::string s;
    for (auto it = begin; it != end; ++it) {
      if (!s.empty()) s += ' ';
      s += *it;
    }
    return s;
  };
  const size_t n = tokens.size();
  if (schema_style == 0) {
    const size_t split = (n + 1) / 2;
    profile.AddAttribute("name", join(tokens.begin(), tokens.begin() + split));
    profile.AddAttribute("description",
                         join(tokens.begin() + split, tokens.end()));
  } else {
    const size_t a = n / 3;
    const size_t b = (2 * n) / 3;
    profile.AddAttribute("title", join(tokens.begin(), tokens.begin() + a));
    profile.AddAttribute("brand",
                         join(tokens.begin() + a, tokens.begin() + b));
    profile.AddAttribute("info", join(tokens.begin() + b, tokens.end()));
  }
  return profile;
}

}  // namespace gsmb
