// Synthetic Dirty ER dataset generator — the scalability substrate.
//
// Produces one collection containing duplicate clusters (1-4 profile copies
// per real-world object), mirroring the widely used synthetic Dirty ER
// datasets of the paper's Section 5.5 (D10K .. D300K). Ground truth
// contains every intra-cluster pair.

#ifndef GSMB_DATASETS_DIRTY_GENERATOR_H_
#define GSMB_DATASETS_DIRTY_GENERATOR_H_

#include "datasets/specs.h"
#include "er/entity_collection.h"
#include "er/ground_truth.h"

namespace gsmb {

struct GeneratedDirty {
  EntityCollection entities;
  GroundTruth ground_truth;  // Dirty semantics (unordered pairs)
};

class DirtyGenerator {
 public:
  /// Deterministic for a given spec. The generator keeps creating clusters
  /// until `spec.num_entities` profiles exist (the last cluster may be
  /// truncated).
  GeneratedDirty Generate(const DirtySpec& spec) const;
};

}  // namespace gsmb

#endif  // GSMB_DATASETS_DIRTY_GENERATOR_H_
