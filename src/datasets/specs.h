// Dataset specifications.
//
// The paper evaluates on 9 real-world Clean-Clean ER benchmarks (Table 1)
// and 5 synthetic Dirty ER datasets (D10K..D300K). The real datasets are
// not redistributable here, so each is replaced by a synthetic spec
// calibrated to the properties the algorithms are sensitive to: the entity
// and duplicate counts of Table 1, the blocking recall regime of Table 2
// (near-perfect for the clean datasets, ~0.84 for AmazonGP), and — crucial
// for Figures 15/16 — the fraction of duplicates that share exactly one
// block (high for the noisy product/movie datasets where BLAST's recall
// drops below 0.9).
//
// `scale` multiplies entity counts so the full suite runs on a laptop; the
// benches default to GSMB_SCALE=0.125 and print the scale they used.

#ifndef GSMB_DATASETS_SPECS_H_
#define GSMB_DATASETS_SPECS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gsmb {

struct CleanCleanSpec {
  std::string name;
  size_t e1_size = 0;
  size_t e2_size = 0;
  size_t num_duplicates = 0;

  // Token profile of a canonical object.
  size_t common_tokens = 8;    ///< Zipf-pool tokens per object
  size_t distinct_tokens = 2;  ///< near-unique tokens shared by true copies

  // Per-copy noise.
  double token_drop_prob = 0.05;     ///< canonical token missing from a copy
  double token_corrupt_prob = 0.03;  ///< token replaced by a random one
  size_t extra_noise_tokens = 1;     ///< unique junk tokens per copy

  // Hard cases.
  double single_block_fraction = 0.02;  ///< duplicates sharing exactly 1 token
  double zero_block_fraction = 0.0;     ///< duplicates sharing no token at all

  // Near-duplicate families: groups of *different* objects sharing a few
  // rare tokens (product lines, film franchises). They co-occur in small
  // blocks and are the hard negatives that keep meta-blocking precision
  // realistic (well below 1). Small families are the hardest: a family of
  // two objects shares blocks almost as small as a true match's.
  double family_fraction = 0.75;  ///< objects belonging to some family
  size_t family_tokens = 3;       ///< rare tokens shared within a family
  size_t family_size = 2;         ///< average objects per family

  // Vocabulary shape.
  size_t vocab_common = 0;  ///< 0 = derived from entity count
  double zipf_skew = 1.0;
  /// Vocabulary size as a multiple of |E1|+|E2| when vocab_common == 0;
  /// smaller values give denser candidate graphs (bigger |C|).
  double vocab_density = 2.0;

  uint64_t seed = 42;

  /// Returns a copy with entity/duplicate counts multiplied by `scale`
  /// (minimum sizes keep tiny scales usable).
  CleanCleanSpec Scaled(double scale) const;
};

struct DirtySpec {
  std::string name;
  size_t num_entities = 0;

  // Cluster-size distribution: fraction of *objects* with 1, 2, 3 and 4
  // profile copies (must sum to 1). Objects with one copy contribute no
  // duplicate pair.
  double cluster1 = 0.30;
  double cluster2 = 0.40;
  double cluster3 = 0.20;
  double cluster4 = 0.10;

  size_t common_tokens = 8;
  size_t distinct_tokens = 2;
  double token_drop_prob = 0.10;
  double token_corrupt_prob = 0.05;
  size_t extra_noise_tokens = 1;
  double single_block_fraction = 0.05;
  double zero_block_fraction = 0.01;
  double family_fraction = 0.75;
  size_t family_tokens = 3;
  size_t family_size = 2;
  size_t vocab_common = 0;
  double zipf_skew = 1.0;
  double vocab_density = 1.5;
  uint64_t seed = 7;

  DirtySpec Scaled(double scale) const;
};

/// The 9 Clean-Clean specs standing in for Table 1, in the paper's order
/// (decreasing |C| at full scale).
std::vector<CleanCleanSpec> PaperCleanCleanSpecs(double scale = 1.0);

/// A spec by dataset name (e.g. "AbtBuy"); throws on unknown names.
CleanCleanSpec CleanCleanSpecByName(const std::string& name,
                                    double scale = 1.0);

/// The 5 Dirty ER scalability specs D10K..D300K.
std::vector<DirtySpec> PaperDirtySpecs(double scale = 1.0);

/// Reads the scale multiplier from the GSMB_SCALE environment variable,
/// falling back to `default_scale`. Benches use 0.125 by default.
double ScaleFromEnv(double default_scale = 0.125);

/// Reads the repetition count from GSMB_SEEDS (default `fallback`).
size_t SeedsFromEnv(size_t fallback = 3);

}  // namespace gsmb

#endif  // GSMB_DATASETS_SPECS_H_
