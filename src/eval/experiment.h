// Experiment orchestration: the paper's repetition protocol.
//
// For one (dataset, configuration) cell, features are extracted once (their
// cost is timed and charged to every repetition, matching the paper's RT
// definition), then the pipeline is repeated with seeds 0..N-1, each seed
// drawing a fresh balanced training sample. Results are averaged.

#ifndef GSMB_EVAL_EXPERIMENT_H_
#define GSMB_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "eval/metrics.h"

namespace gsmb {

struct ExperimentResult {
  AggregateMetrics aggregate;
  double feature_seconds = 0.0;  ///< one-off feature extraction cost
  /// The per-seed raw results (probabilities/retained only if requested).
  std::vector<MetaBlockingResult> runs;
};

/// Runs `num_seeds` repetitions of `config` (config.seed is overridden with
/// 0..num_seeds-1). The feature matrix is computed once and reused.
ExperimentResult RunRepeatedExperiment(const PreparedDataset& dataset,
                                       MetaBlockingConfig config,
                                       size_t num_seeds);

/// Runs the same configuration over several datasets and returns the
/// per-dataset aggregates (same order as `datasets`).
std::vector<AggregateMetrics> RunAcrossDatasets(
    const std::vector<PreparedDataset>& datasets,
    const MetaBlockingConfig& config, size_t num_seeds);

}  // namespace gsmb

#endif  // GSMB_EVAL_EXPERIMENT_H_
