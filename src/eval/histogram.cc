#include "eval/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gsmb {

ClassHistogram ComputeClassHistogram(const std::vector<double>& values,
                                     const std::vector<uint8_t>& is_positive,
                                     size_t bins, double lo, double hi) {
  ClassHistogram h;
  h.lo = lo;
  h.hi = hi;
  h.positive.assign(bins, 0.0);
  h.negative.assign(bins, 0.0);
  if (bins == 0 || hi <= lo) return h;

  const double width = (hi - lo) / static_cast<double>(bins);
  for (size_t i = 0; i < values.size(); ++i) {
    auto bin = static_cast<long>(std::floor((values[i] - lo) / width));
    bin = std::clamp<long>(bin, 0, static_cast<long>(bins) - 1);
    if (is_positive[i]) {
      h.positive[static_cast<size_t>(bin)] += 1.0;
      ++h.positive_total;
    } else {
      h.negative[static_cast<size_t>(bin)] += 1.0;
      ++h.negative_total;
    }
  }
  if (h.positive_total > 0) {
    for (double& v : h.positive) v /= static_cast<double>(h.positive_total);
  }
  if (h.negative_total > 0) {
    for (double& v : h.negative) v /= static_cast<double>(h.negative_total);
  }
  return h;
}

std::string RenderClassHistogram(const ClassHistogram& histogram,
                                 size_t max_bar_width) {
  std::string out;
  const size_t bins = histogram.positive.size();
  double peak = 1e-12;
  for (size_t b = 0; b < bins; ++b) {
    peak = std::max({peak, histogram.positive[b], histogram.negative[b]});
  }
  const double width = (histogram.hi - histogram.lo) / static_cast<double>(bins);
  char buf[64];
  for (size_t b = 0; b < bins; ++b) {
    const double bin_lo = histogram.lo + width * static_cast<double>(b);
    std::snprintf(buf, sizeof(buf), "[%4.2f,%4.2f) ", bin_lo, bin_lo + width);
    out += buf;
    const auto pos_bar = static_cast<size_t>(
        std::lround(histogram.positive[b] / peak *
                    static_cast<double>(max_bar_width)));
    const auto neg_bar = static_cast<size_t>(
        std::lround(histogram.negative[b] / peak *
                    static_cast<double>(max_bar_width)));
    out += "dup ";
    out.append(pos_bar, '#');
    out.append(max_bar_width - pos_bar, ' ');
    out += " | non ";
    out.append(neg_bar, '.');
    out += '\n';
  }
  return out;
}

std::string RenderCountHistogram(const std::vector<size_t>& counts,
                                 size_t total, size_t max_bar_width,
                                 size_t max_rows) {
  std::string out;
  if (total == 0) return out;
  size_t rows = std::min(counts.size(), max_rows);
  double peak = 1e-12;
  for (size_t i = 0; i < counts.size(); ++i) {
    peak = std::max(peak,
                    static_cast<double>(counts[i]) / static_cast<double>(total));
  }
  char buf[64];
  for (size_t i = 0; i < rows; ++i) {
    const double fraction =
        static_cast<double>(counts[i]) / static_cast<double>(total);
    std::snprintf(buf, sizeof(buf), "%3zu: %6.2f%% ", i, fraction * 100.0);
    out += buf;
    const auto bar = static_cast<size_t>(std::lround(
        fraction / peak * static_cast<double>(max_bar_width)));
    out.append(bar, '#');
    out += '\n';
  }
  if (counts.size() > rows) {
    size_t tail = 0;
    for (size_t i = rows; i < counts.size(); ++i) tail += counts[i];
    std::snprintf(buf, sizeof(buf), ">%2zu: %6.2f%%\n", rows - 1,
                  100.0 * static_cast<double>(tail) /
                      static_cast<double>(total));
    out += buf;
  }
  return out;
}

}  // namespace gsmb
