#include "eval/experiment.h"

#include "util/stopwatch.h"

namespace gsmb {

ExperimentResult RunRepeatedExperiment(const PreparedDataset& dataset,
                                       MetaBlockingConfig config,
                                       size_t num_seeds) {
  ExperimentResult out;

  Stopwatch watch;
  FeatureExtractor extractor(*dataset.index, dataset.pairs);
  Matrix features = extractor.Compute(config.features);
  out.feature_seconds = watch.ElapsedSeconds();

  MetricsAccumulator acc;
  out.runs.reserve(num_seeds);
  for (size_t seed = 0; seed < num_seeds; ++seed) {
    config.seed = seed;
    MetaBlockingResult result = RunMetaBlockingWithFeatures(
        dataset, config, features, out.feature_seconds);
    acc.Add(result);
    out.runs.push_back(std::move(result));
  }
  out.aggregate = acc.Summary();
  return out;
}

std::vector<AggregateMetrics> RunAcrossDatasets(
    const std::vector<PreparedDataset>& datasets,
    const MetaBlockingConfig& config, size_t num_seeds) {
  std::vector<AggregateMetrics> out;
  out.reserve(datasets.size());
  for (const PreparedDataset& dataset : datasets) {
    out.push_back(
        RunRepeatedExperiment(dataset, config, num_seeds).aggregate);
  }
  return out;
}

}  // namespace gsmb
