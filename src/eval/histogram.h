// Histograms for the probability-distribution figures.
//
// Figure 12 plots the density of classifier probabilities separately for
// duplicate and non-duplicate candidate pairs; Figures 15/16 plot the
// common-block distribution (provided by blocking/block_stats.h). The
// helpers here bin the probabilities and render compact ASCII charts so the
// bench binaries can show the same shapes in a terminal.

#ifndef GSMB_EVAL_HISTOGRAM_H_
#define GSMB_EVAL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gsmb {

struct ClassHistogram {
  double lo = 0.0;
  double hi = 1.0;
  /// Per-bin *fraction of its class* (each class normalises to 1).
  std::vector<double> positive;
  std::vector<double> negative;
  size_t positive_total = 0;
  size_t negative_total = 0;
};

/// Bins `values` in [lo, hi] into `bins` equal-width buckets, split by
/// class. Values outside the range are clamped into the edge bins.
ClassHistogram ComputeClassHistogram(const std::vector<double>& values,
                                     const std::vector<uint8_t>& is_positive,
                                     size_t bins, double lo, double hi);

/// Renders two aligned bar columns (positive = '#', negative = '.') with
/// one row per bin — a terminal rendition of Figure 12.
std::string RenderClassHistogram(const ClassHistogram& histogram,
                                 size_t max_bar_width = 40);

/// Renders a plain count histogram (e.g. the common-block distributions of
/// Figures 15/16), with counts normalised to percentages of `total`.
std::string RenderCountHistogram(const std::vector<size_t>& counts,
                                 size_t total, size_t max_bar_width = 40,
                                 size_t max_rows = 25);

}  // namespace gsmb

#endif  // GSMB_EVAL_HISTOGRAM_H_
