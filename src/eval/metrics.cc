#include "eval/metrics.h"

#include <cmath>

namespace gsmb {

namespace {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v, double mean) {
  if (v.size() < 2) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

}  // namespace

void MetricsAccumulator::Add(const MetaBlockingResult& result) {
  Add(result.metrics, result.total_seconds);
}

void MetricsAccumulator::Add(const EffectivenessMetrics& metrics,
                             double total_seconds) {
  recalls_.push_back(metrics.recall);
  precisions_.push_back(metrics.precision);
  f1s_.push_back(metrics.f1);
  rts_.push_back(total_seconds);
  retained_.push_back(static_cast<double>(metrics.retained));
}

AggregateMetrics MetricsAccumulator::Summary() const {
  AggregateMetrics agg;
  agg.runs = recalls_.size();
  agg.recall = Mean(recalls_);
  agg.precision = Mean(precisions_);
  agg.f1 = Mean(f1s_);
  agg.rt_seconds = Mean(rts_);
  agg.retained = Mean(retained_);
  agg.recall_std = StdDev(recalls_, agg.recall);
  agg.precision_std = StdDev(precisions_, agg.precision);
  agg.f1_std = StdDev(f1s_, agg.f1);
  return agg;
}

AggregateMetrics MacroAverage(
    const std::vector<AggregateMetrics>& per_dataset) {
  AggregateMetrics out;
  if (per_dataset.empty()) return out;
  for (const AggregateMetrics& m : per_dataset) {
    out.recall += m.recall;
    out.precision += m.precision;
    out.f1 += m.f1;
    out.rt_seconds += m.rt_seconds;
    out.retained += m.retained;
    out.runs += m.runs;
  }
  const auto n = static_cast<double>(per_dataset.size());
  out.recall /= n;
  out.precision /= n;
  out.f1 /= n;
  out.rt_seconds /= n;
  out.retained /= n;
  return out;
}

}  // namespace gsmb
