// Aggregation of effectiveness/efficiency measures across repetitions.
//
// The paper averages recall, precision and F1 over 10 runs with different
// training-sample seeds, and reports the mean run-time. MetricsAccumulator
// implements exactly that protocol; MacroAverage combines per-dataset
// aggregates into the cross-dataset averages shown in Figures 5-8.

#ifndef GSMB_EVAL_METRICS_H_
#define GSMB_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "core/pipeline.h"

namespace gsmb {

struct AggregateMetrics {
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
  double recall_std = 0.0;
  double precision_std = 0.0;
  double f1_std = 0.0;
  double rt_seconds = 0.0;  ///< mean total run-time
  double retained = 0.0;    ///< mean retained pairs
  size_t runs = 0;
};

class MetricsAccumulator {
 public:
  void Add(const MetaBlockingResult& result);
  /// Same protocol from an (already evaluated) metrics triple + run time —
  /// what a JobResult of the Engine/sweep API carries.
  void Add(const EffectivenessMetrics& metrics, double total_seconds);

  /// Mean and (population) standard deviation over the added runs.
  AggregateMetrics Summary() const;

  size_t size() const { return recalls_.size(); }

 private:
  std::vector<double> recalls_;
  std::vector<double> precisions_;
  std::vector<double> f1s_;
  std::vector<double> rts_;
  std::vector<double> retained_;
};

/// Unweighted mean of per-dataset aggregates (the paper's "average across
/// all 9 block collections").
AggregateMetrics MacroAverage(const std::vector<AggregateMetrics>& per_dataset);

}  // namespace gsmb

#endif  // GSMB_EVAL_METRICS_H_
