// Reference Matching stage: turns the candidate pairs retained by
// (Generalized Supervised) Meta-blocking into final match decisions, and
// for Dirty ER groups them into entity clusters.
//
// Deliberately simple — a similarity threshold over schema-agnostic tokens,
// plus connected-components clustering — because the paper's contribution
// ends at the candidate set; this stage exists so end-to-end ER can be
// exercised and evaluated (see examples/end_to_end_er.cpp).

#ifndef GSMB_MATCHING_MATCHER_H_
#define GSMB_MATCHING_MATCHER_H_

#include <cstdint>
#include <vector>

#include "blocking/candidate_pairs.h"
#include "er/entity_collection.h"
#include "er/ground_truth.h"
#include "matching/similarity.h"

namespace gsmb {

struct MatchDecision {
  CandidatePair pair;
  double similarity;
};

class ThresholdMatcher {
 public:
  explicit ThresholdMatcher(double threshold = 0.5,
                            SimilarityKind kind = SimilarityKind::kJaccard)
      : threshold_(threshold), kind_(kind) {}

  /// Clean-Clean ER: compares each retained candidate across e1 x e2.
  /// `retained` holds indices into `pairs`.
  std::vector<MatchDecision> Match(const EntityCollection& e1,
                                   const EntityCollection& e2,
                                   const std::vector<CandidatePair>& pairs,
                                   const std::vector<uint32_t>& retained) const;

  /// Dirty ER: both pair sides index the same collection.
  std::vector<MatchDecision> Match(const EntityCollection& entities,
                                   const std::vector<CandidatePair>& pairs,
                                   const std::vector<uint32_t>& retained) const;

  double threshold() const { return threshold_; }

 private:
  std::vector<MatchDecision> MatchImpl(
      const EntityCollection& left_source,
      const EntityCollection& right_source,
      const std::vector<CandidatePair>& pairs,
      const std::vector<uint32_t>& retained) const;

  double threshold_;
  SimilarityKind kind_;
};

/// End-to-end ER quality of the matcher's decisions against |D| known
/// matches: recall counts blocking/pruning/matching misses alike.
struct MatchingQuality {
  size_t decided_matches = 0;
  size_t correct_matches = 0;
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
};

MatchingQuality EvaluateMatching(const std::vector<MatchDecision>& decisions,
                                 const GroundTruth& gt);

/// Dirty ER entity clustering: connected components over the decided
/// matches. Returns one sorted member list per cluster with >= 2 members,
/// ordered by smallest member id.
std::vector<std::vector<EntityId>> ClusterMatches(
    size_t num_entities, const std::vector<MatchDecision>& decisions);

}  // namespace gsmb

#endif  // GSMB_MATCHING_MATCHER_H_
