// Profile similarity functions for the Matching stage.
//
// Meta-blocking produces a candidate set, not resolved entities: "this
// block collection is then processed by a Matching algorithm, whose goal is
// to raise F1 close to 1" (paper Section 5.2). These similarity functions
// power the reference matcher in matching/matcher.h.

#ifndef GSMB_MATCHING_SIMILARITY_H_
#define GSMB_MATCHING_SIMILARITY_H_

#include <string>
#include <vector>

#include "er/entity_profile.h"

namespace gsmb {

enum class SimilarityKind {
  kJaccard,  ///< |A ∩ B| / |A ∪ B| over distinct value tokens
  kDice,     ///< 2|A ∩ B| / (|A| + |B|)
  kOverlap,  ///< |A ∩ B| / min(|A|, |B|)
};

const char* SimilarityKindName(SimilarityKind kind);

/// Similarity of two *sorted, deduplicated* token vectors in [0, 1].
double TokenSimilarity(const std::vector<std::string>& a,
                       const std::vector<std::string>& b,
                       SimilarityKind kind);

/// Convenience overload tokenising both profiles (schema-agnostic).
double ProfileSimilarity(const EntityProfile& a, const EntityProfile& b,
                         SimilarityKind kind = SimilarityKind::kJaccard);

}  // namespace gsmb

#endif  // GSMB_MATCHING_SIMILARITY_H_
