#include "matching/similarity.h"

#include <algorithm>

namespace gsmb {

const char* SimilarityKindName(SimilarityKind kind) {
  switch (kind) {
    case SimilarityKind::kJaccard:
      return "Jaccard";
    case SimilarityKind::kDice:
      return "Dice";
    case SimilarityKind::kOverlap:
      return "Overlap";
  }
  return "unknown";
}

double TokenSimilarity(const std::vector<std::string>& a,
                       const std::vector<std::string>& b,
                       SimilarityKind kind) {
  if (a.empty() || b.empty()) return 0.0;
  size_t common = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double c = static_cast<double>(common);
  switch (kind) {
    case SimilarityKind::kJaccard:
      return c / (na + nb - c);
    case SimilarityKind::kDice:
      return 2.0 * c / (na + nb);
    case SimilarityKind::kOverlap:
      return c / std::min(na, nb);
  }
  return 0.0;
}

double ProfileSimilarity(const EntityProfile& a, const EntityProfile& b,
                         SimilarityKind kind) {
  return TokenSimilarity(a.DistinctValueTokens(), b.DistinctValueTokens(),
                         kind);
}

}  // namespace gsmb
