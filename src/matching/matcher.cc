#include "matching/matcher.h"

#include <algorithm>
#include <numeric>

namespace gsmb {

std::vector<MatchDecision> ThresholdMatcher::MatchImpl(
    const EntityCollection& left_source, const EntityCollection& right_source,
    const std::vector<CandidatePair>& pairs,
    const std::vector<uint32_t>& retained) const {
  std::vector<MatchDecision> decisions;
  for (uint32_t idx : retained) {
    const CandidatePair& p = pairs[idx];
    const double sim =
        ProfileSimilarity(left_source[p.left], right_source[p.right], kind_);
    if (sim >= threshold_) {
      decisions.push_back({p, sim});
    }
  }
  return decisions;
}

std::vector<MatchDecision> ThresholdMatcher::Match(
    const EntityCollection& e1, const EntityCollection& e2,
    const std::vector<CandidatePair>& pairs,
    const std::vector<uint32_t>& retained) const {
  return MatchImpl(e1, e2, pairs, retained);
}

std::vector<MatchDecision> ThresholdMatcher::Match(
    const EntityCollection& entities, const std::vector<CandidatePair>& pairs,
    const std::vector<uint32_t>& retained) const {
  return MatchImpl(entities, entities, pairs, retained);
}

MatchingQuality EvaluateMatching(const std::vector<MatchDecision>& decisions,
                                 const GroundTruth& gt) {
  MatchingQuality q;
  q.decided_matches = decisions.size();
  for (const MatchDecision& d : decisions) {
    if (gt.IsMatch(d.pair.left, d.pair.right)) ++q.correct_matches;
  }
  if (!gt.empty()) {
    q.recall = static_cast<double>(q.correct_matches) /
               static_cast<double>(gt.size());
  }
  if (q.decided_matches > 0) {
    q.precision = static_cast<double>(q.correct_matches) /
                  static_cast<double>(q.decided_matches);
  }
  if (q.recall + q.precision > 0.0) {
    q.f1 = 2.0 * q.recall * q.precision / (q.recall + q.precision);
  }
  return q;
}

namespace {

// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[b] = a;  // smaller id becomes the root -> deterministic output
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<std::vector<EntityId>> ClusterMatches(
    size_t num_entities, const std::vector<MatchDecision>& decisions) {
  UnionFind uf(num_entities);
  for (const MatchDecision& d : decisions) {
    uf.Union(d.pair.left, d.pair.right);
  }
  std::vector<std::vector<EntityId>> by_root(num_entities);
  for (size_t e = 0; e < num_entities; ++e) {
    by_root[uf.Find(e)].push_back(static_cast<EntityId>(e));
  }
  std::vector<std::vector<EntityId>> clusters;
  for (auto& members : by_root) {
    if (members.size() >= 2) clusters.push_back(std::move(members));
  }
  return clusters;
}

}  // namespace gsmb
