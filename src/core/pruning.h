// Supervised pruning algorithms (paper Section 3).
//
// Every algorithm receives the candidate pairs and the matching probability
// the trained classifier assigned to each pair, and returns the indices of
// the retained pairs. Candidates with probability below the validity
// threshold (0.5 in the paper) are always discarded; the algorithms differ
// in how they prune the remaining *valid* pairs:
//
//   weight-based  — keep pairs above a probability threshold:
//     BCl   keep every valid pair (the binary-classifier baseline of [21])
//     WEP   global average of valid probabilities
//     WNP   per-node average; keep if above EITHER endpoint's average
//     RWNP  per-node average; keep if above BOTH endpoints' averages
//     BLAST keep if p >= r * (max_i + max_j), r = 0.35
//
//   cardinality-based — keep a bounded number of top-weighted pairs:
//     CEP   global top-K,  K = Σ|b| / 2
//     CNP   per-node top-k queues, keep if in EITHER endpoint's queue,
//           k = max(1, Σ|b| / #entities)
//     RCNP  keep if in BOTH endpoints' queues.
//
// The same implementations double as *unsupervised* meta-blocking when fed
// scheme weights instead of probabilities with validity_threshold <= 0 (see
// core/unsupervised.h).

#ifndef GSMB_CORE_PRUNING_H_
#define GSMB_CORE_PRUNING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blocking/block_stats.h"
#include "blocking/candidate_pairs.h"
#include "blocking/entity_index.h"
#include "gsmb/execution.h"

namespace gsmb {

enum class PruningKind {
  kBCl,    // baseline binary classifier (approximates WEP) [21]
  kWep,    // Weighted Edge Pruning
  kWnp,    // Weighted Node Pruning
  kRwnp,   // Reciprocal Weighted Node Pruning
  kBlast,  // BLAST (max-based node pruning)
  kCep,    // Cardinality Edge Pruning
  kCnp,    // Cardinality Node Pruning
  kRcnp,   // Reciprocal Cardinality Node Pruning
};

const char* PruningKindName(PruningKind kind);

/// True for WEP/WNP/... which promote recall; false for CEP/CNP/RCNP which
/// promote precision (paper Section 3).
bool IsWeightBased(PruningKind kind);

/// Everything a pruning algorithm needs to know about the graph besides the
/// per-pair probabilities.
struct PruningContext {
  /// Total node count: |E1| + |E2| (Clean-Clean) or |E| (Dirty).
  size_t num_nodes = 0;
  /// Offset added to CandidatePair::right to obtain its node id (|E1| for
  /// Clean-Clean, 0 for Dirty ER).
  size_t right_offset = 0;
  /// Pairs with probability below this are never retained (0.5 in the
  /// paper; set <= 0 to disable for unsupervised use).
  double validity_threshold = 0.5;
  /// CEP budget K = Σ|b| / 2.
  double cep_k = 0.0;
  /// CNP per-node budget k = max(1, Σ|b| / #entities).
  double cnp_k = 1.0;
  /// BLAST pruning ratio r.
  double blast_ratio = 0.35;
  /// Shared execution knobs (worker threads for the pruning sweeps). Every
  /// algorithm is parallelised over fixed-grain chunks with deterministic
  /// merges, so the retained set is bit-identical for any value.
  ExecutionOptions execution;

  /// Builds the context from a processed block collection's statistics.
  static PruningContext FromIndex(const EntityIndex& index,
                                  const BlockCollectionStats& stats);
};

class PruningAlgorithm {
 public:
  virtual ~PruningAlgorithm() = default;

  /// Returns the indices (ascending) of retained pairs. `probabilities[i]`
  /// is the classifier weight of `pairs[i]`.
  virtual std::vector<uint32_t> Prune(
      const std::vector<CandidatePair>& pairs,
      const std::vector<double>& probabilities,
      const PruningContext& context) const = 0;

  virtual PruningKind kind() const = 0;
  std::string Name() const { return PruningKindName(kind()); }
};

std::unique_ptr<PruningAlgorithm> MakePruningAlgorithm(PruningKind kind);

/// All kinds, in the order the paper discusses them.
std::vector<PruningKind> AllPruningKinds();

/// Node id of each endpoint of a pair under `context`'s id mapping.
inline size_t LeftNode(const CandidatePair& p) { return p.left; }
inline size_t RightNode(const CandidatePair& p,
                        const PruningContext& context) {
  return context.right_offset + p.right;
}

}  // namespace gsmb

#endif  // GSMB_CORE_PRUNING_H_
