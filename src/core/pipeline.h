// End-to-end (Generalized) Supervised Meta-blocking pipeline.
//
// Prepare*() performs the fixed, per-dataset preprocessing of the paper's
// Section 5.1: Token Blocking -> Block Purging -> Block Filtering (0.8) ->
// candidate-pair generation, and records the blocking-quality numbers of
// Table 2. RunMetaBlocking() then executes one experiment configuration:
// extract features, sample a balanced training set, train the probabilistic
// classifier, weight all candidate pairs, prune, and evaluate — reporting
// the paper's measures (recall, precision, F1) and the run-time breakdown
// that makes up RT.

#ifndef GSMB_CORE_PIPELINE_H_
#define GSMB_CORE_PIPELINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blocking/block_collection.h"
#include "blocking/block_stats.h"
#include "blocking/candidate_pairs.h"
#include "blocking/entity_index.h"
#include "core/feature_set.h"
#include "core/features.h"
#include "core/pruning.h"
#include "er/entity_collection.h"
#include "er/ground_truth.h"
#include "gsmb/execution.h"
#include "gsmb/telemetry.h"
#include "ml/classifier.h"
#include "util/matrix.h"

namespace gsmb {

/// Preprocessing knobs (paper defaults).
struct BlockingOptions {
  /// Minimum token length used as a Token Blocking key (the serving layer
  /// shares this knob, so every backend tokenizes identically).
  size_t min_token_length = 1;
  /// Block Purging: drop blocks with more than this fraction of all
  /// profiles (parameter-free setting: one half).
  double purge_size_fraction = 0.5;
  /// Block Filtering: fraction of its smallest blocks each entity keeps.
  double filter_ratio = 0.8;
  /// Shared execution knobs (worker threads for blocking and candidate-pair
  /// generation). Results are bit-identical to the serial path for any
  /// thread count.
  ExecutionOptions execution;
};

/// A dataset after blocking: everything the experiments reuse across
/// configurations. Movable, not copyable (owns the entity index).
struct PreparedDataset {
  std::string name;
  bool clean_clean = true;
  GroundTruth ground_truth;
  BlockCollection blocks;  // after purging + filtering
  std::unique_ptr<EntityIndex> index;
  std::vector<CandidatePair> pairs;
  std::vector<uint8_t> is_positive;  // per candidate pair
  BlockCollectionStats stats;
  BlockingQuality blocking_quality;  // Table 2 row

  size_t num_candidates() const { return pairs.size(); }
};

/// The fixed preprocessing of every preparation path: Block Purging then
/// Block Filtering with the options' parameters. Shared with the streaming
/// preparation (stream/streaming_dataset.cc) so the two paths' implied
/// candidate sets cannot drift apart.
BlockCollection PreprocessBlocks(BlockCollection raw,
                                 const BlockingOptions& options);

/// Clean-Clean ER preparation (Token Blocking over two clean collections).
PreparedDataset PrepareCleanClean(const std::string& name,
                                  const EntityCollection& e1,
                                  const EntityCollection& e2,
                                  GroundTruth ground_truth,
                                  const BlockingOptions& options = {});

/// Dirty ER preparation (Token Blocking over one collection).
PreparedDataset PrepareDirty(const std::string& name,
                             const EntityCollection& e,
                             GroundTruth ground_truth,
                             const BlockingOptions& options = {});

/// As above, but starting from an existing block collection (any
/// redundancy-positive blocking method; purging/filtering already applied
/// or intentionally skipped by the caller).
PreparedDataset PrepareFromBlocks(const std::string& name,
                                  BlockCollection blocks,
                                  GroundTruth ground_truth,
                                  size_t num_threads = 1);

/// One experiment configuration.
struct MetaBlockingConfig {
  FeatureSet features = FeatureSet::Paper2014();
  ClassifierKind classifier = ClassifierKind::kLogisticRegression;
  PruningKind pruning = PruningKind::kBlast;
  /// Balanced training set: this many labelled pairs per class.
  size_t train_per_class = 250;
  /// Seed for the training-pair sample (one paper repetition = one seed).
  uint64_t seed = 0;
  double blast_ratio = 0.35;
  /// Validity floor: pairs with classifier probability below this are never
  /// retained (the paper's 0.5; <= 0 disables it, as the unsupervised
  /// weighting path does).
  double validity_threshold = 0.5;
  /// Keep per-pair probabilities in the result (Figure 12 needs them).
  bool keep_probabilities = false;
  /// Keep retained pair indices in the result.
  bool keep_retained = false;
  /// Shared execution knobs (worker threads for feature extraction, batch
  /// classification and pruning). Every parallel path is bit-identical to
  /// the serial one, so this only changes wall-clock time, never results.
  ExecutionOptions execution;
};

struct EffectivenessMetrics {
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
  size_t true_positives = 0;
  size_t retained = 0;
};

/// Recall/precision/F1 of a retained subset against |D| ground-truth
/// matches (recall is measured against the full ground truth, so blocking
/// misses count against it, exactly as in the paper).
EffectivenessMetrics EvaluateRetained(
    const std::vector<uint32_t>& retained_indices,
    const std::vector<uint8_t>& is_positive, size_t num_ground_truth);

/// Same measures from pre-counted tallies — for callers (the streaming
/// executor) that evaluate retained pairs on the fly instead of holding an
/// is_positive vector over the whole candidate set.
EffectivenessMetrics MetricsFromCounts(size_t true_positives, size_t retained,
                                       size_t num_ground_truth);

struct MetaBlockingResult {
  EffectivenessMetrics metrics;
  /// Phase-time breakdown from the telemetry clock (obs::ScopedPhase).
  /// The legacy `*_seconds` fields below are views of this — one clock
  /// source, no duplicated Stopwatches.
  obs::PhaseTimings phases;
  /// RT components, seconds. `total_seconds` = features + train + classify
  /// + prune (the paper's RT definition for Generalized SM).
  double feature_seconds = 0.0;
  double train_seconds = 0.0;
  double classify_seconds = 0.0;
  double prune_seconds = 0.0;
  double total_seconds = 0.0;
  size_t training_size = 0;
  /// Classifier coefficients in raw feature space, intercept last
  /// (Table 6 reports these for the scalability models).
  std::vector<double> model_coefficients;
  /// Populated only when the config asks for them.
  std::vector<double> probabilities;
  std::vector<uint32_t> retained_indices;
};

/// The prepare/execute split: everything the execute phase actually READS
/// of a preparation, as a non-owning view. Callers that share one
/// preparation across many configurations (Engine::Prepare handles, sweep
/// harnesses) execute through this without owning a PreparedDataset —
/// the blocks/index can live in a cached, immutable handle while the pairs
/// and labels come from its lazily materialised batch arrays.
struct PreparedRef {
  const std::string* name = nullptr;
  const EntityIndex* index = nullptr;
  const BlockCollectionStats* stats = nullptr;
  const std::vector<CandidatePair>* pairs = nullptr;
  const std::vector<uint8_t>* is_positive = nullptr;
  size_t num_ground_truth = 0;
};

/// The view of an owning preparation.
PreparedRef RefOf(const PreparedDataset& dataset);

/// Runs one configuration end to end (features computed internally and
/// included in the timing, as the paper's RT does).
MetaBlockingResult RunMetaBlocking(const PreparedDataset& dataset,
                                   const MetaBlockingConfig& config);
MetaBlockingResult RunMetaBlocking(const PreparedRef& prepared,
                                   const MetaBlockingConfig& config);

/// Variant that reuses a precomputed feature matrix whose columns follow
/// config.features.FullMatrixColumns(). `feature_seconds_hint` is recorded
/// as the feature-generation time (pass the one-off measured cost, or 0 to
/// exclude it). Used by the seed-averaging experiment harness.
MetaBlockingResult RunMetaBlockingWithFeatures(
    const PreparedDataset& dataset, const MetaBlockingConfig& config,
    const Matrix& features, double feature_seconds_hint = 0.0);
MetaBlockingResult RunMetaBlockingWithFeatures(
    const PreparedRef& prepared, const MetaBlockingConfig& config,
    const Matrix& features, double feature_seconds_hint = 0.0);

}  // namespace gsmb

#endif  // GSMB_CORE_PIPELINE_H_
