#include "core/cardinality_pruning.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "util/thread_pool.h"

namespace gsmb {

namespace {

inline bool Valid(double p, const PruningContext& ctx) {
  return p >= ctx.validity_threshold;
}

// Min-heap entry: the weakest retained pair sits on top. Ties on
// probability are broken by pair index, ejecting the *later* pair first, so
// results are deterministic and independent of heap internals.
struct HeapEntry {
  double prob;
  uint32_t index;
};

// Strict total order "a outranks b": higher probability wins, ties go to
// the smaller index (so later pairs are evicted first and results are
// deterministic, independent of heap internals). The top-k of any entry
// set under this order is unique, so per-chunk top-k selections can merge
// in any order and still produce the exact serial result.
inline bool Outranks(const HeapEntry& a, const HeapEntry& b) {
  if (a.prob != b.prob) return a.prob > b.prob;
  return a.index < b.index;
}

// Min-heap on Outranks: the weakest retained pair sits on top.
struct WeakerFirst {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return Outranks(a, b);
  }
};

using MinHeap = std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                    WeakerFirst>;

// Offers `e` to a queue capped at `k` entries, replacing the weakest kept
// entry when outranked. Exact for any offer order (unlike a min-prob
// fast-path, which assumes ascending-index offers).
inline void OfferCapped(MinHeap& queue, size_t k, const HeapEntry& e) {
  if (queue.size() < k) {
    queue.push(e);
  } else if (Outranks(e, queue.top())) {
    queue.pop();
    queue.push(e);
  }
}

// Trims `entries` to its top-k under Outranks (unordered).
void KeepTopK(std::vector<HeapEntry>& entries, size_t k) {
  if (entries.size() <= k) return;
  std::nth_element(entries.begin(), entries.begin() + k, entries.end(),
                   Outranks);
  entries.resize(k);
}

}  // namespace

std::vector<uint32_t> CepPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  const auto k = static_cast<size_t>(std::max(0.0, std::floor(context.cep_k)));
  if (k == 0) return {};

  // Each chunk selects its local top-k valid pairs; the global top-k is
  // the top-k of the union of the locals, which is unique under Outranks.
  const std::vector<ChunkRange> chunks = DeterministicChunks(pairs.size());
  std::vector<std::vector<HeapEntry>> parts(chunks.size());
  ParallelFor(chunks.size(), context.num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  std::vector<HeapEntry>& local = parts[c];
                  for (size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
                    if (Valid(probabilities[i], context)) {
                      local.push_back(
                          {probabilities[i], static_cast<uint32_t>(i)});
                    }
                  }
                  KeepTopK(local, k);
                }
              });

  MinHeap queue;
  for (const std::vector<HeapEntry>& part : parts) {
    for (const HeapEntry& e : part) OfferCapped(queue, k, e);
  }

  std::vector<uint32_t> retained;
  retained.reserve(queue.size());
  while (!queue.empty()) {
    retained.push_back(queue.top().index);
    queue.pop();
  }
  std::sort(retained.begin(), retained.end());
  return retained;
}

namespace {

// One chunk's candidate entry for a node's top-k queue.
struct NodeOffer {
  uint32_t node;
  HeapEntry entry;
};

// Shared machinery of CNP/RCNP: build the per-node top-k queues, then count
// in how many of its own two queues each pair appears (0, 1 or 2). Each
// chunk pre-selects its per-node top-k by sorting its offers (no dense
// per-worker scratch); the sparse chunk contributions then merge into the
// global queues — per-node top-k is unique under Outranks, so the merge
// order is immaterial and the result matches the serial sweep exactly.
std::vector<uint8_t> QueueMembershipCounts(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities, const PruningContext& context) {
  const auto k = static_cast<size_t>(
      std::max<long long>(1, std::llround(context.cnp_k)));

  const std::vector<ChunkRange> chunks = DeterministicChunks(pairs.size());
  std::vector<std::vector<NodeOffer>> parts(chunks.size());
  ParallelFor(chunks.size(), context.num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                std::vector<NodeOffer> offers;
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  offers.clear();
                  for (size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
                    const double p = probabilities[i];
                    if (!Valid(p, context)) continue;
                    const auto index = static_cast<uint32_t>(i);
                    offers.push_back(
                        {static_cast<uint32_t>(LeftNode(pairs[i])),
                         {p, index}});
                    offers.push_back(
                        {static_cast<uint32_t>(RightNode(pairs[i], context)),
                         {p, index}});
                  }
                  std::sort(offers.begin(), offers.end(),
                            [](const NodeOffer& a, const NodeOffer& b) {
                              if (a.node != b.node) return a.node < b.node;
                              return Outranks(a.entry, b.entry);
                            });
                  std::vector<NodeOffer>& out = parts[c];
                  size_t pos = 0;
                  while (pos < offers.size()) {
                    const uint32_t node = offers[pos].node;
                    size_t kept = 0;
                    for (; pos < offers.size() && offers[pos].node == node;
                         ++pos) {
                      if (kept < k) {
                        out.push_back(offers[pos]);
                        ++kept;
                      }
                    }
                  }
                }
              });

  std::vector<MinHeap> queues(context.num_nodes);
  for (const std::vector<NodeOffer>& part : parts) {
    for (const NodeOffer& o : part) OfferCapped(queues[o.node], k, o.entry);
  }

  std::vector<uint8_t> membership(pairs.size(), 0);
  for (MinHeap& q : queues) {
    while (!q.empty()) {
      ++membership[q.top().index];
      q.pop();
    }
  }
  return membership;
}

std::vector<uint32_t> RetainByMembership(const std::vector<uint8_t>& counts,
                                         uint8_t required) {
  std::vector<uint32_t> retained;
  for (uint32_t i = 0; i < counts.size(); ++i) {
    if (counts[i] >= required) retained.push_back(i);
  }
  return retained;
}

}  // namespace

std::vector<uint32_t> CnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return RetainByMembership(
      QueueMembershipCounts(pairs, probabilities, context), 1);
}

std::vector<uint32_t> RcnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return RetainByMembership(
      QueueMembershipCounts(pairs, probabilities, context), 2);
}

}  // namespace gsmb
