#include "core/cardinality_pruning.h"

#include "core/pruning_aggregates.h"

// The cardinality-based algorithms are thin shells over the
// chunk-decomposed aggregators of core/pruning_aggregates.h — the same
// top-k selection code the streaming executor drives one shard at a time,
// which is what keeps the two paths bit-identical.

namespace gsmb {

std::vector<uint32_t> CepPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return PruneWithAggregator(kind(), pairs, probabilities, context);
}

std::vector<uint32_t> CnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return PruneWithAggregator(kind(), pairs, probabilities, context);
}

std::vector<uint32_t> RcnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return PruneWithAggregator(kind(), pairs, probabilities, context);
}

}  // namespace gsmb
