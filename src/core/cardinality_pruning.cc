#include "core/cardinality_pruning.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

namespace gsmb {

namespace {

inline bool Valid(double p, const PruningContext& ctx) {
  return p >= ctx.validity_threshold;
}

// Min-heap entry: the weakest retained pair sits on top. Ties on
// probability are broken by pair index, ejecting the *later* pair first, so
// results are deterministic and independent of heap internals.
struct HeapEntry {
  double prob;
  uint32_t index;
};

struct WeakerFirst {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.prob != b.prob) return a.prob > b.prob;  // min-heap on prob
    return a.index < b.index;                      // evict larger index first
  }
};

using MinHeap = std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                    WeakerFirst>;

}  // namespace

std::vector<uint32_t> CepPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  const auto k = static_cast<size_t>(std::max(0.0, std::floor(context.cep_k)));
  std::vector<uint32_t> retained;
  if (k == 0) return retained;

  MinHeap queue;
  double min_prob = 0.0;  // probability of the weakest queued pair
  for (uint32_t i = 0; i < pairs.size(); ++i) {
    const double p = probabilities[i];
    if (!Valid(p, context)) continue;
    if (queue.size() >= k && p <= min_prob) continue;
    queue.push({p, i});
    if (queue.size() > k) {
      queue.pop();
      min_prob = queue.top().prob;
    }
  }

  retained.reserve(queue.size());
  while (!queue.empty()) {
    retained.push_back(queue.top().index);
    queue.pop();
  }
  std::sort(retained.begin(), retained.end());
  return retained;
}

namespace {

// Shared machinery of CNP/RCNP: build the per-node top-k queues, then count
// in how many of its own two queues each pair appears (0, 1 or 2).
std::vector<uint8_t> QueueMembershipCounts(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities, const PruningContext& context) {
  const auto k = static_cast<size_t>(
      std::max<long long>(1, std::llround(context.cnp_k)));

  std::vector<MinHeap> queues(context.num_nodes);
  std::vector<double> min_prob(context.num_nodes, 0.0);

  auto offer = [&](size_t node, double p, uint32_t index) {
    if (p <= min_prob[node] && queues[node].size() >= k) return;
    queues[node].push({p, index});
    if (queues[node].size() > k) {
      queues[node].pop();
      min_prob[node] = queues[node].top().prob;
    }
  };

  for (uint32_t i = 0; i < pairs.size(); ++i) {
    const double p = probabilities[i];
    if (!Valid(p, context)) continue;
    offer(LeftNode(pairs[i]), p, i);
    offer(RightNode(pairs[i], context), p, i);
  }

  std::vector<uint8_t> membership(pairs.size(), 0);
  for (MinHeap& q : queues) {
    while (!q.empty()) {
      ++membership[q.top().index];
      q.pop();
    }
  }
  return membership;
}

std::vector<uint32_t> RetainByMembership(const std::vector<uint8_t>& counts,
                                         uint8_t required) {
  std::vector<uint32_t> retained;
  for (uint32_t i = 0; i < counts.size(); ++i) {
    if (counts[i] >= required) retained.push_back(i);
  }
  return retained;
}

}  // namespace

std::vector<uint32_t> CnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return RetainByMembership(
      QueueMembershipCounts(pairs, probabilities, context), 1);
}

std::vector<uint32_t> RcnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return RetainByMembership(
      QueueMembershipCounts(pairs, probabilities, context), 2);
}

}  // namespace gsmb
