#include "core/progressive.h"

#include <algorithm>
#include <numeric>

namespace gsmb {

std::vector<uint32_t> ProgressiveSchedule(
    const std::vector<double>& probabilities, double min_probability) {
  std::vector<uint32_t> order;
  order.reserve(probabilities.size());
  for (uint32_t i = 0; i < probabilities.size(); ++i) {
    if (probabilities[i] >= min_probability) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     if (probabilities[a] != probabilities[b]) {
                       return probabilities[a] > probabilities[b];
                     }
                     return a < b;
                   });
  return order;
}

std::vector<ProgressivePoint> ProgressiveRecallCurve(
    const std::vector<uint32_t>& schedule,
    const std::vector<uint8_t>& is_positive, size_t num_ground_truth,
    size_t curve_points) {
  std::vector<ProgressivePoint> curve;
  if (schedule.empty() || num_ground_truth == 0 || curve_points == 0) {
    return curve;
  }
  const size_t step = std::max<size_t>(1, schedule.size() / curve_points);
  size_t found = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (is_positive[schedule[i]]) ++found;
    const bool checkpoint = (i + 1) % step == 0 || i + 1 == schedule.size();
    if (checkpoint) {
      curve.push_back({i + 1, static_cast<double>(found) /
                                  static_cast<double>(num_ground_truth)});
    }
  }
  return curve;
}

double ProgressiveAuc(const std::vector<uint32_t>& schedule,
                      const std::vector<uint8_t>& is_positive,
                      size_t num_ground_truth) {
  if (schedule.empty() || num_ground_truth == 0) return 0.0;
  // Trapezoid-free exact sum: the AUC of the step curve equals the mean
  // recall over emission positions.
  size_t found = 0;
  double area = 0.0;
  for (uint32_t idx : schedule) {
    if (is_positive[idx]) ++found;
    area += static_cast<double>(found) / static_cast<double>(num_ground_truth);
  }
  return area / static_cast<double>(schedule.size());
}

}  // namespace gsmb
