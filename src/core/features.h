// FeatureExtractor: computes the weighting-scheme features of every
// candidate pair (paper Section 4).
//
// Definitions, with B_i the blocks of e_i, |b| the entities in block b and
// ||b|| the comparisons in block b (including redundant ones):
//
//   CF-IBF(i,j) = |B_i ∩ B_j| · log(|B|/|B_i|) · log(|B|/|B_j|)
//   RACCB(i,j)  = Σ_{b ∈ B_i ∩ B_j} 1/||b||
//   JS(i,j)     = |B_i ∩ B_j| / (|B_i| + |B_j| - |B_i ∩ B_j|)
//   LCP(e)      = |{ e_j : j ≠ i, |B_i ∩ B_j| > 0 }|   (two dims per pair)
//   EJS(i,j)    = JS(i,j) · log(||B||/||e_i||) · log(||B||/||e_j||)
//   WJS(i,j)    = Σ_{∩} 1/||b|| / (Σ_{B_i} 1/||b|| + Σ_{B_j} 1/||b|| - Σ_{∩} 1/||b||)
//   RS(i,j)     = Σ_{b ∈ B_i ∩ B_j} 1/|b|
//   NRS(i,j)    = Σ_{∩} 1/|b| / (Σ_{B_i} 1/|b| + Σ_{B_j} 1/|b| - Σ_{∩} 1/|b|)
//
// Everything except LCP is produced by one sweep that accumulates, per pivot
// entity, the per-neighbour sums (|B_i ∩ B_j|, Σ1/||b||, Σ1/|b|) over its
// blocks — O(Σ||b||) total. LCP deliberately pays the extra per-entity
// distinct-candidate pass the paper describes as its cost, so feature-set
// runtime comparisons (Figs. 7/9/10) reproduce the paper's shape.
//
// The sweep parallelises over pivot-entity groups (each group's rows are
// disjoint), so multi-threaded extraction is bit-identical to serial.

#ifndef GSMB_CORE_FEATURES_H_
#define GSMB_CORE_FEATURES_H_

#include <utility>
#include <vector>

#include "blocking/candidate_pairs.h"
#include "blocking/entity_index.h"
#include "core/feature_set.h"
#include "util/matrix.h"

namespace gsmb {

class FeatureExtractor {
 public:
  /// `pairs` must come from GenerateCandidatePairs(index) (grouped by left
  /// entity ascending, neighbours ascending) — row r of every produced
  /// matrix describes pairs[r].
  FeatureExtractor(const EntityIndex& index,
                   const std::vector<CandidatePair>& pairs);

  /// Features of `set`, one row per pair; columns follow
  /// set.FullMatrixColumns() order. Only the requested schemes are
  /// computed. `num_threads` > 1 parallelises over pivot groups with
  /// bit-identical results.
  ///
  /// `precomputed_lcp` (optional) supplies the per-entity LCP values of
  /// ComputeLcpPerEntity() so repeated Compute() calls over slices of the
  /// same index — the streaming executor's per-shard sweeps — pay the
  /// O(Σ||b||) LCP pass once instead of once per slice. Ignored when the
  /// set does not contain LCP.
  Matrix Compute(const FeatureSet& set, size_t num_threads = 1,
                 const std::vector<double>* precomputed_lcp = nullptr) const;

  /// All nine canonical columns (see FeatureSet::FullMatrixColumns()).
  Matrix ComputeAll(size_t num_threads = 1) const {
    return Compute(FeatureSet::All(), num_threads);
  }

  /// LCP values per *global* entity id; computed on demand by Compute() but
  /// exposed for tests and diagnostics. Cost: one distinct-candidate sweep.
  std::vector<double> ComputeLcpPerEntity(size_t num_threads = 1) const;

 private:
  /// Contiguous [begin, end) row ranges sharing one pivot (left) entity.
  std::vector<std::pair<size_t, size_t>> PivotGroups() const;

  /// Fills the rows of one pivot group. `accumulators` is a per-thread
  /// NeighbourAccumulators instance (type-erased to keep it out of the
  /// header).
  void ComputeGroup(const FeatureSet& set, size_t group_begin,
                    size_t group_end, const std::vector<double>& lcp,
                    void* accumulators, Matrix* out) const;

  const EntityIndex& index_;
  const std::vector<CandidatePair>& pairs_;
};

}  // namespace gsmb

#endif  // GSMB_CORE_FEATURES_H_
