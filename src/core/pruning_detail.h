// Internal machinery shared by the weight- and cardinality-based pruning
// implementations. Not part of the public surface.
//
// All pruning passes parallelise over the fixed-grain chunk table of
// util/thread_pool.h (DeterministicChunks): chunk boundaries depend only on
// the input size, workers fill chunk-owned slots, and slots merge in chunk
// order — so the retained set is bit-identical for any thread count.

#ifndef GSMB_CORE_PRUNING_DETAIL_H_
#define GSMB_CORE_PRUNING_DETAIL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/thread_pool.h"

namespace gsmb::detail {

/// Chunk-parallel filter: returns the ascending indices i in [0, n) for
/// which keep(i) is true. Per-chunk outputs concatenate in chunk order, so
/// the result equals the serial filter exactly.
template <typename Keep>
std::vector<uint32_t> ChunkedRetain(size_t n, size_t num_threads,
                                    const Keep& keep) {
  const std::vector<ChunkRange> chunks = DeterministicChunks(n);
  std::vector<std::vector<uint32_t>> parts(chunks.size());
  ParallelFor(chunks.size(), num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  std::vector<uint32_t>& out = parts[c];
                  for (size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
                    if (keep(i)) out.push_back(static_cast<uint32_t>(i));
                  }
                }
              });
  return MergeChunkParts(&parts, num_threads);
}

}  // namespace gsmb::detail

#endif  // GSMB_CORE_PRUNING_DETAIL_H_
