#include "core/unsupervised.h"

#include <stdexcept>

#include "core/features.h"

namespace gsmb {

const char* EdgeWeightSchemeName(EdgeWeightScheme scheme) {
  switch (scheme) {
    case EdgeWeightScheme::kCbs:
      return "CBS";
    case EdgeWeightScheme::kCfIbf:
      return "CF-IBF";
    case EdgeWeightScheme::kJs:
      return "JS";
    case EdgeWeightScheme::kRaccb:
      return "RACCB";
    case EdgeWeightScheme::kEjs:
      return "EJS";
    case EdgeWeightScheme::kWjs:
      return "WJS";
    case EdgeWeightScheme::kRs:
      return "RS";
    case EdgeWeightScheme::kNrs:
      return "NRS";
  }
  return "unknown";
}

std::vector<double> ComputeEdgeWeights(
    const EntityIndex& index, const std::vector<CandidatePair>& pairs,
    EdgeWeightScheme scheme) {
  if (scheme == EdgeWeightScheme::kCbs) {
    // CBS = |B_i ∩ B_j|; cheapest to compute directly.
    std::vector<double> weights(pairs.size());
    const size_t right_offset = index.clean_clean() ? index.num_left() : 0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      weights[i] = static_cast<double>(index.CommonBlocks(
          pairs[i].left, right_offset + pairs[i].right));
    }
    return weights;
  }

  Feature feature;
  switch (scheme) {
    case EdgeWeightScheme::kCfIbf:
      feature = Feature::kCfIbf;
      break;
    case EdgeWeightScheme::kJs:
      feature = Feature::kJs;
      break;
    case EdgeWeightScheme::kRaccb:
      feature = Feature::kRaccb;
      break;
    case EdgeWeightScheme::kEjs:
      feature = Feature::kEjs;
      break;
    case EdgeWeightScheme::kWjs:
      feature = Feature::kWjs;
      break;
    case EdgeWeightScheme::kRs:
      feature = Feature::kRs;
      break;
    case EdgeWeightScheme::kNrs:
      feature = Feature::kNrs;
      break;
    default:
      throw std::invalid_argument("unsupported edge-weight scheme");
  }

  FeatureExtractor extractor(index, pairs);
  Matrix column = extractor.Compute(FeatureSet({feature}));
  return column.data();
}

std::vector<uint32_t> UnsupervisedMetaBlocking(
    const EntityIndex& index, const std::vector<CandidatePair>& pairs,
    EdgeWeightScheme scheme, PruningKind kind,
    const PruningContext& context) {
  if (kind == PruningKind::kBCl) {
    throw std::invalid_argument(
        "BCl requires a classifier; use a supervised pipeline");
  }
  std::vector<double> weights = ComputeEdgeWeights(index, pairs, scheme);
  PruningContext ctx = context;
  ctx.validity_threshold = 0.0;  // scheme scores are not probabilities
  return MakePruningAlgorithm(kind)->Prune(pairs, weights, ctx);
}

}  // namespace gsmb
