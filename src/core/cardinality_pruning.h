// Cardinality-based supervised pruning algorithms (paper Section 3.2 and
// Algorithms 4-5). These favour precision: they bound how many top-weighted
// pairs survive, globally (CEP) or per node (CNP / RCNP).

#ifndef GSMB_CORE_CARDINALITY_PRUNING_H_
#define GSMB_CORE_CARDINALITY_PRUNING_H_

#include "core/pruning.h"

namespace gsmb {

/// Algorithm 4 — Supervised Cardinality Edge Pruning: global top-K valid
/// pairs by probability, K = Σ|b| / 2 over the input block collection.
class CepPruning : public PruningAlgorithm {
 public:
  std::vector<uint32_t> Prune(const std::vector<CandidatePair>& pairs,
                              const std::vector<double>& probabilities,
                              const PruningContext& context) const override;
  PruningKind kind() const override { return PruningKind::kCep; }
};

/// Algorithm 5 — Supervised Cardinality Node Pruning: every node keeps a
/// priority queue of its top-k valid pairs, k = max(1, Σ|b| / #entities);
/// a pair survives when it appears in EITHER endpoint's queue.
class CnpPruning : public PruningAlgorithm {
 public:
  std::vector<uint32_t> Prune(const std::vector<CandidatePair>& pairs,
                              const std::vector<double>& probabilities,
                              const PruningContext& context) const override;
  PruningKind kind() const override { return PruningKind::kCnp; }
};

/// Reciprocal CNP: a pair survives only when it appears in BOTH endpoints'
/// queues — the paper's best cardinality-based algorithm.
class RcnpPruning : public PruningAlgorithm {
 public:
  std::vector<uint32_t> Prune(const std::vector<CandidatePair>& pairs,
                              const std::vector<double>& probabilities,
                              const PruningContext& context) const override;
  PruningKind kind() const override { return PruningKind::kRcnp; }
};

}  // namespace gsmb

#endif  // GSMB_CORE_CARDINALITY_PRUNING_H_
