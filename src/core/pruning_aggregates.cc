#include "core/pruning_aggregates.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/pruning_detail.h"
#include "util/thread_pool.h"

namespace gsmb {

namespace {

inline bool Valid(double p, const PruningContext& ctx) {
  return p >= ctx.validity_threshold;
}

// ---------------------------------------------------------------------------
// Shared building blocks (former internals of weight_pruning.cc and
// cardinality_pruning.cc, moved here so the streaming executor reuses the
// exact arithmetic instead of re-implementing it).
// ---------------------------------------------------------------------------

// One chunk's contribution to a node's probability aggregate.
struct NodeContribution {
  uint32_t node;
  double sum;
  uint32_t count;
};

// Heap entry for the cardinality algorithms. Ties on probability are broken
// by pair index, ejecting the *later* pair first, so results are
// deterministic and independent of heap internals.
struct HeapEntry {
  double prob;
  uint32_t index;
};

// Strict total order "a outranks b": higher probability wins, ties go to
// the smaller index. The top-k of any entry set under this order is unique,
// so per-chunk top-k selections can merge in any order and still produce
// the exact serial result.
inline bool Outranks(const HeapEntry& a, const HeapEntry& b) {
  if (a.prob != b.prob) return a.prob > b.prob;
  return a.index < b.index;
}

// Min-heap on Outranks: the weakest retained pair sits on top.
struct WeakerFirst {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return Outranks(a, b);
  }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, WeakerFirst>;

// Offers `e` to a queue capped at `k` entries, replacing the weakest kept
// entry when outranked. Exact for any offer order.
inline void OfferCapped(MinHeap& queue, size_t k, const HeapEntry& e) {
  if (queue.size() < k) {
    queue.push(e);
  } else if (Outranks(e, queue.top())) {
    queue.pop();
    queue.push(e);
  }
}

// Trims `entries` to its top-k under Outranks (unordered).
void KeepTopK(std::vector<HeapEntry>& entries, size_t k) {
  if (entries.size() <= k) return;
  std::nth_element(entries.begin(), entries.begin() + k, entries.end(),
                   Outranks);
  entries.resize(k);
}

// ---------------------------------------------------------------------------
// BCl — stateless: keep every valid pair.
// ---------------------------------------------------------------------------

class BClAggregator final : public PruningAggregator {
 public:
  explicit BClAggregator(const PruningContext& ctx) : ctx_(ctx) {}

  bool needs_accumulation() const override { return false; }
  void AccumulateChunk(const PairChunkView&, AggregatorScratch*) override {}
  void FoldChunks(size_t, size_t) override {}
  bool Keep(size_t, const CandidatePair&, double p) const override {
    return Valid(p, ctx_);
  }

 private:
  PruningContext ctx_;
};

// ---------------------------------------------------------------------------
// WEP — global average of valid probabilities. Per-chunk partial sums fold
// in chunk order, so the mean does not depend on thread or shard counts.
// ---------------------------------------------------------------------------

class WepAggregator final : public PruningAggregator {
 public:
  WepAggregator(size_t num_chunks, const PruningContext& ctx)
      : ctx_(ctx), part_sum_(num_chunks, 0.0), part_count_(num_chunks, 0) {}

  void AccumulateChunk(const PairChunkView& chunk,
                       AggregatorScratch*) override {
    double sum = 0.0;
    size_t count = 0;
    for (size_t j = 0; j < chunk.count; ++j) {
      const double p = chunk.probabilities[j];
      if (Valid(p, ctx_)) {
        sum += p;
        ++count;
      }
    }
    part_sum_[chunk.chunk_index] = sum;
    part_count_[chunk.chunk_index] = count;
  }

  void FoldChunks(size_t chunk_begin, size_t chunk_end) override {
    for (size_t c = chunk_begin; c < chunk_end; ++c) {
      sum_ += part_sum_[c];
      count_ += part_count_[c];
    }
  }

  void Finalize() override {
    if (count_ > 0) mean_ = sum_ / static_cast<double>(count_);
  }

  bool Keep(size_t, const CandidatePair&, double p) const override {
    // The average of valid probabilities is itself >= the threshold, so the
    // validity check is implied, but kept explicit for the unsupervised
    // (threshold <= 0) reuse of this class.
    return count_ > 0 && Valid(p, ctx_) && mean_ <= p;
  }

 private:
  PruningContext ctx_;
  std::vector<double> part_sum_;
  std::vector<size_t> part_count_;
  double sum_ = 0.0;
  size_t count_ = 0;
  double mean_ = 0.0;
};

// ---------------------------------------------------------------------------
// WNP / RWNP — per-node average over valid pairs. Each chunk accumulates
// its touched nodes into a sparse contribution list; contributions fold in
// chunk order, so the averages are bit-identical for any thread count.
// ---------------------------------------------------------------------------

class NodeSumScratch final : public AggregatorScratch {
 public:
  explicit NodeSumScratch(size_t num_nodes)
      : sum(num_nodes, 0.0), count(num_nodes, 0) {}

  std::vector<double> sum;
  std::vector<uint32_t> count;
  std::vector<uint32_t> touched;
};

class NodeAverageAggregator final : public PruningAggregator {
 public:
  NodeAverageAggregator(size_t num_chunks, const PruningContext& ctx,
                        bool reciprocal)
      : ctx_(ctx),
        reciprocal_(reciprocal),
        parts_(num_chunks),
        sum_(ctx.num_nodes, 0.0),
        count_(ctx.num_nodes, 0) {}

  std::unique_ptr<AggregatorScratch> MakeScratch() const override {
    return std::make_unique<NodeSumScratch>(ctx_.num_nodes);
  }

  void AccumulateChunk(const PairChunkView& chunk,
                       AggregatorScratch* scratch) override {
    auto& s = *static_cast<NodeSumScratch*>(scratch);
    s.touched.clear();
    auto add = [&](size_t node, double p) {
      if (s.count[node] == 0) s.touched.push_back(static_cast<uint32_t>(node));
      s.sum[node] += p;
      ++s.count[node];
    };
    for (size_t j = 0; j < chunk.count; ++j) {
      const double p = chunk.probabilities[j];
      if (!Valid(p, ctx_)) continue;
      add(LeftNode(chunk.pairs[j]), p);
      add(RightNode(chunk.pairs[j], ctx_), p);
    }
    std::vector<NodeContribution>& out = parts_[chunk.chunk_index];
    out.reserve(s.touched.size());
    for (uint32_t node : s.touched) {
      out.push_back({node, s.sum[node], s.count[node]});
      s.sum[node] = 0.0;
      s.count[node] = 0;
    }
  }

  void FoldChunks(size_t chunk_begin, size_t chunk_end) override {
    for (size_t c = chunk_begin; c < chunk_end; ++c) {
      for (const NodeContribution& contribution : parts_[c]) {
        sum_[contribution.node] += contribution.sum;
        count_[contribution.node] += contribution.count;
      }
      std::vector<NodeContribution>().swap(parts_[c]);
    }
  }

  void Finalize() override {
    for (size_t n = 0; n < sum_.size(); ++n) {
      sum_[n] = count_[n] > 0 ? sum_[n] / count_[n]
                              : 2.0;  // unreachable threshold: no valid pairs
    }
  }

  bool Keep(size_t, const CandidatePair& pair, double p) const override {
    if (!Valid(p, ctx_)) return false;
    const bool left_ok = sum_[LeftNode(pair)] <= p;
    const bool right_ok = sum_[RightNode(pair, ctx_)] <= p;
    return reciprocal_ ? (left_ok && right_ok) : (left_ok || right_ok);
  }

 private:
  PruningContext ctx_;
  bool reciprocal_;
  std::vector<std::vector<NodeContribution>> parts_;
  std::vector<double> sum_;  // becomes the per-node average after Finalize()
  std::vector<uint32_t> count_;
};

// ---------------------------------------------------------------------------
// BLAST — per-node maximum over valid pairs; keep p >= r * (max_i + max_j).
// max is exact (no rounding), so per-chunk maxima merge to the same values
// in any order — but they still fold in chunk order like everything else.
// ---------------------------------------------------------------------------

class NodeMaxScratch final : public AggregatorScratch {
 public:
  explicit NodeMaxScratch(size_t num_nodes) : max(num_nodes, 0.0) {}

  std::vector<double> max;
  std::vector<uint32_t> touched;
};

class BlastAggregator final : public PruningAggregator {
 public:
  BlastAggregator(size_t num_chunks, const PruningContext& ctx)
      : ctx_(ctx), parts_(num_chunks), max_prob_(ctx.num_nodes, 0.0) {}

  std::unique_ptr<AggregatorScratch> MakeScratch() const override {
    return std::make_unique<NodeMaxScratch>(ctx_.num_nodes);
  }

  void AccumulateChunk(const PairChunkView& chunk,
                       AggregatorScratch* scratch) override {
    auto& s = *static_cast<NodeMaxScratch*>(scratch);
    s.touched.clear();
    auto raise = [&](size_t node, double p) {
      if (s.max[node] == 0.0) s.touched.push_back(static_cast<uint32_t>(node));
      if (s.max[node] < p) s.max[node] = p;
    };
    for (size_t j = 0; j < chunk.count; ++j) {
      const double p = chunk.probabilities[j];
      if (!Valid(p, ctx_) || p == 0.0) continue;
      raise(LeftNode(chunk.pairs[j]), p);
      raise(RightNode(chunk.pairs[j], ctx_), p);
    }
    std::vector<NodeContribution>& out = parts_[chunk.chunk_index];
    out.reserve(s.touched.size());
    for (uint32_t node : s.touched) {
      out.push_back({node, s.max[node], 0});
      s.max[node] = 0.0;
    }
  }

  void FoldChunks(size_t chunk_begin, size_t chunk_end) override {
    for (size_t c = chunk_begin; c < chunk_end; ++c) {
      for (const NodeContribution& contribution : parts_[c]) {
        if (max_prob_[contribution.node] < contribution.sum) {
          max_prob_[contribution.node] = contribution.sum;
        }
      }
      std::vector<NodeContribution>().swap(parts_[c]);
    }
  }

  bool Keep(size_t, const CandidatePair& pair, double p) const override {
    if (!Valid(p, ctx_)) return false;
    const double threshold =
        ctx_.blast_ratio *
        (max_prob_[LeftNode(pair)] + max_prob_[RightNode(pair, ctx_)]);
    return threshold <= p;
  }

 private:
  PruningContext ctx_;
  std::vector<std::vector<NodeContribution>> parts_;
  std::vector<double> max_prob_;
};

// ---------------------------------------------------------------------------
// CEP — global top-K. Each chunk selects its local top-K valid pairs; the
// global top-K is the top-K of the union of the locals, which is unique
// under Outranks.
// ---------------------------------------------------------------------------

class CepAggregator final : public PruningAggregator {
 public:
  CepAggregator(size_t num_chunks, const PruningContext& ctx)
      : ctx_(ctx),
        k_(static_cast<size_t>(std::max(0.0, std::floor(ctx.cep_k)))),
        parts_(num_chunks) {}

  bool emits_from_aggregates() const override { return true; }

  void AccumulateChunk(const PairChunkView& chunk,
                       AggregatorScratch*) override {
    if (k_ == 0) return;
    std::vector<HeapEntry>& local = parts_[chunk.chunk_index];
    for (size_t j = 0; j < chunk.count; ++j) {
      if (Valid(chunk.probabilities[j], ctx_)) {
        local.push_back({chunk.probabilities[j],
                         static_cast<uint32_t>(chunk.first_index + j)});
      }
    }
    KeepTopK(local, k_);
  }

  void FoldChunks(size_t chunk_begin, size_t chunk_end) override {
    for (size_t c = chunk_begin; c < chunk_end; ++c) {
      for (const HeapEntry& e : parts_[c]) OfferCapped(queue_, k_, e);
      std::vector<HeapEntry>().swap(parts_[c]);
    }
  }

  bool Keep(size_t, const CandidatePair&, double) const override {
    return false;  // unused: emits_from_aggregates()
  }

  std::vector<RetainedCandidate> TakeRetained() override {
    std::vector<RetainedCandidate> retained;
    retained.reserve(queue_.size());
    while (!queue_.empty()) {
      retained.push_back({queue_.top().index, queue_.top().prob});
      queue_.pop();
    }
    std::sort(retained.begin(), retained.end(),
              [](const RetainedCandidate& a, const RetainedCandidate& b) {
                return a.index < b.index;
              });
    return retained;
  }

 private:
  PruningContext ctx_;
  size_t k_;
  std::vector<std::vector<HeapEntry>> parts_;
  MinHeap queue_;
};

// ---------------------------------------------------------------------------
// CNP / RCNP — per-node top-k queues; keep a pair present in at least
// `required` of its two endpoint queues. Each chunk pre-selects its
// per-node top-k by sorting its offers; the sparse chunk contributions then
// merge into the global queues — per-node top-k is unique under Outranks,
// so the merge order is immaterial and the result matches the serial sweep
// exactly.
// ---------------------------------------------------------------------------

// One chunk's candidate entry for a node's top-k queue.
struct NodeOffer {
  uint32_t node;
  HeapEntry entry;
};

class NodeOfferScratch final : public AggregatorScratch {
 public:
  std::vector<NodeOffer> offers;
};

class CnpAggregator final : public PruningAggregator {
 public:
  CnpAggregator(size_t num_chunks, const PruningContext& ctx, uint8_t required)
      : ctx_(ctx),
        required_(required),
        k_(static_cast<size_t>(
            std::max<long long>(1, std::llround(ctx.cnp_k)))),
        parts_(num_chunks),
        queues_(ctx.num_nodes) {}

  bool emits_from_aggregates() const override { return true; }

  std::unique_ptr<AggregatorScratch> MakeScratch() const override {
    return std::make_unique<NodeOfferScratch>();
  }

  void AccumulateChunk(const PairChunkView& chunk,
                       AggregatorScratch* scratch) override {
    std::vector<NodeOffer>& offers =
        static_cast<NodeOfferScratch*>(scratch)->offers;
    offers.clear();
    for (size_t j = 0; j < chunk.count; ++j) {
      const double p = chunk.probabilities[j];
      if (!Valid(p, ctx_)) continue;
      const auto index = static_cast<uint32_t>(chunk.first_index + j);
      offers.push_back(
          {static_cast<uint32_t>(LeftNode(chunk.pairs[j])), {p, index}});
      offers.push_back(
          {static_cast<uint32_t>(RightNode(chunk.pairs[j], ctx_)),
           {p, index}});
    }
    std::sort(offers.begin(), offers.end(),
              [](const NodeOffer& a, const NodeOffer& b) {
                if (a.node != b.node) return a.node < b.node;
                return Outranks(a.entry, b.entry);
              });
    std::vector<NodeOffer>& out = parts_[chunk.chunk_index];
    size_t pos = 0;
    while (pos < offers.size()) {
      const uint32_t node = offers[pos].node;
      size_t kept = 0;
      for (; pos < offers.size() && offers[pos].node == node; ++pos) {
        if (kept < k_) {
          out.push_back(offers[pos]);
          ++kept;
        }
      }
    }
  }

  void FoldChunks(size_t chunk_begin, size_t chunk_end) override {
    for (size_t c = chunk_begin; c < chunk_end; ++c) {
      for (const NodeOffer& offer : parts_[c]) {
        OfferCapped(queues_[offer.node], k_, offer.entry);
      }
      std::vector<NodeOffer>().swap(parts_[c]);
    }
  }

  bool Keep(size_t, const CandidatePair&, double) const override {
    return false;  // unused: emits_from_aggregates()
  }

  std::vector<RetainedCandidate> TakeRetained() override {
    // A pair sits in at most two queues (its endpoints), at most once each,
    // so counting equal-index runs of the drained union reproduces the
    // membership counts of the serial sweep without any O(|C|) array.
    std::vector<HeapEntry> drained;
    for (MinHeap& q : queues_) {
      while (!q.empty()) {
        drained.push_back(q.top());
        q.pop();
      }
    }
    std::sort(drained.begin(), drained.end(),
              [](const HeapEntry& a, const HeapEntry& b) {
                return a.index < b.index;
              });
    std::vector<RetainedCandidate> retained;
    size_t pos = 0;
    while (pos < drained.size()) {
      size_t end = pos;
      while (end < drained.size() && drained[end].index == drained[pos].index) {
        ++end;
      }
      if (end - pos >= required_) {
        retained.push_back({drained[pos].index, drained[pos].prob});
      }
      pos = end;
    }
    return retained;
  }

 private:
  PruningContext ctx_;
  uint8_t required_;
  size_t k_;
  std::vector<std::vector<NodeOffer>> parts_;
  std::vector<MinHeap> queues_;
};

}  // namespace

std::unique_ptr<PruningAggregator> MakePruningAggregator(
    PruningKind kind, size_t num_chunks, const PruningContext& context) {
  switch (kind) {
    case PruningKind::kBCl:
      return std::make_unique<BClAggregator>(context);
    case PruningKind::kWep:
      return std::make_unique<WepAggregator>(num_chunks, context);
    case PruningKind::kWnp:
      return std::make_unique<NodeAverageAggregator>(num_chunks, context,
                                                     /*reciprocal=*/false);
    case PruningKind::kRwnp:
      return std::make_unique<NodeAverageAggregator>(num_chunks, context,
                                                     /*reciprocal=*/true);
    case PruningKind::kBlast:
      return std::make_unique<BlastAggregator>(num_chunks, context);
    case PruningKind::kCep:
      return std::make_unique<CepAggregator>(num_chunks, context);
    case PruningKind::kCnp:
      return std::make_unique<CnpAggregator>(num_chunks, context,
                                             /*required=*/1);
    case PruningKind::kRcnp:
      return std::make_unique<CnpAggregator>(num_chunks, context,
                                             /*required=*/2);
  }
  return nullptr;
}

std::vector<uint32_t> PruneWithAggregator(
    PruningKind kind, const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities, const PruningContext& context) {
  const std::vector<ChunkRange> chunks = DeterministicChunks(pairs.size());
  std::unique_ptr<PruningAggregator> aggregator =
      MakePruningAggregator(kind, chunks.size(), context);

  if (aggregator->needs_accumulation()) {
    ParallelFor(chunks.size(), context.execution.num_threads,
                [&](size_t chunks_begin, size_t chunks_end) {
                  std::unique_ptr<AggregatorScratch> scratch =
                      aggregator->MakeScratch();
                  for (size_t c = chunks_begin; c < chunks_end; ++c) {
                    PairChunkView view;
                    view.chunk_index = c;
                    view.first_index = chunks[c].begin;
                    view.pairs = pairs.data() + chunks[c].begin;
                    view.probabilities = probabilities.data() + chunks[c].begin;
                    view.count = chunks[c].end - chunks[c].begin;
                    aggregator->AccumulateChunk(view, scratch.get());
                  }
                });
    aggregator->FoldChunks(0, chunks.size());
    aggregator->Finalize();
  }

  if (aggregator->emits_from_aggregates()) {
    const std::vector<RetainedCandidate> retained = aggregator->TakeRetained();
    std::vector<uint32_t> indices;
    indices.reserve(retained.size());
    for (const RetainedCandidate& candidate : retained) {
      indices.push_back(candidate.index);
    }
    return indices;
  }

  return detail::ChunkedRetain(pairs.size(), context.execution.num_threads,
                               [&](size_t i) {
                                 return aggregator->Keep(i, pairs[i],
                                                         probabilities[i]);
                               });
}

}  // namespace gsmb
