// Progressive Entity Resolution on top of Generalized Supervised
// Meta-blocking — the paper's stated future-work direction (Section 7).
//
// Instead of emitting a pruned block collection, progressive ER emits
// candidate pairs in decreasing matching likelihood so that a downstream
// matcher operating under a budget resolves as many duplicates as early as
// possible. The classifier probabilities of Generalized Supervised
// Meta-blocking are exactly such a likelihood, so the schedule is simply
// the candidate list sorted by probability (deterministic tie-break on the
// pair index).

#ifndef GSMB_CORE_PROGRESSIVE_H_
#define GSMB_CORE_PROGRESSIVE_H_

#include <cstdint>
#include <vector>

#include "blocking/candidate_pairs.h"

namespace gsmb {

/// Emission order for progressive matching: pair indices sorted by
/// descending probability; ties broken by ascending index. Pairs below
/// `min_probability` are omitted entirely (use 0 to keep everything).
std::vector<uint32_t> ProgressiveSchedule(
    const std::vector<double>& probabilities, double min_probability = 0.0);

/// A point of the progressive-recall curve: after emitting `emitted`
/// pairs, `recall` of all duplicates has been seen.
struct ProgressivePoint {
  size_t emitted;
  double recall;
};

/// Evaluates a schedule against the ground-truth labels: the recall
/// reached after each 1/`curve_points` fraction of the schedule (plus the
/// final point). `is_positive[i]` labels pairs[i]; `num_ground_truth` is
/// |D| (blocking misses count against recall, as everywhere else).
std::vector<ProgressivePoint> ProgressiveRecallCurve(
    const std::vector<uint32_t>& schedule,
    const std::vector<uint8_t>& is_positive, size_t num_ground_truth,
    size_t curve_points = 20);

/// Area under the (normalised) progressive-recall curve in [0, 1]; 1.0
/// means every duplicate was emitted before any non-duplicate. The metric
/// progressive-ER papers report to compare schedules.
double ProgressiveAuc(const std::vector<uint32_t>& schedule,
                      const std::vector<uint8_t>& is_positive,
                      size_t num_ground_truth);

}  // namespace gsmb

#endif  // GSMB_CORE_PROGRESSIVE_H_
