// Unsupervised Meta-blocking (paper Sections 1 and 6; Papadakis et al.,
// TKDE 2014).
//
// The classic, classifier-free approach: a single weighting scheme scores
// every edge of the blocking graph and a pruning algorithm thresholds the
// scores directly. Provided both as the historical baseline the paper
// generalises and as the zero-label fallback of the library.
//
// The supervised pruning classes are reused with validity_threshold <= 0 —
// scheme scores are not probabilities, so the 0.5 cut-off does not apply.

#ifndef GSMB_CORE_UNSUPERVISED_H_
#define GSMB_CORE_UNSUPERVISED_H_

#include <string>
#include <vector>

#include "blocking/candidate_pairs.h"
#include "blocking/entity_index.h"
#include "core/feature_set.h"
#include "core/pruning.h"

namespace gsmb {

/// Edge-weighting schemes for unsupervised meta-blocking. CBS is the raw
/// common-block count (the weighting of the paper's Figure 2 example);
/// the rest reuse the schemes of Section 4 as standalone weights.
enum class EdgeWeightScheme {
  kCbs,    // |B_i ∩ B_j| (Common Blocks Scheme)
  kCfIbf,  // a.k.a. ECBS: CBS discounted by block frequency
  kJs,
  kRaccb,  // a.k.a. ARCS
  kEjs,
  kWjs,
  kRs,
  kNrs,
};

const char* EdgeWeightSchemeName(EdgeWeightScheme scheme);

/// Computes the edge weight of every candidate pair under `scheme`.
std::vector<double> ComputeEdgeWeights(
    const EntityIndex& index, const std::vector<CandidatePair>& pairs,
    EdgeWeightScheme scheme);

/// Runs one unsupervised meta-blocking configuration: weight all edges with
/// `scheme`, then prune with `kind` (validity threshold disabled; BCl is not
/// meaningful here and is rejected). Returns retained pair indices.
std::vector<uint32_t> UnsupervisedMetaBlocking(
    const EntityIndex& index, const std::vector<CandidatePair>& pairs,
    EdgeWeightScheme scheme, PruningKind kind, const PruningContext& context);

}  // namespace gsmb

#endif  // GSMB_CORE_UNSUPERVISED_H_
