// Weighting schemes as classifier features, and feature-set combinatorics
// (paper Section 4 and the feature-selection study of Section 5.3).
//
// Eight schemes act as features. LCP applies to an individual entity, so a
// feature vector that includes it carries *two* values, LCP(e_i) and
// LCP(e_j) — following [Papadakis et al., PVLDB 2014].
//
// The paper sweeps all 255 non-empty subsets of the 8 schemes. Its tables
// label subsets with IDs from an enumeration the text does not specify; we
// therefore define our own canonical order — subsets sorted by (size,
// bitmask) over [CF-IBF, RACCB, JS, LCP, EJS, WJS, RS, NRS], IDs 1..255 —
// and always print explicit member names alongside.

#ifndef GSMB_CORE_FEATURE_SET_H_
#define GSMB_CORE_FEATURE_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace gsmb {

enum class Feature : uint8_t {
  kCfIbf = 0,  ///< Co-occurrence Frequency - Inverse Block Frequency
  kRaccb = 1,  ///< Reciprocal Aggregate Cardinality of Common Blocks
  kJs = 2,     ///< Jaccard Scheme over block sets
  kLcp = 3,    ///< Local Candidate Pairs (per entity; contributes 2 dims)
  kEjs = 4,    ///< Enhanced Jaccard Scheme (new in this paper)
  kWjs = 5,    ///< Weighted Jaccard Scheme (new; normalises RACCB)
  kRs = 6,     ///< Reciprocal Sizes Scheme (new)
  kNrs = 7,    ///< Normalized Reciprocal Sizes Scheme (new)
};

inline constexpr size_t kNumFeatures = 8;

const char* FeatureName(Feature f);

/// Columns of the canonical "all features" matrix produced by
/// FeatureExtractor::ComputeAll(): one column per scheme except LCP, which
/// occupies two consecutive columns (left entity, right entity).
inline constexpr size_t kFullMatrixCols = 9;

/// An immutable-ish bitmask of schemes used as the classifier's features.
class FeatureSet {
 public:
  FeatureSet() : mask_(0) {}
  FeatureSet(std::initializer_list<Feature> features);

  /// All eight schemes.
  static FeatureSet All();
  /// The optimal set of the original Supervised Meta-blocking paper [21]:
  /// {CF-IBF, RACCB, JS, LCP}.
  static FeatureSet Paper2014();
  /// Formula 1: the selected BLAST feature set {CF-IBF, RACCB, RS, NRS} —
  /// LCP-free, hence the >2x runtime advantage.
  static FeatureSet BlastOptimal();
  /// Formula 2: the selected RCNP feature set {CF-IBF, RACCB, JS, LCP, WJS}.
  static FeatureSet RcnpOptimal();

  static FeatureSet FromMask(uint8_t mask) { return FeatureSet(mask); }
  uint8_t mask() const { return mask_; }

  bool Contains(Feature f) const { return mask_ & Bit(f); }
  void Add(Feature f) { mask_ |= Bit(f); }
  void Remove(Feature f) { mask_ &= static_cast<uint8_t>(~Bit(f)); }

  bool empty() const { return mask_ == 0; }

  /// Number of schemes in the set.
  size_t CountFeatures() const;

  /// Width of the resulting feature vectors (LCP counts twice).
  size_t Dimensions() const;

  /// Member schemes in canonical enum order.
  std::vector<Feature> Members() const;

  /// Render as "{CF-IBF, RACCB, RS, NRS}".
  std::string ToString() const;

  /// Column indices into the canonical 9-column full matrix, in the order
  /// the extracted sub-matrix lays its columns out.
  std::vector<size_t> FullMatrixColumns() const;

  /// The 255 non-empty subsets ordered by (size, mask); the subset at
  /// position i has Id() == i + 1.
  static const std::vector<FeatureSet>& EnumerateAll();

  /// 1-based position in EnumerateAll() — the ID printed by the
  /// feature-selection benches.
  int Id() const;

  bool operator==(const FeatureSet& other) const = default;

 private:
  explicit FeatureSet(uint8_t mask) : mask_(mask) {}
  static uint8_t Bit(Feature f) {
    return static_cast<uint8_t>(1u << static_cast<uint8_t>(f));
  }

  uint8_t mask_;
};

}  // namespace gsmb

#endif  // GSMB_CORE_FEATURE_SET_H_
