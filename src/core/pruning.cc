#include "core/pruning.h"

#include <algorithm>

#include "core/cardinality_pruning.h"
#include "core/weight_pruning.h"

namespace gsmb {

const char* PruningKindName(PruningKind kind) {
  switch (kind) {
    case PruningKind::kBCl:
      return "BCl";
    case PruningKind::kWep:
      return "WEP";
    case PruningKind::kWnp:
      return "WNP";
    case PruningKind::kRwnp:
      return "RWNP";
    case PruningKind::kBlast:
      return "BLAST";
    case PruningKind::kCep:
      return "CEP";
    case PruningKind::kCnp:
      return "CNP";
    case PruningKind::kRcnp:
      return "RCNP";
  }
  return "unknown";
}

bool IsWeightBased(PruningKind kind) {
  switch (kind) {
    case PruningKind::kBCl:
    case PruningKind::kWep:
    case PruningKind::kWnp:
    case PruningKind::kRwnp:
    case PruningKind::kBlast:
      return true;
    case PruningKind::kCep:
    case PruningKind::kCnp:
    case PruningKind::kRcnp:
      return false;
  }
  return false;
}

PruningContext PruningContext::FromIndex(const EntityIndex& index,
                                         const BlockCollectionStats& stats) {
  PruningContext ctx;
  ctx.num_nodes = index.num_entities();
  ctx.right_offset = index.clean_clean() ? index.num_left() : 0;
  ctx.cep_k = stats.cep_k;
  ctx.cnp_k = stats.cnp_k;
  return ctx;
}

std::unique_ptr<PruningAlgorithm> MakePruningAlgorithm(PruningKind kind) {
  switch (kind) {
    case PruningKind::kBCl:
      return std::make_unique<BClPruning>();
    case PruningKind::kWep:
      return std::make_unique<WepPruning>();
    case PruningKind::kWnp:
      return std::make_unique<WnpPruning>();
    case PruningKind::kRwnp:
      return std::make_unique<RwnpPruning>();
    case PruningKind::kBlast:
      return std::make_unique<BlastPruning>();
    case PruningKind::kCep:
      return std::make_unique<CepPruning>();
    case PruningKind::kCnp:
      return std::make_unique<CnpPruning>();
    case PruningKind::kRcnp:
      return std::make_unique<RcnpPruning>();
  }
  return nullptr;
}

std::vector<PruningKind> AllPruningKinds() {
  return {PruningKind::kBCl, PruningKind::kWep,  PruningKind::kWnp,
          PruningKind::kRwnp, PruningKind::kBlast, PruningKind::kCep,
          PruningKind::kCnp,  PruningKind::kRcnp};
}

}  // namespace gsmb
