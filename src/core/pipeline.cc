#include "core/pipeline.h"

#include <stdexcept>
#include <utility>

#include "blocking/block_filtering.h"
#include "blocking/block_purging.h"
#include "blocking/token_blocking.h"
#include "gsmb/telemetry.h"
#include "ml/sampler.h"
#include "util/random.h"

namespace gsmb {

namespace {

PreparedDataset FinishPreparation(const std::string& name,
                                  BlockCollection blocks,
                                  GroundTruth ground_truth,
                                  size_t num_threads) {
  PreparedDataset prep;
  prep.name = name;
  prep.clean_clean = blocks.clean_clean();
  prep.ground_truth = std::move(ground_truth);
  prep.blocks = std::move(blocks);
  prep.index = std::make_unique<EntityIndex>(prep.blocks, num_threads);
  prep.pairs = GenerateCandidatePairs(*prep.index, num_threads);
  prep.stats = ComputeBlockStats(prep.blocks);
  prep.blocking_quality =
      EvaluateBlockingQuality(prep.pairs, prep.ground_truth);
  prep.is_positive.resize(prep.pairs.size());
  for (size_t i = 0; i < prep.pairs.size(); ++i) {
    prep.is_positive[i] =
        prep.ground_truth.IsMatch(prep.pairs[i].left, prep.pairs[i].right)
            ? 1
            : 0;
  }
  return prep;
}

}  // namespace

BlockCollection PreprocessBlocks(BlockCollection raw,
                                 const BlockingOptions& options) {
  BlockPurging purging(options.purge_size_fraction);
  BlockFiltering filtering(options.filter_ratio);
  return filtering.Apply(purging.Apply(raw));
}

PreparedDataset PrepareCleanClean(const std::string& name,
                                  const EntityCollection& e1,
                                  const EntityCollection& e2,
                                  GroundTruth ground_truth,
                                  const BlockingOptions& options) {
  if (ground_truth.dirty()) {
    throw std::invalid_argument(
        "PrepareCleanClean: ground truth has Dirty-ER semantics");
  }
  BlockCollection raw = TokenBlocking(options.min_token_length)
      .Build(e1, e2, options.execution.num_threads);
  return FinishPreparation(name, PreprocessBlocks(std::move(raw), options),
                           std::move(ground_truth), options.execution.num_threads);
}

PreparedDataset PrepareDirty(const std::string& name,
                             const EntityCollection& e,
                             GroundTruth ground_truth,
                             const BlockingOptions& options) {
  if (!ground_truth.dirty()) {
    throw std::invalid_argument(
        "PrepareDirty: ground truth has Clean-Clean semantics");
  }
  BlockCollection raw = TokenBlocking(options.min_token_length)
      .Build(e, options.execution.num_threads);
  return FinishPreparation(name, PreprocessBlocks(std::move(raw), options),
                           std::move(ground_truth), options.execution.num_threads);
}

PreparedDataset PrepareFromBlocks(const std::string& name,
                                  BlockCollection blocks,
                                  GroundTruth ground_truth,
                                  size_t num_threads) {
  return FinishPreparation(name, std::move(blocks), std::move(ground_truth),
                           num_threads);
}

EffectivenessMetrics MetricsFromCounts(size_t true_positives, size_t retained,
                                       size_t num_ground_truth) {
  EffectivenessMetrics m;
  m.true_positives = true_positives;
  m.retained = retained;
  if (num_ground_truth > 0) {
    m.recall = static_cast<double>(m.true_positives) /
               static_cast<double>(num_ground_truth);
  }
  if (m.retained > 0) {
    m.precision = static_cast<double>(m.true_positives) /
                  static_cast<double>(m.retained);
  }
  if (m.recall + m.precision > 0.0) {
    m.f1 = 2.0 * m.recall * m.precision / (m.recall + m.precision);
  }
  return m;
}

EffectivenessMetrics EvaluateRetained(
    const std::vector<uint32_t>& retained_indices,
    const std::vector<uint8_t>& is_positive, size_t num_ground_truth) {
  size_t true_positives = 0;
  for (uint32_t idx : retained_indices) {
    if (is_positive[idx]) ++true_positives;
  }
  return MetricsFromCounts(true_positives, retained_indices.size(),
                           num_ground_truth);
}

PreparedRef RefOf(const PreparedDataset& dataset) {
  PreparedRef ref;
  ref.name = &dataset.name;
  ref.index = dataset.index.get();
  ref.stats = &dataset.stats;
  ref.pairs = &dataset.pairs;
  ref.is_positive = &dataset.is_positive;
  ref.num_ground_truth = dataset.ground_truth.size();
  return ref;
}

MetaBlockingResult RunMetaBlocking(const PreparedDataset& dataset,
                                   const MetaBlockingConfig& config) {
  return RunMetaBlocking(RefOf(dataset), config);
}

MetaBlockingResult RunMetaBlocking(const PreparedRef& prepared,
                                   const MetaBlockingConfig& config) {
  obs::PhaseTimings timings;
  Matrix features = [&] {
    obs::ScopedPhase phase(&timings, obs::Phase::kFeatures);
    FeatureExtractor extractor(*prepared.index, *prepared.pairs);
    return extractor.Compute(config.features, config.execution.num_threads);
  }();
  return RunMetaBlockingWithFeatures(prepared, config, features,
                                     timings.Get(obs::Phase::kFeatures));
}

MetaBlockingResult RunMetaBlockingWithFeatures(
    const PreparedDataset& dataset, const MetaBlockingConfig& config,
    const Matrix& features, double feature_seconds_hint) {
  return RunMetaBlockingWithFeatures(RefOf(dataset), config, features,
                                     feature_seconds_hint);
}

MetaBlockingResult RunMetaBlockingWithFeatures(
    const PreparedRef& prepared, const MetaBlockingConfig& config,
    const Matrix& features, double feature_seconds_hint) {
  const std::vector<CandidatePair>& pairs = *prepared.pairs;
  const std::vector<uint8_t>& is_positive = *prepared.is_positive;
  if (features.rows() != pairs.size()) {
    throw std::invalid_argument(
        "RunMetaBlockingWithFeatures: feature rows != candidate pairs");
  }
  if (features.cols() != config.features.Dimensions()) {
    throw std::invalid_argument(
        "RunMetaBlockingWithFeatures: feature cols != feature-set dims");
  }

  MetaBlockingResult result;
  result.phases.Add(obs::Phase::kFeatures, feature_seconds_hint);

  // ---- Training: balanced undersample + fit. ----
  std::unique_ptr<ProbabilisticClassifier> model;
  {
    obs::ScopedPhase phase(&result.phases, obs::Phase::kTrain);
    Rng rng(config.seed);
    TrainingSet training =
        SampleBalanced(is_positive, config.train_per_class, &rng);
    if (training.size() < 2) {
      throw std::runtime_error(
          "RunMetaBlocking: not enough labelled pairs to train (dataset '" +
          *prepared.name + "')");
    }
    Matrix train_x = features.SelectRows(training.row_indices);
    model = MakeClassifier(config.classifier, config.seed);
    model->Fit(train_x, training.labels);
    result.training_size = training.size();
  }
  result.model_coefficients = model->CoefficientsWithIntercept();

  // ---- Weighting: classification probability per candidate pair. ----
  std::vector<double> probabilities;
  {
    obs::ScopedPhase phase(&result.phases, obs::Phase::kClassify);
    probabilities = model->PredictBatch(features, config.execution.num_threads);
  }

  // ---- Pruning. ----
  std::vector<uint32_t> retained;
  {
    obs::ScopedPhase phase(&result.phases, obs::Phase::kPrune);
    PruningContext context =
        PruningContext::FromIndex(*prepared.index, *prepared.stats);
    context.blast_ratio = config.blast_ratio;
    context.validity_threshold = config.validity_threshold;
    context.execution = config.execution;
    retained = MakePruningAlgorithm(config.pruning)
                   ->Prune(pairs, probabilities, context);
  }

  result.feature_seconds = result.phases.Get(obs::Phase::kFeatures);
  result.train_seconds = result.phases.Get(obs::Phase::kTrain);
  result.classify_seconds = result.phases.Get(obs::Phase::kClassify);
  result.prune_seconds = result.phases.Get(obs::Phase::kPrune);
  result.total_seconds = result.feature_seconds + result.train_seconds +
                         result.classify_seconds + result.prune_seconds;
  obs::CounterAdd("pairs.generated", pairs.size());
  obs::CounterAdd("pairs.retained", retained.size());
  result.metrics =
      EvaluateRetained(retained, is_positive, prepared.num_ground_truth);
  if (config.keep_probabilities) result.probabilities = std::move(probabilities);
  if (config.keep_retained) result.retained_indices = std::move(retained);
  return result;
}

}  // namespace gsmb
