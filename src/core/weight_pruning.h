// Weight-based supervised pruning algorithms (paper Section 3.1 and
// Algorithms 1-3). These favour recall: they keep every pair whose
// classifier probability clears a (global or local) weight threshold.

#ifndef GSMB_CORE_WEIGHT_PRUNING_H_
#define GSMB_CORE_WEIGHT_PRUNING_H_

#include "core/pruning.h"

namespace gsmb {

/// Baseline of [Papadakis et al., PVLDB 2014]: the plain binary classifier.
/// Retains every valid pair (probability >= validity threshold); no further
/// pruning. The paper denotes it BCl.
class BClPruning : public PruningAlgorithm {
 public:
  std::vector<uint32_t> Prune(const std::vector<CandidatePair>& pairs,
                              const std::vector<double>& probabilities,
                              const PruningContext& context) const override;
  PruningKind kind() const override { return PruningKind::kBCl; }
};

/// Algorithm 1 — Supervised Weighted Edge Pruning: keeps pairs whose
/// probability reaches the global average over valid pairs.
class WepPruning : public PruningAlgorithm {
 public:
  std::vector<uint32_t> Prune(const std::vector<CandidatePair>& pairs,
                              const std::vector<double>& probabilities,
                              const PruningContext& context) const override;
  PruningKind kind() const override { return PruningKind::kWep; }
};

/// Algorithm 2 — Supervised Weighted Node Pruning: local averages; a pair
/// survives when it reaches the average of either endpoint.
class WnpPruning : public PruningAlgorithm {
 public:
  std::vector<uint32_t> Prune(const std::vector<CandidatePair>& pairs,
                              const std::vector<double>& probabilities,
                              const PruningContext& context) const override;
  PruningKind kind() const override { return PruningKind::kWnp; }
};

/// Reciprocal WNP: a pair must reach the averages of *both* endpoints —
/// consistently deeper pruning than WNP.
class RwnpPruning : public PruningAlgorithm {
 public:
  std::vector<uint32_t> Prune(const std::vector<CandidatePair>& pairs,
                              const std::vector<double>& probabilities,
                              const PruningContext& context) const override;
  PruningKind kind() const override { return PruningKind::kRwnp; }
};

/// Algorithm 3 — Supervised BLAST: keeps a valid pair when its probability
/// reaches r * (max_i + max_j) of the endpoint maxima; r = 0.35 in the
/// paper's experiments.
class BlastPruning : public PruningAlgorithm {
 public:
  std::vector<uint32_t> Prune(const std::vector<CandidatePair>& pairs,
                              const std::vector<double>& probabilities,
                              const PruningContext& context) const override;
  PruningKind kind() const override { return PruningKind::kBlast; }
};

}  // namespace gsmb

#endif  // GSMB_CORE_WEIGHT_PRUNING_H_
