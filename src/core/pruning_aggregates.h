// Chunk-decomposed pruning: the shared accumulation machinery behind both
// the in-memory PruningAlgorithms (core/weight_pruning.cc,
// core/cardinality_pruning.cc) and the bounded-memory StreamingExecutor
// (stream/streaming_executor.cc).
//
// Every pruning algorithm decomposes into three phases over the global
// candidate space [0, num_candidates):
//
//   1. Accumulate — per-chunk partial aggregates (probability sums, per-node
//      contributions, local top-k selections). Chunks are the fixed-grain
//      table of DeterministicChunks(num_candidates), so chunk boundaries
//      depend only on the candidate count — never on the thread count or on
//      how the candidate space is sliced into shards.
//   2. Fold — partial aggregates merge into global state in ascending chunk
//      order. Floating-point addition is not associative, so this fixed fold
//      order is what makes the batch path, the streaming path, and every
//      thread/shard count produce bit-identical aggregates.
//   3. Decide — either a stateless per-pair predicate (weight-based kinds;
//      needs a second sweep over the candidates) or a drain of the
//      accumulated top-k structures (cardinality kinds; no second sweep).
//
// The batch path materialises all pairs and calls PruneWithAggregator; the
// streaming path feeds the same aggregator one shard-sized slice of chunks
// at a time and folds after each shard, which is the identical fold
// sequence. That shared code path — not a parallel reimplementation — is
// the bit-identity guarantee.

#ifndef GSMB_CORE_PRUNING_AGGREGATES_H_
#define GSMB_CORE_PRUNING_AGGREGATES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "blocking/candidate_pairs.h"
#include "core/pruning.h"

namespace gsmb {

/// One deterministic chunk of the candidate space. `first_index` is the
/// GLOBAL candidate index of `pairs[0]`; in the batch path it equals the
/// offset into the full arrays, in the streaming path the arrays are
/// shard-local slices and only `first_index` carries the global position.
struct PairChunkView {
  size_t chunk_index = 0;  ///< position in the global chunk table
  size_t first_index = 0;  ///< global candidate index of pairs[0]
  const CandidatePair* pairs = nullptr;
  const double* probabilities = nullptr;
  size_t count = 0;
};

/// A retained candidate with the probability that retained it, so
/// cardinality algorithms can emit without re-scoring the pair.
struct RetainedCandidate {
  uint32_t index = 0;
  double probability = 0.0;
};

/// Per-worker scratch reused across the chunks one worker accumulates
/// (epoch-marked dense arrays, offer buffers). Opaque to callers.
class AggregatorScratch {
 public:
  virtual ~AggregatorScratch() = default;
};

class PruningAggregator {
 public:
  virtual ~PruningAggregator() = default;

  /// False for BCl: the keep decision is stateless, no aggregation pass is
  /// needed at all.
  virtual bool needs_accumulation() const { return true; }

  /// True for CEP/CNP/RCNP: the retained set is drained from the folded
  /// top-k structures via TakeRetained(); Keep() is unused and no second
  /// sweep over the candidates is required.
  virtual bool emits_from_aggregates() const { return false; }

  virtual std::unique_ptr<AggregatorScratch> MakeScratch() const {
    return nullptr;
  }

  /// Accumulates one chunk's partial aggregates. Thread-safe across
  /// DISTINCT chunks (each chunk owns its output slot). Within a chunk the
  /// sweep runs in ascending candidate order.
  virtual void AccumulateChunk(const PairChunkView& chunk,
                               AggregatorScratch* scratch) = 0;

  /// Folds the partial aggregates of chunks [chunk_begin, chunk_end) into
  /// the global state and releases them. Calls must be sequential, with
  /// ascending non-overlapping ranges that jointly cover every chunk.
  virtual void FoldChunks(size_t chunk_begin, size_t chunk_end) = 0;

  /// Called once, after the last FoldChunks().
  virtual void Finalize() {}

  /// Weight-based decision for candidate `global_index` (valid only after
  /// Finalize()). Pure and thread-safe.
  virtual bool Keep(size_t global_index, const CandidatePair& pair,
                    double probability) const = 0;

  /// Cardinality kinds: drains the retained set, ascending by index.
  virtual std::vector<RetainedCandidate> TakeRetained() { return {}; }
};

/// `num_chunks` must equal DeterministicChunks(num_candidates).size(). The
/// context is captured by value (num_nodes, thresholds, budgets, ratio).
std::unique_ptr<PruningAggregator> MakePruningAggregator(
    PruningKind kind, size_t num_chunks, const PruningContext& context);

/// The fully in-memory driver every PruningAlgorithm::Prune delegates to:
/// accumulate all chunks in parallel, fold once in chunk order, then decide.
/// Bit-identical for any `context.execution.num_threads`.
std::vector<uint32_t> PruneWithAggregator(
    PruningKind kind, const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities, const PruningContext& context);

}  // namespace gsmb

#endif  // GSMB_CORE_PRUNING_AGGREGATES_H_
