#include "core/feature_set.h"

#include <algorithm>
#include <bit>

namespace gsmb {

const char* FeatureName(Feature f) {
  switch (f) {
    case Feature::kCfIbf:
      return "CF-IBF";
    case Feature::kRaccb:
      return "RACCB";
    case Feature::kJs:
      return "JS";
    case Feature::kLcp:
      return "LCP";
    case Feature::kEjs:
      return "EJS";
    case Feature::kWjs:
      return "WJS";
    case Feature::kRs:
      return "RS";
    case Feature::kNrs:
      return "NRS";
  }
  return "unknown";
}

FeatureSet::FeatureSet(std::initializer_list<Feature> features) : mask_(0) {
  for (Feature f : features) Add(f);
}

FeatureSet FeatureSet::All() { return FeatureSet(static_cast<uint8_t>(0xFF)); }

FeatureSet FeatureSet::Paper2014() {
  return {Feature::kCfIbf, Feature::kRaccb, Feature::kJs, Feature::kLcp};
}

FeatureSet FeatureSet::BlastOptimal() {
  return {Feature::kCfIbf, Feature::kRaccb, Feature::kRs, Feature::kNrs};
}

FeatureSet FeatureSet::RcnpOptimal() {
  return {Feature::kCfIbf, Feature::kRaccb, Feature::kJs, Feature::kLcp,
          Feature::kWjs};
}

size_t FeatureSet::CountFeatures() const {
  return static_cast<size_t>(std::popcount(mask_));
}

size_t FeatureSet::Dimensions() const {
  return CountFeatures() + (Contains(Feature::kLcp) ? 1 : 0);
}

std::vector<Feature> FeatureSet::Members() const {
  std::vector<Feature> out;
  for (size_t i = 0; i < kNumFeatures; ++i) {
    auto f = static_cast<Feature>(i);
    if (Contains(f)) out.push_back(f);
  }
  return out;
}

std::string FeatureSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (Feature f : Members()) {
    if (!first) out += ", ";
    out += FeatureName(f);
    first = false;
  }
  out += "}";
  return out;
}

std::vector<size_t> FeatureSet::FullMatrixColumns() const {
  // Canonical full-matrix layout:
  //   0 CF-IBF | 1 RACCB | 2 JS | 3 LCP(left) | 4 LCP(right)
  //   5 EJS    | 6 WJS   | 7 RS | 8 NRS
  std::vector<size_t> cols;
  for (Feature f : Members()) {
    switch (f) {
      case Feature::kCfIbf:
        cols.push_back(0);
        break;
      case Feature::kRaccb:
        cols.push_back(1);
        break;
      case Feature::kJs:
        cols.push_back(2);
        break;
      case Feature::kLcp:
        cols.push_back(3);
        cols.push_back(4);
        break;
      case Feature::kEjs:
        cols.push_back(5);
        break;
      case Feature::kWjs:
        cols.push_back(6);
        break;
      case Feature::kRs:
        cols.push_back(7);
        break;
      case Feature::kNrs:
        cols.push_back(8);
        break;
    }
  }
  return cols;
}

const std::vector<FeatureSet>& FeatureSet::EnumerateAll() {
  static const std::vector<FeatureSet> kAll = [] {
    std::vector<FeatureSet> sets;
    sets.reserve(255);
    for (unsigned mask = 1; mask <= 0xFF; ++mask) {
      sets.push_back(FeatureSet(static_cast<uint8_t>(mask)));
    }
    std::stable_sort(sets.begin(), sets.end(),
                     [](const FeatureSet& a, const FeatureSet& b) {
                       if (a.CountFeatures() != b.CountFeatures()) {
                         return a.CountFeatures() < b.CountFeatures();
                       }
                       return a.mask() < b.mask();
                     });
    return sets;
  }();
  return kAll;
}

int FeatureSet::Id() const {
  const auto& all = EnumerateAll();
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].mask() == mask_) return static_cast<int>(i) + 1;
  }
  return 0;  // empty set
}

}  // namespace gsmb
