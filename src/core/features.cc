#include "core/features.h"

#include <cassert>
#include <cmath>

#include "util/thread_pool.h"

namespace gsmb {

namespace {

// Epoch-marked per-neighbour accumulators, reused across pivot entities so
// no allocation happens inside the sweep. One instance per worker thread.
struct NeighbourAccumulators {
  explicit NeighbourAccumulators(size_t num_entities)
      : epoch_of(num_entities, 0),
        common(num_entities, 0.0),
        inv_comparisons(num_entities, 0.0),
        inv_sizes(num_entities, 0.0) {}

  void BeginPivot() { ++epoch; }

  void Touch(uint32_t g) {
    if (epoch_of[g] != epoch) {
      epoch_of[g] = epoch;
      common[g] = 0.0;
      inv_comparisons[g] = 0.0;
      inv_sizes[g] = 0.0;
    }
  }

  uint32_t epoch = 0;
  std::vector<uint32_t> epoch_of;
  std::vector<double> common;           // |B_i ∩ B_j|
  std::vector<double> inv_comparisons;  // Σ 1/||b|| over common blocks
  std::vector<double> inv_sizes;        // Σ 1/|b|  over common blocks
};

}  // namespace

FeatureExtractor::FeatureExtractor(const EntityIndex& index,
                                   const std::vector<CandidatePair>& pairs)
    : index_(index), pairs_(pairs) {}

std::vector<double> FeatureExtractor::ComputeLcpPerEntity(
    size_t num_threads) const {
  const size_t n = index_.num_entities();
  std::vector<double> lcp(n, 0.0);
  ParallelFor(n, num_threads, [&](size_t begin, size_t end) {
    std::vector<uint32_t> last_seen(n, 0);
    uint32_t epoch = 0;
    for (size_t e = begin; e < end; ++e) {
      ++epoch;
      size_t count = 0;
      const bool left_side = !index_.clean_clean() || e < index_.num_left();
      for (uint32_t bid : index_.BlocksOf(e)) {
        // Candidates of a left entity are the right members and vice
        // versa; for Dirty ER every co-occurring entity is a candidate.
        if (index_.clean_clean()) {
          auto others = left_side ? index_.BlockRightGlobals(bid)
                                  : index_.BlockLeftGlobals(bid);
          for (uint32_t g : others) {
            if (last_seen[g] != epoch) {
              last_seen[g] = epoch;
              ++count;
            }
          }
        } else {
          for (uint32_t g : index_.BlockLeftGlobals(bid)) {
            if (g != e && last_seen[g] != epoch) {
              last_seen[g] = epoch;
              ++count;
            }
          }
        }
      }
      lcp[e] = static_cast<double>(count);
    }
  });
  return lcp;
}

std::vector<std::pair<size_t, size_t>> FeatureExtractor::PivotGroups() const {
  std::vector<std::pair<size_t, size_t>> groups;
  size_t row = 0;
  while (row < pairs_.size()) {
    size_t end = row;
    const EntityId pivot = pairs_[row].left;
    while (end < pairs_.size() && pairs_[end].left == pivot) ++end;
    groups.push_back({row, end});
    row = end;
  }
  return groups;
}

void FeatureExtractor::ComputeGroup(const FeatureSet& set, size_t group_begin,
                                    size_t group_end,
                                    const std::vector<double>& lcp,
                                    void* accumulators, Matrix* out) const {
  auto& acc = *static_cast<NeighbourAccumulators*>(accumulators);
  const bool need_cfibf = set.Contains(Feature::kCfIbf);
  const bool need_ejs = set.Contains(Feature::kEjs);
  const double num_blocks = static_cast<double>(index_.num_blocks());
  const double total_comparisons = index_.TotalComparisons();
  const size_t right_offset = index_.num_left();

  const size_t pivot = pairs_[group_begin].left;  // left global == local

  // Accumulate per-neighbour sums over the pivot's blocks.
  acc.BeginPivot();
  for (uint32_t bid : index_.BlocksOf(pivot)) {
    const double inv_cmp = index_.BlockComparisons(bid) > 0.0
                               ? 1.0 / index_.BlockComparisons(bid)
                               : 0.0;
    const double inv_size = 1.0 / static_cast<double>(index_.BlockSize(bid));
    auto others = index_.clean_clean() ? index_.BlockRightGlobals(bid)
                                       : index_.BlockLeftGlobals(bid);
    for (uint32_t g : others) {
      if (!index_.clean_clean() && g == pivot) continue;
      acc.Touch(g);
      acc.common[g] += 1.0;
      acc.inv_comparisons[g] += inv_cmp;
      acc.inv_sizes[g] += inv_size;
    }
  }

  const double pivot_blocks = static_cast<double>(index_.NumBlocksOf(pivot));
  const double pivot_log_ibf =
      need_cfibf ? std::log(num_blocks / pivot_blocks) : 0.0;
  const double pivot_log_ejs =
      need_ejs && index_.EntityComparisons(pivot) > 0.0
          ? std::log(total_comparisons / index_.EntityComparisons(pivot))
          : 0.0;
  const double pivot_inv_cmp = index_.SumInvBlockComparisons(pivot);
  const double pivot_inv_size = index_.SumInvBlockSizes(pivot);

  for (size_t row = group_begin; row < group_end; ++row) {
    const CandidatePair& p = pairs_[row];
    const size_t other = index_.clean_clean()
                             ? right_offset + p.right
                             : static_cast<size_t>(p.right);
    assert(acc.epoch_of[other] == acc.epoch &&
           "pair not implied by the entity index");

    const double common = acc.common[other];
    const double common_inv_cmp = acc.inv_comparisons[other];
    const double common_inv_size = acc.inv_sizes[other];
    const double other_blocks = static_cast<double>(index_.NumBlocksOf(other));

    double* dst = out->Row(row);
    size_t col = 0;
    for (Feature f : set.Members()) {
      switch (f) {
        case Feature::kCfIbf:
          dst[col++] =
              common * pivot_log_ibf * std::log(num_blocks / other_blocks);
          break;
        case Feature::kRaccb:
          dst[col++] = common_inv_cmp;
          break;
        case Feature::kJs:
          dst[col++] = common / (pivot_blocks + other_blocks - common);
          break;
        case Feature::kLcp:
          dst[col++] = lcp[pivot];
          dst[col++] = lcp[other];
          break;
        case Feature::kEjs: {
          const double js = common / (pivot_blocks + other_blocks - common);
          const double other_log =
              index_.EntityComparisons(other) > 0.0
                  ? std::log(total_comparisons /
                             index_.EntityComparisons(other))
                  : 0.0;
          dst[col++] = js * pivot_log_ejs * other_log;
          break;
        }
        case Feature::kWjs: {
          const double denom = pivot_inv_cmp +
                               index_.SumInvBlockComparisons(other) -
                               common_inv_cmp;
          dst[col++] = denom > 0.0 ? common_inv_cmp / denom : 0.0;
          break;
        }
        case Feature::kRs:
          dst[col++] = common_inv_size;
          break;
        case Feature::kNrs: {
          const double denom = pivot_inv_size +
                               index_.SumInvBlockSizes(other) -
                               common_inv_size;
          dst[col++] = denom > 0.0 ? common_inv_size / denom : 0.0;
          break;
        }
      }
    }
  }
}

Matrix FeatureExtractor::Compute(const FeatureSet& set, size_t num_threads,
                                 const std::vector<double>* precomputed_lcp)
    const {
  assert(!set.empty());
  const std::vector<size_t> layout = set.FullMatrixColumns();
  Matrix out(pairs_.size(), layout.size());
  if (pairs_.empty()) return out;

  std::vector<double> lcp_local;
  const std::vector<double>* lcp = &lcp_local;
  if (set.Contains(Feature::kLcp)) {
    if (precomputed_lcp != nullptr) {
      assert(precomputed_lcp->size() == index_.num_entities());
      lcp = precomputed_lcp;
    } else {
      lcp_local = ComputeLcpPerEntity(num_threads);
    }
  }

  const std::vector<std::pair<size_t, size_t>> groups = PivotGroups();
  ParallelFor(groups.size(), num_threads, [&](size_t begin, size_t end) {
    NeighbourAccumulators acc(index_.num_entities());
    for (size_t g = begin; g < end; ++g) {
      ComputeGroup(set, groups[g].first, groups[g].second, *lcp, &acc, &out);
    }
  });
  return out;
}

}  // namespace gsmb
