#include "core/weight_pruning.h"

#include <vector>

namespace gsmb {

namespace {

inline bool Valid(double p, const PruningContext& ctx) {
  return p >= ctx.validity_threshold;
}

}  // namespace

std::vector<uint32_t> BClPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  std::vector<uint32_t> retained;
  for (uint32_t i = 0; i < pairs.size(); ++i) {
    if (Valid(probabilities[i], context)) retained.push_back(i);
  }
  return retained;
}

std::vector<uint32_t> WepPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  // First pass: average probability over the valid pairs.
  double sum = 0.0;
  size_t count = 0;
  for (double p : probabilities) {
    if (Valid(p, context)) {
      sum += p;
      ++count;
    }
  }
  std::vector<uint32_t> retained;
  if (count == 0) return retained;
  const double mean = sum / static_cast<double>(count);

  // Second pass: keep pairs at or above the average. Valid pairs only —
  // the average of valid probabilities is itself >= the threshold, so the
  // check is implied, but kept explicit for the unsupervised (threshold
  // <= 0) reuse of this class.
  for (uint32_t i = 0; i < pairs.size(); ++i) {
    if (Valid(probabilities[i], context) && mean <= probabilities[i]) {
      retained.push_back(i);
    }
  }
  return retained;
}

namespace {

// Shared first pass of WNP/RWNP: per-node averages over valid pairs.
std::vector<double> NodeAverages(const std::vector<CandidatePair>& pairs,
                                 const std::vector<double>& probabilities,
                                 const PruningContext& context) {
  std::vector<double> sum(context.num_nodes, 0.0);
  std::vector<uint32_t> count(context.num_nodes, 0);
  for (uint32_t i = 0; i < pairs.size(); ++i) {
    const double p = probabilities[i];
    if (!Valid(p, context)) continue;
    const size_t a = LeftNode(pairs[i]);
    const size_t b = RightNode(pairs[i], context);
    sum[a] += p;
    ++count[a];
    sum[b] += p;
    ++count[b];
  }
  for (size_t n = 0; n < sum.size(); ++n) {
    sum[n] = count[n] > 0 ? sum[n] / count[n]
                          : 2.0;  // unreachable threshold: no valid pairs
  }
  return sum;
}

}  // namespace

std::vector<uint32_t> WnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  const std::vector<double> avg = NodeAverages(pairs, probabilities, context);
  std::vector<uint32_t> retained;
  for (uint32_t i = 0; i < pairs.size(); ++i) {
    const double p = probabilities[i];
    if (!Valid(p, context)) continue;
    if (avg[LeftNode(pairs[i])] <= p ||
        avg[RightNode(pairs[i], context)] <= p) {
      retained.push_back(i);
    }
  }
  return retained;
}

std::vector<uint32_t> RwnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  const std::vector<double> avg = NodeAverages(pairs, probabilities, context);
  std::vector<uint32_t> retained;
  for (uint32_t i = 0; i < pairs.size(); ++i) {
    const double p = probabilities[i];
    if (!Valid(p, context)) continue;
    if (avg[LeftNode(pairs[i])] <= p &&
        avg[RightNode(pairs[i], context)] <= p) {
      retained.push_back(i);
    }
  }
  return retained;
}

std::vector<uint32_t> BlastPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  // First pass: per-node maximum over valid pairs.
  std::vector<double> max_prob(context.num_nodes, 0.0);
  for (uint32_t i = 0; i < pairs.size(); ++i) {
    const double p = probabilities[i];
    if (!Valid(p, context)) continue;
    const size_t a = LeftNode(pairs[i]);
    const size_t b = RightNode(pairs[i], context);
    if (max_prob[a] < p) max_prob[a] = p;
    if (max_prob[b] < p) max_prob[b] = p;
  }
  // Second pass: p must reach r * (max_i + max_j).
  std::vector<uint32_t> retained;
  for (uint32_t i = 0; i < pairs.size(); ++i) {
    const double p = probabilities[i];
    if (!Valid(p, context)) continue;
    const double threshold =
        context.blast_ratio * (max_prob[LeftNode(pairs[i])] +
                               max_prob[RightNode(pairs[i], context)]);
    if (threshold <= p) retained.push_back(i);
  }
  return retained;
}

}  // namespace gsmb
