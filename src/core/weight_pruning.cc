#include "core/weight_pruning.h"

#include <cstdint>
#include <vector>

#include "core/pruning_detail.h"
#include "util/thread_pool.h"

namespace gsmb {

namespace {

inline bool Valid(double p, const PruningContext& ctx) {
  return p >= ctx.validity_threshold;
}

}  // namespace

std::vector<uint32_t> BClPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return detail::ChunkedRetain(
      pairs.size(), context.num_threads,
      [&](size_t i) { return Valid(probabilities[i], context); });
}

std::vector<uint32_t> WepPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  // First pass: average probability over the valid pairs. Partial sums per
  // fixed-grain chunk fold in chunk order, so the mean does not depend on
  // the thread count.
  const std::vector<ChunkRange> chunks =
      DeterministicChunks(probabilities.size());
  std::vector<double> part_sum(chunks.size(), 0.0);
  std::vector<size_t> part_count(chunks.size(), 0);
  ParallelFor(chunks.size(), context.num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  double sum = 0.0;
                  size_t count = 0;
                  for (size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
                    if (Valid(probabilities[i], context)) {
                      sum += probabilities[i];
                      ++count;
                    }
                  }
                  part_sum[c] = sum;
                  part_count[c] = count;
                }
              });
  double sum = 0.0;
  size_t count = 0;
  for (size_t c = 0; c < chunks.size(); ++c) {
    sum += part_sum[c];
    count += part_count[c];
  }
  if (count == 0) return {};
  const double mean = sum / static_cast<double>(count);

  // Second pass: keep pairs at or above the average. Valid pairs only —
  // the average of valid probabilities is itself >= the threshold, so the
  // check is implied, but kept explicit for the unsupervised (threshold
  // <= 0) reuse of this class.
  return detail::ChunkedRetain(pairs.size(), context.num_threads,
                               [&](size_t i) {
                                 return Valid(probabilities[i], context) &&
                                        mean <= probabilities[i];
                               });
}

namespace {

// One chunk's contribution to a node's probability sum.
struct NodeContribution {
  uint32_t node;
  double sum;
  uint32_t count;
};

// Shared first pass of WNP/RWNP: per-node averages over valid pairs. Each
// chunk accumulates its touched nodes into a sparse contribution list;
// contributions fold in chunk order, so the averages are bit-identical for
// any thread count.
std::vector<double> NodeAverages(const std::vector<CandidatePair>& pairs,
                                 const std::vector<double>& probabilities,
                                 const PruningContext& context) {
  const std::vector<ChunkRange> chunks = DeterministicChunks(pairs.size());
  std::vector<std::vector<NodeContribution>> parts(chunks.size());
  ParallelFor(chunks.size(), context.num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                // Dense scratch, reused across this worker's chunks; only
                // the touched slots are read or reset.
                std::vector<double> local_sum(context.num_nodes, 0.0);
                std::vector<uint32_t> local_count(context.num_nodes, 0);
                std::vector<uint32_t> touched;
                auto add = [&](size_t node, double p) {
                  if (local_count[node] == 0) {
                    touched.push_back(static_cast<uint32_t>(node));
                  }
                  local_sum[node] += p;
                  ++local_count[node];
                };
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  touched.clear();
                  for (size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
                    const double p = probabilities[i];
                    if (!Valid(p, context)) continue;
                    add(LeftNode(pairs[i]), p);
                    add(RightNode(pairs[i], context), p);
                  }
                  parts[c].reserve(touched.size());
                  for (uint32_t node : touched) {
                    parts[c].push_back(
                        {node, local_sum[node], local_count[node]});
                    local_sum[node] = 0.0;
                    local_count[node] = 0;
                  }
                }
              });

  std::vector<double> sum(context.num_nodes, 0.0);
  std::vector<uint32_t> count(context.num_nodes, 0);
  for (const std::vector<NodeContribution>& part : parts) {
    for (const NodeContribution& c : part) {
      sum[c.node] += c.sum;
      count[c.node] += c.count;
    }
  }
  for (size_t n = 0; n < sum.size(); ++n) {
    sum[n] = count[n] > 0 ? sum[n] / count[n]
                          : 2.0;  // unreachable threshold: no valid pairs
  }
  return sum;
}

}  // namespace

std::vector<uint32_t> WnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  const std::vector<double> avg = NodeAverages(pairs, probabilities, context);
  return detail::ChunkedRetain(
      pairs.size(), context.num_threads, [&](size_t i) {
        const double p = probabilities[i];
        return Valid(p, context) &&
               (avg[LeftNode(pairs[i])] <= p ||
                avg[RightNode(pairs[i], context)] <= p);
      });
}

std::vector<uint32_t> RwnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  const std::vector<double> avg = NodeAverages(pairs, probabilities, context);
  return detail::ChunkedRetain(
      pairs.size(), context.num_threads, [&](size_t i) {
        const double p = probabilities[i];
        return Valid(p, context) &&
               avg[LeftNode(pairs[i])] <= p &&
               avg[RightNode(pairs[i], context)] <= p;
      });
}

std::vector<uint32_t> BlastPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  // First pass: per-node maximum over valid pairs. max is exact (no
  // rounding), so per-chunk maxima merge to the same values in any order.
  const std::vector<ChunkRange> chunks = DeterministicChunks(pairs.size());
  std::vector<std::vector<NodeContribution>> parts(chunks.size());
  ParallelFor(chunks.size(), context.num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                std::vector<double> local_max(context.num_nodes, 0.0);
                std::vector<uint32_t> touched;
                auto raise = [&](size_t node, double p) {
                  if (local_max[node] == 0.0) {
                    touched.push_back(static_cast<uint32_t>(node));
                  }
                  if (local_max[node] < p) local_max[node] = p;
                };
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  touched.clear();
                  for (size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
                    const double p = probabilities[i];
                    if (!Valid(p, context) || p == 0.0) continue;
                    raise(LeftNode(pairs[i]), p);
                    raise(RightNode(pairs[i], context), p);
                  }
                  parts[c].reserve(touched.size());
                  for (uint32_t node : touched) {
                    parts[c].push_back({node, local_max[node], 0});
                    local_max[node] = 0.0;
                  }
                }
              });
  std::vector<double> max_prob(context.num_nodes, 0.0);
  for (const std::vector<NodeContribution>& part : parts) {
    for (const NodeContribution& c : part) {
      if (max_prob[c.node] < c.sum) max_prob[c.node] = c.sum;
    }
  }

  // Second pass: p must reach r * (max_i + max_j).
  return detail::ChunkedRetain(
      pairs.size(), context.num_threads, [&](size_t i) {
        const double p = probabilities[i];
        if (!Valid(p, context)) return false;
        const double threshold =
            context.blast_ratio * (max_prob[LeftNode(pairs[i])] +
                                   max_prob[RightNode(pairs[i], context)]);
        return threshold <= p;
      });
}

}  // namespace gsmb
