#include "core/weight_pruning.h"

#include "core/pruning_aggregates.h"

// The weight-based algorithms are thin shells over the chunk-decomposed
// aggregators of core/pruning_aggregates.h — the same accumulate/fold/keep
// code the streaming executor drives one shard at a time, which is what
// keeps the two paths bit-identical.

namespace gsmb {

std::vector<uint32_t> BClPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return PruneWithAggregator(kind(), pairs, probabilities, context);
}

std::vector<uint32_t> WepPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return PruneWithAggregator(kind(), pairs, probabilities, context);
}

std::vector<uint32_t> WnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return PruneWithAggregator(kind(), pairs, probabilities, context);
}

std::vector<uint32_t> RwnpPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return PruneWithAggregator(kind(), pairs, probabilities, context);
}

std::vector<uint32_t> BlastPruning::Prune(
    const std::vector<CandidatePair>& pairs,
    const std::vector<double>& probabilities,
    const PruningContext& context) const {
  return PruneWithAggregator(kind(), pairs, probabilities, context);
}

}  // namespace gsmb
