#include "blocking/block_filtering.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace gsmb {

namespace {

// (block size, block id) per entity; sorted so that the smallest blocks come
// first, ties broken by block id for determinism.
struct EntityBlockRef {
  uint32_t block_size;
  uint32_t block_id;

  bool operator<(const EntityBlockRef& o) const {
    if (block_size != o.block_size) return block_size < o.block_size;
    return block_id < o.block_id;
  }
};

}  // namespace

BlockCollection BlockFiltering::Apply(const BlockCollection& input) const {
  const size_t num_entities = input.NumEntities();
  const size_t left_offset = 0;
  const size_t right_offset = input.num_left_entities();

  // Collect every entity's block memberships.
  std::vector<std::vector<EntityBlockRef>> memberships(num_entities);
  for (uint32_t bid = 0; bid < input.size(); ++bid) {
    const Block& b = input[bid];
    const auto size = static_cast<uint32_t>(b.Size());
    for (EntityId e : b.left) {
      memberships[left_offset + e].push_back({size, bid});
    }
    for (EntityId e : b.right) {
      memberships[right_offset + e].push_back({size, bid});
    }
  }

  // For each entity, mark the blocks it stays in: the smallest
  // ceil(ratio * |B_i|) ones (at least one, so no entity loses all blocks).
  std::vector<std::vector<uint32_t>> retained_in_block(input.size());
  for (size_t e = 0; e < num_entities; ++e) {
    auto& refs = memberships[e];
    if (refs.empty()) continue;
    size_t keep = static_cast<size_t>(
        std::ceil(ratio_ * static_cast<double>(refs.size())));
    keep = std::clamp<size_t>(keep, 1, refs.size());
    std::sort(refs.begin(), refs.end());
    for (size_t i = 0; i < keep; ++i) {
      retained_in_block[refs[i].block_id].push_back(static_cast<uint32_t>(e));
    }
  }

  // Rebuild blocks with only the retained entities.
  BlockCollection out(input.clean_clean(), input.num_left_entities(),
                      input.num_right_entities());
  out.Reserve(input.size());
  for (uint32_t bid = 0; bid < input.size(); ++bid) {
    Block nb;
    nb.key = input[bid].key;
    for (uint32_t global : retained_in_block[bid]) {
      if (input.clean_clean() && global >= right_offset) {
        nb.right.push_back(static_cast<EntityId>(global - right_offset));
      } else {
        nb.left.push_back(static_cast<EntityId>(global));
      }
    }
    if (nb.Comparisons(input.clean_clean()) > 0.0) {
      out.Add(std::move(nb));
    }
  }
  return out;
}

}  // namespace gsmb
