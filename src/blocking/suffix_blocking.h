// Suffix Arrays Blocking — a third redundancy-positive blocking method.
//
// Each token contributes all of its suffixes of length >= min_length as
// blocking keys; blocks whose key set would exceed `max_block_size` members
// per source are discarded (the classic frequency cap of Suffix Arrays
// blocking, which prunes uninformative short suffixes).

#ifndef GSMB_BLOCKING_SUFFIX_BLOCKING_H_
#define GSMB_BLOCKING_SUFFIX_BLOCKING_H_

#include "blocking/block_collection.h"
#include "er/entity_collection.h"

namespace gsmb {

class SuffixBlocking {
 public:
  SuffixBlocking(size_t min_length = 4, size_t max_block_size = 64)
      : min_length_(min_length), max_block_size_(max_block_size) {}

  BlockCollection Build(const EntityCollection& e1,
                        const EntityCollection& e2,
                        size_t num_threads = 1) const;
  BlockCollection Build(const EntityCollection& e,
                        size_t num_threads = 1) const;

 private:
  BlockCollection CapBlocks(BlockCollection bc) const;

  size_t min_length_;
  size_t max_block_size_;
};

}  // namespace gsmb

#endif  // GSMB_BLOCKING_SUFFIX_BLOCKING_H_
