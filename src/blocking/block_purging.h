// Block Purging (paper Section 5.1).
//
// Discards oversized blocks that correspond to highly frequent signatures
// (stop words and the like), which carry no distinguishing information. The
// paper uses the parameter-free rule of [Papadakis et al., TKDE 2012]:
// a block is purged when it contains more than half of the entity profiles
// in the input. A comparison-budget variant is provided as an option for
// ablation studies.

#ifndef GSMB_BLOCKING_BLOCK_PURGING_H_
#define GSMB_BLOCKING_BLOCK_PURGING_H_

#include "blocking/block_collection.h"

namespace gsmb {

class BlockPurging {
 public:
  /// `size_fraction`: a block is purged when |b| > size_fraction * #profiles.
  /// The paper's parameter-free setting is 0.5.
  explicit BlockPurging(double size_fraction = 0.5)
      : size_fraction_(size_fraction) {}

  /// Returns the purged collection. Zero-comparison blocks are dropped too.
  BlockCollection Apply(const BlockCollection& input) const;

  /// Number of blocks the last Apply() removed (purged + empty).
  size_t last_purged_count() const { return last_purged_; }

 private:
  double size_fraction_;
  mutable size_t last_purged_ = 0;
};

/// Comparison-based purging (ablation alternative): repeatedly removes the
/// largest blocks while the ratio of comparisons to block assignments keeps
/// improving — the adaptive heuristic of the original blocking framework.
BlockCollection PurgeByComparisonBudget(const BlockCollection& input);

}  // namespace gsmb

#endif  // GSMB_BLOCKING_BLOCK_PURGING_H_
