// Candidate pairs: the distinct set of comparisons C implied by a
// redundancy-positive block collection (paper Section 2).
//
// Aggregating, per entity, every co-occurring entity removes the redundant
// comparisons that plague redundancy-positive blocks; what remains is the
// candidate set that Meta-blocking scores and prunes.

#ifndef GSMB_BLOCKING_CANDIDATE_PAIRS_H_
#define GSMB_BLOCKING_CANDIDATE_PAIRS_H_

#include <vector>

#include "blocking/entity_index.h"
#include "er/entity_profile.h"
#include "er/ground_truth.h"

namespace gsmb {

/// One non-redundant comparison c_{i,j}. Ids are *local*: `left` indexes E1
/// and `right` indexes E2 for Clean-Clean ER; for Dirty ER both index the
/// single collection with left < right.
struct CandidatePair {
  EntityId left;
  EntityId right;

  bool operator==(const CandidatePair& other) const = default;
};

/// Generates the distinct candidate set C.
///
/// Order invariant (relied upon by FeatureExtractor): pairs are grouped by
/// `left` in ascending order and, within a group, sorted by `right`
/// ascending. Complexity O(Σ ||b|| + |C| log k) where k is the largest
/// neighbourhood. `num_threads` > 1 parallelises over fixed-grain pivot
/// chunks; the result is bit-identical to the serial sweep.
std::vector<CandidatePair> GenerateCandidatePairs(const EntityIndex& index,
                                                  size_t num_threads = 1);

/// Number of candidate pairs that are matches according to `gt`.
size_t CountPositivePairs(const std::vector<CandidatePair>& pairs,
                          const GroundTruth& gt);

}  // namespace gsmb

#endif  // GSMB_BLOCKING_CANDIDATE_PAIRS_H_
