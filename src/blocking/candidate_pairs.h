// Candidate pairs: the distinct set of comparisons C implied by a
// redundancy-positive block collection (paper Section 2).
//
// Aggregating, per entity, every co-occurring entity removes the redundant
// comparisons that plague redundancy-positive blocks; what remains is the
// candidate set that Meta-blocking scores and prunes.

#ifndef GSMB_BLOCKING_CANDIDATE_PAIRS_H_
#define GSMB_BLOCKING_CANDIDATE_PAIRS_H_

#include <vector>

#include "blocking/entity_index.h"
#include "er/entity_profile.h"
#include "er/ground_truth.h"

namespace gsmb {

/// One non-redundant comparison c_{i,j}. Ids are *local*: `left` indexes E1
/// and `right` indexes E2 for Clean-Clean ER; for Dirty ER both index the
/// single collection with left < right.
struct CandidatePair {
  EntityId left;
  EntityId right;

  bool operator==(const CandidatePair& other) const = default;
};

/// Generates the distinct candidate set C.
///
/// Order invariant (relied upon by FeatureExtractor): pairs are grouped by
/// `left` in ascending order and, within a group, sorted by `right`
/// ascending. Complexity O(Σ ||b|| + |C| log k) where k is the largest
/// neighbourhood. `num_threads` > 1 parallelises over fixed-grain pivot
/// chunks; the result is bit-identical to the serial sweep.
std::vector<CandidatePair> GenerateCandidatePairs(const EntityIndex& index,
                                                  size_t num_threads = 1);

/// Number of pivot entities the candidate sweep iterates: |E1| for
/// Clean-Clean ER (left entities pivot), |E| for Dirty ER.
size_t NumCandidatePivots(const EntityIndex& index);

/// Enumerates one pivot entity's distinct candidate neighbours — the exact
/// per-pivot step of GenerateCandidatePairs, exposed so shard-scoped
/// iteration (stream/) can regenerate any contiguous slice of the global
/// candidate order without materialising the whole set. Holds the
/// epoch-marked scratch, so one instance per worker thread amortises the
/// O(|E|) allocation across pivots.
class PivotNeighbourGenerator {
 public:
  explicit PivotNeighbourGenerator(const EntityIndex& index);

  /// Fills `neighbours` (replacing its contents) with the pivot's candidate
  /// partners as LOCAL right-side ids, ascending — exactly the `right` ids
  /// GenerateCandidatePairs emits for this pivot, in the same order.
  void Generate(size_t pivot, std::vector<EntityId>* neighbours);

 private:
  const EntityIndex& index_;
  std::vector<uint32_t> last_seen_;
  uint32_t epoch_ = 0;
};

/// Number of candidate pairs that are matches according to `gt`.
size_t CountPositivePairs(const std::vector<CandidatePair>& pairs,
                          const GroundTruth& gt);

}  // namespace gsmb

#endif  // GSMB_BLOCKING_CANDIDATE_PAIRS_H_
