#include "blocking/block_purging.h"

#include <algorithm>
#include <map>

#include "gsmb/telemetry.h"

namespace gsmb {

BlockCollection BlockPurging::Apply(const BlockCollection& input) const {
  const double limit =
      size_fraction_ * static_cast<double>(input.NumEntities());
  BlockCollection out(input.clean_clean(), input.num_left_entities(),
                      input.num_right_entities());
  out.Reserve(input.size());
  size_t removed = 0;
  for (const Block& b : input.blocks()) {
    if (static_cast<double>(b.Size()) > limit ||
        b.Comparisons(input.clean_clean()) <= 0.0) {
      ++removed;
      continue;
    }
    out.Add(b);
  }
  last_purged_ = removed;
  obs::CounterAdd("blocks.purged", removed);
  return out;
}

BlockCollection PurgeByComparisonBudget(const BlockCollection& input) {
  // Group blocks by |b| descending; walk the size levels from largest to
  // smallest and find the cut that maximises comparisons-per-assignment
  // efficiency, following the adaptive rule of Papadakis et al. (TKDE 2012):
  // stop purging when the comparison cardinality stops decreasing faster
  // than the block assignments.
  if (input.empty()) return input;

  std::map<size_t, std::pair<double, size_t>> levels;  // |b| -> (||b||, Σ|b|)
  for (const Block& b : input.blocks()) {
    auto& [comparisons, assignments] = levels[b.Size()];
    comparisons += b.Comparisons(input.clean_clean());
    assignments += b.Size();
  }

  // Cumulative stats from the smallest level upward.
  double total_comparisons = 0.0;
  double total_assignments = 0.0;
  size_t max_allowed = levels.rbegin()->first;
  double prev_ratio = -1.0;
  for (const auto& [size, stats] : levels) {
    total_comparisons += stats.first;
    total_assignments += static_cast<double>(stats.second);
    if (total_comparisons <= 0.0) continue;
    double ratio = total_assignments / total_comparisons;
    // Keep growing while the marginal level still improves the ratio.
    if (prev_ratio >= 0.0 && ratio < prev_ratio) {
      break;
    }
    prev_ratio = ratio;
    max_allowed = size;
  }

  BlockCollection out(input.clean_clean(), input.num_left_entities(),
                      input.num_right_entities());
  for (const Block& b : input.blocks()) {
    if (b.Size() <= max_allowed && b.Comparisons(input.clean_clean()) > 0.0) {
      out.Add(b);
    }
  }
  return out;
}

}  // namespace gsmb
