// Q-Grams Blocking — an alternative redundancy-positive blocking method
// (paper Section 2 cites it next to Token Blocking and Suffix Arrays).
//
// Every token of every attribute value is decomposed into overlapping
// character q-grams, and a block is created per distinct q-gram. Compared to
// Token Blocking it is robust to typos (a single character edit perturbs at
// most q grams) at the price of more, larger blocks.

#ifndef GSMB_BLOCKING_QGRAM_BLOCKING_H_
#define GSMB_BLOCKING_QGRAM_BLOCKING_H_

#include "blocking/block_collection.h"
#include "er/entity_collection.h"

namespace gsmb {

class QGramBlocking {
 public:
  explicit QGramBlocking(size_t q = 3) : q_(q) {}

  BlockCollection Build(const EntityCollection& e1,
                        const EntityCollection& e2,
                        size_t num_threads = 1) const;
  BlockCollection Build(const EntityCollection& e,
                        size_t num_threads = 1) const;

  size_t q() const { return q_; }

 private:
  size_t q_;
};

}  // namespace gsmb

#endif  // GSMB_BLOCKING_QGRAM_BLOCKING_H_
