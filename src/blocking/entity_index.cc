#include "blocking/entity_index.h"

#include <algorithm>
#include <cassert>

namespace gsmb {

EntityIndex::EntityIndex(const BlockCollection& bc)
    : clean_clean_(bc.clean_clean()),
      num_left_(bc.num_left_entities()),
      num_right_(bc.num_right_entities()) {
  const size_t n_entities = num_entities();
  const size_t n_blocks = bc.size();

  block_size_.resize(n_blocks);
  block_comparisons_.resize(n_blocks);

  // ---- Pass 1: per-block stats and per-entity block counts. ----
  std::vector<size_t> entity_counts(n_entities, 0);
  left_offsets_.assign(n_blocks + 1, 0);
  right_offsets_.assign(n_blocks + 1, 0);

  for (uint32_t bid = 0; bid < n_blocks; ++bid) {
    const Block& b = bc[bid];
    block_size_[bid] = static_cast<uint32_t>(b.Size());
    block_comparisons_[bid] = b.Comparisons(clean_clean_);
    total_comparisons_ += block_comparisons_[bid];
    total_occurrences_ += b.Size();
    left_offsets_[bid + 1] = left_offsets_[bid] + b.left.size();
    right_offsets_[bid + 1] = right_offsets_[bid] + b.right.size();
    for (EntityId e : b.left) ++entity_counts[e];
    for (EntityId e : b.right) ++entity_counts[num_left_ + e];
  }

  // ---- Pass 2: fill CSR arrays. ----
  entity_offsets_.assign(n_entities + 1, 0);
  for (size_t e = 0; e < n_entities; ++e) {
    entity_offsets_[e + 1] = entity_offsets_[e] + entity_counts[e];
  }
  entity_blocks_.resize(entity_offsets_.back());
  left_members_.resize(left_offsets_.back());
  right_members_.resize(right_offsets_.back());

  std::vector<size_t> cursor(entity_offsets_.begin(),
                             entity_offsets_.end() - 1);
  for (uint32_t bid = 0; bid < n_blocks; ++bid) {
    const Block& b = bc[bid];
    size_t lpos = left_offsets_[bid];
    for (EntityId e : b.left) {
      left_members_[lpos++] = e;  // E1 global id == local id
      entity_blocks_[cursor[e]++] = bid;
    }
    size_t rpos = right_offsets_[bid];
    for (EntityId e : b.right) {
      const auto global = static_cast<uint32_t>(num_left_ + e);
      right_members_[rpos++] = global;
      entity_blocks_[cursor[global]++] = bid;
    }
  }
  // Blocks are visited in increasing bid, so each entity's block list is
  // already sorted ascending — an invariant CommonBlocks() relies on.

  // ---- Pass 3: per-entity aggregates. ----
  entity_comparisons_.assign(n_entities, 0.0);
  entity_inv_comparisons_.assign(n_entities, 0.0);
  entity_inv_sizes_.assign(n_entities, 0.0);
  for (size_t e = 0; e < n_entities; ++e) {
    for (uint32_t bid : BlocksOf(e)) {
      entity_comparisons_[e] += block_comparisons_[bid];
      if (block_comparisons_[bid] > 0.0) {
        entity_inv_comparisons_[e] += 1.0 / block_comparisons_[bid];
      }
      entity_inv_sizes_[e] += 1.0 / static_cast<double>(block_size_[bid]);
    }
  }
}

size_t EntityIndex::CommonBlocks(size_t global_a, size_t global_b) const {
  std::span<const uint32_t> a = BlocksOf(global_a);
  std::span<const uint32_t> b = BlocksOf(global_b);
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace gsmb
