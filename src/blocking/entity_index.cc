#include "blocking/entity_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>

#include "util/thread_pool.h"

namespace gsmb {

EntityIndex::EntityIndex(const BlockCollection& bc, size_t num_threads)
    : clean_clean_(bc.clean_clean()),
      num_left_(bc.num_left_entities()),
      num_right_(bc.num_right_entities()) {
  const size_t n_entities = num_entities();
  const size_t n_blocks = bc.size();

  block_size_.resize(n_blocks);
  block_comparisons_.resize(n_blocks);
  left_offsets_.assign(n_blocks + 1, 0);
  right_offsets_.assign(n_blocks + 1, 0);

  // ---- Pass 1: per-block stats and per-entity block counts. ----
  // Per-block fields are disjoint writes; the floating-point totals are
  // accumulated per fixed-grain chunk and folded in chunk order below, so
  // they are bit-identical for any thread count (including one).
  const std::vector<ChunkRange> block_chunks = DeterministicChunks(n_blocks);
  std::vector<double> chunk_comparisons(block_chunks.size(), 0.0);
  std::vector<size_t> chunk_occurrences(block_chunks.size(), 0);

  std::unique_ptr<std::atomic<size_t>[]> entity_counts(
      new std::atomic<size_t>[n_entities]);
  ParallelFor(n_entities, num_threads, [&](size_t begin, size_t end) {
    for (size_t e = begin; e < end; ++e) {
      entity_counts[e].store(0, std::memory_order_relaxed);
    }
  });

  ParallelFor(block_chunks.size(), num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
    for (size_t c = chunks_begin; c < chunks_end; ++c) {
      double comparisons = 0.0;
      size_t occurrences = 0;
      for (size_t bid = block_chunks[c].begin; bid < block_chunks[c].end;
           ++bid) {
        const Block& b = bc[bid];
        block_size_[bid] = static_cast<uint32_t>(b.Size());
        block_comparisons_[bid] = b.Comparisons(clean_clean_);
        comparisons += block_comparisons_[bid];
        occurrences += b.Size();
        left_offsets_[bid + 1] = b.left.size();
        right_offsets_[bid + 1] = b.right.size();
        for (EntityId e : b.left) {
          entity_counts[e].fetch_add(1, std::memory_order_relaxed);
        }
        for (EntityId e : b.right) {
          entity_counts[num_left_ + e].fetch_add(1,
                                                 std::memory_order_relaxed);
        }
      }
      chunk_comparisons[c] = comparisons;
      chunk_occurrences[c] = occurrences;
    }
  });
  for (size_t c = 0; c < block_chunks.size(); ++c) {
    total_comparisons_ += chunk_comparisons[c];
    total_occurrences_ += chunk_occurrences[c];
  }
  for (size_t bid = 0; bid < n_blocks; ++bid) {
    left_offsets_[bid + 1] += left_offsets_[bid];
    right_offsets_[bid + 1] += right_offsets_[bid];
  }

  // ---- Pass 2: fill CSR arrays. ----
  entity_offsets_.assign(n_entities + 1, 0);
  for (size_t e = 0; e < n_entities; ++e) {
    entity_offsets_[e + 1] =
        entity_offsets_[e] + entity_counts[e].load(std::memory_order_relaxed);
  }
  entity_blocks_.resize(entity_offsets_.back());
  left_members_.resize(left_offsets_.back());
  right_members_.resize(right_offsets_.back());

  // Member arrays write into per-block slots (disjoint); the per-entity
  // block lists go through atomic cursors, so concurrent chunks interleave
  // them arbitrarily — the sort pass below restores the canonical order.
  std::unique_ptr<std::atomic<size_t>[]> cursor(
      new std::atomic<size_t>[n_entities]);
  ParallelFor(n_entities, num_threads, [&](size_t begin, size_t end) {
    for (size_t e = begin; e < end; ++e) {
      cursor[e].store(entity_offsets_[e], std::memory_order_relaxed);
    }
  });

  ParallelFor(block_chunks.size(), num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
    for (size_t c = chunks_begin; c < chunks_end; ++c) {
      for (size_t bid = block_chunks[c].begin; bid < block_chunks[c].end;
           ++bid) {
        const Block& b = bc[bid];
        size_t lpos = left_offsets_[bid];
        for (EntityId e : b.left) {
          left_members_[lpos++] = e;  // E1 global id == local id
          entity_blocks_[cursor[e].fetch_add(1, std::memory_order_relaxed)] =
              static_cast<uint32_t>(bid);
        }
        size_t rpos = right_offsets_[bid];
        for (EntityId e : b.right) {
          const auto global = static_cast<uint32_t>(num_left_ + e);
          right_members_[rpos++] = global;
          entity_blocks_[cursor[global].fetch_add(
              1, std::memory_order_relaxed)] = static_cast<uint32_t>(bid);
        }
      }
    }
  });

  // Each entity's block list must be sorted ascending — an invariant
  // CommonBlocks() relies on. The sorted list is the same for any thread
  // count (it is a set ordered canonically), so determinism is preserved.
  ParallelFor(n_entities, num_threads, [&](size_t begin, size_t end) {
    for (size_t e = begin; e < end; ++e) {
      std::sort(entity_blocks_.begin() + entity_offsets_[e],
                entity_blocks_.begin() + entity_offsets_[e + 1]);
    }
  });

  // ---- Pass 3: per-entity aggregates. ----
  // Each entity's sums run over its own blocks in ascending order, exactly
  // as in the serial sweep, so the values are independent of threading.
  entity_comparisons_.assign(n_entities, 0.0);
  entity_inv_comparisons_.assign(n_entities, 0.0);
  entity_inv_sizes_.assign(n_entities, 0.0);
  ParallelFor(n_entities, num_threads, [&](size_t begin, size_t end) {
    for (size_t e = begin; e < end; ++e) {
      for (uint32_t bid : BlocksOf(e)) {
        entity_comparisons_[e] += block_comparisons_[bid];
        if (block_comparisons_[bid] > 0.0) {
          entity_inv_comparisons_[e] += 1.0 / block_comparisons_[bid];
        }
        entity_inv_sizes_[e] += 1.0 / static_cast<double>(block_size_[bid]);
      }
    }
  });
}

size_t EntityIndex::CommonBlocks(size_t global_a, size_t global_b) const {
  std::span<const uint32_t> a = BlocksOf(global_a);
  std::span<const uint32_t> b = BlocksOf(global_b);
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace gsmb
