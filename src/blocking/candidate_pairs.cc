#include "blocking/candidate_pairs.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace gsmb {

namespace {

// Pivots carry much more work each than candidate pairs do, so they chunk
// at a finer grain than kDefaultChunkGrain.
constexpr size_t kPivotChunkGrain = 1024;

}  // namespace

size_t NumCandidatePivots(const EntityIndex& index) {
  return index.clean_clean() ? index.num_left() : index.num_entities();
}

PivotNeighbourGenerator::PivotNeighbourGenerator(const EntityIndex& index)
    : index_(index), last_seen_(index.num_entities(), 0) {}

void PivotNeighbourGenerator::Generate(size_t pivot,
                                       std::vector<EntityId>* neighbours) {
  // Epoch-marked dedup: last_seen_[g] == current epoch means global entity
  // g was already collected for this pivot. Identical to the sweep inside
  // GenerateCandidatePairs.
  ++epoch_;
  neighbours->clear();
  const bool clean_clean = index_.clean_clean();
  const size_t num_left = index_.num_left();
  if (clean_clean) {
    for (uint32_t bid : index_.BlocksOf(pivot)) {
      for (uint32_t g : index_.BlockRightGlobals(bid)) {
        if (last_seen_[g] != epoch_) {
          last_seen_[g] = epoch_;
          neighbours->push_back(static_cast<EntityId>(g - num_left));
        }
      }
    }
  } else {
    for (uint32_t bid : index_.BlocksOf(pivot)) {
      for (uint32_t g : index_.BlockLeftGlobals(bid)) {
        // Keep only j > i: every unordered pair is emitted exactly once,
        // grouped under its smaller id.
        if (g > pivot && last_seen_[g] != epoch_) {
          last_seen_[g] = epoch_;
          neighbours->push_back(static_cast<EntityId>(g));
        }
      }
    }
  }
  std::sort(neighbours->begin(), neighbours->end());
}

std::vector<CandidatePair> GenerateCandidatePairs(const EntityIndex& index,
                                                  size_t num_threads) {
  const size_t num_pivots = NumCandidatePivots(index);

  // Pivot entities are independent, so the sweep parallelises over
  // fixed-grain pivot chunks: each worker keeps its own epoch-marked
  // scratch and fills chunk-owned output slots, which concatenate in chunk
  // order — the pair list is identical to the serial sweep for any thread
  // count.
  const std::vector<ChunkRange> chunks =
      DeterministicChunks(num_pivots, kPivotChunkGrain);
  std::vector<std::vector<CandidatePair>> parts(chunks.size());
  ParallelFor(chunks.size(), num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                PivotNeighbourGenerator generator(index);
                std::vector<EntityId> neighbours;
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  std::vector<CandidatePair>& out = parts[c];
                  for (size_t e = chunks[c].begin; e < chunks[c].end; ++e) {
                    generator.Generate(e, &neighbours);
                    for (EntityId right : neighbours) {
                      out.push_back({static_cast<EntityId>(e), right});
                    }
                  }
                }
              });

  return MergeChunkParts(&parts, num_threads);
}

size_t CountPositivePairs(const std::vector<CandidatePair>& pairs,
                          const GroundTruth& gt) {
  size_t count = 0;
  for (const CandidatePair& p : pairs) {
    if (gt.IsMatch(p.left, p.right)) ++count;
  }
  return count;
}

}  // namespace gsmb
