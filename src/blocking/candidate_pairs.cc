#include "blocking/candidate_pairs.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace gsmb {

namespace {

// Pivots carry much more work each than candidate pairs do, so they chunk
// at a finer grain than kDefaultChunkGrain.
constexpr size_t kPivotChunkGrain = 1024;

}  // namespace

std::vector<CandidatePair> GenerateCandidatePairs(const EntityIndex& index,
                                                  size_t num_threads) {
  const size_t num_entities = index.num_entities();
  const size_t num_left = index.num_left();
  const bool clean_clean = index.clean_clean();
  const size_t num_pivots = clean_clean ? num_left : num_entities;

  // Pivot entities are independent, so the sweep parallelises over
  // fixed-grain pivot chunks: each worker keeps its own epoch-marked
  // scratch (last_seen[g] == current epoch means global entity g was
  // already collected for the current pivot) and fills chunk-owned output
  // slots, which concatenate in chunk order — the pair list is identical
  // to the serial sweep for any thread count.
  const std::vector<ChunkRange> chunks =
      DeterministicChunks(num_pivots, kPivotChunkGrain);
  std::vector<std::vector<CandidatePair>> parts(chunks.size());
  ParallelFor(chunks.size(), num_threads, [&](size_t chunks_begin,
                                              size_t chunks_end) {
    std::vector<uint32_t> last_seen(num_entities, 0);
    std::vector<uint32_t> neighbours;
    uint32_t epoch = 0;
    for (size_t c = chunks_begin; c < chunks_end; ++c) {
      std::vector<CandidatePair>& out = parts[c];
      for (size_t e = chunks[c].begin; e < chunks[c].end; ++e) {
        ++epoch;
        neighbours.clear();
        if (clean_clean) {
          for (uint32_t bid : index.BlocksOf(e)) {
            for (uint32_t g : index.BlockRightGlobals(bid)) {
              if (last_seen[g] != epoch) {
                last_seen[g] = epoch;
                neighbours.push_back(g);
              }
            }
          }
        } else {
          for (uint32_t bid : index.BlocksOf(e)) {
            for (uint32_t g : index.BlockLeftGlobals(bid)) {
              // Keep only j > i: every unordered pair is emitted exactly
              // once, grouped under its smaller id.
              if (g > e && last_seen[g] != epoch) {
                last_seen[g] = epoch;
                neighbours.push_back(g);
              }
            }
          }
        }
        std::sort(neighbours.begin(), neighbours.end());
        for (uint32_t g : neighbours) {
          out.push_back({static_cast<EntityId>(e),
                         static_cast<EntityId>(clean_clean ? g - num_left
                                                           : g)});
        }
      }
    }
  });

  return MergeChunkParts(&parts, num_threads);
}

size_t CountPositivePairs(const std::vector<CandidatePair>& pairs,
                          const GroundTruth& gt) {
  size_t count = 0;
  for (const CandidatePair& p : pairs) {
    if (gt.IsMatch(p.left, p.right)) ++count;
  }
  return count;
}

}  // namespace gsmb
