#include "blocking/candidate_pairs.h"

#include <algorithm>

namespace gsmb {

std::vector<CandidatePair> GenerateCandidatePairs(const EntityIndex& index) {
  std::vector<CandidatePair> pairs;
  const size_t num_entities = index.num_entities();
  const size_t num_left = index.num_left();

  // Epoch-marked scratch array: last_seen[g] == current epoch means global
  // entity g was already collected for the current pivot entity.
  std::vector<uint32_t> last_seen(num_entities, 0);
  std::vector<uint32_t> neighbours;
  uint32_t epoch = 0;

  if (index.clean_clean()) {
    for (size_t e1 = 0; e1 < num_left; ++e1) {
      ++epoch;
      neighbours.clear();
      for (uint32_t bid : index.BlocksOf(e1)) {
        for (uint32_t g : index.BlockRightGlobals(bid)) {
          if (last_seen[g] != epoch) {
            last_seen[g] = epoch;
            neighbours.push_back(g);
          }
        }
      }
      std::sort(neighbours.begin(), neighbours.end());
      for (uint32_t g : neighbours) {
        pairs.push_back({static_cast<EntityId>(e1),
                         static_cast<EntityId>(g - num_left)});
      }
    }
  } else {
    for (size_t e = 0; e < num_entities; ++e) {
      ++epoch;
      neighbours.clear();
      for (uint32_t bid : index.BlocksOf(e)) {
        for (uint32_t g : index.BlockLeftGlobals(bid)) {
          // Keep only j > i: every unordered pair is emitted exactly once,
          // grouped under its smaller id.
          if (g > e && last_seen[g] != epoch) {
            last_seen[g] = epoch;
            neighbours.push_back(g);
          }
        }
      }
      std::sort(neighbours.begin(), neighbours.end());
      for (uint32_t g : neighbours) {
        pairs.push_back({static_cast<EntityId>(e), static_cast<EntityId>(g)});
      }
    }
  }
  return pairs;
}

size_t CountPositivePairs(const std::vector<CandidatePair>& pairs,
                          const GroundTruth& gt) {
  size_t count = 0;
  for (const CandidatePair& p : pairs) {
    if (gt.IsMatch(p.left, p.right)) ++count;
  }
  return count;
}

}  // namespace gsmb
