#include "blocking/suffix_blocking.h"

#include <algorithm>

#include "blocking/key_blocking.h"
#include "util/string_utils.h"

namespace gsmb {

namespace {

KeyFunction SuffixKeys(size_t min_len) {
  return [min_len](const EntityProfile& p) {
    std::vector<std::string> keys;
    for (const std::string& token : p.DistinctValueTokens()) {
      std::vector<std::string> sfx = Suffixes(token, min_len);
      keys.insert(keys.end(), std::make_move_iterator(sfx.begin()),
                  std::make_move_iterator(sfx.end()));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  };
}

}  // namespace

BlockCollection SuffixBlocking::CapBlocks(BlockCollection bc) const {
  BlockCollection out(bc.clean_clean(), bc.num_left_entities(),
                      bc.num_right_entities());
  for (Block& block : bc.mutable_blocks()) {
    if (block.Size() > max_block_size_) continue;
    out.Add(std::move(block));
  }
  return out;
}

BlockCollection SuffixBlocking::Build(const EntityCollection& e1,
                                      const EntityCollection& e2,
                                      size_t num_threads) const {
  return CapBlocks(BuildKeyBlocksCleanClean(e1, e2, SuffixKeys(min_length_),
                                            num_threads));
}

BlockCollection SuffixBlocking::Build(const EntityCollection& e,
                                      size_t num_threads) const {
  return CapBlocks(
      BuildKeyBlocksDirty(e, SuffixKeys(min_length_), num_threads));
}

}  // namespace gsmb
