// EntityIndex: the inverted entity-to-blocks index plus the per-entity and
// per-block aggregates every weighting scheme needs (paper Sections 2 and 4).
//
// Ids. Local ids index a single collection. Global ids unify both sources:
// an E1 entity keeps its id, an E2 entity becomes |E1| + local_id. Dirty ER
// uses local == global. Global ids let the node-centric pruning algorithms
// (WNP, BLAST, CNP, ...) use flat arrays instead of hash maps.
//
// Layout. Both directions (entity -> blocks, block -> members) are stored as
// CSR arrays for cache-friendly traversal; all aggregates are precomputed in
// one pass over the collection:
//   |B_i|            NumBlocksOf(e)
//   ||e_i||          EntityComparisons(e)        (EJS denominator)
//   Σ 1/||b||        SumInvBlockComparisons(e)   (WJS denominator)
//   Σ 1/|b|          SumInvBlockSizes(e)         (NRS denominator)

#ifndef GSMB_BLOCKING_ENTITY_INDEX_H_
#define GSMB_BLOCKING_ENTITY_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "blocking/block_collection.h"

namespace gsmb {

class EntityIndex {
 public:
  /// `num_threads` > 1 parallelises construction over fixed-grain block and
  /// entity chunks; every field is identical for any thread count (the
  /// floating-point totals are always folded in deterministic chunk order).
  explicit EntityIndex(const BlockCollection& bc, size_t num_threads = 1);

  bool clean_clean() const { return clean_clean_; }
  size_t num_left() const { return num_left_; }
  size_t num_right() const { return num_right_; }
  size_t num_entities() const { return num_left_ + num_right_; }

  /// |B|: number of blocks.
  size_t num_blocks() const { return block_size_.size(); }

  /// Global id of a local entity; `right_side` selects E2 (Clean-Clean).
  size_t GlobalId(bool right_side, EntityId local) const {
    return right_side ? num_left_ + local : local;
  }

  /// Sorted block ids containing the entity (|B_i| entries).
  std::span<const uint32_t> BlocksOf(size_t global_id) const {
    return {entity_blocks_.data() + entity_offsets_[global_id],
            entity_offsets_[global_id + 1] - entity_offsets_[global_id]};
  }

  size_t NumBlocksOf(size_t global_id) const {
    return entity_offsets_[global_id + 1] - entity_offsets_[global_id];
  }

  /// E1-side members of a block as global ids (all members for Dirty ER).
  std::span<const uint32_t> BlockLeftGlobals(uint32_t bid) const {
    return {left_members_.data() + left_offsets_[bid],
            left_offsets_[bid + 1] - left_offsets_[bid]};
  }

  /// E2-side members of a block as global ids (empty for Dirty ER).
  std::span<const uint32_t> BlockRightGlobals(uint32_t bid) const {
    return {right_members_.data() + right_offsets_[bid],
            right_offsets_[bid + 1] - right_offsets_[bid]};
  }

  /// |b|.
  size_t BlockSize(uint32_t bid) const { return block_size_[bid]; }
  /// ||b||.
  double BlockComparisons(uint32_t bid) const { return block_comparisons_[bid]; }

  /// ||B|| = Σ ||b||.
  double TotalComparisons() const { return total_comparisons_; }
  /// Σ |b| over all blocks.
  size_t TotalEntityOccurrences() const { return total_occurrences_; }

  /// ||e_i|| = Σ_{b ∈ B_i} ||b||.
  double EntityComparisons(size_t global_id) const {
    return entity_comparisons_[global_id];
  }
  /// Σ_{b ∈ B_i} 1/||b||.
  double SumInvBlockComparisons(size_t global_id) const {
    return entity_inv_comparisons_[global_id];
  }
  /// Σ_{b ∈ B_i} 1/|b|.
  double SumInvBlockSizes(size_t global_id) const {
    return entity_inv_sizes_[global_id];
  }

  /// |B_i ∩ B_j| via sorted-list intersection; O(|B_i| + |B_j|).
  size_t CommonBlocks(size_t global_a, size_t global_b) const;

 private:
  bool clean_clean_;
  size_t num_left_;
  size_t num_right_;

  // entity -> blocks (CSR over global ids).
  std::vector<size_t> entity_offsets_;
  std::vector<uint32_t> entity_blocks_;

  // block -> members (CSR; global ids).
  std::vector<size_t> left_offsets_;
  std::vector<uint32_t> left_members_;
  std::vector<size_t> right_offsets_;
  std::vector<uint32_t> right_members_;

  std::vector<uint32_t> block_size_;
  std::vector<double> block_comparisons_;

  double total_comparisons_ = 0.0;
  size_t total_occurrences_ = 0;

  std::vector<double> entity_comparisons_;
  std::vector<double> entity_inv_comparisons_;
  std::vector<double> entity_inv_sizes_;
};

}  // namespace gsmb

#endif  // GSMB_BLOCKING_ENTITY_INDEX_H_
