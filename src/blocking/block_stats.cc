#include "blocking/block_stats.h"

#include <algorithm>

namespace gsmb {

BlockCollectionStats ComputeBlockStats(const BlockCollection& bc) {
  BlockCollectionStats stats;
  stats.num_blocks = bc.size();
  stats.total_comparisons = bc.TotalComparisons();
  stats.total_occurrences = bc.TotalEntityOccurrences();
  for (const Block& b : bc.blocks()) {
    stats.max_block_size = std::max(stats.max_block_size, b.Size());
  }
  if (stats.num_blocks > 0) {
    stats.avg_block_size = static_cast<double>(stats.total_occurrences) /
                           static_cast<double>(stats.num_blocks);
  }
  stats.cep_k = static_cast<double>(stats.total_occurrences) / 2.0;
  const size_t entities = bc.NumEntities();
  if (entities > 0) {
    stats.cnp_k = std::max(1.0, static_cast<double>(stats.total_occurrences) /
                                    static_cast<double>(entities));
  } else {
    stats.cnp_k = 1.0;
  }
  return stats;
}

BlockingQuality EvaluateBlockingQuality(
    const std::vector<CandidatePair>& candidates, const GroundTruth& gt) {
  BlockingQuality q;
  q.num_candidates = candidates.size();
  q.duplicates_covered = CountPositivePairs(candidates, gt);
  if (!gt.empty()) {
    q.recall = static_cast<double>(q.duplicates_covered) /
               static_cast<double>(gt.size());
  }
  if (q.num_candidates > 0) {
    q.precision = static_cast<double>(q.duplicates_covered) /
                  static_cast<double>(q.num_candidates);
  }
  if (q.recall + q.precision > 0.0) {
    q.f1 = 2.0 * q.recall * q.precision / (q.recall + q.precision);
  }
  return q;
}

std::vector<size_t> CommonBlockHistogram(const EntityIndex& index,
                                         const GroundTruth& gt) {
  std::vector<size_t> histogram(1, 0);
  const size_t num_left = index.clean_clean() ? index.num_left() : 0;
  for (const MatchPair& m : gt.pairs()) {
    size_t a = m.left;
    size_t b = index.clean_clean() ? num_left + m.right : m.right;
    size_t common = index.CommonBlocks(a, b);
    if (histogram.size() <= common) histogram.resize(common + 1, 0);
    ++histogram[common];
  }
  return histogram;
}

}  // namespace gsmb
