// Shared machinery for key-based, redundancy-positive blocking methods.
//
// Token Blocking, Q-Grams Blocking and Suffix Arrays Blocking all follow the
// same recipe: derive a set of keys per profile, then create one block per
// key. They differ only in the key function, so they share this builder.

#ifndef GSMB_BLOCKING_KEY_BLOCKING_H_
#define GSMB_BLOCKING_KEY_BLOCKING_H_

#include <functional>
#include <string>
#include <vector>

#include "blocking/block_collection.h"
#include "er/entity_collection.h"

namespace gsmb {

/// Derives the blocking keys of one profile (distinct, order irrelevant).
/// Must be safe to call concurrently on distinct profiles: key extraction
/// parallelises over entity chunks.
using KeyFunction =
    std::function<std::vector<std::string>(const EntityProfile&)>;

/// Builds a Clean-Clean block collection: one block per key that appears in
/// *both* sources (keys confined to one source imply no comparison and are
/// dropped eagerly). Blocks are emitted in lexicographic key order so the
/// output is deterministic. `num_threads` > 1 parallelises key extraction
/// over fixed-grain entity chunks whose outputs fold in chunk order — the
/// collection is bit-identical for any thread count.
BlockCollection BuildKeyBlocksCleanClean(const EntityCollection& e1,
                                         const EntityCollection& e2,
                                         const KeyFunction& keys,
                                         size_t num_threads = 1);

/// As above, with a distinct key function per source. Attribute-clustering
/// blocking needs this: the cluster of an attribute name depends on which
/// collection it comes from.
BlockCollection BuildKeyBlocksCleanClean(const EntityCollection& e1,
                                         const EntityCollection& e2,
                                         const KeyFunction& keys1,
                                         const KeyFunction& keys2,
                                         size_t num_threads = 1);

/// Builds a Dirty block collection: one block per key shared by at least two
/// profiles of the single input collection.
BlockCollection BuildKeyBlocksDirty(const EntityCollection& e,
                                    const KeyFunction& keys,
                                    size_t num_threads = 1);

}  // namespace gsmb

#endif  // GSMB_BLOCKING_KEY_BLOCKING_H_
