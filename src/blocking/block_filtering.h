// Block Filtering (paper Section 5.1, after [Papadakis et al., EDBT 2016]).
//
// Removes every entity from the largest blocks it participates in: each
// entity is retained only in the smallest ceil(ratio * |B_i|) of its blocks.
// The paper uses ratio = 0.8, i.e. each entity leaves its largest 20% of
// blocks. This shrinks the candidate space dramatically while barely
// touching recall, because the information-bearing co-occurrences live in
// small blocks.

#ifndef GSMB_BLOCKING_BLOCK_FILTERING_H_
#define GSMB_BLOCKING_BLOCK_FILTERING_H_

#include "blocking/block_collection.h"

namespace gsmb {

class BlockFiltering {
 public:
  /// `ratio` is the fraction of (smallest) blocks each entity keeps.
  explicit BlockFiltering(double ratio = 0.8) : ratio_(ratio) {}

  /// Returns the filtered collection; blocks that end up implying no
  /// comparison are dropped. Block order is preserved.
  BlockCollection Apply(const BlockCollection& input) const;

  double ratio() const { return ratio_; }

 private:
  double ratio_;
};

}  // namespace gsmb

#endif  // GSMB_BLOCKING_BLOCK_FILTERING_H_
