#include "blocking/block_collection.h"

#include <algorithm>

namespace gsmb {

double Block::Comparisons(bool clean_clean) const {
  if (clean_clean) {
    return static_cast<double>(left.size()) *
           static_cast<double>(right.size());
  }
  double n = static_cast<double>(left.size());
  return n * (n - 1.0) / 2.0;
}

double BlockCollection::TotalComparisons() const {
  double total = 0.0;
  for (const Block& b : blocks_) total += b.Comparisons(clean_clean_);
  return total;
}

size_t BlockCollection::TotalEntityOccurrences() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.Size();
  return total;
}

size_t BlockCollection::DropEmptyBlocks() {
  size_t before = blocks_.size();
  blocks_.erase(std::remove_if(blocks_.begin(), blocks_.end(),
                               [this](const Block& b) {
                                 return b.Comparisons(clean_clean_) <= 0.0;
                               }),
                blocks_.end());
  return before - blocks_.size();
}

}  // namespace gsmb
