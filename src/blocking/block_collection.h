// Blocks and block collections (paper Section 2).
//
// A block groups entities that share a blocking key. For Clean-Clean ER a
// block keeps its E1 members and E2 members apart, because only cross-source
// pairs are candidates; for Dirty ER all members live in `left`.
//
// Throughout the library:
//   |b|  (Block::Size)         = number of entities in the block,
//   ||b|| (Block::Comparisons) = number of candidate pairs the block implies
//                                (including redundant ones),
//   |B|                        = number of blocks,
//   ||B|| (TotalComparisons)   = sum of ||b|| over all blocks.

#ifndef GSMB_BLOCKING_BLOCK_COLLECTION_H_
#define GSMB_BLOCKING_BLOCK_COLLECTION_H_

#include <string>
#include <vector>

#include "er/entity_profile.h"

namespace gsmb {

struct Block {
  /// The blocking key (token, q-gram, suffix, ...). Kept for debuggability;
  /// the algorithms never read it.
  std::string key;

  /// Clean-Clean ER: ids from E1. Dirty ER: all member ids.
  std::vector<EntityId> left;

  /// Clean-Clean ER: ids from E2. Dirty ER: unused (empty).
  std::vector<EntityId> right;

  /// |b|: total number of entities in the block.
  size_t Size() const { return left.size() + right.size(); }

  /// ||b||: candidate pairs implied by this block, including redundant ones.
  /// Clean-Clean: |left| * |right|; Dirty: |b| * (|b| - 1) / 2.
  double Comparisons(bool clean_clean) const;
};

class BlockCollection {
 public:
  BlockCollection() : clean_clean_(true), num_left_(0), num_right_(0) {}
  BlockCollection(bool clean_clean, size_t num_left, size_t num_right)
      : clean_clean_(clean_clean),
        num_left_(num_left),
        num_right_(num_right) {}

  bool clean_clean() const { return clean_clean_; }

  /// |E1| (or |E| for Dirty ER).
  size_t num_left_entities() const { return num_left_; }
  /// |E2| (0 for Dirty ER).
  size_t num_right_entities() const { return num_right_; }
  /// Total profiles across sources.
  size_t NumEntities() const { return num_left_ + num_right_; }

  size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }

  const Block& operator[](size_t i) const { return blocks_[i]; }
  Block& operator[](size_t i) { return blocks_[i]; }
  const std::vector<Block>& blocks() const { return blocks_; }
  std::vector<Block>& mutable_blocks() { return blocks_; }

  void Add(Block block) { blocks_.push_back(std::move(block)); }
  void Reserve(size_t n) { blocks_.reserve(n); }

  /// ||B||: total comparisons, including redundant ones.
  double TotalComparisons() const;

  /// Sum of |b| over all blocks — the paper's cardinality budget base for
  /// CEP (K = sum/2) and CNP (k = max(1, sum / #entities)).
  size_t TotalEntityOccurrences() const;

  /// Removes blocks that imply no comparison (single-source or singleton
  /// blocks). Keeps relative order. Returns the number of blocks dropped.
  size_t DropEmptyBlocks();

 private:
  bool clean_clean_;
  size_t num_left_;
  size_t num_right_;
  std::vector<Block> blocks_;
};

}  // namespace gsmb

#endif  // GSMB_BLOCKING_BLOCK_COLLECTION_H_
