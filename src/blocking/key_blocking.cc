#include "blocking/key_blocking.h"

#include <map>
#include <utility>

#include "util/thread_pool.h"

namespace gsmb {

namespace {

// Key extraction (tokenising every attribute value) dominates the cost of
// building the table, so profiles chunk finely enough to load-balance.
constexpr size_t kExtractChunkGrain = 256;

// Accumulates key -> (E1 members, E2 members). std::map keeps keys in
// lexicographic order, which makes block ids deterministic across runs and
// platforms.
using KeyTable =
    std::map<std::string, std::pair<std::vector<EntityId>,
                                    std::vector<EntityId>>>;

// Chunk-and-merge extraction: each fixed-grain entity chunk extracts its
// (key, id) rows in scan order, then the chunk outputs fold into the table
// in ascending chunk order — member ids therefore arrive ascending exactly
// as the serial scan produced them, for any thread count. Only the fold
// (cheap map inserts and pushes) stays serial.
void Accumulate(const EntityCollection& collection, bool into_left,
                const KeyFunction& keys, size_t num_threads,
                KeyTable* table) {
  const std::vector<ChunkRange> chunks =
      DeterministicChunks(collection.size(), kExtractChunkGrain);
  std::vector<std::vector<std::pair<std::string, EntityId>>> parts(
      chunks.size());
  ParallelFor(chunks.size(), num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  std::vector<std::pair<std::string, EntityId>>& out =
                      parts[c];
                  for (size_t e = chunks[c].begin; e < chunks[c].end; ++e) {
                    const auto id = static_cast<EntityId>(e);
                    for (std::string& key : keys(collection[id])) {
                      out.emplace_back(std::move(key), id);
                    }
                  }
                }
              });

  for (std::vector<std::pair<std::string, EntityId>>& part : parts) {
    for (auto& [key, id] : part) {
      auto& entry = (*table)[std::move(key)];
      if (into_left) {
        entry.first.push_back(id);
      } else {
        entry.second.push_back(id);
      }
    }
    std::vector<std::pair<std::string, EntityId>>().swap(part);
  }
}

}  // namespace

BlockCollection BuildKeyBlocksCleanClean(const EntityCollection& e1,
                                         const EntityCollection& e2,
                                         const KeyFunction& keys,
                                         size_t num_threads) {
  return BuildKeyBlocksCleanClean(e1, e2, keys, keys, num_threads);
}

BlockCollection BuildKeyBlocksCleanClean(const EntityCollection& e1,
                                         const EntityCollection& e2,
                                         const KeyFunction& keys1,
                                         const KeyFunction& keys2,
                                         size_t num_threads) {
  KeyTable table;
  Accumulate(e1, /*into_left=*/true, keys1, num_threads, &table);
  Accumulate(e2, /*into_left=*/false, keys2, num_threads, &table);

  BlockCollection out(/*clean_clean=*/true, e1.size(), e2.size());
  for (auto& [key, members] : table) {
    if (members.first.empty() || members.second.empty()) continue;
    Block b;
    b.key = key;
    b.left = std::move(members.first);
    b.right = std::move(members.second);
    out.Add(std::move(b));
  }
  return out;
}

BlockCollection BuildKeyBlocksDirty(const EntityCollection& e,
                                    const KeyFunction& keys,
                                    size_t num_threads) {
  KeyTable table;
  Accumulate(e, /*into_left=*/true, keys, num_threads, &table);

  BlockCollection out(/*clean_clean=*/false, e.size(), 0);
  for (auto& [key, members] : table) {
    if (members.first.size() < 2) continue;
    Block b;
    b.key = key;
    b.left = std::move(members.first);
    out.Add(std::move(b));
  }
  return out;
}

}  // namespace gsmb
