#include "blocking/key_blocking.h"

#include <map>
#include <utility>

namespace gsmb {

namespace {

// Accumulates key -> (E1 members, E2 members). std::map keeps keys in
// lexicographic order, which makes block ids deterministic across runs and
// platforms; blocking is not a hot path compared to meta-blocking itself.
using KeyTable =
    std::map<std::string, std::pair<std::vector<EntityId>,
                                    std::vector<EntityId>>>;

void Accumulate(const EntityCollection& collection, bool into_left,
                const KeyFunction& keys, KeyTable* table) {
  for (EntityId id = 0; id < collection.size(); ++id) {
    for (std::string& key : keys(collection[id])) {
      auto& entry = (*table)[std::move(key)];
      if (into_left) {
        entry.first.push_back(id);
      } else {
        entry.second.push_back(id);
      }
    }
  }
}

}  // namespace

BlockCollection BuildKeyBlocksCleanClean(const EntityCollection& e1,
                                         const EntityCollection& e2,
                                         const KeyFunction& keys) {
  KeyTable table;
  Accumulate(e1, /*into_left=*/true, keys, &table);
  Accumulate(e2, /*into_left=*/false, keys, &table);

  BlockCollection out(/*clean_clean=*/true, e1.size(), e2.size());
  for (auto& [key, members] : table) {
    if (members.first.empty() || members.second.empty()) continue;
    Block b;
    b.key = key;
    b.left = std::move(members.first);
    b.right = std::move(members.second);
    out.Add(std::move(b));
  }
  return out;
}

BlockCollection BuildKeyBlocksDirty(const EntityCollection& e,
                                    const KeyFunction& keys) {
  KeyTable table;
  Accumulate(e, /*into_left=*/true, keys, &table);

  BlockCollection out(/*clean_clean=*/false, e.size(), 0);
  for (auto& [key, members] : table) {
    if (members.first.size() < 2) continue;
    Block b;
    b.key = key;
    b.left = std::move(members.first);
    out.Add(std::move(b));
  }
  return out;
}

}  // namespace gsmb
