// Token Blocking (paper Section 5.1, "Blocking").
//
// The only parameter-free redundancy-positive blocking method: a block is
// created for every distinct token that appears in the attribute values of a
// profile, regardless of the attribute it comes from (schema-agnostic).
// Extensive studies show this simple scheme achieves near-perfect recall on
// heterogeneous data, at the cost of very low precision — which is exactly
// the regime Meta-blocking addresses.

#ifndef GSMB_BLOCKING_TOKEN_BLOCKING_H_
#define GSMB_BLOCKING_TOKEN_BLOCKING_H_

#include "blocking/block_collection.h"
#include "er/entity_collection.h"

namespace gsmb {

class TokenBlocking {
 public:
  /// Minimum token length to use as a key; length-1 tokens are usually
  /// punctuation debris. The paper's pipeline relies on Block Purging to
  /// drop stop-word blocks, so the default keeps everything >= 1 char.
  explicit TokenBlocking(size_t min_token_length = 1)
      : min_token_length_(min_token_length) {}

  /// Clean-Clean ER: blocks over two duplicate-free collections.
  /// `num_threads` > 1 parallelises key extraction (chunk-and-merge);
  /// the collection is bit-identical for any thread count.
  BlockCollection Build(const EntityCollection& e1,
                        const EntityCollection& e2,
                        size_t num_threads = 1) const;

  /// Dirty ER: blocks over a single collection.
  BlockCollection Build(const EntityCollection& e,
                        size_t num_threads = 1) const;

 private:
  size_t min_token_length_;
};

}  // namespace gsmb

#endif  // GSMB_BLOCKING_TOKEN_BLOCKING_H_
