#include "blocking/qgram_blocking.h"

#include <algorithm>

#include "blocking/key_blocking.h"
#include "util/string_utils.h"

namespace gsmb {

namespace {

KeyFunction QGramKeys(size_t q) {
  return [q](const EntityProfile& p) {
    std::vector<std::string> keys;
    for (const std::string& token : p.DistinctValueTokens()) {
      std::vector<std::string> grams = QGrams(token, q);
      keys.insert(keys.end(), std::make_move_iterator(grams.begin()),
                  std::make_move_iterator(grams.end()));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  };
}

}  // namespace

BlockCollection QGramBlocking::Build(const EntityCollection& e1,
                                     const EntityCollection& e2,
                                     size_t num_threads) const {
  return BuildKeyBlocksCleanClean(e1, e2, QGramKeys(q_), num_threads);
}

BlockCollection QGramBlocking::Build(const EntityCollection& e,
                                     size_t num_threads) const {
  return BuildKeyBlocksDirty(e, QGramKeys(q_), num_threads);
}

}  // namespace gsmb
