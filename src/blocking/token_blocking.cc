#include "blocking/token_blocking.h"

#include "blocking/key_blocking.h"

namespace gsmb {

namespace {

KeyFunction TokenKeys(size_t min_len) {
  return [min_len](const EntityProfile& p) {
    std::vector<std::string> tokens = p.DistinctValueTokens();
    if (min_len > 1) {
      std::erase_if(tokens,
                    [min_len](const std::string& t) { return t.size() < min_len; });
    }
    return tokens;
  };
}

}  // namespace

BlockCollection TokenBlocking::Build(const EntityCollection& e1,
                                     const EntityCollection& e2,
                                     size_t num_threads) const {
  return BuildKeyBlocksCleanClean(e1, e2, TokenKeys(min_token_length_),
                                  num_threads);
}

BlockCollection TokenBlocking::Build(const EntityCollection& e,
                                     size_t num_threads) const {
  return BuildKeyBlocksDirty(e, TokenKeys(min_token_length_), num_threads);
}

}  // namespace gsmb
