// Block-collection statistics and quality evaluation.
//
// Covers Table 1 (dataset/candidate statistics), Table 2 (blocking recall /
// precision / F1) and Figures 15/16 (distribution of common blocks across
// duplicate pairs) of the paper.

#ifndef GSMB_BLOCKING_BLOCK_STATS_H_
#define GSMB_BLOCKING_BLOCK_STATS_H_

#include <vector>

#include "blocking/block_collection.h"
#include "blocking/candidate_pairs.h"
#include "blocking/entity_index.h"
#include "er/ground_truth.h"

namespace gsmb {

struct BlockCollectionStats {
  size_t num_blocks = 0;           // |B|
  double total_comparisons = 0;    // ||B||
  size_t total_occurrences = 0;    // Σ |b|
  size_t max_block_size = 0;
  double avg_block_size = 0;
  /// CEP budget: K = Σ|b| / 2 (paper Section 3.2).
  double cep_k = 0;
  /// CNP per-entity budget: k = max(1, Σ|b| / #entities).
  double cnp_k = 0;
};

BlockCollectionStats ComputeBlockStats(const BlockCollection& bc);

/// Effectiveness of a candidate set against the ground truth:
///   recall    = |C ∩ D| / |D|        (Pairs Completeness)
///   precision = |C ∩ D| / |C|        (Pairs Quality)
///   f1        = harmonic mean.
struct BlockingQuality {
  size_t num_candidates = 0;
  size_t duplicates_covered = 0;
  double recall = 0;
  double precision = 0;
  double f1 = 0;
};

BlockingQuality EvaluateBlockingQuality(
    const std::vector<CandidatePair>& candidates, const GroundTruth& gt);

/// Histogram over the duplicate pairs of the number of blocks each pair
/// shares: result[n] = #duplicate pairs with exactly n common blocks.
/// result[0] counts the duplicates missed by the block collection entirely;
/// result[1] counts the ones (Generalized) Supervised Meta-blocking is prone
/// to lose — the key diagnostic of Figures 15/16.
std::vector<size_t> CommonBlockHistogram(const EntityIndex& index,
                                         const GroundTruth& gt);

}  // namespace gsmb

#endif  // GSMB_BLOCKING_BLOCK_STATS_H_
