// Platt scaling: maps raw SVM decision values to calibrated probabilities.
//
// Implements the numerically robust Newton variant of Lin, Lu & Weng (2007),
// which is what scikit-learn runs when SVC(probability=True) is requested —
// the configuration the paper uses. Fits P(y=1|f) = 1 / (1 + exp(A*f + B)).

#ifndef GSMB_ML_PLATT_H_
#define GSMB_ML_PLATT_H_

#include <vector>

namespace gsmb {

class PlattScaler {
 public:
  /// Fits (A, B) on decision values and binary labels (1 = positive).
  /// Uses Platt's smoothed targets to avoid overconfident endpoints.
  void Fit(const std::vector<double>& decision_values,
           const std::vector<int>& labels);

  /// Calibrated probability for a raw decision value.
  double Transform(double decision_value) const;

  double a() const { return a_; }
  double b() const { return b_; }
  bool fitted() const { return fitted_; }

 private:
  double a_ = -1.0;
  double b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace gsmb

#endif  // GSMB_ML_PLATT_H_
