#include "ml/logistic_regression.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gsmb {

double LogisticRegression::Sigmoid(double z) {
  // Branch keeps exp() argument negative -> no overflow on either tail.
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

void LogisticRegression::Fit(const Matrix& x, const std::vector<int>& labels) {
  if (x.rows() == 0 || x.rows() != labels.size()) {
    throw std::invalid_argument(
        "LogisticRegression::Fit: empty data or label size mismatch");
  }
  const size_t n = x.rows();
  const size_t d = x.cols();

  scaler_.Fit(x);
  Matrix xs = scaler_.Transform(x);

  // Parameter vector beta = [w_0..w_{d-1}, intercept].
  const size_t p = d + 1;
  std::vector<double> beta(p, 0.0);

  std::vector<double> hessian(p * p);
  std::vector<double> step(p);
  last_iterations_ = 0;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // Gradient of the regularised negative log-likelihood and the Hessian
    // X^T S X + lambda I (intercept unregularised, as is conventional).
    std::fill(hessian.begin(), hessian.end(), 0.0);
    std::fill(step.begin(), step.end(), 0.0);

    for (size_t r = 0; r < n; ++r) {
      const double* row = xs.Row(r);
      double z = beta[d];
      for (size_t c = 0; c < d; ++c) z += beta[c] * row[c];
      double mu = Sigmoid(z);
      double residual = static_cast<double>(labels[r]) - mu;
      double s = mu * (1.0 - mu);
      // Keep the Hessian positive definite even for saturated points.
      if (s < 1e-10) s = 1e-10;

      for (size_t c = 0; c < d; ++c) step[c] += residual * row[c];
      step[d] += residual;

      for (size_t a = 0; a < d; ++a) {
        const double sa = s * row[a];
        for (size_t b = a; b < d; ++b) hessian[a * p + b] += sa * row[b];
        hessian[a * p + d] += sa;
      }
      hessian[d * p + d] += s;
    }
    // Mirror the upper triangle and add the ridge.
    for (size_t a = 0; a < p; ++a) {
      for (size_t b = 0; b < a; ++b) hessian[a * p + b] = hessian[b * p + a];
    }
    for (size_t c = 0; c < d; ++c) {
      step[c] -= options_.l2_lambda * beta[c];
      hessian[c * p + c] += options_.l2_lambda;
    }

    if (!SolveLinearSystem(&hessian, &step, p)) {
      // Singular despite the ridge (e.g. duplicate constant columns):
      // bail out with the current estimate rather than diverge.
      break;
    }
    double max_delta = 0.0;
    for (size_t c = 0; c < p; ++c) {
      beta[c] += step[c];
      max_delta = std::max(max_delta, std::fabs(step[c]));
    }
    ++last_iterations_;
    if (max_delta < options_.tolerance) break;
  }

  weights_.assign(beta.begin(), beta.begin() + d);
  intercept_ = beta[d];
}

double LogisticRegression::PredictProbability(const double* row) const {
  assert(scaler_.fitted());
  double z = intercept_;
  const std::vector<double>& mean = scaler_.mean();
  const std::vector<double>& std = scaler_.std();
  for (size_t c = 0; c < weights_.size(); ++c) {
    z += weights_[c] * (row[c] - mean[c]) / std[c];
  }
  return Sigmoid(z);
}

std::vector<double> LogisticRegression::CoefficientsWithIntercept() const {
  // Fold the standardisation into the coefficients so they apply to raw
  // features: w'_c = w_c / std_c, b' = b - sum(w_c * mean_c / std_c).
  std::vector<double> out(weights_.size() + 1, 0.0);
  double b = intercept_;
  for (size_t c = 0; c < weights_.size(); ++c) {
    out[c] = weights_[c] / scaler_.std()[c];
    b -= weights_[c] * scaler_.mean()[c] / scaler_.std()[c];
  }
  out.back() = b;
  return out;
}

}  // namespace gsmb
