// Probabilistic binary classifiers (paper Section 2.1.1).
//
// Generalized Supervised Meta-blocking needs a classifier that emits
// P(match | feature vector) in [0, 1]; the probability becomes the edge
// weight that the pruning algorithms threshold. The paper uses sklearn's
// SVC (with Platt-scaled probabilities) and Weka's logistic regression and
// reports "almost identical results" for the two — both are provided here,
// implemented from scratch.

#ifndef GSMB_ML_CLASSIFIER_H_
#define GSMB_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "util/matrix.h"

namespace gsmb {

enum class ClassifierKind {
  kLogisticRegression,
  kLinearSvc,
  kGaussianNaiveBayes,
};

const char* ClassifierKindName(ClassifierKind kind);

class ProbabilisticClassifier {
 public:
  virtual ~ProbabilisticClassifier() = default;

  /// Trains on labelled rows; `labels[i]` in {0, 1} (1 = match).
  /// Implementations standardise features internally.
  virtual void Fit(const Matrix& x, const std::vector<int>& labels) = 0;

  /// P(match) for one *raw* (unscaled) feature row of the fitted width.
  virtual double PredictProbability(const double* row) const = 0;

  /// P(match) for every row of `x`. Rows are independent, so
  /// `num_threads` > 1 parallelises with bit-identical results.
  std::vector<double> PredictBatch(const Matrix& x,
                                   size_t num_threads = 1) const;

  /// Linear coefficients in the *original* (unscaled) feature space,
  /// followed by the intercept — the representation Table 6 of the paper
  /// reports. Empty when the model is not linear or not fitted.
  virtual std::vector<double> CoefficientsWithIntercept() const = 0;

  virtual std::string Name() const = 0;
};

/// Factory. `seed` feeds any stochastic part of training (e.g. SGD
/// shuffling); both provided models are deterministic given the seed.
std::unique_ptr<ProbabilisticClassifier> MakeClassifier(ClassifierKind kind,
                                                        uint64_t seed = 0);

}  // namespace gsmb

#endif  // GSMB_ML_CLASSIFIER_H_
