// Balanced training-set sampling (paper Sections 1.1 and 5.1).
//
// ER suffers extreme class imbalance — almost all candidate pairs are
// negative — so Supervised Meta-blocking undersamples: the training set has
// the same number of positive and negative instances. The paper's central
// finding on training size is that 25 + 25 labelled pairs suffice.

#ifndef GSMB_ML_SAMPLER_H_
#define GSMB_ML_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace gsmb {

/// Indices into the candidate-pair array plus their labels (1 = match).
struct TrainingSet {
  std::vector<size_t> row_indices;
  std::vector<int> labels;

  size_t size() const { return row_indices.size(); }
};

/// Draws up to `per_class` positives and `per_class` negatives uniformly at
/// random without replacement. `is_positive[i]` labels candidate i. When a
/// class has fewer members than requested, all of them are taken (and the
/// set is no longer perfectly balanced — mirroring what any practical
/// labelling effort would do).
TrainingSet SampleBalanced(const std::vector<uint8_t>& is_positive,
                           size_t per_class, Rng* rng);

/// The training-set size rule of the original Supervised Meta-blocking
/// paper: 5% of the positive (minority) class in the ground truth, per
/// class, with at least one instance.
size_t FivePercentRuleSize(size_t num_ground_truth_matches);

}  // namespace gsmb

#endif  // GSMB_ML_SAMPLER_H_
