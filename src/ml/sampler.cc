#include "ml/sampler.h"

#include <algorithm>
#include <cmath>

namespace gsmb {

TrainingSet SampleBalanced(const std::vector<uint8_t>& is_positive,
                           size_t per_class, Rng* rng) {
  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t i = 0; i < is_positive.size(); ++i) {
    (is_positive[i] ? positives : negatives).push_back(i);
  }

  auto draw = [&](std::vector<size_t>& pool) {
    std::vector<size_t> chosen = rng->SampleWithoutReplacement(
        pool.size(), std::min(per_class, pool.size()));
    std::vector<size_t> out;
    out.reserve(chosen.size());
    for (size_t k : chosen) out.push_back(pool[k]);
    std::sort(out.begin(), out.end());
    return out;
  };

  TrainingSet ts;
  for (size_t i : draw(positives)) {
    ts.row_indices.push_back(i);
    ts.labels.push_back(1);
  }
  for (size_t i : draw(negatives)) {
    ts.row_indices.push_back(i);
    ts.labels.push_back(0);
  }
  return ts;
}

size_t FivePercentRuleSize(size_t num_ground_truth_matches) {
  return std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(0.05 * static_cast<double>(num_ground_truth_matches))));
}

}  // namespace gsmb
