#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gsmb {

void GaussianNaiveBayes::Fit(const Matrix& x, const std::vector<int>& labels) {
  if (x.rows() == 0 || x.rows() != labels.size()) {
    throw std::invalid_argument(
        "GaussianNaiveBayes::Fit: empty data or label size mismatch");
  }
  const size_t n = x.rows();
  const size_t d = x.cols();

  scaler_.Fit(x);
  Matrix xs = scaler_.Transform(x);

  size_t counts[2] = {0, 0};
  for (int c = 0; c < 2; ++c) {
    mean_[c].assign(d, 0.0);
    variance_[c].assign(d, 0.0);
  }
  for (size_t r = 0; r < n; ++r) {
    const int c = labels[r] > 0 ? 1 : 0;
    ++counts[c];
    const double* row = xs.Row(r);
    for (size_t f = 0; f < d; ++f) mean_[c][f] += row[f];
  }
  for (int c = 0; c < 2; ++c) {
    has_class_[c] = counts[c] > 0;
    if (!has_class_[c]) continue;
    for (size_t f = 0; f < d; ++f) {
      mean_[c][f] /= static_cast<double>(counts[c]);
    }
  }
  double max_variance = 0.0;
  for (size_t r = 0; r < n; ++r) {
    const int c = labels[r] > 0 ? 1 : 0;
    const double* row = xs.Row(r);
    for (size_t f = 0; f < d; ++f) {
      const double diff = row[f] - mean_[c][f];
      variance_[c][f] += diff * diff;
    }
  }
  for (int c = 0; c < 2; ++c) {
    if (!has_class_[c]) continue;
    for (size_t f = 0; f < d; ++f) {
      variance_[c][f] /= static_cast<double>(counts[c]);
      max_variance = std::max(max_variance, variance_[c][f]);
    }
  }
  const double floor = std::max(options_.var_smoothing * max_variance, 1e-12);
  for (int c = 0; c < 2; ++c) {
    for (size_t f = 0; f < d; ++f) {
      variance_[c][f] = std::max(variance_[c][f], floor);
    }
  }
  for (int c = 0; c < 2; ++c) {
    log_prior_[c] = has_class_[c]
                        ? std::log(static_cast<double>(counts[c]) /
                                   static_cast<double>(n))
                        : -1e30;
  }
}

double GaussianNaiveBayes::PredictProbability(const double* row) const {
  // Degenerate single-class training: predict that class outright.
  if (!has_class_[0]) return 1.0;
  if (!has_class_[1]) return 0.0;

  const size_t d = mean_[0].size();
  std::vector<double> scaled(row, row + d);
  scaler_.TransformRow(scaled.data());

  double log_like[2] = {log_prior_[0], log_prior_[1]};
  for (int c = 0; c < 2; ++c) {
    for (size_t f = 0; f < d; ++f) {
      const double diff = scaled[f] - mean_[c][f];
      log_like[c] -= 0.5 * (std::log(2.0 * M_PI * variance_[c][f]) +
                            diff * diff / variance_[c][f]);
    }
  }
  // P(match) = softmax over the two joint log-likelihoods, numerically
  // stable via the max trick.
  const double m = std::max(log_like[0], log_like[1]);
  const double e0 = std::exp(log_like[0] - m);
  const double e1 = std::exp(log_like[1] - m);
  return e1 / (e0 + e1);
}

}  // namespace gsmb
