#include "ml/platt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gsmb {

void PlattScaler::Fit(const std::vector<double>& decision_values,
                      const std::vector<int>& labels) {
  if (decision_values.size() != labels.size() || decision_values.empty()) {
    throw std::invalid_argument("PlattScaler::Fit: size mismatch/empty");
  }
  const size_t n = decision_values.size();
  double num_pos = 0.0;
  for (int y : labels) num_pos += (y > 0) ? 1.0 : 0.0;
  const double num_neg = static_cast<double>(n) - num_pos;

  // Platt's smoothed target probabilities.
  const double hi = (num_pos + 1.0) / (num_pos + 2.0);
  const double lo = 1.0 / (num_neg + 2.0);
  std::vector<double> t(n);
  for (size_t i = 0; i < n; ++i) t[i] = (labels[i] > 0) ? hi : lo;

  // Newton's method with backtracking on (A, B); Lin-Lu-Weng formulation.
  double A = 0.0;
  double B = std::log((num_neg + 1.0) / (num_pos + 1.0));
  const double min_step = 1e-10;
  const double sigma = 1e-12;  // Hessian ridge

  auto objective = [&](double a, double b) {
    double obj = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z = a * decision_values[i] + b;
      // Cross-entropy written to avoid catastrophic cancellation.
      if (z >= 0.0) {
        obj += t[i] * z + std::log1p(std::exp(-z));
      } else {
        obj += (t[i] - 1.0) * z + std::log1p(std::exp(z));
      }
    }
    return obj;
  };

  double obj = objective(A, B);
  for (int iter = 0; iter < 100; ++iter) {
    double h11 = sigma, h22 = sigma, h21 = 0.0, g1 = 0.0, g2 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z = A * decision_values[i] + B;
      double p, q;  // p = P(y=1), q = 1-p, computed stably
      if (z >= 0.0) {
        double e = std::exp(-z);
        p = e / (1.0 + e);
        q = 1.0 / (1.0 + e);
      } else {
        double e = std::exp(z);
        p = 1.0 / (1.0 + e);
        q = e / (1.0 + e);
      }
      double d2 = p * q;
      h11 += decision_values[i] * decision_values[i] * d2;
      h22 += d2;
      h21 += decision_values[i] * d2;
      double d1 = t[i] - p;
      g1 += decision_values[i] * d1;
      g2 += d1;
    }
    if (std::fabs(g1) < 1e-5 && std::fabs(g2) < 1e-5) break;

    double det = h11 * h22 - h21 * h21;
    double dA = -(h22 * g1 - h21 * g2) / det;
    double dB = -(-h21 * g1 + h11 * g2) / det;
    double gd = g1 * dA + g2 * dB;

    double step = 1.0;
    while (step >= min_step) {
      double new_a = A + step * dA;
      double new_b = B + step * dB;
      double new_obj = objective(new_a, new_b);
      if (new_obj < obj + 1e-4 * step * gd) {
        A = new_a;
        B = new_b;
        obj = new_obj;
        break;
      }
      step /= 2.0;
    }
    if (step < min_step) break;  // line search failed; accept current point
  }

  a_ = A;
  b_ = B;
  fitted_ = true;
}

double PlattScaler::Transform(double decision_value) const {
  double z = a_ * decision_value + b_;
  // P(y=1|f) = 1/(1+exp(A f + B)), computed stably on both tails.
  if (z >= 0.0) {
    double e = std::exp(-z);
    return e / (1.0 + e);
  }
  return 1.0 / (1.0 + std::exp(z));
}

}  // namespace gsmb
