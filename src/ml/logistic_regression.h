// L2-regularised logistic regression fitted with IRLS (Newton-Raphson).
//
// The training sets in (Generalized) Supervised Meta-blocking are tiny
// (20-500 rows, <= 9 features), so the exact Newton solve is both the
// fastest and the most deterministic option — mirroring Weka's
// "Logistic" (ridge-regularised) used by the paper's scalability study.

#ifndef GSMB_ML_LOGISTIC_REGRESSION_H_
#define GSMB_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "ml/classifier.h"
#include "ml/scaler.h"
#include "util/matrix.h"

namespace gsmb {

class LogisticRegression : public ProbabilisticClassifier {
 public:
  struct Options {
    /// Ridge strength on the scaled features (lambda = 1/C in sklearn
    /// terms; the default corresponds to C = 10, within the regime of the
    /// paper's classifiers). Strong enough that probabilities stay spread
    /// over (0, 1) instead of saturating at the extremes.
    double l2_lambda = 0.1;
    size_t max_iterations = 100;
    double tolerance = 1e-9;  ///< stop when max |Δw| falls below this
  };

  LogisticRegression() : LogisticRegression(Options{}) {}
  explicit LogisticRegression(Options options) : options_(options) {}

  void Fit(const Matrix& x, const std::vector<int>& labels) override;
  double PredictProbability(const double* row) const override;
  std::vector<double> CoefficientsWithIntercept() const override;
  std::string Name() const override { return "LogisticRegression"; }

  /// Number of Newton iterations the last Fit() took.
  size_t last_iterations() const { return last_iterations_; }

  static double Sigmoid(double z);

 private:
  Options options_;
  StandardScaler scaler_;
  std::vector<double> weights_;  // scaled space; size = #features
  double intercept_ = 0.0;       // scaled space
  size_t last_iterations_ = 0;
};

}  // namespace gsmb

#endif  // GSMB_ML_LOGISTIC_REGRESSION_H_
