// Gaussian Naive Bayes — a third probabilistic classifier.
//
// The paper argues its results are robust to the choice of classifier
// (SVC and logistic regression "almost identical"). Naive Bayes offers a
// structurally different model family to validate that claim in this
// reproduction: per-class Gaussian likelihoods per feature, combined with
// the class priors through Bayes' rule. Training is closed-form (one pass
// of moments), hence the fastest of the three.

#ifndef GSMB_ML_NAIVE_BAYES_H_
#define GSMB_ML_NAIVE_BAYES_H_

#include <vector>

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace gsmb {

class GaussianNaiveBayes : public ProbabilisticClassifier {
 public:
  struct Options {
    /// Variance floor, as a fraction of the largest per-feature variance —
    /// sklearn's var_smoothing. Prevents zero-variance features from
    /// producing degenerate likelihoods.
    double var_smoothing = 1e-9;
  };

  GaussianNaiveBayes() : GaussianNaiveBayes(Options{}) {}
  explicit GaussianNaiveBayes(Options options) : options_(options) {}

  void Fit(const Matrix& x, const std::vector<int>& labels) override;
  double PredictProbability(const double* row) const override;

  /// Naive Bayes is not a linear model; returns empty.
  std::vector<double> CoefficientsWithIntercept() const override {
    return {};
  }
  std::string Name() const override { return "GaussianNaiveBayes"; }

 private:
  Options options_;
  StandardScaler scaler_;
  // Per class (0 = negative, 1 = positive): log prior, per-feature mean
  // and variance in scaled space.
  double log_prior_[2] = {0.0, 0.0};
  std::vector<double> mean_[2];
  std::vector<double> variance_[2];
  bool has_class_[2] = {false, false};
};

}  // namespace gsmb

#endif  // GSMB_ML_NAIVE_BAYES_H_
