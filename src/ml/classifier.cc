#include "ml/classifier.h"

#include "ml/linear_svc.h"
#include "ml/naive_bayes.h"
#include "ml/logistic_regression.h"
#include "util/thread_pool.h"

namespace gsmb {

const char* ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kLogisticRegression:
      return "LogisticRegression";
    case ClassifierKind::kLinearSvc:
      return "LinearSVC";
    case ClassifierKind::kGaussianNaiveBayes:
      return "GaussianNaiveBayes";
  }
  return "unknown";
}

std::vector<double> ProbabilisticClassifier::PredictBatch(
    const Matrix& x, size_t num_threads) const {
  std::vector<double> probs(x.rows());
  ParallelFor(x.rows(), num_threads, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      probs[r] = PredictProbability(x.Row(r));
    }
  });
  return probs;
}

std::unique_ptr<ProbabilisticClassifier> MakeClassifier(ClassifierKind kind,
                                                        uint64_t seed) {
  switch (kind) {
    case ClassifierKind::kLogisticRegression:
      return std::make_unique<LogisticRegression>();
    case ClassifierKind::kLinearSvc:
      return std::make_unique<LinearSvc>(LinearSvc::Options{}, seed);
    case ClassifierKind::kGaussianNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>();
  }
  return nullptr;
}

}  // namespace gsmb
