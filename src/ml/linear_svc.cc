#include "ml/linear_svc.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gsmb {

namespace {

// Objective and gradient of 0.5||w||^2 + C * sum max(0, 1 - y f)^2 over
// scaled features. `params` = [w_0..w_{d-1}, b]; the intercept is
// unregularised.
double Objective(const Matrix& xs, const std::vector<double>& y,
                 const std::vector<double>& params, double c) {
  const size_t d = xs.cols();
  double obj = 0.0;
  for (size_t k = 0; k < d; ++k) obj += 0.5 * params[k] * params[k];
  for (size_t r = 0; r < xs.rows(); ++r) {
    const double* row = xs.Row(r);
    double f = params[d];
    for (size_t k = 0; k < d; ++k) f += params[k] * row[k];
    double margin = 1.0 - y[r] * f;
    if (margin > 0.0) obj += c * margin * margin;
  }
  return obj;
}

void Gradient(const Matrix& xs, const std::vector<double>& y,
              const std::vector<double>& params, double c,
              std::vector<double>* grad) {
  const size_t d = xs.cols();
  grad->assign(d + 1, 0.0);
  for (size_t k = 0; k < d; ++k) (*grad)[k] = params[k];
  for (size_t r = 0; r < xs.rows(); ++r) {
    const double* row = xs.Row(r);
    double f = params[d];
    for (size_t k = 0; k < d; ++k) f += params[k] * row[k];
    double margin = 1.0 - y[r] * f;
    if (margin > 0.0) {
      double coeff = -2.0 * c * y[r] * margin;
      for (size_t k = 0; k < d; ++k) (*grad)[k] += coeff * row[k];
      (*grad)[d] += coeff;
    }
  }
}

}  // namespace

void LinearSvc::Fit(const Matrix& x, const std::vector<int>& labels) {
  if (x.rows() == 0 || x.rows() != labels.size()) {
    throw std::invalid_argument(
        "LinearSvc::Fit: empty data or label size mismatch");
  }
  const size_t n = x.rows();
  const size_t d = x.cols();

  scaler_.Fit(x);
  Matrix xs = scaler_.Transform(x);

  std::vector<double> y(n);
  for (size_t r = 0; r < n; ++r) y[r] = labels[r] > 0 ? 1.0 : -1.0;

  std::vector<double> params(d + 1, 0.0);
  std::vector<double> grad;
  std::vector<double> trial(d + 1);

  double obj = Objective(xs, y, params, options_.c);
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    Gradient(xs, y, params, options_.c, &grad);
    double grad_norm2 = 0.0;
    for (double g : grad) grad_norm2 += g * g;
    if (std::sqrt(grad_norm2) < options_.tolerance) break;

    // Armijo backtracking line search along the steepest descent direction.
    double step = 1.0;
    bool accepted = false;
    while (step > 1e-12) {
      for (size_t k = 0; k <= d; ++k) trial[k] = params[k] - step * grad[k];
      double trial_obj = Objective(xs, y, trial, options_.c);
      if (trial_obj <= obj - 1e-4 * step * grad_norm2) {
        params.swap(trial);
        obj = trial_obj;
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;  // no further progress possible
  }

  weights_.assign(params.begin(), params.begin() + d);
  intercept_ = params[d];

  // Calibrate probabilities on the training decision values.
  std::vector<double> decisions(n);
  for (size_t r = 0; r < n; ++r) {
    const double* row = xs.Row(r);
    double f = intercept_;
    for (size_t k = 0; k < d; ++k) f += weights_[k] * row[k];
    decisions[r] = f;
  }
  platt_.Fit(decisions, labels);
}

double LinearSvc::DecisionValue(const double* row) const {
  assert(scaler_.fitted());
  double f = intercept_;
  const std::vector<double>& mean = scaler_.mean();
  const std::vector<double>& std = scaler_.std();
  for (size_t k = 0; k < weights_.size(); ++k) {
    f += weights_[k] * (row[k] - mean[k]) / std[k];
  }
  return f;
}

double LinearSvc::PredictProbability(const double* row) const {
  return platt_.Transform(DecisionValue(row));
}

std::vector<double> LinearSvc::CoefficientsWithIntercept() const {
  std::vector<double> out(weights_.size() + 1, 0.0);
  double b = intercept_;
  for (size_t k = 0; k < weights_.size(); ++k) {
    out[k] = weights_[k] / scaler_.std()[k];
    b -= weights_[k] * scaler_.mean()[k] / scaler_.std()[k];
  }
  out.back() = b;
  return out;
}

}  // namespace gsmb
