// Feature standardisation (z-scoring).
//
// The classifiers fit on at most a few hundred rows of features whose raw
// magnitudes differ by orders of magnitude (CF-IBF grows with log^2 |B|, JS
// lives in [0,1]). Standardising with statistics of the *training* rows
// keeps IRLS/GD well conditioned; the transform is affine and monotone per
// feature, so the learned decision surface is equivalent.

#ifndef GSMB_ML_SCALER_H_
#define GSMB_ML_SCALER_H_

#include <vector>

#include "util/matrix.h"

namespace gsmb {

class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation. Zero-variance columns
  /// get std = 1 so they pass through centred.
  void Fit(const Matrix& x);

  /// Returns (x - mean) / std column-wise. Requires Fit() first.
  Matrix Transform(const Matrix& x) const;

  /// In-place transform of a single row (length = #fitted columns).
  void TransformRow(double* row) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& std() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace gsmb

#endif  // GSMB_ML_SCALER_H_
