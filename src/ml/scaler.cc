#include "ml/scaler.h"

#include <cassert>
#include <cmath>

namespace gsmb {

void StandardScaler::Fit(const Matrix& x) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  if (n == 0) return;
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.Row(r);
    for (size_t c = 0; c < d; ++c) mean_[c] += row[c];
  }
  for (size_t c = 0; c < d; ++c) mean_[c] /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.Row(r);
    for (size_t c = 0; c < d; ++c) {
      double diff = row[c] - mean_[c];
      var[c] += diff * diff;
    }
  }
  for (size_t c = 0; c < d; ++c) {
    double s = std::sqrt(var[c] / static_cast<double>(n));
    std_[c] = (s > 1e-12) ? s : 1.0;
  }
}

Matrix StandardScaler::Transform(const Matrix& x) const {
  assert(fitted() && x.cols() == mean_.size());
  Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* src = x.Row(r);
    double* dst = out.Row(r);
    for (size_t c = 0; c < x.cols(); ++c) {
      dst[c] = (src[c] - mean_[c]) / std_[c];
    }
  }
  return out;
}

void StandardScaler::TransformRow(double* row) const {
  for (size_t c = 0; c < mean_.size(); ++c) {
    row[c] = (row[c] - mean_[c]) / std_[c];
  }
}

}  // namespace gsmb
