// Linear SVM with squared-hinge loss, calibrated with Platt scaling.
//
// Stands in for scikit-learn's SVC(probability=True) used in the paper's
// main experiments. Training minimises
//     0.5 ||w||^2 + C * sum_i max(0, 1 - y_i (w.x_i + b))^2
// by batch gradient descent with Armijo backtracking — exact enough for the
// tiny training sets of Supervised Meta-blocking and fully deterministic.
// (sklearn calibrates on cross-validated decision values; with <= 500
// training rows we calibrate on the training decision values directly,
// which the tests show preserves the probability ordering.)

#ifndef GSMB_ML_LINEAR_SVC_H_
#define GSMB_ML_LINEAR_SVC_H_

#include <cstdint>
#include <vector>

#include "ml/classifier.h"
#include "ml/platt.h"
#include "ml/scaler.h"

namespace gsmb {

class LinearSvc : public ProbabilisticClassifier {
 public:
  struct Options {
    double c = 1.0;  ///< soft-margin penalty (sklearn's C)
    size_t max_iterations = 500;
    double tolerance = 1e-7;  ///< stop when the gradient norm falls below
  };

  LinearSvc() : LinearSvc(Options{}, 0) {}
  explicit LinearSvc(Options options, uint64_t seed = 0)
      : options_(options), seed_(seed) {}

  void Fit(const Matrix& x, const std::vector<int>& labels) override;
  double PredictProbability(const double* row) const override;
  std::vector<double> CoefficientsWithIntercept() const override;
  std::string Name() const override { return "LinearSVC"; }

  /// Raw (uncalibrated) decision value w.x + b for a raw feature row.
  double DecisionValue(const double* row) const;

  const PlattScaler& platt() const { return platt_; }

 private:
  Options options_;
  uint64_t seed_;  // reserved for stochastic variants; GD itself is exact
  StandardScaler scaler_;
  std::vector<double> weights_;  // scaled space
  double intercept_ = 0.0;
  PlattScaler platt_;
};

}  // namespace gsmb

#endif  // GSMB_ML_LINEAR_SVC_H_
