// StreamingExecutor: bounded-memory, out-of-core execution of the full
// weight -> classify -> prune pipeline.
//
// The batch path (RunMetaBlocking) holds the candidate set, the feature
// matrix, and the probability vector in RAM at once — O(|C|) each, which
// caps it well below the paper's X10 scalability series. The executor
// instead slices the GLOBAL candidate order into contiguous, chunk-aligned
// shards and drains them one at a time through a reusable arena:
//
//   regenerate shard pairs -> features (core/features.cc, global index)
//   -> classify -> feed the shard's chunks to the pruning aggregator
//   -> fold -> next shard
//
// Pruning algorithms that need global per-entity state (WEP's mean, WNP's
// and BLAST's per-node aggregates) take a second sweep that re-scores each
// shard and applies the finalized thresholds; BCl needs one sweep and the
// cardinality kinds (CEP/CNP/RCNP) emit straight from their folded top-k
// structures. Peak memory is O(largest shard + |E| + aggregates), never
// O(|C|).
//
// Bit-identity. The retained set equals RunMetaBlocking's for EVERY shard
// count and thread count, by construction rather than by luck:
//   * shards are whole numbers of the same DeterministicChunks the batch
//     pruners use, processed in ascending order, so per-chunk partials
//     fold in exactly the batch fold order (floating-point addition is not
//     associative — this ordering is the load-bearing invariant);
//   * a feature row is a pure function of (pivot, neighbour) and the
//     global EntityIndex, so per-shard extraction reproduces the batch
//     matrix rows bit for bit (core/features.cc sweeps the pivot's blocks
//     identically regardless of which rows are requested);
//   * the trainer replays the batch path's balanced sample exactly — same
//     Rng draw sequence via SampleWithoutReplacementSparse, same training
//     rows, same row order — so the fitted model is identical.
//
// Deliberate departure from the serving layer (serve/session.h): serving
// hash-shards TOKENS so a shard is refreshable in isolation; here shards
// must replay the batch fold order, so they are contiguous chunk-aligned
// slices of the candidate space instead. The shared discipline is the
// bounded per-shard arena, not the hash.

#ifndef GSMB_STREAM_STREAMING_EXECUTOR_H_
#define GSMB_STREAM_STREAMING_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "blocking/candidate_pairs.h"
#include "core/pipeline.h"
#include "stream/streaming_dataset.h"

namespace gsmb {

/// Arena bytes one candidate occupies while a shard is resident: the pair,
/// its feature row, its probability, plus slack for the per-chunk
/// aggregation partials. PlanShards sizes shards with this, and the
/// Engine's `auto` mode uses the SAME model to decide batch vs streaming —
/// one function so the two can never drift apart.
inline constexpr uint64_t StreamingArenaBytesPerPair(size_t feature_dims) {
  return sizeof(CandidatePair) + 8ull * feature_dims + 8 + 8;
}

struct StreamingOptions {
  /// Number of contiguous, chunk-aligned slices of the candidate space.
  /// More shards = smaller arena = lower peak memory (and slightly more
  /// per-shard overhead). Clamped to the number of chunks; results are
  /// identical for ANY value.
  size_t num_shards = 16;
  /// When > 0, the shard count is raised (never lowered) until one shard's
  /// arena — pairs + feature rows + probabilities — fits this budget. The
  /// budget covers the arena, not the resident EntityIndex/aggregates,
  /// which are O(|E|) and shared with the batch path.
  size_t memory_budget_mb = 0;
};

struct StreamingResult {
  EffectivenessMetrics metrics;
  /// Phase-time breakdown from the telemetry clock (obs::ScopedPhase);
  /// the `*_seconds` fields below are views of it.
  obs::PhaseTimings phases;
  /// RT components, seconds. `generate_seconds` (pair regeneration, a cost
  /// the batch path pays during preparation instead) is included in
  /// `total_seconds` so streaming-vs-batch wall-clock comparisons are fair.
  double generate_seconds = 0.0;
  double feature_seconds = 0.0;
  double train_seconds = 0.0;
  double classify_seconds = 0.0;
  double prune_seconds = 0.0;
  double total_seconds = 0.0;
  size_t training_size = 0;
  /// Classifier coefficients in raw feature space, intercept last —
  /// bit-identical to the batch path's.
  std::vector<double> model_coefficients;
  /// Populated only when config.keep_retained is set (it is O(retained)).
  std::vector<uint32_t> retained_indices;

  // Execution shape, for benches and diagnostics.
  size_t num_shards_used = 0;
  size_t max_shard_candidates = 0;  ///< arena high-water mark, in pairs
  size_t sweeps = 0;                ///< full passes over the candidate space
};

class StreamingExecutor {
 public:
  /// Receives every retained candidate in ascending global-index order:
  /// its index in the batch candidate order, the pair, and the classifier
  /// probability that retained it. Runs on the calling thread.
  using RetainedSink =
      std::function<void(uint32_t index, const CandidatePair& pair,
                         double probability)>;

  /// Throws std::invalid_argument when `options` is unusable (no shards
  /// and no memory budget).
  StreamingExecutor(const StreamingDataset& dataset, StreamingOptions options);

  /// Runs one configuration end to end. The retained set — and therefore
  /// metrics and coefficients — is bit-identical to
  /// RunMetaBlocking(PreparedDataset, config) on the same input blocks,
  /// for any shard/thread combination.
  StreamingResult Run(const MetaBlockingConfig& config) const {
    return Run(config, RetainedSink());
  }
  StreamingResult Run(const MetaBlockingConfig& config,
                      const RetainedSink& sink) const;

 private:
  struct ShardSlice {
    size_t chunk_begin = 0;  // [chunk_begin, chunk_end) of the chunk table
    size_t chunk_end = 0;
    size_t first_index = 0;  // [first_index, end_index) candidate indices
    size_t end_index = 0;
  };

  /// The shard's reusable buffers; one live instance per Run().
  struct ShardArena;

  std::vector<ShardSlice> PlanShards(size_t num_chunks,
                                     size_t feature_dims) const;
  /// Pivot owning global candidate index `index`.
  size_t PivotOf(uint64_t index) const;
  /// Regenerates pairs [shard.first_index, shard.end_index), extracts
  /// features and classifies them into `arena`.
  void FillArena(const ShardSlice& shard, const MetaBlockingConfig& config,
                 const ProbabilisticClassifier& model,
                 const std::vector<double>* lcp, ShardArena* arena,
                 StreamingResult* timings) const;

  const StreamingDataset& dataset_;
  StreamingOptions options_;
};

}  // namespace gsmb

#endif  // GSMB_STREAM_STREAMING_EXECUTOR_H_
