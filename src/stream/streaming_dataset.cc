#include "stream/streaming_dataset.h"

#include <stdexcept>
#include <utility>

#include "blocking/candidate_pairs.h"
#include "blocking/token_blocking.h"
#include "util/thread_pool.h"

namespace gsmb {

namespace {

// Mirrors the pivot chunking of blocking/candidate_pairs.cc.
constexpr size_t kPivotChunkGrain = 1024;

// A ground-truth match found during the counting sweep, addressed by its
// (pivot, rank-within-pivot) position so it can be turned into a global
// candidate index once the prefix sums exist.
struct LocalPositive {
  uint64_t pivot;
  uint64_t rank;
};

StreamingDataset FinishStreamingPreparation(const std::string& name,
                                            BlockCollection blocks,
                                            GroundTruth ground_truth,
                                            size_t num_threads) {
  StreamingDataset prep;
  prep.name = name;
  prep.clean_clean = blocks.clean_clean();
  prep.ground_truth = std::move(ground_truth);
  prep.blocks = std::move(blocks);
  prep.index = std::make_unique<EntityIndex>(prep.blocks, num_threads);
  prep.stats = ComputeBlockStats(prep.blocks);

  // One counting sweep: per-pivot candidate counts plus the positions of
  // the ground-truth matches among them. Chunk-owned outputs concatenate
  // in chunk order, so both results are identical for any thread count.
  const EntityIndex& index = *prep.index;
  const size_t num_pivots = NumCandidatePivots(index);
  std::vector<uint64_t> counts(num_pivots, 0);
  const std::vector<ChunkRange> chunks =
      DeterministicChunks(num_pivots, kPivotChunkGrain);
  std::vector<std::vector<LocalPositive>> positive_parts(chunks.size());
  ParallelFor(chunks.size(), num_threads,
              [&](size_t chunks_begin, size_t chunks_end) {
                PivotNeighbourGenerator generator(index);
                std::vector<EntityId> neighbours;
                for (size_t c = chunks_begin; c < chunks_end; ++c) {
                  for (size_t p = chunks[c].begin; p < chunks[c].end; ++p) {
                    generator.Generate(p, &neighbours);
                    counts[p] = neighbours.size();
                    for (size_t rank = 0; rank < neighbours.size(); ++rank) {
                      if (prep.ground_truth.IsMatch(
                              static_cast<EntityId>(p), neighbours[rank])) {
                        positive_parts[c].push_back({p, rank});
                      }
                    }
                  }
                }
              });

  prep.pivot_offsets.resize(num_pivots + 1, 0);
  for (size_t p = 0; p < num_pivots; ++p) {
    prep.pivot_offsets[p + 1] = prep.pivot_offsets[p] + counts[p];
  }

  // Chunks ascending, pivots ascending within a chunk, ranks ascending
  // within a pivot => global indices ascending.
  for (const std::vector<LocalPositive>& part : positive_parts) {
    for (const LocalPositive& positive : part) {
      prep.positive_indices.push_back(prep.pivot_offsets[positive.pivot] +
                                      positive.rank);
    }
  }

  prep.blocking_quality.num_candidates =
      static_cast<size_t>(prep.num_candidates());
  prep.blocking_quality.duplicates_covered = prep.positive_indices.size();
  if (!prep.ground_truth.empty()) {
    prep.blocking_quality.recall =
        static_cast<double>(prep.blocking_quality.duplicates_covered) /
        static_cast<double>(prep.ground_truth.size());
  }
  if (prep.blocking_quality.num_candidates > 0) {
    prep.blocking_quality.precision =
        static_cast<double>(prep.blocking_quality.duplicates_covered) /
        static_cast<double>(prep.blocking_quality.num_candidates);
  }
  if (prep.blocking_quality.recall + prep.blocking_quality.precision > 0.0) {
    prep.blocking_quality.f1 = 2.0 * prep.blocking_quality.recall *
                               prep.blocking_quality.precision /
                               (prep.blocking_quality.recall +
                                prep.blocking_quality.precision);
  }
  return prep;
}

}  // namespace

StreamingDataset PrepareStreamingCleanClean(const std::string& name,
                                            const EntityCollection& e1,
                                            const EntityCollection& e2,
                                            GroundTruth ground_truth,
                                            const BlockingOptions& options) {
  if (ground_truth.dirty()) {
    throw std::invalid_argument(
        "PrepareStreamingCleanClean: ground truth has Dirty-ER semantics");
  }
  BlockCollection raw = TokenBlocking(options.min_token_length)
      .Build(e1, e2, options.execution.num_threads);
  return FinishStreamingPreparation(
      name, PreprocessBlocks(std::move(raw), options),
      std::move(ground_truth), options.execution.num_threads);
}

StreamingDataset PrepareStreamingDirty(const std::string& name,
                                       const EntityCollection& e,
                                       GroundTruth ground_truth,
                                       const BlockingOptions& options) {
  if (!ground_truth.dirty()) {
    throw std::invalid_argument(
        "PrepareStreamingDirty: ground truth has Clean-Clean semantics");
  }
  BlockCollection raw = TokenBlocking(options.min_token_length)
      .Build(e, options.execution.num_threads);
  return FinishStreamingPreparation(
      name, PreprocessBlocks(std::move(raw), options),
      std::move(ground_truth), options.execution.num_threads);
}

StreamingDataset PrepareStreamingFromBlocks(const std::string& name,
                                            BlockCollection blocks,
                                            GroundTruth ground_truth,
                                            size_t num_threads) {
  return FinishStreamingPreparation(name, std::move(blocks),
                                    std::move(ground_truth), num_threads);
}

}  // namespace gsmb
