// StreamingDataset: batch-preprocessing state for the bounded-memory
// executor — everything PreparedDataset holds EXCEPT the O(|C|) arrays.
//
// The batch preparation (core/pipeline.h) materialises the candidate set,
// its labels, and later the full feature matrix — all O(|C|). What the
// streaming executor actually needs to regenerate any slice of the global
// candidate order on demand is only:
//
//   pivot_offsets      prefix sums of the per-pivot candidate counts; the
//                      pair at global index i belongs to the pivot p with
//                      pivot_offsets[p] <= i < pivot_offsets[p+1], and its
//                      partner is that pivot's (i - pivot_offsets[p])-th
//                      distinct neighbour. O(#pivots).
//   positive_indices   the global candidate indices that are ground-truth
//                      matches, ascending. O(|D ∩ C|) — this is what lets
//                      the trainer replicate the batch path's balanced
//                      sample without an is_positive byte per candidate.
//
// Both are produced by one counting sweep over the entity index (the same
// per-pivot enumeration GenerateCandidatePairs performs, minus the pair
// storage), which also yields the Table-2 blocking-quality numbers.

#ifndef GSMB_STREAM_STREAMING_DATASET_H_
#define GSMB_STREAM_STREAMING_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blocking/block_collection.h"
#include "blocking/block_stats.h"
#include "blocking/entity_index.h"
#include "core/pipeline.h"
#include "er/entity_collection.h"
#include "er/ground_truth.h"

namespace gsmb {

struct StreamingDataset {
  std::string name;
  bool clean_clean = true;
  GroundTruth ground_truth;
  BlockCollection blocks;  // after purging + filtering
  std::unique_ptr<EntityIndex> index;
  BlockCollectionStats stats;
  BlockingQuality blocking_quality;  // Table 2 row, counted streamingly

  /// Prefix sums of per-pivot candidate counts; size NumCandidatePivots+1.
  std::vector<uint64_t> pivot_offsets;
  /// Ascending global candidate indices that are ground-truth matches.
  std::vector<uint64_t> positive_indices;

  uint64_t num_candidates() const {
    return pivot_offsets.empty() ? 0 : pivot_offsets.back();
  }
};

/// Streaming analogues of PrepareCleanClean / PrepareDirty /
/// PrepareFromBlocks: identical Token Blocking -> Block Purging -> Block
/// Filtering preprocessing (so the implied candidate set is bit-identical
/// to the batch path's), but the candidates themselves are only counted.
StreamingDataset PrepareStreamingCleanClean(const std::string& name,
                                            const EntityCollection& e1,
                                            const EntityCollection& e2,
                                            GroundTruth ground_truth,
                                            const BlockingOptions& options = {});

StreamingDataset PrepareStreamingDirty(const std::string& name,
                                       const EntityCollection& e,
                                       GroundTruth ground_truth,
                                       const BlockingOptions& options = {});

StreamingDataset PrepareStreamingFromBlocks(const std::string& name,
                                            BlockCollection blocks,
                                            GroundTruth ground_truth,
                                            size_t num_threads = 1);

}  // namespace gsmb

#endif  // GSMB_STREAM_STREAMING_DATASET_H_
