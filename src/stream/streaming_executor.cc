#include "stream/streaming_executor.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "core/features.h"
#include "core/pruning_aggregates.h"
#include "gsmb/telemetry.h"
#include "ml/sampler.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace gsmb {

namespace {

// Mirrors the pivot chunking of blocking/candidate_pairs.cc.
constexpr size_t kPivotChunkGrain = 1024;

constexpr size_t kNoPivot = std::numeric_limits<size_t>::max();

/// Replays SampleBalanced (ml/sampler.cc) without an is_positive byte per
/// candidate: the positive pool is the explicit ascending index list, the
/// negative pool is its complement in [0, num_candidates). The Rng draw
/// sequence — positives first, then negatives, partial Fisher-Yates each —
/// is identical, so the selected rows and their order are identical.
TrainingSet SampleBalancedFromPlan(const std::vector<uint64_t>& positives,
                                   uint64_t num_candidates, size_t per_class,
                                   Rng* rng) {
  const size_t num_pos = positives.size();
  const auto num_neg = static_cast<size_t>(num_candidates) - num_pos;

  std::vector<size_t> pos_ranks = rng->SampleWithoutReplacementSparse(
      num_pos, std::min(per_class, num_pos));
  std::vector<uint64_t> pos_chosen;
  pos_chosen.reserve(pos_ranks.size());
  for (size_t rank : pos_ranks) pos_chosen.push_back(positives[rank]);
  std::sort(pos_chosen.begin(), pos_chosen.end());

  std::vector<size_t> neg_ranks = rng->SampleWithoutReplacementSparse(
      num_neg, std::min(per_class, num_neg));
  // The k-th negative is the k-th candidate index that is not positive:
  // idx = rank + (#positives <= idx), resolved by a merged sweep over the
  // ascending ranks. Ascending ranks map to ascending indices, so the
  // mapped list is already the sorted order the batch sampler produces.
  std::sort(neg_ranks.begin(), neg_ranks.end());
  std::vector<uint64_t> neg_chosen;
  neg_chosen.reserve(neg_ranks.size());
  size_t skipped = 0;
  for (size_t rank : neg_ranks) {
    while (skipped < num_pos && positives[skipped] <= rank + skipped) {
      ++skipped;
    }
    neg_chosen.push_back(rank + skipped);
  }

  TrainingSet ts;
  for (uint64_t i : pos_chosen) {
    ts.row_indices.push_back(static_cast<size_t>(i));
    ts.labels.push_back(1);
  }
  for (uint64_t i : neg_chosen) {
    ts.row_indices.push_back(static_cast<size_t>(i));
    ts.labels.push_back(0);
  }
  return ts;
}

}  // namespace

struct StreamingExecutor::ShardArena {
  std::vector<CandidatePair> pairs;
  Matrix features;
  std::vector<double> probabilities;
};

StreamingExecutor::StreamingExecutor(const StreamingDataset& dataset,
                                     StreamingOptions options)
    : dataset_(dataset), options_(options) {
  if (options_.num_shards == 0 && options_.memory_budget_mb == 0) {
    throw std::invalid_argument(
        "StreamingExecutor: options need num_shards > 0 or a positive "
        "memory budget");
  }
}

std::vector<StreamingExecutor::ShardSlice> StreamingExecutor::PlanShards(
    size_t num_chunks, size_t feature_dims) const {
  const uint64_t n = dataset_.num_candidates();
  size_t shards = options_.num_shards;
  if (options_.memory_budget_mb > 0) {
    const uint64_t budget_bytes = static_cast<uint64_t>(
                                      options_.memory_budget_mb)
                                  << 20;
    const uint64_t bytes_per_pair = StreamingArenaBytesPerPair(feature_dims);
    const uint64_t pairs_per_shard =
        std::max<uint64_t>(1, budget_bytes / bytes_per_pair);
    const uint64_t derived =
        n == 0 ? 1 : (n + pairs_per_shard - 1) / pairs_per_shard;
    shards = std::max(shards, static_cast<size_t>(derived));
  }
  shards = std::clamp<size_t>(shards, 1, std::max<size_t>(1, num_chunks));

  std::vector<ShardSlice> slices;
  if (num_chunks == 0) return slices;
  const size_t base = num_chunks / shards;
  const size_t extra = num_chunks % shards;
  size_t chunk = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t take = base + (s < extra ? 1 : 0);
    if (take == 0) continue;
    ShardSlice slice;
    slice.chunk_begin = chunk;
    slice.chunk_end = chunk + take;
    slice.first_index = chunk * kDefaultChunkGrain;
    slice.end_index = std::min<size_t>(static_cast<size_t>(n),
                                       slice.chunk_end * kDefaultChunkGrain);
    slices.push_back(slice);
    chunk += take;
  }
  return slices;
}

size_t StreamingExecutor::PivotOf(uint64_t index) const {
  const std::vector<uint64_t>& offsets = dataset_.pivot_offsets;
  auto it = std::upper_bound(offsets.begin(), offsets.end(), index);
  return static_cast<size_t>(it - offsets.begin()) - 1;
}

void StreamingExecutor::FillArena(const ShardSlice& shard,
                                  const MetaBlockingConfig& config,
                                  const ProbabilisticClassifier& model,
                                  const std::vector<double>* lcp,
                                  ShardArena* arena,
                                  StreamingResult* timings) const {
  const EntityIndex& index = *dataset_.index;
  const std::vector<uint64_t>& offsets = dataset_.pivot_offsets;

  // ---- Regenerate the shard's slice of the global candidate order. ----
  {
    obs::ScopedPhase phase(&timings->phases, obs::Phase::kPairs);
    arena->pairs.resize(shard.end_index - shard.first_index);
    const size_t pivot_begin = PivotOf(shard.first_index);
    const size_t pivot_end = PivotOf(shard.end_index - 1) + 1;
    const std::vector<ChunkRange> pivot_chunks =
        DeterministicChunks(pivot_end - pivot_begin, kPivotChunkGrain);
    ParallelFor(
        pivot_chunks.size(), config.execution.num_threads,
        [&](size_t chunks_begin, size_t chunks_end) {
          PivotNeighbourGenerator generator(index);
          std::vector<EntityId> neighbours;
          for (size_t c = chunks_begin; c < chunks_end; ++c) {
            for (size_t p = pivot_chunks[c].begin; p < pivot_chunks[c].end;
                 ++p) {
              const size_t pivot = pivot_begin + p;
              const uint64_t begin =
                  std::max<uint64_t>(offsets[pivot], shard.first_index);
              const uint64_t end =
                  std::min<uint64_t>(offsets[pivot + 1], shard.end_index);
              if (begin >= end) continue;  // empty pivot, or boundary overlap
              generator.Generate(pivot, &neighbours);
              for (uint64_t i = begin; i < end; ++i) {
                arena->pairs[i - shard.first_index] = {
                    static_cast<EntityId>(pivot),
                    neighbours[i - offsets[pivot]]};
              }
            }
          }
        });
  }

  // ---- Features (against the GLOBAL index: rows are bit-identical to the
  // corresponding rows of the batch path's full matrix). ----
  {
    obs::ScopedPhase phase(&timings->phases, obs::Phase::kFeatures);
    FeatureExtractor extractor(index, arena->pairs);
    arena->features = extractor.Compute(config.features,
                                        config.execution.num_threads, lcp);
  }

  // ---- Classify. ----
  {
    obs::ScopedPhase phase(&timings->phases, obs::Phase::kClassify);
    arena->probabilities =
        model.PredictBatch(arena->features, config.execution.num_threads);
  }
}

StreamingResult StreamingExecutor::Run(const MetaBlockingConfig& config,
                                       const RetainedSink& sink) const {
  const EntityIndex& index = *dataset_.index;
  const uint64_t n64 = dataset_.num_candidates();
  if (n64 > std::numeric_limits<uint32_t>::max()) {
    throw std::runtime_error(
        "StreamingExecutor: candidate count exceeds the 32-bit pair index "
        "space shared with the batch path");
  }
  const auto n = static_cast<size_t>(n64);
  const std::vector<ChunkRange> chunks = DeterministicChunks(n);

  StreamingResult result;
  const std::vector<ShardSlice> shards =
      PlanShards(chunks.size(), config.features.Dimensions());
  result.num_shards_used = shards.size();
  for (const ShardSlice& shard : shards) {
    result.max_shard_candidates = std::max(
        result.max_shard_candidates, shard.end_index - shard.first_index);
  }
  obs::GaugeMax("arena.bytes.peak",
                static_cast<double>(result.max_shard_candidates *
                                    StreamingArenaBytesPerPair(
                                        config.features.Dimensions())));

  // ---- LCP once, reused by every per-shard extraction. ----
  static const std::vector<CandidatePair> kNoPairs;
  std::vector<double> lcp;
  const std::vector<double>* lcp_ptr = nullptr;
  if (config.features.Contains(Feature::kLcp)) {
    obs::ScopedPhase phase(&result.phases, obs::Phase::kFeatures);
    lcp = FeatureExtractor(index, kNoPairs)
              .ComputeLcpPerEntity(config.execution.num_threads);
    lcp_ptr = &lcp;
  }

  // ---- Training: replay of the batch sample, rows and fit. ----
  std::unique_ptr<ProbabilisticClassifier> model;
  {
  obs::ScopedPhase train_phase(&result.phases, obs::Phase::kTrain);
  Rng rng(config.seed);
  TrainingSet training = SampleBalancedFromPlan(
      dataset_.positive_indices, n64, config.train_per_class, &rng);
  if (training.size() < 2) {
    throw std::runtime_error(
        "StreamingExecutor: not enough labelled pairs to train (dataset '" +
        dataset_.name + "')");
  }

  // Feature rows for the training pairs only: regenerate them grouped by
  // pivot (FeatureExtractor's order invariant), then reorder the rows into
  // the sampler's positives-then-negatives layout the batch path trains on.
  std::vector<uint64_t> sorted_rows(training.row_indices.begin(),
                                    training.row_indices.end());
  std::sort(sorted_rows.begin(), sorted_rows.end());
  std::vector<CandidatePair> training_pairs(sorted_rows.size());
  {
    PivotNeighbourGenerator generator(index);
    std::vector<EntityId> neighbours;
    size_t current_pivot = kNoPivot;
    for (size_t r = 0; r < sorted_rows.size(); ++r) {
      const size_t pivot = PivotOf(sorted_rows[r]);
      if (pivot != current_pivot) {
        generator.Generate(pivot, &neighbours);
        current_pivot = pivot;
      }
      training_pairs[r] = {
          static_cast<EntityId>(pivot),
          neighbours[sorted_rows[r] - dataset_.pivot_offsets[pivot]]};
    }
  }
  FeatureExtractor training_extractor(index, training_pairs);
  const Matrix sorted_features = training_extractor.Compute(
      config.features, config.execution.num_threads, lcp_ptr);
  std::unordered_map<uint64_t, size_t> row_of;
  row_of.reserve(sorted_rows.size());
  for (size_t r = 0; r < sorted_rows.size(); ++r) row_of[sorted_rows[r]] = r;
  Matrix train_x(training.size(), sorted_features.cols());
  for (size_t t = 0; t < training.row_indices.size(); ++t) {
    const double* src =
        sorted_features.Row(row_of.at(training.row_indices[t]));
    std::copy(src, src + sorted_features.cols(), train_x.Row(t));
  }

  model = MakeClassifier(config.classifier, config.seed);
  model->Fit(train_x, training.labels);
  result.training_size = training.size();
  result.model_coefficients = model->CoefficientsWithIntercept();
  }

  // ---- Pruning context, identical to the batch path's. ----
  PruningContext context =
      PruningContext::FromIndex(index, dataset_.stats);
  context.blast_ratio = config.blast_ratio;
  context.validity_threshold = config.validity_threshold;
  context.execution = config.execution;

  std::unique_ptr<PruningAggregator> aggregator =
      MakePruningAggregator(config.pruning, chunks.size(), context);
  ShardArena arena;

  // ---- Sweep 1: accumulate per-chunk aggregates, folding after each
  // shard — the identical fold sequence PruneWithAggregator performs. ----
  if (aggregator->needs_accumulation()) {
    ++result.sweeps;
    for (const ShardSlice& shard : shards) {
      FillArena(shard, config, *model, lcp_ptr, &arena, &result);
      obs::ScopedPhase phase(&result.phases, obs::Phase::kPrune);
      // Per-shard accumulate+fold latency feeds the fold-time histogram the
      // streaming bench reports percentiles from.
      GSMB_SPAN("shard.fold", "stream.shard.fold_us");
      const size_t shard_chunks = shard.chunk_end - shard.chunk_begin;
      ParallelFor(shard_chunks, config.execution.num_threads,
                  [&](size_t begin, size_t end) {
                    std::unique_ptr<AggregatorScratch> scratch =
                        aggregator->MakeScratch();
                    for (size_t sc = begin; sc < end; ++sc) {
                      const size_t c = shard.chunk_begin + sc;
                      PairChunkView view;
                      view.chunk_index = c;
                      view.first_index = chunks[c].begin;
                      view.pairs = arena.pairs.data() +
                                   (chunks[c].begin - shard.first_index);
                      view.probabilities =
                          arena.probabilities.data() +
                          (chunks[c].begin - shard.first_index);
                      view.count = chunks[c].end - chunks[c].begin;
                      aggregator->AccumulateChunk(view, scratch.get());
                    }
                  });
      aggregator->FoldChunks(shard.chunk_begin, shard.chunk_end);
    }
    {
      obs::ScopedPhase phase(&result.phases, obs::Phase::kPrune);
      aggregator->Finalize();
    }
  }

  // ---- Emit the retained set, ascending by global index. ----
  size_t retained_count = 0;
  size_t true_positives = 0;
  auto emit = [&](uint32_t idx, const CandidatePair& pair,
                  double probability) {
    ++retained_count;
    if (dataset_.ground_truth.IsMatch(pair.left, pair.right)) {
      ++true_positives;
    }
    if (config.keep_retained) result.retained_indices.push_back(idx);
    if (sink) sink(idx, pair, probability);
  };

  if (aggregator->emits_from_aggregates()) {
    // Cardinality kinds: the folded top-k structures already hold the
    // retained indices and weights; only their pairs are regenerated.
    obs::ScopedPhase phase(&result.phases, obs::Phase::kPrune);
    const std::vector<RetainedCandidate> retained =
        aggregator->TakeRetained();
    PivotNeighbourGenerator generator(index);
    std::vector<EntityId> neighbours;
    size_t current_pivot = kNoPivot;
    for (const RetainedCandidate& candidate : retained) {
      const size_t pivot = PivotOf(candidate.index);
      if (pivot != current_pivot) {
        generator.Generate(pivot, &neighbours);
        current_pivot = pivot;
      }
      const CandidatePair pair{
          static_cast<EntityId>(pivot),
          neighbours[candidate.index - dataset_.pivot_offsets[pivot]]};
      emit(candidate.index, pair, candidate.probability);
    }
  } else {
    // Weight-based kinds: a second sweep re-scores each shard and applies
    // the finalized thresholds; per-chunk keeps merge in chunk order, so
    // emission is ascending and equals the batch ChunkedRetain exactly.
    ++result.sweeps;
    for (const ShardSlice& shard : shards) {
      FillArena(shard, config, *model, lcp_ptr, &arena, &result);
      obs::ScopedPhase phase(&result.phases, obs::Phase::kPrune);
      const size_t shard_chunks = shard.chunk_end - shard.chunk_begin;
      std::vector<std::vector<uint32_t>> parts(shard_chunks);
      ParallelFor(shard_chunks, config.execution.num_threads,
                  [&](size_t begin, size_t end) {
                    for (size_t sc = begin; sc < end; ++sc) {
                      const size_t c = shard.chunk_begin + sc;
                      for (size_t i = chunks[c].begin; i < chunks[c].end;
                           ++i) {
                        const size_t local = i - shard.first_index;
                        if (aggregator->Keep(i, arena.pairs[local],
                                             arena.probabilities[local])) {
                          parts[sc].push_back(static_cast<uint32_t>(i));
                        }
                      }
                    }
                  });
      for (const std::vector<uint32_t>& part : parts) {
        for (uint32_t idx : part) {
          const size_t local = idx - shard.first_index;
          emit(idx, arena.pairs[local], arena.probabilities[local]);
        }
      }
    }
  }

  obs::CounterAdd("pairs.generated", n64);
  obs::CounterAdd("pairs.retained", retained_count);

  result.metrics = MetricsFromCounts(true_positives, retained_count,
                                     dataset_.ground_truth.size());
  // The legacy *_seconds fields are views of the phase clock.
  result.generate_seconds = result.phases.Get(obs::Phase::kPairs);
  result.feature_seconds = result.phases.Get(obs::Phase::kFeatures);
  result.train_seconds = result.phases.Get(obs::Phase::kTrain);
  result.classify_seconds = result.phases.Get(obs::Phase::kClassify);
  result.prune_seconds = result.phases.Get(obs::Phase::kPrune);
  result.total_seconds = result.generate_seconds + result.feature_seconds +
                         result.train_seconds + result.classify_seconds +
                         result.prune_seconds;
  return result;
}

}  // namespace gsmb
