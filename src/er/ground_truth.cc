#include "er/ground_truth.h"

#include <algorithm>

namespace gsmb {

void GroundTruth::AddMatch(EntityId left, EntityId right) {
  if (dirty_) {
    if (left == right) return;  // a profile cannot match itself
    if (right < left) std::swap(left, right);
  }
  uint64_t key = Key(left, right);
  if (index_.insert(key).second) {
    pairs_.push_back({left, right});
  }
}

bool GroundTruth::IsMatch(EntityId left, EntityId right) const {
  if (dirty_ && right < left) std::swap(left, right);
  return index_.count(Key(left, right)) > 0;
}

}  // namespace gsmb
