// Entity collections (paper Section 2).
//
// A collection is *clean* when it is duplicate-free; Clean-Clean ER links two
// clean collections, Dirty ER deduplicates a single dirty one.

#ifndef GSMB_ER_ENTITY_COLLECTION_H_
#define GSMB_ER_ENTITY_COLLECTION_H_

#include <string>
#include <vector>

#include "er/entity_profile.h"

namespace gsmb {

class EntityCollection {
 public:
  EntityCollection() = default;
  explicit EntityCollection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return profiles_.size(); }
  bool empty() const { return profiles_.empty(); }

  const EntityProfile& operator[](EntityId id) const { return profiles_[id]; }
  EntityProfile& operator[](EntityId id) { return profiles_[id]; }

  const std::vector<EntityProfile>& profiles() const { return profiles_; }

  /// Appends a profile and returns its dense id within this collection.
  EntityId Add(EntityProfile profile);

  void Reserve(size_t n) { profiles_.reserve(n); }

  /// Looks up a profile by external id; returns nullptr when absent.
  /// Linear scan — intended for tests and small examples, not hot paths.
  const EntityProfile* FindByExternalId(const std::string& external_id) const;

  /// Average number of distinct value tokens per profile (a cheap proxy for
  /// the redundancy the blocking step will create).
  double MeanTokensPerProfile() const;

 private:
  std::string name_;
  std::vector<EntityProfile> profiles_;
};

}  // namespace gsmb

#endif  // GSMB_ER_ENTITY_COLLECTION_H_
