#include "er/entity_profile.h"

#include <algorithm>

#include "util/string_utils.h"

namespace gsmb {

void EntityProfile::AddAttribute(std::string name, std::string value) {
  attributes_.push_back({std::move(name), std::move(value)});
}

const std::string& EntityProfile::GetAttribute(const std::string& name) const {
  static const std::string kEmpty;
  for (const Attribute& a : attributes_) {
    if (a.name == name) return a.value;
  }
  return kEmpty;
}

bool EntityProfile::HasAttribute(const std::string& name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return true;
  }
  return false;
}

std::vector<std::string> EntityProfile::DistinctValueTokens() const {
  std::vector<std::string> tokens;
  for (const Attribute& a : attributes_) {
    std::vector<std::string> t = TokenizeAlnum(a.value);
    tokens.insert(tokens.end(), std::make_move_iterator(t.begin()),
                  std::make_move_iterator(t.end()));
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

size_t EntityProfile::ValueLength() const {
  size_t n = 0;
  for (const Attribute& a : attributes_) n += a.value.size();
  return n;
}

}  // namespace gsmb
