#include "er/entity_collection.h"

namespace gsmb {

EntityId EntityCollection::Add(EntityProfile profile) {
  profiles_.push_back(std::move(profile));
  return static_cast<EntityId>(profiles_.size() - 1);
}

const EntityProfile* EntityCollection::FindByExternalId(
    const std::string& external_id) const {
  for (const EntityProfile& p : profiles_) {
    if (p.external_id() == external_id) return &p;
  }
  return nullptr;
}

double EntityCollection::MeanTokensPerProfile() const {
  if (profiles_.empty()) return 0.0;
  size_t total = 0;
  for (const EntityProfile& p : profiles_) total += p.DistinctValueTokens().size();
  return static_cast<double>(total) / static_cast<double>(profiles_.size());
}

}  // namespace gsmb
