// Entity profile model (paper Section 2).
//
// An entity profile is a set of name-value pairs with textual names and
// values. The model is deliberately schema-free: it accommodates relational
// records, semi-structured RDF descriptions and anything in between, which
// is what makes schema-agnostic blocking applicable.

#ifndef GSMB_ER_ENTITY_PROFILE_H_
#define GSMB_ER_ENTITY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gsmb {

/// Identifier of an entity inside one collection (dense, 0-based).
using EntityId = uint32_t;

/// One name-value pair of an entity profile.
struct Attribute {
  std::string name;
  std::string value;

  bool operator==(const Attribute& other) const = default;
};

/// A schema-free entity description: an external identifier (for ground-truth
/// bookkeeping and user-facing output) plus a bag of attributes.
class EntityProfile {
 public:
  EntityProfile() = default;
  explicit EntityProfile(std::string external_id)
      : external_id_(std::move(external_id)) {}

  const std::string& external_id() const { return external_id_; }
  void set_external_id(std::string id) { external_id_ = std::move(id); }

  const std::vector<Attribute>& attributes() const { return attributes_; }

  void AddAttribute(std::string name, std::string value);

  /// Returns the value of the first attribute with this name, or "" if none.
  const std::string& GetAttribute(const std::string& name) const;

  bool HasAttribute(const std::string& name) const;

  /// All schema-agnostic tokens of this profile: every maximal alphanumeric
  /// run in every attribute value, lower-cased, deduplicated, sorted.
  /// Attribute *names* are excluded, following Token Blocking's definition.
  std::vector<std::string> DistinctValueTokens() const;

  /// Total number of characters across all attribute values.
  size_t ValueLength() const;

  bool operator==(const EntityProfile& other) const = default;

 private:
  std::string external_id_;
  std::vector<Attribute> attributes_;
};

}  // namespace gsmb

#endif  // GSMB_ER_ENTITY_PROFILE_H_
