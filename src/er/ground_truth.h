// Ground truth of known matches (the oracle D in the paper).
//
// For Clean-Clean ER a match is a pair (id in E1, id in E2); for Dirty ER it
// is an unordered pair of ids within the single collection (stored with the
// smaller id first). All evaluation measures — recall = |TP|/|D|, precision,
// F1 — and the training-set sampler are driven by this set.

#ifndef GSMB_ER_GROUND_TRUTH_H_
#define GSMB_ER_GROUND_TRUTH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "er/entity_profile.h"

namespace gsmb {

/// A matching pair. `left` and `right` are local ids: left indexes E1 and
/// right indexes E2 for Clean-Clean ER; both index the single collection for
/// Dirty ER (left < right).
struct MatchPair {
  EntityId left;
  EntityId right;

  bool operator==(const MatchPair& other) const = default;
};

class GroundTruth {
 public:
  /// `dirty` selects Dirty-ER semantics: pairs are unordered and normalised
  /// to left < right on insertion.
  explicit GroundTruth(bool dirty = false) : dirty_(dirty) {}

  bool dirty() const { return dirty_; }

  /// Number of known duplicate pairs |D|.
  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  /// Registers a match; duplicates are ignored. For Dirty ER, (a, b) and
  /// (b, a) are the same pair; self-pairs are rejected.
  void AddMatch(EntityId left, EntityId right);

  bool IsMatch(EntityId left, EntityId right) const;

  const std::vector<MatchPair>& pairs() const { return pairs_; }

 private:
  static uint64_t Key(EntityId a, EntityId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  bool dirty_;
  std::vector<MatchPair> pairs_;
  std::unordered_set<uint64_t> index_;
};

}  // namespace gsmb

#endif  // GSMB_ER_GROUND_TRUTH_H_
