#include "gsmb/engine.h"

#include <exception>
#include <filesystem>
#include <stdexcept>
#include <future>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "api/backends.h"
#include "datasets/clean_clean_generator.h"
#include "datasets/dirty_generator.h"
#include "datasets/io.h"
#include "datasets/specs.h"
#include "gsmb/digest.h"
#include "gsmb/log.h"
#include "gsmb/telemetry.h"
#include "schemes/scheme_registry.h"
#include "stream/streaming_executor.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gsmb {

namespace api {

namespace {

Result<EntityCollection> LoadProfilesChecked(const std::string& path,
                                             const std::string& role) {
  if (!std::filesystem::exists(path)) {
    return Status::NotFound(role + " dataset path does not exist: " + path);
  }
  EntityCollection collection = LoadCollectionCsv(path, role);
  if (collection.empty()) {
    return Status::InvalidArgument(role + " dataset " + path +
                                   " parses to zero profiles");
  }
  return collection;
}

Result<JobInputs> LoadCsvInputs(const JobSpec& spec) {
  JobInputs inputs;
  inputs.dirty = spec.dataset.e2.empty();

  Result<EntityCollection> e1 =
      LoadProfilesChecked(spec.dataset.e1, "dataset.e1");
  if (!e1.ok()) return e1.status();
  inputs.e1 = std::move(*e1);

  if (!inputs.dirty) {
    Result<EntityCollection> e2 =
        LoadProfilesChecked(spec.dataset.e2, "dataset.e2");
    if (!e2.ok()) return e2.status();
    inputs.e2 = std::move(*e2);
  }

  if (!std::filesystem::exists(spec.dataset.ground_truth)) {
    return Status::NotFound("dataset.ground_truth path does not exist: " +
                            spec.dataset.ground_truth);
  }
  inputs.ground_truth =
      LoadGroundTruthCsv(spec.dataset.ground_truth, inputs.e1,
                         inputs.dirty ? inputs.e1 : inputs.e2, inputs.dirty);
  return inputs;
}

Result<JobInputs> GenerateInputs(const JobSpec& spec) {
  JobInputs inputs;
  if (spec.dataset.source == DatasetSource::kGeneratedCleanClean) {
    inputs.dirty = false;
    CleanCleanSpec generator_spec;
    try {
      generator_spec =
          CleanCleanSpecByName(spec.dataset.name, spec.dataset.scale);
    } catch (const std::exception& e) {
      return Status::NotFound(std::string("dataset.name: ") + e.what());
    }
    GeneratedCleanClean data = CleanCleanGenerator().Generate(generator_spec);
    inputs.e1 = std::move(data.e1);
    inputs.e2 = std::move(data.e2);
    inputs.ground_truth = std::move(data.ground_truth);
    return inputs;
  }

  inputs.dirty = true;
  for (const DirtySpec& candidate : PaperDirtySpecs(spec.dataset.scale)) {
    if (candidate.name == spec.dataset.name) {
      GeneratedDirty data = DirtyGenerator().Generate(candidate);
      inputs.e1 = std::move(data.entities);
      inputs.ground_truth = std::move(data.ground_truth);
      return inputs;
    }
  }
  return Status::NotFound("dataset.name: unknown dirty dataset spec '" +
                          spec.dataset.name +
                          "' (expected one of D10K..D300K)");
}

}  // namespace

Result<JobInputs> LoadJobInputs(const JobSpec& spec) {
  if (spec.dataset.source == DatasetSource::kCsv) return LoadCsvInputs(spec);
  return GenerateInputs(spec);
}

Result<PreparedHandle> BuildPreparedInputs(const JobSpec& spec) {
  try {
    Result<JobInputs> inputs = LoadJobInputs(spec);
    if (!inputs.ok()) return inputs.status();

    auto prepared = std::make_shared<PreparedInputs>();
    prepared->inputs = std::move(*inputs);
    Stopwatch watch;
    {
      GSMB_SPAN("prepare");
      BlockCollection blocks = [&] {
        GSMB_SPAN("blocking");
        return BuildPreprocessedBlocks(spec, prepared->inputs);
      }();
      prepared->stream = PrepareStreamingFromBlocks(
          "job", std::move(blocks), prepared->inputs.ground_truth,
          ResolvedExecution(spec).num_threads);
    }
    prepared->prepare_seconds = watch.ElapsedSeconds();
    prepared->cache_key = PrepareCacheKey(spec);
    // Provenance: fingerprint the inputs and the blocked representation
    // while both are hot. One-off per preparation, shared by every run
    // and sweep variant through the cache.
    prepared->dataset_fingerprint =
        obs::DatasetFingerprint(prepared->inputs);
    prepared->prepared_digest = obs::PreparedStreamDigest(prepared->stream);
    GSMB_LOG_INFO("prepare.done",
                  {"candidates", prepared->num_candidates()},
                  {"blocks", prepared->stream.blocks.size()},
                  {"seconds", prepared->prepare_seconds},
                  {"dataset_fingerprint",
                   obs::DigestHex(prepared->dataset_fingerprint)},
                  {"prepared_digest",
                   obs::DigestHex(prepared->prepared_digest)});
    return PreparedHandle(std::move(prepared));
  } catch (const std::exception& e) {
    return Status::Internal(std::string("preparation failed: ") + e.what());
  }
}

BlockCollection BuildPreprocessedBlocks(const JobSpec& spec,
                                        const JobInputs& inputs) {
  const size_t threads = ResolvedExecution(spec).num_threads;
  // Every engine path validates the spec before preparing, so the lookup
  // cannot miss; the throw converts to a Status in BuildPreparedInputs.
  const schemes::Blocker* blocker =
      schemes::FindBlocker(spec.blocking.scheme);
  if (blocker == nullptr) {
    throw std::runtime_error("blocking scheme '" + spec.blocking.scheme +
                             "' is not registered");
  }
  BlockCollection raw = blocker->Build(inputs, spec.blocking, threads);
  return PreprocessBlocks(std::move(raw), BlockingOptionsFromSpec(spec));
}

ExecutionOptions ResolvedExecution(const JobSpec& spec) {
  ExecutionOptions options = spec.execution.options;
  if (options.num_threads == 0) options.num_threads = HardwareThreads();
  return options;
}

BlockingOptions BlockingOptionsFromSpec(const JobSpec& spec) {
  BlockingOptions options;
  options.min_token_length = spec.blocking.min_token_length;
  options.purge_size_fraction = spec.blocking.purge_size_fraction;
  options.filter_ratio = spec.blocking.filter_ratio;
  options.execution = ResolvedExecution(spec);
  return options;
}

MetaBlockingConfig ConfigFromSpec(const JobSpec& spec) {
  MetaBlockingConfig config;
  config.features = spec.features;
  config.classifier = spec.classifier;
  config.pruning = spec.pruning.kind;
  config.train_per_class = spec.training.labels_per_class;
  config.seed = spec.training.seed;
  config.blast_ratio = spec.pruning.blast_ratio;
  config.validity_threshold = spec.pruning.validity_threshold;
  config.execution = ResolvedExecution(spec);
  return config;
}

uint64_t EstimateCandidateBytes(uint64_t num_candidates,
                                size_t feature_dims) {
  // The same model StreamingExecutor::PlanShards sizes its shards with.
  return num_candidates * StreamingArenaBytesPerPair(feature_dims);
}

Result<std::ofstream> OpenRetainedCsv(const std::string& path) {
  // Binary mode everywhere, so every backend's CSV is byte-identical on
  // every platform.
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::NotFound("cannot write output.retained_csv: " + path);
  }
  out << "left_id,right_id\n";
  return out;
}

void AppendRetainedCsvRow(std::ofstream& out, const std::string& left_id,
                          const std::string& right_id) {
  out << EscapeCsvField(left_id) << ',' << EscapeCsvField(right_id) << '\n';
}

Status FinishRetainedCsv(std::ofstream& out, const std::string& path) {
  out.close();
  if (!out) {
    return Status::Internal("error writing output.retained_csv: " + path);
  }
  return Status::Ok();
}

void ApplyPhaseTimings(const obs::PhaseTimings& phases,
                       double prepare_seconds, JobResult* result) {
  result->blocking_seconds =
      prepare_seconds + phases.Get(obs::Phase::kBlocking);
  result->generate_seconds = phases.Get(obs::Phase::kPairs);
  result->feature_seconds = phases.Get(obs::Phase::kFeatures);
  result->train_seconds = phases.Get(obs::Phase::kTrain);
  result->classify_seconds = phases.Get(obs::Phase::kClassify);
  result->prune_seconds = phases.Get(obs::Phase::kPrune);
  result->total_seconds = result->generate_seconds +
                          result->feature_seconds + result->train_seconds +
                          result->classify_seconds + result->prune_seconds;

  // The per-run metric snapshot: counters from this run's own numbers and
  // a `phase.<name>.seconds` gauge per canonical phase — built from job
  // state only, so concurrent sweep variants never mix.
  obs::MetricsSnapshot& t = result->telemetry;
  t.counters["pairs.generated"] = result->num_candidates;
  t.counters["pairs.retained"] = result->metrics.retained;
  t.counters["pairs.true_positives"] = result->metrics.true_positives;
  t.counters["blocks.kept"] = result->num_blocks;
  t.counters["training.size"] = result->training_size;
  t.gauges["phase.prepare.seconds"] = result->blocking_seconds;
  for (int i = 0; i < obs::kPhaseCount; ++i) {
    auto phase = static_cast<obs::Phase>(i);
    t.gauges[std::string("phase.") + obs::PhaseName(phase) + ".seconds"] =
        phase == obs::Phase::kBlocking ? result->blocking_seconds
                                       : phases.Get(phase);
  }
}

}  // namespace api

// ---------------------------------------------------------------------------
// Executor defaults
// ---------------------------------------------------------------------------

Result<JobResult> Executor::ExecutePrepared(const JobSpec&,
                                            const PreparedInputs&) const {
  return Status::Unimplemented(
      "backend '" + name() +
      "' does not implement ExecutePrepared (AcceptsPrepared() is false)");
}

// ---------------------------------------------------------------------------
// The prepare cache: LRU over shared, immutable preparations
// ---------------------------------------------------------------------------

struct Engine::PrepareCache {
  struct Slot {
    /// Shared by every Prepare() of this key: concurrent callers of a
    /// still-building preparation block on the future and come back with
    /// the SAME handle the builder produced.
    std::shared_future<Result<PreparedHandle>> future;
    /// LRU clock; larger = more recently used.
    uint64_t last_used = 0;
    bool ready = false;  // future carries a value (ok or failed)
  };

  mutable std::mutex mutex;
  std::unordered_map<std::string, Slot> slots;
  uint64_t clock = 0;
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;

  /// Estimated resident bytes over READY, successful slots. Called under
  /// the mutex.
  size_t BytesLocked() const {
    size_t total = 0;
    for (const auto& [key, slot] : slots) {
      if (!slot.ready) continue;
      const Result<PreparedHandle>& result = slot.future.get();
      if (result.ok()) total += (*result)->ApproxBytes();
    }
    return total;
  }

  /// Drops least-recently-used ready slots until both budgets hold.
  /// `keep` (the slot just inserted or touched) is evicted only when it is
  /// the last one standing and still violates a budget — a cache that
  /// cannot hold even one entry degrades to pass-through, not to failure.
  void EvictLocked(const EngineOptions& options, const std::string& keep) {
    const size_t budget_bytes = options.prepare_cache_budget_mb << 20;
    while (slots.size() > 1 &&
           ((options.prepare_cache_max_entries > 0 &&
             slots.size() > options.prepare_cache_max_entries) ||
            (budget_bytes > 0 && BytesLocked() > budget_bytes))) {
      auto victim = slots.end();
      for (auto it = slots.begin(); it != slots.end(); ++it) {
        if (!it->second.ready || it->first == keep) continue;
        if (victim == slots.end() ||
            it->second.last_used < victim->second.last_used) {
          victim = it;
        }
      }
      if (victim == slots.end()) break;  // only in-flight slots left
      slots.erase(victim);
      ++evictions;
    }
    if (slots.size() == 1 && budget_bytes > 0 &&
        BytesLocked() > budget_bytes) {
      slots.clear();
      ++evictions;
    }
  }
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine() : Engine(EngineOptions{}) {}

Engine::Engine(EngineOptions options)
    : options_(options), cache_(std::make_unique<PrepareCache>()) {
  executors_.push_back(api::MakeBatchBackend());
  executors_.push_back(api::MakeStreamingBackend());
  executors_.push_back(api::MakeServingBackend());
}

Engine::~Engine() = default;

Status Engine::Register(std::unique_ptr<Executor> executor) {
  if (executor == nullptr) {
    return Status::InvalidArgument("Register: executor is null");
  }
  if (FindBackend(executor->name()) != nullptr) {
    return Status::InvalidArgument("Register: a backend named '" +
                                   executor->name() +
                                   "' is already registered");
  }
  executors_.push_back(std::move(executor));
  return Status::Ok();
}

std::vector<std::string> Engine::BackendNames() const {
  std::vector<std::string> names;
  names.reserve(executors_.size());
  for (const auto& executor : executors_) names.push_back(executor->name());
  return names;
}

const Executor* Engine::FindBackend(const std::string& name) const {
  for (const auto& executor : executors_) {
    if (executor->name() == name) return executor.get();
  }
  return nullptr;
}

Result<PreparedHandle> Engine::Prepare(const JobSpec& spec) const {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;

  // max_entries == 0 disables the cache: build fresh, count the miss.
  if (options_.prepare_cache_max_entries == 0) {
    {
      std::lock_guard<std::mutex> lock(cache_->mutex);
      ++cache_->misses;
    }
    obs::CounterAdd("prepare.cache.miss");
    return api::BuildPreparedInputs(spec);
  }

  const std::string key = PrepareCacheKey(spec);
  std::promise<Result<PreparedHandle>> promise;
  std::shared_future<Result<PreparedHandle>> pending;
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->slots.find(key);
    if (it != cache_->slots.end()) {
      ++cache_->hits;
      it->second.last_used = ++cache_->clock;
      pending = it->second.future;
      hit = true;
    } else {
      ++cache_->misses;
      PrepareCache::Slot slot;
      slot.future = promise.get_future().share();
      slot.last_used = ++cache_->clock;
      cache_->slots.emplace(key, std::move(slot));
    }
  }
  obs::CounterAdd(hit ? "prepare.cache.hit" : "prepare.cache.miss");
  GSMB_LOG_DEBUG("prepare.cache", {"hit", hit});
  // Wait outside the lock: a still-building preparation must not serialize
  // unrelated Prepare() calls. Racers of one build share ONE handle.
  if (hit) return pending.get();

  Result<PreparedHandle> built = api::BuildPreparedInputs(spec);
  promise.set_value(built);
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->slots.find(key);
    if (it != cache_->slots.end()) {
      if (built.ok()) {
        it->second.ready = true;
        cache_->EvictLocked(options_, key);
      } else {
        // Failures are never cached: the next Prepare retries (the file
        // may exist by then). Racers already holding the future still see
        // this failure — correct, they raced the same broken build.
        cache_->slots.erase(it);
      }
    }
  }
  return built;
}

Status Engine::AdoptPrepared(PreparedHandle prepared) const {
  if (prepared == nullptr) {
    return Status::InvalidArgument("AdoptPrepared: handle is null");
  }
  if (prepared->cache_key.empty()) {
    return Status::InvalidArgument(
        "AdoptPrepared: the handle carries no cache key");
  }
  if (options_.prepare_cache_max_entries == 0) {
    return Status::FailedPrecondition(
        "AdoptPrepared: the prepare cache is disabled "
        "(prepare_cache_max_entries is 0), so an adopted handle could "
        "never be served");
  }
  const std::string key = prepared->cache_key;
  std::promise<Result<PreparedHandle>> promise;
  promise.set_value(Result<PreparedHandle>(std::move(prepared)));
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    // An existing slot (ready or in flight) wins: by the cache-key
    // contract it holds a bit-identical preparation already.
    if (cache_->slots.find(key) != cache_->slots.end()) return Status::Ok();
    PrepareCache::Slot slot;
    slot.future = promise.get_future().share();
    slot.ready = true;
    slot.last_used = ++cache_->clock;
    cache_->slots.emplace(key, std::move(slot));
    cache_->EvictLocked(options_, key);
  }
  GSMB_LOG_DEBUG("prepare.cache.adopt", {"key", key});
  return Status::Ok();
}

std::string Engine::ResolveMode(const JobSpec& spec,
                                const PreparedInputs& prepared) const {
  if (spec.execution.mode != ExecutionMode::kAuto) {
    return ExecutionModeName(spec.execution.mode);
  }
  // `auto`: the prepared handle already counted the candidates, so the
  // resolution is the same cheap arithmetic on cold and cached paths —
  // budget vs the arena-bytes model the streaming executor shards with.
  const uint64_t budget_bytes =
      static_cast<uint64_t>(spec.execution.memory_budget_mb) << 20;
  const uint64_t estimated = api::EstimateCandidateBytes(
      prepared.num_candidates(), spec.features.Dimensions());
  return budget_bytes > 0 && estimated > budget_bytes ? "streaming" : "batch";
}

Result<JobResult> Engine::Execute(const JobSpec& spec,
                                  const PreparedInputs& prepared) const {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  if (PrepareCacheKey(spec) != prepared.cache_key) {
    return Status::InvalidArgument(
        "Execute: the spec's dataset/blocking sections do not match the "
        "prepared handle (prepared for " + prepared.cache_key + ")");
  }
  const std::string name = ResolveMode(spec, prepared);
  const Executor* executor = FindBackend(name);
  if (executor == nullptr) {
    return Status::NotFound("no backend named '" + name + "' is registered");
  }
  Status supported = executor->Supports(spec);
  if (!supported.ok()) return supported;
  try {
    if (!executor->AcceptsPrepared()) {
      // Executors that load their own inputs (custom registrations) run
      // their legacy path; the handle stays untouched.
      return executor->Execute(spec);
    }
    Result<JobResult> result = executor->ExecutePrepared(spec, prepared);
    // Lazy materialisation (the batch O(|C|) arrays) can grow a cached
    // entry after its insert-time budget check; re-enforce now.
    EnforcePrepareBudget();
    return result;
  } catch (const std::exception& e) {
    return Status::Internal("backend '" + name + "' failed: " + e.what());
  }
}

void Engine::EnforcePrepareBudget() const {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  cache_->EvictLocked(options_, /*keep=*/"");
}

PrepareCacheStats Engine::prepare_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  PrepareCacheStats stats;
  stats.hits = cache_->hits;
  stats.misses = cache_->misses;
  stats.evictions = cache_->evictions;
  stats.entries = cache_->slots.size();
  stats.bytes = cache_->BytesLocked();
  return stats;
}

Result<JobResult> Engine::Dispatch(const Executor& executor,
                                   const JobSpec& spec) const {
  Status supported = executor.Supports(spec);
  if (!supported.ok()) return supported;
  try {
    if (executor.AcceptsPrepared()) {
      // The staged path: prepare through the cache, execute against the
      // shared handle. Run() is exactly Prepare + ExecutePrepared.
      Result<PreparedHandle> prepared = Prepare(spec);
      if (!prepared.ok()) return prepared.status();
      Result<JobResult> result = executor.ExecutePrepared(spec, **prepared);
      // Lazy materialisation can grow the cached entry past its
      // insert-time budget check; re-enforce now.
      EnforcePrepareBudget();
      return result;
    }
    // Executors that load their own inputs (custom registrations).
    return executor.Execute(spec);
  } catch (const std::exception& e) {
    return Status::Internal("backend '" + executor.name() +
                            "' failed: " + e.what());
  }
}

Result<JobResult> Engine::RunOn(const std::string& backend,
                                const JobSpec& spec) const {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  const Executor* executor = FindBackend(backend);
  if (executor == nullptr) {
    std::string known;
    for (const std::string& name : BackendNames()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("no backend named '" + backend +
                            "' is registered (have: " + known + ")");
  }
  return Dispatch(*executor, spec);
}

Result<JobResult> Engine::Run(const JobSpec& spec) const {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;

  if (spec.execution.mode != ExecutionMode::kAuto) {
    return RunOn(ExecutionModeName(spec.execution.mode), spec);
  }

  // ---- `auto`: prepare once (cached), then pick batch or streaming. ----
  // The counting preparation derives the candidate cardinality without
  // materialising any O(|C|) array; the SAME handle then feeds whichever
  // backend wins — nothing is prepared twice, and a cached handle resolves
  // identically to a cold one.
  Result<PreparedHandle> prepared = Prepare(spec);
  if (!prepared.ok()) return prepared.status();
  return Execute(spec, **prepared);
}

Result<JobResult> Engine::RunFile(const std::string& path) const {
  Result<JobSpec> spec = JobSpec::FromFile(path);
  if (!spec.ok()) return spec.status();
  return Run(*spec);
}

Result<MetaBlockingSession> Engine::OpenSession(const JobSpec& spec) const {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  const Executor* serving = FindBackend("serving");
  if (serving == nullptr) {
    return Status::NotFound("no serving backend is registered");
  }
  Status supported = serving->Supports(spec);
  if (!supported.ok()) return supported;
  try {
    // Prepare through the cache: the session's bootstrap training consumes
    // the handle's batch arrays, and a later Run() of the same spec reuses
    // the same preparation.
    Result<PreparedHandle> prepared = Prepare(spec);
    if (!prepared.ok()) return prepared.status();
    return api::BuildServingSession(spec, (*prepared)->inputs,
                                    /*cold_build_universe=*/false,
                                    /*training_size=*/nullptr,
                                    /*phases=*/nullptr, (*prepared).get());
  } catch (const std::exception& e) {
    return Status::Internal(std::string("OpenSession failed: ") + e.what());
  }
}

}  // namespace gsmb
