#include "gsmb/engine.h"

#include <exception>
#include <filesystem>
#include <utility>

#include "api/backends.h"
#include "blocking/qgram_blocking.h"
#include "blocking/suffix_blocking.h"
#include "blocking/token_blocking.h"
#include "datasets/clean_clean_generator.h"
#include "datasets/dirty_generator.h"
#include "datasets/io.h"
#include "datasets/specs.h"
#include "stream/streaming_executor.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gsmb {

namespace api {

namespace {

Result<EntityCollection> LoadProfilesChecked(const std::string& path,
                                             const std::string& role) {
  if (!std::filesystem::exists(path)) {
    return Status::NotFound(role + " dataset path does not exist: " + path);
  }
  EntityCollection collection = LoadCollectionCsv(path, role);
  if (collection.empty()) {
    return Status::InvalidArgument(role + " dataset " + path +
                                   " parses to zero profiles");
  }
  return collection;
}

Result<JobInputs> LoadCsvInputs(const JobSpec& spec) {
  JobInputs inputs;
  inputs.dirty = spec.dataset.e2.empty();

  Result<EntityCollection> e1 =
      LoadProfilesChecked(spec.dataset.e1, "dataset.e1");
  if (!e1.ok()) return e1.status();
  inputs.e1 = std::move(*e1);

  if (!inputs.dirty) {
    Result<EntityCollection> e2 =
        LoadProfilesChecked(spec.dataset.e2, "dataset.e2");
    if (!e2.ok()) return e2.status();
    inputs.e2 = std::move(*e2);
  }

  if (!std::filesystem::exists(spec.dataset.ground_truth)) {
    return Status::NotFound("dataset.ground_truth path does not exist: " +
                            spec.dataset.ground_truth);
  }
  inputs.ground_truth =
      LoadGroundTruthCsv(spec.dataset.ground_truth, inputs.e1,
                         inputs.dirty ? inputs.e1 : inputs.e2, inputs.dirty);
  return inputs;
}

Result<JobInputs> GenerateInputs(const JobSpec& spec) {
  JobInputs inputs;
  if (spec.dataset.source == DatasetSource::kGeneratedCleanClean) {
    inputs.dirty = false;
    CleanCleanSpec generator_spec;
    try {
      generator_spec =
          CleanCleanSpecByName(spec.dataset.name, spec.dataset.scale);
    } catch (const std::exception& e) {
      return Status::NotFound(std::string("dataset.name: ") + e.what());
    }
    GeneratedCleanClean data = CleanCleanGenerator().Generate(generator_spec);
    inputs.e1 = std::move(data.e1);
    inputs.e2 = std::move(data.e2);
    inputs.ground_truth = std::move(data.ground_truth);
    return inputs;
  }

  inputs.dirty = true;
  for (const DirtySpec& candidate : PaperDirtySpecs(spec.dataset.scale)) {
    if (candidate.name == spec.dataset.name) {
      GeneratedDirty data = DirtyGenerator().Generate(candidate);
      inputs.e1 = std::move(data.entities);
      inputs.ground_truth = std::move(data.ground_truth);
      return inputs;
    }
  }
  return Status::NotFound("dataset.name: unknown dirty dataset spec '" +
                          spec.dataset.name +
                          "' (expected one of D10K..D300K)");
}

}  // namespace

Result<JobInputs> LoadJobInputs(const JobSpec& spec) {
  if (spec.dataset.source == DatasetSource::kCsv) return LoadCsvInputs(spec);
  return GenerateInputs(spec);
}

BlockCollection BuildPreprocessedBlocks(const JobSpec& spec,
                                        const JobInputs& inputs) {
  const size_t threads = ResolvedExecution(spec).num_threads;
  BlockCollection raw;
  switch (spec.blocking.scheme) {
    case BlockingScheme::kToken: {
      TokenBlocking blocking(spec.blocking.min_token_length);
      raw = inputs.dirty ? blocking.Build(inputs.e1, threads)
                         : blocking.Build(inputs.e1, inputs.e2, threads);
      break;
    }
    case BlockingScheme::kQGram: {
      QGramBlocking blocking(spec.blocking.qgram);
      raw = inputs.dirty ? blocking.Build(inputs.e1, threads)
                         : blocking.Build(inputs.e1, inputs.e2, threads);
      break;
    }
    case BlockingScheme::kSuffix: {
      SuffixBlocking blocking(spec.blocking.suffix_min_length,
                              spec.blocking.suffix_max_block_size);
      raw = inputs.dirty ? blocking.Build(inputs.e1, threads)
                         : blocking.Build(inputs.e1, inputs.e2, threads);
      break;
    }
  }
  return PreprocessBlocks(std::move(raw), BlockingOptionsFromSpec(spec));
}

ExecutionOptions ResolvedExecution(const JobSpec& spec) {
  ExecutionOptions options = spec.execution.options;
  if (options.num_threads == 0) options.num_threads = HardwareThreads();
  return options;
}

BlockingOptions BlockingOptionsFromSpec(const JobSpec& spec) {
  BlockingOptions options;
  options.min_token_length = spec.blocking.min_token_length;
  options.purge_size_fraction = spec.blocking.purge_size_fraction;
  options.filter_ratio = spec.blocking.filter_ratio;
  options.execution = ResolvedExecution(spec);
  return options;
}

MetaBlockingConfig ConfigFromSpec(const JobSpec& spec) {
  MetaBlockingConfig config;
  config.features = spec.features;
  config.classifier = spec.classifier;
  config.pruning = spec.pruning.kind;
  config.train_per_class = spec.training.labels_per_class;
  config.seed = spec.training.seed;
  config.blast_ratio = spec.pruning.blast_ratio;
  config.execution = ResolvedExecution(spec);
  return config;
}

uint64_t EstimateCandidateBytes(uint64_t num_candidates,
                                size_t feature_dims) {
  // The same model StreamingExecutor::PlanShards sizes its shards with.
  return num_candidates * StreamingArenaBytesPerPair(feature_dims);
}

Result<std::ofstream> OpenRetainedCsv(const std::string& path) {
  // Binary mode everywhere, so every backend's CSV is byte-identical on
  // every platform.
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::NotFound("cannot write output.retained_csv: " + path);
  }
  out << "left_id,right_id\n";
  return out;
}

void AppendRetainedCsvRow(std::ofstream& out, const std::string& left_id,
                          const std::string& right_id) {
  out << EscapeCsvField(left_id) << ',' << EscapeCsvField(right_id) << '\n';
}

Status FinishRetainedCsv(std::ofstream& out, const std::string& path) {
  out.close();
  if (!out) {
    return Status::Internal("error writing output.retained_csv: " + path);
  }
  return Status::Ok();
}

}  // namespace api

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine() {
  executors_.push_back(api::MakeBatchBackend());
  executors_.push_back(api::MakeStreamingBackend());
  executors_.push_back(api::MakeServingBackend());
}

Engine::~Engine() = default;

Status Engine::Register(std::unique_ptr<Executor> executor) {
  if (executor == nullptr) {
    return Status::InvalidArgument("Register: executor is null");
  }
  if (FindBackend(executor->name()) != nullptr) {
    return Status::InvalidArgument("Register: a backend named '" +
                                   executor->name() +
                                   "' is already registered");
  }
  executors_.push_back(std::move(executor));
  return Status::Ok();
}

std::vector<std::string> Engine::BackendNames() const {
  std::vector<std::string> names;
  names.reserve(executors_.size());
  for (const auto& executor : executors_) names.push_back(executor->name());
  return names;
}

const Executor* Engine::FindBackend(const std::string& name) const {
  for (const auto& executor : executors_) {
    if (executor->name() == name) return executor.get();
  }
  return nullptr;
}

Result<JobResult> Engine::RunOn(const std::string& backend,
                                const JobSpec& spec) const {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  const Executor* executor = FindBackend(backend);
  if (executor == nullptr) {
    std::string known;
    for (const std::string& name : BackendNames()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("no backend named '" + backend +
                            "' is registered (have: " + known + ")");
  }
  Status supported = executor->Supports(spec);
  if (!supported.ok()) return supported;
  try {
    return executor->Execute(spec);
  } catch (const std::exception& e) {
    return Status::Internal("backend '" + backend + "' failed: " + e.what());
  }
}

Result<JobResult> Engine::Run(const JobSpec& spec) const {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;

  if (spec.execution.mode != ExecutionMode::kAuto) {
    return RunOn(ExecutionModeName(spec.execution.mode), spec);
  }

  // ---- `auto`: count candidates once, then pick batch or streaming. ----
  // The counting preparation (stream/) derives the candidate cardinality
  // without materialising any O(|C|) array, so resolving the mode costs
  // blocking + one counting sweep. The blocks feed whichever backend wins —
  // nothing is prepared twice.
  try {
    Result<api::JobInputs> inputs = api::LoadJobInputs(spec);
    if (!inputs.ok()) return inputs.status();

    Stopwatch watch;
    BlockCollection blocks = api::BuildPreprocessedBlocks(spec, *inputs);
    const size_t threads = api::ResolvedExecution(spec).num_threads;
    StreamingDataset counted = PrepareStreamingFromBlocks(
        "job", std::move(blocks), inputs->ground_truth, threads);
    const double blocking_seconds = watch.ElapsedSeconds();

    const uint64_t budget_bytes =
        static_cast<uint64_t>(spec.execution.memory_budget_mb) << 20;
    const uint64_t estimated = api::EstimateCandidateBytes(
        counted.num_candidates(), spec.features.Dimensions());
    const bool stream = budget_bytes > 0 && estimated > budget_bytes;

    if (stream) {
      return api::RunStreamingOn(spec, *inputs, counted, blocking_seconds);
    }
    PreparedDataset prep =
        api::BatchPrepFromStreaming(std::move(counted), threads);
    return api::RunBatchOn(spec, *inputs, prep, blocking_seconds);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("auto-mode run failed: ") + e.what());
  }
}

Result<JobResult> Engine::RunFile(const std::string& path) const {
  Result<JobSpec> spec = JobSpec::FromFile(path);
  if (!spec.ok()) return spec.status();
  return Run(*spec);
}

Result<MetaBlockingSession> Engine::OpenSession(const JobSpec& spec) const {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  const Executor* serving = FindBackend("serving");
  if (serving == nullptr) {
    return Status::NotFound("no serving backend is registered");
  }
  Status supported = serving->Supports(spec);
  if (!supported.ok()) return supported;
  try {
    Result<api::JobInputs> inputs = api::LoadJobInputs(spec);
    if (!inputs.ok()) return inputs.status();
    return api::BuildServingSession(spec, *inputs,
                                    /*cold_build_universe=*/false);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("OpenSession failed: ") + e.what());
  }
}

}  // namespace gsmb
