#include "gsmb/job_spec.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "api/json.h"
#include "api/spec_json.h"
#include "gsmb/prepared.h"
#include "schemes/scheme_registry.h"

namespace gsmb {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

// ---------------------------------------------------------------------------
// Section reader: typed member access with path-qualified diagnostics and
// unknown-key rejection. Every Get* marks the key as consumed; Finish()
// fails on any member the schema did not ask about — a typo in a spec file
// must be an error, never a silently ignored setting.
// ---------------------------------------------------------------------------

class Section {
 public:
  Section(const json::Object& object, std::string path)
      : object_(object), path_(std::move(path)) {}

  Status GetString(const char* key, std::string* out) {
    const json::Value* v = Consume(key);
    if (v == nullptr) return Status::Ok();
    if (!v->is_string()) return TypeError(key, "a string", *v);
    *out = v->AsString();
    return Status::Ok();
  }

  Status GetBool(const char* key, bool* out) {
    const json::Value* v = Consume(key);
    if (v == nullptr) return Status::Ok();
    if (!v->is_bool()) return TypeError(key, "a boolean", *v);
    *out = v->AsBool();
    return Status::Ok();
  }

  Status GetDouble(const char* key, double* out) {
    const json::Value* v = Consume(key);
    if (v == nullptr) return Status::Ok();
    if (!v->is_number()) return TypeError(key, "a number", *v);
    *out = v->AsDouble();
    return Status::Ok();
  }

  Status GetU64(const char* key, uint64_t* out) {
    const json::Value* v = Consume(key);
    if (v == nullptr) return Status::Ok();
    if (!v->is_u64()) {
      return TypeError(key, "a non-negative integer", *v);
    }
    *out = v->AsU64();
    return Status::Ok();
  }

  Status GetSize(const char* key, size_t* out) {
    uint64_t value = *out;
    Status status = GetU64(key, &value);
    if (!status.ok()) return status;
    *out = static_cast<size_t>(value);
    return Status::Ok();
  }

  /// Enum member parsed through one of the Parse* helpers.
  template <typename T, typename ParseFn>
  Status GetEnum(const char* key, ParseFn parse, T* out) {
    const json::Value* v = Consume(key);
    if (v == nullptr) return Status::Ok();
    if (!v->is_string()) return TypeError(key, "a string", *v);
    const std::string& name = v->AsString();
    Result<T> parsed = parse(name);
    if (!parsed.ok()) {
      return Status::InvalidArgument(path_ + "." + key + ": " +
                                     parsed.status().message());
    }
    *out = *parsed;
    return Status::Ok();
  }

  /// Nested object section; `fn` receives the child Section.
  template <typename Fn>
  Status GetSection(const char* key, Fn fn) {
    const json::Value* v = Consume(key);
    if (v == nullptr) return Status::Ok();
    if (!v->is_object()) return TypeError(key, "an object", *v);
    Section child(v->AsObject(), path_ + "." + key);
    Status status = fn(child);
    if (!status.ok()) return status;
    return child.Finish();
  }

  /// Rejects members no Get* consumed.
  Status Finish() const {
    for (const auto& [key, value] : object_.members()) {
      if (std::find(consumed_.begin(), consumed_.end(), key) ==
          consumed_.end()) {
        return Status::InvalidArgument(
            "unknown key '" + key + "' in " + path_ +
            " (the spec rejects unrecognized settings rather than ignore "
            "them)");
      }
    }
    return Status::Ok();
  }

  const json::Value* Raw(const char* key) { return Consume(key); }

  const std::string& path() const { return path_; }

 private:
  const json::Value* Consume(const char* key) {
    consumed_.emplace_back(key);
    return object_.Find(key);
  }

  Status TypeError(const char* key, const char* expected,
                   const json::Value& v) const {
    return Status::InvalidArgument(
        path_ + "." + key + ": expected " + expected + ", got " +
        json::Value::KindName(v.kind()));
  }

  const json::Object& object_;
  std::string path_;
  std::vector<std::string> consumed_;
};

#define GSMB_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::gsmb::Status _status = (expr);          \
    if (!_status.ok()) return _status;        \
  } while (false)

const std::vector<std::pair<std::string, FeatureSet>>& NamedFeatureSets() {
  static const std::vector<std::pair<std::string, FeatureSet>> kSets = {
      {"blast", FeatureSet::BlastOptimal()},
      {"rcnp", FeatureSet::RcnpOptimal()},
      {"2014", FeatureSet::Paper2014()},
      {"all", FeatureSet::All()},
  };
  return kSets;
}

}  // namespace

// ---------------------------------------------------------------------------
// Enum <-> name helpers
// ---------------------------------------------------------------------------

const char* DatasetSourceName(DatasetSource source) {
  switch (source) {
    case DatasetSource::kCsv:
      return "csv";
    case DatasetSource::kGeneratedCleanClean:
      return "generated-clean-clean";
    case DatasetSource::kGeneratedDirty:
      return "generated-dirty";
  }
  return "unknown";
}

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kBatch:
      return "batch";
    case ExecutionMode::kStreaming:
      return "streaming";
    case ExecutionMode::kServing:
      return "serving";
    case ExecutionMode::kAuto:
      return "auto";
  }
  return "unknown";
}

const char* ClassifierShortName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kLogisticRegression:
      return "logreg";
    case ClassifierKind::kLinearSvc:
      return "svc";
    case ClassifierKind::kGaussianNaiveBayes:
      return "nb";
  }
  return "unknown";
}

std::string PruningShortName(PruningKind kind) {
  return Lower(PruningKindName(kind));
}

std::string FeatureSetSpecName(const FeatureSet& features) {
  for (const auto& [name, set] : NamedFeatureSets()) {
    if (set == features) return name;
  }
  std::string out;
  for (Feature f : features.Members()) {
    if (!out.empty()) out += ",";
    out += Lower(FeatureName(f));
  }
  return out;
}

Result<DatasetSource> ParseDatasetSource(const std::string& name) {
  const std::string n = Lower(name);
  if (n == "csv") return DatasetSource::kCsv;
  if (n == "generated-clean-clean") return DatasetSource::kGeneratedCleanClean;
  if (n == "generated-dirty") return DatasetSource::kGeneratedDirty;
  return Status::NotFound(
      "unknown dataset source '" + name +
      "' (expected csv, generated-clean-clean or generated-dirty)");
}

Result<std::string> ParseBlockingScheme(const std::string& name) {
  const std::string n = Lower(name);
  if (schemes::FindBlocker(n) == nullptr) {
    return Status::NotFound("unknown blocking scheme '" + name +
                            "' (registered: " +
                            schemes::BlockerNamesJoined() + ")");
  }
  return n;
}

Result<ExecutionMode> ParseExecutionMode(const std::string& name) {
  const std::string n = Lower(name);
  if (n == "batch") return ExecutionMode::kBatch;
  if (n == "streaming") return ExecutionMode::kStreaming;
  if (n == "serving") return ExecutionMode::kServing;
  if (n == "auto") return ExecutionMode::kAuto;
  return Status::NotFound("unknown execution mode '" + name +
                          "' (expected batch, streaming, serving or auto)");
}

Result<ClassifierKind> ParseClassifierName(const std::string& name) {
  const std::string n = Lower(name);
  if (n == "logreg") return ClassifierKind::kLogisticRegression;
  if (n == "svc") return ClassifierKind::kLinearSvc;
  if (n == "nb") return ClassifierKind::kGaussianNaiveBayes;
  return Status::NotFound("unknown classifier '" + name +
                          "' (expected logreg, svc or nb)");
}

Result<PruningKind> ParsePruningName(const std::string& name) {
  const std::string n = Lower(name);
  for (PruningKind kind : AllPruningKinds()) {
    if (n == PruningShortName(kind)) return kind;
  }
  return Status::NotFound(
      "unknown pruning kind '" + name +
      "' (expected bcl, wep, wnp, rwnp, blast, cep, cnp or rcnp)");
}

Result<FeatureSet> ParseFeatureSetName(const std::string& name) {
  const std::string n = Lower(name);
  for (const auto& [set_name, set] : NamedFeatureSets()) {
    if (n == set_name) return set;
  }
  // Comma-separated member list, e.g. "cf-ibf,raccb,js".
  FeatureSet set;
  std::stringstream stream(n);
  std::string item;
  while (std::getline(stream, item, ',')) {
    // Trim surrounding spaces.
    const size_t begin = item.find_first_not_of(" \t");
    const size_t end = item.find_last_not_of(" \t");
    if (begin == std::string::npos) continue;
    item = item.substr(begin, end - begin + 1);
    bool found = false;
    for (size_t f = 0; f < kNumFeatures; ++f) {
      const auto feature = static_cast<Feature>(f);
      if (item == Lower(FeatureName(feature))) {
        set.Add(feature);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound(
          "unknown feature '" + item +
          "' (expected cf-ibf, raccb, js, lcp, ejs, wjs, rs or nrs; or a "
          "named set: blast, rcnp, 2014, all)");
    }
  }
  if (set.empty()) {
    return Status::InvalidArgument("feature set '" + name + "' is empty");
  }
  return set;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace api {

json::Object DatasetSectionJson(const DatasetSpec& dataset) {
  json::Object dataset_obj;
  dataset_obj["source"] = json::Value(DatasetSourceName(dataset.source));
  if (dataset.source == DatasetSource::kCsv) {
    dataset_obj["e1"] = json::Value(dataset.e1);
    if (!dataset.e2.empty()) dataset_obj["e2"] = json::Value(dataset.e2);
    dataset_obj["ground_truth"] = json::Value(dataset.ground_truth);
  } else {
    dataset_obj["name"] = json::Value(dataset.name);
    dataset_obj["scale"] = json::Value(dataset.scale);
  }
  return dataset_obj;
}

json::Object BlockingSectionJson(const BlockingSpec& blocking) {
  // Every member is serialized regardless of the active scheme, so a
  // round-trip is lossless and `explain` shows the complete state.
  json::Object blocking_obj;
  blocking_obj["scheme"] = json::Value(blocking.scheme);
  blocking_obj["min_token_length"] = json::Value(blocking.min_token_length);
  blocking_obj["qgram"] = json::Value(blocking.qgram);
  blocking_obj["suffix_min_length"] = json::Value(blocking.suffix_min_length);
  blocking_obj["suffix_max_block_size"] =
      json::Value(blocking.suffix_max_block_size);
  blocking_obj["window"] = json::Value(blocking.window);
  blocking_obj["min_window"] = json::Value(blocking.min_window);
  blocking_obj["key_similarity"] = json::Value(blocking.key_similarity);
  blocking_obj["attribute_similarity"] =
      json::Value(blocking.attribute_similarity);
  blocking_obj["lsh_bands"] = json::Value(blocking.lsh_bands);
  blocking_obj["lsh_rows"] = json::Value(blocking.lsh_rows);
  blocking_obj["minhash_seed"] = json::Value(blocking.minhash_seed);
  blocking_obj["purge_size_fraction"] =
      json::Value(blocking.purge_size_fraction);
  blocking_obj["filter_ratio"] = json::Value(blocking.filter_ratio);
  return blocking_obj;
}

json::Value JobSpecToJsonValue(const JobSpec& spec) {
  json::Object root;
  // Always the CURRENT version: parsing upgrades older specs in memory, so
  // a serialized spec is canonical by construction.
  root["version"] = json::Value(kJobSpecVersion);

  root["dataset"] = json::Value(DatasetSectionJson(spec.dataset));
  root["blocking"] = json::Value(BlockingSectionJson(spec.blocking));

  root["features"] = json::Value(FeatureSetSpecName(spec.features));
  root["classifier"] = json::Value(ClassifierShortName(spec.classifier));

  json::Object pruning_obj;
  pruning_obj["kind"] = json::Value(PruningShortName(spec.pruning.kind));
  pruning_obj["blast_ratio"] = json::Value(spec.pruning.blast_ratio);
  pruning_obj["validity_threshold"] =
      json::Value(spec.pruning.validity_threshold);
  root["pruning"] = json::Value(std::move(pruning_obj));

  json::Object training_obj;
  training_obj["labels_per_class"] =
      json::Value(spec.training.labels_per_class);
  training_obj["seed"] = json::Value(spec.training.seed);
  root["training"] = json::Value(std::move(training_obj));

  json::Object execution_obj;
  execution_obj["mode"] = json::Value(ExecutionModeName(spec.execution.mode));
  execution_obj["threads"] = json::Value(spec.execution.options.num_threads);
  execution_obj["shards"] = json::Value(spec.execution.shards);
  execution_obj["memory_budget_mb"] =
      json::Value(spec.execution.memory_budget_mb);
  execution_obj["serving_max_block_size"] =
      json::Value(spec.execution.serving_max_block_size);
  root["execution"] = json::Value(std::move(execution_obj));

  if (!spec.output.retained_csv.empty() || spec.output.keep_retained) {
    json::Object output_obj;
    if (!spec.output.retained_csv.empty()) {
      output_obj["retained_csv"] = json::Value(spec.output.retained_csv);
    }
    if (spec.output.keep_retained) {
      output_obj["keep_retained"] = json::Value(true);
    }
    root["output"] = json::Value(std::move(output_obj));
  }

  return json::Value(std::move(root));
}

}  // namespace api

std::string JobSpec::ToJson(int indent) const {
  return json::Dump(api::JobSpecToJsonValue(*this), indent);
}

std::string PrepareCacheKey(const JobSpec& spec) {
  // Single-line canonical JSON of the two sections a preparation is a pure
  // function of. Execution knobs (threads, shards, budgets) never enter:
  // every preparation path is bit-identical across them.
  json::Object key;
  key["dataset"] = json::Value(api::DatasetSectionJson(spec.dataset));
  key["blocking"] = json::Value(api::BlockingSectionJson(spec.blocking));
  return json::Dump(json::Value(std::move(key)), /*indent=*/0);
}

namespace api {

Result<JobSpec> JobSpecFromJsonValue(const json::Value& parsed,
                                     const JobSpec& base,
                                     const std::string& path) {
  if (!parsed.is_object()) {
    return Status::InvalidArgument(
        "a job spec must be a JSON object, got " +
        std::string(json::Value::KindName(parsed.kind())));
  }

  JobSpec spec = base;
  Section root(parsed.AsObject(), path);

  // Version first: an unknown version must fail before any member of it is
  // interpreted under this version's schema.
  uint64_t read_version = 0;
  {
    const json::Value* v = root.Raw("version");
    if (v == nullptr) {
      return Status::InvalidArgument(
          path + ".version is required (current version: " +
          std::to_string(kJobSpecVersion) + ")");
    }
    if (!v->is_u64()) {
      return Status::InvalidArgument(
          path + ".version: expected a non-negative integer, got " +
          std::string(json::Value::KindName(v->kind())));
    }
    read_version = v->AsU64();
    if (read_version < kJobSpecMinVersion || read_version > kJobSpecVersion) {
      return Status::InvalidArgument(
          "unsupported spec version " + std::to_string(read_version) +
          " (this build reads versions " + std::to_string(kJobSpecMinVersion) +
          ".." + std::to_string(kJobSpecVersion) + ")");
    }
    // Older specs upgrade in memory: absent newer keys keep their
    // defaults, and the spec re-serializes as the current version.
    spec.version = kJobSpecVersion;
  }

  GSMB_RETURN_IF_ERROR(root.GetSection("dataset", [&](Section& s) {
    GSMB_RETURN_IF_ERROR(
        s.GetEnum("source", ParseDatasetSource, &spec.dataset.source));
    GSMB_RETURN_IF_ERROR(s.GetString("e1", &spec.dataset.e1));
    GSMB_RETURN_IF_ERROR(s.GetString("e2", &spec.dataset.e2));
    GSMB_RETURN_IF_ERROR(
        s.GetString("ground_truth", &spec.dataset.ground_truth));
    GSMB_RETURN_IF_ERROR(s.GetString("name", &spec.dataset.name));
    GSMB_RETURN_IF_ERROR(s.GetDouble("scale", &spec.dataset.scale));
    return Status::Ok();
  }));

  GSMB_RETURN_IF_ERROR(root.GetSection("blocking", [&](Section& s) {
    GSMB_RETURN_IF_ERROR(
        s.GetEnum("scheme", ParseBlockingScheme, &spec.blocking.scheme));
    if (read_version < 3 && spec.blocking.scheme != kSchemeToken &&
        spec.blocking.scheme != kSchemeQGram &&
        spec.blocking.scheme != kSchemeSuffix) {
      // Like the version-2 key below: a pre-version-3 document naming a
      // registry scheme is a versioning bug in the producer; name the fix.
      return Status::InvalidArgument(
          path + ".blocking.scheme '" + spec.blocking.scheme +
          "' is a version-3 scheme; declare \"version\": 3 (or run "
          "`gsmb_cli migrate`)");
    }
    GSMB_RETURN_IF_ERROR(
        s.GetSize("min_token_length", &spec.blocking.min_token_length));
    GSMB_RETURN_IF_ERROR(s.GetSize("qgram", &spec.blocking.qgram));
    GSMB_RETURN_IF_ERROR(
        s.GetSize("suffix_min_length", &spec.blocking.suffix_min_length));
    GSMB_RETURN_IF_ERROR(s.GetSize("suffix_max_block_size",
                                   &spec.blocking.suffix_max_block_size));
    if (read_version >= 3) {
      GSMB_RETURN_IF_ERROR(s.GetSize("window", &spec.blocking.window));
      GSMB_RETURN_IF_ERROR(
          s.GetSize("min_window", &spec.blocking.min_window));
      GSMB_RETURN_IF_ERROR(
          s.GetDouble("key_similarity", &spec.blocking.key_similarity));
      GSMB_RETURN_IF_ERROR(s.GetDouble("attribute_similarity",
                                       &spec.blocking.attribute_similarity));
      GSMB_RETURN_IF_ERROR(s.GetSize("lsh_bands", &spec.blocking.lsh_bands));
      GSMB_RETURN_IF_ERROR(s.GetSize("lsh_rows", &spec.blocking.lsh_rows));
      GSMB_RETURN_IF_ERROR(
          s.GetU64("minhash_seed", &spec.blocking.minhash_seed));
    } else {
      for (const char* key :
           {"window", "min_window", "key_similarity", "attribute_similarity",
            "lsh_bands", "lsh_rows", "minhash_seed"}) {
        if (s.Raw(key) != nullptr) {
          return Status::InvalidArgument(
              path + ".blocking." + key +
              " is a version-3 key; declare \"version\": 3 (or run "
              "`gsmb_cli migrate`)");
        }
      }
    }
    GSMB_RETURN_IF_ERROR(s.GetDouble("purge_size_fraction",
                                     &spec.blocking.purge_size_fraction));
    GSMB_RETURN_IF_ERROR(
        s.GetDouble("filter_ratio", &spec.blocking.filter_ratio));
    return Status::Ok();
  }));

  GSMB_RETURN_IF_ERROR(
      root.GetEnum("features", ParseFeatureSetName, &spec.features));
  GSMB_RETURN_IF_ERROR(
      root.GetEnum("classifier", ParseClassifierName, &spec.classifier));

  GSMB_RETURN_IF_ERROR(root.GetSection("pruning", [&](Section& s) {
    GSMB_RETURN_IF_ERROR(
        s.GetEnum("kind", ParsePruningName, &spec.pruning.kind));
    GSMB_RETURN_IF_ERROR(
        s.GetDouble("blast_ratio", &spec.pruning.blast_ratio));
    if (read_version >= 2) {
      GSMB_RETURN_IF_ERROR(s.GetDouble("validity_threshold",
                                       &spec.pruning.validity_threshold));
    } else if (s.Raw("validity_threshold") != nullptr) {
      // A version-1 document using a version-2 key is a versioning bug in
      // the producer; name the fix instead of a generic unknown-key error.
      return Status::InvalidArgument(
          path +
          ".pruning.validity_threshold is a version-2 key; declare "
          "\"version\": 2 (or run `gsmb_cli migrate`)");
    }
    return Status::Ok();
  }));

  GSMB_RETURN_IF_ERROR(root.GetSection("training", [&](Section& s) {
    GSMB_RETURN_IF_ERROR(
        s.GetSize("labels_per_class", &spec.training.labels_per_class));
    GSMB_RETURN_IF_ERROR(s.GetU64("seed", &spec.training.seed));
    return Status::Ok();
  }));

  GSMB_RETURN_IF_ERROR(root.GetSection("execution", [&](Section& s) {
    GSMB_RETURN_IF_ERROR(
        s.GetEnum("mode", ParseExecutionMode, &spec.execution.mode));
    GSMB_RETURN_IF_ERROR(
        s.GetSize("threads", &spec.execution.options.num_threads));
    GSMB_RETURN_IF_ERROR(s.GetSize("shards", &spec.execution.shards));
    GSMB_RETURN_IF_ERROR(
        s.GetSize("memory_budget_mb", &spec.execution.memory_budget_mb));
    GSMB_RETURN_IF_ERROR(s.GetSize("serving_max_block_size",
                                   &spec.execution.serving_max_block_size));
    return Status::Ok();
  }));

  GSMB_RETURN_IF_ERROR(root.GetSection("output", [&](Section& s) {
    GSMB_RETURN_IF_ERROR(
        s.GetString("retained_csv", &spec.output.retained_csv));
    GSMB_RETURN_IF_ERROR(s.GetBool("keep_retained", &spec.output.keep_retained));
    return Status::Ok();
  }));

  GSMB_RETURN_IF_ERROR(root.Finish());
  return spec;
}

}  // namespace api

Result<JobSpec> JobSpec::FromJson(const std::string& text,
                                  const JobSpec& base) {
  Result<json::Value> parsed = json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  return api::JobSpecFromJsonValue(*parsed, base, "spec");
}

Result<JobSpec> JobSpec::FromJson(const std::string& text) {
  return FromJson(text, JobSpec());
}

Result<JobSpec> JobSpec::FromFile(const std::string& path) {
  return FromFile(path, JobSpec());
}

Result<JobSpec> JobSpec::FromFile(const std::string& path,
                                  const JobSpec& base) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open spec file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<JobSpec> spec = FromJson(buffer.str(), base);
  if (!spec.ok()) {
    return Status(spec.status().code(),
                  path + ": " + spec.status().message());
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

Status JobSpec::Validate() const {
  if (version != kJobSpecVersion) {
    return Status::InvalidArgument(
        "unsupported spec version " + std::to_string(version));
  }
  switch (dataset.source) {
    case DatasetSource::kCsv:
      if (dataset.e1.empty()) {
        return Status::InvalidArgument(
            "dataset.e1 is required for a csv dataset");
      }
      if (dataset.ground_truth.empty()) {
        return Status::InvalidArgument(
            "dataset.ground_truth is required for a csv dataset");
      }
      if (!dataset.name.empty()) {
        return Status::InvalidArgument(
            "dataset.name only applies to generated datasets");
      }
      break;
    case DatasetSource::kGeneratedCleanClean:
    case DatasetSource::kGeneratedDirty:
      if (dataset.name.empty()) {
        return Status::InvalidArgument(
            "dataset.name is required for a generated dataset");
      }
      if (!dataset.e1.empty() || !dataset.e2.empty() ||
          !dataset.ground_truth.empty()) {
        return Status::InvalidArgument(
            "dataset.e1/e2/ground_truth only apply to csv datasets");
      }
      if (!(dataset.scale > 0.0)) {
        return Status::InvalidArgument("dataset.scale must be > 0");
      }
      break;
  }

  if (blocking.min_token_length < 1) {
    return Status::InvalidArgument("blocking.min_token_length must be >= 1");
  }
  {
    // Reject-don't-ignore: an unregistered scheme name fails here, and the
    // scheme's own ValidateParams checks its parameter ranges.
    const schemes::Blocker* blocker = schemes::FindBlocker(blocking.scheme);
    if (blocker == nullptr) {
      return Status::InvalidArgument(
          "blocking.scheme '" + blocking.scheme +
          "' is not a registered scheme (registered: " +
          schemes::BlockerNamesJoined() + ")");
    }
    Status params = blocker->ValidateParams(blocking);
    if (!params.ok()) return params;
  }
  if (!(blocking.purge_size_fraction > 0.0)) {
    return Status::InvalidArgument(
        "blocking.purge_size_fraction must be > 0 (use >= 1 to disable "
        "purging)");
  }
  if (!(blocking.filter_ratio > 0.0) || blocking.filter_ratio > 1.0) {
    return Status::InvalidArgument(
        "blocking.filter_ratio must be in (0, 1] (1 disables filtering)");
  }

  if (features.empty()) {
    return Status::InvalidArgument("features must name at least one scheme");
  }
  if (training.labels_per_class < 1) {
    return Status::InvalidArgument("training.labels_per_class must be >= 1");
  }
  if (!(pruning.blast_ratio > 0.0)) {
    return Status::InvalidArgument("pruning.blast_ratio must be > 0");
  }
  if (!(pruning.validity_threshold < 1.0)) {
    return Status::InvalidArgument(
        "pruning.validity_threshold must be < 1 (a floor of 1 discards "
        "every pair; use <= 0 to disable the floor)");
  }

  if (execution.shards < 1) {
    return Status::InvalidArgument(
        "execution.shards must be >= 1 (more shards = lower peak memory "
        "when streaming, finer dirty granularity when serving)");
  }
  return Status::Ok();
}

bool JobSpec::operator==(const JobSpec& other) const {
  return version == other.version &&
         dataset.source == other.dataset.source &&
         dataset.e1 == other.dataset.e1 && dataset.e2 == other.dataset.e2 &&
         dataset.ground_truth == other.dataset.ground_truth &&
         dataset.name == other.dataset.name &&
         dataset.scale == other.dataset.scale &&
         blocking.scheme == other.blocking.scheme &&
         blocking.min_token_length == other.blocking.min_token_length &&
         blocking.qgram == other.blocking.qgram &&
         blocking.suffix_min_length == other.blocking.suffix_min_length &&
         blocking.suffix_max_block_size ==
             other.blocking.suffix_max_block_size &&
         blocking.window == other.blocking.window &&
         blocking.min_window == other.blocking.min_window &&
         blocking.key_similarity == other.blocking.key_similarity &&
         blocking.attribute_similarity ==
             other.blocking.attribute_similarity &&
         blocking.lsh_bands == other.blocking.lsh_bands &&
         blocking.lsh_rows == other.blocking.lsh_rows &&
         blocking.minhash_seed == other.blocking.minhash_seed &&
         blocking.purge_size_fraction == other.blocking.purge_size_fraction &&
         blocking.filter_ratio == other.blocking.filter_ratio &&
         features == other.features && classifier == other.classifier &&
         pruning.kind == other.pruning.kind &&
         pruning.blast_ratio == other.pruning.blast_ratio &&
         pruning.validity_threshold == other.pruning.validity_threshold &&
         training.labels_per_class == other.training.labels_per_class &&
         training.seed == other.training.seed &&
         execution.mode == other.execution.mode &&
         execution.options.num_threads == other.execution.options.num_threads &&
         execution.shards == other.execution.shards &&
         execution.memory_budget_mb == other.execution.memory_budget_mb &&
         execution.serving_max_block_size ==
             other.execution.serving_max_block_size &&
         output.retained_csv == other.output.retained_csv &&
         output.keep_retained == other.output.keep_retained;
}

}  // namespace gsmb
