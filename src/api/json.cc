#include "api/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace gsmb::json {

const Value* Object::Find(const std::string& key) const {
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

Value* Object::Find(const std::string& key) {
  for (Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

Value& Object::operator[](const std::string& key) {
  if (Value* existing = Find(key)) return *existing;
  members_.emplace_back(key, Value());
  return members_.back().second;
}

const char* Value::KindName(Kind kind) {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return "bool";
    case Kind::kNumber:
      return "number";
    case Kind::kString:
      return "string";
    case Kind::kArray:
      return "array";
    case Kind::kObject:
      return "object";
  }
  return "unknown";
}

namespace {

constexpr size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Run() {
    SkipWhitespace();
    Value value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing content after the JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    size_t line = 1, column = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return Status::InvalidArgument("JSON parse error at line " +
                                   std::to_string(line) + ", column " +
                                   std::to_string(column) + ": " + message);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  Status ParseValue(Value* out, size_t depth) {
    if (depth > kMaxDepth) return Error("nesting deeper than 64 levels");
    if (AtEnd()) return Error("unexpected end of input, expected a value");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status status = ParseString(&s);
        if (!status.ok()) return status;
        *out = Value(std::move(s));
        return Status::Ok();
      }
      case 't':
        return ParseLiteral("true", Value(true), out);
      case 'f':
        return ParseLiteral("false", Value(false), out);
      case 'n':
        return ParseLiteral("null", Value(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* literal, Value value, Value* out) {
    const size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      return Error(std::string("invalid token, expected '") + literal + "'");
    }
    pos_ += len;
    *out = std::move(value);
    return Status::Ok();
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    bool integral = pos_ > start && (text_[start] != '-' || pos_ > start + 1);
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    const std::string_view lexeme(text_.data() + start, pos_ - start);
    double d = 0.0;
    auto [ptr, ec] =
        std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), d);
    if (ec != std::errc() || ptr != lexeme.data() + lexeme.size()) {
      pos_ = start;
      return Error("invalid number");
    }
    // Preserve the exact value of non-negative integer lexemes (seeds).
    if (integral && text_[start] != '-') {
      uint64_t u = 0;
      auto [uptr, uec] =
          std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), u);
      if (uec == std::errc() && uptr == lexeme.data() + lexeme.size()) {
        *out = Value(u);
        return Status::Ok();
      }
    }
    *out = Value(d);
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape sequence");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          Status status = ParseUnicodeEscape(out);
          if (!status.ok()) return status;
          break;
        }
        default:
          pos_ -= 2;
          return Error("invalid escape sequence");
      }
    }
  }

  Status ParseUnicodeEscape(std::string* out) {
    uint32_t code = 0;
    if (!ReadHex4(&code)) return Error("invalid \\u escape");
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: require the paired low surrogate.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return Error("unpaired UTF-16 surrogate in \\u escape");
      }
      pos_ += 2;
      uint32_t low = 0;
      if (!ReadHex4(&low) || low < 0xDC00 || low > 0xDFFF) {
        return Error("unpaired UTF-16 surrogate in \\u escape");
      }
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      return Error("unpaired UTF-16 surrogate in \\u escape");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return Status::Ok();
  }

  bool ReadHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  Status ParseArray(Value* out, size_t depth) {
    ++pos_;  // '['
    Array array;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      *out = Value(std::move(array));
      return Status::Ok();
    }
    while (true) {
      Value element;
      SkipWhitespace();
      Status status = ParseValue(&element, depth + 1);
      if (!status.ok()) return status;
      array.push_back(std::move(element));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array, expected ',' or ']'");
      char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        return Error("expected ',' or ']' in array");
      }
    }
    *out = Value(std::move(array));
    return Status::Ok();
  }

  Status ParseObject(Value* out, size_t depth) {
    ++pos_;  // '{'
    Object object;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      *out = Value(std::move(object));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Error("expected a quoted object key");
      }
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      if (object.Contains(key)) {
        return Error("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      if (AtEnd() || text_[pos_++] != ':') {
        if (!AtEnd()) --pos_;
        return Error("expected ':' after object key '" + key + "'");
      }
      SkipWhitespace();
      Value value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      object[key] = std::move(value);
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object, expected ',' or '}'");
      char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        return Error("expected ',' or '}' in object");
      }
    }
    *out = Value(std::move(object));
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(const Value& value, std::string* out) {
  if (value.is_u64()) {
    out->append(std::to_string(value.AsU64()));
    return;
  }
  const double d = value.AsDouble();
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional degradation.
    out->append("null");
    return;
  }
  char buffer[32];
  // Shortest representation that round-trips a double.
  auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof buffer, d);
  out->append(buffer, static_cast<size_t>(ptr - buffer));
}

void DumpTo(const Value& value, int indent, int depth, std::string* out) {
  // Built with append rather than operator+ — equivalent, but the chained
  // temporary trips GCC 12's -Wrestrict false positive (PR 105329) when
  // inlined, and the tree builds with -Werror.
  std::string newline_pad;
  std::string closing_pad;
  if (indent > 0) {
    newline_pad.push_back('\n');
    newline_pad.append(
        static_cast<size_t>(indent) * static_cast<size_t>(depth + 1), ' ');
    closing_pad.push_back('\n');
    closing_pad.append(
        static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
  }
  switch (value.kind()) {
    case Value::Kind::kNull:
      out->append("null");
      break;
    case Value::Kind::kBool:
      out->append(value.AsBool() ? "true" : "false");
      break;
    case Value::Kind::kNumber:
      AppendNumber(value, out);
      break;
    case Value::Kind::kString:
      AppendEscaped(value.AsString(), out);
      break;
    case Value::Kind::kArray: {
      const Array& array = value.AsArray();
      if (array.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out->push_back(',');
        out->append(newline_pad);
        DumpTo(array[i], indent, depth + 1, out);
      }
      out->append(closing_pad);
      out->push_back(']');
      break;
    }
    case Value::Kind::kObject: {
      const Object& object = value.AsObject();
      if (object.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const Object::Member& m : object.members()) {
        if (!first) out->push_back(',');
        first = false;
        out->append(newline_pad);
        AppendEscaped(m.first, out);
        out->append(indent > 0 ? ": " : ":");
        DumpTo(m.second, indent, depth + 1, out);
      }
      out->append(closing_pad);
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

Result<Value> Parse(const std::string& text) { return Parser(text).Run(); }

std::string Dump(const Value& value, int indent) {
  std::string out;
  DumpTo(value, indent, 0, &out);
  return out;
}

}  // namespace gsmb::json
